// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §6 for the index), plus ablation benches for the
// design choices DESIGN.md calls out and micro-benchmarks of the substrates.
//
// The figure benches run on a quarter-scale workload (about 3,300 jobs on a
// 250-node machine) so the whole suite finishes in minutes; the nine-policy
// sweep is executed once and shared, with each figure bench measuring its
// artifact's assembly and reporting the headline series values as benchmark
// metrics. BenchmarkFullSweep times the complete scaled sweep itself;
// cmd/experiments regenerates everything at full scale.
package fairsched_test

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"fairsched"
	"fairsched/internal/core"
	"fairsched/internal/eventq"
	"fairsched/internal/experiments"
	"fairsched/internal/fairness"
	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/profile"
	"fairsched/internal/sched"
	"fairsched/internal/sim"
	"fairsched/internal/sweep"
	"fairsched/internal/workload"
)

const (
	benchScale = 0.25
	benchNodes = 250
	benchSeed  = 42
)

var (
	benchOnce     sync.Once
	benchJobs     []*job.Job
	benchSweep    *experiments.Results
	benchSweepErr error
)

func benchSetup(b *testing.B) (*experiments.Results, []*job.Job) {
	b.Helper()
	benchOnce.Do(func() {
		benchJobs, benchSweepErr = workload.Generate(workload.Config{
			Seed: benchSeed, Scale: benchScale, SystemSize: benchNodes,
		})
		if benchSweepErr != nil {
			return
		}
		benchSweep, benchSweepErr = experiments.RunOn(
			core.StudyConfig{SystemSize: benchNodes}, benchJobs)
	})
	if benchSweepErr != nil {
		b.Fatal(benchSweepErr)
	}
	return benchSweep, benchJobs
}

// reportSeries exposes a figure's first-series values as benchmark metrics,
// keyed by label.
func reportSeries(b *testing.B, f experiments.Figure) {
	for i, v := range f.Series[0].Values {
		b.ReportMetric(v, f.Labels[i])
	}
}

// --- Tables 1-2 and Figures 3-7: workload characterization ---

func BenchmarkTable1JobCounts(b *testing.B) {
	var grid [job.NumWidthCategories][job.NumLengthCategories]int
	for i := 0; i < b.N; i++ {
		jobs, err := workload.Generate(workload.Config{Seed: benchSeed, Scale: benchScale, SystemSize: benchNodes})
		if err != nil {
			b.Fatal(err)
		}
		grid = job.CountGrid(jobs)
	}
	total := 0
	for _, row := range grid {
		for _, c := range row {
			total += c
		}
	}
	b.ReportMetric(float64(total), "jobs")
}

func BenchmarkTable2ProcHours(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		jobs, err := workload.Generate(workload.Config{Seed: benchSeed, Scale: benchScale, SystemSize: benchNodes})
		if err != nil {
			b.Fatal(err)
		}
		grid := job.ProcHourGrid(jobs)
		total = 0
		for _, row := range grid {
			for _, c := range row {
				total += c
			}
		}
	}
	b.ReportMetric(total, "proc-hours")
}

func BenchmarkFig3OfferedLoad(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure3()
	}
	peak, util := 0.0, 0.0
	for i := range f.Labels {
		if v := f.Series[0].Values[i]; v > peak {
			peak = v
		}
		if v := f.Series[1].Values[i]; v > util {
			util = v
		}
	}
	b.ReportMetric(peak, "peak-offered-%")
	b.ReportMetric(util, "peak-util-%")
}

func benchCharacterize(b *testing.B) *experiments.Characterization {
	b.Helper()
	_, jobs := benchSetup(b)
	var c *experiments.Characterization
	for i := 0; i < b.N; i++ {
		c = experiments.Characterize(jobs)
	}
	return c
}

func BenchmarkFig4RuntimeNodes(b *testing.B) {
	c := benchCharacterize(b)
	b.ReportMetric(100*c.StandardAllocFraction, "standard-alloc-%")
	b.ReportMetric(c.RuntimeNodesLogCorr, "loglog-r")
}

func BenchmarkFig5Estimates(b *testing.B) {
	c := benchCharacterize(b)
	b.ReportMetric(100*c.OverestimatedFraction, "over-%")
	b.ReportMetric(100*c.UnderestimatedFraction, "under-%")
	b.ReportMetric(c.MedianOverestimation, "median-factor")
}

func BenchmarkFig6OverestimationRuntime(b *testing.B) {
	c := benchCharacterize(b)
	b.ReportMetric(c.OverRuntimeLogCorr, "runtime-factor-r")
}

func BenchmarkFig7OverestimationNodes(b *testing.B) {
	c := benchCharacterize(b)
	b.ReportMetric(c.OverNodesLogCorr, "nodes-factor-r")
}

// --- Figures 8-13: the minor-changes study ---

func BenchmarkFig8PercentUnfairMinor(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure8()
	}
	reportSeries(b, f)
}

func BenchmarkFig9AvgMissTimeMinor(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure9()
	}
	reportSeries(b, f)
}

func BenchmarkFig10MissByWidthMinor(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure10()
	}
	// The quarter-scale machine (250 nodes) has no 513+ jobs; report the
	// widest populated category (129-256).
	b.ReportMetric(f.Series[0].Values[8], "baseline-129-256-miss-s")
}

func BenchmarkFig11TurnaroundMinor(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure11()
	}
	reportSeries(b, f)
}

func BenchmarkFig12TurnaroundByWidthMinor(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure12()
	}
	b.ReportMetric(f.Series[0].Values[8], "baseline-129-256-tat-s")
}

func BenchmarkFig13LOCMinor(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure13()
	}
	reportSeries(b, f)
}

// --- Figures 14-19: the full nine-policy study ---

func BenchmarkFig14PercentUnfairAll(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure14()
	}
	reportSeries(b, f)
}

func BenchmarkFig15AvgMissTimeAll(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure15()
	}
	reportSeries(b, f)
}

func BenchmarkFig16MissByWidthConservative(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure16()
	}
	b.ReportMetric(f.Series[1].Values[8], "cons-129-256-miss-s")
}

func BenchmarkFig17TurnaroundAll(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure17()
	}
	reportSeries(b, f)
}

func BenchmarkFig18TurnaroundByWidthConservative(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure18()
	}
	b.ReportMetric(f.Series[1].Values[8], "cons-129-256-tat-s")
}

func BenchmarkFig19LOCAll(b *testing.B) {
	sweep, _ := benchSetup(b)
	var f experiments.Figure
	for i := 0; i < b.N; i++ {
		f = sweep.Figure19()
	}
	reportSeries(b, f)
}

// BenchmarkFullSweep times the complete nine-policy quarter-scale sweep
// (workload generation through claim checking).
func BenchmarkFullSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(experiments.Config{
			Workload: workload.Config{Seed: benchSeed, Scale: benchScale, SystemSize: benchNodes},
			Study:    core.StudyConfig{SystemSize: benchNodes},
		})
		if err != nil {
			b.Fatal(err)
		}
		pass := experiments.CheckClaims(io.Discard, res)
		b.ReportMetric(float64(pass), "claims-passing")
	}
}

// --- Sweep engine throughput (docs/PERFORMANCE.md) ---

// benchSweepThroughput drives the nine-policy sweep through the worker pool
// at a fixed parallelism and reports runs/sec and simulated events/sec —
// the two axes BENCH_*.json tracks across PRs. The workload is generated
// once outside the timed region; each iteration re-simulates all nine
// policies.
func benchSweepThroughput(b *testing.B, parallel int) {
	_, jobs := benchSetup(b)
	specs := core.AllSpecs()
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, err := sweep.Runs(core.StudyConfig{SystemSize: benchNodes}, specs, jobs, parallel)
		if err != nil {
			b.Fatal(err)
		}
		events = 0
		for _, r := range runs {
			events += r.Result.Events
		}
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*len(specs))/elapsed, "runs/sec")
		b.ReportMetric(float64(b.N)*float64(events)/elapsed, "events/sec")
	}
}

func BenchmarkSweepThroughputParallel1(b *testing.B) { benchSweepThroughput(b, 1) }
func BenchmarkSweepThroughputParallel2(b *testing.B) { benchSweepThroughput(b, 2) }
func BenchmarkSweepThroughputParallel4(b *testing.B) { benchSweepThroughput(b, 4) }
func BenchmarkSweepThroughputParallelMax(b *testing.B) {
	benchSweepThroughput(b, runtime.GOMAXPROCS(0))
}

// BenchmarkSweepMatrixSeeds times the (seed × policy) grid fan-out behind
// `cmd/experiments -seeds` at full machine width: 3 seeds × 9 policies per
// iteration.
func BenchmarkSweepMatrixSeeds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		grid, err := sweep.Matrix{
			Workload: workload.Config{Scale: 0.1, SystemSize: benchNodes},
			Study:    core.StudyConfig{SystemSize: benchNodes},
			Seeds:    []int64{1, 2, 3},
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(grid) != 3 {
			b.Fatalf("got %d seed groups", len(grid))
		}
	}
}

// --- Ablations (DESIGN.md §7) ---

func benchRunPolicy(b *testing.B, cfg core.StudyConfig, key string) *fairsched.Summary {
	b.Helper()
	_, jobs := benchSetup(b)
	spec, err := core.SpecByKey(key)
	if err != nil {
		b.Fatal(err)
	}
	if cfg.SystemSize == 0 {
		cfg.SystemSize = benchNodes
	}
	var run *core.Run
	for i := 0; i < b.N; i++ {
		run, err = core.Execute(cfg, spec, jobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	return run.Summary
}

// BenchmarkAblationFSTOverhead* measure the hybrid-FST engine's cost by
// running the baseline with and without the observer attached.
func BenchmarkAblationFSTOverheadOn(b *testing.B) {
	s := benchRunPolicy(b, core.StudyConfig{}, "cplant24.nomax.all")
	b.ReportMetric(s.PercentUnfair, "unfair-%")
}

func BenchmarkAblationFSTOverheadOff(b *testing.B) {
	benchRunPolicy(b, core.StudyConfig{SkipFST: true}, "cplant24.nomax.all")
}

// BenchmarkAblationCompression* compare static conservative (reservation-
// preserving with fairshare improvement passes) against dynamic rebuilds.
func BenchmarkAblationCompressionStatic(b *testing.B) {
	s := benchRunPolicy(b, core.StudyConfig{}, "cons.nomax")
	b.ReportMetric(s.PercentUnfair, "unfair-%")
	b.ReportMetric(s.AvgMissTime, "miss-s")
}

func BenchmarkAblationCompressionDynamic(b *testing.B) {
	s := benchRunPolicy(b, core.StudyConfig{}, "consdyn.nomax")
	b.ReportMetric(s.PercentUnfair, "unfair-%")
	b.ReportMetric(s.AvgMissTime, "miss-s")
}

// BenchmarkAblationDecay* sweep the fairshare decay factor (the paper fixes
// the 24h interval but not the factor; 0.5 is our default).
func benchDecay(b *testing.B, factor float64) {
	s := benchRunPolicy(b, core.StudyConfig{
		Fairshare: fairshare.Config{DecayFactor: factor},
	}, "cplant24.nomax.all")
	b.ReportMetric(s.PercentUnfair, "unfair-%")
	b.ReportMetric(s.AvgMissTime, "miss-s")
}

func BenchmarkAblationDecay25(b *testing.B) { benchDecay(b, 0.25) }
func BenchmarkAblationDecay50(b *testing.B) { benchDecay(b, 0.50) }
func BenchmarkAblationDecay75(b *testing.B) { benchDecay(b, 0.75) }

// BenchmarkAblationHeavy* compare heavy-user classifiers on the *.fair
// policy (our default is above-mean).
func benchHeavy(b *testing.B, heavy fairshare.HeavyClassifier) {
	_, jobs := benchSetup(b)
	var unfair float64
	for i := 0; i < b.N; i++ {
		pol := sched.MustParse("cplant24.nomax.fair")
		pol.SetHeavyClassifier(heavy)
		fst := fairness.NewHybridFST()
		res, err := sim.New(sim.Config{SystemSize: benchNodes}, pol, fst).Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		u := fairness.Measure(res.Records, fst.Table())
		unfair = u.PercentUnfair()
	}
	b.ReportMetric(unfair, "unfair-%")
}

func BenchmarkAblationHeavyAboveMean(b *testing.B)     { benchHeavy(b, fairshare.AboveMean{}) }
func BenchmarkAblationHeavyAboveQuantile(b *testing.B) { benchHeavy(b, fairshare.AboveQuantile{}) }

// BenchmarkAblationSplit* compare the three split-submission models under
// the 72h maximum-runtime policy.
func benchSplit(b *testing.B, mode sim.SplitMode) {
	s := benchRunPolicy(b, core.StudyConfig{Split: mode}, "cplant24.72max.all")
	b.ReportMetric(s.PercentUnfair, "unfair-%")
	b.ReportMetric(s.AvgMissTime, "miss-s")
}

func BenchmarkAblationSplitUpfront(b *testing.B)   { benchSplit(b, sim.SplitUpfront) }
func BenchmarkAblationSplitStaggered(b *testing.B) { benchSplit(b, sim.SplitStaggered) }
func BenchmarkAblationSplitChained(b *testing.B)   { benchSplit(b, sim.SplitChained) }

// BenchmarkAblationDepth* sweep the reservation depth of depth-n
// backfilling (the paper's "first n jobs get a reservation" spectrum
// between aggressive and conservative).
func benchDepth(b *testing.B, depth int) {
	s := benchRunPolicy(b, core.StudyConfig{}, fmt.Sprintf("depth%d", depth))
	b.ReportMetric(s.PercentUnfair, "unfair-%")
	b.ReportMetric(s.AvgMissTime, "miss-s")
	b.ReportMetric(100*s.LossOfCapacity, "loc-%")
}

func BenchmarkAblationDepth1(b *testing.B)  { benchDepth(b, 1) }
func BenchmarkAblationDepth4(b *testing.B)  { benchDepth(b, 4) }
func BenchmarkAblationDepth16(b *testing.B) { benchDepth(b, 16) }

// --- Substrate micro-benchmarks ---

func BenchmarkProfileEarliestFitOccupy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := profile.New(0, 1024, 1024)
		for k := 0; k < 200; k++ {
			dur := int64(k%97 + 1)
			nodes := k%512 + 1
			s, ok := p.EarliestFit(int64(k), dur, nodes)
			if !ok {
				b.Fatal("no fit")
			}
			if err := p.Occupy(s, s+dur, nodes); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAvailabilityListSchedule(b *testing.B) {
	_, jobs := benchSetup(b)
	head := jobs
	if len(head) > 500 {
		head = head[:500]
	}
	fst := fairness.NewHybridFST()
	for i := 0; i < b.N; i++ {
		pol := sched.MustParse("list.fairshare")
		if _, err := sim.New(sim.Config{SystemSize: benchNodes}, pol, fst).Run(head); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventQueue(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var q eventq.Queue[*job.Job]
		q.Grow(1000)
		for k := 0; k < 1000; k++ {
			q.Push(eventq.Event[*job.Job]{Time: int64(k * 7919 % 1000)})
		}
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
}

func BenchmarkFairshareAccrue(b *testing.B) {
	usages := make([]fairshare.Usage, 64)
	for i := range usages {
		usages[i] = fairshare.Usage{User: i % 16, Nodes: i%32 + 1}
	}
	tr := fairshare.NewTracker(fairshare.DefaultConfig(), 0)
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now += 600
		if err := tr.Accrue(now, usages); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenerateFullScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		jobs, err := workload.Generate(workload.Config{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(jobs) == 0 {
			b.Fatal("empty workload")
		}
	}
}
