module fairsched

go 1.24
