// Command swfanon anonymizes a Standard Workload Format trace the way the
// paper's authors prepared the CPlant log for public release: user and
// group ids are replaced sequentially in order of first appearance and
// executable ids are removed.
//
// Usage:
//
//	swfanon -in raw.swf -out public.swf
//	swfanon < raw.swf > public.swf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fairsched/internal/swf"
)

func main() {
	var (
		in  = flag.String("in", "", "input SWF file (default stdin)")
		out = flag.String("out", "", "output SWF file (default stdout)")
		v   = flag.Bool("v", false, "print mapping sizes to stderr")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	trace, err := swf.Parse(r)
	if err != nil {
		fatal(err)
	}
	users, groups := swf.Anonymize(trace)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := swf.Write(w, trace); err != nil {
		fatal(err)
	}
	if *v {
		fmt.Fprintf(os.Stderr, "anonymized %d records: %d users, %d groups\n",
			len(trace.Records), len(users), len(groups))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swfanon:", err)
	os.Exit(1)
}
