// Command schedbench measures the scheduler's performance trajectory and
// emits it as machine-readable JSON (the CI artifact BENCH_sched.json):
//
//   - per-event scheduling cost (ns/event) for representative composed
//     policies on a contended workload, exercising the shared-availability-
//     profile path every reservation and backfill check reads;
//   - sweep throughput (runs/sec, events/sec) for the paper's nine-policy
//     study over the calibrated synthetic trace;
//   - measurement-plane cost: the hybrid fair-start-time engine's
//     ns/arrival and allocs/arrival on deep contended queues (the §4.1
//     metric every fairness figure reads);
//   - trace-cache load throughput (jobs/sec) and manifest-campaign
//     throughput (runs/sec), cache-cold vs cache-warm, over a synthetic
//     three-trace manifest.
//
// Usage:
//
//	schedbench                          # default: scale 0.05 sweep, contended events
//	schedbench -out BENCH_sched.json    # write JSON to a file (default stdout)
//	schedbench -scale 0.1 -repeat 3     # heavier sweep, best-of-3 timing
//	schedbench -compare prev.json ...   # also print a warn-only benchstat-style
//	                                    # delta against a previous report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"fairsched/internal/core"
	"fairsched/internal/fairness"
	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/scenario"
	"fairsched/internal/sched"
	"fairsched/internal/sim"
	"fairsched/internal/sweep"
	"fairsched/internal/swf"
	"fairsched/internal/tracecache"
	"fairsched/internal/workload"
)

// policyBench is one per-event cost measurement.
type policyBench struct {
	Policy    string  `json:"policy"`
	Events    int64   `json:"events"`
	NsPerEvt  float64 `json:"ns_per_event"`
	Jobs      int     `json:"jobs"`
	RunMillis float64 `json:"run_ms"`
}

// sweepBench is the nine-policy sweep throughput measurement.
type sweepBench struct {
	Runs         int     `json:"runs"`
	Jobs         int     `json:"jobs"`
	Seconds      float64 `json:"seconds"`
	RunsPerSec   float64 `json:"runs_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	Parallel     int     `json:"parallel"`
}

// fairnessBench is one measurement-plane probe: the hybrid-FST engine's
// cost per arrival on a contended system with a queue of the given depth.
type fairnessBench struct {
	Queue            int     `json:"queue"`
	Running          int     `json:"running"`
	NsPerArrival     float64 `json:"ns_per_arrival"`
	AllocsPerArrival float64 `json:"allocs_per_arrival"`
}

// cacheBench is the trace-cache cold/warm measurement over a synthetic
// three-trace manifest. The jobs/sec pair times the load path alone (cold:
// stream SWF + encode + write the cache; warm: decode the cache); the
// runs/sec pair times a whole manifest campaign (cold: first run, caches
// building; warm: second run, every cache reused).
type cacheBench struct {
	Traces         int     `json:"traces"`
	Jobs           int     `json:"jobs"` // total converted jobs across the traces
	ColdJobsPerSec float64 `json:"cold_jobs_per_sec"`
	WarmJobsPerSec float64 `json:"warm_jobs_per_sec"`
	ColdRunsPerSec float64 `json:"cold_runs_per_sec"`
	WarmRunsPerSec float64 `json:"warm_runs_per_sec"`
}

// popBench is one population-scale measurement (DESIGN.md §15): generator
// throughput streaming a cohort population of the given size, the fairshare
// tracker's retained bytes per charged user, and per-event simulation cost
// under a fairshare-ordering policy on the generated workload. The job
// budget is fixed across sizes, so ns/event isolates the per-user index
// cost as the population grows (the 640-user row is the trace-scale anchor
// the larger rows are compared against).
type popBench struct {
	Users          int     `json:"users"`
	Jobs           int     `json:"jobs"`
	GenUsersPerSec float64 `json:"gen_users_per_sec"`
	GenJobsPerSec  float64 `json:"gen_jobs_per_sec"`
	BytesPerUser   float64 `json:"tracker_bytes_per_user"`
	Events         int64   `json:"events"`
	NsPerEvt       float64 `json:"ns_per_event"`
}

// eventSchema versions the meaning of the event-count denominators
// (Events, ns_per_event, events_per_sec). Version 2: the simulator dedups
// identical wake reschedules, so Result.Events counts real scheduling
// events only — about a third fewer than version-0/1 reports, whose counts
// included stale wake pops. Per-event rates are not comparable across
// schema versions (docs/PERFORMANCE.md).
const eventSchema = 2

type report struct {
	Schema     int             `json:"event_schema"`
	GoOS       string          `json:"goos"`
	GoArch     string          `json:"goarch"`
	CPUs       int             `json:"cpus"`
	When       string          `json:"when"`
	Scale      float64         `json:"scale"`
	Events     []policyBench   `json:"per_event"`
	Sweep      sweepBench      `json:"sweep"`
	Cache      *cacheBench     `json:"cache,omitempty"`
	Fairness   []fairnessBench `json:"fairness,omitempty"`
	Population []popBench      `json:"population,omitempty"`
	Failures   []string        `json:"failures,omitempty"`
}

var eventPolicies = []string{
	"cplant24.nomax.all", "cplant24.depth2", "easy", "easy.sjf",
	"cons.nomax", "consdyn.nomax", "depth8", "list.fairshare", "srpt",
}

func main() {
	var (
		out     = flag.String("out", "", "write JSON here (default stdout)")
		scale   = flag.Float64("scale", 0.05, "synthetic workload scale for the sweep measurement")
		seed    = flag.Int64("seed", 42, "workload seed")
		repeat  = flag.Int("repeat", 1, "repetitions; the best (fastest) timing is reported")
		parN    = flag.Int("parallel", 1, "sweep worker count (1: serial, the comparable configuration)")
		indent  = flag.Bool("indent", true, "indent the JSON output")
		timeout = flag.Duration("budget", 10*time.Minute, "soft overall budget; exceeded -> partial report")
		compare = flag.String("compare", "", "previous BENCH_sched.json to diff against (warn-only; a missing file is noted, never fatal)")
	)
	flag.Parse()

	rep := report{
		Schema: eventSchema,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		When:   time.Now().UTC().Format(time.RFC3339),
		Scale:  *scale,
	}
	deadline := time.Now().Add(*timeout)

	// Per-event costs on the contended workload (full-scale arrivals on a
	// quarter-size machine): deep queues keep the reservation and backfill
	// paths hot, so this is the number the shared-profile work moves.
	contended, err := workload.Generate(workload.Config{Seed: *seed, Scale: 0.1, SystemSize: 250})
	if err != nil {
		fatal(err)
	}
	for _, name := range eventPolicies {
		if time.Now().After(deadline) {
			rep.Failures = append(rep.Failures, "budget exhausted before "+name)
			break
		}
		pb, err := benchPolicy(name, contended, *repeat)
		if err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		rep.Events = append(rep.Events, pb)
	}

	// Nine-policy sweep throughput over the calibrated synthetic trace.
	jobs, err := workload.Generate(workload.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fatal(err)
	}
	best := sweepBench{}
	for r := 0; r < *repeat; r++ {
		sb, err := benchSweep(jobs, *parN)
		if err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("sweep: %v", err))
			break
		}
		if best.Seconds == 0 || sb.Seconds < best.Seconds {
			best = sb
		}
	}
	rep.Sweep = best

	// Trace-cache throughput, cold vs warm, over a synthetic three-trace
	// manifest.
	if time.Now().After(deadline) {
		rep.Failures = append(rep.Failures, "budget exhausted before cache bench")
	} else if cb, err := benchCache(*seed, *repeat, *parN); err != nil {
		rep.Failures = append(rep.Failures, fmt.Sprintf("cache: %v", err))
	} else {
		rep.Cache = &cb
	}

	// Measurement-plane cost: the hybrid-FST engine's per-arrival hot path
	// at increasing queue depths (fairness.MeasureArrivalCost drives the
	// same probe BenchmarkHybridFST uses).
	for _, queue := range []int{16, 128, 512} {
		const arrivals = 2000
		ns, allocs := fairness.MeasureArrivalCost(queue, 64, arrivals)
		for r := 1; r < *repeat; r++ {
			if n2, a2 := fairness.MeasureArrivalCost(queue, 64, arrivals); n2 < ns {
				ns, allocs = n2, a2
			}
		}
		rep.Fairness = append(rep.Fairness, fairnessBench{
			Queue: queue, Running: 64, NsPerArrival: ns, AllocsPerArrival: allocs,
		})
	}

	// Population-scale costs: generator throughput, tracker bytes/user and
	// per-event cost from trace scale (640 users) up to a million users.
	for _, size := range []int{640, 1_000, 100_000, 1_000_000} {
		if time.Now().After(deadline) {
			rep.Failures = append(rep.Failures, fmt.Sprintf("budget exhausted before population %d", size))
			break
		}
		pb, err := benchPopulation(size, *seed, *repeat)
		if err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("population %d: %v", size, err))
			continue
		}
		rep.Population = append(rep.Population, pb)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	if *indent {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *compare != "" {
		compareAgainst(*compare, rep)
	}
	if len(rep.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "schedbench: %d measurements failed\n", len(rep.Failures))
		os.Exit(1)
	}
}

// compareAgainst prints a benchstat-style delta table between a previous
// report and the current one on stderr. It is strictly warn-only: a
// missing or unreadable baseline is noted and never fails the run — CI
// wires the previous push's artifact in here, and the first run of a new
// repository has nothing to compare against.
func compareAgainst(path string, cur report) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedbench: no comparison baseline (%v); skipping delta table\n", err)
		return
	}
	var prev report
	if err := json.Unmarshal(raw, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "schedbench: unreadable baseline %s (%v); skipping delta table\n", path, err)
		return
	}
	w := os.Stderr
	fmt.Fprintf(w, "\nBENCH DELTA (warn-only) vs %s (recorded %s)\n", path, prev.When)
	fmt.Fprintf(w, "  %-34s %12s %12s %9s\n", "metric", "old", "new", "delta")
	row := func(name string, old, new float64) {
		if old == 0 && new == 0 {
			fmt.Fprintf(w, "  %-34s %12.1f %12.1f %9s\n", name, old, new, "=")
			return
		}
		if old == 0 {
			fmt.Fprintf(w, "  %-34s %12.1f %12.1f %9s\n", name, old, new, "n/a")
			return
		}
		fmt.Fprintf(w, "  %-34s %12.1f %12.1f %+8.1f%%\n", name, old, new, 100*(new-old)/old)
	}
	if prev.Schema == cur.Schema {
		prevEvents := make(map[string]policyBench, len(prev.Events))
		for _, p := range prev.Events {
			prevEvents[p.Policy] = p
		}
		for _, c := range cur.Events {
			if p, ok := prevEvents[c.Policy]; ok {
				row(c.Policy+" ns/event", p.NsPerEvt, c.NsPerEvt)
			}
		}
		row("sweep events/sec", prev.Sweep.EventsPerSec, cur.Sweep.EventsPerSec)
	} else {
		// The event-count denominator changed meaning between schema
		// versions (e.g. stale wake pops no longer counted), so per-event
		// rates from the two reports are not comparable: printing them
		// would show large spurious "regressions".
		fmt.Fprintf(w, "  (per-event rows skipped: baseline event schema %d, current %d — denominators differ)\n",
			prev.Schema, cur.Schema)
	}
	row("sweep runs/sec", prev.Sweep.RunsPerSec, cur.Sweep.RunsPerSec)
	if prev.Cache != nil && cur.Cache != nil {
		row("cache cold jobs/sec", prev.Cache.ColdJobsPerSec, cur.Cache.ColdJobsPerSec)
		row("cache warm jobs/sec", prev.Cache.WarmJobsPerSec, cur.Cache.WarmJobsPerSec)
		row("manifest cold runs/sec", prev.Cache.ColdRunsPerSec, cur.Cache.ColdRunsPerSec)
		row("manifest warm runs/sec", prev.Cache.WarmRunsPerSec, cur.Cache.WarmRunsPerSec)
	}
	prevPop := make(map[int]popBench, len(prev.Population))
	for _, p := range prev.Population {
		prevPop[p.Users] = p
	}
	for _, c := range cur.Population {
		if p, ok := prevPop[c.Users]; ok {
			row(fmt.Sprintf("pop %d users/sec", c.Users), p.GenUsersPerSec, c.GenUsersPerSec)
			row(fmt.Sprintf("pop %d bytes/user", c.Users), p.BytesPerUser, c.BytesPerUser)
			if prev.Schema == cur.Schema {
				row(fmt.Sprintf("pop %d ns/event", c.Users), p.NsPerEvt, c.NsPerEvt)
			}
		}
	}
	prevFair := make(map[int]fairnessBench, len(prev.Fairness))
	for _, p := range prev.Fairness {
		prevFair[p.Queue] = p
	}
	for _, c := range cur.Fairness {
		if p, ok := prevFair[c.Queue]; ok {
			row(fmt.Sprintf("fst queue%d ns/arrival", c.Queue), p.NsPerArrival, c.NsPerArrival)
			row(fmt.Sprintf("fst queue%d allocs/arrival", c.Queue), p.AllocsPerArrival, c.AllocsPerArrival)
		}
	}
}

// benchPopulation measures one population size: streaming-generation
// throughput, the fairshare tracker's retained bytes per user at that
// population, and per-event cost simulating the generated jobs under
// list.fairshare. The job budget is fixed (20k) so only the user axis
// varies between rows.
func benchPopulation(users int, seed int64, repeat int) (popBench, error) {
	const jobBudget = 20_000
	cfg := workload.PopConfig{Seed: seed, Users: users, Jobs: jobBudget}
	pb := popBench{Users: users}

	// Generator throughput: stream-and-discard, best of repeat.
	var genBest time.Duration
	count := 0
	for r := 0; r < repeat; r++ {
		n := 0
		t0 := time.Now()
		if _, err := workload.StreamPopulation(cfg, func(*job.Job) error { n++; return nil }); err != nil {
			return popBench{}, err
		}
		if el := time.Since(t0); genBest == 0 || el < genBest {
			genBest, count = el, n
		}
	}
	pb.GenUsersPerSec = float64(users) / genBest.Seconds()
	pb.GenJobsPerSec = float64(count) / genBest.Seconds()

	// Tracker residency: charge every user once and measure the retained
	// heap per user (the per-user index cost the dense paging moves).
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	tr := fairshare.NewTracker(fairshare.DefaultConfig(), 0)
	for u := 1; u <= users; u++ {
		tr.Charge(u, 1)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	pb.BytesPerUser = float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / float64(users)
	runtime.KeepAlive(tr)

	// Per-event cost under fairshare ordering on the generated workload.
	jobs, err := workload.GeneratePopulation(cfg)
	if err != nil {
		return popBench{}, err
	}
	pb.Jobs = len(jobs)
	spec, err := sched.ParseSpec("list.fairshare")
	if err != nil {
		return popBench{}, err
	}
	var bestRun time.Duration
	for r := 0; r < repeat; r++ {
		pol, err := sched.New(spec)
		if err != nil {
			return popBench{}, err
		}
		t0 := time.Now()
		res, err := sim.New(sim.Config{SystemSize: 1000}, pol).Run(jobs)
		if err != nil {
			return popBench{}, err
		}
		if el := time.Since(t0); bestRun == 0 || el < bestRun {
			bestRun = el
			pb.Events = res.Events
			pb.NsPerEvt = float64(el.Nanoseconds()) / float64(res.Events)
		}
	}
	return pb, nil
}

func benchPolicy(name string, jobs []*job.Job, repeat int) (policyBench, error) {
	spec, err := sched.ParseSpec(name)
	if err != nil {
		return policyBench{}, err
	}
	best := policyBench{Policy: name, Jobs: len(jobs)}
	for r := 0; r < repeat; r++ {
		pol, err := sched.New(spec)
		if err != nil {
			return policyBench{}, err
		}
		t0 := time.Now()
		cfg := sim.Config{SystemSize: 250, Preemptable: spec.PreemptTrigger != ""}
		res, err := sim.New(cfg, pol).Run(jobs)
		if err != nil {
			return policyBench{}, err
		}
		el := time.Since(t0)
		if best.RunMillis == 0 || el.Seconds()*1000 < best.RunMillis {
			best.RunMillis = el.Seconds() * 1000
			best.Events = res.Events
			best.NsPerEvt = float64(el.Nanoseconds()) / float64(res.Events)
		}
	}
	return best, nil
}

func benchSweep(jobs []*job.Job, parallel int) (sweepBench, error) {
	specs := core.AllSpecs()
	t0 := time.Now()
	runs, err := sweep.Runs(core.StudyConfig{}, specs, jobs, parallel)
	if err != nil {
		return sweepBench{}, err
	}
	el := time.Since(t0).Seconds()
	var events int64
	for _, r := range runs {
		events += r.Result.Events
	}
	return sweepBench{
		Runs:         len(runs),
		Jobs:         len(jobs),
		Seconds:      el,
		RunsPerSec:   float64(len(runs)) / el,
		EventsPerSec: float64(events) / el,
		Parallel:     parallel,
	}, nil
}

// benchCache writes three synthetic traces as SWF files, then measures the
// trace-cache's two levels: the load path alone (cold: stream + encode +
// write; warm: decode — best of repeat, summed over the traces) and a whole
// manifest campaign (cold: fresh cache dir, so every source builds its
// cache; warm: second pass over the same dir, so every source loads warm —
// memoization is defeated by rebuilding the sources between passes).
func benchCache(seed int64, repeat, parallel int) (cacheBench, error) {
	dir, err := os.MkdirTemp("", "schedbench-cache")
	if err != nil {
		return cacheBench{}, err
	}
	defer os.RemoveAll(dir)

	const nTraces = 3
	m := &tracecache.Manifest{Path: filepath.Join(dir, "traces.toml")}
	cb := cacheBench{Traces: nTraces}
	for i := 0; i < nTraces; i++ {
		jobs, err := workload.Generate(workload.Config{Seed: seed + int64(i), Scale: 0.05})
		if err != nil {
			return cacheBench{}, err
		}
		cb.Jobs += len(jobs)
		path := filepath.Join(dir, fmt.Sprintf("t%d.swf", i))
		f, err := os.Create(path)
		if err != nil {
			return cacheBench{}, err
		}
		werr := swf.Write(f, swf.FromJobs(jobs, swf.Header{Version: 2, MaxNodes: 1000, UnixStartTime: 878606400}))
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return cacheBench{}, werr
		}
		m.Entries = append(m.Entries, tracecache.ManifestEntry{
			Name: fmt.Sprintf("t%d", i), Path: path,
		})
	}

	// Load path alone, best-of-repeat per level. The cold pass rebuilds the
	// cache file every iteration; the warm pass decodes the one it left.
	cacheDir := filepath.Join(dir, "cache")
	var coldBest, warmBest time.Duration
	for r := 0; r < repeat; r++ {
		var cold, warm time.Duration
		for _, e := range m.Entries {
			cp := tracecache.CachePath(cacheDir, e.Path)
			t0 := time.Now()
			jobs, meta, err := tracecache.BuildFromSWF(e.Path, swf.ConvertOptions{})
			if err == nil {
				err = tracecache.WriteFile(cp, jobs, meta)
			}
			if err != nil {
				return cacheBench{}, err
			}
			cold += time.Since(t0)
			t0 = time.Now()
			if _, _, err := tracecache.ReadFile(cp); err != nil {
				return cacheBench{}, err
			}
			warm += time.Since(t0)
		}
		if coldBest == 0 || cold < coldBest {
			coldBest = cold
		}
		if warmBest == 0 || warm < warmBest {
			warmBest = warm
		}
	}
	cb.ColdJobsPerSec = float64(cb.Jobs) / coldBest.Seconds()
	cb.WarmJobsPerSec = float64(cb.Jobs) / warmBest.Seconds()

	// Whole-campaign throughput: two policies over the manifest's traces.
	// A fresh cache dir makes the first pass cold end to end.
	campDir := filepath.Join(dir, "campaign-cache")
	var specs []core.Spec
	for _, key := range []string{"cons.nomax", "consdyn.nomax"} {
		s, err := core.SpecByKey(key)
		if err != nil {
			return cacheBench{}, err
		}
		specs = append(specs, s)
	}
	runCampaign := func() (float64, error) {
		camp := sweep.Campaign{
			Sources:   scenario.ManifestSources(m, m.Entries, campDir),
			Scenarios: []scenario.Scenario{scenario.Baseline()},
			Seeds:     []int64{seed},
			Specs:     specs,
			Parallel:  parallel,
		}
		t0 := time.Now()
		cells, err := camp.Run()
		if err != nil {
			return 0, err
		}
		return float64(len(cells)*len(specs)) / time.Since(t0).Seconds(), nil
	}
	if cb.ColdRunsPerSec, err = runCampaign(); err != nil {
		return cacheBench{}, err
	}
	if cb.WarmRunsPerSec, err = runCampaign(); err != nil {
		return cacheBench{}, err
	}
	return cb, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedbench:", err)
	os.Exit(1)
}
