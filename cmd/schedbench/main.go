// Command schedbench measures the scheduler's performance trajectory and
// emits it as machine-readable JSON (the CI artifact BENCH_sched.json):
//
//   - per-event scheduling cost (ns/event) for representative composed
//     policies on a contended workload, exercising the shared-availability-
//     profile path every reservation and backfill check reads;
//   - sweep throughput (runs/sec, events/sec) for the paper's nine-policy
//     study over the calibrated synthetic trace.
//
// Usage:
//
//	schedbench                          # default: scale 0.05 sweep, contended events
//	schedbench -out BENCH_sched.json    # write JSON to a file (default stdout)
//	schedbench -scale 0.1 -repeat 3     # heavier sweep, best-of-3 timing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"fairsched/internal/core"
	"fairsched/internal/job"
	"fairsched/internal/sched"
	"fairsched/internal/sim"
	"fairsched/internal/sweep"
	"fairsched/internal/workload"
)

// policyBench is one per-event cost measurement.
type policyBench struct {
	Policy    string  `json:"policy"`
	Events    int64   `json:"events"`
	NsPerEvt  float64 `json:"ns_per_event"`
	Jobs      int     `json:"jobs"`
	RunMillis float64 `json:"run_ms"`
}

// sweepBench is the nine-policy sweep throughput measurement.
type sweepBench struct {
	Runs         int     `json:"runs"`
	Jobs         int     `json:"jobs"`
	Seconds      float64 `json:"seconds"`
	RunsPerSec   float64 `json:"runs_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	Parallel     int     `json:"parallel"`
}

type report struct {
	GoOS     string        `json:"goos"`
	GoArch   string        `json:"goarch"`
	CPUs     int           `json:"cpus"`
	When     string        `json:"when"`
	Scale    float64       `json:"scale"`
	Events   []policyBench `json:"per_event"`
	Sweep    sweepBench    `json:"sweep"`
	Failures []string      `json:"failures,omitempty"`
}

var eventPolicies = []string{
	"cplant24.nomax.all", "cplant24.depth2", "easy", "easy.sjf",
	"cons.nomax", "consdyn.nomax", "depth8", "list.fairshare",
}

func main() {
	var (
		out     = flag.String("out", "", "write JSON here (default stdout)")
		scale   = flag.Float64("scale", 0.05, "synthetic workload scale for the sweep measurement")
		seed    = flag.Int64("seed", 42, "workload seed")
		repeat  = flag.Int("repeat", 1, "repetitions; the best (fastest) timing is reported")
		parN    = flag.Int("parallel", 1, "sweep worker count (1: serial, the comparable configuration)")
		indent  = flag.Bool("indent", true, "indent the JSON output")
		timeout = flag.Duration("budget", 10*time.Minute, "soft overall budget; exceeded -> partial report")
	)
	flag.Parse()

	rep := report{
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		When:   time.Now().UTC().Format(time.RFC3339),
		Scale:  *scale,
	}
	deadline := time.Now().Add(*timeout)

	// Per-event costs on the contended workload (full-scale arrivals on a
	// quarter-size machine): deep queues keep the reservation and backfill
	// paths hot, so this is the number the shared-profile work moves.
	contended, err := workload.Generate(workload.Config{Seed: *seed, Scale: 0.1, SystemSize: 250})
	if err != nil {
		fatal(err)
	}
	for _, name := range eventPolicies {
		if time.Now().After(deadline) {
			rep.Failures = append(rep.Failures, "budget exhausted before "+name)
			break
		}
		pb, err := benchPolicy(name, contended, *repeat)
		if err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		rep.Events = append(rep.Events, pb)
	}

	// Nine-policy sweep throughput over the calibrated synthetic trace.
	jobs, err := workload.Generate(workload.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fatal(err)
	}
	best := sweepBench{}
	for r := 0; r < *repeat; r++ {
		sb, err := benchSweep(jobs, *parN)
		if err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("sweep: %v", err))
			break
		}
		if best.Seconds == 0 || sb.Seconds < best.Seconds {
			best = sb
		}
	}
	rep.Sweep = best

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	if *indent {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if len(rep.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "schedbench: %d measurements failed\n", len(rep.Failures))
		os.Exit(1)
	}
}

func benchPolicy(name string, jobs []*job.Job, repeat int) (policyBench, error) {
	spec, err := sched.ParseSpec(name)
	if err != nil {
		return policyBench{}, err
	}
	best := policyBench{Policy: name, Jobs: len(jobs)}
	for r := 0; r < repeat; r++ {
		pol, err := sched.New(spec)
		if err != nil {
			return policyBench{}, err
		}
		t0 := time.Now()
		res, err := sim.New(sim.Config{SystemSize: 250}, pol).Run(jobs)
		if err != nil {
			return policyBench{}, err
		}
		el := time.Since(t0)
		if best.RunMillis == 0 || el.Seconds()*1000 < best.RunMillis {
			best.RunMillis = el.Seconds() * 1000
			best.Events = res.Events
			best.NsPerEvt = float64(el.Nanoseconds()) / float64(res.Events)
		}
	}
	return best, nil
}

func benchSweep(jobs []*job.Job, parallel int) (sweepBench, error) {
	specs := core.AllSpecs()
	t0 := time.Now()
	runs, err := sweep.Runs(core.StudyConfig{}, specs, jobs, parallel)
	if err != nil {
		return sweepBench{}, err
	}
	el := time.Since(t0).Seconds()
	var events int64
	for _, r := range runs {
		events += r.Result.Events
	}
	return sweepBench{
		Runs:         len(runs),
		Jobs:         len(jobs),
		Seconds:      el,
		RunsPerSec:   float64(len(runs)) / el,
		EventsPerSec: float64(events) / el,
		Parallel:     parallel,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedbench:", err)
	os.Exit(1)
}
