// Command cplantsim runs one scheduling policy over a workload trace and
// prints the full metric summary: the user metrics (wait, turnaround,
// bounded slowdown), the system metrics (utilization, loss of capacity,
// makespan) and the hybrid-FST fairness metrics (percent unfair jobs,
// average miss time, per-width breakdowns).
//
// Usage:
//
//	cplantsim -policy cplant24.nomax.all -in ross.swf
//	cplantsim -policy cons.72max -synthetic -seed 42
//	cplantsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"fairsched/internal/core"
	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/metrics"
	"fairsched/internal/sim"
	"fairsched/internal/stats"
	"fairsched/internal/swf"
	"fairsched/internal/workload"
)

func main() {
	var (
		policy    = flag.String("policy", "cplant24.nomax.all", "policy name (see -list) or component chain (e.g. 'order=sjf+bf=easy')")
		in        = flag.String("in", "", "input SWF trace (conflicts with -synthetic)")
		synthetic = flag.Bool("synthetic", false, "generate the synthetic CPlant/Ross trace instead of reading one")
		seed      = flag.Int64("seed", 42, "synthetic workload seed")
		scale     = flag.Float64("scale", 1.0, "synthetic workload scale")
		nodes     = flag.Int("nodes", 0, "system size (default 1000 or trace MaxNodes)")
		decay     = flag.Float64("decay", 0.5, "fairshare decay factor per interval")
		interval  = flag.Int64("decay-interval", 24*3600, "fairshare decay interval (seconds)")
		kill      = flag.String("kill", "never", "wall-clock-limit kill policy: never, when-needed, always")
		split     = flag.String("split", "upfront", "max-runtime split mode: upfront, staggered, chained")
		equality  = flag.Bool("equality", false, "also compute the resource-equality metric")
		review    = flag.Bool("review", false, "also print the §4-review metrics (turnaround stddev, Jain indices, per-user table)")
		jsonOut   = flag.Bool("json", false, "emit the summary as JSON instead of text")
		list      = flag.Bool("list", false, "list policy names and exit")
		keepCanc  = flag.Bool("keep-cancelled", false, "keep cancelled (status 5) trace records, the pre-filtering behaviour")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(core.SpecKeys(), "\n"))
		return
	}
	spec, err := core.SpecByKey(*policy)
	if err != nil {
		fatal(err)
	}

	var jobs []*job.Job
	var epoch int64
	systemSize := *nodes
	switch {
	case *synthetic && *in != "":
		fatal(fmt.Errorf("-in and -synthetic are mutually exclusive"))
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		trace, err := swf.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		jobs = trace.JobsWith(swf.ConvertOptions{KeepCancelled: *keepCanc})
		epoch = fairshare.EpochFor(trace.Header.UnixStartTime, *interval)
		if systemSize <= 0 && trace.Header.MaxNodes > 0 {
			systemSize = trace.Header.MaxNodes
		}
		if systemSize <= 0 {
			systemSize = job.MaxNodes(jobs)
		}
	default:
		jobs, err = workload.Generate(workload.Config{Seed: *seed, SystemSize: systemSize, Scale: *scale})
		if err != nil {
			fatal(err)
		}
	}

	cfg := core.StudyConfig{
		SystemSize:     systemSize,
		Fairshare:      fairshare.Config{DecayFactor: *decay, DecayInterval: *interval},
		FairshareEpoch: epoch,
		Equality:       *equality,
	}
	switch *kill {
	case "never":
		cfg.Kill = sim.KillNever
	case "when-needed":
		cfg.Kill = sim.KillWhenNeeded
	case "always":
		cfg.Kill = sim.KillAlways
	default:
		fatal(fmt.Errorf("unknown -kill %q", *kill))
	}
	switch *split {
	case "upfront":
		cfg.Split = sim.SplitUpfront
	case "staggered":
		cfg.Split = sim.SplitStaggered
	case "chained":
		cfg.Split = sim.SplitChained
	default:
		fatal(fmt.Errorf("unknown -split %q", *split))
	}

	t0 := time.Now()
	run, err := core.Execute(cfg, spec, jobs)
	if err != nil {
		fatal(err)
	}
	s := run.Summary
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("policy              %s\n", s.Policy)
	fmt.Printf("system size         %d nodes\n", s.SystemSize)
	fmt.Printf("jobs                %d scheduled (%d submitted)\n", s.Jobs, len(jobs))
	fmt.Printf("makespan            %s\n", duration(s.Makespan))
	fmt.Printf("utilization         %.1f%%\n", 100*s.Utilization)
	fmt.Printf("loss of capacity    %.2f%%\n", 100*s.LossOfCapacity)
	fmt.Printf("avg wait            %s\n", duration(int64(s.AvgWait)))
	fmt.Printf("avg turnaround      %s\n", duration(int64(s.AvgTurnaround)))
	fmt.Printf("median turnaround   %s\n", duration(int64(s.MedianTurnaround)))
	fmt.Printf("bounded slowdown    %.1f\n", s.AvgBoundedSlowdown)
	fmt.Printf("percent unfair      %.2f%% of jobs, %.2f%% of load (%d of %d)\n",
		s.PercentUnfair, s.PercentUnfairLoad, s.UnfairJobs, s.FairnessJobs)
	fmt.Printf("avg miss time       %s\n", duration(int64(s.AvgMissTime)))
	if run.Equality != nil {
		fmt.Printf("equality deficit    %.0f proc-seconds/job\n", run.Equality.AveragePerJob())
	}
	fmt.Printf("\n%-10s %8s %14s %14s\n", "width", "jobs", "avg miss", "avg turnaround")
	for w := 0; w < job.NumWidthCategories; w++ {
		if s.JobsByWidth[w] == 0 {
			continue
		}
		fmt.Printf("%-10s %8d %14s %14s\n", job.WidthLabels[w], s.JobsByWidth[w],
			duration(int64(s.AvgMissByWidth[w])), duration(int64(s.AvgTATByWidth[w])))
	}
	if *review {
		printReview(run)
	}
	fmt.Printf("\nsimulated %d events in %v\n", run.Result.Events, time.Since(t0).Round(time.Millisecond))
}

// printReview prints the Section 4 "review" metrics the paper contrasts the
// hybrid FST against, plus the miss-time distribution and the heaviest
// users.
func printReview(run *core.Run) {
	res := run.Result
	fmt.Printf("\n--- §4 review metrics ---\n")
	fmt.Printf("turnaround stddev      %s\n", duration(int64(metrics.TurnaroundStdDev(res))))
	fmt.Printf("jain index (service)   %.3f\n", metrics.JainIndexOfUserService(res))
	fmt.Printf("jain index (slowdown)  %.3f\n", metrics.JainIndexOfUserSlowdown(res))

	if run.FST != nil {
		var misses []float64
		for _, r := range res.Records {
			if fst, ok := run.FST[r.Job.ID]; ok && r.Start > fst {
				misses = append(misses, float64(r.Start-fst))
			}
		}
		if len(misses) > 0 {
			fmt.Printf("miss-time percentiles  p50=%s p90=%s p99=%s max=%s (over %d unfair jobs)\n",
				duration(int64(stats.Percentile(misses, 50))),
				duration(int64(stats.Percentile(misses, 90))),
				duration(int64(stats.Percentile(misses, 99))),
				duration(int64(stats.Max(misses))), len(misses))
		}
	}

	per := metrics.ByUser(res)
	sort.Slice(per, func(i, k int) bool { return per[i].ProcSeconds > per[k].ProcSeconds })
	if len(per) > 8 {
		per = per[:8]
	}
	fmt.Printf("\n%-8s %8s %16s %14s %16s\n", "user", "jobs", "proc-hours", "avg wait", "avg turnaround")
	for _, u := range per {
		fmt.Printf("%-8d %8d %16.0f %14s %16s\n", u.User, u.Jobs, u.ProcSeconds/3600,
			duration(int64(u.AvgWait)), duration(int64(u.AvgTurnaround)))
	}
}

func duration(seconds int64) string {
	return (time.Duration(seconds) * time.Second).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cplantsim:", err)
	os.Exit(1)
}
