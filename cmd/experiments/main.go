// Command experiments regenerates every table and figure of the paper's
// evaluation: Tables 1-2 and Figures 3-7 (workload characterization) and
// Figures 8-19 (the nine-policy fairness study), followed by a paper-vs-
// measured comparison and the Results-section claim checklist. It is also
// the campaign driver: a (trace × scenario × policy × seed) matrix swept
// with streamed, memory-bounded execution.
//
// Usage:
//
//	experiments                 # full-scale sweep, one worker per CPU
//	experiments -parallel 1     # serial sweep (byte-identical output)
//	experiments -scale 0.25     # quick quarter-scale sweep
//	experiments -in ross.swf    # sweep over an existing trace
//	experiments -seeds 10       # tally claim robustness across 10 seeds
//	experiments -markdown       # also emit EXPERIMENTS.md-style tables
//
// Campaign mode (any -trace, -scenario, -policy or -window flag):
//
//	experiments -list-scenarios                  # show the built-in scenarios
//	experiments -list-policies                   # show the policy registry + spec grammar
//	experiments -scenario baseline -scenario load-scaled
//	experiments -trace ross.swf -trace kth.swf -scenario estimate-perturbed
//	experiments -scenario 'load=1.5+perturb=3' -window 1w..5w -seeds 3
//	experiments -policy cplant24.nomax.all -policy 'order=sjf+bf=easy+starve=24h.all'
//	experiments -policy-parallel ...     # fan the policy axis across workers too
//	experiments -list-slos               # show the per-user SLO grammar
//	experiments -scenario slo-tiered     # built-in tiered wait-time SLOs
//	experiments -slo 'p50:2h,p90:24h,default:96h'   # tag users in every scenario
//	experiments -topology 'part=a:600,part=b:400,queue=x:part=a,queue=y:part=b' \
//	    -scenario 'queue=p50:x,default:y'           # partitioned machine, routed users
//	experiments -topology ... -partition-parallel 4 # parallel per-partition event loops
//
// Archive-scale campaigns name their traces in a manifest instead of
// repeating -trace paths; -cache-dir adds the binary trace cache:
//
//	experiments -manifest traces.toml -list-traces   # show the trace set
//	experiments -manifest traces.toml -cache-dir .fairsched-cache
//	experiments -manifest traces.toml -trace KTH-SP2 -trace CTC-SP2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"fairsched/internal/core"
	"fairsched/internal/experiments"
	"fairsched/internal/fairshare"
	"fairsched/internal/scenario"
	"fairsched/internal/sweep"
	"fairsched/internal/swf"
	"fairsched/internal/topology"
	"fairsched/internal/tracecache"
	"fairsched/internal/workload"
)

// stringList accumulates a repeatable string flag.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var traces, scenarios, policies stringList
	var (
		in       = flag.String("in", "", "input SWF trace (default: generate the synthetic trace)")
		seed     = flag.Int64("seed", 42, "synthetic workload / scenario seed")
		scale    = flag.Float64("scale", 1.0, "synthetic workload scale")
		nodes    = flag.Int("nodes", 0, "system size (default 1000, or the trace's MaxNodes)")
		burst    = flag.Float64("burst", 0, "workload burst gamma (default 0.3)")
		decay    = flag.Float64("decay", 0.5, "fairshare decay factor")
		csv      = flag.String("csv", "", "also export every artifact as CSV into this directory")
		mcmp     = flag.Bool("metrics", false, "also compare the §4 fairness metrics (hybrid vs CONS-P) across all policies")
		sweepN   = flag.Int("seeds", 0, "extra seeds: claim-robustness tally (full study) or campaign seed count")
		parallel = flag.Int("parallel", 0, "worker pool size for the sweep engine (0: one per CPU; 1: serial)")
		markdown = flag.Bool("markdown", false, "also emit the paper-vs-measured and claim tables as Markdown (for EXPERIMENTS.md)")

		window    = flag.String("window", "", "campaign: slice every scenario to START..END (e.g. 1w..5w)")
		sloSpec   = flag.String("slo", "", "campaign: tag users with SLO targets in every scenario (e.g. 'p50:2h,p90:24h,default:96h'; see -list-slos)")
		topoSpec  = flag.String("topology", "", "campaign: partition the machine and hang a queue tree (e.g. 'part=a:600,part=b:400,queue=x:part=a,queue=y:part=b:order=sjf'; route users with -scenario 'queue=...'/'partition=...')")
		partPar   = flag.Int("partition-parallel", 0, "campaign: how many partition event loops run concurrently per cell (needs -topology; report byte-identical at every width)")
		listSLOs  = flag.Bool("list-slos", false, "list the SLO grammar and built-in SLO scenarios, then exit")
		polPar    = flag.Bool("policy-parallel", false, "campaign: fan the policy axis out across the worker pool too (wide-registry sweeps over few cells; report stays byte-identical)")
		listScens = flag.Bool("list-scenarios", false, "list the built-in scenarios and the spec grammar, then exit")
		listPols  = flag.Bool("list-policies", false, "list the policy registry and the spec grammar, then exit (-markdown: README table)")
		keepCanc  = flag.Bool("keep-cancelled", false, "keep cancelled (status 5) trace records, the pre-filtering behaviour")

		manifest   = flag.String("manifest", "", "campaign: trace-set manifest (traces.toml); -trace then selects entries by name")
		cacheDir   = flag.String("cache-dir", "", "binary trace-cache directory for manifest traces (empty: stream SWF every load)")
		listTraces = flag.Bool("list-traces", false, "list the manifest's traces (name, path, overrides), then exit (needs -manifest)")
	)
	flag.Var(&traces, "trace", "campaign: an SWF trace file, or with -manifest a trace name (repeatable; default: the synthetic trace / every manifest entry)")
	flag.Var(&scenarios, "scenario", "campaign: a scenario name or transform chain (repeatable; see -list-scenarios)")
	flag.Var(&policies, "policy", "campaign: a policy name or component chain (repeatable; see -list-policies; default: the paper's nine)")
	flag.Parse()

	if *listPols {
		if *markdown {
			experiments.PolicyTableMarkdown(os.Stdout)
			return
		}
		experiments.ListPolicies(os.Stdout)
		return
	}
	if *listSLOs {
		fmt.Println("Per-user SLO targets (the slo= scenario transform, or the -slo flag):")
		fmt.Println("  slo=CLASS:TARGET[,CLASS:TARGET]...")
		fmt.Println()
		fmt.Println("Classes:")
		fmt.Println("  p<1..100>   usage-quantile band: users ranked by total processor-seconds")
		fmt.Println("              ascending; p50 is the lightest half, a following p90 the next 40%")
		fmt.Println("  default     every user above the largest quantile band")
		fmt.Println("  user<id>    explicit per-user override (wins over bands)")
		fmt.Println()
		fmt.Println("Targets:")
		fmt.Println("  a duration  maximum acceptable queuing delay (e.g. 2h, 30m, 90s)")
		fmt.Println("  <f>x        maximum acceptable bounded slowdown (e.g. 8x, 2.5x)")
		fmt.Println("  none        explicitly best-effort (tracked nowhere)")
		fmt.Println("  a band may carry both kinds: slo=p50:2h,p50:6x")
		fmt.Println()
		fmt.Println("Built-in SLO scenarios:")
		for _, s := range sortedScenarios() {
			for _, tr := range s.Transforms {
				// The same interface dispatch the campaign engine uses.
				if _, ok := tr.(scenario.SLOProvider); ok {
					fmt.Printf("  %-20s %s\n", s.Name, s.Description)
					break
				}
			}
		}
		fmt.Println()
		fmt.Println("Examples:")
		fmt.Println("  -scenario 'slo=p50:2h,p90:24h,default:96h'")
		fmt.Println("  -scenario load-scaled -slo 'p50:2h,default:96h'   (tags every scenario)")
		fmt.Println("  -scenario slo-tiered -policy-parallel")
		return
	}
	if *listScens {
		fmt.Println("Built-in scenarios:")
		for _, s := range sortedScenarios() {
			fmt.Printf("  %-20s %s\n", s.Name, s.Description)
		}
		fmt.Println("\nAd-hoc chains join transforms with '+':")
		fmt.Println("  load=1.5  window=1d..8d  users=top8  users=3.7.11  perturb=3")
		fmt.Println("  burst=at:7d.jobs:200.nodes:8.runtime:1h[.spread:1h][.est:2h][.user:42]")
		fmt.Println("  slo=p50:2h,p90:24h,default:96h (see -list-slos)")
		fmt.Println("  queue=p50:org/a,default:org/b  partition=p50:fast,default:slow")
		fmt.Println("      route users to queue-tree leaves / partitions (with -topology)")
		fmt.Println("  pop=users:100k,jobs:25k,cohorts:4,weeks:4,churn:0.25,zipf:1.3")
		fmt.Println("      replace the workload with a generated population (k/m suffixes ok)")
		fmt.Println("\nExample: -scenario 'load=1.5+perturb=3'")
		return
	}

	if *listTraces {
		if *manifest == "" {
			fatal(fmt.Errorf("-list-traces needs -manifest"))
		}
		m, err := tracecache.LoadManifest(*manifest)
		if err != nil {
			fatal(err)
		}
		for _, e := range m.Entries {
			fmt.Printf("%-20s %s\n", e.Name, m.ResolvePath(e))
			if e.SHA256 != [32]byte{} {
				fmt.Printf("%-20s   sha256:%x\n", "", e.SHA256)
			}
			var over []string
			if e.MaxNodes > 0 {
				over = append(over, fmt.Sprintf("max-nodes=%d", e.MaxNodes))
			}
			if e.UnixStartTime > 0 {
				over = append(over, fmt.Sprintf("unix-start-time=%d", e.UnixStartTime))
			}
			if e.Epoch > 0 {
				over = append(over, fmt.Sprintf("epoch=%d", e.Epoch))
			}
			if e.KeepCancelled {
				over = append(over, "keep-cancelled")
			}
			if len(over) > 0 {
				fmt.Printf("%-20s   %s\n", "", strings.Join(over, " "))
			}
		}
		return
	}
	if *cacheDir != "" && *manifest == "" {
		fatal(fmt.Errorf("-cache-dir needs -manifest (plain -trace paths always stream)"))
	}

	study := core.StudyConfig{
		SystemSize: *nodes,
		Fairshare:  fairshare.Config{DecayFactor: *decay},
	}
	convOpts := swf.ConvertOptions{KeepCancelled: *keepCanc}

	if *partPar != 0 && *topoSpec == "" {
		fatal(fmt.Errorf("-partition-parallel needs -topology (a flat machine has one event loop)"))
	}
	if *topoSpec != "" {
		topo, err := topology.Parse(*topoSpec)
		if err != nil {
			fatal(err)
		}
		study.Topology = topo
		study.PartitionParallel = *partPar
	}

	if len(traces) > 0 || len(scenarios) > 0 || len(policies) > 0 || *window != "" || *sloSpec != "" || *topoSpec != "" || *manifest != "" {
		// A manifest resolves the trace axis up front: its entries become the
		// named sources, with -trace selecting a subset by name. The sources
		// carry their own per-entry convert options and checksum pins, so the
		// -keep-cancelled flag does not apply to them.
		var sources []scenario.Source
		if *manifest != "" {
			if *in != "" {
				fatal(fmt.Errorf("-in does not combine with -manifest (name the trace in the manifest)"))
			}
			m, err := tracecache.LoadManifest(*manifest)
			if err != nil {
				fatal(err)
			}
			entries, err := m.Select(traces)
			if err != nil {
				fatal(err)
			}
			sources = scenario.ManifestSources(m, entries, *cacheDir)
		}
		// -in is the legacy spelling of -trace; honor it in campaign mode
		// too rather than silently sweeping the synthetic workload.
		if *in != "" {
			traces = append(stringList{*in}, traces...)
		}
		// Refuse flag combinations the campaign path does not implement —
		// exiting 0 without the requested artifacts would be worse.
		switch {
		case *csv != "":
			fatal(fmt.Errorf("-csv is not supported in campaign mode (run the single-trace path)"))
		case *mcmp:
			fatal(fmt.Errorf("-metrics is not supported in campaign mode (run the single-trace path)"))
		case *markdown:
			fatal(fmt.Errorf("-markdown is not supported in campaign mode (run the single-trace path)"))
		}
		runCampaign(sources, traces, scenarios, policies, *window, *sloSpec, study, convOpts, campaignParams{
			seed: *seed, seeds: *sweepN, scale: *scale, burstGamma: *burst,
			systemSize: *nodes, parallel: *parallel, policyParallel: *polPar,
		})
		if *manifest != "" {
			// CI's cache-determinism step greps this line to assert the
			// second run reused every cache file.
			fmt.Fprintln(os.Stderr, tracecache.DefaultStats.String())
		}
		return
	}
	if *polPar {
		fatal(fmt.Errorf("-policy-parallel only applies to campaign mode (add -trace/-scenario/-policy/-window/-slo)"))
	}

	t0 := time.Now()
	var res *experiments.Results
	var err error
	if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		trace, perr := swf.Parse(f)
		f.Close()
		if perr != nil {
			fatal(perr)
		}
		jobs := trace.JobsWith(convOpts)
		if study.SystemSize <= 0 && trace.Header.MaxNodes > 0 {
			study.SystemSize = trace.Header.MaxNodes
		}
		// Align fairshare decay to the trace's wall clock (real schedulers
		// decay at fixed times of day, not at offsets from the first job).
		study.FairshareEpoch = fairshare.EpochFor(
			trace.Header.UnixStartTime, study.Fairshare.DecayInterval)
		res, err = experiments.RunOnParallel(study, jobs, *parallel)
	} else {
		res, err = experiments.Run(experiments.Config{
			Workload: workload.Config{Seed: *seed, Scale: *scale, SystemSize: *nodes, BurstGamma: *burst},
			Study:    study,
			Parallel: *parallel,
		})
	}
	if err != nil {
		fatal(err)
	}
	experiments.WriteReport(os.Stdout, res, time.Since(t0))
	if *markdown {
		experiments.WriteMarkdownReport(os.Stdout, res)
	}
	if *mcmp {
		rows, err := experiments.CompareMetrics(study, core.AllSpecs(), res.Jobs, false, *parallel)
		if err != nil {
			fatal(err)
		}
		experiments.RenderMetricComparison(os.Stdout, rows)
	}
	if *csv != "" {
		if err := experiments.ExportCSV(*csv, res); err != nil {
			fatal(err)
		}
		fmt.Printf("CSV artifacts written to %s\n", *csv)
	}
	if *sweepN > 0 {
		seeds := make([]int64, *sweepN)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		tally, err := experiments.SeedSweep(experiments.Config{
			Workload: workload.Config{Scale: *scale, SystemSize: *nodes, BurstGamma: *burst},
			Study:    study,
			Parallel: *parallel,
		}, seeds)
		if tally != nil {
			// Surviving seeds are still tallied when some runs failed.
			experiments.RenderSeedSweep(os.Stdout, tally, seeds)
		}
		if err != nil {
			fatal(err)
		}
	}
}

type campaignParams struct {
	seed           int64
	seeds          int
	scale          float64
	burstGamma     float64
	systemSize     int
	parallel       int
	policyParallel bool
}

// runCampaign assembles and executes the (trace × scenario × seed × policy)
// matrix, rendering one table per cell. Partial failures are reported to
// stderr after the surviving cells.
func runCampaign(sources []scenario.Source, traces, scenSpecs, polSpecs []string, window, sloSpec string, study core.StudyConfig, convOpts swf.ConvertOptions, p campaignParams) {
	if sources == nil {
		for _, path := range traces {
			sources = append(sources, scenario.TraceFileWith(path, convOpts))
		}
	}
	if len(sources) == 0 {
		sources = append(sources, scenario.Synthetic(workload.Config{
			Scale: p.scale, SystemSize: p.systemSize, BurstGamma: p.burstGamma,
		}))
	}
	var scens []scenario.Scenario
	for _, spec := range scenSpecs {
		s, err := scenario.Parse(spec)
		if err != nil {
			fatal(err)
		}
		scens = append(scens, s)
	}
	if len(scens) == 0 {
		scens = append(scens, scenario.Baseline())
	}
	// The policy axis resolves through the same registry + grammar as the
	// scenario axis; an unknown spec fails here with its parse position
	// rather than silently falling back to the default set.
	var specs []core.Spec
	for _, ps := range polSpecs {
		s, err := core.SpecByKey(ps)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, s)
	}
	if window != "" {
		tr, err := scenario.ParseTransform("window=" + window)
		if err != nil {
			fatal(err)
		}
		for i := range scens {
			scens[i] = scens[i].With(tr)
		}
	}
	if sloSpec != "" {
		// Appended last, so its quantile bands rank the users of each
		// scenario's final transformed workload.
		tr, err := scenario.ParseTransform("slo=" + sloSpec)
		if err != nil {
			fatal(err)
		}
		for i := range scens {
			scens[i] = scens[i].With(tr)
		}
	}
	seeds := []int64{p.seed}
	for i := 1; i < p.seeds; i++ {
		seeds = append(seeds, p.seed+int64(i))
	}
	t0 := time.Now()
	nPolicies := len(specs)
	if nPolicies == 0 {
		nPolicies = len(core.AllSpecs())
	}
	cells, err := sweep.Campaign{
		Sources:        sources,
		Scenarios:      scens,
		Seeds:          seeds,
		Specs:          specs,
		Study:          study,
		Parallel:       p.parallel,
		PolicyParallel: p.policyParallel,
	}.Run()
	experiments.RenderCampaign(os.Stdout, cells)
	fmt.Printf("campaign: %d cells × %d policies in %s\n",
		len(cells), nPolicies, time.Since(t0).Round(time.Millisecond))
	if err != nil {
		fatal(err)
	}
}

// sortedScenarios returns the builtin scenarios sorted by name: listings
// are lookup tables, so they render in a deterministic scan-friendly order
// regardless of registration order.
func sortedScenarios() []scenario.Scenario {
	ss := scenario.Builtins()
	sort.Slice(ss, func(i, k int) bool { return ss[i].Name < ss[k].Name })
	return ss
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
