// Command experiments regenerates every table and figure of the paper's
// evaluation: Tables 1-2 and Figures 3-7 (workload characterization) and
// Figures 8-19 (the nine-policy fairness study), followed by a paper-vs-
// measured comparison and the Results-section claim checklist.
//
// Usage:
//
//	experiments                 # full-scale sweep, one worker per CPU
//	experiments -parallel 1     # serial sweep (byte-identical output)
//	experiments -scale 0.25     # quick quarter-scale sweep
//	experiments -in ross.swf    # sweep over an existing trace
//	experiments -seeds 10       # tally claim robustness across 10 seeds
//	experiments -markdown       # also emit EXPERIMENTS.md-style tables
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fairsched/internal/core"
	"fairsched/internal/experiments"
	"fairsched/internal/fairshare"
	"fairsched/internal/swf"
	"fairsched/internal/workload"
)

func main() {
	var (
		in       = flag.String("in", "", "input SWF trace (default: generate the synthetic trace)")
		seed     = flag.Int64("seed", 42, "synthetic workload seed")
		scale    = flag.Float64("scale", 1.0, "synthetic workload scale")
		nodes    = flag.Int("nodes", 0, "system size (default 1000)")
		burst    = flag.Float64("burst", 0, "workload burst gamma (default 0.3)")
		decay    = flag.Float64("decay", 0.5, "fairshare decay factor")
		csv      = flag.String("csv", "", "also export every artifact as CSV into this directory")
		mcmp     = flag.Bool("metrics", false, "also compare the §4 fairness metrics (hybrid vs CONS-P) across all policies")
		sweep    = flag.Int("seeds", 0, "also tally claim robustness across this many extra seeds (full study per seed)")
		parallel = flag.Int("parallel", 0, "worker pool size for the sweep engine (0: one per CPU; 1: serial)")
		markdown = flag.Bool("markdown", false, "also emit the paper-vs-measured and claim tables as Markdown (for EXPERIMENTS.md)")
	)
	flag.Parse()

	study := core.StudyConfig{
		SystemSize: *nodes,
		Fairshare:  fairshare.Config{DecayFactor: *decay},
	}
	t0 := time.Now()
	var res *experiments.Results
	var err error
	if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		trace, perr := swf.Parse(f)
		f.Close()
		if perr != nil {
			fatal(perr)
		}
		jobs := trace.Jobs()
		if study.SystemSize <= 0 && trace.Header.MaxNodes > 0 {
			study.SystemSize = trace.Header.MaxNodes
		}
		res, err = experiments.RunOnParallel(study, jobs, *parallel)
	} else {
		res, err = experiments.Run(experiments.Config{
			Workload: workload.Config{Seed: *seed, Scale: *scale, SystemSize: *nodes, BurstGamma: *burst},
			Study:    study,
			Parallel: *parallel,
		})
	}
	if err != nil {
		fatal(err)
	}
	experiments.WriteReport(os.Stdout, res, time.Since(t0))
	if *markdown {
		experiments.WriteMarkdownReport(os.Stdout, res)
	}
	if *mcmp {
		rows, err := experiments.CompareMetrics(study, core.AllSpecs(), res.Jobs, false, *parallel)
		if err != nil {
			fatal(err)
		}
		experiments.RenderMetricComparison(os.Stdout, rows)
	}
	if *csv != "" {
		if err := experiments.ExportCSV(*csv, res); err != nil {
			fatal(err)
		}
		fmt.Printf("CSV artifacts written to %s\n", *csv)
	}
	if *sweep > 0 {
		seeds := make([]int64, *sweep)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		tally, err := experiments.SeedSweep(experiments.Config{
			Workload: workload.Config{Scale: *scale, SystemSize: *nodes, BurstGamma: *burst},
			Study:    study,
			Parallel: *parallel,
		}, seeds)
		if tally != nil {
			// Surviving seeds are still tallied when some runs failed.
			experiments.RenderSeedSweep(os.Stdout, tally, seeds)
		}
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
