// Command hypotheses runs the declarative claim harness: every registered
// claim (the paper's 16 Results-section statements, plus any ad-hoc -spec)
// expands into one campaign over the union of the claims' scenarios, seeds
// and policies, and the per-seed verdicts render as a deterministic
// FINDINGS report — byte-identical at every -parallel setting and in both
// task-granularity modes.
//
// Usage:
//
//	hypotheses                        # all claims, full FINDINGS report
//	hypotheses -list-claims           # the claim registry, canonical grammar forms
//	hypotheses -tier 1                # only the invariant-grade claims (CI gate)
//	hypotheses -claim fig14-consdyn-fewest-unfair
//	hypotheses -spec 'claim quick: consdyn.nomax < cplant24.nomax.all on unfair_pct'
//	hypotheses -seeds 42..44 -scale 0.25      # quick pass, overriding seeds clauses
//	hypotheses -markdown              # the EXPERIMENTS.md checklist table
//	hypotheses -trace ross.swf        # claims over a real SWF trace
//	hypotheses -manifest traces.toml -cache-dir .cache  # trace-scoped claims
//
// Exit status: 1 when any tier ≤ 2 claim among those run is REFUTED (its
// reference seed failed); tier 3 claims are recorded but never gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fairsched/internal/core"
	_ "fairsched/internal/experiments" // registers the paper's claims
	"fairsched/internal/fairshare"
	"fairsched/internal/hypothesis"
	"fairsched/internal/scenario"
	"fairsched/internal/tracecache"
	"fairsched/internal/workload"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

// gateTier is the highest tier that fails the process: tiers 1 and 2 must
// at least hold on their reference seed; tier 3 is recorded, never gating.
const gateTier = 2

func main() {
	var claimIDs, specTexts stringList
	var (
		list     = flag.Bool("list-claims", false, "list the registered claims (canonical grammar form, tier, statement), then exit")
		tier     = flag.Int("tier", 0, "run only claims with tier <= N (0: all)")
		markdown = flag.Bool("markdown", false, "emit the claim-checklist Markdown table (for EXPERIMENTS.md) instead of the FINDINGS report")
		seedsStr = flag.String("seeds", "", "override every claim's seeds clause (grammar: 42..51, 1+3+5..9)")
		trace    = flag.String("trace", "", "run the claims over an SWF trace file (default: the calibrated synthetic trace)")
		manifest = flag.String("manifest", "", "trace-set manifest (traces.toml); its entries become the named sources trace clauses select")
		cacheDir = flag.String("cache-dir", "", "binary trace-cache directory for manifest sources (empty: stream SWF every load)")
		scale    = flag.Float64("scale", 1.0, "synthetic workload scale")
		nodes    = flag.Int("nodes", 0, "system size (default 1000, or the trace's MaxNodes)")
		burst    = flag.Float64("burst", 0, "synthetic workload burst gamma (default 0.3)")
		decay    = flag.Float64("decay", 0.5, "fairshare decay factor")
		parallel = flag.Int("parallel", 0, "worker pool size (0: one per CPU; 1: serial — output is byte-identical at every setting)")
		polPar   = flag.Bool("policy-parallel", false, "fan the policy axis across the worker pool too (report stays byte-identical)")
	)
	flag.Var(&claimIDs, "claim", "run one registered claim by id (repeatable)")
	flag.Var(&specTexts, "spec", "run an ad-hoc claim written in the grammar (repeatable)")
	flag.Parse()

	if *list {
		for _, s := range hypothesis.Registered() {
			fmt.Printf("%s (tier %d)\n", s.ID, s.EffectiveTier())
			fmt.Printf("  %s\n", s.Canonical())
			if s.Statement != "" {
				fmt.Printf("  %s\n", s.Statement)
			}
		}
		return
	}

	specs, err := selectSpecs(claimIDs, specTexts, *tier)
	if err != nil {
		fatal(err)
	}

	opt := hypothesis.CampaignOptions{
		Study: core.StudyConfig{
			SystemSize: *nodes,
			Fairshare:  fairshare.Config{DecayFactor: *decay},
		},
		Parallel:       *parallel,
		PolicyParallel: *polPar,
	}
	if *seedsStr != "" {
		seeds, err := hypothesis.ParseSeeds(*seedsStr)
		if err != nil {
			fatal(err)
		}
		opt.Seeds = seeds
	}
	if *trace != "" {
		opt.Source = scenario.TraceFile(*trace)
	} else {
		opt.Source = scenario.Synthetic(workload.Config{
			Scale: *scale, SystemSize: *nodes, BurstGamma: *burst,
		})
	}
	if *manifest != "" {
		m, err := tracecache.LoadManifest(*manifest)
		if err != nil {
			fatal(err)
		}
		opt.Sources = scenario.ManifestSources(m, m.Entries, *cacheDir)
	}

	eval, err := hypothesis.RunCampaign(specs, opt)
	if err != nil {
		fatal(err)
	}
	if *markdown {
		hypothesis.RenderMarkdown(os.Stdout, eval)
	} else {
		hypothesis.RenderFindings(os.Stdout, eval)
	}
	if failed := eval.GateFailed(gateTier); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "hypotheses: %d tier<=%d claim(s) refuted: %s\n",
			len(failed), gateTier, strings.Join(failed, ", "))
		os.Exit(1)
	}
}

// selectSpecs resolves which claims to run: explicit -claim ids and -spec
// texts if any were given, the whole registry otherwise, with the -tier
// filter applied last.
func selectSpecs(claimIDs, specTexts stringList, tier int) ([]hypothesis.Spec, error) {
	var specs []hypothesis.Spec
	for _, id := range claimIDs {
		s, ok := hypothesis.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown claim %q (see -list-claims)", id)
		}
		specs = append(specs, s)
	}
	for _, text := range specTexts {
		s, err := hypothesis.Parse(text)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	if len(claimIDs) == 0 && len(specTexts) == 0 {
		specs = hypothesis.Registered()
	}
	if tier > 0 {
		kept := specs[:0]
		for _, s := range specs {
			if s.EffectiveTier() <= tier {
				kept = append(kept, s)
			}
		}
		specs = kept
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no claims selected")
	}
	return specs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hypotheses:", err)
	os.Exit(1)
}
