// Command swfstat characterizes an SWF workload trace the way the paper's
// Section 2.2 characterizes CPlant/Ross: Table 1 (job counts), Table 2
// (processor-hours) and the Figure 4-7 statistics (node-allocation
// standards, estimate accuracy, overestimation factors).
//
// Usage:
//
//	swfstat -in ross.swf
//	workloadgen | swfstat
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fairsched/internal/experiments"
	"fairsched/internal/swf"
)

func main() {
	in := flag.String("in", "", "input SWF file (default stdin)")
	keepCanc := flag.Bool("keep-cancelled", false, "characterize cancelled (status 5) records too, the pre-filtering behaviour")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	trace, err := swf.Parse(r)
	if err != nil {
		fatal(err)
	}
	jobs := trace.JobsWith(swf.ConvertOptions{KeepCancelled: *keepCanc})
	if len(jobs) == 0 {
		fatal(fmt.Errorf("no jobs in trace"))
	}
	c := experiments.Characterize(jobs)
	experiments.RenderTable1(os.Stdout, c.Table1)
	experiments.RenderTable2(os.Stdout, c.Table2)
	experiments.RenderCharacterization(os.Stdout, c)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swfstat:", err)
	os.Exit(1)
}
