// Package fairsched reproduces "Parallel Job Scheduling Policies to Improve
// Fairness: A Case Study" (Leung, Sabin, Sadayappan; SAND2008-1310 / ICPP):
// a discrete-event parallel job scheduling simulator, the Sandia
// CPlant/Ross scheduler family (no-guarantee backfilling with a fairshare
// queue and a starvation queue; conservative backfilling with static and
// dynamic reservations; 72-hour maximum-runtime limits), the paper's hybrid
// "fairshare" fair-start-time metric, a synthetic CPlant/Ross workload
// calibrated to the paper's Tables 1-2 and Figures 3-7, and the harness
// regenerating every evaluation figure.
//
// This package is the public API: type aliases and constructors re-exported
// from the internal packages, so downstream code needs a single import.
//
// Quick start:
//
//	jobs, _ := fairsched.GenerateWorkload(fairsched.WorkloadConfig{Seed: 42, Scale: 0.25})
//	spec, _ := fairsched.PolicyByName("cons.72max")
//	run, _ := fairsched.Run(fairsched.StudyConfig{}, spec, jobs)
//	fmt.Printf("%.1f%% unfair, %.0fs avg miss\n",
//		run.Summary.PercentUnfair, run.Summary.AvgMissTime)
package fairsched

import (
	"fmt"
	"io"

	"fairsched/internal/core"
	"fairsched/internal/experiments"
	"fairsched/internal/fairness"
	"fairsched/internal/fairshare"
	"fairsched/internal/hypothesis"
	"fairsched/internal/job"
	"fairsched/internal/metrics"
	"fairsched/internal/scenario"
	"fairsched/internal/sched"
	"fairsched/internal/sim"
	"fairsched/internal/slo"
	"fairsched/internal/sweep"
	"fairsched/internal/swf"
	"fairsched/internal/topology"
	"fairsched/internal/tracecache"
	"fairsched/internal/workload"
)

// Core model types.
type (
	// Job is a batch job submission (the paper's 2-D rectangle).
	Job = job.Job
	// JobID identifies a job within a workload.
	JobID = job.ID
	// Record is the outcome of one job in a simulation run.
	Record = sim.Record
	// Result is a complete simulation outcome.
	Result = sim.Result
	// Summary is the per-policy evaluation (every Figures 8-19 number).
	Summary = metrics.Summary
)

// Simulation and policy types.
type (
	// SimConfig parameterizes the discrete-event simulator directly.
	SimConfig = sim.Config
	// Simulator is the discrete-event cluster simulator.
	Simulator = sim.Simulator
	// Env is the interface policies use to act on the simulated system.
	Env = sim.Env
	// Policy is a scheduling policy under test; implement it to plug a
	// custom scheduler into the study (see examples/custompolicy).
	Policy = sim.Policy
	// Observer receives simulation lifecycle callbacks.
	Observer = sim.Observer
	// BaseObserver is a no-op Observer for embedding.
	BaseObserver = sim.BaseObserver
	// RunningJob is a started, uncompleted job.
	RunningJob = sim.RunningJob
	// SplitMode selects how maximum-runtime segments are submitted.
	SplitMode = sim.SplitMode
	// KillPolicy selects wall-clock-limit kill behaviour.
	KillPolicy = sim.KillPolicy
)

// Study types.
type (
	// StudyConfig parameterizes a case-study run.
	StudyConfig = core.StudyConfig
	// PolicySpec is one named scheduling configuration (§5.5 of the paper).
	PolicySpec = core.Spec
	// StudyRun is the outcome of one policy over one workload.
	StudyRun = core.Run
	// WorkloadConfig parameterizes the synthetic CPlant/Ross generator.
	WorkloadConfig = workload.Config
	// FairshareConfig parameterizes the decaying-usage priority.
	FairshareConfig = fairshare.Config
	// HybridFST is the paper's fairness engine (attach as an Observer).
	HybridFST = fairness.HybridFST
	// ExperimentResults holds a full nine-policy sweep.
	ExperimentResults = experiments.Results
)

// Split modes and kill policies, re-exported.
const (
	SplitUpfront   = sim.SplitUpfront
	SplitStaggered = sim.SplitStaggered
	SplitChained   = sim.SplitChained
	KillNever      = sim.KillNever
	KillWhenNeeded = sim.KillWhenNeeded
	KillAlways     = sim.KillAlways
)

// GenerateWorkload builds the synthetic CPlant/Ross trace (DESIGN.md §5).
func GenerateWorkload(cfg WorkloadConfig) ([]*Job, error) {
	return workload.Generate(cfg)
}

// PolicyByName resolves a policy: one of the paper's names
// ("cplant24.nomax.all", "cons.72max", ...), a reference baseline ("fcfs",
// "easy", "list.fairshare", "depth<N>", ...), or an ad-hoc component chain
// in the spec grammar ("order=fairshare+bf=easy+starve=24h.nonheavy").
func PolicyByName(name string) (PolicySpec, error) { return core.SpecByKey(name) }

// ParsePolicy is PolicyByName under the name mirroring ParseScenario: both
// axes of a campaign resolve through the same kind of registry + grammar.
func ParsePolicy(spec string) (PolicySpec, error) { return sched.ParseSpec(spec) }

// PolicyNames lists every registered policy name (ad-hoc chains and
// "depth<n>" names also resolve through PolicyByName).
func PolicyNames() []string { return core.SpecKeys() }

// PolicyBuiltin is a registered named policy spec with its description.
type PolicyBuiltin = sched.Builtin

// BuiltinPolicies returns the named-policy registry in listing order: every
// entry names a point in the (order × backfill × starvation) design space,
// with Spec.Canonical() as its expansion in the spec grammar.
func BuiltinPolicies() []PolicyBuiltin { return sched.Builtins() }

// NewPolicy assembles the runnable composed policy for a spec.
func NewPolicy(spec PolicySpec) (Policy, error) { return sched.New(spec) }

// AllPolicies returns the paper's nine configurations, baseline first.
func AllPolicies() []PolicySpec { return core.AllSpecs() }

// MinorPolicies returns the five "minor changes" configurations.
func MinorPolicies() []PolicySpec { return core.MinorSpecs() }

// Run executes one policy over a workload with the hybrid-FST fairness
// engine and metrics collection attached.
func Run(cfg StudyConfig, spec PolicySpec, jobs []*Job) (*StudyRun, error) {
	return core.Execute(cfg, spec, jobs)
}

// RunAll executes a set of policies sequentially over one workload.
func RunAll(cfg StudyConfig, specs []PolicySpec, jobs []*Job) ([]*StudyRun, error) {
	return core.ExecuteAll(cfg, specs, jobs)
}

// RunAllParallel executes a set of policies over one workload on at most
// parallel workers (<= 0: one per CPU). Results come back in spec order and
// are identical to RunAll's; a failed run never discards the others — the
// returned error aggregates every casualty (see SweepErrors), and the
// failed runs' slots in the returned slice are nil. On a non-nil error,
// check each slot before use.
func RunAllParallel(cfg StudyConfig, specs []PolicySpec, jobs []*Job, parallel int) ([]*StudyRun, error) {
	return sweep.Runs(cfg, specs, jobs, parallel)
}

// SweepErrors aggregates the per-run failures of a parallel sweep; each
// entry is a SweepRunError naming the run that failed.
type SweepErrors = sweep.Errors

// SweepRunError is one captured per-run failure inside a SweepErrors.
type SweepRunError = sweep.RunError

// RunExperiments executes the full nine-policy sweep, from which every
// table and figure of the paper's evaluation can be rendered.
func RunExperiments(cfg StudyConfig, jobs []*Job) (*ExperimentResults, error) {
	return experiments.RunOn(cfg, jobs)
}

// RunExperimentsParallel is RunExperiments fanned out over the sweep
// engine's worker pool (parallel <= 0: one worker per CPU). The resulting
// summaries are byte-identical to the serial sweep's.
func RunExperimentsParallel(cfg StudyConfig, jobs []*Job, parallel int) (*ExperimentResults, error) {
	return experiments.RunOnParallel(cfg, jobs, parallel)
}

// WriteReport renders a complete experiment sweep (tables, figures,
// paper-vs-measured, claim checklist) to w.
func WriteReport(w io.Writer, res *ExperimentResults) {
	experiments.WriteReport(w, res, 0)
}

// NewSimulator builds a bare simulator for custom policies and observers.
func NewSimulator(cfg SimConfig, pol Policy, observers ...Observer) *Simulator {
	return sim.New(cfg, pol, observers...)
}

// NewHybridFST builds the paper's fairness engine; attach it to a
// simulator as an observer, then read the fair start times back.
func NewHybridFST() *HybridFST { return fairness.NewHybridFST() }

// NewEASY, NewFCFS, NewConservative and NewDepthBackfill expose common
// points of the policy design space for custom studies; each is shorthand
// for a registry name or spec chain through NewPolicy.
func NewEASY() Policy { return sched.MustParse("easy") }
func NewFCFS() Policy { return sched.MustParse("fcfs") }
func NewConservative(dynamic bool) Policy {
	if dynamic {
		return sched.MustParse("consdyn.nomax")
	}
	return sched.MustParse("cons.nomax")
}

// NewDepthBackfill returns depth-n backfilling over the fairshare queue:
// the first depth queued jobs hold reservations (the paper's spectrum
// between aggressive and conservative backfilling).
func NewDepthBackfill(depth int) Policy {
	if depth < 1 {
		depth = 1
	}
	return sched.MustParse(fmt.Sprintf("depth%d", depth))
}

// UserSummary aggregates one user's jobs in a run.
type UserSummary = metrics.UserSummary

// ByUser aggregates a run per user (jobs, processor-seconds, waits).
func ByUser(res *Result) []UserSummary { return metrics.ByUser(res) }

// TurnaroundStdDev and the Jain indices are the fairness measures the
// paper's §4 reviews before introducing the hybrid FST metric.
func TurnaroundStdDev(res *Result) float64 { return metrics.TurnaroundStdDev(res) }

// JainIndexOfUserService applies Jain, Chiu and Hawe's fairness index to
// the processor-seconds delivered per user.
func JainIndexOfUserService(res *Result) float64 { return metrics.JainIndexOfUserService(res) }

// ReadSWF parses a Standard Workload Format trace into jobs, returning the
// jobs and the declared system size (0 when the header lacks MaxNodes).
// Cancelled records (status 5) are dropped; see ReadSWFWith to keep them.
func ReadSWF(r io.Reader) ([]*Job, int, error) {
	return ReadSWFWith(r, SWFConvertOptions{})
}

// ReadSWFWith is ReadSWF with explicit record-conversion options.
func ReadSWFWith(r io.Reader, opts SWFConvertOptions) ([]*Job, int, error) {
	trace, err := swf.Parse(r)
	if err != nil {
		return nil, 0, err
	}
	return trace.JobsWith(opts), trace.Header.MaxNodes, nil
}

// Streaming SWF ingestion: a Scanner yields one record at a time from any
// io.Reader in constant memory, so archive-scale traces never need a whole
// Trace in RAM (see also TraceSource, which streams a file into a campaign).
type (
	// SWFScanner streams SWF records (swf.Scanner).
	SWFScanner = swf.Scanner
	// SWFRecord is one raw 18-field SWF line.
	SWFRecord = swf.Record
	// SWFConvertOptions tunes SWF record-to-job conversion.
	SWFConvertOptions = swf.ConvertOptions
)

// NewSWFScanner wraps r for streaming SWF reads.
func NewSWFScanner(r io.Reader) *SWFScanner { return swf.NewScanner(r) }

// ConvertSWFRecord turns one streamed record into a job (ok is false for
// records the conversion drops: cancelled, or no usable node count).
func ConvertSWFRecord(rec SWFRecord, opts SWFConvertOptions) (*Job, bool) {
	return swf.Convert(rec, opts)
}

// Scenario engine: named, deterministic workload transformations and the
// (trace × scenario × policy × seed) campaign matrix that sweeps them.
type (
	// Scenario is a named pipeline of workload transforms.
	Scenario = scenario.Scenario
	// ScenarioTransform is one deterministic workload rewrite.
	ScenarioTransform = scenario.Transform
	// ScenarioSource is a workload a campaign loads on demand.
	ScenarioSource = scenario.Source
	// Campaign is the full (trace × scenario × seed × policy) matrix.
	Campaign = sweep.Campaign
	// CampaignCell is one completed matrix cell with full run detail.
	CampaignCell = sweep.Cell
	// CampaignCellSummary is the memory-light record of a finished cell.
	CampaignCellSummary = sweep.CellSummary
)

// BuiltinScenarios returns the named scenarios (baseline, load-scaled,
// window-sliced, estimate-perturbed, ...).
func BuiltinScenarios() []Scenario { return scenario.Builtins() }

// ScenarioNames lists the builtin scenario names.
func ScenarioNames() []string { return scenario.Names() }

// ParseScenario resolves a builtin name or an ad-hoc transform chain such
// as "load=1.5+perturb=3" (see the scenario package for the grammar).
func ParseScenario(spec string) (Scenario, error) { return scenario.Parse(spec) }

// TraceSource streams an SWF file into a campaign via the scanner (the file
// is re-read, record by record, each time a cell needs it).
func TraceSource(path string) ScenarioSource { return scenario.TraceFile(path) }

// SyntheticSource generates the calibrated CPlant/Ross workload per cell,
// with the campaign seed driving generation.
func SyntheticSource(cfg WorkloadConfig) ScenarioSource { return scenario.Synthetic(cfg) }

// JobsSource wraps an in-memory workload as a campaign source.
func JobsSource(name string, jobs []*Job, systemSize int) ScenarioSource {
	return scenario.Jobs(name, jobs, systemSize)
}

// Trace-set manifests and the binary trace cache: a manifest names a
// campaign's traces (paths, checksum pins, header overrides), and the cache
// stores each trace's converted jobs in a compact columnar image that loads
// with near-zero allocation — archive-scale campaigns parse each SWF file
// once, ever.
type (
	// TraceManifest is a parsed trace-set manifest (traces.toml).
	TraceManifest = tracecache.Manifest
	// TraceManifestEntry is one named trace in a manifest.
	TraceManifestEntry = tracecache.ManifestEntry
	// TraceCacheMeta identifies a cache image: source checksum, conversion
	// fingerprint, system size and trace start time.
	TraceCacheMeta = tracecache.Meta
)

// LoadTraceManifest parses a manifest file (see the tracecache package for
// the grammar).
func LoadTraceManifest(path string) (*TraceManifest, error) {
	return tracecache.LoadManifest(path)
}

// ManifestSources turns manifest entries into campaign sources. Each trace
// is materialized at most once per process and the job slice is shared
// across every cell that reads it; cacheDir == "" streams the SWF instead
// of touching the binary cache.
func ManifestSources(m *TraceManifest, entries []TraceManifestEntry, cacheDir string) []ScenarioSource {
	return scenario.ManifestSources(m, entries, cacheDir)
}

// EnsureTraceCache returns a trace's converted jobs, serving the binary
// cache when a valid image exists and (re)building it otherwise. hit
// reports a warm load. A zero expectedSum skips the source-checksum pin.
func EnsureTraceCache(cacheDir, tracePath string, opts SWFConvertOptions, expectedSum [32]byte) (jobs []*Job, meta TraceCacheMeta, hit bool, err error) {
	return tracecache.Ensure(cacheDir, tracePath, opts, expectedSum)
}

// RenderCampaign writes a campaign's cell summaries as aligned tables; the
// output is byte-identical at every parallelism.
func RenderCampaign(w io.Writer, cells []*CampaignCellSummary) {
	experiments.RenderCampaign(w, cells)
}

// Per-user SLO subsystem: scenario transforms tag users with wait-time and
// slowdown targets, an online observer accrues attainment as the
// simulation runs (consuming the hybrid-FST engine's fair start times to
// split breaches into policy-caused and infeasible), and campaign reports
// carry per-user-class attainment tables.
type (
	// SLOTarget is one user's objectives (max wait seconds, max bounded
	// slowdown; zero fields mean no target of that kind).
	SLOTarget = slo.Target
	// SLOAssignment is an immutable user -> target mapping for one
	// workload (built by scenario SLO transforms, or slo.Builder).
	SLOAssignment = slo.Assignment
	// SLOBuilder accumulates an SLOAssignment programmatically.
	SLOBuilder = slo.Builder
	// SLOSummary is the per-class attainment report of one run.
	SLOSummary = slo.Summary
	// SLOClassStats is one class row of an SLOSummary.
	SLOClassStats = slo.ClassStats
	// SLOUserStats is one user's accrued outcomes.
	SLOUserStats = slo.UserStats
	// SLOObserver accrues per-user attainment online; attach it to a
	// simulator alongside a HybridFST.
	SLOObserver = fairness.SLOObserver
	// SLOTransform is the scenario transform tagging users with targets.
	SLOTransform = scenario.SLOTag
)

// NewSLOBuilder returns an empty SLO assignment builder.
func NewSLOBuilder() *SLOBuilder { return slo.NewBuilder() }

// NewSLOObserver builds the online attainment observer over an assignment;
// fst may be nil (attainment is still tracked, the unfair/infeasible
// breach split stays zero).
func NewSLOObserver(asg *SLOAssignment, fst *HybridFST) *SLOObserver {
	return fairness.NewSLOObserver(asg, fst)
}

// ParseSLO parses an SLO tagging spec — the slo= scenario-grammar value,
// e.g. "p50:2h,p90:24h,default:96h" or "p50:2h,p50:6x,user7:30m" — into a
// scenario transform. Quantile bands rank users by total
// processor-seconds; durations are wait targets, "<f>x" slowdown targets.
func ParseSLO(spec string) (ScenarioTransform, error) {
	return scenario.ParseTransform("slo=" + spec)
}

// SLOFromRecords is the post-run reference computation: replays finished
// records through a fresh tracker (the online observer is differentially
// tested equal to it). fst may be nil.
func SLOFromRecords(asg *SLOAssignment, records []*Record, fst map[JobID]int64) *SLOSummary {
	return slo.FromRecords(asg, records, fst).Summary()
}

// Hypothesis harness: the paper's claims (and any ad-hoc claim) as
// declarative, falsifiable specs evaluated over a campaign, with
// deterministic FINDINGS reports. The paper's 16 registered claims live in
// internal/experiments and are available via cmd/hypotheses.
type (
	// HypothesisSpec is one claim: terms over (policy × scenario × metric)
	// configurations, seeds, a quorum and a confidence tier.
	HypothesisSpec = hypothesis.Spec
	// HypothesisOutcome is one claim's per-seed results and verdict.
	HypothesisOutcome = hypothesis.Outcome
	// HypothesisEvaluation is a claim batch evaluated as one campaign.
	HypothesisEvaluation = hypothesis.Evaluation
	// HypothesisOptions configures the campaign a claim batch expands into.
	HypothesisOptions = hypothesis.CampaignOptions
)

// ParseHypothesis parses one claim in the grammar ("claim id: a < b on
// metric, seeds 42..51"); errors carry byte positions.
func ParseHypothesis(in string) (HypothesisSpec, error) { return hypothesis.Parse(in) }

// RunHypotheses expands the claims into one campaign and evaluates them;
// the result (and any report rendered from it) is byte-identical at every
// parallelism setting.
func RunHypotheses(specs []HypothesisSpec, opt HypothesisOptions) (*HypothesisEvaluation, error) {
	return hypothesis.RunCampaign(specs, opt)
}

// RenderFindings writes the per-claim verdicts with per-seed evidence.
func RenderFindings(w io.Writer, e *HypothesisEvaluation) { hypothesis.RenderFindings(w, e) }

// Partitions and queue trees: a topology splits the machine into named
// partitions (each with its own node capacity and event loop) and declares a
// hierarchical queue tree (org → group → user) with per-leaf policy specs and
// guaranteed/capped shares; scenario queue=/partition= transforms route users
// into it. Set StudyConfig.Topology (and optionally PartitionParallel) to run
// on one. A single-partition, single-root-queue topology reproduces the flat
// run byte-identically.
type (
	// Topology is the machine layout: partitions plus the queue tree.
	Topology = topology.Topology
	// TopologyPartition is one named machine group with its own nodes.
	TopologyPartition = topology.Partition
	// TopologyQueue is one queue-tree node (leaf nodes carry a policy).
	TopologyQueue = topology.QueueNode
	// UserPlacement maps users to queue-tree leaves and partitions (built
	// by scenario queue=/partition= transforms, or a PlacementBuilder).
	UserPlacement = topology.Placement
	// PlacementBuilder accumulates a UserPlacement programmatically.
	PlacementBuilder = topology.PlacementBuilder
)

// ParseTopology parses a topology spec in the queue grammar, e.g.
// "part=fast:64,part=slow:64,queue=org/a:part=fast:guar=2:order=fairshare+bf=easy,queue=org/b:part=slow:sjf";
// errors carry byte positions and each error names the offending clause.
func ParseTopology(spec string) (*Topology, error) { return topology.Parse(spec) }

// FairshareEpochFor converts a trace's Unix start time into the
// trace-relative fairshare epoch for StudyConfig.FairshareEpoch /
// SimConfig.FairshareEpoch (0 interval: the 24h default).
func FairshareEpochFor(unixStart, interval int64) int64 {
	return fairshare.EpochFor(unixStart, interval)
}

// WriteSWF writes jobs as a Standard Workload Format trace.
func WriteSWF(w io.Writer, jobs []*Job, systemSize int) error {
	return swf.Write(w, swf.FromJobs(jobs, swf.Header{
		Version:  2,
		MaxNodes: systemSize,
		MaxProcs: systemSize,
	}))
}
