package swf

// Anonymize replaces user and group ids sequentially in order of first
// appearance (the first user becomes 1, and so on) and clears the
// executable field — the procedure the paper describes for the public
// release of the CPlant trace ("User and group id's were replaced
// sequentially (e.g., the first user is given an id of 1) to remove the
// actual user and group id's for public release"). Missing ids (-1) are
// preserved. The trace is modified in place; the mappings are returned
// (original -> anonymized).
func Anonymize(t *Trace) (users, groups map[int64]int64) {
	users = make(map[int64]int64)
	groups = make(map[int64]int64)
	remap := func(m map[int64]int64, v int64) int64 {
		if v < 0 {
			return v
		}
		if n, ok := m[v]; ok {
			return n
		}
		n := int64(len(m) + 1)
		m[v] = n
		return n
	}
	for i := range t.Records {
		r := &t.Records[i]
		r.UserID = remap(users, r.UserID)
		r.GroupID = remap(groups, r.GroupID)
		r.Executable = -1
	}
	t.Header.Note = append(t.Header.Note,
		"Anonymized: user/group ids replaced sequentially, executables removed")
	return users, groups
}
