// Package swf reads and writes the Standard Workload Format version 2, the
// trace format the paper's simulator consumes ("The scheduler takes as input
// a trace file in the Standard Workload Format V2").
//
// An SWF file is line oriented: header/comment lines start with ';' and may
// carry "; Key: Value" directives; every other non-blank line has 18
// whitespace-separated fields:
//
//	1 job number            7 used memory        13 group id
//	2 submit time           8 requested procs    14 executable id
//	3 wait time             9 requested time     15 queue id
//	4 run time             10 requested memory   16 partition id
//	5 used processors      11 status             17 preceding job
//	6 avg cpu time         12 user id            18 think time
//
// Missing values are -1.
package swf

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"fairsched/internal/job"
)

// Header carries the directives we understand plus every raw directive line.
type Header struct {
	Version       int
	Computer      string
	MaxNodes      int
	MaxProcs      int
	UnixStartTime int64
	TimeZone      string
	Note          []string
	// Raw preserves every "; Key: Value" directive in order of appearance.
	Raw []Directive
}

// Directive is one "; Key: Value" header line.
type Directive struct {
	Key   string
	Value string
}

// Record is one raw SWF line, all 18 fields.
type Record struct {
	JobNumber      int64
	SubmitTime     int64
	WaitTime       int64
	RunTime        int64
	UsedProcs      int64
	AvgCPUTime     int64
	UsedMemory     int64
	RequestedProcs int64
	RequestedTime  int64
	RequestedMem   int64
	Status         int64
	UserID         int64
	GroupID        int64
	Executable     int64
	QueueID        int64
	PartitionID    int64
	PrecedingJob   int64
	ThinkTime      int64
}

// Trace is a parsed SWF file.
type Trace struct {
	Header  Header
	Records []Record
}

// ParseError reports a malformed line with its 1-based line number.
type ParseError struct {
	Line int
	Err  error
}

func (e *ParseError) Error() string { return fmt.Sprintf("swf: line %d: %v", e.Line, e.Err) }
func (e *ParseError) Unwrap() error { return e.Err }

// Parse reads an SWF trace from r, materializing every record. For
// archive-scale traces that should not be held in memory whole, use Scanner
// (Parse is a thin loop over it).
func Parse(r io.Reader) (*Trace, error) {
	sc := NewScanner(r)
	t := &Trace{}
	for sc.Scan() {
		t.Records = append(t.Records, sc.Record())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Header = *sc.Header()
	return t, nil
}

func (h *Header) addComment(line string) {
	body := strings.TrimSpace(strings.TrimLeft(line, "; "))
	if body == "" {
		return
	}
	key, val, ok := strings.Cut(body, ":")
	if !ok {
		h.Note = append(h.Note, body)
		return
	}
	key = strings.TrimSpace(key)
	val = strings.TrimSpace(val)
	h.Raw = append(h.Raw, Directive{Key: key, Value: val})
	switch strings.ToLower(key) {
	case "version":
		// The value may carry trailing prose ("2.2 (see ...)"); take the
		// first token — and a bare "; Version:" has no token at all, so
		// guard the index (real archive headers do contain empty
		// directives). Only the version tolerates a fractional value.
		if n, ok := leadingInt(integerPart(val)); ok {
			h.Version = int(n)
		}
	case "computer":
		h.Computer = val
	case "maxnodes":
		if n, ok := leadingInt(val); ok {
			h.MaxNodes = int(n)
		}
	case "maxprocs":
		if n, ok := leadingInt(val); ok {
			h.MaxProcs = int(n)
		}
	case "unixstarttime":
		if n, ok := leadingInt(val); ok {
			h.UnixStartTime = n
		}
	case "timezonestring", "timezone":
		h.TimeZone = val
	case "note":
		h.Note = append(h.Note, val)
	}
}

// leadingInt parses the first whitespace-separated token of val as an
// integer. Archive headers routinely trail prose after the number
// ("MaxNodes: 128 nodes") or omit the value entirely ("; MaxNodes:"), so
// every numeric directive goes through this guard — indexing
// strings.Fields(val) directly panics on the empty case. A non-integer
// token is rejected, leaving the field zero ("MaxNodes: 1.5" must not
// become 1).
func leadingInt(val string) (int64, bool) {
	fields := strings.Fields(val)
	if len(fields) == 0 {
		return 0, false
	}
	n, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// integerPart truncates the first token at its first dot, so a fractional
// SWF version ("2.2") resolves to its major number.
func integerPart(val string) string {
	fields := strings.Fields(val)
	if len(fields) == 0 {
		return ""
	}
	tok, _, _ := strings.Cut(fields[0], ".")
	return tok
}

func parseRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 18 {
		return Record{}, fmt.Errorf("expected 18 fields, got %d", len(fields))
	}
	var vals [18]int64
	for i, f := range fields {
		v, err := parseField(f)
		if err != nil {
			return Record{}, fmt.Errorf("field %d %q: %v", i+1, f, err)
		}
		vals[i] = v
	}
	return Record{
		JobNumber: vals[0], SubmitTime: vals[1], WaitTime: vals[2],
		RunTime: vals[3], UsedProcs: vals[4], AvgCPUTime: vals[5],
		UsedMemory: vals[6], RequestedProcs: vals[7], RequestedTime: vals[8],
		RequestedMem: vals[9], Status: vals[10], UserID: vals[11],
		GroupID: vals[12], Executable: vals[13], QueueID: vals[14],
		PartitionID: vals[15], PrecedingJob: vals[16], ThinkTime: vals[17],
	}, nil
}

// parseField accepts integers and (for tolerance with real archive files)
// floating point values, which are truncated toward zero.
func parseField(s string) (int64, error) {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("not a number")
	}
	return int64(f), nil
}

// StatusCancelled is the SWF status of a job cancelled before (or while)
// running — the only status that does not represent work the machine
// actually performed.
const StatusCancelled = 5

// ConvertOptions tunes the Record-to-Job conversion.
type ConvertOptions struct {
	// KeepCancelled retains records with Status 5 (cancelled). The default
	// drops them: a cancelled submission never held its nodes for its
	// recorded runtime, so simulating it as real work inflates the offered
	// load. Set this to reproduce results from before status filtering.
	KeepCancelled bool
}

// Convert turns one SWF record into a simulator job, applying the
// conventions of the paper's study:
//
//   - cancelled records (status 5) are dropped unless opts.KeepCancelled;
//   - requested processors falls back to used processors (and vice versa);
//   - runtime below 1s is clamped to 1s (the trace records 0s jobs);
//   - requested time (wall-clock limit) falls back to runtime and is clamped
//     to at least 1s;
//   - negative submit times are clamped to 0;
//   - records with no usable node count are dropped.
//
// ok is false for a dropped record.
func Convert(r Record, opts ConvertOptions) (j *job.Job, ok bool) {
	if r.Status == StatusCancelled && !opts.KeepCancelled {
		return nil, false
	}
	nodes := r.RequestedProcs
	if nodes <= 0 {
		nodes = r.UsedProcs
	}
	if nodes <= 0 {
		return nil, false
	}
	runtime := r.RunTime
	if runtime < 1 {
		runtime = 1
	}
	est := r.RequestedTime
	if est < 1 {
		est = runtime
	}
	submit := r.SubmitTime
	if submit < 0 {
		submit = 0
	}
	return &job.Job{
		ID:       job.ID(r.JobNumber),
		User:     int(r.UserID),
		Group:    int(r.GroupID),
		Submit:   submit,
		Runtime:  runtime,
		Estimate: est,
		Nodes:    int(nodes),
	}, true
}

// Jobs converts the trace records into simulator jobs under the default
// ConvertOptions (cancelled records dropped — see JobsWith to keep them).
// Jobs are returned sorted by submit time (then job number).
func (t *Trace) Jobs() []*job.Job {
	return t.JobsWith(ConvertOptions{})
}

// JobsWith is Jobs with explicit conversion options.
func (t *Trace) JobsWith(opts ConvertOptions) []*job.Job {
	jobs := make([]*job.Job, 0, len(t.Records))
	for _, r := range t.Records {
		if j, ok := Convert(r, opts); ok {
			jobs = append(jobs, j)
		}
	}
	SortJobs(jobs)
	return jobs
}

// SortJobs sorts jobs into trace order: submit time, then job number.
func SortJobs(jobs []*job.Job) {
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].Submit != jobs[k].Submit {
			return jobs[i].Submit < jobs[k].Submit
		}
		return jobs[i].ID < jobs[k].ID
	})
}
