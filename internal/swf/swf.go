// Package swf reads and writes the Standard Workload Format version 2, the
// trace format the paper's simulator consumes ("The scheduler takes as input
// a trace file in the Standard Workload Format V2").
//
// An SWF file is line oriented: header/comment lines start with ';' and may
// carry "; Key: Value" directives; every other non-blank line has 18
// whitespace-separated fields:
//
//	1 job number            7 used memory        13 group id
//	2 submit time           8 requested procs    14 executable id
//	3 wait time             9 requested time     15 queue id
//	4 run time             10 requested memory   16 partition id
//	5 used processors      11 status             17 preceding job
//	6 avg cpu time         12 user id            18 think time
//
// Missing values are -1.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"fairsched/internal/job"
)

// Header carries the directives we understand plus every raw directive line.
type Header struct {
	Version       int
	Computer      string
	MaxNodes      int
	MaxProcs      int
	UnixStartTime int64
	TimeZone      string
	Note          []string
	// Raw preserves every "; Key: Value" directive in order of appearance.
	Raw []Directive
}

// Directive is one "; Key: Value" header line.
type Directive struct {
	Key   string
	Value string
}

// Record is one raw SWF line, all 18 fields.
type Record struct {
	JobNumber      int64
	SubmitTime     int64
	WaitTime       int64
	RunTime        int64
	UsedProcs      int64
	AvgCPUTime     int64
	UsedMemory     int64
	RequestedProcs int64
	RequestedTime  int64
	RequestedMem   int64
	Status         int64
	UserID         int64
	GroupID        int64
	Executable     int64
	QueueID        int64
	PartitionID    int64
	PrecedingJob   int64
	ThinkTime      int64
}

// Trace is a parsed SWF file.
type Trace struct {
	Header  Header
	Records []Record
}

// ParseError reports a malformed line with its 1-based line number.
type ParseError struct {
	Line int
	Err  error
}

func (e *ParseError) Error() string { return fmt.Sprintf("swf: line %d: %v", e.Line, e.Err) }
func (e *ParseError) Unwrap() error { return e.Err }

// Parse reads an SWF trace from r.
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			t.Header.addComment(line)
			continue
		}
		rec, err := parseRecord(line)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Err: err}
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf: read: %w", err)
	}
	return t, nil
}

func (h *Header) addComment(line string) {
	body := strings.TrimSpace(strings.TrimLeft(line, "; "))
	if body == "" {
		return
	}
	key, val, ok := strings.Cut(body, ":")
	if !ok {
		h.Note = append(h.Note, body)
		return
	}
	key = strings.TrimSpace(key)
	val = strings.TrimSpace(val)
	h.Raw = append(h.Raw, Directive{Key: key, Value: val})
	switch strings.ToLower(key) {
	case "version":
		if n, err := strconv.Atoi(strings.Fields(val)[0]); err == nil {
			h.Version = n
		}
	case "computer":
		h.Computer = val
	case "maxnodes":
		if n, err := strconv.Atoi(val); err == nil {
			h.MaxNodes = n
		}
	case "maxprocs":
		if n, err := strconv.Atoi(val); err == nil {
			h.MaxProcs = n
		}
	case "unixstarttime":
		if n, err := strconv.ParseInt(val, 10, 64); err == nil {
			h.UnixStartTime = n
		}
	case "timezonestring", "timezone":
		h.TimeZone = val
	case "note":
		h.Note = append(h.Note, val)
	}
}

func parseRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 18 {
		return Record{}, fmt.Errorf("expected 18 fields, got %d", len(fields))
	}
	var vals [18]int64
	for i, f := range fields {
		v, err := parseField(f)
		if err != nil {
			return Record{}, fmt.Errorf("field %d %q: %v", i+1, f, err)
		}
		vals[i] = v
	}
	return Record{
		JobNumber: vals[0], SubmitTime: vals[1], WaitTime: vals[2],
		RunTime: vals[3], UsedProcs: vals[4], AvgCPUTime: vals[5],
		UsedMemory: vals[6], RequestedProcs: vals[7], RequestedTime: vals[8],
		RequestedMem: vals[9], Status: vals[10], UserID: vals[11],
		GroupID: vals[12], Executable: vals[13], QueueID: vals[14],
		PartitionID: vals[15], PrecedingJob: vals[16], ThinkTime: vals[17],
	}, nil
}

// parseField accepts integers and (for tolerance with real archive files)
// floating point values, which are truncated toward zero.
func parseField(s string) (int64, error) {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("not a number")
	}
	return int64(f), nil
}

// Jobs converts the trace records into simulator jobs, applying the
// conventions of the paper's study:
//
//   - requested processors falls back to used processors (and vice versa);
//   - runtime below 1s is clamped to 1s (the trace records 0s jobs);
//   - requested time (wall-clock limit) falls back to runtime and is clamped
//     to at least 1s;
//   - records with no usable node count are dropped.
//
// Records are returned sorted by submit time (then job number).
func (t *Trace) Jobs() []*job.Job {
	jobs := make([]*job.Job, 0, len(t.Records))
	for _, r := range t.Records {
		nodes := r.RequestedProcs
		if nodes <= 0 {
			nodes = r.UsedProcs
		}
		if nodes <= 0 {
			continue
		}
		runtime := r.RunTime
		if runtime < 1 {
			runtime = 1
		}
		est := r.RequestedTime
		if est < 1 {
			est = runtime
		}
		submit := r.SubmitTime
		if submit < 0 {
			submit = 0
		}
		jobs = append(jobs, &job.Job{
			ID:       job.ID(r.JobNumber),
			User:     int(r.UserID),
			Group:    int(r.GroupID),
			Submit:   submit,
			Runtime:  runtime,
			Estimate: est,
			Nodes:    int(nodes),
		})
	}
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].Submit != jobs[k].Submit {
			return jobs[i].Submit < jobs[k].Submit
		}
		return jobs[i].ID < jobs[k].ID
	})
	return jobs
}
