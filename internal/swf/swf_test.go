package swf

import (
	"errors"
	"strings"
	"testing"
)

const sampleTrace = `; Version: 2
; Computer: Sandia CPlant/Ross
; MaxNodes: 1024
; UnixStartTime: 1038700800
; TimeZoneString: UTC
; Note: synthetic sample
1 0 10 600 16 -1 -1 16 900 -1 1 3 1 -1 -1 -1 -1 -1
2 30 -1 3600 32 -1 -1 32 7200 -1 1 4 1 -1 -1 -1 -1 -1

3 60 5 1 -1 -1 -1 8 -1 -1 0 5 2 -1 -1 -1 -1 -1
`

func TestParseHeaderDirectives(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	h := tr.Header
	if h.Version != 2 {
		t.Errorf("Version = %d", h.Version)
	}
	if h.Computer != "Sandia CPlant/Ross" {
		t.Errorf("Computer = %q", h.Computer)
	}
	if h.MaxNodes != 1024 {
		t.Errorf("MaxNodes = %d", h.MaxNodes)
	}
	if h.UnixStartTime != 1038700800 {
		t.Errorf("UnixStartTime = %d", h.UnixStartTime)
	}
	if h.TimeZone != "UTC" {
		t.Errorf("TimeZone = %q", h.TimeZone)
	}
	if len(h.Note) != 1 || h.Note[0] != "synthetic sample" {
		t.Errorf("Note = %v", h.Note)
	}
	if len(h.Raw) == 0 {
		t.Error("raw directives not preserved")
	}
}

func TestParseRecords(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(tr.Records))
	}
	r := tr.Records[0]
	if r.JobNumber != 1 || r.SubmitTime != 0 || r.WaitTime != 10 ||
		r.RunTime != 600 || r.UsedProcs != 16 || r.RequestedTime != 900 ||
		r.UserID != 3 || r.GroupID != 1 {
		t.Errorf("record 0 parsed wrong: %+v", r)
	}
	if tr.Records[1].WaitTime != -1 {
		t.Error("missing value should stay -1")
	}
}

func TestParseRejectsWrongFieldCount(t *testing.T) {
	_, err := Parse(strings.NewReader("1 2 3\n"))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want ParseError, got %v", err)
	}
	if pe.Line != 1 {
		t.Errorf("line = %d, want 1", pe.Line)
	}
	if !strings.Contains(err.Error(), "18 fields") {
		t.Errorf("error %q should mention field count", err)
	}
}

func TestParseRejectsNonNumeric(t *testing.T) {
	line := "x 0 0 1 1 -1 -1 1 1 -1 1 1 1 -1 -1 -1 -1 -1\n"
	_, err := Parse(strings.NewReader(line))
	if err == nil {
		t.Fatal("non-numeric field accepted")
	}
}

func TestParseErrorReportsLaterLineNumbers(t *testing.T) {
	input := sampleTrace + "bad line here\n"
	_, err := Parse(strings.NewReader(input))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want ParseError, got %v", err)
	}
	if pe.Line != 11 {
		t.Errorf("line = %d, want 11", pe.Line)
	}
}

func TestParseAcceptsFloatFields(t *testing.T) {
	line := "1 0.0 10.5 600.9 16 -1 -1 16 900 -1 1 3 1 -1 -1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Records[0].RunTime != 600 {
		t.Errorf("float run time truncated to %d, want 600", tr.Records[0].RunTime)
	}
}

func TestJobsConversionRules(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	jobs := tr.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs, want 3", len(jobs))
	}
	// Record 3: zero runtime clamps to 1, missing requested time falls back
	// to runtime, requested procs used even when used procs missing.
	j3 := jobs[2]
	if j3.Runtime != 1 {
		t.Errorf("runtime = %d, want clamp to 1", j3.Runtime)
	}
	if j3.Estimate != 1 {
		t.Errorf("estimate = %d, want runtime fallback", j3.Estimate)
	}
	if j3.Nodes != 8 {
		t.Errorf("nodes = %d, want requested procs 8", j3.Nodes)
	}
}

func TestJobsDropsRecordsWithoutNodes(t *testing.T) {
	line := "1 0 0 60 -1 -1 -1 -1 60 -1 1 1 1 -1 -1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Jobs()); got != 0 {
		t.Fatalf("job without node count kept: %d", got)
	}
}

func TestJobsSortedBySubmit(t *testing.T) {
	input := "2 500 0 60 4 -1 -1 4 60 -1 1 1 1 -1 -1 -1 -1 -1\n" +
		"1 100 0 60 4 -1 -1 4 60 -1 1 1 1 -1 -1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	jobs := tr.Jobs()
	if jobs[0].ID != 1 || jobs[1].ID != 2 {
		t.Fatalf("jobs not sorted by submit: %v %v", jobs[0], jobs[1])
	}
}

func TestJobsNegativeSubmitClampedToZero(t *testing.T) {
	line := "1 -5 0 60 4 -1 -1 4 60 -1 1 1 1 -1 -1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Jobs()[0].Submit; got != 0 {
		t.Fatalf("submit = %d, want 0", got)
	}
}

// Regression: "; Version:" (a directive with an empty value) used to panic
// on strings.Fields(val)[0]. Real archive headers do contain such lines.
func TestHeaderDirectiveEmptyValue(t *testing.T) {
	input := "; Version:\n; MaxNodes:\n; MaxProcs:\n; UnixStartTime:\n" +
		"; Computer:\n; TimeZoneString:\n; Note:\n;:\n; :  \n"
	tr, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	h := tr.Header
	if h.Version != 0 || h.MaxNodes != 0 || h.MaxProcs != 0 || h.UnixStartTime != 0 {
		t.Errorf("empty directives should leave zero values: %+v", h)
	}
}

func TestHeaderVersionWithTrailingProse(t *testing.T) {
	tr, err := Parse(strings.NewReader("; Version: 2.2 (described at ...)\n; MaxNodes: 128 nodes\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Version != 2 {
		t.Errorf("Version = %d, want 2", tr.Header.Version)
	}
	if tr.Header.MaxNodes != 128 {
		t.Errorf("MaxNodes = %d, want 128", tr.Header.MaxNodes)
	}
}

// Only the version tolerates a fractional value; a malformed "MaxNodes:
// 1.5" must stay zero (becoming 1 would shrink the system size and reject
// every multi-node job downstream).
func TestHeaderFractionalNonVersionDirectivesRejected(t *testing.T) {
	tr, err := Parse(strings.NewReader("; MaxNodes: 1.5\n; MaxProcs: 2.9\n; UnixStartTime: 99.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	h := tr.Header
	if h.MaxNodes != 0 || h.MaxProcs != 0 || h.UnixStartTime != 0 {
		t.Errorf("fractional directives should stay zero: %+v", h)
	}
}

func TestJobsDropsCancelledRecords(t *testing.T) {
	// Record 2 is cancelled (status 5) but carries a plausible node count
	// and runtime; it must not be simulated as real work by default.
	input := "1 0 0 60 4 -1 -1 4 60 -1 1 1 1 -1 -1 -1 -1 -1\n" +
		"2 10 0 60 4 -1 -1 4 60 -1 5 1 1 -1 -1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	jobs := tr.Jobs()
	if len(jobs) != 1 || jobs[0].ID != 1 {
		t.Fatalf("cancelled record kept: %v", jobs)
	}
	old := tr.JobsWith(ConvertOptions{KeepCancelled: true})
	if len(old) != 2 {
		t.Fatalf("KeepCancelled dropped records: %v", old)
	}
}

func TestHeaderCommentWithoutColonBecomesNote(t *testing.T) {
	tr, err := Parse(strings.NewReader("; just a remark\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Header.Note) != 1 || tr.Header.Note[0] != "just a remark" {
		t.Fatalf("Note = %v", tr.Header.Note)
	}
}
