package swf

import (
	"bufio"
	"io"
	"strings"
)

// Scanner streams an SWF trace one record at a time, the archive-scale
// counterpart of Parse: a multi-gigabyte trace is read in constant memory
// (one bufio buffer plus one Record), so a campaign over many real traces
// never needs a whole Trace in RAM.
//
// Usage mirrors bufio.Scanner:
//
//	sc := swf.NewScanner(f)
//	for sc.Scan() {
//		rec := sc.Record()
//		...
//	}
//	if err := sc.Err(); err != nil { ... }
//
// Header directives are accumulated as they are encountered (SWF puts them
// before the first record, but comments are legal anywhere); Header is
// complete for any directive above the last record returned, and fully
// complete once Scan has returned false.
type Scanner struct {
	sc     *bufio.Scanner
	header Header
	rec    Record
	line   int
	err    error
	done   bool
}

// NewScanner wraps r for streaming SWF reads.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Scanner{sc: sc}
}

// Scan advances to the next record, skipping blank lines and absorbing
// header/comment lines into Header. It returns false at end of input or on
// the first error (see Err).
func (s *Scanner) Scan() bool {
	if s.done {
		return false
	}
	for s.sc.Scan() {
		s.line++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			s.header.addComment(line)
			continue
		}
		rec, err := parseRecord(line)
		if err != nil {
			s.err = &ParseError{Line: s.line, Err: err}
			s.done = true
			return false
		}
		s.rec = rec
		return true
	}
	s.done = true
	if err := s.sc.Err(); err != nil {
		// The read failed on the line after the last one delivered (e.g.
		// bufio.ErrTooLong on an oversized line); s.line still names the
		// previous, valid line.
		s.err = &ParseError{Line: s.line + 1, Err: err}
	}
	return false
}

// Record returns the record produced by the last successful Scan.
func (s *Scanner) Record() Record { return s.rec }

// Header returns the directives parsed so far. The pointer stays valid (and
// keeps filling in) across Scan calls.
func (s *Scanner) Header() *Header { return &s.header }

// Line returns the 1-based line number of the last line consumed.
func (s *Scanner) Line() int { return s.line }

// Err returns the first error encountered, nil at a clean end of input.
func (s *Scanner) Err() error { return s.err }
