package swf

import (
	"bufio"
	"fmt"
	"io"

	"fairsched/internal/job"
)

// Write emits the trace in SWF v2 text form.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, &t.Header); err != nil {
		return err
	}
	for _, r := range t.Records {
		if _, err := fmt.Fprintf(bw,
			"%d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d\n",
			r.JobNumber, r.SubmitTime, r.WaitTime, r.RunTime, r.UsedProcs,
			r.AvgCPUTime, r.UsedMemory, r.RequestedProcs, r.RequestedTime,
			r.RequestedMem, r.Status, r.UserID, r.GroupID, r.Executable,
			r.QueueID, r.PartitionID, r.PrecedingJob, r.ThinkTime); err != nil {
			return fmt.Errorf("swf: write: %w", err)
		}
	}
	return bw.Flush()
}

func writeHeader(w io.Writer, h *Header) error {
	emit := func(key, val string) error {
		_, err := fmt.Fprintf(w, "; %s: %s\n", key, val)
		return err
	}
	if h.Version != 0 {
		if err := emit("Version", fmt.Sprint(h.Version)); err != nil {
			return err
		}
	}
	if h.Computer != "" {
		if err := emit("Computer", h.Computer); err != nil {
			return err
		}
	}
	if h.MaxNodes != 0 {
		if err := emit("MaxNodes", fmt.Sprint(h.MaxNodes)); err != nil {
			return err
		}
	}
	if h.MaxProcs != 0 {
		if err := emit("MaxProcs", fmt.Sprint(h.MaxProcs)); err != nil {
			return err
		}
	}
	if h.UnixStartTime != 0 {
		if err := emit("UnixStartTime", fmt.Sprint(h.UnixStartTime)); err != nil {
			return err
		}
	}
	if h.TimeZone != "" {
		if err := emit("TimeZoneString", h.TimeZone); err != nil {
			return err
		}
	}
	for _, n := range h.Note {
		if err := emit("Note", n); err != nil {
			return err
		}
	}
	return nil
}

// FromJobs builds a trace from simulator jobs. Wait time, status and the
// unused fields are set to -1 (unknown) per SWF convention; used processors
// mirrors requested processors.
func FromJobs(jobs []*job.Job, header Header) *Trace {
	t := &Trace{Header: header}
	t.Records = make([]Record, 0, len(jobs))
	for _, j := range jobs {
		t.Records = append(t.Records, Record{
			JobNumber:      int64(j.ID),
			SubmitTime:     j.Submit,
			WaitTime:       -1,
			RunTime:        j.Runtime,
			UsedProcs:      int64(j.Nodes),
			AvgCPUTime:     -1,
			UsedMemory:     -1,
			RequestedProcs: int64(j.Nodes),
			RequestedTime:  j.Estimate,
			RequestedMem:   -1,
			Status:         1,
			UserID:         int64(j.User),
			GroupID:        int64(j.Group),
			Executable:     -1,
			QueueID:        -1,
			PartitionID:    -1,
			PrecedingJob:   -1,
			ThinkTime:      -1,
		})
	}
	return t
}
