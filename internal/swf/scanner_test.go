package swf

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func TestScannerMatchesParse(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(strings.NewReader(sampleTrace))
	var recs []Record
	for sc.Scan() {
		recs = append(recs, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(tr.Records) {
		t.Fatalf("scanner yielded %d records, Parse %d", len(recs), len(tr.Records))
	}
	for i, r := range recs {
		if r != tr.Records[i] {
			t.Errorf("record %d differs: %+v vs %+v", i, r, tr.Records[i])
		}
	}
	if !reflect.DeepEqual(*sc.Header(), tr.Header) {
		t.Errorf("header differs: %+v vs %+v", sc.Header(), tr.Header)
	}
}

func TestScannerStopsAtError(t *testing.T) {
	sc := NewScanner(strings.NewReader("1 0 0 60 4 -1 -1 4 60 -1 1 1 1 -1 -1 -1 -1 -1\nbad\n"))
	if !sc.Scan() {
		t.Fatalf("first record rejected: %v", sc.Err())
	}
	if sc.Scan() {
		t.Fatal("malformed line accepted")
	}
	var pe *ParseError
	if !errors.As(sc.Err(), &pe) {
		t.Fatalf("want ParseError, got %v", sc.Err())
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2", pe.Line)
	}
	if sc.Scan() {
		t.Error("Scan kept going after an error")
	}
}

// A read failure (oversized line) must name the line that failed, not the
// previous valid one.
func TestScannerOversizedLineReportsFailingLine(t *testing.T) {
	input := "1 0 0 60 4 -1 -1 4 60 -1 1 1 1 -1 -1 -1 -1 -1\n; " +
		strings.Repeat("x", 2<<20) + "\n"
	sc := NewScanner(strings.NewReader(input))
	if !sc.Scan() {
		t.Fatalf("first record rejected: %v", sc.Err())
	}
	if sc.Scan() {
		t.Fatal("oversized line accepted")
	}
	var pe *ParseError
	if !errors.As(sc.Err(), &pe) {
		t.Fatalf("want ParseError, got %v", sc.Err())
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2 (the oversized line)", pe.Line)
	}
}

func TestScannerHeaderMidFile(t *testing.T) {
	input := "; MaxNodes: 8\n" +
		"1 0 0 60 4 -1 -1 4 60 -1 1 1 1 -1 -1 -1 -1 -1\n" +
		"; Note: appended later\n"
	sc := NewScanner(strings.NewReader(input))
	if !sc.Scan() {
		t.Fatalf("record rejected: %v", sc.Err())
	}
	if sc.Header().MaxNodes != 8 {
		t.Errorf("MaxNodes = %d before record", sc.Header().MaxNodes)
	}
	if sc.Scan() {
		t.Fatal("unexpected second record")
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(sc.Header().Note) != 1 {
		t.Errorf("trailing comment lost: %v", sc.Header().Note)
	}
}

// traceGen synthesizes an endless SWF byte stream record by record, so the
// streaming test never materializes the trace it reads.
type traceGen struct {
	next    int64 // next record number to emit
	n       int64 // total records
	pending []byte
}

func (g *traceGen) Read(p []byte) (int, error) {
	if len(g.pending) == 0 {
		if g.next >= g.n {
			return 0, io.EOF
		}
		g.next++
		g.pending = fmt.Appendf(g.pending,
			"%d %d 0 %d %d -1 -1 %d %d -1 1 %d 1 -1 -1 -1 -1 -1\n",
			g.next, g.next*7, 60+g.next%600, 1+g.next%32, 1+g.next%32,
			120+g.next%600, g.next%96)
	}
	n := copy(p, g.pending)
	g.pending = g.pending[n:]
	return n, nil
}

// TestScannerStreamsBeyondBufferSize drives the scanner over a synthesized
// trace far larger than its 64KB read buffer (and larger than its 1MB
// ceiling) and checks that heap growth stays bounded by the buffer, not the
// trace: the whole point of Scanner over Parse.
func TestScannerStreamsBeyondBufferSize(t *testing.T) {
	const records = 200_000 // ~12MB of trace text
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	sc := NewScanner(&traceGen{n: records})
	var count, users int64
	for sc.Scan() {
		count++
		users += sc.Record().UserID
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != records {
		t.Fatalf("scanned %d records, want %d", count, records)
	}
	if users == 0 {
		t.Fatal("records not actually parsed")
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 4<<20 {
		t.Errorf("heap grew %d bytes scanning a ~12MB trace; streaming should be constant-memory", grew)
	}
}

func TestConvertStreaming(t *testing.T) {
	sc := NewScanner(&traceGen{n: 100})
	kept := 0
	for sc.Scan() {
		if _, ok := Convert(sc.Record(), ConvertOptions{}); ok {
			kept++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if kept != 100 {
		t.Fatalf("converted %d of 100 streamed records", kept)
	}
}
