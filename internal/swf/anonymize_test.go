package swf

import (
	"testing"

	"fairsched/internal/job"
)

func traceWithUsers(users ...int) *Trace {
	jobs := make([]*job.Job, len(users))
	for i, u := range users {
		jobs[i] = &job.Job{
			ID: job.ID(i + 1), User: u, Group: u * 10, Submit: int64(i),
			Runtime: 10, Estimate: 10, Nodes: 1,
		}
	}
	return FromJobs(jobs, Header{Version: 2})
}

func TestAnonymizeSequentialIDs(t *testing.T) {
	tr := traceWithUsers(4711, 42, 4711, 99)
	users, groups := Anonymize(tr)
	wantUsers := []int64{1, 2, 1, 3}
	for i, r := range tr.Records {
		if r.UserID != wantUsers[i] {
			t.Errorf("record %d user = %d, want %d", i, r.UserID, wantUsers[i])
		}
	}
	if users[4711] != 1 || users[42] != 2 || users[99] != 3 {
		t.Errorf("user mapping wrong: %v", users)
	}
	if len(groups) != 3 {
		t.Errorf("group mapping has %d entries", len(groups))
	}
}

func TestAnonymizePreservesMissingIDs(t *testing.T) {
	tr := &Trace{Records: []Record{{JobNumber: 1, UserID: -1, GroupID: -1, Executable: 7}}}
	Anonymize(tr)
	r := tr.Records[0]
	if r.UserID != -1 || r.GroupID != -1 {
		t.Errorf("missing ids rewritten: %+v", r)
	}
	if r.Executable != -1 {
		t.Errorf("executable not cleared: %d", r.Executable)
	}
}

func TestAnonymizeAddsNote(t *testing.T) {
	tr := traceWithUsers(1)
	Anonymize(tr)
	found := false
	for _, n := range tr.Header.Note {
		if len(n) > 0 && n[0] == 'A' {
			found = true
		}
	}
	if !found {
		t.Error("anonymization note missing")
	}
}

func TestAnonymizeIdempotentMapping(t *testing.T) {
	tr := traceWithUsers(7, 7, 7)
	users, _ := Anonymize(tr)
	if len(users) != 1 {
		t.Fatalf("one distinct user should map once, got %v", users)
	}
	for _, r := range tr.Records {
		if r.UserID != 1 {
			t.Fatalf("user id = %d, want 1", r.UserID)
		}
	}
}
