package swf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fairsched/internal/job"
)

func TestWriteParseRoundTrip(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 3, Group: 1, Submit: 0, Runtime: 600, Estimate: 900, Nodes: 16},
		{ID: 2, User: 4, Group: 2, Submit: 500, Runtime: 3600, Estimate: 7200, Nodes: 128},
	}
	header := Header{Version: 2, Computer: "test", MaxNodes: 512, UnixStartTime: 42, TimeZone: "UTC"}
	var buf bytes.Buffer
	if err := Write(&buf, FromJobs(jobs, header)); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.MaxNodes != 512 || back.Header.Computer != "test" ||
		back.Header.UnixStartTime != 42 {
		t.Errorf("header lost in round trip: %+v", back.Header)
	}
	got := back.Jobs()
	if len(got) != len(jobs) {
		t.Fatalf("job count %d != %d", len(got), len(jobs))
	}
	for i := range jobs {
		a, b := jobs[i], got[i]
		if a.ID != b.ID || a.User != b.User || a.Group != b.Group ||
			a.Submit != b.Submit || a.Runtime != b.Runtime ||
			a.Estimate != b.Estimate || a.Nodes != b.Nodes {
			t.Errorf("job %d changed: %+v -> %+v", i, a, b)
		}
	}
}

func TestRoundTripQuickProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%32) + 1
		jobs := make([]*job.Job, count)
		for i := range jobs {
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(50) + 1,
				Group:    rng.Intn(5) + 1,
				Submit:   int64(i * 100), // unique, preserves order
				Runtime:  rng.Int63n(100000) + 1,
				Estimate: rng.Int63n(200000) + 1,
				Nodes:    rng.Intn(1000) + 1,
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, FromJobs(jobs, Header{Version: 2})); err != nil {
			return false
		}
		back, err := Parse(&buf)
		if err != nil {
			return false
		}
		got := back.Jobs()
		if len(got) != count {
			return false
		}
		for i := range jobs {
			if *got[i] != *jobs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteEmitsEighteenFields(t *testing.T) {
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 0, Runtime: 1, Estimate: 1, Nodes: 1}}
	var buf bytes.Buffer
	if err := Write(&buf, FromJobs(jobs, Header{})); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	if got := len(strings.Fields(last)); got != 18 {
		t.Fatalf("record has %d fields, want 18: %q", got, last)
	}
}

func TestWriteHeaderOmitsZeroFields(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Trace{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty trace should emit nothing, got %q", buf.String())
	}
}
