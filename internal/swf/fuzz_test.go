package swf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse throws arbitrary bytes at the trace parser: it must either
// return a trace or a descriptive error, never panic — archive files come
// from two decades of ad-hoc tooling and the ingestion layer is the front
// door for every campaign. Valid inputs additionally round-trip through
// Scan, Convert and Write without disagreement.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sampleTrace))
	f.Add([]byte("; Version:\n"))
	f.Add([]byte("; Version: 2.2 (see the SWF spec)\n"))
	f.Add([]byte(";:\n; : \n;;;\n"))
	f.Add([]byte("; MaxNodes: lots\n; UnixStartTime: -1\n"))
	f.Add([]byte("1 0 0 60 4 -1 -1 4 60 -1 5 1 1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("1 0.5 0 6e2 4 -1 -1 4 60 -1 1 1 1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("9223372036854775807 0 0 1 1 -1 -1 1 1 -1 1 1 1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("1 2 3\n"))
	f.Add([]byte("\x00\xff; Note\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Parse(bytes.NewReader(data))
		if err != nil {
			if tr != nil {
				t.Fatal("Parse returned both a trace and an error")
			}
			return
		}
		// The scanner must agree with Parse record for record.
		sc := NewScanner(bytes.NewReader(data))
		i := 0
		for sc.Scan() {
			if i >= len(tr.Records) {
				t.Fatalf("scanner yielded extra record %d", i)
			}
			if sc.Record() != tr.Records[i] {
				t.Fatalf("record %d: scanner %+v vs Parse %+v", i, sc.Record(), tr.Records[i])
			}
			i++
		}
		if sc.Err() != nil {
			t.Fatalf("Parse accepted what Scanner rejects: %v", sc.Err())
		}
		if i != len(tr.Records) {
			t.Fatalf("scanner yielded %d records, Parse %d", i, len(tr.Records))
		}
		// Conversion must not panic, and every produced job must carry the
		// documented clamps.
		for _, r := range tr.Records {
			j, ok := Convert(r, ConvertOptions{})
			if !ok {
				continue
			}
			if j.Runtime < 1 || j.Estimate < 1 || j.Nodes < 1 || j.Submit < 0 {
				t.Fatalf("Convert broke its clamps: %+v -> %+v", r, j)
			}
		}
		// A parsed trace must re-serialize cleanly.
		var out strings.Builder
		if err := Write(&out, tr); err != nil {
			t.Fatalf("Write failed on parsed trace: %v", err)
		}
	})
}
