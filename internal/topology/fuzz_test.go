package topology

import (
	"reflect"
	"testing"
)

// FuzzParseQueueSpec checks the grammar's round-trip properties on
// arbitrary input: every accepted spec has a canonical form that (a)
// reparses without error, (b) yields a DeepEqual topology and (c) is a
// fixed point of Canonical ∘ Parse.
func FuzzParseQueueSpec(f *testing.F) {
	seeds := []string{
		"part=main",
		"part=main:512",
		"part=fast:512,part=slow:1500",
		"queue=org/a:order=fairshare+bf=easy,queue=org/b:sjf",
		"part=fast:512,queue=a:part=fast:guar=2:cap=0.5:fcfs,queue=b",
		"queue=org,queue=org/a:guar=3,queue=org/b:cap=0.25",
		"queue=a:order=sjf+bf=easy+starve=24h.nonheavy+depth=2",
		"part=a,part=b,queue=x:part=b,queue=y",
		"queue=a:guar=1e-05",
		"queue=root:cplant24.nomax.all",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		topo, err := Parse(spec)
		if err != nil {
			return // rejected inputs only need a clean error
		}
		canon := topo.Canonical()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, spec, err)
		}
		if !reflect.DeepEqual(topo, again) {
			t.Fatalf("round trip of %q diverged:\n got %+v\nwant %+v", spec, again, topo)
		}
		if again.Canonical() != canon {
			t.Fatalf("Canonical not a fixed point for %q: %q != %q", spec, again.Canonical(), canon)
		}
	})
}
