package topology

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseCanonicalRoundTrip(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
	}{
		{"part=main", "part=main"},
		{"part=main:512", "part=main:512"},
		{"part=fast:512,part=slow:1500", "part=fast:512,part=slow:1500"},
		{
			"queue=org/a:order=fairshare+bf=easy,queue=org/b:sjf",
			"queue=org/a:order=fairshare+bf=easy,queue=org/b:order=sjf+bf=noguarantee",
		},
		{
			"part=fast:512,queue=b:part=fast,queue=a:guar=2:cap=0.5",
			"part=fast:512,queue=a:guar=2:cap=0.5,queue=b",
		},
		{
			"queue=org,queue=org/a:guar=3:fcfs,queue=org/b",
			"queue=org,queue=org/a:guar=3:fcfs,queue=org/b",
		},
		{" part=main:4 , queue=root:fcfs ", "part=main:4,queue=root:fcfs"},
	}
	for _, c := range cases {
		topo, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := topo.Canonical(); got != c.canonical {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.canonical)
		}
		again, err := Parse(topo.Canonical())
		if err != nil {
			t.Fatalf("reparse Canonical(%q) = %q: %v", c.in, topo.Canonical(), err)
		}
		if !reflect.DeepEqual(topo, again) {
			t.Errorf("Parse(Canonical(%q)) diverged:\n got %+v\nwant %+v", c.in, again, topo)
		}
		if again.Canonical() != topo.Canonical() {
			t.Errorf("Canonical not a fixed point for %q", c.in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"", "empty spec"},
		{"bogus", "not key=value"},
		{"size=4", "unknown clause"},
		{"part=", "bad partition name"},
		{"part=a.b", "bad partition name"},
		{"part=a:0", "want an integer >= 1"},
		{"part=a:x", "want an integer >= 1"},
		{"part=a,part=a", "duplicate partition"},
		{"queue=", "bad queue path"},
		{"queue=a..b", "bad queue path"},
		{"queue=a,queue=a", "duplicate queue"},
		{"queue=a:part=nope", "unknown partition"},
		{"part=x,queue=a:part=x:part=x", "duplicate part="},
		{"queue=a:guar=0", "want a positive number"},
		{"queue=a:guar=2:guar=3", "duplicate guar="},
		{"queue=a:cap=1.5", "want a fraction in (0, 1]"},
		{"queue=a:cap=0", "want a fraction in (0, 1]"},
		{"queue=a:fcfs:sjf", "second policy"},
		{"queue=a:order=bogus", "unknown"},
		{"queue=a:max=24h", "cannot set max="},
		{"queue=org:fcfs,queue=org/a", "inner nodes carry shares, not schedulers"},
		{"part=x,part=y,queue=org:part=x,queue=org/a:part=y", "cannot span partitions"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", c.in, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q does not contain %q", c.in, err, c.wantSub)
		}
	}
}

// Parse errors on ad-hoc clauses carry the byte position of the offending
// token, mirroring sched.ParseSpec.
func TestParseErrorPositions(t *testing.T) {
	// "guar=bad" starts at byte 17; its value at byte 22.
	_, err := Parse("part=a:4,queue=q:guar=bad")
	if err == nil || !strings.Contains(err.Error(), "position 22") {
		t.Fatalf("want position 22 in error, got %v", err)
	}
	_, err = Parse("part=a:4,part=b!")
	if err == nil || !strings.Contains(err.Error(), "position 14") {
		t.Fatalf("want position 14 in error, got %v", err)
	}
}

func TestEffectivePartitionsAndLeaves(t *testing.T) {
	topo := MustParse("part=fast:512,part=slow,queue=org,queue=org/a:fcfs,queue=org/b,queue=solo:part=slow")
	parts := topo.EffectivePartitions(1000)
	want := []Partition{{Name: "fast", Nodes: 512}, {Name: "slow", Nodes: 1000}}
	if !reflect.DeepEqual(parts, want) {
		t.Fatalf("EffectivePartitions = %+v, want %+v", parts, want)
	}
	leaves := topo.Leaves()
	paths := make([]string, len(leaves))
	for i, l := range leaves {
		paths[i] = l.Path
	}
	if !reflect.DeepEqual(paths, []string{"org/a", "org/b", "solo"}) {
		t.Fatalf("Leaves = %v", paths)
	}
	fast := topo.LeavesFor("fast")
	if len(fast) != 2 || fast[0].Path != "org/a" || fast[1].Path != "org/b" {
		t.Fatalf("LeavesFor(fast) = %+v", fast)
	}
	slow := topo.LeavesFor("slow")
	if len(slow) != 1 || slow[0].Path != "solo" {
		t.Fatalf("LeavesFor(slow) = %+v", slow)
	}
}

func TestZeroTopologyDefaults(t *testing.T) {
	var topo Topology
	if err := topo.Validate(); err != nil {
		t.Fatalf("zero topology invalid: %v", err)
	}
	if got := topo.DefaultPartition(); got != DefaultPartitionName {
		t.Fatalf("DefaultPartition = %q", got)
	}
	parts := topo.EffectivePartitions(128)
	if len(parts) != 1 || parts[0] != (Partition{Name: DefaultPartitionName, Nodes: 128}) {
		t.Fatalf("EffectivePartitions = %+v", parts)
	}
}

func TestPlacementBuilder(t *testing.T) {
	var b PlacementBuilder
	if b.Build() != nil {
		t.Fatal("empty builder built a placement")
	}
	b.SetQueue(7, "org/a")
	b.SetQueue(9, "org/b")
	b.SetQueue(7, "org/b") // later writes win
	b.SetPartition(3, "slow")
	p := b.Build()
	if q, ok := p.Queue(7); !ok || q != "org/b" {
		t.Fatalf("Queue(7) = %q, %v", q, ok)
	}
	if _, ok := p.Queue(3); ok {
		t.Fatal("user 3 has a queue tag")
	}
	if n, ok := p.PartitionTag(3); !ok || n != "slow" {
		t.Fatalf("PartitionTag(3) = %q, %v", n, ok)
	}
	if got := p.QueuePaths(); !reflect.DeepEqual(got, []string{"org/b"}) {
		t.Fatalf("QueuePaths = %v", got)
	}
	if p.Empty() {
		t.Fatal("placement reports empty")
	}
	var nilP *Placement
	if !nilP.Empty() {
		t.Fatal("nil placement not empty")
	}
}

func TestIsAncestor(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"org", "org/a", true},
		{"org", "org/a/x", true},
		{"org", "organization", false},
		{"org/a", "org", false},
		{"org", "org", false},
	}
	for _, c := range cases {
		if got := IsAncestor(c.a, c.b); got != c.want {
			t.Errorf("IsAncestor(%q, %q) = %v", c.a, c.b, got)
		}
	}
}
