package topology

import "sort"

// Placement maps users to queue-tree nodes and partitions. Scenario
// transforms build one per cell (mirroring slo.Assignment): a queue tag
// routes a user's jobs to that leaf queue (and hence its partition); a
// bare partition tag routes to the partition's first queue. Users without
// a tag route to the default partition's first queue.
//
// A Placement is immutable after Build; the same value is shared by every
// policy run of a cell.
type Placement struct {
	queue map[int]string
	part  map[int]string
}

// Queue returns the queue path the user is tagged with.
func (p *Placement) Queue(user int) (string, bool) {
	if p == nil {
		return "", false
	}
	q, ok := p.queue[user]
	return q, ok
}

// PartitionTag returns the partition the user is tagged with directly
// (queue tags imply a partition through the topology instead).
func (p *Placement) PartitionTag(user int) (string, bool) {
	if p == nil {
		return "", false
	}
	n, ok := p.part[user]
	return n, ok
}

// QueuePaths returns the distinct queue paths used by queue tags, sorted.
// The flat (no-topology) path groups per-queue report rows by these.
func (p *Placement) QueuePaths() []string {
	if p == nil {
		return nil
	}
	seen := map[string]bool{}
	for _, q := range p.queue {
		seen[q] = true
	}
	out := make([]string, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// Empty reports whether the placement carries no tags.
func (p *Placement) Empty() bool {
	return p == nil || (len(p.queue) == 0 && len(p.part) == 0)
}

// PlacementBuilder accumulates user tags; transforms in a scenario chain
// contribute in order, later writes winning (like slo.Builder).
type PlacementBuilder struct {
	queue map[int]string
	part  map[int]string
}

// SetQueue tags a user's jobs with a queue path.
func (b *PlacementBuilder) SetQueue(user int, path string) {
	if b.queue == nil {
		b.queue = make(map[int]string)
	}
	b.queue[user] = path
}

// SetPartition tags a user's jobs with a partition name.
func (b *PlacementBuilder) SetPartition(user int, name string) {
	if b.part == nil {
		b.part = make(map[int]string)
	}
	b.part[user] = name
}

// Build returns the immutable placement, nil when nothing was tagged.
func (b *PlacementBuilder) Build() *Placement {
	if len(b.queue) == 0 && len(b.part) == 0 {
		return nil
	}
	return &Placement{queue: b.queue, part: b.part}
}
