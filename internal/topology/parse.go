package topology

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"fairsched/internal/sched"
)

// Parse resolves a topology spec: comma-separated clauses declaring
// partitions and queues, mirroring sched.ParseSpec's discipline (byte
// positions in errors, canonical round-trip):
//
//	part=<name>[:<nodes>]      a machine group; the first declared is the
//	                           default. Omitted nodes inherit the run's
//	                           system size.
//	queue=<path>[:<attr>...]   a queue-tree node; ':'-separated attributes
//	                           in any order:
//	    part=<name>            partition the subtree schedules on
//	    guar=<weight>          fair-share weight among siblings (default 1)
//	    cap=<fraction>         max share of the partition, (0, 1]
//	    <policy>               the leaf's policy: a registered name, an
//	                           order=/bf=/... chain, or a bare order token
//	                           (sjf ≡ order=sjf)
//
// Example: "part=fast:512,part=slow:1500,queue=org/a:part=fast:order=fairshare+bf=easy,queue=org/b:sjf".
func Parse(spec string) (*Topology, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("topology: empty spec")
	}
	t := &Topology{}
	pos := 0
	for _, clause := range strings.Split(spec, ",") {
		if err := parseClause(clause, pos, t); err != nil {
			return nil, fmt.Errorf("topology: spec %q: %w", spec, err)
		}
		pos += len(clause) + 1 // the ',' separator
	}
	t.normalize()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustParse is Parse, panicking on error (tests and examples).
func MustParse(spec string) *Topology {
	t, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// parseClause parses one comma-separated clause at byte position pos of
// the full spec, accumulating into t.
func parseClause(clause string, pos int, t *Topology) error {
	trimmed := strings.TrimSpace(clause)
	pos += strings.Index(clause, trimmed) // account for leading spaces
	key, val, ok := strings.Cut(trimmed, "=")
	if !ok {
		return fmt.Errorf("position %d: clause %q is not key=value (want part= or queue=)", pos, trimmed)
	}
	valPos := pos + len(key) + 1
	switch key {
	case "part":
		name, nodes, hasNodes := strings.Cut(val, ":")
		if !validSegment(name) {
			return fmt.Errorf("position %d: bad partition name %q (want letters, digits, '_' or '-')", valPos, name)
		}
		p := Partition{Name: name}
		if hasNodes {
			n, err := strconv.Atoi(nodes)
			if err != nil || n < 1 {
				return fmt.Errorf("position %d: partition %s: node count %q: want an integer >= 1", valPos+len(name)+1, name, nodes)
			}
			p.Nodes = n
		}
		t.Partitions = append(t.Partitions, p)
	case "queue":
		return parseQueueClause(val, valPos, t)
	default:
		return fmt.Errorf("position %d: unknown clause %q (want part or queue)", pos, key)
	}
	return nil
}

// parseQueueClause parses the value of one queue= clause (path plus
// ':'-separated attributes) at byte position pos.
func parseQueueClause(val string, pos int, t *Topology) error {
	toks := strings.Split(val, ":")
	path := toks[0]
	if !validPath(path) {
		return fmt.Errorf("position %d: bad queue path %q (want '/'-joined segments of letters, digits, '_' or '-')", pos, path)
	}
	q := QueueNode{Path: path}
	attrPos := pos + len(path) + 1
	for _, tok := range toks[1:] {
		if err := parseQueueAttr(tok, attrPos, &q); err != nil {
			return err
		}
		attrPos += len(tok) + 1
	}
	t.Queues = append(t.Queues, q)
	return nil
}

// parseQueueAttr parses one queue attribute token at byte position pos.
// Tokens that are not part=/guar=/cap= are the leaf's policy spec.
func parseQueueAttr(tok string, pos int, q *QueueNode) error {
	key, val, _ := strings.Cut(tok, "=")
	switch key {
	case "part":
		if q.Partition != "" {
			return fmt.Errorf("position %d: queue %s: duplicate part=", pos, q.Path)
		}
		if !validSegment(val) {
			return fmt.Errorf("position %d: queue %s: bad partition name %q", pos+len(key)+1, q.Path, val)
		}
		q.Partition = val
		return nil
	case "guar":
		if q.Guarantee != 0 {
			return fmt.Errorf("position %d: queue %s: duplicate guar=", pos, q.Path)
		}
		g, err := strconv.ParseFloat(val, 64)
		if err != nil || !(g > 0) || math.IsInf(g, 1) {
			return fmt.Errorf("position %d: queue %s: guarantee %q: want a positive number", pos+len(key)+1, q.Path, val)
		}
		q.Guarantee = g
		return nil
	case "cap":
		if q.Cap != 0 {
			return fmt.Errorf("position %d: queue %s: duplicate cap=", pos, q.Path)
		}
		c, err := strconv.ParseFloat(val, 64)
		if err != nil || !(c > 0 && c <= 1) {
			return fmt.Errorf("position %d: queue %s: cap %q: want a fraction in (0, 1]", pos+len(key)+1, q.Path, val)
		}
		q.Cap = c
		return nil
	}
	if q.Policy != nil {
		return fmt.Errorf("position %d: queue %s: second policy %q (queues take one policy)", pos, q.Path, tok)
	}
	s, err := parseQueuePolicy(tok)
	if err != nil {
		return fmt.Errorf("position %d: queue %s: %w", pos, q.Path, err)
	}
	q.Policy = &s
	return nil
}

// parseQueuePolicy resolves a queue's policy token: a registered name or
// component chain (sched.ParseSpec), or a bare order token as shorthand
// for order=<token>.
func parseQueuePolicy(tok string) (sched.Spec, error) {
	s, err := sched.ParseSpec(tok)
	if err == nil {
		return s, nil
	}
	if !strings.Contains(tok, "=") {
		if s2, err2 := sched.ParseSpec("order=" + tok); err2 == nil {
			return s2, nil
		}
	}
	return sched.Spec{}, err
}

// fmtFloat renders a share/quota value so that parsing it back yields the
// identical float (the canonical round-trip).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
