// Package topology models the machine and queue shape of a run: named
// partitions (machine groups, each with its own node capacity and event
// loop) and a hierarchical queue tree (org → group → user) whose nodes
// carry guaranteed shares, maximum-capacity quotas and per-queue policy
// specs composed from the sched grammar.
//
// A topology is pure data with a text grammar (see Parse) following the
// same positional-error/canonical-form discipline as sched.ParseSpec: the
// canonical rendering is a parse fixed point, so a topology string is a
// stable cross-tool identifier. The zero Topology means "one flat machine,
// one implicit root queue" — exactly the pre-partition simulator.
package topology

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fairsched/internal/sched"
)

// Partition is one named machine group. Each partition runs its own event
// loop over its own nodes; jobs never migrate between partitions.
type Partition struct {
	// Name identifies the partition (segment charset: [A-Za-z0-9_-]).
	Name string
	// Nodes is the partition's node capacity; 0 inherits the run's system
	// size (useful for single-partition topologies).
	Nodes int
}

// QueueNode is one node of the queue tree. A node whose path is a proper
// prefix of another declared node's path is an inner node: it carries
// share/quota attributes that roll up from its descendants but no policy
// and no directly-routed jobs. Every other node is a leaf with its own
// scheduler instance.
type QueueNode struct {
	// Path is the tree position, '/'-separated (e.g. "org/a"). Segments use
	// the same charset as partition names; '.' is reserved so per-queue
	// metric keys (queue.<path>.<field>) stay unambiguous.
	Path string
	// Partition names the machine group this queue (and its subtree)
	// schedules on; "" means the default (first declared) partition. Parse
	// normalizes "" to the default partition's name when one is declared.
	Partition string
	// Guarantee is the node's relative fair-share weight among its siblings
	// (default 1): sibling subtrees are serviced in increasing
	// usage/guarantee order, usage rolled up the tree with the same lazy
	// decay as per-user fairshare.
	Guarantee float64
	// Cap limits the subtree to this fraction of the partition's nodes,
	// in (0, 1]; 1 (the default) means no quota. Quotas clamp the free
	// capacity a leaf's scheduler may start into, for itself and every
	// queue below the capped node.
	Cap float64
	// Policy is the leaf's scheduling policy; nil inherits the run's
	// policy. Inner nodes must leave it nil. Per-queue specs may not set
	// max= (the maximum-runtime split is a run-global simulator setting).
	Policy *sched.Spec
}

// Topology is the full machine/queue shape. The zero value is the flat
// pre-partition machine. Parse returns partitions in declaration order
// (the first is the default) and queues sorted by path.
type Topology struct {
	Partitions []Partition
	Queues     []QueueNode
}

// DefaultPartitionName is the name of the implicit partition when none is
// declared.
const DefaultPartitionName = "default"

// DefaultPartition returns the name of the partition queues land on when
// they do not name one: the first declared partition, or
// DefaultPartitionName for a partition-less topology.
func (t *Topology) DefaultPartition() string {
	if len(t.Partitions) > 0 {
		return t.Partitions[0].Name
	}
	return DefaultPartitionName
}

// EffectivePartitions resolves the declared partitions against the run's
// system size: a topology with no part= clauses is one default partition
// of the full machine, and a declared partition with Nodes == 0 inherits
// the full system size.
func (t *Topology) EffectivePartitions(systemSize int) []Partition {
	if len(t.Partitions) == 0 {
		return []Partition{{Name: DefaultPartitionName, Nodes: systemSize}}
	}
	out := make([]Partition, len(t.Partitions))
	for i, p := range t.Partitions {
		if p.Nodes == 0 {
			p.Nodes = systemSize
		}
		out[i] = p
	}
	return out
}

// PartitionOf returns the queue's effective partition name.
func (t *Topology) PartitionOf(q QueueNode) string {
	if q.Partition != "" {
		return q.Partition
	}
	return t.DefaultPartition()
}

// IsAncestor reports whether path a is a proper ancestor of path b in the
// queue tree ("org" is an ancestor of "org/a" and "org/a/x").
func IsAncestor(a, b string) bool {
	return len(b) > len(a) && strings.HasPrefix(b, a) && b[len(a)] == '/'
}

// Leaves returns the declared queues that are not proper ancestors of
// other declared queues, in path order: the nodes jobs route to, each
// backed by its own scheduler instance.
func (t *Topology) Leaves() []QueueNode {
	var out []QueueNode
	for i, q := range t.Queues {
		inner := false
		for k, r := range t.Queues {
			if i != k && IsAncestor(q.Path, r.Path) {
				inner = true
				break
			}
		}
		if !inner {
			out = append(out, q)
		}
	}
	return out
}

// LeavesFor returns the leaf queues of one partition, in path order.
func (t *Topology) LeavesFor(partition string) []QueueNode {
	var out []QueueNode
	for _, q := range t.Leaves() {
		if t.PartitionOf(q) == partition {
			out = append(out, q)
		}
	}
	return out
}

// ValidName reports whether s is a legal partition name.
func ValidName(s string) bool { return validSegment(s) }

// ValidPath reports whether p is a legal queue path.
func ValidPath(p string) bool { return validPath(p) }

// validSegment reports whether s is a legal name segment: non-empty, only
// letters, digits, '_' and '-'.
func validSegment(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// validPath reports whether p is a legal queue path: '/'-joined segments.
func validPath(p string) bool {
	for _, seg := range strings.Split(p, "/") {
		if !validSegment(seg) {
			return false
		}
	}
	return true
}

// Validate checks the topology's internal consistency: name/path charsets
// and uniqueness, partition references, share/quota ranges, the
// inner-node contract (no policy on a queue with declared descendants,
// one partition per subtree) and the no-per-queue-max rule.
func (t *Topology) Validate() error {
	seenPart := map[string]bool{}
	for _, p := range t.Partitions {
		if !validSegment(p.Name) {
			return fmt.Errorf("topology: bad partition name %q (want letters, digits, '_' or '-')", p.Name)
		}
		if seenPart[p.Name] {
			return fmt.Errorf("topology: duplicate partition %q", p.Name)
		}
		seenPart[p.Name] = true
		if p.Nodes < 0 {
			return fmt.Errorf("topology: partition %q: negative node count %d", p.Name, p.Nodes)
		}
	}
	seenQ := map[string]bool{}
	for _, q := range t.Queues {
		if !validPath(q.Path) {
			return fmt.Errorf("topology: bad queue path %q (want '/'-joined segments of letters, digits, '_' or '-')", q.Path)
		}
		if seenQ[q.Path] {
			return fmt.Errorf("topology: duplicate queue %q", q.Path)
		}
		seenQ[q.Path] = true
		if q.Partition != "" && !seenPart[q.Partition] {
			return fmt.Errorf("topology: queue %q: unknown partition %q", q.Path, q.Partition)
		}
		if g := q.Guarantee; g != 0 && (!(g > 0) || math.IsInf(g, 1)) { // rejects negatives, NaN and +Inf
			return fmt.Errorf("topology: queue %q: guarantee %v must be positive and finite", q.Path, g)
		}
		if c := q.Cap; c != 0 && !(c > 0 && c <= 1) {
			return fmt.Errorf("topology: queue %q: cap %v out of range (0, 1]", q.Path, c)
		}
		if q.Policy != nil {
			if err := q.Policy.Validate(); err != nil {
				return fmt.Errorf("topology: queue %q: %w", q.Path, err)
			}
			if q.Policy.MaxRuntime > 0 {
				return fmt.Errorf("topology: queue %q: per-queue policies cannot set max= (the maximum-runtime split is run-global)", q.Path)
			}
			if q.Policy.PreemptTrigger != "" {
				return fmt.Errorf("topology: queue %q: per-queue policies cannot set preempt= (checkpoint preemption needs the flat event loop's requeue path)", q.Path)
			}
			if q.Policy.Order == "edf" {
				return fmt.Errorf("topology: queue %q: per-queue policies cannot use order=edf (partitioned loops carry no per-run SLO context)", q.Path)
			}
		}
	}
	for _, q := range t.Queues {
		for _, r := range t.Queues {
			if !IsAncestor(q.Path, r.Path) {
				continue
			}
			if q.Policy != nil {
				return fmt.Errorf("topology: queue %q has descendant %q and a policy: inner nodes carry shares, not schedulers", q.Path, r.Path)
			}
			if t.PartitionOf(q) != t.PartitionOf(r) {
				return fmt.Errorf("topology: queue %q (partition %s) and descendant %q (partition %s): a subtree cannot span partitions",
					q.Path, t.PartitionOf(q), r.Path, t.PartitionOf(r))
			}
		}
	}
	return nil
}

// normalize fills defaults (guarantee/cap 1, explicit default partition
// when one is declared) and sorts queues by path, so Parse(Canonical(t))
// round-trips to an identical value.
func (t *Topology) normalize() {
	def := ""
	if len(t.Partitions) > 0 {
		def = t.Partitions[0].Name
	}
	for i := range t.Queues {
		q := &t.Queues[i]
		if q.Guarantee == 0 {
			q.Guarantee = 1
		}
		if q.Cap == 0 {
			q.Cap = 1
		}
		if q.Partition == "" {
			q.Partition = def
		}
	}
	sort.Slice(t.Queues, func(i, k int) bool { return t.Queues[i].Path < t.Queues[k].Path })
}

// Canonical renders the topology in its canonical grammar form:
// partitions in declaration order, then queues sorted by path, each with
// its non-default attributes in fixed order (part, guar, cap, policy).
// Parsing the canonical form yields an identical topology (the round-trip
// property FuzzParseQueueSpec checks).
func (t *Topology) Canonical() string {
	var b strings.Builder
	def := t.DefaultPartition()
	if len(t.Partitions) == 0 {
		def = ""
	}
	for _, p := range t.Partitions {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString("part=")
		b.WriteString(p.Name)
		if p.Nodes > 0 {
			fmt.Fprintf(&b, ":%d", p.Nodes)
		}
	}
	qs := append([]QueueNode(nil), t.Queues...)
	sort.Slice(qs, func(i, k int) bool { return qs[i].Path < qs[k].Path })
	for _, q := range qs {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString("queue=")
		b.WriteString(q.Path)
		if q.Partition != "" && q.Partition != def {
			b.WriteString(":part=")
			b.WriteString(q.Partition)
		}
		if q.Guarantee != 0 && q.Guarantee != 1 {
			fmt.Fprintf(&b, ":guar=%s", fmtFloat(q.Guarantee))
		}
		if q.Cap != 0 && q.Cap != 1 {
			fmt.Fprintf(&b, ":cap=%s", fmtFloat(q.Cap))
		}
		if q.Policy != nil {
			b.WriteByte(':')
			b.WriteString(q.Policy.String())
		}
	}
	return b.String()
}

// String returns the canonical form.
func (t *Topology) String() string { return t.Canonical() }
