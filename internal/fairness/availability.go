// Package fairness implements the paper's fairness metrics for parallel job
// scheduling: the hybrid "fairshare" fair-start-time metric (§4.1, the
// paper's contribution), the CONS-P fair start time, the Sabin/Sadayappan
// no-later-arrivals fair start time, and the resource-equality metric, plus
// the aggregate unfairness statistics (percent unfair jobs, average miss
// time — Equation 5).
package fairness

import (
	"fmt"
	"sort"

	"fairsched/internal/sim"
)

// availability is the node-availability multiset of a list scheduler: entry
// (t, n) means n nodes become free at time t. The paper's hybrid metric
// describes it per node ("a list scheduler keeps track of a completion time
// for each node"); run-length encoding over times is equivalent and keeps
// each operation O(distinct times) instead of O(system size).
type availability struct {
	entries []availEntry
	total   int
}

type availEntry struct {
	t int64
	n int
}

// newAvailability seeds the multiset from the system state at an arrival:
// free nodes are available now; each running job's nodes free up at its
// actual completion (perfect estimates, as in CONS-P). A running segment of
// a checkpoint chain holds its nodes for the chain's remaining runtime: in
// the fair reference schedule the restarts continue seamlessly.
func newAvailability(now int64, free int, running []sim.RunningJob) *availability {
	a := &availability{}
	if free > 0 {
		a.entries = append(a.entries, availEntry{t: now, n: free})
		a.total = free
	}
	for _, r := range running {
		a.add(r.Start+r.Job.EffectiveRuntime(), r.Job.Nodes)
	}
	return a
}

// add inserts n nodes becoming free at t, merging equal times.
func (a *availability) add(t int64, n int) {
	if n <= 0 {
		return
	}
	a.total += n
	i := sort.Search(len(a.entries), func(i int) bool { return a.entries[i].t >= t })
	if i < len(a.entries) && a.entries[i].t == t {
		a.entries[i].n += n
		return
	}
	a.entries = append(a.entries, availEntry{})
	copy(a.entries[i+1:], a.entries[i:])
	a.entries[i] = availEntry{t: t, n: n}
}

// remove deletes n nodes from the entry at exactly t; the inverse of add.
// The entry must exist and hold at least n nodes.
func (a *availability) remove(t int64, n int) error {
	if n <= 0 {
		return nil
	}
	i := sort.Search(len(a.entries), func(i int) bool { return a.entries[i].t >= t })
	if i >= len(a.entries) || a.entries[i].t != t || a.entries[i].n < n {
		return fmt.Errorf("fairness: no %d nodes releasing at t=%d in multiset", n, t)
	}
	a.entries[i].n -= n
	a.total -= n
	if a.entries[i].n == 0 {
		copy(a.entries[i:], a.entries[i+1:])
		a.entries = a.entries[:len(a.entries)-1]
	}
	return nil
}

// reset empties the multiset in place, keeping the backing array.
func (a *availability) reset() {
	a.entries = a.entries[:0]
	a.total = 0
}

// copyFrom makes a an exact copy of src, reusing a's backing array — the
// allocation-free seeding step of the per-arrival scratch multiset.
func (a *availability) copyFrom(src *availability) {
	a.entries = append(a.entries[:0], src.entries...)
	a.total = src.total
}

// allocate places a job needing `nodes` nodes for `runtime` seconds at the
// earliest time that many nodes are simultaneously free — the n-th smallest
// availability time — consumes those nodes and returns them at start +
// runtime. It returns the start time.
func (a *availability) allocate(nodes int, runtime int64) (int64, error) {
	if nodes > a.total {
		return 0, fmt.Errorf("fairness: job needs %d nodes, multiset holds %d", nodes, a.total)
	}
	need := nodes
	idx := 0
	for ; idx < len(a.entries); idx++ {
		if a.entries[idx].n >= need {
			break
		}
		need -= a.entries[idx].n
	}
	start := a.entries[idx].t
	// Consume the `need` nodes from entry idx and all of entries [0, idx),
	// compacting in place: a forward re-slice would pin the vacated head of
	// the backing array for the multiset's whole lifetime.
	if a.entries[idx].n == need {
		idx++
	} else {
		a.entries[idx].n -= need
	}
	kept := copy(a.entries, a.entries[idx:])
	a.entries = a.entries[:kept]
	a.total -= nodes
	a.add(start+runtime, nodes)
	return start, nil
}

// Total returns the node count represented (constant across allocations).
func (a *availability) Total() int { return a.total }
