package fairness

import (
	"sort"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// Equality implements the resource-equality metric reviewed in §4 (Sabin and
// Sadayappan's second metric, inspired by networking/operational fairness):
// while a job is live (queued or running) it "deserves" 1/N of the machine,
// where N is the number of live jobs; it "receives" its node share while
// running and nothing while queued. The per-job unfairness is the integral
// of the unmet share over the job's lifetime, expressed in processor-seconds
// of the full machine. Unlike FST metrics this does not depend on the
// scheduler in place, so it can compare schedules directly.
type Equality struct {
	sim.BaseObserver
	systemSize int
	live       map[job.ID]*liveJob
	deficit    map[job.ID]float64
	jobs       int
}

type liveJob struct {
	job     *job.Job
	running bool
}

// NewEquality returns an equality observer for a system of the given size.
func NewEquality(systemSize int) *Equality {
	return &Equality{
		systemSize: systemSize,
		live:       make(map[job.ID]*liveJob),
		deficit:    make(map[job.ID]float64),
	}
}

// JobArrived implements sim.Observer.
func (e *Equality) JobArrived(_ sim.Env, j *job.Job, _ []*job.Job) {
	e.live[j.ID] = &liveJob{job: j}
	e.jobs++
}

// JobStarted implements sim.Observer.
func (e *Equality) JobStarted(_ sim.Env, j *job.Job) {
	if l := e.live[j.ID]; l != nil {
		l.running = true
	}
}

// JobCompleted implements sim.Observer.
func (e *Equality) JobCompleted(_ sim.Env, j *job.Job, _ int64) {
	delete(e.live, j.ID)
}

// Interval implements sim.Observer: integrate unmet share over [from, to).
func (e *Equality) Interval(from, to int64, _, _ int) {
	n := len(e.live)
	if n == 0 {
		return
	}
	dt := float64(to - from)
	deserved := 1 / float64(n)
	size := float64(e.systemSize)
	for id, l := range e.live {
		received := 0.0
		if l.running {
			received = float64(l.job.Nodes) / size
		}
		if unmet := deserved - received; unmet > 0 {
			e.deficit[id] += unmet * dt * size // processor-seconds of unmet share
		}
	}
}

// Deficit returns a job's accumulated unmet share in processor-seconds.
func (e *Equality) Deficit(id job.ID) float64 { return e.deficit[id] }

// AveragePerJob returns the mean unmet share per submitted job.
func (e *Equality) AveragePerJob() float64 {
	if e.jobs == 0 {
		return 0
	}
	return e.Total() / float64(e.jobs)
}

// Total returns the summed unmet share in processor-seconds. The sum runs in
// ascending job-id order so the floating-point result is deterministic.
func (e *Equality) Total() float64 {
	ids := make([]job.ID, 0, len(e.deficit))
	for id := range e.deficit {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	var t float64
	for _, id := range ids {
		t += e.deficit[id]
	}
	return t
}
