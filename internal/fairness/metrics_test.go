package fairness

import (
	"math"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

func rec(id job.ID, nodes int, runtime, start int64) *sim.Record {
	return &sim.Record{
		Job:   &job.Job{ID: id, Nodes: nodes, Runtime: runtime},
		Start: start,
	}
}

func TestMeasureCountsAndAverages(t *testing.T) {
	records := []*sim.Record{
		rec(1, 1, 100, 50),   // fst 50: fair (exact)
		rec(2, 1, 100, 200),  // fst 100: misses by 100
		rec(3, 600, 100, 10), // fst 20: fair (early start)
		rec(4, 600, 100, 70), // fst 20: misses by 50
	}
	fst := map[job.ID]int64{1: 50, 2: 100, 3: 20, 4: 20}
	u := Measure(records, fst)
	if u.Jobs != 4 || u.UnfairJobs != 2 {
		t.Fatalf("jobs/unfair = %d/%d", u.Jobs, u.UnfairJobs)
	}
	if got := u.PercentUnfair(); got != 50 {
		t.Fatalf("percent unfair = %v", got)
	}
	if got := u.AvgMissTime(); got != (100+50)/4.0 {
		t.Fatalf("avg miss = %v", got)
	}
	byW := u.AvgMissTimeByWidth()
	if byW[0] != 50 { // two 1-node jobs, total miss 100
		t.Fatalf("narrow avg miss = %v", byW[0])
	}
	if byW[10] != 25 { // two 600-node jobs, total miss 50
		t.Fatalf("wide avg miss = %v", byW[10])
	}
}

func TestMeasureLoadWeighted(t *testing.T) {
	records := []*sim.Record{
		rec(1, 1, 100, 200), // unfair, load 100
		rec(2, 99, 100, 10), // fair, load 9900
	}
	fst := map[job.ID]int64{1: 100, 2: 10}
	u := Measure(records, fst)
	if got := u.PercentUnfair(); got != 50 {
		t.Fatalf("count percent = %v", got)
	}
	if got := u.PercentUnfairLoad(); got != 1 {
		t.Fatalf("load percent = %v, want 1", got)
	}
}

func TestMeasureSkipsRecordsWithoutFST(t *testing.T) {
	records := []*sim.Record{rec(1, 1, 100, 200), rec(2, 1, 100, 200)}
	fst := map[job.ID]int64{1: 100}
	u := Measure(records, fst)
	if u.Jobs != 1 {
		t.Fatalf("jobs = %d, want 1 (record 2 has no FST)", u.Jobs)
	}
}

func TestMeasureEmpty(t *testing.T) {
	u := Measure(nil, nil)
	if u.PercentUnfair() != 0 || u.AvgMissTime() != 0 || u.PercentUnfairLoad() != 0 {
		t.Fatal("empty measure should be all zeros")
	}
}

func TestMeasureUsesEffectiveRuntimeForLoad(t *testing.T) {
	r := rec(1, 10, 100, 500)
	r.Job.ChainRuntime = 1000 // chain head: load weighted by the full chain
	fst := map[job.ID]int64{1: 100}
	u := Measure([]*sim.Record{r}, fst)
	if u.TotalLoad != 10*1000 {
		t.Fatalf("total load = %v, want 10000", u.TotalLoad)
	}
}

func TestConsPEmptySystem(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 900, Nodes: 4},
		{ID: 2, User: 2, Submit: 10, Runtime: 100, Estimate: 900, Nodes: 4},
	}
	fst, err := ConsP(jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fst[1] != 0 || fst[2] != 10 {
		t.Fatalf("fst = %v", fst)
	}
}

func TestConsPPacksWithPerfectEstimates(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 5, Runtime: 50, Estimate: 50, Nodes: 6},  // waits for 1
		{ID: 3, User: 3, Submit: 10, Runtime: 90, Estimate: 90, Nodes: 2}, // backfills beside 1
	}
	fst, err := ConsP(jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fst[1] != 0 || fst[2] != 100 || fst[3] != 10 {
		t.Fatalf("fst = %v", fst)
	}
}

func TestConsPRejectsImpossibleJobs(t *testing.T) {
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 0, Runtime: 1, Estimate: 1, Nodes: 10}}
	if _, err := ConsP(jobs, 4); err == nil {
		t.Fatal("too-wide job accepted")
	}
	if _, err := ConsP(nil, 0); err == nil {
		t.Fatal("zero system size accepted")
	}
}

func TestSabinLastJobMatchesActualStart(t *testing.T) {
	// A toy StartsFunc: strict FCFS on 8 nodes via ConsP with perfect
	// estimates is deterministic, and for the LAST job (no later arrivals)
	// the Sabin FST must equal its start in the full schedule.
	full := func(jobs []*job.Job) (map[job.ID]int64, error) { return ConsP(jobs, 8) }
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 5, Runtime: 50, Estimate: 50, Nodes: 6},
		{ID: 3, User: 3, Submit: 10, Runtime: 90, Estimate: 90, Nodes: 2},
	}
	fst, err := Sabin(full, jobs)
	if err != nil {
		t.Fatal(err)
	}
	fullStarts, _ := full(jobs)
	// Job 3 is the last arrival: truncation changes nothing.
	if fst[3] != fullStarts[3] {
		t.Fatalf("sabin fst %d != full start %d", fst[3], fullStarts[3])
	}
	// Job 1 saw no queue at all.
	if fst[1] != 0 {
		t.Fatalf("job 1 sabin fst = %d", fst[1])
	}
}

func TestSabinPropagatesRunnerErrors(t *testing.T) {
	bad := func([]*job.Job) (map[job.ID]int64, error) { return nil, errTest }
	if _, err := Sabin(bad, []*job.Job{{ID: 1}}); err == nil {
		t.Fatal("runner error swallowed")
	}
	missing := func([]*job.Job) (map[job.ID]int64, error) { return map[job.ID]int64{}, nil }
	if _, err := Sabin(missing, []*job.Job{{ID: 1}}); err == nil {
		t.Fatal("missing start accepted")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestEqualityIntegratesUnmetShare(t *testing.T) {
	e := NewEquality(10)
	j1 := &job.Job{ID: 1, Nodes: 5}
	j2 := &job.Job{ID: 2, Nodes: 2}
	e.JobArrived(nil, j1, nil)
	e.JobArrived(nil, j2, nil)
	e.JobStarted(nil, j1)
	// Two live jobs for 100s: each deserves 1/2 of 10 nodes = 5 nodes.
	// j1 runs on 5 (unmet 0); j2 queued (unmet 5 nodes * 100s = 500).
	e.Interval(0, 100, 5, 2)
	if got := e.Deficit(1); got != 0 {
		t.Fatalf("running job at its share has deficit %v", got)
	}
	if got := e.Deficit(2); math.Abs(got-500) > 1e-9 {
		t.Fatalf("queued job deficit = %v, want 500", got)
	}
	e.JobCompleted(nil, j1, 0)
	// One live job deserving everything, receiving nothing while queued.
	e.Interval(100, 110, 0, 2)
	if got := e.Deficit(2); math.Abs(got-600) > 1e-9 {
		t.Fatalf("deficit after second interval = %v, want 600", got)
	}
	if got := e.Total(); math.Abs(got-600) > 1e-9 {
		t.Fatalf("total = %v", got)
	}
	if got := e.AveragePerJob(); math.Abs(got-300) > 1e-9 {
		t.Fatalf("average = %v", got)
	}
}

func TestEqualityEmptyIntervals(t *testing.T) {
	e := NewEquality(10)
	e.Interval(0, 100, 0, 0) // no live jobs: no-op
	if e.Total() != 0 {
		t.Fatal("deficit accrued with no live jobs")
	}
}
