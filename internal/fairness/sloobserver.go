package fairness

import (
	"fairsched/internal/job"
	"fairsched/internal/sim"
	"fairsched/internal/slo"
)

// SLOObserver accrues per-user SLO attainment online, as the run
// progresses — the first measurement-plane consumer of the incremental
// hybrid-FST engine's hooks. It judges each logical job's queuing delay
// the moment the job starts (reading the engine's fair start time, already
// recorded at the job's arrival, to split breaches into policy-caused and
// infeasible-under-contention) and the slowdown half at completion; no
// post-run record walk happens, and the steady-state path allocates
// nothing (the per-user table and per-class histograms are preallocated
// from the assignment — see slo.Tracker).
//
// The observer must be attached to the same simulator as the engine it
// reads, and AFTER it in the observer list is not required: the engine
// records a job's fair start at JobArrived, which the simulator always
// fires before the job can start. With a nil engine (fairness metrics
// skipped) attainment is still tracked; only the unfair/infeasible breach
// split stays zero.
//
// The differential suite (slo_test.go) pins the observer's output
// byte-identical to slo.FromRecords — the from-scratch post-run reference
// over Result.Records — across calm, contended, split and kill workloads.
type SLOObserver struct {
	sim.BaseObserver
	t   *slo.Tracker
	fst *HybridFST
}

// NewSLOObserver builds an observer over an assignment; fst may be nil.
func NewSLOObserver(asg *slo.Assignment, fst *HybridFST) *SLOObserver {
	return &SLOObserver{t: slo.NewTracker(asg), fst: fst}
}

// JobStarted implements sim.Observer: the wait-time judgment.
func (o *SLOObserver) JobStarted(env sim.Env, j *job.Job) {
	var fair int64
	var ok bool
	if o.fst != nil {
		fair, ok = o.fst.FST(j.ID)
	}
	o.t.JobStarted(j, env.Now(), fair, ok)
}

// JobCompleted implements sim.Observer: the slowdown judgment.
func (o *SLOObserver) JobCompleted(env sim.Env, j *job.Job, start int64) {
	o.t.JobCompleted(j, start, env.Now())
}

// SetChained selects chain-level slowdown judgment for SplitChained runs
// (see slo.Tracker.SetChained): the chain is judged at its last segment's
// completion against the original submit.
func (o *SLOObserver) SetChained(on bool) { o.t.SetChained(on) }

// UserAtRisk implements sched.BreachRisk over the online tracker: a user
// reads as at-risk once at least one breach (wait or slowdown) is on the
// books this run. The deadline-aware order (order=edf) promotes such
// users' queued jobs ahead of everything else.
func (o *SLOObserver) UserAtRisk(user int) bool { return o.t.UserBreached(user) }

// Tracker exposes the accounting core, so partitioned runs can merge the
// per-partition observers into one report (slo.Tracker.Merge).
func (o *SLOObserver) Tracker() *slo.Tracker { return o.t }

// Summary returns the per-class attainment report accrued so far.
func (o *SLOObserver) Summary() *slo.Summary { return o.t.Summary() }

// PerUser returns the per-user stats accrued so far, in ascending user-id
// order.
func (o *SLOObserver) PerUser() []slo.UserStats { return o.t.PerUser() }
