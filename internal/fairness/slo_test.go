package fairness

import (
	"math/rand"
	"reflect"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/sched"
	"fairsched/internal/sim"
	"fairsched/internal/slo"
	"fairsched/internal/workload"
)

// sloAssignmentFor tags a workload's users deterministically across every
// target shape: wait-only, wait+slowdown, slowdown-only, with every fifth
// user left untagged so the skip path is exercised too.
func sloAssignmentFor(jobs []*job.Job) *slo.Assignment {
	seen := make(map[int]bool)
	var users []int
	for _, j := range jobs {
		if !seen[j.User] {
			seen[j.User] = true
			users = append(users, j.User)
		}
	}
	b := slo.NewBuilder()
	b.AddClass("tight", slo.Target{Wait: 3600})
	b.AddClass("loose", slo.Target{Wait: 24 * 3600, Slowdown: 8})
	b.AddClass("slow", slo.Target{Slowdown: 4})
	classes := []string{"tight", "loose", "slow"}
	for i, u := range users {
		if i%5 == 4 {
			continue // untagged
		}
		b.Tag(u, classes[i%3])
	}
	return b.Build()
}

// runWithSLO executes one policy with the hybrid engine and the online
// observer attached, returning the run plus both accountings. chained
// selects chain-level slowdown judgment on both sides (SplitChained runs).
func runWithSLO(t testing.TB, spec string, cfg sim.Config, jobs []*job.Job, asg *slo.Assignment, chained bool) (obs *SLOObserver, ref *slo.Tracker) {
	t.Helper()
	engine := NewHybridFST()
	obs = NewSLOObserver(asg, engine)
	obs.SetChained(chained)
	res, err := sim.New(cfg, sched.MustParse(spec), engine, obs).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if chained {
		return obs, slo.FromRecordsChained(asg, res.Records, engine.Table())
	}
	return obs, slo.FromRecords(asg, res.Records, engine.Table())
}

func assertSLOEqual(t *testing.T, name string, obs *SLOObserver, ref *slo.Tracker) {
	t.Helper()
	gotUsers, wantUsers := obs.PerUser(), ref.PerUser()
	if !reflect.DeepEqual(gotUsers, wantUsers) {
		for i := range gotUsers {
			if i < len(wantUsers) && gotUsers[i] != wantUsers[i] {
				t.Fatalf("%s: user stats diverged at %d:\n  online:    %+v\n  reference: %+v",
					name, i, gotUsers[i], wantUsers[i])
			}
		}
		t.Fatalf("%s: per-user stats diverged (lengths %d vs %d)", name, len(gotUsers), len(wantUsers))
	}
	if !reflect.DeepEqual(obs.Summary(), ref.Summary()) {
		t.Fatalf("%s: summaries diverged:\n  online:    %+v\n  reference: %+v",
			name, obs.Summary(), ref.Summary())
	}
}

// TestSLOObserverMatchesReference: the online observer is a pure
// measurement — its accrual must equal the from-scratch post-run reference
// computed from Result.Records on every workload shape the simulator can
// produce: calm, contended, max-runtime splitting (upfront and chained
// restarts) and both kill policies (truncated completions).
func TestSLOObserverMatchesReference(t *testing.T) {
	h := int64(3600)
	cases := []struct {
		name    string
		cfg     sim.Config
		scale   float64
		chained bool
	}{
		{"calm", sim.Config{SystemSize: 500, Validate: true}, 0.02, false},
		{"contended", sim.Config{SystemSize: 100, Validate: true}, 0.05, false},
		{"split-upfront", sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitUpfront, Validate: true}, 0.04, false},
		{"split-chained", sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitChained, Validate: true}, 0.04, false},
		{"split-chained-judged", sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitChained, Validate: true}, 0.04, true},
		{"kill-always", sim.Config{SystemSize: 100, Kill: sim.KillAlways, Validate: true}, 0.04, false},
		{"kill-when-needed", sim.Config{SystemSize: 100, Kill: sim.KillWhenNeeded, Validate: true}, 0.04, false},
		// The kill × split × chained matrix: killed chains must resolve
		// (decide-and-pin: judged on realized service at the final
		// segment's kill) and leave no in-flight chain state behind.
		{"split-chained-kill-always", sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitChained, Kill: sim.KillAlways, Validate: true}, 0.04, true},
		{"split-chained-kill-when-needed", sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitChained, Kill: sim.KillWhenNeeded, Validate: true}, 0.04, true},
		{"split-upfront-kill-always", sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitUpfront, Kill: sim.KillAlways, Validate: true}, 0.04, false},
	}
	for _, spec := range []string{"cplant24.nomax.all", "cons.nomax", "easy"} {
		for _, c := range cases {
			t.Run(spec+"/"+c.name, func(t *testing.T) {
				jobs, err := workload.Generate(workload.Config{Seed: 11, Scale: c.scale, SystemSize: c.cfg.SystemSize})
				if err != nil {
					t.Fatal(err)
				}
				asg := sloAssignmentFor(jobs)
				obs, ref := runWithSLO(t, spec, c.cfg, jobs, asg, c.chained)
				assertSLOEqual(t, spec+"/"+c.name, obs, ref)
			})
		}
	}
}

// TestSLOObserverMatchesRandomized sweeps 30 random small workloads with
// mixed estimate quality (underestimates exercise overrun handling) and a
// randomized assignment through observer and reference.
func TestSLOObserverMatchesRandomized(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		n := rng.Intn(40) + 5
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(500) + 1
			est := runtime
			switch rng.Intn(3) {
			case 0:
				est = runtime * (rng.Int63n(8) + 1)
			case 1:
				est = runtime/2 + 1
			}
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(4) + 1,
				Submit:   rng.Int63n(1000),
				Runtime:  runtime,
				Estimate: est,
				Nodes:    rng.Intn(size) + 1,
			}
		}
		b := slo.NewBuilder()
		b.AddClass("a", slo.Target{Wait: rng.Int63n(400) + 1})
		b.AddClass("b", slo.Target{Wait: rng.Int63n(2000) + 1, Slowdown: float64(rng.Intn(6) + 1)})
		for u := 1; u <= 4; u++ {
			if rng.Intn(4) > 0 {
				b.Tag(u, []string{"a", "b"}[rng.Intn(2)])
			}
		}
		asg := b.Build()
		if asg == nil {
			continue
		}
		for _, spec := range []string{"cplant24.nomax.all", "cons.nomax"} {
			cfg := sim.Config{SystemSize: size, Validate: true}
			obs, ref := runWithSLO(t, spec, cfg, jobs, asg, false)
			assertSLOEqual(t, spec, obs, ref)
		}
	}
}

// TestSLOObserverWithoutFST: with the fairness engine absent the observer
// still accrues attainment; only the unfair/infeasible split stays zero.
func TestSLOObserverWithoutFST(t *testing.T) {
	jobs, err := workload.Generate(workload.Config{Seed: 11, Scale: 0.04, SystemSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	asg := sloAssignmentFor(jobs)
	obs := NewSLOObserver(asg, nil)
	res, err := sim.New(sim.Config{SystemSize: 100}, sched.MustParse("easy"), obs).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	ref := slo.FromRecords(asg, res.Records, nil)
	assertSLOEqual(t, "no-fst", obs, ref)
	s := obs.Summary()
	if s.Total.UnfairWait != 0 || s.Total.InfeasibleWait != 0 {
		t.Fatalf("fair split accrued without an engine: %+v", s.Total)
	}
	if s.Total.Jobs == 0 {
		t.Fatal("nothing measured")
	}
}

// TestSLOObserverSteadyStateAllocFree: the judgment hot path — one
// JobStarted plus one JobCompleted against a warmed tracker — must not
// allocate.
func TestSLOObserverSteadyStateAllocFree(t *testing.T) {
	b := slo.NewBuilder()
	b.AddClass("tight", slo.Target{Wait: 60})
	b.AddClass("both", slo.Target{Wait: 600, Slowdown: 4})
	for u := 0; u < 64; u++ {
		b.Tag(u, []string{"tight", "both"}[u%2])
	}
	asg := b.Build()
	engine := NewHybridFST()
	obs := NewSLOObserver(asg, engine)
	env := &probeEnv{now: 1 << 20}
	jobs := make([]*job.Job, 128)
	for i := range jobs {
		jobs[i] = &job.Job{ID: job.ID(i + 1), User: i % 80, Submit: int64(i),
			Runtime: 900, Estimate: 1800, Nodes: 4}
		engine.fst[jobs[i].ID] = int64(i) + 500 // fair starts the observer reads
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		j := jobs[i%len(jobs)]
		start := env.now + int64(i%4096)
		obs.JobStarted(env, j)
		obs.JobCompleted(env, j, start)
		i++
	})
	if allocs != 0 {
		t.Fatalf("observer steady state allocates %.1f allocs/event pair, want 0", allocs)
	}
}

// BenchmarkSLOObserver measures the per-event judgment cost against a
// warmed tracker (the contended-bench companion of BenchmarkHybridFST).
func BenchmarkSLOObserver(b *testing.B) {
	bld := slo.NewBuilder()
	bld.AddClass("tight", slo.Target{Wait: 60})
	bld.AddClass("both", slo.Target{Wait: 600, Slowdown: 4})
	for u := 0; u < 512; u++ {
		bld.Tag(u, []string{"tight", "both"}[u%2])
	}
	asg := bld.Build()
	engine := NewHybridFST()
	obs := NewSLOObserver(asg, engine)
	env := &probeEnv{now: 1 << 20}
	jobs := make([]*job.Job, 1024)
	for i := range jobs {
		jobs[i] = &job.Job{ID: job.ID(i + 1), User: i % 640, Submit: int64(i),
			Runtime: 900, Estimate: 1800, Nodes: 4}
		engine.fst[jobs[i].ID] = int64(i) + 500
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := jobs[i%len(jobs)]
		obs.JobStarted(env, j)
		obs.JobCompleted(env, j, env.now+int64(i%4096))
	}
}

// TestSLOObserverMatchesReferencePreemptive: preemption creates chains
// mid-flight (the victim's Job gains its chain markers only when
// checkpointed), so the online tracker recreates the chain state
// retroactively at the head's completion. That recreation must be
// indistinguishable from the from-scratch FromRecordsChained replay, which
// sees the mutated records from the start.
func TestSLOObserverMatchesReferencePreemptive(t *testing.T) {
	for _, spec := range []string{"srpt", "easy.preempt", "edf.preempt"} {
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(seed))
			const size = 16
			jobs := make([]*job.Job, rng.Intn(40)+10)
			for i := range jobs {
				runtime := rng.Int63n(600) + 1
				jobs[i] = &job.Job{
					ID:       job.ID(i + 1),
					User:     rng.Intn(4) + 1,
					Submit:   rng.Int63n(1000),
					Runtime:  runtime,
					Estimate: runtime,
					Nodes:    rng.Intn(size) + 1,
				}
			}
			asg := sloAssignmentFor(jobs)
			engine := NewHybridFST()
			obs := NewSLOObserver(asg, engine)
			obs.SetChained(true) // preemptive runs judge chains, like SplitChained
			pol := sched.MustParse(spec)
			pol.SetSLOContext(asg, obs)
			cfg := sim.Config{SystemSize: size, Preemptable: true, Validate: true}
			res, err := sim.New(cfg, pol, engine, obs).Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			ref := slo.FromRecordsChained(asg, res.Records, engine.Table())
			assertSLOEqual(t, spec, obs, ref)
			// No in-flight chain state may outlive the run: Merge panics on
			// leaks, so an empty merge doubles as the leak probe.
			obs.Tracker().Merge(slo.NewTracker(asg))
		}
	}
}

// TestChainedKillsLeaveNoChainState: across the kill × chained-split
// matrix, every chain resolves by the end of the run (interior segments
// cannot be killed — their estimate equals their runtime — so the final
// segment always arrives and settles the chain). The post-run Merge
// doubles as the leak probe: it panics on in-flight chain state.
func TestChainedKillsLeaveNoChainState(t *testing.T) {
	h := int64(3600)
	for _, kill := range []sim.KillPolicy{sim.KillNever, sim.KillWhenNeeded, sim.KillAlways} {
		jobs, err := workload.Generate(workload.Config{Seed: 23, Scale: 0.04, SystemSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		asg := sloAssignmentFor(jobs)
		cfg := sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitChained, Kill: kill, Validate: true}
		engine := NewHybridFST()
		obs := NewSLOObserver(asg, engine)
		obs.SetChained(true)
		res, err := sim.New(cfg, sched.MustParse("cplant24.nomax.all"), engine, obs).Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		// Probe the structural invariant the chained judgment relies on:
		// interior segments never die at the wall-clock limit.
		for _, r := range res.Records {
			if r.Killed && r.Job.Segments > 0 && r.Job.Segment < r.Job.Segments {
				t.Fatalf("kill=%v: interior segment %d/%d of chain %d was killed",
					kill, r.Job.Segment, r.Job.Segments, r.Job.Parent)
			}
		}
		obs.Tracker().Merge(slo.NewTracker(asg)) // panics on leaked chain state
	}
}
