package fairness

import (
	"fmt"
	"sort"

	"fairsched/internal/job"
	"fairsched/internal/profile"
)

// ConsP computes the CONS-P fair start times reviewed in §4 (Srinivasan et
// al.): the start time of every job in an FCFS conservative-backfilling
// schedule built with perfect estimates. With perfect estimates no hole ever
// reopens, so the schedule is exactly "insert each job, in arrival order, at
// its earliest fit". The paper's hybrid metric improves on this (a schedule
// that beats CONS-P's packing can look fair while running jobs deliberately
// out of order); ConsP is provided for comparison studies.
func ConsP(jobs []*job.Job, systemSize int) (map[job.ID]int64, error) {
	if systemSize <= 0 {
		return nil, fmt.Errorf("fairness: ConsP: system size %d", systemSize)
	}
	ordered := append([]*job.Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, k int) bool {
		if ordered[i].Submit != ordered[k].Submit {
			return ordered[i].Submit < ordered[k].Submit
		}
		return ordered[i].ID < ordered[k].ID
	})
	var origin int64
	if len(ordered) > 0 {
		origin = ordered[0].Submit
	}
	prof := profile.New(origin, systemSize, systemSize)
	fst := make(map[job.ID]int64, len(ordered))
	for _, j := range ordered {
		if j.Nodes > systemSize {
			return nil, fmt.Errorf("fairness: ConsP: %v exceeds system size %d", j, systemSize)
		}
		s, ok := prof.EarliestFit(j.Submit, j.Runtime, j.Nodes)
		if !ok {
			return nil, fmt.Errorf("fairness: ConsP: no fit for %v", j)
		}
		if err := prof.Occupy(s, s+j.Runtime, j.Nodes); err != nil {
			return nil, fmt.Errorf("fairness: ConsP: %v", err)
		}
		fst[j.ID] = s
	}
	return fst, nil
}
