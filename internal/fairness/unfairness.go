package fairness

import (
	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// Unfairness aggregates an FST table against actual start times: the
// percent of jobs that missed their fair start time and the average miss
// time over all submitted jobs (Equation 5), overall and per width category
// (Figures 8-10 and 14-16). Section 4 of the paper notes the aggregate can
// equivalently be taken over "the percentage of the load" — the
// processor-second-weighted variant is tracked alongside the job count.
type Unfairness struct {
	Jobs        int
	UnfairJobs  int
	TotalMiss   float64 // seconds, summed over unfair jobs
	TotalLoad   float64 // processor-seconds over all measured jobs
	UnfairLoad  float64 // processor-seconds of jobs that missed their FST
	MissByWidth [job.NumWidthCategories]float64
	JobsByWidth [job.NumWidthCategories]int
}

// Measure computes unfairness for every record with an FST entry. Split
// segments without an FST entry (chain restarts) are skipped: the chain was
// measured once, at its first segment, with its full runtime.
func Measure(records []*sim.Record, fst map[job.ID]int64) Unfairness {
	var u Unfairness
	for _, r := range records {
		t, ok := fst[r.Job.ID]
		if !ok {
			continue
		}
		w := job.WidthCategory(r.Job.Nodes)
		load := float64(r.Job.Nodes) * float64(r.Job.EffectiveRuntime())
		u.Jobs++
		u.JobsByWidth[w]++
		u.TotalLoad += load
		if miss := r.Start - t; miss > 0 {
			u.UnfairJobs++
			u.TotalMiss += float64(miss)
			u.UnfairLoad += load
			u.MissByWidth[w] += float64(miss)
		}
	}
	return u
}

// PercentUnfair returns the share of jobs that missed their FST, 0..100.
func (u Unfairness) PercentUnfair() float64 {
	if u.Jobs == 0 {
		return 0
	}
	return 100 * float64(u.UnfairJobs) / float64(u.Jobs)
}

// PercentUnfairLoad returns the share of the offered load (processor-
// seconds) belonging to jobs that missed their FST, 0..100.
func (u Unfairness) PercentUnfairLoad() float64 {
	if u.TotalLoad == 0 {
		return 0
	}
	return 100 * u.UnfairLoad / u.TotalLoad
}

// AvgMissTime returns Equation 5: total miss over all submitted jobs.
func (u Unfairness) AvgMissTime() float64 {
	if u.Jobs == 0 {
		return 0
	}
	return u.TotalMiss / float64(u.Jobs)
}

// AvgMissTimeByWidth returns Equation 5 restricted to each width category.
func (u Unfairness) AvgMissTimeByWidth() [job.NumWidthCategories]float64 {
	var out [job.NumWidthCategories]float64
	for w := range out {
		if u.JobsByWidth[w] > 0 {
			out[w] = u.MissByWidth[w] / float64(u.JobsByWidth[w])
		}
	}
	return out
}
