package fairness

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/sched"
	"fairsched/internal/sim"
)

func TestHybridFSTIdleSystem(t *testing.T) {
	fst := NewHybridFST()
	pol := sched.MustParse("list.fairshare")
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 100, Runtime: 50, Estimate: 50, Nodes: 4}}
	if _, err := sim.New(sim.Config{SystemSize: 8, Validate: true}, pol, fst).Run(jobs); err != nil {
		t.Fatal(err)
	}
	got, ok := fst.FST(1)
	if !ok || got != 100 {
		t.Fatalf("FST = %d,%v want 100 (idle system: fair start = arrival)", got, ok)
	}
}

func TestHybridFSTBehindRunningJob(t *testing.T) {
	fst := NewHybridFST()
	pol := sched.MustParse("list.fairshare")
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 500, Estimate: 999, Nodes: 8},
		{ID: 2, User: 2, Submit: 100, Runtime: 50, Estimate: 50, Nodes: 8},
	}
	if _, err := sim.New(sim.Config{SystemSize: 8, Validate: true}, pol, fst).Run(jobs); err != nil {
		t.Fatal(err)
	}
	// The FST uses the running job's ACTUAL remaining runtime (perfect
	// estimates): job 2's fair start is 500, not 999.
	got, _ := fst.FST(2)
	if got != 500 {
		t.Fatalf("FST = %d, want 500", got)
	}
}

func TestHybridFSTFairshareOrder(t *testing.T) {
	// User 1 has decayed usage from a finished job; user 2 is fresh. Two
	// jobs are queued behind a wall when user 2's job arrives; in fairshare
	// order user 2 goes first, so its FST beats the queued job's position.
	fst := NewHybridFST()
	pol := sched.MustParse("list.fairshare")
	day := int64(86400)
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: day, Estimate: day, Nodes: 8}, // wall + usage
		{ID: 2, User: 1, Submit: 100, Runtime: 1000, Estimate: 1000, Nodes: 8},
		{ID: 3, User: 2, Submit: 200, Runtime: 1000, Estimate: 1000, Nodes: 8},
	}
	if _, err := sim.New(sim.Config{SystemSize: 8, Validate: true}, pol, fst).Run(jobs); err != nil {
		t.Fatal(err)
	}
	fst2, _ := fst.FST(2)
	fst3, _ := fst.FST(3)
	// Job 3's user has no usage: the hypothetical fairshare list schedule
	// puts it ahead of job 2 (heavy user), so fst3 = wall end and fst2
	// comes after job 3 runs.
	if fst3 != day {
		t.Fatalf("fst3 = %d, want %d", fst3, day)
	}
	if fst2 != day {
		// At job 2's own arrival job 3 did not exist: its FST is also the
		// wall end (queue held only itself).
		t.Fatalf("fst2 = %d, want %d", fst2, day)
	}
	// And the actual schedule (fairshare list) runs job 3 first, so job 2
	// misses its FST while job 3 makes it.
}

func TestHybridFSTSkipsRestartSegments(t *testing.T) {
	fst := NewHybridFST()
	pol := sched.MustParse("list.fairshare")
	h := int64(3600)
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 0, Runtime: 200 * h, Estimate: 250 * h, Nodes: 4}}
	cfg := sim.Config{SystemSize: 8, MaxRuntime: 72 * h, Split: sim.SplitChained, Validate: true}
	res, err := sim.New(cfg, pol, fst).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	withFST := 0
	for _, r := range res.Records {
		if _, ok := fst.FST(r.Job.ID); ok {
			withFST++
			if r.Job.Segment > 1 {
				t.Fatalf("restart segment %d received an FST", r.Job.ID)
			}
		}
	}
	if withFST != 1 {
		t.Fatalf("%d FST entries, want 1 (the chain head)", withFST)
	}
}

// TestTableReturnsACopy: mutating the returned table must not corrupt the
// engine's internal state.
func TestTableReturnsACopy(t *testing.T) {
	fst := NewHybridFST()
	pol := sched.MustParse("list.fairshare")
	jobs := []*job.Job{{ID: 1, User: 1, Submit: 100, Runtime: 50, Estimate: 50, Nodes: 4}}
	if _, err := sim.New(sim.Config{SystemSize: 8, Validate: true}, pol, fst).Run(jobs); err != nil {
		t.Fatal(err)
	}
	table := fst.Table()
	table[1] = -999
	delete(table, 1)
	if got, ok := fst.FST(1); !ok || got != 100 {
		t.Fatalf("engine state corrupted through Table(): %d, %v", got, ok)
	}
}

// TestHybridFSTNeverBeforeArrival: the fair start time can never precede
// the job's own submission.
func TestHybridFSTNeverBeforeArrival(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		n := rng.Intn(30) + 2
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(400) + 1
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(5) + 1,
				Submit:   rng.Int63n(2000),
				Runtime:  runtime,
				Estimate: runtime + rng.Int63n(400),
				Nodes:    rng.Intn(size) + 1,
			}
		}
		fst := NewHybridFST()
		pol := sched.MustParse("cplant24.nomax.all")
		res, err := sim.New(sim.Config{SystemSize: size, Validate: true}, pol, fst).Run(jobs)
		if err != nil {
			return false
		}
		for _, r := range res.Records {
			v, ok := fst.FST(r.Job.ID)
			if !ok || v < r.Submit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestListFairshareNeverBeatsItsFST: when the scheduler under test IS the
// fair reference discipline and priorities are frozen (no usage, no decay
// effects because every user is distinct and idle), a job can start before
// its FST only via later arrivals finishing earlier — impossible without
// backfilling — so start >= FST always, and jobs with no later arrivals
// start exactly at their FST.
func TestListFairshareNeverBeatsItsFST(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 12
		n := rng.Intn(20) + 2
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(300) + 1
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     i + 1, // all distinct users, no usage -> FCFS ties
				Submit:   int64(i * 10),
				Runtime:  runtime,
				Estimate: runtime,
				Nodes:    rng.Intn(size) + 1,
			}
		}
		fst := NewHybridFST()
		pol := sched.MustParse("list.fairshare")
		res, err := sim.New(sim.Config{SystemSize: size, Validate: true}, pol, fst).Run(jobs)
		if err != nil {
			return false
		}
		for _, r := range res.Records {
			v, ok := fst.FST(r.Job.ID)
			if !ok {
				return false
			}
			if r.Start < v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

var _ = fairshare.Config{}
