package fairness

import (
	"runtime"
	"time"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/profile"
	"fairsched/internal/sim"
)

// probeEnv is a minimal sim.Env for driving the hybrid engine standalone:
// a contended system (every node claimed by staggered running jobs) with a
// deep queue, so one JobArrived exercises the full reference list schedule.
// It backs both BenchmarkHybridFST and cmd/schedbench's fairness-engine
// entries, keeping the two measurements identical by construction.
type probeEnv struct {
	now        int64
	systemSize int
	free       int
	running    []sim.RunningJob
	fs         *fairshare.Tracker
}

func (e *probeEnv) Now() int64                     { return e.now }
func (e *probeEnv) SystemSize() int                { return e.systemSize }
func (e *probeEnv) FreeNodes() int                 { return e.free }
func (e *probeEnv) Running() []sim.RunningJob      { return e.running }
func (e *probeEnv) Fairshare() *fairshare.Tracker  { return e.fs }
func (e *probeEnv) Availability() *profile.Profile { return nil } // unused by the engine
func (e *probeEnv) Start(*job.Job) error           { return nil } // the probe never starts jobs

// NewArrivalProbe assembles a hybrid engine against a synthetic contended
// state: `running` jobs occupying the whole machine with staggered
// completions and `queued` jobs from users with distinct decayed usages.
// Probe.Arrive replays one arrival of the probe job — the engine's entire
// steady-state hot path.
func NewArrivalProbe(queued, running int) *ArrivalProbe {
	const systemSize = 1024
	env := &probeEnv{systemSize: systemSize, now: 1 << 20}
	env.fs = fairshare.NewTracker(fairshare.DefaultConfig(), 0)
	if running < 1 {
		running = 1
	}
	nodes := systemSize / running
	if nodes < 1 {
		nodes = 1
	}
	h := NewHybridFST()
	id := job.ID(1)
	for i := 0; i < running; i++ {
		n := nodes
		if i == running-1 {
			n = systemSize - nodes*(running-1) // absorb the remainder
		}
		// Staggered completions: each running job frees its nodes at a
		// distinct future instant, so the availability multiset stays deep.
		j := &job.Job{ID: id, User: i, Submit: 0, Runtime: int64(3600 + 60*i), Estimate: 7200, Nodes: n}
		env.running = append(env.running, sim.RunningJob{Job: j, Start: env.now})
		h.JobStarted(env, j)
		id++
	}
	p := &ArrivalProbe{env: env, engine: h}
	for i := 0; i < queued; i++ {
		env.fs.Charge(1000+i, float64(i)*97.0)
		p.queue = append(p.queue, &job.Job{
			ID: id, User: 1000 + i, Submit: int64(i), Runtime: 1800, Estimate: 3600,
			Nodes: 1 + i%64,
		})
		id++
	}
	p.arriving = &job.Job{
		ID: id, User: 1000 + queued/2, Submit: env.now, Runtime: 1800, Estimate: 3600,
		Nodes: 32,
	}
	return p
}

// ArrivalProbe replays the hybrid engine's per-arrival hot path against a
// fixed contended state.
type ArrivalProbe struct {
	env      *probeEnv
	engine   *HybridFST
	queue    []*job.Job
	arriving *job.Job
}

// Arrive runs one JobArrived against the probe state.
func (p *ArrivalProbe) Arrive() {
	delete(p.engine.fst, p.arriving.ID) // keep the table size fixed across replays
	p.engine.JobArrived(p.env, p.arriving, p.queue)
}

// MeasureArrivalCost times `arrivals` replays of the hot path and reports
// ns/arrival and allocs/arrival — the fairness-engine numbers
// cmd/schedbench packages into BENCH_sched.json.
func MeasureArrivalCost(queued, running, arrivals int) (nsPerArrival, allocsPerArrival float64) {
	p := NewArrivalProbe(queued, running)
	p.Arrive() // warm the scratch buffers
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < arrivals; i++ {
		p.Arrive()
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	n := float64(arrivals)
	return float64(elapsed.Nanoseconds()) / n, float64(after.Mallocs-before.Mallocs) / n
}
