package fairness

import (
	"fmt"
	"sort"

	"fairsched/internal/job"
)

// StartsFunc runs the scheduler under test on a workload and returns each
// job's start time. core.Run provides one; tests supply toy versions.
type StartsFunc func(workload []*job.Job) (map[job.ID]int64, error)

// Sabin computes the Sabin/Sadayappan fair start times reviewed in §4: a
// job's FST is its start time in a schedule produced by the *same* policy
// with no later-arriving jobs. It re-simulates the truncated workload once
// per job — O(n) simulations — so it is intended for moderate workloads
// (the hybrid metric exists precisely to avoid this cost and the resulting
// scheduler dependence).
//
// "Later arriving" means a strictly later submit time, or an equal submit
// time with a larger id (matching the simulator's deterministic ordering).
func Sabin(run StartsFunc, jobs []*job.Job) (map[job.ID]int64, error) {
	ordered := append([]*job.Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, k int) bool {
		if ordered[i].Submit != ordered[k].Submit {
			return ordered[i].Submit < ordered[k].Submit
		}
		return ordered[i].ID < ordered[k].ID
	})
	fst := make(map[job.ID]int64, len(ordered))
	for i, target := range ordered {
		prefix := ordered[:i+1]
		starts, err := run(prefix)
		if err != nil {
			return nil, fmt.Errorf("fairness: Sabin: truncated run for job %d: %w", target.ID, err)
		}
		s, ok := starts[target.ID]
		if !ok {
			return nil, fmt.Errorf("fairness: Sabin: job %d missing from truncated run", target.ID)
		}
		fst[target.ID] = s
	}
	return fst, nil
}
