package fairness

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

func TestAvailabilityInitFromState(t *testing.T) {
	running := []sim.RunningJob{
		{Job: &job.Job{ID: 1, Nodes: 4, Runtime: 100}, Start: 50},
		{Job: &job.Job{ID: 2, Nodes: 2, Runtime: 300}, Start: 0},
	}
	a := newAvailability(100, 10, running)
	if a.Total() != 16 {
		t.Fatalf("total = %d, want 16", a.Total())
	}
}

func TestAllocateImmediate(t *testing.T) {
	a := newAvailability(100, 8, nil)
	start, err := a.allocate(4, 60)
	if err != nil || start != 100 {
		t.Fatalf("allocate = %d,%v want 100", start, err)
	}
	// 4 nodes free now, 4 more at 160.
	start, err = a.allocate(8, 10)
	if err != nil || start != 160 {
		t.Fatalf("second allocate = %d,%v want 160", start, err)
	}
}

func TestAllocateNthSmallest(t *testing.T) {
	running := []sim.RunningJob{
		{Job: &job.Job{ID: 1, Nodes: 3, Runtime: 100}, Start: 0}, // frees at 100
		{Job: &job.Job{ID: 2, Nodes: 3, Runtime: 200}, Start: 0}, // frees at 200
	}
	a := newAvailability(10, 2, running)
	// Needs 4: 2 free now + 2 of the 3 freeing at 100 -> start 100.
	start, err := a.allocate(4, 50)
	if err != nil || start != 100 {
		t.Fatalf("allocate = %d,%v want 100", start, err)
	}
	// Needs 4: leftover 1 at 100, next free at 150 (3 from the first
	// allocation) -> cumulative 4 at 150.
	start, err = a.allocate(4, 10)
	if err != nil || start != 150 {
		t.Fatalf("allocate = %d,%v want 150", start, err)
	}
}

func TestAllocateTooWide(t *testing.T) {
	a := newAvailability(0, 4, nil)
	if _, err := a.allocate(5, 10); err == nil {
		t.Fatal("allocation beyond total accepted")
	}
}

func TestAllocateConservesTotal(t *testing.T) {
	a := newAvailability(0, 8, nil)
	for i := 0; i < 20; i++ {
		if _, err := a.allocate(3, 50); err != nil {
			t.Fatal(err)
		}
		if a.Total() != 8 {
			t.Fatalf("total drifted to %d", a.Total())
		}
	}
}

// TestRemoveInvertsAdd: remove deletes exactly what add inserted, merging
// and unmerging equal times, and errors on absent entries.
func TestRemoveInvertsAdd(t *testing.T) {
	a := &availability{}
	a.add(100, 4)
	a.add(100, 2)
	a.add(50, 3)
	if err := a.remove(100, 4); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 5 {
		t.Fatalf("total = %d, want 5", a.Total())
	}
	if err := a.remove(100, 3); err == nil {
		t.Fatal("removed more nodes than the entry holds")
	}
	if err := a.remove(70, 1); err == nil {
		t.Fatal("removed from a time with no entry")
	}
	if err := a.remove(100, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.remove(50, 3); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 0 || len(a.entries) != 0 {
		t.Fatalf("multiset not empty after removing everything: %+v", a)
	}
}

// TestCopyFromAndReset: the scratch-reuse helpers preserve content and keep
// the copy independent of the source.
func TestCopyFromAndReset(t *testing.T) {
	src := &availability{}
	src.add(10, 2)
	src.add(20, 5)
	var dst availability
	dst.copyFrom(src)
	if dst.Total() != 7 || len(dst.entries) != 2 {
		t.Fatalf("copy = %+v", dst)
	}
	if _, err := dst.allocate(6, 100); err != nil {
		t.Fatal(err)
	}
	if src.Total() != 7 || len(src.entries) != 2 || src.entries[0] != (availEntry{t: 10, n: 2}) {
		t.Fatalf("source mutated by copy's allocation: %+v", src)
	}
	dst.reset()
	if dst.Total() != 0 || len(dst.entries) != 0 {
		t.Fatalf("reset left %+v", dst)
	}
}

// TestAllocateDoesNotPinBackingArray: repeated allocations must compact in
// place rather than re-slicing forward, so the backing array's head stays
// reusable across a long run.
func TestAllocateDoesNotPinBackingArray(t *testing.T) {
	a := &availability{}
	a.add(0, 8)
	for i := 0; i < 1000; i++ {
		if _, err := a.allocate(8, 10); err != nil {
			t.Fatal(err)
		}
	}
	if cap(a.entries) > 16 {
		t.Fatalf("backing array grew to %d entries over steady-state allocations", cap(a.entries))
	}
}

// TestQuickAllocateMatchesPerNodeReference checks the RLE multiset against
// a brute-force per-node list scheduler (the paper's formulation).
func TestQuickAllocateMatchesPerNodeReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(20) + 4
		now := rng.Int63n(100)

		// Reference: per-node completion times.
		nodes := make([]int64, size)
		for i := range nodes {
			if rng.Intn(2) == 0 {
				nodes[i] = now + rng.Int63n(200)
			} else {
				nodes[i] = now
			}
		}
		// Build the RLE multiset with the same initial times.
		a := &availability{}
		for _, ct := range nodes {
			a.add(ct, 1)
		}

		for step := 0; step < 15; step++ {
			need := rng.Intn(size) + 1
			runtime := rng.Int63n(100) + 1

			// Reference: the job starts at the need-th smallest completion
			// time and occupies the `need` earliest-available nodes (equal
			// times are interchangeable).
			idx := make([]int, size)
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(i, k int) bool { return nodes[idx[i]] < nodes[idx[k]] })
			wantStart := nodes[idx[need-1]]
			for _, i := range idx[:need] {
				nodes[i] = wantStart + runtime
			}

			got, err := a.allocate(need, runtime)
			if err != nil {
				return false
			}
			if got != wantStart {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
