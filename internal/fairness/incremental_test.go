package fairness

import (
	"fmt"
	"math/rand"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/sched"
	"fairsched/internal/sim"
	"fairsched/internal/workload"
)

// referenceFST is the pre-incremental hybrid engine: at every arrival it
// re-sorts the whole queue through the tracker and rebuilds the
// availability multiset from env.Running(). It is the executable spec the
// incremental engine must match FST-for-FST (DESIGN.md §10).
type referenceFST struct {
	sim.BaseObserver
	fst map[job.ID]int64
}

func newReferenceFST() *referenceFST {
	return &referenceFST{fst: make(map[job.ID]int64)}
}

func (h *referenceFST) JobArrived(env sim.Env, j *job.Job, queued []*job.Job) {
	if j.Segment > 1 {
		return
	}
	order := make([]*job.Job, 0, len(queued)+1)
	for _, q := range queued {
		if q.Segment > 1 {
			continue
		}
		order = append(order, q)
	}
	order = append(order, j)
	env.Fairshare().SortJobs(order)

	avail := newAvailability(env.Now(), env.FreeNodes(), env.Running())
	for _, q := range order {
		start, err := avail.allocate(q.Nodes, q.EffectiveRuntime())
		if err != nil {
			panic(fmt.Sprintf("fairness: reference FST: %v", err))
		}
		if q.ID == j.ID {
			h.fst[j.ID] = start
			return
		}
	}
}

// TestHybridFSTMatchesFromScratchReference: the incremental engine's FST
// table must equal the from-scratch reference's, entry for entry, on calm
// and contended generated workloads across representative policies —
// including checkpoint chains (max-runtime splitting) and wall-clock kills,
// which exercise the multiset's remove path with promised release times
// that were never reached.
func TestHybridFSTMatchesFromScratchReference(t *testing.T) {
	type cfg struct {
		name   string
		sim    sim.Config
		scale  float64
		policy string
	}
	h := int64(3600)
	cases := []cfg{
		{"calm-baseline", sim.Config{SystemSize: 500, Validate: true}, 0.02, "cplant24.nomax.all"},
		{"contended-baseline", sim.Config{SystemSize: 100, Validate: true}, 0.05, "cplant24.nomax.all"},
		{"contended-cons", sim.Config{SystemSize: 100, Validate: true}, 0.05, "cons.nomax"},
		{"contended-consdyn", sim.Config{SystemSize: 100, Validate: true}, 0.05, "consdyn.nomax"},
		{"contended-list", sim.Config{SystemSize: 100, Validate: true}, 0.05, "list.fairshare"},
		{"split-chains", sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitChained, Validate: true}, 0.05, "cplant24.72max.all"},
		{"split-upfront", sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitUpfront, Validate: true}, 0.05, "cplant24.72max.all"},
		{"kill-always", sim.Config{SystemSize: 100, Kill: sim.KillAlways, Validate: true}, 0.05, "easy.fairshare"},
		{"kill-when-needed", sim.Config{SystemSize: 100, Kill: sim.KillWhenNeeded, Validate: true}, 0.05, "cplant24.nomax.fair"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jobs, err := workload.Generate(workload.Config{Seed: 7, Scale: tc.scale, SystemSize: tc.sim.SystemSize})
			if err != nil {
				t.Fatal(err)
			}
			inc := NewHybridFST()
			ref := newReferenceFST()
			if _, err := sim.New(tc.sim, sched.MustParse(tc.policy), inc, ref).Run(jobs); err != nil {
				t.Fatal(err)
			}
			if len(inc.fst) == 0 {
				t.Fatal("no FSTs recorded")
			}
			if len(inc.fst) != len(ref.fst) {
				t.Fatalf("incremental recorded %d FSTs, reference %d", len(inc.fst), len(ref.fst))
			}
			for id, want := range ref.fst {
				if got, ok := inc.fst[id]; !ok || got != want {
					t.Fatalf("job %d: incremental FST %d (ok=%v), reference %d", id, got, ok, want)
				}
			}
		})
	}
}

// TestHybridFSTMatchesReferenceRandomized sweeps random small workloads
// with mixed over/underestimates through both engines.
func TestHybridFSTMatchesReferenceRandomized(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		n := rng.Intn(40) + 5
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(500) + 1
			est := runtime
			switch rng.Intn(3) {
			case 0:
				est = runtime * (rng.Int63n(8) + 1)
			case 1:
				est = runtime/2 + 1
			}
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(5) + 1,
				Submit:   rng.Int63n(2000),
				Runtime:  runtime,
				Estimate: est,
				Nodes:    rng.Intn(size) + 1,
			}
		}
		inc := NewHybridFST()
		ref := newReferenceFST()
		pol := sched.MustParse("cplant24.nomax.all")
		if _, err := sim.New(sim.Config{SystemSize: size, Validate: true}, pol, inc, ref).Run(jobs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for id, want := range ref.fst {
			if got := inc.fst[id]; got != want {
				t.Fatalf("seed %d job %d: incremental %d != reference %d", seed, id, got, want)
			}
		}
	}
}

// BenchmarkHybridFST measures the engine's per-arrival hot path on a
// contended state: a fully occupied 1024-node machine with a deep queue.
// The op is one JobArrived — steady state must be allocation-free.
func BenchmarkHybridFST(b *testing.B) {
	for _, depth := range []int{16, 128, 512} {
		b.Run(fmt.Sprintf("queue%d", depth), func(b *testing.B) {
			p := NewArrivalProbe(depth, 64)
			p.Arrive() // warm the scratch buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Arrive()
			}
		})
	}
}

// BenchmarkHybridFSTReference is the pre-incremental algorithm on the same
// state, for the measurement-plane before/after in docs/PERFORMANCE.md.
func BenchmarkHybridFSTReference(b *testing.B) {
	for _, depth := range []int{16, 128, 512} {
		b.Run(fmt.Sprintf("queue%d", depth), func(b *testing.B) {
			p := NewArrivalProbe(depth, 64)
			ref := newReferenceFST()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delete(ref.fst, p.arriving.ID)
				ref.JobArrived(p.env, p.arriving, p.queue)
			}
		})
	}
}
