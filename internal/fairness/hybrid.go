package fairness

import (
	"fmt"
	"slices"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// HybridFST is the paper's hybrid "fairshare" fair-start-time engine
// (§4.1), packaged as a simulation observer. At every job arrival it
// list-schedules the currently queued jobs plus the arriving job, in
// fairshare priority order, on top of the actual system state (running jobs
// with their true remaining runtimes), with no backfilling. The arriving
// job's start in that hypothetical schedule is its fair start time.
//
// Compared with the metrics it hybridizes: unlike CONS-P it starts from the
// real state at arrival (eliminating CONS-P's performance artifacts), and
// unlike the Sabin/Sadayappan FST it uses a fixed reference discipline
// (fairshare list scheduling) instead of the policy under test, so values
// are comparable across schedulers.
//
// The engine is incremental: the running set's availability multiset is
// maintained across events by the JobStarted/JobCompleted hooks (one add
// and one remove per job) instead of being re-derived from env.Running()
// at every arrival, and the per-arrival reference schedule reuses
// persistent scratch buffers, so the steady-state hot path is
// allocation-free. It deliberately does NOT read the simulator's shared
// sim.Env.Availability() profile: that profile promises release times from
// user estimates (with overrun backoff), while the fair reference schedule
// uses the running jobs' true remaining runtimes (perfect estimates, as in
// CONS-P) — see DESIGN.md §10 on measurement-plane invariants.
type HybridFST struct {
	sim.BaseObserver
	fst map[job.ID]int64

	// base is the running set's availability multiset: one (start +
	// EffectiveRuntime, nodes) entry per running job, inserted at start and
	// removed at completion. A running segment of a checkpoint chain holds
	// its nodes for the chain's remaining runtime, so the entry key is
	// reproducible at completion from the recorded start time.
	base availability
	// scratch is the per-arrival working multiset the reference list
	// schedule consumes; seeded from base plus the free-nodes-now entry and
	// reused across arrivals.
	scratch availability
	// ahead is the reused buffer of queued jobs the fairshare order places
	// ahead of the arriving job, with their priority keys precomputed.
	ahead []aheadJob
}

// aheadJob pairs a queued job with its precomputed fairshare priority key,
// so the reference-order sort never re-reads the usage map.
type aheadJob struct {
	job   *job.Job
	usage float64
}

// NewHybridFST returns an empty engine; attach it to a simulator as an
// observer.
func NewHybridFST() *HybridFST {
	return &HybridFST{fst: make(map[job.ID]int64)}
}

// JobStarted implements sim.Observer: the job's nodes re-enter the
// availability multiset at its true completion time.
func (h *HybridFST) JobStarted(env sim.Env, j *job.Job) {
	h.base.add(env.Now()+j.EffectiveRuntime(), j.Nodes)
}

// JobCompleted implements sim.Observer: drop exactly the entry JobStarted
// inserted. Kills and early completions fire this too, so the multiset
// tracks the live running set even when the promised release time was never
// reached.
func (h *HybridFST) JobCompleted(_ sim.Env, j *job.Job, start int64) {
	if err := h.base.remove(start+j.EffectiveRuntime(), j.Nodes); err != nil {
		panic(fmt.Sprintf("fairness: hybrid FST availability drift: %v", err))
	}
}

// JobArrived implements sim.Observer.
//
// Checkpoint chains created by a maximum-runtime policy are one logical job
// for fairness purposes: in the fair reference schedule (no backfilling,
// fairshare order, no preemption) the chain holds its nodes contiguously.
// Only the chain's first segment therefore receives an FST — charged with
// the full chain runtime — and restart segments are neither scheduled
// separately nor measured (fairness.Measure skips records without an FST
// entry, so the unfairness denominators count user-submitted jobs).
//
// Jobs the fairshare order places after the arriving job cannot influence a
// no-backfill list schedule, so only the jobs ahead of it are selected,
// sorted and placed — the rest of the queue is never touched.
func (h *HybridFST) JobArrived(env sim.Env, j *job.Job, queued []*job.Job) {
	if j.Segment > 1 {
		return // restart of an already-measured logical job
	}
	fs := env.Fairshare()
	target := aheadJob{job: j, usage: fs.Usage(j.User)}
	ahead := h.ahead[:0]
	for _, q := range queued {
		if q.Segment > 1 {
			// A restart's remaining chain is already accounted for in the
			// availability via its running predecessor or, if queued, by
			// the logical job's own first segment (upfront splitting).
			continue
		}
		qa := aheadJob{job: q, usage: fs.Usage(q.User)}
		if aheadLess(qa, target) {
			ahead = append(ahead, qa)
		}
	}
	// The fairshare order is total over distinct jobs (usage, submission,
	// id), so a plain (unstable, reflection-free) sort is deterministic.
	slices.SortFunc(ahead, aheadCmp)
	h.ahead = ahead

	h.scratch.copyFrom(&h.base)
	h.scratch.add(env.Now(), env.FreeNodes())
	for _, q := range ahead {
		if _, err := h.scratch.allocate(q.job.Nodes, q.job.EffectiveRuntime()); err != nil {
			panic(fmt.Sprintf("fairness: hybrid FST: %v", err))
		}
	}
	start, err := h.scratch.allocate(j.Nodes, j.EffectiveRuntime())
	if err != nil {
		panic(fmt.Sprintf("fairness: hybrid FST: %v", err))
	}
	h.fst[j.ID] = start
}

// aheadLess is the fairshare queue order over precomputed keys.
func aheadLess(a, b aheadJob) bool { return aheadCmp(a, b) < 0 }

// aheadCmp is the fairshare queue order over precomputed keys as a
// three-way comparison: lower decayed usage first, then earlier
// submission, then lower id — exactly fairshare.Tracker.Less, without
// re-reading the usage map. A total order over distinct jobs, so it never
// answers 0 for different jobs.
func aheadCmp(a, b aheadJob) int {
	switch {
	case a.usage != b.usage:
		if a.usage < b.usage {
			return -1
		}
		return 1
	case a.job.Submit != b.job.Submit:
		if a.job.Submit < b.job.Submit {
			return -1
		}
		return 1
	case a.job.ID != b.job.ID:
		if a.job.ID < b.job.ID {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// FST returns the fair start time recorded for a job.
func (h *HybridFST) FST(id job.ID) (int64, bool) {
	t, ok := h.fst[id]
	return t, ok
}

// Table returns a copy of the complete id -> FST table. Handing out the
// live internal map would let callers corrupt engine state.
func (h *HybridFST) Table() map[job.ID]int64 {
	out := make(map[job.ID]int64, len(h.fst))
	for id, t := range h.fst {
		out[id] = t
	}
	return out
}
