package fairness

import (
	"fmt"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// HybridFST is the paper's hybrid "fairshare" fair-start-time engine
// (§4.1), packaged as a simulation observer. At every job arrival it
// list-schedules the currently queued jobs plus the arriving job, in
// fairshare priority order, on top of the actual system state (running jobs
// with their true remaining runtimes), with no backfilling. The arriving
// job's start in that hypothetical schedule is its fair start time.
//
// Compared with the metrics it hybridizes: unlike CONS-P it starts from the
// real state at arrival (eliminating CONS-P's performance artifacts), and
// unlike the Sabin/Sadayappan FST it uses a fixed reference discipline
// (fairshare list scheduling) instead of the policy under test, so values
// are comparable across schedulers.
type HybridFST struct {
	sim.BaseObserver
	fst map[job.ID]int64
}

// NewHybridFST returns an empty engine; attach it to a simulator as an
// observer.
func NewHybridFST() *HybridFST {
	return &HybridFST{fst: make(map[job.ID]int64)}
}

// JobArrived implements sim.Observer.
//
// Checkpoint chains created by a maximum-runtime policy are one logical job
// for fairness purposes: in the fair reference schedule (no backfilling,
// fairshare order, no preemption) the chain holds its nodes contiguously.
// Only the chain's first segment therefore receives an FST — charged with
// the full chain runtime — and restart segments are neither scheduled
// separately nor measured (fairness.Measure skips records without an FST
// entry, so the unfairness denominators count user-submitted jobs).
func (h *HybridFST) JobArrived(env sim.Env, j *job.Job, queued []*job.Job) {
	if j.Segment > 1 {
		return // restart of an already-measured logical job
	}
	order := make([]*job.Job, 0, len(queued)+1)
	for _, q := range queued {
		if q.Segment > 1 {
			// A restart's remaining chain is already accounted for in the
			// availability via its running predecessor or, if queued, by
			// the logical job's own first segment (upfront splitting).
			continue
		}
		order = append(order, q)
	}
	order = append(order, j)
	env.Fairshare().SortJobs(order)

	avail := newAvailability(env.Now(), env.FreeNodes(), env.Running())
	for _, q := range order {
		start, err := avail.allocate(q.Nodes, q.EffectiveRuntime())
		if err != nil {
			panic(fmt.Sprintf("fairness: hybrid FST: %v", err))
		}
		if q.ID == j.ID {
			// Jobs ordered after the target cannot influence a no-backfill
			// list schedule, so we can stop here.
			h.fst[j.ID] = start
			return
		}
	}
}

// FST returns the fair start time recorded for a job.
func (h *HybridFST) FST(id job.ID) (int64, bool) {
	t, ok := h.fst[id]
	return t, ok
}

// Table returns the complete id -> FST table.
func (h *HybridFST) Table() map[job.ID]int64 { return h.fst }
