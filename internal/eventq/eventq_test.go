package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPopOrderedByTime(t *testing.T) {
	var q Queue[struct{}]
	for _, ts := range []int64{50, 10, 30, 20, 40} {
		q.Push(Event[struct{}]{Time: ts})
	}
	var got []int64
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, e.Time)
	}
	want := []int64{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestSameTimestampIsFIFO(t *testing.T) {
	var q Queue[struct{}]
	for i := 0; i < 10; i++ {
		q.Push(Event[struct{}]{Time: 100, Kind: i})
	}
	for i := 0; i < 10; i++ {
		e, ok := q.Pop()
		if !ok || e.Kind != i {
			t.Fatalf("event %d popped out of FIFO order (got kind %d)", i, e.Kind)
		}
	}
}

func TestSameTimestampPrioBeforeSeq(t *testing.T) {
	var q Queue[struct{}]
	q.Push(Event[struct{}]{Time: 100, Prio: 2, Kind: 0})
	q.Push(Event[struct{}]{Time: 100, Prio: 0, Kind: 1})
	q.Push(Event[struct{}]{Time: 100, Prio: 1, Kind: 2})
	q.Push(Event[struct{}]{Time: 100, Prio: 0, Kind: 3})
	want := []int{1, 3, 2, 0} // prio asc, FIFO within a prio
	for i, k := range want {
		e, ok := q.Pop()
		if !ok || e.Kind != k {
			t.Fatalf("pop %d: got kind %d, want %d", i, e.Kind, k)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue[struct{}]
	q.Push(Event[struct{}]{Time: 5, Kind: 1})
	e, ok := q.Peek()
	if !ok || e.Kind != 1 {
		t.Fatal("peek failed")
	}
	if q.Len() != 1 {
		t.Fatal("peek removed the event")
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop after peek failed")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue succeeded")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue[struct{}]
	q.Push(Event[struct{}]{Time: 10})
	q.Push(Event[struct{}]{Time: 5})
	e, _ := q.Pop()
	if e.Time != 5 {
		t.Fatalf("got %d", e.Time)
	}
	q.Push(Event[struct{}]{Time: 1})
	e, _ = q.Pop()
	if e.Time != 1 {
		t.Fatalf("got %d", e.Time)
	}
	e, _ = q.Pop()
	if e.Time != 10 {
		t.Fatalf("got %d", e.Time)
	}
}

func TestPushAssignsMonotonicSeq(t *testing.T) {
	var q Queue[struct{}]
	s1 := q.Push(Event[struct{}]{Time: 1})
	s2 := q.Push(Event[struct{}]{Time: 1})
	if s2 <= s1 {
		t.Fatalf("sequence numbers not monotonic: %d then %d", s1, s2)
	}
}

func TestGrowPreallocates(t *testing.T) {
	var q Queue[int]
	q.Grow(100)
	if got := cap(q.h); got < 100 {
		t.Fatalf("cap %d after Grow(100)", got)
	}
	base := &q.h[:1][0]
	for i := 0; i < 100; i++ {
		q.Push(Event[int]{Time: int64(100 - i), Payload: i})
	}
	if &q.h[0] != base {
		t.Fatal("backing array reallocated despite Grow")
	}
	prev := int64(-1)
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		if e.Time < prev {
			t.Fatalf("pop order broken after Grow: %d before %d", prev, e.Time)
		}
		prev = e.Time
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	type payload struct{ a, b int }
	var q Queue[payload]
	q.Push(Event[payload]{Time: 2, Payload: payload{3, 4}})
	q.Push(Event[payload]{Time: 1, Payload: payload{1, 2}})
	e, _ := q.Pop()
	if e.Payload != (payload{1, 2}) {
		t.Fatalf("payload %v", e.Payload)
	}
	e, _ = q.Pop()
	if e.Payload != (payload{3, 4}) {
		t.Fatalf("payload %v", e.Payload)
	}
}

func TestQuickPopIsSorted(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue[struct{}]
		count := int(n)%100 + 1
		for i := 0; i < count; i++ {
			q.Push(Event[struct{}]{Time: rng.Int63n(50)})
		}
		var times []int64
		prevTime, prevSeq := int64(-1), int64(-1)
		for {
			e, ok := q.Pop()
			if !ok {
				break
			}
			if e.Time < prevTime {
				return false
			}
			if e.Time == prevTime && e.Seq <= prevSeq {
				return false
			}
			prevTime, prevSeq = e.Time, e.Seq
			times = append(times, e.Time)
		}
		return len(times) == count && sort.SliceIsSorted(times, func(i, k int) bool { return times[i] < times[k] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
