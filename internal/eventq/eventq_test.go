package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPopOrderedByTime(t *testing.T) {
	var q Queue
	for _, ts := range []int64{50, 10, 30, 20, 40} {
		q.Push(Event{Time: ts})
	}
	var got []int64
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, e.Time)
	}
	want := []int64{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestSameTimestampIsFIFO(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(Event{Time: 100, Kind: i})
	}
	for i := 0; i < 10; i++ {
		e, ok := q.Pop()
		if !ok || e.Kind != i {
			t.Fatalf("event %d popped out of FIFO order (got kind %d)", i, e.Kind)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 5, Kind: 1})
	e, ok := q.Peek()
	if !ok || e.Kind != 1 {
		t.Fatal("peek failed")
	}
	if q.Len() != 1 {
		t.Fatal("peek removed the event")
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop after peek failed")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue succeeded")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 10})
	q.Push(Event{Time: 5})
	e, _ := q.Pop()
	if e.Time != 5 {
		t.Fatalf("got %d", e.Time)
	}
	q.Push(Event{Time: 1})
	e, _ = q.Pop()
	if e.Time != 1 {
		t.Fatalf("got %d", e.Time)
	}
	e, _ = q.Pop()
	if e.Time != 10 {
		t.Fatalf("got %d", e.Time)
	}
}

func TestPushAssignsMonotonicSeq(t *testing.T) {
	var q Queue
	s1 := q.Push(Event{Time: 1})
	s2 := q.Push(Event{Time: 1})
	if s2 <= s1 {
		t.Fatalf("sequence numbers not monotonic: %d then %d", s1, s2)
	}
}

func TestQuickPopIsSorted(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		count := int(n)%100 + 1
		for i := 0; i < count; i++ {
			q.Push(Event{Time: rng.Int63n(50)})
		}
		var times []int64
		var seqs []int64
		prevTime, prevSeq := int64(-1), int64(-1)
		for {
			e, ok := q.Pop()
			if !ok {
				break
			}
			if e.Time < prevTime {
				return false
			}
			if e.Time == prevTime && e.Seq <= prevSeq {
				return false
			}
			prevTime, prevSeq = e.Time, e.Seq
			times = append(times, e.Time)
			seqs = append(seqs, e.Seq)
		}
		return len(times) == count && sort.SliceIsSorted(times, func(i, k int) bool { return times[i] < times[k] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
