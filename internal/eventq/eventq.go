// Package eventq provides the deterministic future event list used by the
// discrete-event simulator: a binary min-heap ordered by (time, priority,
// sequence). The sequence number makes same-timestamp events FIFO, which
// keeps simulation runs exactly reproducible.
//
// The queue is generic over its payload type and implements the heap
// directly on a slice instead of going through container/heap: with the
// interface-based heap every Push boxes the event into an interface{} (one
// allocation per event) and every Pop pays a dynamic dispatch per
// sift-down comparison. On the simulator's hot path — millions of events
// per full-scale run, every one pushed and popped exactly once — the
// monomorphized slice heap allocates nothing beyond the backing array.
package eventq

// Event is the element type stored in the queue. Payload is opaque to the
// queue. Events at the same time are ordered by ascending Prio, then FIFO:
// the simulator uses Prio to process completions (which free nodes) before
// arrivals and wake-ups at the same instant.
type Event[P any] struct {
	Time    int64
	Prio    int
	Seq     int64 // assigned by Push, FIFO tie-break
	Kind    int
	Payload P
}

// Queue is a min-heap of events. The zero value is ready to use.
type Queue[P any] struct {
	h   []Event[P]
	seq int64
}

// Len reports the number of pending events.
func (q *Queue[P]) Len() int { return len(q.h) }

// Grow ensures capacity for at least n further events without reallocating,
// so a simulation that knows its arrival count up front pays for the heap's
// backing array once.
func (q *Queue[P]) Grow(n int) {
	if free := cap(q.h) - len(q.h); free < n {
		h := make([]Event[P], len(q.h), len(q.h)+n)
		copy(h, q.h)
		q.h = h
	}
}

// Push enqueues an event at the given time and returns the assigned
// sequence number.
func (q *Queue[P]) Push(e Event[P]) int64 {
	q.seq++
	e.Seq = q.seq
	q.h = append(q.h, e)
	q.up(len(q.h) - 1)
	return e.Seq
}

// Pop removes and returns the earliest event. ok is false when empty.
func (q *Queue[P]) Pop() (Event[P], bool) {
	var zero Event[P]
	n := len(q.h)
	if n == 0 {
		return zero, false
	}
	top := q.h[0]
	n--
	q.h[0] = q.h[n]
	q.h[n] = zero // drop payload references for the GC
	q.h = q.h[:n]
	if n > 1 {
		q.down(0)
	}
	return top, true
}

// Peek returns the earliest event without removing it.
func (q *Queue[P]) Peek() (Event[P], bool) {
	if len(q.h) == 0 {
		var zero Event[P]
		return zero, false
	}
	return q.h[0], true
}

// less orders the heap by (time, priority, sequence).
func (q *Queue[P]) less(i, k int) bool {
	a, b := &q.h[i], &q.h[k]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.Seq < b.Seq
}

func (q *Queue[P]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue[P]) down(i int) {
	n := len(q.h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			return
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}
