// Package eventq provides the deterministic future event list used by the
// discrete-event simulator: a binary min-heap ordered by (time, sequence).
// The sequence number makes same-timestamp events FIFO, which keeps
// simulation runs exactly reproducible.
package eventq

import "container/heap"

// Event is the element type stored in the queue. Payload is opaque to the
// queue. Events at the same time are ordered by ascending Prio, then FIFO:
// the simulator uses Prio to process completions (which free nodes) before
// arrivals and wake-ups at the same instant.
type Event struct {
	Time    int64
	Prio    int
	Seq     int64 // assigned by Push, FIFO tie-break
	Kind    int
	Payload interface{}
}

// Queue is a min-heap of events. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq int64
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Push enqueues an event at the given time and returns the assigned
// sequence number.
func (q *Queue) Push(e Event) int64 {
	q.seq++
	e.Seq = q.seq
	heap.Push(&q.h, e)
	return e.Seq
}

// Pop removes and returns the earliest event. ok is false when empty.
func (q *Queue) Pop() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return heap.Pop(&q.h).(Event), true
}

// Peek returns the earliest event without removing it.
func (q *Queue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, k int) bool {
	if h[i].Time != h[k].Time {
		return h[i].Time < h[k].Time
	}
	if h[i].Prio != h[k].Prio {
		return h[i].Prio < h[k].Prio
	}
	return h[i].Seq < h[k].Seq
}
func (h eventHeap) Swap(i, k int)       { h[i], h[k] = h[k], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
