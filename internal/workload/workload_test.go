package workload

import (
	"math"
	"testing"

	"fairsched/internal/job"
)

func generateFull(t *testing.T) []*job.Job {
	t.Helper()
	jobs, err := Generate(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestGenerateReproducesTable1Exactly(t *testing.T) {
	jobs := generateFull(t)
	if len(jobs) != Table1Total() {
		t.Fatalf("generated %d jobs, want %d", len(jobs), Table1Total())
	}
	grid := job.CountGrid(jobs)
	for w := range Table1Counts {
		for l := range Table1Counts[w] {
			if grid[w][l] != Table1Counts[w][l] {
				t.Errorf("cell (%s, %s): %d jobs, want %d",
					job.WidthLabels[w], job.LengthLabels[l], grid[w][l], Table1Counts[w][l])
			}
		}
	}
}

func TestGenerateApproximatesTable2(t *testing.T) {
	jobs := generateFull(t)
	grid := job.ProcHourGrid(jobs)
	var total, wantTotal float64
	for w := range Table2ProcHours {
		for l := range Table2ProcHours[w] {
			want := Table2ProcHours[w][l]
			wantTotal += want
			total += grid[w][l]
			if want < 1000 || Table1Counts[w][l] == 0 {
				// Small cells rescale coarsely, and the paper's own tables
				// disagree on two cells (513+/4-8h has proc-hours but no
				// jobs; 513+/1-4h has a job but no proc-hours): judge those
				// through the total only.
				continue
			}
			if ratio := grid[w][l] / want; ratio < 0.5 || ratio > 2.0 {
				t.Errorf("cell (%s, %s): %.0f proc-hours, want ~%.0f",
					job.WidthLabels[w], job.LengthLabels[l], grid[w][l], want)
			}
		}
	}
	if ratio := total / wantTotal; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("total proc-hours %.0f, want within 10%% of %.0f", total, wantTotal)
	}
}

func TestGenerateWidthsRespectSystemSize(t *testing.T) {
	jobs, err := Generate(Config{Seed: 1, SystemSize: 128, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Nodes > 128 {
			t.Fatalf("job wider than the system: %v", j)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a, err := Generate(Config{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("different lengths for the same seed")
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("job %d differs between identical runs", i)
		}
	}
	c, err := Generate(Config{Seed: 8, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if *a[i] != *c[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateArrivalsWithinHorizon(t *testing.T) {
	jobs := generateFull(t)
	horizon := int64(33 * 7 * 24 * 3600)
	for _, j := range jobs {
		if j.Submit < 0 || j.Submit >= horizon {
			t.Fatalf("submit %d outside [0, %d)", j.Submit, horizon)
		}
	}
}

func TestGenerateArrivalsAreBursty(t *testing.T) {
	jobs := generateFull(t)
	weekly := make([]float64, 33)
	for _, j := range jobs {
		w := int(j.Submit / (7 * 24 * 3600))
		weekly[w] += float64(j.ProcSeconds())
	}
	var max, min float64 = 0, math.Inf(1)
	for _, v := range weekly {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	// The calibrated default (gamma 0.3) keeps mild bursts; the raw profile
	// (gamma 1.0) is strongly bursty.
	if max < 1.4*min {
		t.Fatalf("weekly load not bursty: max %.0f vs min %.0f", max, min)
	}
	raw, err := Generate(Config{Seed: 42, Scale: 0.25, BurstGamma: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	rawWeekly := make([]float64, 33)
	for _, j := range raw {
		rawWeekly[int(j.Submit/(7*24*3600))] += float64(j.ProcSeconds())
	}
	var rmax, rmin float64 = 0, math.Inf(1)
	for _, v := range rawWeekly {
		if v > rmax {
			rmax = v
		}
		if v < rmin {
			rmin = v
		}
	}
	if rmax < 3*rmin {
		t.Fatalf("raw profile should be strongly bursty: max %.0f vs min %.0f", rmax, rmin)
	}
}

func TestGenerateEstimatesOverestimateMostly(t *testing.T) {
	jobs := generateFull(t)
	over, under := 0, 0
	for _, j := range jobs {
		switch {
		case j.Estimate > j.Runtime:
			over++
		case j.Estimate < j.Runtime:
			under++
		}
	}
	n := float64(len(jobs))
	if float64(over)/n < 0.7 {
		t.Errorf("only %.1f%% overestimated; the trace overwhelmingly overestimates", 100*float64(over)/n)
	}
	if frac := float64(under) / n; frac < 0.01 || frac > 0.12 {
		t.Errorf("%.1f%% underestimated, want around 5%%", 100*frac)
	}
}

func TestGenerateOverestimationShrinksWithRuntime(t *testing.T) {
	jobs := generateFull(t)
	var shortF, longF []float64
	for _, j := range jobs {
		f := j.OverestimationFactor()
		if j.Runtime < 3600 {
			shortF = append(shortF, f)
		} else if j.Runtime > 24*3600 {
			longF = append(longF, f)
		}
	}
	ms := median(shortF)
	ml := median(longF)
	if ms <= ml {
		t.Fatalf("Figure 6 shape violated: short median %.1fx <= long median %.1fx", ms, ml)
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for k := i; k > 0 && cp[k] < cp[k-1]; k-- {
			cp[k], cp[k-1] = cp[k-1], cp[k]
		}
	}
	return cp[len(cp)/2]
}

func TestGenerateUsersZipfConcentrated(t *testing.T) {
	jobs := generateFull(t)
	counts := map[int]int{}
	for _, j := range jobs {
		if j.User < 1 || j.User > 96 {
			t.Fatalf("user id %d out of range", j.User)
		}
		if j.Group < 1 || j.Group > 12 {
			t.Fatalf("group id %d out of range", j.Group)
		}
		counts[j.User]++
	}
	// The busiest user should dominate an equal share substantially.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3*len(jobs)/96 {
		t.Errorf("top user has %d jobs; expected Zipf concentration", max)
	}
}

func TestGenerateScaledCounts(t *testing.T) {
	jobs, err := Generate(Config{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(Table1Total()) * 0.1
	if got := float64(len(jobs)); got < 0.8*want || got > 1.2*want {
		t.Fatalf("scaled trace has %v jobs, want about %v", got, want)
	}
}

func TestGenerateIDsSequentialBySubmit(t *testing.T) {
	jobs := generateFull(t)
	for i, j := range jobs {
		if j.ID != job.ID(i+1) {
			t.Fatalf("ids not sequential at %d", i)
		}
		if i > 0 && jobs[i-1].Submit > j.Submit {
			t.Fatalf("jobs not sorted by submit at %d", i)
		}
	}
}

func TestGenerateDisableUnderestimates(t *testing.T) {
	jobs, err := Generate(Config{Seed: 5, Scale: 0.1, UnderestimateProb: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Estimate < j.Runtime {
			t.Fatalf("underestimate generated while disabled: %v", j)
		}
	}
}

func TestTableTotals(t *testing.T) {
	if got := Table1Total(); got != 13236 {
		t.Fatalf("Table 1 total = %d, want 13236", got)
	}
	if got := Table2Total(); math.Abs(got-3974868) > 1 {
		t.Fatalf("Table 2 total = %.0f, want 3974868", got)
	}
}

func TestWeekShapeResampling(t *testing.T) {
	// A 10-week horizon resamples the 33-entry profile without panicking
	// and preserves positivity.
	for w := 0; w < 10; w++ {
		if v := weekShape(w, 10, 1.0); v <= 0 {
			t.Fatalf("weekShape(%d) = %v", w, v)
		}
	}
	// Gamma flattening moves values toward the mean.
	raw := weekShape(4, 33, 1.0) // the peak week
	flat := weekShape(4, 33, 0.3)
	if flat >= raw {
		t.Fatalf("gamma 0.3 should compress the peak: %v -> %v", raw, flat)
	}
}

func TestSampleWidthCategories(t *testing.T) {
	jobs := generateFull(t)
	for _, j := range jobs {
		w := job.WidthCategory(j.Nodes)
		lo, hi := job.WidthBounds(w)
		if j.Nodes < lo || (hi != 0 && j.Nodes > hi) {
			t.Fatalf("width %d escaped its category", j.Nodes)
		}
	}
}
