package workload

import (
	"fmt"
	"math"
	"math/rand"

	"fairsched/internal/job"
)

// Population-scale generative workloads (DESIGN.md §15). Where Generate
// reproduces the paper's single 96-user CPlant trace from its published
// tables, GeneratePopulation draws campaigns over user populations of
// 10^4..10^6: cohorts with distinct arrival periodicity (diurnal/weekly
// modulation via Poisson thinning against the calibrated hour/day
// profiles), Zipf-distributed user activity over a sliding churn window,
// and heavy-tailed per-user demand (a stateless bounded-Pareto multiplier
// hashed from (seed, user), times a lognormal per-job base). Jobs are
// emitted strictly in submit order, and the working state is O(cohorts) —
// independent of the population size — so a million-user cell's peak
// memory is bounded by the emitted jobs, never the user count.

// PopCohort describes one cohort: a contiguous block of users sharing an
// arrival rhythm, an activity skew and a demand distribution. Zero fields
// are completed per cohort by withDefaults.
type PopCohort struct {
	// Users is the cohort's population size.
	Users int
	// JobShare weights the cohort's share of PopConfig.Jobs (default 1).
	JobShare float64
	// Zipf is the user-activity skew exponent (> 1; larger = a heavier
	// head of very active users). Default 1.3.
	Zipf float64
	// Churn is the fraction of the active user window replaced per week:
	// 0 keeps every user active for the whole horizon; 1 replaces the
	// window once a week. Users enter and leave in id order, so the
	// cohort's distinct-user count stays ~Users across the horizon.
	Churn float64
	// Diurnal in [0,1] blends the hour-of-day arrival profile in (0 =
	// flat, 1 = the full calibrated cycle). Default 0.6.
	Diurnal float64
	// Weekly in [0,1] blends the day-of-week profile in. Default 0.5.
	Weekly float64
	// PhaseHours shifts the cohort's diurnal cycle (timezone offset).
	PhaseHours int
	// Alpha is the tail index of the per-user demand multiplier (bounded
	// Pareto on [1, DemandSpread]; smaller = heavier tail). Default 1.1.
	Alpha float64
	// DemandSpread caps the per-user demand multiplier. Default 64.
	DemandSpread float64
	// RuntimeMedian is the median of the lognormal per-job base runtime in
	// seconds (default 600); RuntimeSigma its log-space spread (default 1.6).
	RuntimeMedian int64
	RuntimeSigma  float64
	// MaxRuntime caps realized runtimes (default 48h).
	MaxRuntime int64
	// MaxNodes caps job widths (further clamped to the system size).
	// Default 64.
	MaxNodes int
}

// withDefaults fills exactly-zero fields; out-of-range non-zero values are
// left for validate to reject, never silently clamped.
func (c PopCohort) withDefaults() PopCohort {
	if c.JobShare == 0 {
		c.JobShare = 1
	}
	if c.Zipf == 0 {
		c.Zipf = 1.3
	}
	if c.Diurnal == 0 {
		c.Diurnal = 0.6
	}
	if c.Weekly == 0 {
		c.Weekly = 0.5
	}
	if c.Alpha == 0 {
		c.Alpha = 1.1
	}
	if c.DemandSpread <= 1 {
		c.DemandSpread = 64
	}
	if c.RuntimeMedian <= 0 {
		c.RuntimeMedian = 600
	}
	if c.RuntimeSigma <= 0 {
		c.RuntimeSigma = 1.6
	}
	if c.MaxRuntime <= 0 {
		c.MaxRuntime = 48 * 3600
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 64
	}
	c.PhaseHours = ((c.PhaseHours % 24) + 24) % 24
	return c
}

// PopConfig parameterizes a population draw. The zero value (plus a seed)
// is completed by defaults: 10^4 users in 4 derived cohorts, 2*10^4 jobs
// over 4 weeks.
type PopConfig struct {
	// Seed drives every random choice (same seed, same jobs).
	Seed int64
	// SystemSize clamps job widths (default 1000).
	SystemSize int
	// Weeks is the horizon (default 4).
	Weeks int
	// Users is the total population across derived cohorts (default
	// 10000). Ignored when Cohorts is set explicitly.
	Users int
	// Jobs is the expected total job count (default 20000); the realized
	// count is the deterministic draw of the cohorts' thinned Poisson
	// processes, close to but not exactly Jobs.
	Jobs int
	// NumCohorts splits Users into this many derived cohorts with phased
	// diurnal cycles and tilted activity skews (default 4). Ignored when
	// Cohorts is set.
	NumCohorts int
	// Churn, Zipf, Alpha, Diurnal, Weekly and MaxNodes seed the derived
	// cohorts' corresponding fields (defaults 0.25, 1.3, 1.1, 0.6, 0.5,
	// 64). Ignored when Cohorts is set.
	Churn    float64
	Zipf     float64
	Alpha    float64
	Diurnal  float64
	Weekly   float64
	MaxNodes int
	// UnderestimateProb is the chance a job's wall-clock limit understates
	// its runtime (default 0.05; negative disables), as in Config.
	UnderestimateProb float64
	// Cohorts, when non-empty, is the explicit cohort mix; the aggregate
	// knobs above are ignored.
	Cohorts []PopCohort
}

// Population bounds: generous for research workloads, tight enough that a
// fuzzed spec cannot make a campaign cell unbounded.
const (
	MaxPopUsers   = 8_000_000
	MaxPopJobs    = 5_000_000
	MaxPopWeeks   = 260
	MaxPopCohorts = 64
)

func (cfg PopConfig) withDefaults() PopConfig {
	if cfg.SystemSize <= 0 {
		cfg.SystemSize = 1000
	}
	if cfg.Weeks <= 0 {
		cfg.Weeks = 4
	}
	if cfg.Users <= 0 {
		cfg.Users = 10_000
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 20_000
	}
	if cfg.NumCohorts <= 0 {
		cfg.NumCohorts = 4
	}
	if cfg.Churn == 0 {
		cfg.Churn = 0.25
	}
	if cfg.Zipf == 0 {
		cfg.Zipf = 1.3
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1.1
	}
	if cfg.Diurnal == 0 {
		cfg.Diurnal = 0.6
	}
	if cfg.Weekly == 0 {
		cfg.Weekly = 0.5
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 64
	}
	switch {
	case cfg.UnderestimateProb == 0:
		cfg.UnderestimateProb = 0.05
	case cfg.UnderestimateProb < 0 || cfg.UnderestimateProb >= 1:
		cfg.UnderestimateProb = 0
	}
	if len(cfg.Cohorts) == 0 {
		cfg.Cohorts = derivedCohorts(cfg)
	}
	for i := range cfg.Cohorts {
		cfg.Cohorts[i] = cfg.Cohorts[i].withDefaults()
	}
	return cfg
}

// derivedCohorts splits cfg.Users into cfg.NumCohorts cohorts sharing the
// aggregate knobs but with phased diurnal cycles (timezone spread) and a
// mild ascending activity-skew tilt, so even the grammar-driven single-knob
// form produces genuinely distinct arrival rhythms per cohort.
func derivedCohorts(cfg PopConfig) []PopCohort {
	n := cfg.NumCohorts
	out := make([]PopCohort, n)
	base, rem := cfg.Users/n, cfg.Users%n
	for i := range out {
		users := base
		if i < rem {
			users++
		}
		s := cfg.Zipf + 0.1*float64(i)
		if s > 5 {
			s = 5
		}
		out[i] = PopCohort{
			Users:      users,
			Zipf:       s,
			Churn:      cfg.Churn,
			Diurnal:    cfg.Diurnal,
			Weekly:     cfg.Weekly,
			PhaseHours: i * 24 / n,
			Alpha:      cfg.Alpha,
			MaxNodes:   cfg.MaxNodes,
		}
	}
	return out
}

// validate rejects configurations outside the supported envelope, after
// defaults are applied.
func (cfg PopConfig) validate() error {
	if cfg.Weeks > MaxPopWeeks {
		return fmt.Errorf("population: %d weeks (max %d)", cfg.Weeks, MaxPopWeeks)
	}
	if cfg.Jobs > MaxPopJobs {
		return fmt.Errorf("population: %d jobs (max %d)", cfg.Jobs, MaxPopJobs)
	}
	if len(cfg.Cohorts) > MaxPopCohorts {
		return fmt.Errorf("population: %d cohorts (max %d)", len(cfg.Cohorts), MaxPopCohorts)
	}
	total := 0
	for i, c := range cfg.Cohorts {
		if c.Users < 1 {
			return fmt.Errorf("population: cohort %d has %d users (want >= 1)", i, c.Users)
		}
		total += c.Users
		if bad(c.JobShare) || bad(c.Zipf) || bad(c.Churn) || bad(c.Diurnal) ||
			bad(c.Weekly) || bad(c.Alpha) || bad(c.DemandSpread) || bad(c.RuntimeSigma) {
			return fmt.Errorf("population: cohort %d has a non-finite parameter", i)
		}
		if c.JobShare <= 0 {
			return fmt.Errorf("population: cohort %d job share %v (want > 0)", i, c.JobShare)
		}
		if c.Zipf <= 1 || c.Zipf > 8 {
			return fmt.Errorf("population: cohort %d zipf %v out of range (1, 8]", i, c.Zipf)
		}
		if c.Churn < 0 || c.Churn > 52 {
			return fmt.Errorf("population: cohort %d churn %v out of range [0, 52]", i, c.Churn)
		}
		if c.Diurnal < 0 || c.Diurnal > 1 || c.Weekly < 0 || c.Weekly > 1 {
			return fmt.Errorf("population: cohort %d diurnal/weekly blend out of [0, 1]", i)
		}
		if c.Alpha <= 0.05 || c.Alpha > 8 {
			return fmt.Errorf("population: cohort %d alpha %v out of range (0.05, 8]", i, c.Alpha)
		}
	}
	if total > MaxPopUsers {
		return fmt.Errorf("population: %d users (max %d)", total, MaxPopUsers)
	}
	return nil
}

func bad(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }

// popCohortState is one cohort's in-flight generation state: its own RNG
// stream (so the merge order never perturbs another cohort's draws), the
// thinned-Poisson arrival clock, and the one pending job. This struct is
// the entire per-cohort memory of a streaming generation.
type popCohortState struct {
	c      PopCohort
	rng    *rand.Rand
	zipf   *rand.Zipf
	base   int     // first user id of the cohort's block
	window int     // active-user window width
	slide  int     // Users - window (maximum window start)
	lam    float64 // peak arrival rate (jobs/sec) before thinning
	clock  float64 // arrival process time
	next   *job.Job
	// hourW/dayW are the cohort's blended modulation tables, normalized so
	// the peak is 1 (the thinning acceptance probability).
	hourW [24]float64
	dayW  [7]float64
}

// splitmix advances the splitmix64 hash one step — the stateless per-user
// and per-cohort stream derivation.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// userDemand returns user's demand multiplier in [1, spread]: a bounded
// Pareto draw keyed by hash(seed, user), so a user's appetite is consistent
// across every job it submits without any per-user state being stored.
func userDemand(seed int64, user int, alpha, spread float64) float64 {
	h := splitmix(uint64(seed) ^ splitmix(uint64(user)))
	u := float64(h>>11) / (1 << 53) // uniform [0, 1)
	// Inverse CDF of the bounded Pareto on [1, spread] with tail alpha.
	return math.Pow(1-u*(1-math.Pow(spread, -alpha)), -1/alpha)
}

// newPopCohortState prepares cohort ci for generation.
func newPopCohortState(cfg PopConfig, ci, userBase int, share float64, horizon int64) *popCohortState {
	c := cfg.Cohorts[ci]
	st := &popCohortState{
		c:    c,
		rng:  rand.New(rand.NewSource(int64(splitmix(uint64(cfg.Seed) ^ splitmix(uint64(ci+1)))))),
		base: userBase,
	}
	// Active window: with churn c per week the cohort's Users distinct ids
	// are spread over a window sliding across the id block, sized so the
	// whole block is visited by the end of the horizon.
	weeks := float64(horizon) / (7 * 24 * 3600)
	w := int(math.Round(float64(c.Users) / (1 + c.Churn*weeks)))
	if w < 1 {
		w = 1
	}
	if w > c.Users {
		w = c.Users
	}
	st.window = w
	st.slide = c.Users - w
	if w > 1 {
		st.zipf = rand.NewZipf(st.rng, c.Zipf, 1, uint64(w-1))
	}
	// Blend the calibrated hour/day profiles in by Diurnal/Weekly strength
	// and normalize each table's peak to 1, so the thinning acceptance
	// probability is the table product and the peak rate is lam.
	var maxH, maxD float64
	for _, v := range hourWeights {
		maxH = math.Max(maxH, v)
	}
	for _, v := range dayWeights {
		maxD = math.Max(maxD, v)
	}
	var meanH, meanD float64
	for h := 0; h < 24; h++ {
		st.hourW[h] = 1 - c.Diurnal + c.Diurnal*hourWeights[h]/maxH
		meanH += st.hourW[h]
	}
	meanH /= 24
	for d := 0; d < 7; d++ {
		st.dayW[d] = 1 - c.Weekly + c.Weekly*dayWeights[d]/maxD
		meanD += st.dayW[d]
	}
	meanD /= 7
	// Peak rate such that the thinned process's expected count over the
	// horizon is the cohort's job budget.
	st.lam = share * float64(cfg.Jobs) / (float64(horizon) * meanH * meanD)
	return st
}

// advance draws the cohort's next job, or sets next to nil at the horizon.
func (st *popCohortState) advance(cfg PopConfig, horizon int64) {
	for {
		st.clock += st.rng.ExpFloat64() / st.lam
		if st.clock >= float64(horizon) {
			st.next = nil
			return
		}
		sec := int64(st.clock)
		hour := int((sec/3600 + int64(st.c.PhaseHours)) % 24)
		day := int(sec / (24 * 3600) % 7)
		if st.rng.Float64() >= st.hourW[hour]*st.dayW[day] {
			continue // thinned out
		}
		// Active user: Zipf rank inside the window sliding across the block.
		start := 0
		if st.slide > 0 {
			start = int(int64(st.slide) * sec / horizon)
		}
		rank := 0
		if st.zipf != nil {
			rank = int(st.zipf.Uint64())
		}
		user := st.base + start + rank
		// Runtime: lognormal per-job base times the user's consistent
		// bounded-Pareto demand multiplier.
		base := float64(st.c.RuntimeMedian) * math.Exp(st.c.RuntimeSigma*st.rng.NormFloat64())
		mult := userDemand(cfg.Seed, user, st.c.Alpha, st.c.DemandSpread)
		runtime := int64(base * mult)
		if runtime < 1 {
			runtime = 1
		}
		if runtime > st.c.MaxRuntime {
			runtime = st.c.MaxRuntime
		}
		// Width: geometric over the width categories (narrow jobs dominate,
		// as in the calibrated trace), drawn from the standard menus.
		sys := st.c.MaxNodes
		if sys > cfg.SystemSize {
			sys = cfg.SystemSize
		}
		maxCat := 0
		for w := 0; w < job.NumWidthCategories; w++ {
			if lo, _ := job.WidthBounds(w); lo <= sys {
				maxCat = w
			}
		}
		cat := 0
		for cat < maxCat && st.rng.Float64() < 0.55 {
			cat++
		}
		nodes := sampleWidth(st.rng, cat, sys)
		st.next = &job.Job{
			User:     user,
			Group:    st.base, // cohorts are the accounting groups
			Submit:   sec,
			Runtime:  runtime,
			Estimate: drawEstimate(Config{UnderestimateProb: cfg.UnderestimateProb}, st.rng, runtime),
			Nodes:    nodes,
		}
		return
	}
}

// StreamPopulation generates the population workload in submit order,
// calling emit for each job as it is produced. Working memory is
// O(cohorts), independent of both the population size and the job count;
// an emit that does not retain its argument keeps the whole generation
// allocation-bounded. Returns the number of jobs emitted.
func StreamPopulation(cfg PopConfig, emit func(*job.Job) error) (int, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	horizon := int64(cfg.Weeks) * 7 * 24 * 3600
	var totalShare float64
	for _, c := range cfg.Cohorts {
		totalShare += c.JobShare
	}
	states := make([]*popCohortState, len(cfg.Cohorts))
	userBase := 1
	for i, c := range cfg.Cohorts {
		states[i] = newPopCohortState(cfg, i, userBase, c.JobShare/totalShare, horizon)
		states[i].advance(cfg, horizon)
		userBase += c.Users
	}
	// Merge the cohorts' nondecreasing arrival streams: repeatedly emit the
	// earliest pending job (ties to the lowest cohort index), assigning ids
	// in emission order so the output is sorted by (submit, id).
	count := 0
	for {
		best := -1
		for i, st := range states {
			if st.next == nil {
				continue
			}
			if best < 0 || st.next.Submit < states[best].next.Submit {
				best = i
			}
		}
		if best < 0 {
			return count, nil
		}
		j := states[best].next
		count++
		j.ID = job.ID(count)
		if err := emit(j); err != nil {
			return count, err
		}
		states[best].advance(cfg, horizon)
	}
}

// GeneratePopulation materializes the streamed population as a validated
// job slice (memory O(jobs), still independent of the population size).
func GeneratePopulation(cfg PopConfig) ([]*job.Job, error) {
	cfg = cfg.withDefaults()
	jobs := make([]*job.Job, 0, cfg.Jobs+cfg.Jobs/8)
	if _, err := StreamPopulation(cfg, func(j *job.Job) error {
		jobs = append(jobs, j)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := job.ValidateAll(jobs, cfg.SystemSize); err != nil {
		return nil, fmt.Errorf("workload: generated population invalid: %w", err)
	}
	return jobs, nil
}
