// Package workload generates a synthetic CPlant/Ross trace. The real
// PBS+yod logs the paper used were never fully released, so this package is
// the study's data substitute (see DESIGN.md §5): it reproduces the paper's
// Table 1 job-count grid exactly, rescales per-cell runtimes to match the
// Table 2 processor-hours, draws node counts from the powers-of-two/squares
// menus visible in Figure 4, wall-clock limits with the runtime-dependent
// overestimation of Figures 5-7, Zipf-distributed users (fairshare
// dynamics), and the bursty 33-week arrival profile of Figure 3.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fairsched/internal/job"
)

// Config parameterizes the generator. The zero value is completed by
// defaults matching the paper's environment.
type Config struct {
	// Seed drives the deterministic RNG (same seed, same trace).
	Seed int64
	// SystemSize is the cluster size; jobs never exceed it. Default 1000
	// (see DESIGN.md §5: chosen so the trace's Table 2 processor-hours
	// reproduce Figure 3's 60-120%% weekly offered-load regime).
	SystemSize int
	// Weeks is the trace horizon (default 33, the paper's 231 days).
	Weeks int
	// Users is the size of the user population (default 96).
	Users int
	// Groups is the number of accounting groups (default 12).
	Groups int
	// Scale multiplies every Table 1 cell count (and the Table 2 targets),
	// rounding half up. 1.0 reproduces the full trace; benches and tests
	// use smaller scales. Default 1.0.
	Scale float64
	// UnderestimateProb is the chance a job's wall-clock limit understates
	// its runtime (the trace lets such jobs overrun). Default 0.05; set
	// negative to disable underestimates entirely.
	UnderestimateProb float64
	// BurstGamma shapes the weekly arrival bursts: each week's relative
	// intensity is raised to this exponent around the mean, so 1.0 keeps
	// the raw Figure 3 profile, values below 1 flatten it, values above 1
	// sharpen it. Default 0.3, the calibrated operating point at which the
	// baseline policy lands on the paper's reported metrics and the
	// evaluation's qualitative claims reproduce (DESIGN.md §5).
	BurstGamma float64
}

func (c Config) withDefaults() Config {
	if c.SystemSize <= 0 {
		c.SystemSize = 1000
	}
	if c.Weeks <= 0 {
		c.Weeks = 33
	}
	if c.Users <= 0 {
		c.Users = 96
	}
	if c.Groups <= 0 {
		c.Groups = 12
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	switch {
	case c.UnderestimateProb == 0:
		c.UnderestimateProb = 0.05
	case c.UnderestimateProb < 0 || c.UnderestimateProb >= 1:
		c.UnderestimateProb = 0
	}
	if c.BurstGamma <= 0 {
		c.BurstGamma = 0.3
	}
	return c
}

// maxRuntimeCap bounds the open-ended "2+ days" length category (Figure 4's
// longest runtimes are around 10^6.3 seconds).
const maxRuntimeCap = 21 * 24 * 3600

// Generate produces the synthetic trace, sorted by submit time, with ids
// assigned in submit order starting at 1.
func Generate(cfg Config) ([]*job.Job, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	jobs, err := generateShapes(cfg, rng)
	if err != nil {
		return nil, err
	}
	users := newUserModel(cfg, rng)
	for _, j := range jobs {
		j.User = users.pick(rng, j.Nodes)
		j.Group = users.group(j.User)
	}
	assignArrivals(cfg, rng, jobs)
	for _, j := range jobs {
		j.Estimate = drawEstimate(cfg, rng, j.Runtime)
	}
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].Submit != jobs[k].Submit {
			return jobs[i].Submit < jobs[k].Submit
		}
		// Pre-id tie-break on shape for determinism.
		if jobs[i].Nodes != jobs[k].Nodes {
			return jobs[i].Nodes < jobs[k].Nodes
		}
		return jobs[i].Runtime < jobs[k].Runtime
	})
	for i, j := range jobs {
		j.ID = job.ID(i + 1)
	}
	if err := job.ValidateAll(jobs, cfg.SystemSize); err != nil {
		return nil, fmt.Errorf("workload: generated trace invalid: %w", err)
	}
	return jobs, nil
}

// generateShapes builds (nodes, runtime) pairs cell by cell: Table 1 counts
// exactly (after scaling), Table 2 proc-hours approximately.
func generateShapes(cfg Config, rng *rand.Rand) ([]*job.Job, error) {
	var jobs []*job.Job
	for w := 0; w < job.NumWidthCategories; w++ {
		for l := 0; l < job.NumLengthCategories; l++ {
			count := scaledCount(Table1Counts[w][l], cfg.Scale)
			if count == 0 {
				continue
			}
			cell, err := generateCell(cfg, rng, w, l, count)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, cell...)
		}
	}
	return jobs, nil
}

func scaledCount(count int, scale float64) int {
	if count == 0 {
		return 0
	}
	n := int(math.Floor(float64(count)*scale + 0.5))
	if n < 0 {
		n = 0
	}
	return n
}

// generateCell samples count jobs within one (width, length) cell, then
// rescales runtimes (clamped to the cell's bounds) so the cell's total
// processor-hours approach the Table 2 target.
func generateCell(cfg Config, rng *rand.Rand, w, l, count int) ([]*job.Job, error) {
	lo, hi := job.LengthBounds(l)
	if hi == 0 {
		hi = maxRuntimeCap
	}
	if lo < 1 {
		lo = 1
	}
	jobs := make([]*job.Job, count)
	for i := range jobs {
		nodes := sampleWidth(rng, w, cfg.SystemSize)
		runtime := sampleLogUniform(rng, lo, hi)
		jobs[i] = &job.Job{Nodes: nodes, Runtime: runtime}
	}
	target := Table2ProcHours[w][l] * 3600 * float64(count) / float64(Table1Counts[w][l])
	if target <= 0 {
		return jobs, nil
	}
	// Iterative proportional rescaling: clamping distorts the total, so a
	// few passes converge close to the target without leaving the cell.
	for pass := 0; pass < 4; pass++ {
		var actual float64
		for _, j := range jobs {
			actual += float64(j.ProcSeconds())
		}
		if actual <= 0 {
			break
		}
		factor := target / actual
		if math.Abs(factor-1) < 0.01 {
			break
		}
		for _, j := range jobs {
			r := int64(math.Round(float64(j.Runtime) * factor))
			if r < lo {
				r = lo
			}
			if r >= hi {
				r = hi - 1
			}
			if r < 1 {
				r = 1
			}
			j.Runtime = r
		}
	}
	return jobs, nil
}

// sampleLogUniform draws from [lo, hi) with log-uniform density, matching
// the heavy short-job skew of the trace.
func sampleLogUniform(rng *rand.Rand, lo, hi int64) int64 {
	if hi <= lo+1 {
		return lo
	}
	v := float64(lo) * math.Pow(float64(hi)/float64(lo), rng.Float64())
	r := int64(v)
	if r < lo {
		r = lo
	}
	if r >= hi {
		r = hi - 1
	}
	return r
}
