package workload

import (
	"math/rand"

	"fairsched/internal/job"
)

// Node-count menus per width category. Figure 4 shows users overwhelmingly
// choosing "standard" allocations — powers of two and perfect squares — so
// each category's menu favors those values.

type widthChoice struct {
	nodes  int
	weight int
}

var widthMenus = [job.NumWidthCategories][]widthChoice{
	{{1, 1}},
	{{2, 1}},
	{{4, 3}, {3, 1}},
	{{8, 5}, {6, 2}, {5, 2}, {7, 1}},
	{{16, 6}, {9, 2}, {12, 2}, {10, 1}, {13, 1}, {14, 1}, {15, 1}, {11, 1}},
	{{32, 6}, {25, 2}, {24, 2}, {20, 1}, {18, 1}, {28, 1}, {30, 1}, {17, 1}},
	{{64, 6}, {36, 2}, {49, 2}, {48, 2}, {40, 1}, {50, 1}, {60, 1}, {33, 1}},
	{{128, 6}, {100, 2}, {81, 2}, {96, 2}, {72, 1}, {120, 1}, {110, 1}, {65, 1}},
	{{256, 6}, {144, 2}, {196, 2}, {169, 1}, {200, 1}, {225, 1}, {160, 1}, {240, 1}, {129, 1}},
	{{512, 5}, {400, 2}, {289, 1}, {324, 1}, {441, 1}, {484, 1}, {300, 1}, {350, 1}},
	{{1024, 4}, {529, 1}, {625, 1}, {729, 1}, {900, 1}, {1089, 1}, {1296, 1}, {1444, 1}, {1524, 2}, {600, 1}, {800, 1}},
}

// sampleWidth draws a node count for width category w, never exceeding the
// system size; if the whole menu exceeds it (small test systems), the
// category's lower bound clamped to the system size is used.
func sampleWidth(rng *rand.Rand, w, systemSize int) int {
	menu := widthMenus[w]
	total := 0
	for _, c := range menu {
		if c.nodes <= systemSize {
			total += c.weight
		}
	}
	if total == 0 {
		lo, _ := job.WidthBounds(w)
		if lo > systemSize {
			lo = systemSize
		}
		return lo
	}
	pick := rng.Intn(total)
	for _, c := range menu {
		if c.nodes > systemSize {
			continue
		}
		pick -= c.weight
		if pick < 0 {
			return c.nodes
		}
	}
	return menu[0].nodes
}
