package workload

import (
	"math"
	"runtime"
	"testing"

	"fairsched/internal/job"
)

func TestPopulationDeterministicPerSeed(t *testing.T) {
	cfg := PopConfig{Seed: 7, Users: 2000, Jobs: 3000, Weeks: 2}
	a, err := GeneratePopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different job counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("job %d differs between identical draws: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := GeneratePopulation(PopConfig{Seed: 8, Users: 2000, Jobs: 3000, Weeks: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := len(c) == len(a)
	if same {
		for i := range a {
			if *a[i] != *c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestPopulationSubmitOrderAndValidity(t *testing.T) {
	cfg := PopConfig{Seed: 42, Users: 5000, Jobs: 8000, Weeks: 3, SystemSize: 500}
	jobs, err := GeneratePopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	horizon := int64(3 * 7 * 24 * 3600)
	for i, j := range jobs {
		if j.ID != job.ID(i+1) {
			t.Fatalf("job %d: id %d, want %d", i, j.ID, i+1)
		}
		if i > 0 && j.Submit < jobs[i-1].Submit {
			t.Fatalf("submit order violated at %d: %d after %d", i, j.Submit, jobs[i-1].Submit)
		}
		if j.Submit < 0 || j.Submit >= horizon {
			t.Fatalf("job %d submitted at %d, outside [0, %d)", i, j.Submit, horizon)
		}
		if j.Nodes > 64 {
			t.Fatalf("job %d: %d nodes exceeds the default cohort width cap", i, j.Nodes)
		}
	}
	// The thinned processes' realized total must track the configured
	// budget (it is a Poisson draw around it).
	if got, want := float64(len(jobs)), float64(cfg.Jobs); math.Abs(got-want) > 0.10*want {
		t.Fatalf("generated %d jobs, want within 10%% of %d", len(jobs), cfg.Jobs)
	}
}

func TestPopulationCohortsAndChurn(t *testing.T) {
	cfg := PopConfig{Seed: 3, Users: 8000, Jobs: 12000, Weeks: 4, NumCohorts: 4, Churn: 1.0}
	jobs, err := GeneratePopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Four cohorts of 2000 users: ids 1..2000, 2001..4000, ...; groups are
	// the cohort bases.
	groups := map[int]bool{}
	distinct := map[int]bool{}
	half := int64(2 * 7 * 24 * 3600)
	earlyMax, lateMin := 0, 1<<30
	for _, j := range jobs {
		groups[j.Group] = true
		distinct[j.User] = true
		co := (j.User - 1) / 2000
		if base := co*2000 + 1; j.Group != base {
			t.Fatalf("user %d in group %d, want cohort base %d", j.User, j.Group, base)
		}
		if co == 0 { // track churn inside the first cohort
			if j.Submit < half {
				if j.User > earlyMax {
					earlyMax = j.User
				}
			} else if j.User < lateMin {
				lateMin = j.User
			}
		}
	}
	if len(groups) != 4 {
		t.Fatalf("saw %d cohorts, want 4", len(groups))
	}
	// Churn 1.0/week over 4 weeks: the active window is ~1/5 of the cohort,
	// so early jobs cannot touch the block's top and late jobs cannot touch
	// its bottom.
	if earlyMax >= 1900 {
		t.Fatalf("churn: first-half jobs reached user %d of cohort 1 (window did not slide)", earlyMax)
	}
	if lateMin <= 100 {
		t.Fatalf("churn: second-half jobs still hit user %d (departed users still active)", lateMin)
	}
	// Zipf activity over a sliding window still visits a broad user set.
	if len(distinct) < 1000 {
		t.Fatalf("only %d distinct users across 8000-user population", len(distinct))
	}
}

func TestPopulationHeavyTailedDemand(t *testing.T) {
	jobs, err := GeneratePopulation(PopConfig{Seed: 11, Users: 3000, Jobs: 10000, Weeks: 2})
	if err != nil {
		t.Fatal(err)
	}
	usage := map[int]int64{}
	for _, j := range jobs {
		usage[j.User] += j.ProcSeconds()
	}
	var total, top float64
	max := int64(0)
	for _, v := range usage {
		total += float64(v)
		if v > max {
			max = v
		}
	}
	var heavy []float64
	for _, v := range usage {
		heavy = append(heavy, float64(v))
	}
	// Top 10% of users must hold a disproportionate share of the demand
	// (heavy tail); under an even split they would hold exactly 10%.
	n := len(heavy)
	for i := 0; i < n; i++ { // selection-free: just sum above the 90th percentile threshold via sort-lite
		for k := i + 1; k < n; k++ {
			if heavy[k] > heavy[i] {
				heavy[i], heavy[k] = heavy[k], heavy[i]
			}
		}
		if i > n/10 {
			break
		}
	}
	for i := 0; i <= n/10; i++ {
		top += heavy[i]
	}
	if top < 0.3*total {
		t.Fatalf("top 10%% of users hold %.1f%% of demand, want >= 30%% (heavy tail missing)", 100*top/total)
	}
}

// TestStreamPopulationHeapBounded is the PR's bounded-memory contract: a
// million-user streaming generation must not grow the heap with the
// population — working state is O(cohorts), so the allocation ceiling is a
// small constant (mirrors the swf.Scanner streaming test).
func TestStreamPopulationHeapBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("million-user generation in -short mode")
	}
	cfg := PopConfig{Seed: 1, Users: 1_000_000, Jobs: 50_000, Weeks: 4}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	count, maxUser := 0, 0
	_, err := StreamPopulation(cfg, func(j *job.Job) error {
		count++
		if j.User > maxUser {
			maxUser = j.User
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if count < 40_000 {
		t.Fatalf("generated only %d jobs", count)
	}
	if maxUser < 860_000 {
		t.Fatalf("max user id %d: the million-user population was not exercised", maxUser)
	}
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if grew > 4<<20 {
		t.Fatalf("heap grew %d bytes streaming a million-user population (want <= 4MiB)", grew)
	}
}

func TestPopulationConfigRejected(t *testing.T) {
	bad := []PopConfig{
		{Seed: 1, Users: MaxPopUsers + 1},
		{Seed: 1, Jobs: MaxPopJobs + 1},
		{Seed: 1, Weeks: MaxPopWeeks + 1},
		{Seed: 1, Cohorts: []PopCohort{{Users: 10, Zipf: 0.5}}},
		{Seed: 1, Cohorts: []PopCohort{{Users: 10, Churn: -1}}},
		{Seed: 1, Cohorts: []PopCohort{{Users: 10, Diurnal: 2}}},
		{Seed: 1, Cohorts: []PopCohort{{Users: 10, Alpha: math.NaN()}}},
		{Seed: 1, Cohorts: make([]PopCohort, MaxPopCohorts+1)},
	}
	for i, cfg := range bad {
		if _, err := GeneratePopulation(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}
