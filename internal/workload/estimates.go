package workload

import (
	"math"
	"math/rand"
)

// Wall-clock-limit model (Figures 5-7): users pick estimates from a menu of
// round values, intentionally overestimating — the scheduler kills jobs at
// the limit, networking contention is unpredictable, and some jobs abort.
// The overestimation factor shrinks with runtime (Figure 6) and is
// unrelated to width (Figure 7: the model never looks at nodes). A small
// fraction of jobs underestimate and overrun their limit (visible below the
// diagonal of Figure 5).

// estimateMenu is the ascending list of selectable wall-clock limits.
var estimateMenu = []int64{
	15 * 60, 30 * 60, 3600, 2 * 3600, 4 * 3600, 6 * 3600, 8 * 3600,
	12 * 3600, 16 * 3600, 24 * 3600, 36 * 3600, 48 * 3600, 72 * 3600,
	96 * 3600, 120 * 3600, 168 * 3600, 240 * 3600, 336 * 3600, 504 * 3600,
}

// overestimation median: ln(f) = overA + overB*ln(runtime), i.e. roughly
// 50x for one-minute jobs falling to ~1.5x for week-long jobs.
const (
	overA     = 5.46
	overB     = -0.38
	overSigma = 1.0
)

// drawEstimate returns the wall-clock limit for a job of the given runtime.
func drawEstimate(cfg Config, rng *rand.Rand, runtime int64) int64 {
	if rng.Float64() < cfg.UnderestimateProb && runtime > estimateMenu[0]*2 {
		// Underestimate: the job overran its limit by 5-40% (the real
		// scheduler killed bigger overruns unless the nodes were idle, so
		// the trace's recorded runtimes never exceed the limit by much).
		est := int64(float64(runtime) / (1.05 + 0.35*rng.Float64()))
		if est < estimateMenu[0] {
			est = estimateMenu[0]
		}
		return est
	}
	mu := overA + overB*math.Log(float64(runtime))
	f := math.Exp(mu + overSigma*rng.NormFloat64())
	if f < 1 {
		f = 1
	}
	want := float64(runtime) * f
	return menuAtLeast(int64(math.Ceil(want)))
}

// menuAtLeast returns the smallest menu value >= want (capped at the top).
func menuAtLeast(want int64) int64 {
	for _, m := range estimateMenu {
		if m >= want {
			return m
		}
	}
	return estimateMenu[len(estimateMenu)-1]
}
