package workload

import (
	"math"
	"math/rand"

	"fairsched/internal/job"
)

// userModel assigns jobs to a Zipf-distributed user population. Each user
// has a preferred width category (drawn in proportion to the Table 2
// processor-hour row sums, so the heavy hitters favor wide jobs, as on the
// real machine); a job is four times as likely to go to a user whose
// preference matches its width category. This concentration is what makes
// the fairshare priority and the heavy-user starvation filter meaningful.
type userModel struct {
	weights []float64 // Zipf activity weight per user (1-based ids)
	pref    []int     // preferred width category per user
	groups  int
}

const prefAffinity = 4.0

func newUserModel(cfg Config, rng *rand.Rand) *userModel {
	m := &userModel{
		weights: make([]float64, cfg.Users+1),
		pref:    make([]int, cfg.Users+1),
		groups:  cfg.Groups,
	}
	// Row-sum distribution of proc-hours by width category.
	var rowSum [job.NumWidthCategories]float64
	var total float64
	for w := range Table2ProcHours {
		for _, v := range Table2ProcHours[w] {
			rowSum[w] += v
		}
		total += rowSum[w]
	}
	for u := 1; u <= cfg.Users; u++ {
		m.weights[u] = 1 / math.Pow(float64(u), 1.1) // Zipf, s = 1.1
		pick := rng.Float64() * total
		m.pref[u] = job.NumWidthCategories - 1
		for w := range rowSum {
			pick -= rowSum[w]
			if pick < 0 {
				m.pref[u] = w
				break
			}
		}
	}
	return m
}

// pick draws the submitting user for a job of the given width.
func (m *userModel) pick(rng *rand.Rand, nodes int) int {
	w := job.WidthCategory(nodes)
	var total float64
	for u := 1; u < len(m.weights); u++ {
		wt := m.weights[u]
		if m.pref[u] == w {
			wt *= prefAffinity
		}
		total += wt
	}
	pick := rng.Float64() * total
	for u := 1; u < len(m.weights); u++ {
		wt := m.weights[u]
		if m.pref[u] == w {
			wt *= prefAffinity
		}
		pick -= wt
		if pick < 0 {
			return u
		}
	}
	return len(m.weights) - 1
}

// group maps a user to an accounting group (stable, round-robin blocks).
func (m *userModel) group(user int) int {
	if m.groups <= 0 {
		return 1
	}
	return (user-1)%m.groups + 1
}
