package workload

import (
	"math"
	"math/rand"

	"fairsched/internal/job"
)

// Arrival-time model: Figure 3's offered load is strongly bursty — several
// consecutive weeks submit more work than the machine can run (offered load
// peaks above 160% including backlog), followed by deep lulls attributed to
// users backing off from long queues. weeklyShape is a 33-entry relative
// intensity profile eyeballed from the figure; jobs are assigned to weeks in
// proportion to each week's remaining processor-hour budget, then placed
// within the week with weekday/diurnal weights.

var weeklyShape = [33]float64{
	0.40, 0.65, 0.90, 1.30, 1.75, 1.50, 1.00, 0.75, // ramp up to the peak
	1.10, 1.45, 1.05, 0.70, 1.30, 1.10, 0.85, 0.60, // second surge
	1.00, 0.45, 0.25, 0.60, 1.25, 1.60, 1.20, 0.95, // deep lull, third surge
	0.80, 1.05, 1.25, 0.75, 0.50, 0.75, 0.60, 0.40, // tapering
	0.20,
}

// dayWeights weight the day-of-week of submissions; the trace starts on a
// Sunday (December 1, 2002). Weekends are quiet.
var dayWeights = [7]float64{0.40, 1.20, 1.30, 1.30, 1.25, 1.15, 0.40}

// hourWeights model the diurnal cycle: working hours dominate.
var hourWeights = [24]float64{
	0.15, 0.10, 0.08, 0.08, 0.08, 0.10, 0.20, 0.45,
	0.90, 1.30, 1.50, 1.50, 1.35, 1.40, 1.50, 1.45,
	1.30, 1.10, 0.80, 0.60, 0.45, 0.35, 0.25, 0.20,
}

// weekShape returns the relative intensity of week w for a horizon of
// `weeks` weeks, resampling the 33-entry profile when the horizon differs
// and compressing or sharpening the bursts around the profile mean with the
// gamma exponent.
func weekShape(w, weeks int, gamma float64) float64 {
	var v float64
	if weeks == len(weeklyShape) {
		v = weeklyShape[w]
	} else {
		idx := w * len(weeklyShape) / weeks
		if idx >= len(weeklyShape) {
			idx = len(weeklyShape) - 1
		}
		v = weeklyShape[idx]
	}
	if gamma == 1.0 {
		return v
	}
	var mean float64
	for _, s := range weeklyShape {
		mean += s
	}
	mean /= float64(len(weeklyShape))
	return mean * math.Pow(v/mean, gamma)
}

// assignArrivals sets Submit for every job: week by remaining-budget
// sampling, then day/hour/second within the week.
func assignArrivals(cfg Config, rng *rand.Rand, jobs []*job.Job) {
	weeks := cfg.Weeks
	var totalShape float64
	for w := 0; w < weeks; w++ {
		totalShape += weekShape(w, weeks, cfg.BurstGamma)
	}
	var totalWork float64
	for _, j := range jobs {
		totalWork += float64(j.ProcSeconds())
	}
	budget := make([]float64, weeks)
	for w := 0; w < weeks; w++ {
		budget[w] = totalWork * weekShape(w, weeks, cfg.BurstGamma) / totalShape
	}
	// Visit jobs in random order so the big jobs do not all land in the
	// high-budget weeks first.
	order := rng.Perm(len(jobs))
	remaining := append([]float64(nil), budget...)
	for _, idx := range order {
		j := jobs[idx]
		w := pickWeek(rng, remaining, budget)
		remaining[w] -= float64(j.ProcSeconds())
		j.Submit = int64(w)*7*24*3600 + sampleWithinWeek(rng)
	}
}

// pickWeek samples a week in proportion to its remaining budget, falling
// back to the original budget shape once every week is saturated.
func pickWeek(rng *rand.Rand, remaining, budget []float64) int {
	var total float64
	for _, r := range remaining {
		if r > 0 {
			total += r
		}
	}
	weights := remaining
	if total <= 0 {
		weights = budget
		for _, b := range budget {
			total += b
		}
	}
	pick := rng.Float64() * total
	for w, r := range weights {
		if r <= 0 {
			continue
		}
		pick -= r
		if pick < 0 {
			return w
		}
	}
	return len(weights) - 1
}

// sampleWithinWeek draws the offset inside a week: weighted day of week,
// weighted hour of day, uniform second.
func sampleWithinWeek(rng *rand.Rand) int64 {
	day := sampleWeighted(rng, dayWeights[:])
	hour := sampleWeighted(rng, hourWeights[:])
	sec := rng.Int63n(3600)
	return int64(day)*24*3600 + int64(hour)*3600 + sec
}

func sampleWeighted(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	pick := rng.Float64() * total
	for i, w := range weights {
		pick -= w
		if pick < 0 {
			return i
		}
	}
	return len(weights) - 1
}
