package workload

import (
	"testing"

	"fairsched/internal/job"
)

func TestGenerateCustomHorizon(t *testing.T) {
	jobs, err := Generate(Config{Seed: 11, Scale: 0.05, Weeks: 10})
	if err != nil {
		t.Fatal(err)
	}
	horizon := int64(10 * 7 * 24 * 3600)
	for _, j := range jobs {
		if j.Submit >= horizon {
			t.Fatalf("submit %d beyond the 10-week horizon", j.Submit)
		}
	}
}

func TestGenerateCustomUserPopulation(t *testing.T) {
	jobs, err := Generate(Config{Seed: 11, Scale: 0.05, Users: 8, Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.User < 1 || j.User > 8 {
			t.Fatalf("user %d outside the 8-user population", j.User)
		}
		if j.Group < 1 || j.Group > 2 {
			t.Fatalf("group %d outside the 2-group population", j.Group)
		}
	}
}

func TestGenerateTinySystemStillValid(t *testing.T) {
	jobs, err := Generate(Config{Seed: 11, Scale: 0.02, SystemSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.ValidateAll(jobs, 16); err != nil {
		t.Fatal(err)
	}
	// All widths collapse into the categories that fit 16 nodes.
	for _, j := range jobs {
		if j.Nodes > 16 {
			t.Fatalf("width %d on a 16-node machine", j.Nodes)
		}
	}
}

func TestGenerateEstimatesComeFromMenuOrUnderestimate(t *testing.T) {
	jobs, err := Generate(Config{Seed: 13, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	menu := map[int64]bool{}
	for _, m := range estimateMenu {
		menu[m] = true
	}
	for _, j := range jobs {
		if j.Estimate >= j.Runtime && !menu[j.Estimate] {
			t.Fatalf("overestimate %d not on the menu", j.Estimate)
		}
		if j.Estimate < j.Runtime && j.Estimate < estimateMenu[0] {
			t.Fatalf("underestimate %d below the menu floor", j.Estimate)
		}
	}
}

func TestGenerateRuntimesStayInCells(t *testing.T) {
	jobs, err := Generate(Config{Seed: 17, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Runtime < 1 || j.Runtime > maxRuntimeCap {
			t.Fatalf("runtime %d outside the global bounds", j.Runtime)
		}
	}
}

func TestScaledCountRounding(t *testing.T) {
	cases := []struct {
		count int
		scale float64
		want  int
	}{
		{10, 1.0, 10}, {10, 0.5, 5}, {10, 0.04, 0}, {10, 0.06, 1},
		{0, 5.0, 0}, {3, 2.0, 6},
	}
	for _, tc := range cases {
		if got := scaledCount(tc.count, tc.scale); got != tc.want {
			t.Errorf("scaledCount(%d, %v) = %d, want %d", tc.count, tc.scale, got, tc.want)
		}
	}
}

func TestSampleLogUniformBounds(t *testing.T) {
	jobs, err := Generate(Config{Seed: 19, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		w, l := j.Cell()
		lo, hi := job.LengthBounds(l)
		if hi == 0 {
			hi = maxRuntimeCap + 1
		}
		if j.Runtime < lo || j.Runtime >= hi {
			t.Fatalf("runtime %d escaped length cell %d (width cell %d)", j.Runtime, l, w)
		}
	}
}
