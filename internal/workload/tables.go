package workload

import "fairsched/internal/job"

// The paper's Tables 1 and 2: the CPlant/Ross workload (December 1 2002 -
// July 14 2003) bucketed into 11 width categories (rows: 1, 2, 3-4, 5-8,
// 9-16, 17-32, 33-64, 65-128, 129-256, 257-512, 513+ nodes) and 8 length
// categories (columns: 0-15 min, 15-60 min, 1-4 h, 4-8 h, 8-16 h, 16-24 h,
// 1-2 d, 2+ d). The generator reproduces Table 1 exactly (by construction)
// and Table 2 approximately (runtimes are rescaled per cell).
//
// Table 1 sums to 13,236 jobs; the paper quotes 13,614 jobs for the full
// trace. The 378-job difference is not attributable to any cell, so the
// synthetic trace contains the table total.

// Table1Counts is the paper's Table 1: number of jobs per cell.
var Table1Counts = [job.NumWidthCategories][job.NumLengthCategories]int{
	{681, 141, 44, 7, 7, 3, 6, 16},            // 1 node
	{458, 80, 8, 0, 2, 0, 1, 0},               // 2 nodes
	{672, 440, 273, 55, 26, 3, 5, 5},          // 3-4 nodes
	{832, 238, 700, 155, 142, 90, 76, 91},     // 5-8 nodes
	{1032, 131, 347, 206, 260, 141, 205, 160}, // 9-16 nodes
	{917, 608, 113, 72, 67, 53, 116, 160},     // 17-32 nodes
	{879, 130, 134, 70, 79, 48, 130, 178},     // 33-64 nodes
	{494, 72, 78, 31, 49, 24, 53, 76},         // 65-128 nodes
	{447, 127, 9, 5, 12, 1, 3, 10},            // 129-256 nodes
	{147, 24, 6, 3, 1, 0, 0, 1},               // 257-512 nodes
	{51, 18, 1, 0, 0, 0, 0, 0},                // 513+ nodes
}

// Table2ProcHours is the paper's Table 2: processor-hours per cell.
var Table2ProcHours = [job.NumWidthCategories][job.NumLengthCategories]float64{
	{14, 61, 76, 42, 70, 62, 259, 2883},                      // 1 node
	{32, 70, 21, 0, 53, 0, 68, 0},                            // 2 nodes
	{103, 1197, 2210, 1272, 1030, 213, 614, 1310},            // 3-4 nodes
	{281, 1101, 10263, 6582, 12107, 14118, 18287, 92549},     // 5-8 nodes
	{522, 1102, 12522, 18175, 45859, 42072, 105884, 207496},  // 9-16 nodes
	{968, 6870, 6630, 11008, 22031, 28232, 109166, 363944},   // 17-32 nodes
	{1775, 2895, 15252, 20429, 48457, 48493, 251748, 986649}, // 33-64 nodes
	{1876, 4149, 19125, 17333, 53098, 48296, 179321, 796517}, // 65-128 nodes
	{3273, 12395, 4219, 4322, 27041, 5451, 19030, 183949},    // 129-256 nodes
	{3719, 4723, 5027, 6850, 3888, 0, 0, 30761},              // 257-512 nodes
	{2692, 9503, 0, 3183, 0, 0, 0, 0},                        // 513+ nodes
}

// Table1Total returns the job count of the full Table 1 grid.
func Table1Total() int {
	t := 0
	for _, row := range Table1Counts {
		for _, c := range row {
			t += c
		}
	}
	return t
}

// Table2Total returns the processor-hours of the full Table 2 grid.
func Table2Total() float64 {
	var t float64
	for _, row := range Table2ProcHours {
		for _, c := range row {
			t += c
		}
	}
	return t
}
