// Package job defines the parallel job model shared by the simulator,
// schedulers, metrics and workload generator.
//
// All times are int64 seconds relative to the trace origin (or Unix seconds
// when a trace header supplies an origin). A job is the paper's 2-D
// rectangle: width = Nodes, length = Runtime (actual) or Estimate (the user
// supplied wall-clock limit the scheduler plans with).
package job

import "fmt"

// ID identifies a job within one workload. IDs are positive and unique;
// segments created by max-runtime splitting receive fresh IDs and point back
// to the original via Parent.
type ID int64

// Job is one batch job submission.
type Job struct {
	ID     ID
	User   int // opaque user id, basis of the fairshare priority
	Group  int // opaque group id (carried from/to SWF, not used for policy)
	Submit int64
	// Runtime is the actual execution time in seconds (>= 1). The simulator
	// runs the job for exactly this long.
	Runtime int64
	// Estimate is the user-supplied wall-clock limit in seconds (>= 1).
	// Schedulers plan with it; it may be smaller than Runtime (the CPlant
	// system let jobs overrun when the nodes were not needed).
	Estimate int64
	// Nodes is the number of compute nodes the job occupies (width).
	Nodes int

	// Split metadata (zero values when the job is not a segment).
	Parent   ID  // original job id, 0 if not a segment
	Segment  int // 1-based segment index
	Segments int // total segments of the original job
	// ChainRuntime is the remaining runtime of the whole checkpoint chain
	// including this segment (original runtime minus completed segments).
	// Fairness metrics treat the chain as one logical job that would hold
	// its nodes contiguously in the fair reference schedule.
	ChainRuntime int64
}

// EffectiveRuntime returns the runtime the fair reference schedule charges
// the job for: the remaining chain runtime for a split segment, the plain
// runtime otherwise.
func (j *Job) EffectiveRuntime() int64 {
	if j.ChainRuntime > 0 {
		return j.ChainRuntime
	}
	return j.Runtime
}

// Validate reports the first structural problem with the job, or nil.
func (j *Job) Validate(systemSize int) error {
	switch {
	case j == nil:
		return fmt.Errorf("job: nil")
	case j.ID <= 0:
		return fmt.Errorf("job %d: non-positive id", j.ID)
	case j.Submit < 0:
		return fmt.Errorf("job %d: negative submit time %d", j.ID, j.Submit)
	case j.Runtime < 1:
		return fmt.Errorf("job %d: runtime %d < 1", j.ID, j.Runtime)
	case j.Estimate < 1:
		return fmt.Errorf("job %d: estimate %d < 1", j.ID, j.Estimate)
	case j.Nodes < 1:
		return fmt.Errorf("job %d: nodes %d < 1", j.ID, j.Nodes)
	case systemSize > 0 && j.Nodes > systemSize:
		return fmt.Errorf("job %d: nodes %d exceed system size %d", j.ID, j.Nodes, systemSize)
	}
	return nil
}

// ProcSeconds returns Nodes * Runtime, the job's area in the 2-D schedule.
func (j *Job) ProcSeconds() int64 { return int64(j.Nodes) * j.Runtime }

// OverestimationFactor returns Estimate/Runtime as a float (Figures 6-7).
func (j *Job) OverestimationFactor() float64 {
	return float64(j.Estimate) / float64(j.Runtime)
}

// Clone returns a copy of the job.
func (j *Job) Clone() *Job {
	c := *j
	return &c
}

func (j *Job) String() string {
	return fmt.Sprintf("job %d (user %d, %d nodes, %ds run, %ds est, submit %d)",
		j.ID, j.User, j.Nodes, j.Runtime, j.Estimate, j.Submit)
}

// ValidateAll validates every job in the slice and checks ID uniqueness.
func ValidateAll(jobs []*Job, systemSize int) error {
	seen := make(map[ID]bool, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(systemSize); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("job %d: duplicate id", j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}

// TotalProcSeconds sums ProcSeconds over all jobs.
func TotalProcSeconds(jobs []*Job) int64 {
	var t int64
	for _, j := range jobs {
		t += j.ProcSeconds()
	}
	return t
}

// MaxNodes returns the widest job's node count, 0 for an empty slice.
func MaxNodes(jobs []*Job) int {
	m := 0
	for _, j := range jobs {
		if j.Nodes > m {
			m = j.Nodes
		}
	}
	return m
}
