package job

// The paper buckets jobs into 11 width (node-count) categories and 8 length
// (runtime) categories (Tables 1 and 2, Figures 10/12/16/18).

// NumWidthCategories and NumLengthCategories are the grid dimensions of the
// paper's Tables 1 and 2.
const (
	NumWidthCategories  = 11
	NumLengthCategories = 8
)

// WidthLabels are the paper's row labels, narrowest first.
var WidthLabels = [NumWidthCategories]string{
	"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65-128",
	"129-256", "257-512", "513+",
}

// LengthLabels are the paper's column labels, shortest first.
var LengthLabels = [NumLengthCategories]string{
	"0-15 mins", "15-60 mins", "1-4 hrs", "4-8 hrs", "8-16 hrs",
	"16-24 hrs", "1-2 days", "2+ days",
}

// widthUpper[i] is the inclusive upper node bound of width category i; the
// last category is open-ended.
var widthUpper = [NumWidthCategories - 1]int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// lengthUpper[i] is the exclusive upper runtime bound (seconds) of length
// category i; the last category is open-ended.
var lengthUpper = [NumLengthCategories - 1]int64{
	15 * 60,       // 0-15 mins
	60 * 60,       // 15-60 mins
	4 * 3600,      // 1-4 hrs
	8 * 3600,      // 4-8 hrs
	16 * 3600,     // 8-16 hrs
	24 * 3600,     // 16-24 hrs
	2 * 24 * 3600, // 1-2 days
}

// WidthCategory returns the index (0..10) of the paper's width category for
// the given node count. Node counts below 1 map to category 0.
func WidthCategory(nodes int) int {
	for i, up := range widthUpper {
		if nodes <= up {
			return i
		}
	}
	return NumWidthCategories - 1
}

// LengthCategory returns the index (0..7) of the paper's length category for
// the given runtime in seconds.
func LengthCategory(runtime int64) int {
	for i, up := range lengthUpper {
		if runtime < up {
			return i
		}
	}
	return NumLengthCategories - 1
}

// WidthBounds returns the inclusive node range [lo, hi] of width category i.
// The open-ended last category reports hi = 0 (meaning "no upper bound").
func WidthBounds(i int) (lo, hi int) {
	if i <= 0 {
		return 1, 1
	}
	if i >= NumWidthCategories-1 {
		return widthUpper[NumWidthCategories-2] + 1, 0
	}
	return widthUpper[i-1] + 1, widthUpper[i]
}

// LengthBounds returns the runtime range [lo, hi) in seconds of length
// category i. The open-ended last category reports hi = 0.
func LengthBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 1, lengthUpper[0]
	}
	if i >= NumLengthCategories-1 {
		return lengthUpper[NumLengthCategories-2], 0
	}
	return lengthUpper[i-1], lengthUpper[i]
}

// Cell returns the (width, length) category pair for a job.
func (j *Job) Cell() (w, l int) {
	return WidthCategory(j.Nodes), LengthCategory(j.Runtime)
}

// CountGrid tallies jobs into the Table 1 grid.
func CountGrid(jobs []*Job) [NumWidthCategories][NumLengthCategories]int {
	var g [NumWidthCategories][NumLengthCategories]int
	for _, j := range jobs {
		w, l := j.Cell()
		g[w][l]++
	}
	return g
}

// ProcHourGrid tallies processor-hours into the Table 2 grid.
func ProcHourGrid(jobs []*Job) [NumWidthCategories][NumLengthCategories]float64 {
	var g [NumWidthCategories][NumLengthCategories]float64
	for _, j := range jobs {
		w, l := j.Cell()
		g[w][l] += float64(j.ProcSeconds()) / 3600
	}
	return g
}
