package job

import (
	"strings"
	"testing"
	"testing/quick"
)

func validJob() *Job {
	return &Job{ID: 1, User: 3, Group: 1, Submit: 100, Runtime: 600, Estimate: 900, Nodes: 16}
}

func TestValidateAcceptsWellFormedJob(t *testing.T) {
	if err := validJob().Validate(1024); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Job)
		want   string
	}{
		{"zero id", func(j *Job) { j.ID = 0 }, "non-positive id"},
		{"negative id", func(j *Job) { j.ID = -4 }, "non-positive id"},
		{"negative submit", func(j *Job) { j.Submit = -1 }, "negative submit"},
		{"zero runtime", func(j *Job) { j.Runtime = 0 }, "runtime"},
		{"zero estimate", func(j *Job) { j.Estimate = 0 }, "estimate"},
		{"zero nodes", func(j *Job) { j.Nodes = 0 }, "nodes"},
		{"too wide", func(j *Job) { j.Nodes = 2048 }, "exceed system size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := validJob()
			tc.mutate(j)
			err := j.Validate(1024)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateNilJob(t *testing.T) {
	var j *Job
	if err := j.Validate(10); err == nil {
		t.Fatal("nil job accepted")
	}
}

func TestValidateIgnoresSystemSizeWhenZero(t *testing.T) {
	j := validJob()
	j.Nodes = 1 << 20
	if err := j.Validate(0); err != nil {
		t.Fatalf("system size 0 should skip the width check: %v", err)
	}
}

func TestValidateAllDetectsDuplicateIDs(t *testing.T) {
	a, b := validJob(), validJob()
	b.Submit = 200
	if err := ValidateAll([]*Job{a, b}, 1024); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	b.ID = 2
	if err := ValidateAll([]*Job{a, b}, 1024); err != nil {
		t.Fatalf("distinct ids rejected: %v", err)
	}
}

func TestProcSeconds(t *testing.T) {
	j := &Job{Nodes: 16, Runtime: 600}
	if got := j.ProcSeconds(); got != 9600 {
		t.Fatalf("ProcSeconds = %d, want 9600", got)
	}
}

func TestOverestimationFactor(t *testing.T) {
	j := &Job{Runtime: 100, Estimate: 250}
	if got := j.OverestimationFactor(); got != 2.5 {
		t.Fatalf("factor = %v, want 2.5", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	j := validJob()
	c := j.Clone()
	c.Nodes = 99
	c.ID = 77
	if j.Nodes == 99 || j.ID == 77 {
		t.Fatal("clone shares state with original")
	}
}

func TestEffectiveRuntime(t *testing.T) {
	j := &Job{Runtime: 100}
	if j.EffectiveRuntime() != 100 {
		t.Fatalf("plain job effective runtime = %d", j.EffectiveRuntime())
	}
	j.ChainRuntime = 500
	if j.EffectiveRuntime() != 500 {
		t.Fatalf("segment effective runtime = %d, want chain 500", j.EffectiveRuntime())
	}
}

func TestTotalProcSecondsAndMaxNodes(t *testing.T) {
	jobs := []*Job{
		{Nodes: 2, Runtime: 10},
		{Nodes: 5, Runtime: 100},
		{Nodes: 3, Runtime: 1},
	}
	if got := TotalProcSeconds(jobs); got != 20+500+3 {
		t.Fatalf("TotalProcSeconds = %d", got)
	}
	if got := MaxNodes(jobs); got != 5 {
		t.Fatalf("MaxNodes = %d", got)
	}
	if MaxNodes(nil) != 0 || TotalProcSeconds(nil) != 0 {
		t.Fatal("empty slice aggregates should be zero")
	}
}

func TestStringMentionsKeyFields(t *testing.T) {
	s := validJob().String()
	for _, frag := range []string{"job 1", "user 3", "16 nodes"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

func TestValidateAllPropagatesJobError(t *testing.T) {
	bad := validJob()
	bad.Runtime = 0
	if err := ValidateAll([]*Job{bad}, 0); err == nil {
		t.Fatal("invalid job accepted by ValidateAll")
	}
}

func TestCloneQuickProperty(t *testing.T) {
	f := func(id int64, user, nodes int, runtime int64) bool {
		j := &Job{ID: ID(id), User: user, Nodes: nodes, Runtime: runtime}
		c := j.Clone()
		return *c == *j && c != j
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
