package job

import (
	"testing"
	"testing/quick"
)

func TestWidthCategoryBoundaries(t *testing.T) {
	cases := []struct {
		nodes int
		want  int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4},
		{17, 5}, {32, 5}, {33, 6}, {64, 6}, {65, 7}, {128, 7}, {129, 8},
		{256, 8}, {257, 9}, {512, 9}, {513, 10}, {10000, 10},
	}
	for _, tc := range cases {
		if got := WidthCategory(tc.nodes); got != tc.want {
			t.Errorf("WidthCategory(%d) = %d, want %d", tc.nodes, got, tc.want)
		}
	}
}

func TestLengthCategoryBoundaries(t *testing.T) {
	cases := []struct {
		runtime int64
		want    int
	}{
		{1, 0}, {899, 0}, {900, 1}, {3599, 1}, {3600, 2}, {4*3600 - 1, 2},
		{4 * 3600, 3}, {8 * 3600, 4}, {16 * 3600, 5}, {24 * 3600, 6},
		{48*3600 - 1, 6}, {48 * 3600, 7}, {1 << 40, 7},
	}
	for _, tc := range cases {
		if got := LengthCategory(tc.runtime); got != tc.want {
			t.Errorf("LengthCategory(%d) = %d, want %d", tc.runtime, got, tc.want)
		}
	}
}

func TestWidthBoundsRoundTrip(t *testing.T) {
	for cat := 0; cat < NumWidthCategories; cat++ {
		lo, hi := WidthBounds(cat)
		if got := WidthCategory(lo); got != cat {
			t.Errorf("cat %d: lower bound %d classifies as %d", cat, lo, got)
		}
		if hi == 0 {
			if cat != NumWidthCategories-1 {
				t.Errorf("cat %d: only the last category is open-ended", cat)
			}
			continue
		}
		if got := WidthCategory(hi); got != cat {
			t.Errorf("cat %d: upper bound %d classifies as %d", cat, hi, got)
		}
		if got := WidthCategory(hi + 1); got != cat+1 {
			t.Errorf("cat %d: %d should classify into the next category", cat, hi+1)
		}
	}
}

func TestLengthBoundsRoundTrip(t *testing.T) {
	for cat := 0; cat < NumLengthCategories; cat++ {
		lo, hi := LengthBounds(cat)
		if got := LengthCategory(lo); got != cat {
			t.Errorf("cat %d: lower bound %d classifies as %d", cat, lo, got)
		}
		if hi == 0 {
			if cat != NumLengthCategories-1 {
				t.Errorf("cat %d: only the last category is open-ended", cat)
			}
			continue
		}
		if got := LengthCategory(hi - 1); got != cat {
			t.Errorf("cat %d: %d (just below bound) classifies as %d", cat, hi-1, got)
		}
		if got := LengthCategory(hi); got != cat+1 {
			t.Errorf("cat %d: bound %d should classify into the next category", cat, hi)
		}
	}
}

func TestCell(t *testing.T) {
	j := &Job{Nodes: 40, Runtime: 5 * 3600}
	w, l := j.Cell()
	if w != 6 || l != 3 {
		t.Fatalf("Cell() = (%d,%d), want (6,3)", w, l)
	}
}

func TestCountGrid(t *testing.T) {
	jobs := []*Job{
		{Nodes: 1, Runtime: 60},
		{Nodes: 1, Runtime: 60},
		{Nodes: 600, Runtime: 3 * 24 * 3600},
	}
	g := CountGrid(jobs)
	if g[0][0] != 2 {
		t.Errorf("grid[0][0] = %d, want 2", g[0][0])
	}
	if g[10][7] != 1 {
		t.Errorf("grid[10][7] = %d, want 1", g[10][7])
	}
	total := 0
	for _, row := range g {
		for _, c := range row {
			total += c
		}
	}
	if total != len(jobs) {
		t.Errorf("grid total = %d, want %d", total, len(jobs))
	}
}

func TestProcHourGrid(t *testing.T) {
	jobs := []*Job{{Nodes: 10, Runtime: 3600}}
	g := ProcHourGrid(jobs)
	if got := g[4][2]; got != 10 {
		t.Fatalf("grid[4][2] = %v proc-hours, want 10", got)
	}
}

func TestCategoryQuickProperties(t *testing.T) {
	widthInRange := func(nodes uint16) bool {
		n := int(nodes)
		if n < 1 {
			n = 1
		}
		cat := WidthCategory(n)
		lo, hi := WidthBounds(cat)
		return n >= lo && (hi == 0 || n <= hi)
	}
	if err := quick.Check(widthInRange, nil); err != nil {
		t.Error(err)
	}
	lengthInRange := func(runtime uint32) bool {
		r := int64(runtime)
		if r < 1 {
			r = 1
		}
		cat := LengthCategory(r)
		lo, hi := LengthBounds(cat)
		return r >= lo && (hi == 0 || r < hi)
	}
	if err := quick.Check(lengthInRange, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelsCoverCategories(t *testing.T) {
	if len(WidthLabels) != NumWidthCategories {
		t.Fatal("width labels mismatch")
	}
	if len(LengthLabels) != NumLengthCategories {
		t.Fatal("length labels mismatch")
	}
	for _, l := range WidthLabels {
		if l == "" {
			t.Fatal("empty width label")
		}
	}
}
