// Package userdex provides a compact paged map keyed by user id, the
// interning layer behind the per-user hot paths (fairshare usage, SLO
// assignment lookup, the simulator's running-set aggregation index).
//
// Workload user-id spaces are dense in practice — archive traces and both
// generators number users from a small base — so the map is a slice of
// fixed-size pages with a presence bitmap per page: a lookup is two array
// indexes and a bit test instead of a hash probe, and iteration walks the
// pages in ascending key order for free. Pages are allocated on first
// touch, so memory tracks the occupied id range, not the declared one. A
// plain Go map catches everything the paged range cannot host (negative
// ids, ids past DenseCap), so any int key works; only its performance is
// second-class.
//
// A Map is not safe for concurrent mutation, but any number of readers
// may call Get/Len/Range concurrently once mutation has stopped (campaign
// cells share frozen SLO assignments across policy-parallel workers).
package userdex

import (
	"math/bits"
	"sort"
)

const (
	pageBits = 10
	// PageSize is the number of keys per page; one absent key in an
	// otherwise-occupied page costs sizeof(V) bytes, so the worst-case
	// overhead of an adversarially sparse key set is PageSize*sizeof(V)
	// per occupied page.
	PageSize = 1 << pageBits
	pageMask = PageSize - 1
	// DenseCap bounds the paged key range; keys at or above it (and
	// negative keys) fall back to the sparse map.
	DenseCap = 1 << 26
)

// page holds one aligned block of values with a presence bitmap.
type page[V any] struct {
	bits [PageSize / 64]uint64
	vals [PageSize]V
}

// Map is a paged dense map from user ids to V. The zero value is an empty
// map ready for use.
type Map[V any] struct {
	pages  []*page[V]
	sparse map[int]V
	n      int
}

// Len returns the number of stored keys.
func (m *Map[V]) Len() int { return m.n }

// Get returns the value for k.
func (m *Map[V]) Get(k int) (V, bool) {
	if uint(k) < DenseCap {
		if pi := k >> pageBits; pi < len(m.pages) {
			if p := m.pages[pi]; p != nil {
				o := k & pageMask
				if p.bits[o>>6]&(1<<(o&63)) != 0 {
					return p.vals[o], true
				}
			}
		}
		var zero V
		return zero, false
	}
	v, ok := m.sparse[k]
	return v, ok
}

// Set stores v under k.
func (m *Map[V]) Set(k int, v V) {
	if uint(k) < DenseCap {
		pi := k >> pageBits
		for pi >= len(m.pages) {
			m.pages = append(m.pages, nil)
		}
		p := m.pages[pi]
		if p == nil {
			p = new(page[V])
			m.pages[pi] = p
		}
		o := k & pageMask
		if p.bits[o>>6]&(1<<(o&63)) == 0 {
			p.bits[o>>6] |= 1 << (o & 63)
			m.n++
		}
		p.vals[o] = v
		return
	}
	if m.sparse == nil {
		m.sparse = make(map[int]V)
	}
	if _, ok := m.sparse[k]; !ok {
		m.n++
	}
	m.sparse[k] = v
}

// Delete removes k. The value slot is zeroed so pointer-carrying values do
// not leak past deletion.
func (m *Map[V]) Delete(k int) {
	if uint(k) < DenseCap {
		if pi := k >> pageBits; pi < len(m.pages) {
			if p := m.pages[pi]; p != nil {
				o := k & pageMask
				if p.bits[o>>6]&(1<<(o&63)) != 0 {
					p.bits[o>>6] &^= 1 << (o & 63)
					var zero V
					p.vals[o] = zero
					m.n--
				}
			}
		}
		return
	}
	if _, ok := m.sparse[k]; ok {
		delete(m.sparse, k)
		m.n--
	}
}

// Range visits every entry in ascending key order (negative sparse keys,
// then the paged range, then sparse keys past DenseCap) until f returns
// false. f must not mutate the map. The paged walk is allocation-free;
// a non-empty sparse fallback costs one sorted key slice per call.
func (m *Map[V]) Range(f func(k int, v V) bool) {
	var lo, hi []int
	if len(m.sparse) > 0 {
		for k := range m.sparse {
			if k < 0 {
				lo = append(lo, k)
			} else {
				hi = append(hi, k)
			}
		}
		sort.Ints(lo)
		sort.Ints(hi)
	}
	for _, k := range lo {
		if !f(k, m.sparse[k]) {
			return
		}
	}
	for pi, p := range m.pages {
		if p == nil {
			continue
		}
		for wi, w := range p.bits {
			for w != 0 {
				o := wi<<6 | bits.TrailingZeros64(w)
				if !f(pi<<pageBits|o, p.vals[o]) {
					return
				}
				w &= w - 1
			}
		}
	}
	for _, k := range hi {
		if !f(k, m.sparse[k]) {
			return
		}
	}
}
