package userdex

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMapMatchesReference drives a Map and a plain Go map through the same
// random operation stream — dense, adversarially sparse, negative and
// past-DenseCap keys — and requires identical contents after every batch.
func TestMapMatchesReference(t *testing.T) {
	keySpaces := [][]int{
		{0, 1, 2, 3, 1023, 1024, 1025, 4095},               // dense, page straddling
		{-5, -1, 0, 7, DenseCap - 1, DenseCap, 1 << 30},    // every fallback class
		{0, PageSize, 2 * PageSize, 7 * PageSize, 1 << 20}, // one key per page
	}
	for si, keys := range keySpaces {
		rng := rand.New(rand.NewSource(int64(si) + 1))
		var m Map[int]
		ref := map[int]int{}
		for op := 0; op < 5000; op++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Intn(1000)
				m.Set(k, v)
				ref[k] = v
			case 2:
				m.Delete(k)
				delete(ref, k)
			}
			if m.Len() != len(ref) {
				t.Fatalf("space %d op %d: Len %d, want %d", si, op, m.Len(), len(ref))
			}
		}
		for _, k := range keys {
			gv, gok := m.Get(k)
			rv, rok := ref[k]
			if gok != rok || gv != rv {
				t.Fatalf("space %d: Get(%d) = %d,%v want %d,%v", si, k, gv, gok, rv, rok)
			}
		}
		// Range must visit exactly the reference contents, in ascending order.
		var got []int
		m.Range(func(k, v int) bool {
			if rv, ok := ref[k]; !ok || rv != v {
				t.Fatalf("space %d: Range visited (%d,%d), reference has %d,%v", si, k, v, rv, ok)
			}
			got = append(got, k)
			return true
		})
		if len(got) != len(ref) {
			t.Fatalf("space %d: Range visited %d keys, want %d", si, len(got), len(ref))
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("space %d: Range order not ascending: %v", si, got)
		}
	}
}

func TestMapRangeEarlyStop(t *testing.T) {
	var m Map[string]
	for _, k := range []int{3, 1, 4, 1 << 28, -2} {
		m.Set(k, "x")
	}
	visits := 0
	m.Range(func(int, string) bool { visits++; return visits < 2 })
	if visits != 2 {
		t.Fatalf("Range visited %d entries after early stop, want 2", visits)
	}
}

func TestMapZeroValueUsable(t *testing.T) {
	var m Map[float64]
	if _, ok := m.Get(42); ok {
		t.Fatal("empty map reports a value")
	}
	m.Delete(42) // no-op, must not panic
	m.Range(func(int, float64) bool { t.Fatal("empty map visited an entry"); return false })
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

// BenchmarkGetDense compares the paged lookup against a Go map on a dense
// million-user id space (the population-scale hot-path shape).
func BenchmarkGetDense(b *testing.B) {
	const n = 1 << 20
	var m Map[int32]
	ref := make(map[int]int32, n)
	for i := 0; i < n; i++ {
		m.Set(i, int32(i))
		ref[i] = int32(i)
	}
	b.Run("paged", func(b *testing.B) {
		var sink int32
		for i := 0; i < b.N; i++ {
			v, _ := m.Get(i & (n - 1))
			sink += v
		}
		_ = sink
	})
	b.Run("map", func(b *testing.B) {
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += ref[i&(n-1)]
		}
		_ = sink
	})
}
