// Package slo is the per-user service-level-objective subsystem: targets
// (maximum acceptable queuing delay, maximum acceptable bounded slowdown)
// assigned to users by scenario transforms, and the accounting that turns a
// simulation run into per-user and per-class attainment.
//
// The paper's central argument is that aggregate metrics hide per-user
// unfairness — its fairness figures are per-user wait and fair-start-time
// deviations. An SLO assignment makes that slicing operational: every user
// carries an explicit target, and a campaign reports which user classes a
// policy serves and which it starves. Dell'Amico et al. ("On Fair
// Size-Based Scheduling") motivate exactly this view — size-based policies
// look excellent in aggregate while specific user classes starve — and Berg
// et al. (heSRPT) frame per-job slowdown targets that map directly onto the
// slowdown half of a Target.
//
// The accounting core (Tracker) is shared by the online observer
// (fairness.SLOObserver, fed by simulator hooks as the run progresses) and
// the post-run reference (FromRecords, a from-scratch walk over
// sim.Result.Records): both feed the same judgment functions, and a
// differential suite pins their outputs equal on every workload shape. All
// per-event updates are commutative (sums, counts, maxima with
// order-independent tie-breaks), so the online accrual order and the
// record-sorted replay order reach identical state.
package slo

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"fairsched/internal/job"
	"fairsched/internal/sim"
	"fairsched/internal/userdex"
)

// SlowdownBound is the runtime floor of the bounded-slowdown judgment,
// mirroring metrics.SlowdownBound (the conventional 10 seconds). It is
// redeclared here because metrics sits above the fairness packages that
// consume slo.
const SlowdownBound = 10

// Target is one user's service-level objectives. Zero fields mean "no
// target of that kind"; a Target with both fields zero is no SLO at all.
type Target struct {
	// Wait is the maximum acceptable queuing delay in seconds (0: none).
	Wait int64
	// Slowdown is the maximum acceptable bounded slowdown (0: none). The
	// bounded slowdown of a job is (wait + run') / run' with run' =
	// max(realized runtime, SlowdownBound).
	Slowdown float64
}

// IsZero reports whether the target carries no objective.
func (t Target) IsZero() bool { return t.Wait <= 0 && t.Slowdown <= 0 }

// UserTarget ties one user to its class and targets.
type UserTarget struct {
	User   int
	Class  string
	Target Target
}

// Class is one named group of users sharing a target (a quantile band, the
// default band, or a single explicitly-tagged user).
type Class struct {
	Name   string
	Target Target
	Users  int // users assigned to the class
}

// Assignment is an immutable user -> SLO mapping for one workload. Built
// once per campaign cell (from the transformed workload) and shared
// read-only by every policy run of the cell, including concurrent
// policy-parallel tasks.
type Assignment struct {
	classes  []Class
	classIdx map[string]int
	users    []UserTarget // ascending user id
	// idx maps user -> index into users on the paged user index: the
	// JobStarted/JobCompleted hooks hit it once per event, and at
	// population scale (quantile bands tag 10^5..10^6 users) the dense
	// pages beat a hash probe. Frozen at Build, so the concurrent
	// policy-parallel readers need no locking.
	idx     userdex.Map[int32]
	classOf []int // users[i]'s index into classes
}

// NumUsers returns how many users carry a target.
func (a *Assignment) NumUsers() int {
	if a == nil {
		return 0
	}
	return len(a.users)
}

// Users returns the tagged users in ascending user-id order. The returned
// slice is a copy; the assignment itself stays immutable.
func (a *Assignment) Users() []UserTarget {
	if a == nil {
		return nil
	}
	return append([]UserTarget(nil), a.users...)
}

// Classes returns the classes in registration order (quantile bands
// ascending, then the default band, then explicit users — the canonical
// grammar order when the assignment came from a scenario spec).
func (a *Assignment) Classes() []Class {
	if a == nil {
		return nil
	}
	return append([]Class(nil), a.classes...)
}

// Lookup returns the target assigned to a user.
func (a *Assignment) Lookup(user int) (UserTarget, bool) {
	if a == nil {
		return UserTarget{}, false
	}
	i, ok := a.idx.Get(user)
	if !ok {
		return UserTarget{}, false
	}
	return a.users[i], true
}

// WaitTarget returns the user's maximum acceptable queuing delay in
// seconds; ok is false when the user carries no wait target. It implements
// sched.DeadlineSource: a queued job's SLO deadline is submit + target.
func (a *Assignment) WaitTarget(user int) (int64, bool) {
	ut, ok := a.Lookup(user)
	if !ok || ut.Target.Wait <= 0 {
		return 0, false
	}
	return ut.Target.Wait, true
}

// Builder accumulates an Assignment: classes registered first (their
// registration order is the report order), users tagged into them.
// Re-registering a class replaces its target in place; re-tagging a user
// moves it — later scenario transforms override earlier ones.
type Builder struct {
	classes  []Class
	classIdx map[string]int
	users    map[int]string // user -> class name
}

// NewBuilder returns an empty assignment builder.
func NewBuilder() *Builder {
	return &Builder{classIdx: make(map[string]int), users: make(map[int]string)}
}

// AddClass registers (or re-targets) a class.
func (b *Builder) AddClass(name string, t Target) {
	if i, ok := b.classIdx[name]; ok {
		b.classes[i].Target = t
		return
	}
	b.classIdx[name] = len(b.classes)
	b.classes = append(b.classes, Class{Name: name, Target: t})
}

// Tag assigns a user to a registered class; it panics on an unknown class
// (a programming error — the scenario parser registers every class it
// names).
func (b *Builder) Tag(user int, class string) {
	if _, ok := b.classIdx[class]; !ok {
		panic(fmt.Sprintf("slo: Tag(%d, %q): unregistered class", user, class))
	}
	b.users[user] = class
}

// Build freezes the assignment. Classes that tagged no users are kept (the
// report shows them empty); nil is returned when no user carries a
// non-zero target.
func (b *Builder) Build() *Assignment {
	a := &Assignment{
		classes:  append([]Class(nil), b.classes...),
		classIdx: make(map[string]int, len(b.classes)),
	}
	for i, c := range a.classes {
		a.classIdx[c.Name] = i
	}
	ids := make([]int, 0, len(b.users))
	for u := range b.users {
		ids = append(ids, u)
	}
	sort.Ints(ids)
	for _, u := range ids {
		ci := a.classIdx[b.users[u]]
		if a.classes[ci].Target.IsZero() {
			continue // best-effort class: no objective, nothing to track
		}
		a.idx.Set(u, int32(len(a.users)))
		a.users = append(a.users, UserTarget{User: u, Class: a.classes[ci].Name, Target: a.classes[ci].Target})
		a.classOf = append(a.classOf, ci)
		a.classes[ci].Users++
	}
	if len(a.users) == 0 {
		return nil
	}
	return a
}

// UserStats accrues one user's SLO outcomes over a run. Every field is
// accrued commutatively, so online (event-order) and post-run
// (record-order) accounting agree exactly.
type UserStats struct {
	User  int
	Class string
	// Jobs counts the measured logical jobs: split-chain restarts
	// (Segment > 1) are skipped, mirroring the fairness metric — the chain
	// was judged once, at its first segment.
	Jobs int
	// Attained counts jobs that met every applicable target.
	Attained int
	// WaitBreaches counts jobs whose queuing delay exceeded Target.Wait,
	// with the excess accrued into TotalWaitBreach and the breach
	// distribution (per class).
	WaitBreaches    int
	TotalWaitBreach int64 // seconds of excess wait, summed over breaches
	WorstWaitBreach int64 // largest single excess
	// WorstWaitJob identifies the worst breach (ties: lower job id).
	WorstWaitJob job.ID
	// UnfairWait counts wait breaches the fair reference schedule would
	// have avoided (fair start within target): the policy's ordering, not
	// the offered load, caused the miss. InfeasibleWait counts breaches
	// where even the fair start misses the target — the objective was
	// unattainable under the contention at arrival. Both stay zero when no
	// fair-start signal is attached.
	UnfairWait     int
	InfeasibleWait int
	// SlowBreaches counts jobs whose bounded slowdown exceeded
	// Target.Slowdown; WorstSlowdown is the largest observed.
	SlowBreaches  int
	WorstSlowdown float64
}

// Tracker is the accounting core: per-user counters in a dense slice plus
// one breach histogram per class, all preallocated at construction so the
// steady-state judgment path allocates nothing.
type Tracker struct {
	asg     *Assignment
	users   []UserStats // aligned with asg.users
	hists   [][]int64   // per class: breach-magnitude histogram
	allHist []int64     // all classes combined (the report's total row)
	// chained enables chain-level slowdown judgment for SplitChained runs
	// (see SetChained); chains holds the in-flight chain states, keyed by
	// the original job's id.
	chained bool
	chains  map[job.ID]*chainState
}

// chainState carries a split chain's accounting between its first
// segment's start and its last segment's completion (chained mode only).
type chainState struct {
	si     int   // index into Tracker.users
	submit int64 // the original submission time (segment 1's Submit)
	waitOK bool  // segment 1 met the wait target
	runSum int64 // realized runtime summed over completed segments
}

// SetChained selects chain-level slowdown judgment for runs splitting
// jobs with sim.SplitChained: a chain's slowdown is judged once, at its
// LAST segment's completion, as (last completion - original submit) over
// the chain's total realized runtime — so requeue delays between segments
// are priced into the objective (DESIGN.md §11). The wait target is still
// judged at the first segment's start (the chain's queuing delay). In the
// default (non-chained) mode, restarts are skipped and the chain is
// judged once at its first segment.
//
// Killed chains are judged on realized service: a chain whose final
// segment dies at its wall-clock limit still resolves at that kill (kills
// run the same completion hooks), with runSum summing what actually ran —
// consistent with the non-chained convention that a killed job's slowdown
// uses its realized (truncated) runtime. Interior split segments cannot
// be killed (their estimate equals their runtime by construction), so a
// chain always reaches its final segment and no chain state outlives the
// run. The same holds for preemption-created chains: the remainder always
// resubmits and eventually completes (or is killed at its clamped
// estimate, which also resolves the chain).
func (t *Tracker) SetChained(on bool) { t.chained = on }

// UserBreached reports whether the user has at least one breach (wait or
// slowdown) on the books so far this run. fairness.SLOObserver forwards it
// as the online breach-risk signal behind sched.BreachRisk: the
// deadline-aware order promotes a user's queued jobs once the user starts
// breaching. Users outside the assignment never read as breached.
func (t *Tracker) UserBreached(user int) bool {
	si, ok := t.asg.idx.Get(user)
	if !ok {
		return false
	}
	u := &t.users[si]
	return u.WaitBreaches > 0 || u.SlowBreaches > 0
}

// NewTracker builds a tracker over an assignment. The assignment is read
// only; one tracker serves one run. A nil assignment (Builder.Build with
// no trackable user) yields an empty tracker: nothing is measured.
func NewTracker(asg *Assignment) *Tracker {
	if asg == nil {
		asg = &Assignment{}
	}
	t := &Tracker{
		asg:     asg,
		users:   make([]UserStats, len(asg.users)),
		hists:   make([][]int64, len(asg.classes)),
		allHist: make([]int64, numBreachBins),
	}
	for i, ut := range asg.users {
		t.users[i] = UserStats{User: ut.User, Class: ut.Class}
	}
	for i := range t.hists {
		t.hists[i] = make([]int64, numBreachBins)
	}
	return t
}

// JobStarted judges the wait-time half of a job's SLO the moment it
// starts: queueing delay against Target.Wait, and — when a fair start time
// is supplied — whether a breach was the policy's doing (the fair
// reference schedule met the target) or infeasible under the contention at
// arrival. Jobs with no slowdown target settle their overall attainment
// here; the rest settle at JobCompleted. Split-chain restarts are skipped.
func (t *Tracker) JobStarted(j *job.Job, start, fairStart int64, hasFST bool) {
	if j.Segment > 1 {
		return
	}
	si, ok := t.asg.idx.Get(j.User)
	if !ok {
		return
	}
	u := &t.users[si]
	tgt := t.asg.users[si].Target
	u.Jobs++
	wait := start - j.Submit
	waitOK := tgt.Wait <= 0 || wait <= tgt.Wait
	if !waitOK {
		breach := wait - tgt.Wait
		u.WaitBreaches++
		u.TotalWaitBreach += breach
		if breach > u.WorstWaitBreach || (breach == u.WorstWaitBreach && j.ID < u.WorstWaitJob) {
			u.WorstWaitBreach = breach
			u.WorstWaitJob = j.ID
		}
		if hasFST {
			if fairStart-j.Submit <= tgt.Wait {
				u.UnfairWait++
			} else {
				u.InfeasibleWait++
			}
		}
		bin := breachBin(breach)
		t.hists[t.asg.classOf[si]][bin]++
		t.allHist[bin]++
	}
	if tgt.Slowdown <= 0 {
		if waitOK {
			u.Attained++
		}
		return
	}
	if t.chained && j.Parent != 0 && j.Segments > 1 {
		// Chain-level slowdown: remember the first segment's outcome until
		// the last segment completes.
		if t.chains == nil {
			t.chains = make(map[job.ID]*chainState)
		}
		t.chains[j.Parent] = &chainState{si: int(si), submit: j.Submit, waitOK: waitOK}
	}
}

// JobCompleted judges the slowdown half at completion (the realized
// runtime is only known then) and settles overall attainment for jobs
// carrying a slowdown target. The wait outcome is recomputed from (start,
// submit) — both are in hand — so no per-job state survives between the
// two hooks. Split-chain restarts are skipped.
func (t *Tracker) JobCompleted(j *job.Job, start, complete int64) {
	if t.chained && j.Parent != 0 && j.Segments > 1 {
		t.chainCompleted(j, start, complete)
		return
	}
	if j.Segment > 1 {
		return
	}
	si, ok := t.asg.idx.Get(j.User)
	if !ok {
		return
	}
	tgt := t.asg.users[si].Target
	if tgt.Slowdown <= 0 {
		return // attainment settled at start
	}
	u := &t.users[si]
	wait := start - j.Submit
	run := float64(complete - start)
	if run < SlowdownBound {
		run = SlowdownBound
	}
	slow := (float64(wait) + run) / run
	slowOK := slow <= tgt.Slowdown
	if !slowOK {
		u.SlowBreaches++
		if slow > u.WorstSlowdown {
			u.WorstSlowdown = slow
		}
	}
	if slowOK && (tgt.Wait <= 0 || wait <= tgt.Wait) {
		u.Attained++
	}
}

// chainCompleted accrues one chain segment's realized runtime and, at the
// last segment, judges the chain's slowdown against the original submit:
// slow = (total wait + run') / run' with run' = max(total realized
// runtime, SlowdownBound) and total wait = last completion - original
// submit - total runtime. Chains whose user carries no slowdown target
// (or no target at all) have no state and are skipped — their attainment
// settled at the first segment's start.
func (t *Tracker) chainCompleted(j *job.Job, start, complete int64) {
	st, ok := t.chains[j.Parent]
	if !ok {
		// No state with a head segment in hand means the chain was created
		// mid-flight by checkpoint preemption: the head started as an
		// ordinary job (no chain markers yet), so JobStarted recorded
		// nothing. The simulator mutates the head's Job in place before
		// completing it and leaves Submit untouched, so everything
		// JobStarted would have seen is still here — recreate the state
		// retroactively, exactly as a FromRecordsChained replay would.
		// Stateless NON-head segments belong to users with no slowdown
		// target (or no target at all); their attainment settled at the
		// head's start.
		if j.Segment != 1 {
			return
		}
		si, idxOK := t.asg.idx.Get(j.User)
		if !idxOK {
			return
		}
		tgt := t.asg.users[si].Target
		if tgt.Slowdown <= 0 {
			return
		}
		wait := start - j.Submit
		st = &chainState{si: int(si), submit: j.Submit, waitOK: tgt.Wait <= 0 || wait <= tgt.Wait}
		if t.chains == nil {
			t.chains = make(map[job.ID]*chainState)
		}
		t.chains[j.Parent] = st
	}
	st.runSum += complete - start
	if j.Segment < j.Segments {
		return
	}
	delete(t.chains, j.Parent)
	u := &t.users[st.si]
	tgt := t.asg.users[st.si].Target
	run := float64(st.runSum)
	if run < SlowdownBound {
		run = SlowdownBound
	}
	waits := float64(complete - st.submit - st.runSum)
	slow := (waits + run) / run
	slowOK := slow <= tgt.Slowdown
	if !slowOK {
		u.SlowBreaches++
		if slow > u.WorstSlowdown {
			u.WorstSlowdown = slow
		}
	}
	if slowOK && st.waitOK {
		u.Attained++
	}
}

// Merge folds another tracker over the same assignment into t: counters
// sum, maxima combine with their order-independent tie-breaks, histograms
// add bin-wise. Partitioned runs track each partition with its own
// tracker and merge afterwards; since every accrual is commutative, the
// merged state equals a single tracker fed all partitions' events.
// Both trackers must be fully settled (no in-flight chains).
func (t *Tracker) Merge(o *Tracker) {
	if len(t.chains) > 0 || len(o.chains) > 0 {
		panic("slo: Merge with in-flight chain state")
	}
	for i := range t.users {
		u, ou := &t.users[i], &o.users[i]
		u.Jobs += ou.Jobs
		u.Attained += ou.Attained
		u.WaitBreaches += ou.WaitBreaches
		u.TotalWaitBreach += ou.TotalWaitBreach
		if ou.WorstWaitBreach > u.WorstWaitBreach ||
			(ou.WorstWaitBreach == u.WorstWaitBreach && ou.WorstWaitBreach > 0 && ou.WorstWaitJob < u.WorstWaitJob) {
			u.WorstWaitBreach = ou.WorstWaitBreach
			u.WorstWaitJob = ou.WorstWaitJob
		}
		u.UnfairWait += ou.UnfairWait
		u.InfeasibleWait += ou.InfeasibleWait
		u.SlowBreaches += ou.SlowBreaches
		if ou.WorstSlowdown > u.WorstSlowdown {
			u.WorstSlowdown = ou.WorstSlowdown
		}
	}
	for ci := range t.hists {
		for b := range t.hists[ci] {
			t.hists[ci][b] += o.hists[ci][b]
		}
	}
	for b := range t.allHist {
		t.allHist[b] += o.allHist[b]
	}
}

// PerUser returns a copy of the per-user stats in ascending user-id order.
func (t *Tracker) PerUser() []UserStats {
	return append([]UserStats(nil), t.users...)
}

// ClassStats aggregates one class's outcomes for reporting.
type ClassStats struct {
	Class  string
	Target Target
	// Users counts the class's tagged users; ActiveUsers those with at
	// least one measured job this run.
	Users       int
	ActiveUsers int
	Jobs        int
	Attained    int
	// Wait-breach aggregation (counts, fair/infeasible split, magnitudes).
	WaitBreaches    int
	UnfairWait      int
	InfeasibleWait  int
	TotalWaitBreach int64
	WorstWaitBreach int64
	SlowBreaches    int
	// BreachP95 is the 95th percentile of the wait-breach magnitudes,
	// estimated from the class's breach histogram (upper edge of the
	// covering bin, ≤ 12.5% relative error; see breachBin). 0 when the
	// class had no wait breaches.
	BreachP95 int64
}

// AttainPct returns the share of measured jobs that met every applicable
// target, 0..100; 100 for a class with no jobs (nothing was violated).
func (c ClassStats) AttainPct() float64 {
	if c.Jobs == 0 {
		return 100
	}
	return 100 * float64(c.Attained) / float64(c.Jobs)
}

// Breached returns the jobs that missed at least one target.
func (c ClassStats) Breached() int { return c.Jobs - c.Attained }

// MaxOffenders bounds the worst-offender list a Summary carries: the
// top-K most-breached users of the run. K is a small constant so a cell
// summary stays memory-light no matter how many users the scenario tagged.
const MaxOffenders = 3

// Summary is the per-run SLO report: one row per class plus the combined
// total. It is memory-light (no unbounded per-user rows — Offenders is
// capped at MaxOffenders) so campaign cell summaries can carry one per
// policy.
type Summary struct {
	Classes []ClassStats
	Total   ClassStats // Class "(all)", Target zero
	// Offenders are the most-breached users, worst first: most breached
	// jobs, ties broken by larger total wait-breach excess, then lower
	// user id — an order-independent ranking, so online and reference
	// accounting select identical offenders. Empty when every tagged user
	// attained every target.
	Offenders []UserStats
}

// Summary aggregates the tracker into class rows. Assembly walks the
// per-user states and histograms once — O(users + classes), never the
// records.
func (t *Tracker) Summary() *Summary {
	s := &Summary{Classes: make([]ClassStats, len(t.asg.classes))}
	for i, c := range t.asg.classes {
		s.Classes[i] = ClassStats{Class: c.Name, Target: c.Target, Users: c.Users}
	}
	for i := range t.users {
		u := &t.users[i]
		c := &s.Classes[t.asg.classOf[i]]
		if u.Jobs > 0 {
			c.ActiveUsers++
		}
		c.Jobs += u.Jobs
		c.Attained += u.Attained
		c.WaitBreaches += u.WaitBreaches
		c.UnfairWait += u.UnfairWait
		c.InfeasibleWait += u.InfeasibleWait
		c.TotalWaitBreach += u.TotalWaitBreach
		if u.WorstWaitBreach > c.WorstWaitBreach {
			c.WorstWaitBreach = u.WorstWaitBreach
		}
		c.SlowBreaches += u.SlowBreaches
	}
	s.Total = ClassStats{Class: "(all)"}
	for i := range s.Classes {
		c := &s.Classes[i]
		c.BreachP95 = histP95(t.hists[i])
		s.Total.Users += c.Users
		s.Total.ActiveUsers += c.ActiveUsers
		s.Total.Jobs += c.Jobs
		s.Total.Attained += c.Attained
		s.Total.WaitBreaches += c.WaitBreaches
		s.Total.UnfairWait += c.UnfairWait
		s.Total.InfeasibleWait += c.InfeasibleWait
		s.Total.TotalWaitBreach += c.TotalWaitBreach
		if c.WorstWaitBreach > s.Total.WorstWaitBreach {
			s.Total.WorstWaitBreach = c.WorstWaitBreach
		}
		s.Total.SlowBreaches += c.SlowBreaches
	}
	s.Total.BreachP95 = histP95(t.allHist)
	s.Offenders = t.offenders(MaxOffenders)
	return s
}

// Breached returns the user's jobs that missed at least one target.
func (u *UserStats) Breached() int { return u.Jobs - u.Attained }

// worseOffender ranks two users: more breached jobs first, then larger
// total wait-breach excess, then lower user id. Every key is accrued
// commutatively, so the ranking is independent of accounting order.
func worseOffender(a, b *UserStats) bool {
	if a.Breached() != b.Breached() {
		return a.Breached() > b.Breached()
	}
	if a.TotalWaitBreach != b.TotalWaitBreach {
		return a.TotalWaitBreach > b.TotalWaitBreach
	}
	return a.User < b.User
}

// offenders selects the top-k most-breached users in one bounded pass over
// the per-user states: a k-slot insertion list, never a sort of the full
// user population, so the cost is O(users × k) time and O(k) space even
// over the large tagged populations the quantile bands produce.
func (t *Tracker) offenders(k int) []UserStats {
	top := make([]UserStats, 0, k)
	for i := range t.users {
		u := &t.users[i]
		if u.Breached() == 0 {
			continue
		}
		if len(top) == k && !worseOffender(u, &top[k-1]) {
			continue
		}
		pos := len(top)
		for pos > 0 && worseOffender(u, &top[pos-1]) {
			pos--
		}
		if len(top) < k {
			top = append(top, UserStats{})
		}
		copy(top[pos+1:], top[pos:])
		top[pos] = *u
	}
	return top
}

// sloFields maps each per-class metric key to its accessor, in listing
// order. The hypothesis harness addresses them as "slo.<class>.<field>"
// with class "all" resolving to the combined total row.
var sloFields = []struct {
	key string
	get func(ClassStats) float64
}{
	{"attain_pct", func(c ClassStats) float64 { return c.AttainPct() }},
	{"jobs", func(c ClassStats) float64 { return float64(c.Jobs) }},
	{"attained", func(c ClassStats) float64 { return float64(c.Attained) }},
	{"breached", func(c ClassStats) float64 { return float64(c.Breached()) }},
	{"users", func(c ClassStats) float64 { return float64(c.Users) }},
	{"active_users", func(c ClassStats) float64 { return float64(c.ActiveUsers) }},
	{"wait_breaches", func(c ClassStats) float64 { return float64(c.WaitBreaches) }},
	{"unfair_wait", func(c ClassStats) float64 { return float64(c.UnfairWait) }},
	{"infeasible_wait", func(c ClassStats) float64 { return float64(c.InfeasibleWait) }},
	{"total_wait_breach", func(c ClassStats) float64 { return float64(c.TotalWaitBreach) }},
	{"worst_wait_breach", func(c ClassStats) float64 { return float64(c.WorstWaitBreach) }},
	{"slow_breaches", func(c ClassStats) float64 { return float64(c.SlowBreaches) }},
	{"breach_p95", func(c ClassStats) float64 { return float64(c.BreachP95) }},
}

// FieldKeys lists the per-class metric keys in listing order.
func FieldKeys() []string {
	out := make([]string, len(sloFields))
	for i, f := range sloFields {
		out[i] = f.key
	}
	return out
}

// ValueByKey resolves a "<class>.<field>" metric key against the summary;
// class "all" addresses the combined total row. A class the assignment
// never registered is an error, not a zero — a hypothesis naming a stale
// class must refute loudly.
func (s *Summary) ValueByKey(key string) (float64, error) {
	class, field, ok := strings.Cut(key, ".")
	if !ok {
		return 0, fmt.Errorf("slo: metric key %q: want <class>.<field> (class \"all\" for the total row)", key)
	}
	var row *ClassStats
	if class == "all" {
		row = &s.Total
	} else {
		for i := range s.Classes {
			if s.Classes[i].Class == class {
				row = &s.Classes[i]
				break
			}
		}
	}
	if row == nil {
		names := make([]string, len(s.Classes))
		for i, c := range s.Classes {
			names[i] = c.Class
		}
		return 0, fmt.Errorf("slo: metric key %q: unknown class %q (have %s, and \"all\")",
			key, class, strings.Join(names, ", "))
	}
	for _, f := range sloFields {
		if f.key == field {
			return f.get(*row), nil
		}
	}
	return 0, fmt.Errorf("slo: metric key %q: unknown field %q (want %s)",
		key, field, strings.Join(FieldKeys(), ", "))
}

// FromRecords is the post-run reference: a from-scratch replay of the
// finished records through a fresh tracker, judging each record with the
// same functions the online observer uses. The differential suite pins the
// observer byte-identical to this on every workload shape.
func FromRecords(asg *Assignment, records []*sim.Record, fst map[job.ID]int64) *Tracker {
	return fromRecords(asg, records, fst, false)
}

// FromRecordsChained is FromRecords with chain-level slowdown judgment
// (SetChained), the reference for SplitChained runs. Records are sorted
// by (submit, id) and a chain's segment submits strictly increase, so the
// replay meets segments in chain order just as the online observer does.
func FromRecordsChained(asg *Assignment, records []*sim.Record, fst map[job.ID]int64) *Tracker {
	return fromRecords(asg, records, fst, true)
}

func fromRecords(asg *Assignment, records []*sim.Record, fst map[job.ID]int64, chained bool) *Tracker {
	t := NewTracker(asg)
	t.SetChained(chained)
	for _, r := range records {
		f, ok := fst[r.Job.ID]
		t.JobStarted(r.Job, r.Start, f, ok)
		t.JobCompleted(r.Job, r.Start, r.Complete)
	}
	return t
}

// Breach histogram: sub-binned powers of two (an HDR-histogram-style
// layout). Values below 2^subBits land in their own exact bin; above that,
// each power-of-two range splits into 2^subBits equal sub-ranges, so a
// quantile read off the bin edges carries at most 1/2^subBits relative
// error. Integer-only, so the online and reference paths agree bit for bit
// on every platform.
const (
	subBits       = 3 // 8 sub-bins per octave: ≤ 12.5% quantile error
	numBreachBins = (63 - subBits + 1) << subBits
)

// breachBin maps a positive breach magnitude (seconds) to its bin.
func breachBin(v int64) int {
	if v < 1<<subBits {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // e >= subBits
	shift := e - subBits
	return int(int64(shift+1)<<subBits) + int((v>>shift)&(1<<subBits-1))
}

// binUpperEdge returns the largest value mapping to bin b (the quantile
// estimate read back from the histogram).
func binUpperEdge(b int) int64 {
	block := b >> subBits
	if block == 0 {
		return int64(b)
	}
	off := int64(b & (1<<subBits - 1))
	e := block + subBits - 1
	lo := int64(1)<<e + off<<(e-subBits)
	return lo + int64(1)<<(e-subBits) - 1
}

// histP95 returns the 95th-percentile upper-edge estimate of a breach
// histogram, 0 for an empty one.
func histP95(hist []int64) int64 {
	var n int64
	for _, c := range hist {
		n += c
	}
	if n == 0 {
		return 0
	}
	rank := (95*n + 99) / 100 // 1-based ceiling rank
	var cum int64
	for b, c := range hist {
		cum += c
		if cum >= rank {
			return binUpperEdge(b)
		}
	}
	return binUpperEdge(len(hist) - 1)
}
