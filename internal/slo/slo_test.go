package slo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

func testAssignment() *Assignment {
	b := NewBuilder()
	b.AddClass("p50", Target{Wait: 100})
	b.AddClass("p90", Target{Wait: 1000, Slowdown: 8})
	b.AddClass("default", Target{Slowdown: 4})
	b.Tag(1, "p50")
	b.Tag(2, "p50")
	b.Tag(3, "p90")
	b.Tag(4, "default")
	return b.Build()
}

func TestBuilderOrderAndOverride(t *testing.T) {
	a := testAssignment()
	if a.NumUsers() != 4 {
		t.Fatalf("users = %d, want 4", a.NumUsers())
	}
	cs := a.Classes()
	if len(cs) != 3 || cs[0].Name != "p50" || cs[1].Name != "p90" || cs[2].Name != "default" {
		t.Fatalf("class order wrong: %+v", cs)
	}
	if cs[0].Users != 2 || cs[1].Users != 1 || cs[2].Users != 1 {
		t.Fatalf("class user counts wrong: %+v", cs)
	}
	ut, ok := a.Lookup(3)
	if !ok || ut.Class != "p90" || ut.Target.Wait != 1000 || ut.Target.Slowdown != 8 {
		t.Fatalf("Lookup(3) = %+v, %v", ut, ok)
	}
	if _, ok := a.Lookup(99); ok {
		t.Fatal("untagged user resolved")
	}

	// Re-tagging moves the user; re-registering a class re-targets it.
	b := NewBuilder()
	b.AddClass("a", Target{Wait: 10})
	b.AddClass("b", Target{Wait: 20})
	b.Tag(1, "a")
	b.Tag(1, "b")
	b.AddClass("a", Target{Wait: 30})
	a2 := b.Build()
	if ut, _ := a2.Lookup(1); ut.Class != "b" || ut.Target.Wait != 20 {
		t.Fatalf("re-tag lost: %+v", ut)
	}
	if a2.Classes()[0].Target.Wait != 30 {
		t.Fatalf("re-registered class target not replaced: %+v", a2.Classes()[0])
	}
}

func TestBuildDropsZeroTargets(t *testing.T) {
	b := NewBuilder()
	b.AddClass("besteffort", Target{})
	b.Tag(1, "besteffort")
	if a := b.Build(); a != nil {
		t.Fatalf("assignment with only zero targets should be nil, got %+v", a)
	}
}

// Every Assignment accessor — and the tracker built over one — must
// tolerate the nil value Build returns for an empty assignment.
func TestNilAssignmentSafe(t *testing.T) {
	var a *Assignment
	if a.NumUsers() != 0 || a.Users() != nil || a.Classes() != nil {
		t.Fatal("nil assignment accessors not empty")
	}
	if _, ok := a.Lookup(1); ok {
		t.Fatal("nil assignment resolved a user")
	}
	tr := NewTracker(nil)
	j := &job.Job{ID: 1, User: 1, Submit: 0, Runtime: 10, Estimate: 10, Nodes: 1}
	tr.JobStarted(j, 5, 0, false)
	tr.JobCompleted(j, 5, 15)
	if s := tr.Summary(); s.Total.Jobs != 0 || len(s.Classes) != 0 {
		t.Fatalf("nil-assignment tracker measured something: %+v", s)
	}
	if s := FromRecords(nil, []*sim.Record{{Job: j, Start: 5, Complete: 15}}, nil).Summary(); s.Total.Jobs != 0 {
		t.Fatalf("nil-assignment reference measured something: %+v", s)
	}
}

func TestTrackerWaitJudgment(t *testing.T) {
	a := testAssignment()
	tr := NewTracker(a)
	j := &job.Job{ID: 7, User: 1, Submit: 0, Runtime: 50, Estimate: 50, Nodes: 1}
	// Within target: attained at start (user 1 has no slowdown target).
	tr.JobStarted(j, 100, 0, false)
	tr.JobCompleted(j, 100, 150)
	// Breach of 60s, fair start within target -> unfair breach.
	j2 := &job.Job{ID: 8, User: 1, Submit: 0, Runtime: 50, Estimate: 50, Nodes: 1}
	tr.JobStarted(j2, 160, 90, true)
	tr.JobCompleted(j2, 160, 210)
	// Breach of 900s, fair start also over target -> infeasible.
	j3 := &job.Job{ID: 9, User: 1, Submit: 0, Runtime: 50, Estimate: 50, Nodes: 1}
	tr.JobStarted(j3, 1000, 500, true)
	tr.JobCompleted(j3, 1000, 1050)

	u := tr.PerUser()[0]
	want := UserStats{
		User: 1, Class: "p50", Jobs: 3, Attained: 1,
		WaitBreaches: 2, TotalWaitBreach: 960, WorstWaitBreach: 900, WorstWaitJob: 9,
		UnfairWait: 1, InfeasibleWait: 1,
	}
	if u != want {
		t.Fatalf("user stats = %+v, want %+v", u, want)
	}
	s := tr.Summary()
	if s.Classes[0].WaitBreaches != 2 || s.Classes[0].UnfairWait != 1 || s.Classes[0].InfeasibleWait != 1 {
		t.Fatalf("class stats wrong: %+v", s.Classes[0])
	}
	if got := s.Classes[0].AttainPct(); math.Abs(got-100.0/3) > 1e-9 {
		t.Fatalf("attain%% = %v", got)
	}
	// p95 over breaches {60, 900}: rank 2 -> the 900 bin's upper edge.
	if s.Classes[0].BreachP95 < 900 || s.Classes[0].BreachP95 > 1024 {
		t.Fatalf("breach p95 = %d, want within [900, 1024]", s.Classes[0].BreachP95)
	}
}

func TestTrackerSlowdownJudgment(t *testing.T) {
	a := testAssignment()
	tr := NewTracker(a)
	// User 3: wait 1000, slowdown 8. Job runs 100s after waiting 500s:
	// slowdown (500+100)/100 = 6 <= 8, wait ok -> attained at completion.
	j := &job.Job{ID: 1, User: 3, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 1}
	tr.JobStarted(j, 500, 0, false)
	if tr.PerUser()[2].Attained != 0 {
		t.Fatal("slowdown-target job attained before completion")
	}
	tr.JobCompleted(j, 500, 600)
	if u := tr.PerUser()[2]; u.Attained != 1 || u.Jobs != 1 {
		t.Fatalf("stats = %+v", u)
	}
	// Wait ok but slowdown breached: (900+100)/100 = 10 > 8.
	j2 := &job.Job{ID: 2, User: 3, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 1}
	tr.JobStarted(j2, 900, 0, false)
	tr.JobCompleted(j2, 900, 1000)
	u := tr.PerUser()[2]
	if u.Attained != 1 || u.SlowBreaches != 1 || u.WorstSlowdown != 10 || u.WaitBreaches != 0 {
		t.Fatalf("stats = %+v", u)
	}
	// Short job: the bound clamps the denominator. Wait 95s, run 1s ->
	// (95+10)/10 = 10.5 > 8.
	j3 := &job.Job{ID: 3, User: 3, Submit: 0, Runtime: 1, Estimate: 1, Nodes: 1}
	tr.JobStarted(j3, 95, 0, false)
	tr.JobCompleted(j3, 95, 96)
	if u := tr.PerUser()[2]; u.SlowBreaches != 2 || u.WorstSlowdown != 10.5 {
		t.Fatalf("bounded slowdown wrong: %+v", u)
	}
}

func TestTrackerSkipsRestartsAndUntagged(t *testing.T) {
	a := testAssignment()
	tr := NewTracker(a)
	restart := &job.Job{ID: 5, User: 1, Submit: 0, Runtime: 10, Estimate: 10, Nodes: 1,
		Parent: 4, Segment: 2, Segments: 3}
	tr.JobStarted(restart, 5000, 0, false)
	tr.JobCompleted(restart, 5000, 5010)
	untagged := &job.Job{ID: 6, User: 42, Submit: 0, Runtime: 10, Estimate: 10, Nodes: 1}
	tr.JobStarted(untagged, 5000, 0, false)
	tr.JobCompleted(untagged, 5000, 5010)
	for _, u := range tr.PerUser() {
		if u.Jobs != 0 {
			t.Fatalf("restart or untagged job measured: %+v", u)
		}
	}
	// A chain's first segment IS measured.
	first := &job.Job{ID: 7, User: 1, Submit: 0, Runtime: 10, Estimate: 10, Nodes: 1,
		Parent: 4, Segment: 1, Segments: 3, ChainRuntime: 30}
	tr.JobStarted(first, 50, 0, false)
	if tr.PerUser()[0].Jobs != 1 {
		t.Fatal("first segment not measured")
	}
}

// The tracker's updates are commutative: feeding the same outcomes in any
// order reaches the identical state (the invariant that makes the online
// observer equal to the record-ordered reference).
func TestTrackerOrderIndependence(t *testing.T) {
	a := testAssignment()
	type ev struct {
		j     *job.Job
		start int64
		fst   int64
		has   bool
	}
	rng := rand.New(rand.NewSource(3))
	var evs []ev
	for i := 0; i < 200; i++ {
		evs = append(evs, ev{
			j: &job.Job{ID: job.ID(i + 1), User: rng.Intn(6), Submit: rng.Int63n(100),
				Runtime: rng.Int63n(400) + 1, Estimate: 10, Nodes: 1},
			start: rng.Int63n(5000) + 100,
			fst:   rng.Int63n(5000) + 100,
			has:   rng.Intn(2) == 0,
		})
	}
	run := func(order []int) *Tracker {
		tr := NewTracker(a)
		for _, i := range order {
			e := evs[i]
			tr.JobStarted(e.j, e.start, e.fst, e.has)
			tr.JobCompleted(e.j, e.start, e.start+e.j.Runtime)
		}
		return tr
	}
	fwd := make([]int, len(evs))
	for i := range fwd {
		fwd[i] = i
	}
	shuffled := append([]int(nil), fwd...)
	rng.Shuffle(len(shuffled), func(i, k int) { shuffled[i], shuffled[k] = shuffled[k], shuffled[i] })
	ta, tb := run(fwd), run(shuffled)
	if !reflect.DeepEqual(ta.PerUser(), tb.PerUser()) {
		t.Fatal("per-user stats depend on event order")
	}
	if !reflect.DeepEqual(ta.Summary(), tb.Summary()) {
		t.Fatal("summary depends on event order")
	}
}

func TestFromRecordsMatchesManualFeed(t *testing.T) {
	a := testAssignment()
	recs := []*sim.Record{
		{Job: &job.Job{ID: 1, User: 1, Submit: 0, Runtime: 50, Estimate: 50, Nodes: 1}, Start: 150, Complete: 200},
		{Job: &job.Job{ID: 2, User: 3, Submit: 10, Runtime: 100, Estimate: 100, Nodes: 1}, Start: 900, Complete: 1000},
	}
	fst := map[job.ID]int64{1: 50, 2: 700}
	ref := FromRecords(a, recs, fst)
	tr := NewTracker(a)
	for _, r := range recs {
		f, ok := fst[r.Job.ID]
		tr.JobStarted(r.Job, r.Start, f, ok)
		tr.JobCompleted(r.Job, r.Start, r.Complete)
	}
	if !reflect.DeepEqual(ref.PerUser(), tr.PerUser()) {
		t.Fatal("FromRecords diverges from manual feed")
	}
}

// breachBin must be monotone and every value must fall inside its bin's
// [lower, upper] range; the upper edge must overestimate by at most the
// sub-bin width.
func TestBreachBinLayout(t *testing.T) {
	prev := -1
	for _, v := range []int64{1, 2, 7, 8, 9, 15, 16, 17, 100, 1000, 3600, 86400,
		1 << 20, 1<<20 + 1, 1 << 40, (1 << 62) + 5} {
		b := breachBin(v)
		if b < prev {
			t.Fatalf("breachBin not monotone at %d: bin %d after %d", v, b, prev)
		}
		prev = b
		if b >= numBreachBins {
			t.Fatalf("bin %d of %d out of range", b, numBreachBins)
		}
		hi := binUpperEdge(b)
		if v > hi {
			t.Fatalf("value %d above its bin's upper edge %d", v, hi)
		}
		if float64(hi) > float64(v)*1.125+1 {
			t.Fatalf("upper edge %d overestimates %d by more than 12.5%%", hi, v)
		}
	}
	// Exhaustive continuity over the exact and first sub-binned octaves.
	for v := int64(1); v < 64; v++ {
		b1, b2 := breachBin(v), breachBin(v+1)
		if b2 != b1 && b2 != b1+1 {
			t.Fatalf("bin jump at %d: %d -> %d", v, b1, b2)
		}
		if lo := v; binUpperEdge(breachBin(lo)) < lo {
			t.Fatalf("upper edge below value at %d", v)
		}
	}
}

func TestHistP95(t *testing.T) {
	hist := make([]int64, numBreachBins)
	if histP95(hist) != 0 {
		t.Fatal("empty histogram p95 not 0")
	}
	// 95 small breaches of 3s, 5 of 1000s: the ceiling rank 95 lands in
	// the 3s bin.
	hist[breachBin(3)] = 95
	hist[breachBin(1000)] = 5
	if got := histP95(hist); got != 3 {
		t.Fatalf("p95 = %d, want 3", got)
	}
	// 94 + 6: rank 95 crosses into the 1000s bin.
	hist[breachBin(3)] = 94
	hist[breachBin(1000)] = 6
	got := histP95(hist)
	if got < 1000 || got > 1024 {
		t.Fatalf("p95 = %d, want the 1000s bin's upper edge", got)
	}
}

func TestAttainPctEmptyClass(t *testing.T) {
	c := ClassStats{}
	if c.AttainPct() != 100 {
		t.Fatal("empty class should attain 100%")
	}
}

func TestOffendersRankingAndBound(t *testing.T) {
	b := NewBuilder()
	b.AddClass("p50", Target{Wait: 100})
	for u := 1; u <= 6; u++ {
		b.Tag(u, "p50")
	}
	tr := NewTracker(b.Build())
	// user 1: 2 breaches (50+10 excess); user 2: 2 breaches (70 excess);
	// user 3: 1 breach (500); user 4: attained; user 5: 1 breach (500) —
	// ties user 3 on every key except id; user 6: 1 breach (5).
	breach := func(user int, id job.ID, excess int64) {
		tr.JobStarted(&job.Job{ID: id, User: user, Submit: 0}, 100+excess, 0, false)
	}
	breach(1, 1, 50)
	breach(1, 2, 10)
	breach(2, 3, 40)
	breach(2, 8, 30)
	breach(3, 4, 500)
	tr.JobStarted(&job.Job{ID: 5, User: 4, Submit: 0}, 50, 0, false)
	breach(5, 6, 500)
	breach(6, 7, 5)
	s := tr.Summary()
	if len(s.Offenders) != MaxOffenders {
		t.Fatalf("offenders = %d, want %d", len(s.Offenders), MaxOffenders)
	}
	// user 2 first (2 breaches, 70 > 60 total), then user 1 (2 breaches),
	// then user 3 (1 breach, 500 excess, lower id than user 5).
	want := []int{2, 1, 3}
	for i, w := range want {
		if s.Offenders[i].User != w {
			t.Fatalf("offender[%d] = user %d, want %d (full: %+v)", i, s.Offenders[i].User, w, s.Offenders)
		}
	}
	if s.Offenders[0].Breached() != 2 || s.Offenders[2].TotalWaitBreach != 500 {
		t.Fatalf("offender stats wrong: %+v", s.Offenders)
	}
}

func TestOffendersEmptyWhenAllAttained(t *testing.T) {
	tr := NewTracker(testAssignment())
	tr.JobStarted(&job.Job{ID: 1, User: 1, Submit: 0}, 50, 0, false)
	if s := tr.Summary(); len(s.Offenders) != 0 {
		t.Fatalf("offenders = %+v, want none", s.Offenders)
	}
}

// Offender selection must be independent of accounting order: feed the same
// breaches in shuffled orders and require identical offender lists.
func TestOffendersOrderIndependence(t *testing.T) {
	b := NewBuilder()
	b.AddClass("c", Target{Wait: 10})
	for u := 1; u <= 12; u++ {
		b.Tag(u, "c")
	}
	asg := b.Build()
	type ev struct {
		id    job.ID
		user  int
		start int64
	}
	var evs []ev
	for u := 1; u <= 12; u++ {
		for k := 0; k <= u%4; k++ {
			evs = append(evs, ev{job.ID(100*u + k), u, int64(10 + 7*u + 3*k)})
		}
	}
	run := func(order []int) []UserStats {
		tr := NewTracker(asg)
		for _, i := range order {
			e := evs[i]
			tr.JobStarted(&job.Job{ID: e.id, User: e.user, Submit: 0}, e.start, 0, false)
		}
		return tr.Summary().Offenders
	}
	base := make([]int, len(evs))
	for i := range base {
		base[i] = i
	}
	ref := run(base)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		order := append([]int(nil), base...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		if got := run(order); !reflect.DeepEqual(got, ref) {
			t.Fatalf("offenders depend on accounting order:\n got %+v\nwant %+v", got, ref)
		}
	}
}

func TestSummaryValueByKey(t *testing.T) {
	tr := NewTracker(testAssignment())
	// user 1 (p50, wait 100): breach by 50; user 3 (p90): attained.
	tr.JobStarted(&job.Job{ID: 1, User: 1, Submit: 0}, 150, 0, false)
	tr.JobStarted(&job.Job{ID: 2, User: 3, Submit: 0}, 100, 0, false)
	tr.JobCompleted(&job.Job{ID: 2, User: 3, Submit: 0}, 100, 200)
	s := tr.Summary()
	cases := map[string]float64{
		"p50.jobs": 1, "p50.breached": 1, "p50.attain_pct": 0,
		"p50.total_wait_breach": 50, "p90.attained": 1, "p90.attain_pct": 100,
		"all.jobs": 2, "all.breached": 1, "all.attain_pct": 50,
		"default.jobs": 0, "default.attain_pct": 100,
		"p50.users": 2, "p50.active_users": 1,
	}
	for key, want := range cases {
		got, err := s.ValueByKey(key)
		if err != nil {
			t.Fatalf("ValueByKey(%q): %v", key, err)
		}
		if got != want {
			t.Errorf("ValueByKey(%q) = %v, want %v", key, got, want)
		}
	}
	for _, key := range []string{"", "p50", "nope.jobs", "p50.bogus", "all.", ".jobs"} {
		if _, err := s.ValueByKey(key); err == nil {
			t.Errorf("ValueByKey(%q) did not fail", key)
		}
	}
}

// chainRecords builds one 3-segment chained split (parent id 10, segments
// 11..13) for user u: segment k+1's submit is segment k's completion, as
// sim.SplitChained produces. Each segment runs 100s; the chain's first
// segment waits 50s and the requeue gaps add another 150s of waiting.
func chainRecords(u int) []*sim.Record {
	seg := func(id job.ID, k int, submit, start, complete int64) *sim.Record {
		return &sim.Record{
			Job: &job.Job{ID: id, User: u, Submit: submit, Runtime: 100,
				Estimate: 100, Nodes: 1, Parent: 10, Segment: k, Segments: 3},
			Start: start, Complete: complete,
		}
	}
	return []*sim.Record{
		seg(11, 1, 0, 50, 150),
		seg(12, 2, 150, 200, 300),
		seg(13, 3, 300, 400, 500),
	}
}

// TestChainedSlowdownJudgment: in chained mode a split chain is judged
// once, at its last segment's completion, against the ORIGINAL submit —
// slow = (total wait + run')/run' with run' = max(Σ realized runtimes,
// SlowdownBound) — so the requeue delays between segments are priced in.
// The default per-segment judgment sees only segment 1 and misses them.
func TestChainedSlowdownJudgment(t *testing.T) {
	b := NewBuilder()
	// Chain slowdown = (200 + 300)/300 ≈ 1.67 > 1.6: a breach. Segment 1
	// alone = (50 + 100)/100 = 1.5 <= 1.6: attained. The target separates
	// the two judgments.
	b.AddClass("c", Target{Wait: 100, Slowdown: 1.6})
	b.Tag(1, "c")
	a := b.Build()
	recs := chainRecords(1)

	chained := NewTracker(a)
	chained.SetChained(true)
	for _, r := range recs {
		chained.JobStarted(r.Job, r.Start, 0, false)
		chained.JobCompleted(r.Job, r.Start, r.Complete)
	}
	u := chained.PerUser()[0]
	if u.Jobs != 1 {
		t.Fatalf("chain counted %d jobs, want 1 (judged once)", u.Jobs)
	}
	if u.Attained != 0 || u.SlowBreaches != 1 {
		t.Fatalf("chained judgment: attained=%d slowbreaches=%d, want 0/1", u.Attained, u.SlowBreaches)
	}
	wantSlow := (200.0 + 300.0) / 300.0
	if math.Abs(u.WorstSlowdown-wantSlow) > 1e-12 {
		t.Fatalf("chain slowdown = %v, want %v", u.WorstSlowdown, wantSlow)
	}

	perSeg := NewTracker(a)
	for _, r := range recs {
		perSeg.JobStarted(r.Job, r.Start, 0, false)
		perSeg.JobCompleted(r.Job, r.Start, r.Complete)
	}
	if u := perSeg.PerUser()[0]; u.Jobs != 1 || u.Attained != 1 || u.SlowBreaches != 0 {
		t.Fatalf("per-segment judgment: %+v, want 1 job attained", u)
	}
}

// TestChainedWaitJudgedAtFirstSegment: the wait target is still judged at
// the chain's FIRST start (its queuing delay); a chain whose user has no
// slowdown target settles there and carries no chain state.
func TestChainedWaitJudgedAtFirstSegment(t *testing.T) {
	b := NewBuilder()
	b.AddClass("w", Target{Wait: 40}) // first wait 50 > 40: breach
	b.Tag(1, "w")
	tr := NewTracker(b.Build())
	tr.SetChained(true)
	for _, r := range chainRecords(1) {
		tr.JobStarted(r.Job, r.Start, 0, false)
		tr.JobCompleted(r.Job, r.Start, r.Complete)
	}
	if len(tr.chains) != 0 {
		t.Fatalf("wait-only chain left state: %d in flight", len(tr.chains))
	}
	u := tr.PerUser()[0]
	if u.Jobs != 1 || u.WaitBreaches != 1 || u.TotalWaitBreach != 10 || u.Attained != 0 {
		t.Fatalf("wait judgment over chain: %+v", u)
	}
}

// TestFromRecordsChainedMatchesManualFeed: the chained reference equals a
// manual chained feed, and differs from the non-chained reference on a
// workload where the chain-level judgment flips the verdict.
func TestFromRecordsChainedMatchesManualFeed(t *testing.T) {
	b := NewBuilder()
	b.AddClass("c", Target{Wait: 100, Slowdown: 1.6})
	b.Tag(1, "c")
	a := b.Build()
	recs := chainRecords(1)
	ref := FromRecordsChained(a, recs, nil)
	tr := NewTracker(a)
	tr.SetChained(true)
	for _, r := range recs {
		tr.JobStarted(r.Job, r.Start, 0, false)
		tr.JobCompleted(r.Job, r.Start, r.Complete)
	}
	if !reflect.DeepEqual(ref.PerUser(), tr.PerUser()) {
		t.Fatal("FromRecordsChained diverges from manual chained feed")
	}
	if reflect.DeepEqual(FromRecords(a, recs, nil).PerUser(), ref.PerUser()) {
		t.Fatal("chained and per-segment judgments agree on a chain built to separate them")
	}
}

// TestMergeRejectsInFlightChains: Merge demands fully settled trackers —
// an in-flight chain (started, not yet completed) must panic loudly
// rather than silently losing the chain's judgment.
func TestMergeRejectsInFlightChains(t *testing.T) {
	b := NewBuilder()
	b.AddClass("c", Target{Slowdown: 2})
	b.Tag(1, "c")
	a := b.Build()
	tr := NewTracker(a)
	tr.SetChained(true)
	first := chainRecords(1)[0]
	tr.JobStarted(first.Job, first.Start, 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Merge with in-flight chain state did not panic")
		}
	}()
	tr.Merge(NewTracker(a))
}
