package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

func TestConservativeBackfillsIntoHoles(t *testing.T) {
	// Same shape as Figure 2: the short narrow job fits the hole before
	// jobA's reservation.
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},
		{ID: 3, User: 3, Submit: 20, Runtime: 30, Estimate: 30, Nodes: 2},
	}
	starts := runPolicy(t, MustParse("cons.nomax"), 8, jobs)
	if starts[3] != 20 {
		t.Fatalf("hole backfill failed: job 3 at %d", starts[3])
	}
	if starts[2] != 100 {
		t.Fatalf("jobA delayed to %d", starts[2])
	}
}

func TestConservativeEveryJobReserved(t *testing.T) {
	pol := MustParse("cons.nomax")
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 1000, Estimate: 1000, Nodes: 8},
		{ID: 2, User: 2, Submit: 10, Runtime: 100, Estimate: 100, Nodes: 8},
		{ID: 3, User: 3, Submit: 20, Runtime: 100, Estimate: 100, Nodes: 8},
	}
	if _, err := sim.New(sim.Config{SystemSize: 8, Validate: true}, pol).Run(jobs); err != nil {
		t.Fatal(err)
	}
	// After the run the queue is empty; reservations held during the run
	// are exercised by the no-delay property test below. Here we check the
	// accessor on a drained policy.
	if len(pol.Reservations(nil)) != 0 {
		t.Fatal("reservations left after run")
	}
}

// TestConservativeNoDelayWithPerfectEstimates: with perfect estimates a
// job's start never exceeds the reservation it got at arrival (the paper's
// "upper bound on the wait time").
func TestConservativeNoDelayWithPerfectEstimates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		n := rng.Intn(20) + 5
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(500) + 1
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(4) + 1,
				Submit:   rng.Int63n(1000),
				Runtime:  runtime,
				Estimate: runtime, // perfect
				Nodes:    rng.Intn(size) + 1,
			}
		}
		pol := MustParse("cons.nomax")
		rec := &reservationRecorder{pol: pol, initial: map[job.ID]int64{}}
		res, err := sim.New(sim.Config{SystemSize: size, Validate: true}, pol, rec).Run(jobs)
		if err != nil {
			return false
		}
		for _, r := range res.Records {
			if res0, ok := rec.initial[r.Job.ID]; ok && r.Start > res0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// reservationRecorder captures each job's first reservation right after its
// arrival event.
type reservationRecorder struct {
	sim.BaseObserver
	pol     *Composite
	initial map[job.ID]int64
}

func (r *reservationRecorder) JobStarted(env sim.Env, j *job.Job) {
	// The arrival pass assigns the reservation before any start can
	// happen; record on first sighting.
	for id, res := range r.pol.Reservations(env) {
		if _, seen := r.initial[id]; !seen {
			r.initial[id] = res
		}
	}
	if _, seen := r.initial[j.ID]; !seen {
		r.initial[j.ID] = env.Now()
	}
}

func TestConservativeImprovesOnEarlyCompletion(t *testing.T) {
	// Job 1 is estimated at 1000 but finishes at 100: job 2's reservation
	// (at 1000) must improve and start at 100.
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 1000, Nodes: 8},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 8},
	}
	starts := runPolicy(t, MustParse("cons.nomax"), 8, jobs)
	if starts[2] != 100 {
		t.Fatalf("reservation not compressed: job 2 at %d, want 100", starts[2])
	}
}

func TestDynamicReordersByFairshare(t *testing.T) {
	// Static conservative: job 2 (heavy user) keeps its earlier reservation.
	// Dynamic: job 3 (light user) overtakes at every rebuild.
	day := int64(86400)
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 2 * day, Estimate: 2 * day, Nodes: 8}, // usage for user 1
		{ID: 2, User: 1, Submit: 100, Runtime: day, Estimate: day, Nodes: 8},
		{ID: 3, User: 2, Submit: 200, Runtime: day, Estimate: day, Nodes: 8},
	}
	static := runPolicy(t, MustParse("cons.nomax"), 8, jobs)
	dynamic := runPolicy(t, MustParse("consdyn.nomax"), 8, jobs)
	if !(dynamic[3] < dynamic[2]) {
		t.Fatalf("dynamic reservations should favor the light user: job3=%d job2=%d",
			dynamic[3], dynamic[2])
	}
	// Static keeps arrival-order reservations here because both were
	// reserved back-to-back and no hole opens.
	if !(static[2] < static[3]) {
		t.Fatalf("static conservative reordered reservations: job2=%d job3=%d",
			static[2], static[3])
	}
}

func TestConservativeWithInaccurateEstimatesCompletes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		n := rng.Intn(25) + 5
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(500) + 1
			est := runtime
			switch rng.Intn(3) {
			case 0:
				est = runtime * (rng.Int63n(8) + 1) // overestimate
			case 1:
				est = runtime/2 + 1 // underestimate (overruns)
			}
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(4) + 1,
				Submit:   rng.Int63n(2000),
				Runtime:  runtime,
				Estimate: est,
				Nodes:    rng.Intn(size) + 1,
			}
		}
		for _, spec := range []string{"cons.nomax", "consdyn.nomax"} {
			res, err := sim.New(sim.Config{SystemSize: size, Validate: true},
				MustParse(spec)).Run(jobs)
			if err != nil {
				return false
			}
			for _, r := range res.Records {
				if !r.Finished || r.Start < r.Submit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConservativeNextWakeIsEarliestReservation(t *testing.T) {
	pol := MustParse("cons.nomax")
	eng := pol.engine.(*conservativeEngine)
	eng.queue = []*reservedJob{
		{job: &job.Job{ID: 1}, res: 500, hasRes: true},
		{job: &job.Job{ID: 2}, res: 300, hasRes: true},
		{job: &job.Job{ID: 3}}, // no reservation yet
	}
	next, ok := pol.NextWake(100)
	if !ok || next != 300 {
		t.Fatalf("NextWake = %d,%v want 300,true", next, ok)
	}
	if _, ok := pol.NextWake(600); ok {
		t.Fatal("past reservations should not wake")
	}
}

// TestConservativeOverOtherOrders: the conservative engine composes with
// non-fairshare orders — an SJF queue reserves short jobs first at rebuild.
func TestConservativeOverSJF(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 500, Estimate: 500, Nodes: 8}, // wall
		{ID: 2, User: 2, Submit: 10, Runtime: 400, Estimate: 400, Nodes: 8},
		{ID: 3, User: 3, Submit: 20, Runtime: 50, Estimate: 50, Nodes: 8},
	}
	starts := runPolicy(t, MustParse("consdyn.sjf"), 8, jobs)
	if !(starts[3] < starts[2]) {
		t.Fatalf("SJF dynamic-conservative should run the short job first: job3=%d job2=%d",
			starts[3], starts[2])
	}
}
