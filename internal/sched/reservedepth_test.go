package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// cplantDepth builds the baseline CPlant policy with the given starvation
// reserve depth.
func cplantDepth(depth int) *Composite {
	return MustNew(Spec{
		Order: "fairshare", Backfill: BackfillNoGuarantee,
		Wait: 24 * 3600, Heavy: HeavyAll, Depth: depth,
	})
}

func TestStarvationReserveDepthProtectsSecondStarvedJob(t *testing.T) {
	day := int64(24 * 3600)
	// Jobs 2 and 3 both starve behind a 10-day wall; with depth 2 the
	// backfill stream cannot delay either of their reservations.
	mk := func(depth int) map[job.ID]int64 {
		jobs := []*job.Job{
			{ID: 1, User: 1, Submit: 0, Runtime: 10 * day, Estimate: 10 * day, Nodes: 5},
			{ID: 2, User: 2, Submit: 10, Runtime: day, Estimate: day, Nodes: 6}, // starves
			{ID: 3, User: 3, Submit: 20, Runtime: day, Estimate: day, Nodes: 7}, // starves
			// Arrives after both promotions; with depth 1 only job 2's
			// reservation binds, so this 2-node long job may run past job
			// 3's slot; with depth 2 it must wait.
			{ID: 4, User: 4, Submit: day + 100, Runtime: 30 * day, Estimate: 30 * day, Nodes: 2},
		}
		return runPolicy(t, cplantDepth(depth), 8, jobs)
	}
	d1 := mk(1)
	d2 := mk(2)
	if d2[4] < d1[4] {
		t.Fatalf("deeper reservations must not admit the backfill earlier: depth1=%d depth2=%d",
			d1[4], d2[4])
	}
	// With depth 2, job 3's start must not be later than with depth 1.
	if d2[3] > d1[3] {
		t.Fatalf("protected job started later under deeper reservations: %d vs %d", d2[3], d1[3])
	}
}

func TestStarvationReserveDepthCompletesRandomWorkloads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		n := rng.Intn(25) + 5
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(2*86400) + 1
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(4) + 1,
				Submit:   rng.Int63n(3 * 86400),
				Runtime:  runtime,
				Estimate: runtime + rng.Int63n(86400),
				Nodes:    rng.Intn(size) + 1,
			}
		}
		for _, depth := range []int{1, 3} {
			res, err := sim.New(sim.Config{SystemSize: size, Validate: true}, cplantDepth(depth)).Run(jobs)
			if err != nil {
				return false
			}
			for _, r := range res.Records {
				if !r.Finished {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStarvationReserveDepthDefault(t *testing.T) {
	pol := MustParse("cplant24.nomax.all")
	eng := pol.engine.(*aggressiveEngine)
	if eng.starve == nil || eng.starve.depth != 1 {
		t.Fatalf("default reserve depth wrong: %+v", eng.starve)
	}
	if d2 := MustParse("cplant24.depth2").engine.(*aggressiveEngine).starve.depth; d2 != 2 {
		t.Fatalf("cplant24.depth2 reserve depth = %d", d2)
	}
}
