package sched

import (
	"testing"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/profile"
	"fairsched/internal/sim"
)

// orderEnv is a minimal Env for exercising Order comparators directly.
type orderEnv struct {
	now int64
	fs  *fairshare.Tracker
}

func (e *orderEnv) Now() int64                     { return e.now }
func (e *orderEnv) SystemSize() int                { return 64 }
func (e *orderEnv) FreeNodes() int                 { return 64 }
func (e *orderEnv) Running() []sim.RunningJob      { return nil }
func (e *orderEnv) Fairshare() *fairshare.Tracker  { return e.fs }
func (e *orderEnv) Availability() *profile.Profile { return profile.New(e.now, 64, 64) }
func (e *orderEnv) Start(*job.Job) error           { return nil }

var _ sim.Env = (*orderEnv)(nil)

func mustOrder(t *testing.T, name string) Order {
	t.Helper()
	o, err := OrderByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOrderSemantics(t *testing.T) {
	env := &orderEnv{now: 1000, fs: fairshare.NewTracker(fairshare.Config{}, 0)}
	env.fs.Charge(1, 5000) // user 1 is heavier
	short := &job.Job{ID: 1, User: 1, Submit: 900, Estimate: 100, Nodes: 4}
	long := &job.Job{ID: 2, User: 2, Submit: 0, Estimate: 10000, Nodes: 2}
	wide := &job.Job{ID: 3, User: 3, Submit: 950, Estimate: 100, Nodes: 32}

	cases := []struct {
		order  string
		first  *job.Job
		second *job.Job
	}{
		{"fcfs", long, short},      // earlier submit wins
		{"fairshare", long, short}, // user 2 has no usage
		{"sjf", short, long},       // smaller estimate wins
		{"widest", wide, short},    // more nodes wins
		{"narrowest", long, wide},  // fewer nodes wins
		// lxf: long's factor is (1000-0+10000)/10000 = 1.1, wide's is
		// (1000-950+100)/100 = 1.5 -> wide first.
		{"lxf", wide, long},
	}
	for _, tc := range cases {
		o := mustOrder(t, tc.order)
		if !o.Less(env, tc.first, tc.second) {
			t.Errorf("%s: %d should come before %d", tc.order, tc.first.ID, tc.second.ID)
		}
		if o.Less(env, tc.second, tc.first) {
			t.Errorf("%s: comparator not antisymmetric for %d,%d", tc.order, tc.second.ID, tc.first.ID)
		}
	}
}

func TestOrderTieBreaksAreArrivalOrder(t *testing.T) {
	env := &orderEnv{now: 100, fs: fairshare.NewTracker(fairshare.Config{}, 0)}
	a := &job.Job{ID: 1, User: 1, Submit: 10, Estimate: 50, Nodes: 4}
	b := &job.Job{ID: 2, User: 2, Submit: 10, Estimate: 50, Nodes: 4}
	for _, name := range OrderNames() {
		o := mustOrder(t, name)
		if !o.Less(env, a, b) || o.Less(env, b, a) {
			t.Errorf("%s: equal-priority jobs must tie-break by id", name)
		}
	}
}

func TestOrderByNameRejectsUnknown(t *testing.T) {
	if _, err := OrderByName("alphabetical"); err == nil {
		t.Fatal("unknown order accepted")
	}
	if len(OrderNames()) < 4 {
		t.Fatalf("order registry too small: %v", OrderNames())
	}
}

func TestLXFGrowsWithWait(t *testing.T) {
	o := mustOrder(t, "lxf")
	early := &orderEnv{now: 0, fs: fairshare.NewTracker(fairshare.Config{}, 0)}
	late := &orderEnv{now: 100000, fs: early.fs}
	patient := &job.Job{ID: 1, User: 1, Submit: 0, Estimate: 10000, Nodes: 1}
	fresh := &job.Job{ID: 2, User: 2, Submit: 0, Estimate: 100, Nodes: 1}
	// At t=0 both have factor 1: the shorter job wins on... neither — tie
	// breaks to id order, so patient (id 1) first.
	if !o.Less(early, patient, fresh) {
		t.Error("equal factors should tie-break FCFS")
	}
	// Much later the short job's factor exploded: (100000+100)/100 >> 11.
	if !o.Less(late, fresh, patient) {
		t.Error("waiting short job should overtake on expansion factor")
	}
}
