package sched

import (
	"strings"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

func TestRegistryCoversTheDesignSpace(t *testing.T) {
	bs := Builtins()
	if len(bs) < 30 {
		t.Fatalf("registry has %d specs, want >= 30", len(bs))
	}
	orders := map[string]bool{}
	backfills := map[string]bool{}
	seen := map[string]bool{}
	for _, b := range bs {
		if b.Key == "" || b.Description == "" {
			t.Errorf("registry entry %+v lacks a key or description", b)
		}
		if seen[b.Key] {
			t.Errorf("duplicate registry key %q", b.Key)
		}
		seen[b.Key] = true
		if err := b.Spec.Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", b.Key, err)
		}
		n := b.Spec.normalized()
		orders[n.Order] = true
		backfills[n.Backfill] = true
	}
	if len(orders) < 4 {
		t.Errorf("registry spans %d orders, want >= 4: %v", len(orders), orders)
	}
	if len(backfills) < 4 {
		t.Errorf("registry spans %d backfill disciplines, want >= 4: %v", len(backfills), backfills)
	}
}

func TestEveryBuiltinBuildsAndRuns(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 300, Estimate: 400, Nodes: 10},
		{ID: 2, User: 2, Submit: 5, Runtime: 200, Estimate: 200, Nodes: 12},
		{ID: 3, User: 1, Submit: 10, Runtime: 100, Estimate: 150, Nodes: 6},
		{ID: 4, User: 3, Submit: 15, Runtime: 500, Estimate: 500, Nodes: 4},
		{ID: 5, User: 2, Submit: 20, Runtime: 50, Estimate: 60, Nodes: 2},
	}
	for _, b := range Builtins() {
		pol := MustNew(b.Spec)
		if pol.Name() != b.Key {
			t.Errorf("%s: policy named %q", b.Key, pol.Name())
		}
		res, err := sim.New(sim.Config{SystemSize: 16, Validate: true}, pol).Run(jobs)
		if err != nil {
			t.Errorf("%s: %v", b.Key, err)
			continue
		}
		if len(res.Records) != len(jobs) {
			t.Errorf("%s: %d records for %d jobs", b.Key, len(res.Records), len(jobs))
		}
	}
}

func TestLookupDynamicDepthNames(t *testing.T) {
	s, ok := Lookup("depth12")
	if !ok || s.Depth != 12 || s.Backfill != BackfillDepth || s.Order != "fairshare" {
		t.Fatalf("depth12 = %+v, %v", s, ok)
	}
	for _, bad := range []string{"depth0", "depth", "depthx", "depth-3"} {
		if _, ok := Lookup(bad); ok {
			t.Errorf("%q resolved", bad)
		}
	}
}

func TestLookupPaperNames(t *testing.T) {
	for _, key := range []string{
		"cplant24.nomax.all", "cplant24.nomax.fair", "cplant72.nomax.all",
		"cplant24.72max.all", "cplant72.72max.fair",
		"cons.nomax", "consdyn.nomax", "cons.72max", "consdyn.72max",
		"fcfs", "easy", "list.fairshare",
	} {
		if _, ok := Lookup(key); !ok {
			t.Errorf("registry lost %q", key)
		}
	}
}

func TestRegistryNamePropertiesMatchComponents(t *testing.T) {
	for _, b := range Builtins() {
		s := b.Spec.normalized()
		if has72max := s.MaxRuntime == 72*3600; has72max != strings.Contains(b.Key, "72max") {
			t.Errorf("%s: MaxRuntime inconsistent with name", b.Key)
		}
		if isFair := s.Heavy == HeavyNonheavy; isFair != strings.HasSuffix(b.Key, ".fair") {
			t.Errorf("%s: heavy classifier inconsistent with name", b.Key)
		}
		if strings.Contains(b.Key, "cplant72") && s.Wait != 72*3600 {
			t.Errorf("%s: wait inconsistent with name", b.Key)
		}
		if strings.Contains(b.Key, "cplant24") && s.Wait != 24*3600 {
			t.Errorf("%s: wait inconsistent with name", b.Key)
		}
	}
}
