package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// mapDeadlines is a stub DeadlineSource for deadline-trigger tests.
type mapDeadlines map[int]int64

func (m mapDeadlines) WaitTarget(user int) (int64, bool) {
	w, ok := m[user]
	return w, ok
}

func runPreemptable(t *testing.T, pol *Composite, size int, jobs []*job.Job) *sim.Result {
	t.Helper()
	res, err := sim.New(sim.Config{SystemSize: size, Preemptable: true, Validate: true}, pol).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func recordOf(t *testing.T, res *sim.Result, id job.ID) *sim.Record {
	t.Helper()
	for _, r := range res.Records {
		if r.Job.ID == id {
			return r
		}
	}
	t.Fatalf("no record for job %d", id)
	return nil
}

// TestSRPTPreemptsLongJobForShortArrival: the canonical SRPT move. A
// machine-filling long job is checkpointed the moment a much shorter job
// arrives; the remainder resubmits as a chained segment and finishes after
// the short job.
func TestSRPTPreemptsLongJobForShortArrival(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 4},
		{ID: 2, User: 2, Submit: 10, Runtime: 5, Estimate: 5, Nodes: 4},
	}
	res := runPreemptable(t, MustParse("srpt"), 4, jobs)
	if len(res.Records) != 3 {
		t.Fatalf("want 3 records (victim, short job, remainder), got %d", len(res.Records))
	}
	victim := recordOf(t, res, 1)
	if !victim.Preempted || victim.Killed || victim.Complete != 10 {
		t.Errorf("victim record wrong: preempted=%v killed=%v complete=%d", victim.Preempted, victim.Killed, victim.Complete)
	}
	if victim.Job.Parent != 1 || victim.Job.Segment != 1 || victim.Job.Segments != 2 || victim.Job.ChainRuntime != 100 {
		t.Errorf("victim chain metadata wrong: parent=%d seg=%d/%d chain=%d",
			victim.Job.Parent, victim.Job.Segment, victim.Job.Segments, victim.Job.ChainRuntime)
	}
	short := recordOf(t, res, 2)
	if short.Start != 10 || short.Complete != 15 {
		t.Errorf("short job ran [%d,%d], want [10,15]", short.Start, short.Complete)
	}
	rem := recordOf(t, res, 3)
	if rem.Job.Parent != 1 || rem.Job.Segment != 2 || rem.Job.Segments != 2 {
		t.Errorf("remainder chain metadata wrong: parent=%d seg=%d/%d", rem.Job.Parent, rem.Job.Segment, rem.Job.Segments)
	}
	if rem.Job.Submit != 10 || rem.Job.Runtime != 90 || rem.Job.Estimate != 90 || rem.Job.ChainRuntime != 90 {
		t.Errorf("remainder sizing wrong: submit=%d runtime=%d est=%d chain=%d",
			rem.Job.Submit, rem.Job.Runtime, rem.Job.Estimate, rem.Job.ChainRuntime)
	}
	if rem.Start != 15 || rem.Complete != 105 {
		t.Errorf("remainder ran [%d,%d], want [15,105]", rem.Start, rem.Complete)
	}
	if victim.Preempted && rem.Preempted {
		t.Error("remainder must not carry the victim's Preempted flag")
	}
}

// TestPreemptNeverThrashes: a preempted remainder must not immediately
// preempt the job it was preempted for (the remainder sorts after the
// beneficiary under the queue order, so it is not a beneficiary itself).
func TestPreemptNeverThrashes(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 4},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 4},
	}
	res := runPreemptable(t, MustParse("srpt"), 4, jobs)
	preemptions := 0
	for _, r := range res.Records {
		if r.Preempted {
			preemptions++
		}
	}
	if preemptions != 1 {
		t.Fatalf("want exactly 1 preemption, got %d", preemptions)
	}
	// Job 2 (remaining 50 < victim's remaining 90) runs to completion
	// uninterrupted, then the remainder runs.
	if r := recordOf(t, res, 2); r.Start != 10 || r.Complete != 60 {
		t.Errorf("beneficiary ran [%d,%d], want [10,60]", r.Start, r.Complete)
	}
}

// TestPreemptRefusesPartialPreemption: when preempting every eligible
// victim still cannot free enough nodes, nothing is preempted at all.
func TestPreemptRefusesPartialPreemption(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 2},
		{ID: 2, User: 2, Submit: 1, Runtime: 3, Estimate: 3, Nodes: 2},
		{ID: 3, User: 3, Submit: 2, Runtime: 5, Estimate: 5, Nodes: 4},
	}
	res := runPreemptable(t, MustParse("srpt"), 4, jobs)
	// At t=2, job 3 (est 5) outranks job 1 (est 100) but not job 2 (est 3):
	// the only candidate frees 2 of the needed 4 nodes, so no preemption
	// happens. Job 2 completes at 4; only then is preempting job 1 enough.
	j1 := recordOf(t, res, 1)
	if !j1.Preempted || j1.Complete != 4 {
		t.Errorf("job 1: preempted=%v complete=%d, want preemption at t=4 (not t=2)", j1.Preempted, j1.Complete)
	}
	if j2 := recordOf(t, res, 2); j2.Preempted || j2.Complete != 4 {
		t.Errorf("job 2 must finish untouched at 4, got preempted=%v complete=%d", j2.Preempted, j2.Complete)
	}
	if j3 := recordOf(t, res, 3); j3.Start != 4 {
		t.Errorf("job 3 started at %d, want 4", j3.Start)
	}
}

// TestPreemptVictimRules: lowpri checkpoints the worst job under the queue
// order; newest checkpoints the most recently started one.
func TestPreemptVictimRules(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 60, Estimate: 60, Nodes: 2},
		{ID: 2, User: 2, Submit: 1, Runtime: 50, Estimate: 50, Nodes: 2},
		{ID: 3, User: 3, Submit: 10, Runtime: 5, Estimate: 5, Nodes: 2},
	}
	cases := []struct {
		spec    string
		victims []job.ID
	}{
		// lowpri under sjf: job 1 (estimate 60) is the worst running job.
		// Job 2's static estimate (50) ties its own would-be remainder, so
		// no cascade follows and job 2 runs untouched.
		{"order=sjf+bf=easy+preempt=reserve.lowpri", []job.ID{1}},
		// newest: job 2 (started t=1) is checkpointed first; its remainder
		// (41s left) then legitimately outranks job 1 (estimate 60) and
		// preempts it too — the SRPT cascade.
		{"order=sjf+bf=easy+preempt=reserve.newest", []job.ID{1, 2}},
	}
	for _, c := range cases {
		res := runPreemptable(t, MustParse(c.spec), 4, cloneJobs(jobs))
		var got []job.ID
		for _, r := range res.Records {
			if r.Preempted {
				got = append(got, r.Job.ID)
			}
		}
		want := map[job.ID]bool{}
		for _, id := range c.victims {
			want[id] = true
		}
		if len(got) != len(c.victims) {
			t.Errorf("%s: preempted %v, want %v", c.spec, got, c.victims)
			continue
		}
		for _, id := range got {
			if !want[id] {
				t.Errorf("%s: preempted %v, want %v", c.spec, got, c.victims)
			}
		}
	}
}

func cloneJobs(jobs []*job.Job) []*job.Job {
	out := make([]*job.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}

// TestDeadlineTriggerFiresAtTheDeadline: with preempt=deadline the policy
// wakes at a queued job's SLO deadline and checkpoints running work for it
// — even with no arrival or completion at that instant.
func TestDeadlineTriggerFiresAtTheDeadline(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 9, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 4},
		{ID: 2, User: 1, Submit: 1, Runtime: 5, Estimate: 5, Nodes: 4},
	}
	pol := MustParse("edf.preempt")
	pol.SetSLOContext(mapDeadlines{1: 20}, nil)
	res := runPreemptable(t, pol, 4, jobs)
	// User 1's deadline is submit+20 = 21: job 1 is checkpointed exactly
	// then, not at job 2's arrival (the trigger is the deadline, not the
	// wait itself).
	if v := recordOf(t, res, 1); !v.Preempted || v.Complete != 21 {
		t.Fatalf("victim preempted=%v complete=%d, want preemption at t=21", v.Preempted, v.Complete)
	}
	if r := recordOf(t, res, 2); r.Start != 21 || r.Complete != 26 {
		t.Errorf("deadline job ran [%d,%d], want [21,26]", r.Start, r.Complete)
	}
}

// TestEDFOrderWithoutContextIsFCFS: an edf policy with no SLO context
// degrades to plain FCFS — pinned by schedule-identity with easy.
func TestEDFOrderWithoutContextIsFCFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		jobs := make([]*job.Job, rng.Intn(25)+5)
		for i := range jobs {
			runtime := rng.Int63n(400) + 1
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(4) + 1,
				Submit:   rng.Int63n(1200),
				Runtime:  runtime,
				Estimate: runtime + rng.Int63n(100),
				Nodes:    rng.Intn(size) + 1,
			}
		}
		a, err := sim.New(sim.Config{SystemSize: size}, MustParse("edf")).Run(cloneJobs(jobs))
		if err != nil {
			return false
		}
		b, err := sim.New(sim.Config{SystemSize: size}, MustParse("easy")).Run(cloneJobs(jobs))
		if err != nil {
			return false
		}
		return schedulesEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func schedulesEqual(a, b *sim.Result) bool {
	if len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.Job.ID != rb.Job.ID || ra.Start != rb.Start || ra.Complete != rb.Complete ||
			ra.Killed != rb.Killed || ra.Preempted != rb.Preempted {
			return false
		}
	}
	return true
}

// TestPreemptablePlumbingIsInert: enabling sim.Config.Preemptable for a
// non-preemptive policy changes nothing — the workload clones are
// byte-equivalent and no requeue event ever fires. This is the sim-layer
// half of the preempt=none equivalence bar.
func TestPreemptablePlumbingIsInert(t *testing.T) {
	specs := []string{"easy", "cplant24.nomax.all", "cons.nomax", "list.sjf"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		jobs := make([]*job.Job, rng.Intn(30)+5)
		for i := range jobs {
			runtime := rng.Int63n(400) + 1
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(5) + 1,
				Submit:   rng.Int63n(1500),
				Runtime:  runtime,
				Estimate: runtime + rng.Int63n(200),
				Nodes:    rng.Intn(size) + 1,
			}
		}
		spec := specs[rng.Intn(len(specs))]
		kill := sim.KillPolicy(rng.Intn(3))
		plain, err := sim.New(sim.Config{SystemSize: size, Kill: kill}, MustParse(spec)).Run(cloneJobs(jobs))
		if err != nil {
			return false
		}
		preemptable, err := sim.New(sim.Config{SystemSize: size, Kill: kill, Preemptable: true}, MustParse(spec)).Run(cloneJobs(jobs))
		if err != nil {
			return false
		}
		return schedulesEqual(plain, preemptable)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptiveScheduleIsDeterministic: the same preemptive run twice
// yields identical schedules (requeue events tie-break deterministically).
func TestPreemptiveScheduleIsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		jobs := make([]*job.Job, rng.Intn(30)+10)
		for i := range jobs {
			runtime := rng.Int63n(400) + 1
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(5) + 1,
				Submit:   rng.Int63n(800),
				Runtime:  runtime,
				Estimate: runtime,
				Nodes:    rng.Intn(size) + 1,
			}
		}
		a, err := sim.New(sim.Config{SystemSize: size, Preemptable: true, Validate: true}, MustParse("srpt")).Run(cloneJobs(jobs))
		if err != nil {
			return false
		}
		b, err := sim.New(sim.Config{SystemSize: size, Preemptable: true, Validate: true}, MustParse("srpt")).Run(cloneJobs(jobs))
		if err != nil {
			return false
		}
		return schedulesEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptChainServiceConserved: across arbitrary preemptive runs, every
// preemption chain's realized service sums to the original runtime, every
// segment runs at least one second, and remainders resubmit at the
// preemption instant.
func TestPreemptChainServiceConserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		jobs := make([]*job.Job, rng.Intn(40)+10)
		for i := range jobs {
			runtime := rng.Int63n(600) + 1
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(6) + 1,
				Submit:   rng.Int63n(1000),
				Runtime:  runtime,
				Estimate: runtime,
				Nodes:    rng.Intn(size) + 1,
			}
		}
		res, err := sim.New(sim.Config{SystemSize: size, Preemptable: true, Validate: true}, MustParse("srpt")).Run(cloneJobs(jobs))
		if err != nil {
			return false
		}
		service := map[job.ID]int64{} // chain head id -> realized service
		for _, r := range res.Records {
			ran := r.Complete - r.Start
			if ran < 1 {
				return false
			}
			if r.Job.Parent != 0 {
				service[r.Job.Parent] += ran
			}
		}
		for id, total := range service {
			var orig *job.Job
			for _, j := range jobs {
				if j.ID == id {
					orig = j
					break
				}
			}
			if orig == nil || total != orig.Runtime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptNoneCompositesMatchRegistry: the preempt component's
// infrastructure (the order field on Composite, the pass hooks, the
// victim buffer) must be invisible for preempt-less specs — a chain spec
// without preempt= schedules byte-identically to its registry twin across
// calm, contended and chained-split scenarios. This is the sched-layer
// half of the preempt=none equivalence bar (the campaign-level half is
// CI's report diff).
func TestPreemptNoneCompositesMatchRegistry(t *testing.T) {
	pairs := []struct{ registry, chain string }{
		{"easy", "order=fcfs+bf=easy"},
		{"cplant24.nomax.all", "order=fairshare+bf=noguarantee+starve=24h"},
		{"cons.nomax", "order=fairshare+bf=conservative"},
		{"easy.sjf", "order=sjf+bf=easy"},
	}
	scenarios := []struct {
		name string
		cfg  sim.Config
	}{
		{"calm", sim.Config{SystemSize: 32, Validate: true}},
		{"contended", sim.Config{SystemSize: 8, Validate: true}},
		{"split", sim.Config{SystemSize: 8, MaxRuntime: 300, Split: sim.SplitChained, Kill: sim.KillWhenNeeded, Validate: true}},
	}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		jobs := make([]*job.Job, rng.Intn(30)+8)
		for i := range jobs {
			runtime := rng.Int63n(900) + 1
			est := runtime + rng.Int63n(300)
			if rng.Intn(3) == 0 {
				est = runtime/2 + 1 // under-estimates feed the kill paths
			}
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(5) + 1,
				Submit:   rng.Int63n(2000),
				Runtime:  runtime,
				Estimate: est,
				Nodes:    rng.Intn(8) + 1,
			}
		}
		pair := pairs[seed%int64(len(pairs))]
		for _, sc := range scenarios {
			a, err := sim.New(sc.cfg, MustParse(pair.registry)).Run(cloneJobs(jobs))
			if err != nil {
				t.Fatal(err)
			}
			b, err := sim.New(sc.cfg, MustParse(pair.chain)).Run(cloneJobs(jobs))
			if err != nil {
				t.Fatal(err)
			}
			if !schedulesEqual(a, b) {
				t.Fatalf("seed %d %s: %q and %q diverged", seed, sc.name, pair.registry, pair.chain)
			}
		}
	}
}
