package sched

import (
	"strings"
	"testing"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/sim"
	"fairsched/internal/workload"
)

func leafSpec(t *testing.T, s string) *Spec {
	t.Helper()
	sp, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return &sp
}

func TestNewMultiQueueRejects(t *testing.T) {
	fcfs := Spec{Order: "fcfs"}
	one := []QueueConfig{{Path: "a", Spec: &fcfs}}
	if _, err := NewMultiQueue(one, nil, fairshare.Config{}, 0); err == nil {
		t.Error("nil route accepted")
	}
	route := func(*job.Job) int { return 0 }
	if _, err := NewMultiQueue([]QueueConfig{{Path: "a"}}, route, fairshare.Config{}, 0); err == nil {
		t.Error("tree with no leaf queues accepted")
	}
	cons := Spec{Order: "fcfs", Backfill: BackfillConservative}
	for name, qs := range map[string][]QueueConfig{
		"cap-on-leaf": {{Path: "a", Spec: &cons, Cap: 0.5}},
		"cap-on-ancestor": {
			{Path: "org", Cap: 0.5},
			{Path: "org/a", Spec: &cons},
		},
	} {
		_, err := NewMultiQueue(qs, route, fairshare.Config{}, 0)
		if err == nil || !strings.Contains(err.Error(), "cannot run under a cap= quota") {
			t.Errorf("%s: conservative leaf under a quota: err = %v, want construction error", name, err)
		}
	}
	// The same leaf WITHOUT a quota is fine.
	if _, err := NewMultiQueue([]QueueConfig{{Path: "a", Spec: &cons}}, route, fairshare.Config{}, 0); err != nil {
		t.Errorf("uncapped conservative leaf rejected: %v", err)
	}
}

// TestMultiQueueSingleLeafTransparent: with one leaf and no quotas the
// wrapper must reproduce the flat Composite's schedule event for event —
// the policy-level half of the flat-equivalence guarantee.
func TestMultiQueueSingleLeafTransparent(t *testing.T) {
	h := int64(3600)
	cases := []struct {
		name  string
		cfg   sim.Config
		scale float64
	}{
		{"calm", sim.Config{SystemSize: 500, Validate: true}, 0.02},
		{"contended", sim.Config{SystemSize: 100, Validate: true}, 0.05},
		{"split-chained", sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitChained, Validate: true}, 0.04},
	}
	for _, spec := range []string{"cplant24.nomax.all", "cons.nomax", "easy"} {
		for _, c := range cases {
			t.Run(spec+"/"+c.name, func(t *testing.T) {
				jobs, err := workload.Generate(workload.Config{Seed: 11, Scale: c.scale, SystemSize: c.cfg.SystemSize})
				if err != nil {
					t.Fatal(err)
				}
				sp := leafSpec(t, spec)
				mq, err := NewMultiQueue(
					[]QueueConfig{{Path: "", Spec: sp}},
					func(*job.Job) int { return 0 },
					c.cfg.Fairshare, c.cfg.FairshareEpoch)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sim.New(c.cfg, mq).Run(jobs)
				if err != nil {
					t.Fatal(err)
				}
				want := runRecords(t, MustParse(spec), c.cfg, jobs)
				assertSameSchedule(t, spec+"/"+c.name, got, want)
			})
		}
	}
}

// TestMultiQueueCapEnforced: a leaf under cap=0.5 of a 16-node system must
// never have more than 8 of its nodes running at once, even with enough
// queued demand to fill the machine; the uncapped leaf may use everything.
func TestMultiQueueCapEnforced(t *testing.T) {
	const size = 16
	var jobs []*job.Job
	for i := 0; i < 40; i++ {
		user := 1 // capped leaf
		if i%2 == 1 {
			user = 2 // free leaf
		}
		jobs = append(jobs, &job.Job{
			ID: job.ID(i + 1), User: user, Submit: int64(i),
			Runtime: 500, Estimate: 500, Nodes: 4,
		})
	}
	mq, err := NewMultiQueue(
		[]QueueConfig{
			{Path: "capped", Spec: leafSpec(t, "easy"), Cap: 0.5},
			{Path: "free", Spec: leafSpec(t, "easy")},
		},
		func(j *job.Job) int {
			if j.User == 1 {
				return 0
			}
			return 1
		},
		fairshare.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.New(sim.Config{SystemSize: size, Validate: true}, mq).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(jobs) {
		t.Fatalf("%d records, want %d", len(res.Records), len(jobs))
	}
	// Sweep the capped users' records for peak concurrent node usage.
	type edge struct {
		at    int64
		delta int
	}
	var edges []edge
	for _, r := range res.Records {
		if r.Job.User != 1 {
			continue
		}
		edges = append(edges, edge{r.Start, r.Job.Nodes}, edge{r.Complete, -r.Job.Nodes})
	}
	peak, cur := 0, 0
	for {
		best := -1
		var bestAt int64
		for i, e := range edges {
			if e.delta == 0 {
				continue
			}
			if best == -1 || e.at < bestAt || (e.at == bestAt && e.delta < edges[best].delta) {
				best, bestAt = i, e.at
			}
		}
		if best == -1 {
			break
		}
		cur += edges[best].delta
		edges[best].delta = 0
		if cur > peak {
			peak = cur
		}
	}
	if peak > size/2 {
		t.Fatalf("capped leaf peaked at %d nodes, quota is %d", peak, size/2)
	}
	if peak == 0 {
		t.Fatal("capped leaf never ran anything")
	}
}

// TestMultiQueueNameAndPaths: the trivial tree keeps the leaf's own name
// (reports stay flat-identical); multi-leaf trees list path:policy pairs.
func TestMultiQueueNameAndPaths(t *testing.T) {
	route := func(*job.Job) int { return 0 }
	one, err := NewMultiQueue([]QueueConfig{{Path: "", Spec: leafSpec(t, "easy")}}, route, fairshare.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if one.Name() != MustParse("easy").Name() {
		t.Errorf("single-leaf Name() = %q, want the leaf's own %q", one.Name(), MustParse("easy").Name())
	}
	two, err := NewMultiQueue([]QueueConfig{
		{Path: "a", Spec: leafSpec(t, "easy")},
		{Path: "b", Spec: leafSpec(t, "fcfs")},
	}, route, fairshare.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := two.Name(); !strings.HasPrefix(n, "queues[a:") || !strings.Contains(n, ",b:") {
		t.Errorf("multi-leaf Name() = %q", n)
	}
	if p := two.LeafPaths(); len(p) != 2 || p[0] != "a" || p[1] != "b" {
		t.Errorf("LeafPaths() = %v", p)
	}
}
