package sched

import (
	"fmt"
	"sort"

	"fairsched/internal/job"
	"fairsched/internal/profile"
	"fairsched/internal/sim"
)

// DepthBackfill is the spectrum between aggressive and conservative
// backfilling the paper's introduction describes: "Many production
// schedulers use variations between conservative and aggressive
// backfilling, giving the first n jobs in the queue a reservation."
//
// At every scheduling event the queue is sorted (fairshare or FCFS); the
// first Depth jobs receive reservations built left-to-right on the running
// jobs' estimated completions; every other job may start only where it
// does not delay any of those reservations. Depth 1 over an FCFS queue is
// EASY; Depth >= queue length approaches dynamic conservative backfilling.
type DepthBackfill struct {
	// Depth is the number of queue heads holding reservations (>= 1).
	Depth int
	// Order selects the queue priority (default OrderFairshare).
	Order QueueOrder
	// Label overrides Name.
	Label string

	queue []*job.Job
}

// NewDepthBackfill returns a depth-n backfilling policy.
func NewDepthBackfill(depth int, order QueueOrder) *DepthBackfill {
	if depth < 1 {
		depth = 1
	}
	return &DepthBackfill{Depth: depth, Order: order}
}

// Name implements sim.Policy.
func (p *DepthBackfill) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("depth%d.%s", p.Depth, p.Order)
}

// Reset implements sim.Policy.
func (p *DepthBackfill) Reset(sim.Env) {
	p.queue = nil
	if p.Depth < 1 {
		p.Depth = 1
	}
}

// Arrive implements sim.Policy.
func (p *DepthBackfill) Arrive(env sim.Env, j *job.Job) {
	p.queue = append(p.queue, j)
	p.schedule(env)
}

// Complete implements sim.Policy.
func (p *DepthBackfill) Complete(env sim.Env, _ *job.Job) { p.schedule(env) }

// Wake implements sim.Policy.
func (p *DepthBackfill) Wake(env sim.Env) { p.schedule(env) }

// NextWake implements sim.Policy.
func (p *DepthBackfill) NextWake(int64) (int64, bool) { return 0, false }

// Queued implements sim.Policy.
func (p *DepthBackfill) Queued() []*job.Job { return p.queue }

func (p *DepthBackfill) sortQueue(env sim.Env) {
	if p.Order == OrderFairshare {
		sortFairshare(env, p.queue)
		return
	}
	sortFCFS(p.queue)
}

func (p *DepthBackfill) schedule(env sim.Env) {
	now := env.Now()
	p.sortQueue(env)
	// Start queue heads while they fit.
	for len(p.queue) > 0 && p.queue[0].Nodes <= env.FreeNodes() {
		if err := env.Start(p.queue[0]); err != nil {
			panic(err)
		}
		p.queue = p.queue[1:]
	}
	if len(p.queue) == 0 {
		return
	}
	// Build a profile of the running jobs and reserve the first Depth jobs
	// left to right.
	prof := baseProfile(env)
	depth := p.Depth
	if depth > len(p.queue) {
		depth = len(p.queue)
	}
	for _, r := range p.queue[:depth] {
		s, ok := prof.EarliestFit(now, r.Estimate, r.Nodes)
		if !ok {
			panic(fmt.Sprintf("sched: depth reservation impossible for %v", r))
		}
		if err := prof.Occupy(s, s+r.Estimate, r.Nodes); err != nil {
			panic(fmt.Sprintf("sched: depth reserve: %v", err))
		}
	}
	// Backfill the rest: a candidate may start now only if its rectangle
	// fits the reserved profile starting immediately.
	kept := p.queue[:depth]
	for _, c := range p.queue[depth:] {
		if c.Nodes <= env.FreeNodes() && fitsNow(prof, now, c) {
			if err := prof.Occupy(now, now+c.Estimate, c.Nodes); err != nil {
				panic(fmt.Sprintf("sched: depth backfill: %v", err))
			}
			if err := env.Start(c); err != nil {
				panic(err)
			}
			continue
		}
		kept = append(kept, c)
	}
	p.queue = kept
}

// fitsNow reports whether a job starting immediately fits the profile for
// its whole estimated duration.
func fitsNow(prof *profile.Profile, now int64, c *job.Job) bool {
	s, ok := prof.EarliestFit(now, c.Estimate, c.Nodes)
	return ok && s == now
}

// Reservations exposes the current reservation starts of the first Depth
// queued jobs for tests: computed fresh from a snapshot profile.
func (p *DepthBackfill) Reservations(env sim.Env) map[job.ID]int64 {
	now := env.Now()
	prof := baseProfile(env)
	q := append([]*job.Job(nil), p.queue...)
	if p.Order == OrderFairshare {
		env.Fairshare().SortJobs(q)
	} else {
		sort.SliceStable(q, func(i, k int) bool {
			if q[i].Submit != q[k].Submit {
				return q[i].Submit < q[k].Submit
			}
			return q[i].ID < q[k].ID
		})
	}
	depth := p.Depth
	if depth > len(q) {
		depth = len(q)
	}
	out := make(map[job.ID]int64, depth)
	for _, r := range q[:depth] {
		s, ok := prof.EarliestFit(now, r.Estimate, r.Nodes)
		if !ok {
			continue
		}
		if err := prof.Occupy(s, s+r.Estimate, r.Nodes); err != nil {
			continue
		}
		out[r.ID] = s
	}
	return out
}
