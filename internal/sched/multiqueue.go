package sched

import (
	"fmt"
	"sort"
	"strings"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// QueueConfig describes one node of a partition's queue tree for
// NewMultiQueue. Entries with a Spec are leaves (each backed by its own
// Composite); entries without one are inner nodes contributing only
// shares and quotas. Undeclared ancestors implied by leaf paths get
// guarantee 1 and no quota.
type QueueConfig struct {
	// Path is the queue-tree position ('/'-separated).
	Path string
	// Spec is the leaf's policy; nil marks an inner node.
	Spec *Spec
	// Guarantee is the node's fair-share weight among siblings (0 = 1).
	Guarantee float64
	// Cap limits the subtree to this fraction of the system's nodes;
	// 0 or 1 = no quota. Capped subtrees cannot use reservation-guaranteed
	// backfill (conservative/consdyn) on their leaves: those disciplines
	// start jobs on promised capacity the quota may not honour.
	Cap float64
}

// MultiQueue is a sim.Policy composing one Composite per leaf queue of a
// partition's queue tree. Jobs route to leaves by a caller-supplied
// function; each leaf schedules with its own policy over an environment
// whose free capacity is clamped by the quota chain above it; usage
// accrues to a fairshare.Tree rolled up the tree, and when capacity is
// released every other leaf gets a scheduling pass in hierarchical
// fair order (lowest usage/guarantee at the first diverging tree level
// first).
//
// With a single leaf queue and no quotas the wrapper is transparent: the
// one Composite sees the same environment and the same event sequence as
// a flat run, so records and reports are byte-identical (the
// flat-equivalence suite pins this).
type MultiQueue struct {
	cfgs  []QueueConfig
	route func(*job.Job) int
	fsCfg fairshare.Config
	epoch int64

	qs        []*Composite
	leafPaths []string
	leafCfg   []QueueConfig

	tree        *fairshare.Tree
	chains      [][]int // leaf index -> node ids, root first
	guarantee   map[int]float64
	capFrac     map[int]float64 // node id -> cap fraction, <1 entries only
	maxNodes    map[int]int     // resolved at Reset from the system size
	running     map[int]int     // node id -> running nodes (quota accounting)
	leafRunning []fairshare.Usage
	envs        []queueEnv
	order       []int
	clamped     bool
}

// NewMultiQueue assembles the policy for a partition's queue tree. Leaf
// entries must carry a Spec (callers resolve inherited policies first);
// route maps every job to a leaf index (in the order leaves appear in
// queues). The fairshare config and epoch mirror the simulator's, so tree
// accrual decays on the same boundaries as per-user usage.
func NewMultiQueue(queues []QueueConfig, route func(*job.Job) int, fsCfg fairshare.Config, epoch int64) (*MultiQueue, error) {
	if route == nil {
		return nil, fmt.Errorf("sched: multiqueue: nil route")
	}
	mq := &MultiQueue{cfgs: queues, route: route, fsCfg: fsCfg, epoch: foldEpoch(epoch, fsCfg)}
	for _, qc := range queues {
		if qc.Spec == nil {
			continue
		}
		c, err := New(*qc.Spec)
		if err != nil {
			return nil, fmt.Errorf("sched: multiqueue: queue %s: %w", qc.Path, err)
		}
		if capped(queues, qc.Path) {
			switch qc.Spec.Backfill {
			case BackfillConservative, BackfillConservativeDynamic:
				return nil, fmt.Errorf("sched: multiqueue: queue %s: bf=%s starts jobs on reserved capacity and cannot run under a cap= quota",
					qc.Path, qc.Spec.Backfill)
			}
		}
		mq.qs = append(mq.qs, c)
		mq.leafPaths = append(mq.leafPaths, qc.Path)
		mq.leafCfg = append(mq.leafCfg, qc)
	}
	if len(mq.qs) == 0 {
		return nil, fmt.Errorf("sched: multiqueue: no leaf queues")
	}
	return mq, nil
}

// capped reports whether path or any declared ancestor carries a quota.
func capped(queues []QueueConfig, path string) bool {
	for _, qc := range queues {
		if qc.Cap == 0 || qc.Cap == 1 {
			continue
		}
		if qc.Path == path || (len(path) > len(qc.Path) && strings.HasPrefix(path, qc.Path) && path[len(qc.Path)] == '/') {
			return true
		}
	}
	return false
}

// foldEpoch folds a positive epoch to its congruent value in
// (-interval, 0], exactly as the simulator does for its per-user tracker,
// so the tree's decay boundaries land on the same instants.
func foldEpoch(epoch int64, cfg fairshare.Config) int64 {
	if epoch <= 0 {
		return epoch
	}
	interval := cfg.DecayInterval
	if interval <= 0 {
		interval = 24 * 3600
	}
	if epoch %= interval; epoch > 0 {
		epoch -= interval
	}
	return epoch
}

// Name implements sim.Policy: the single leaf's name when the tree is
// trivial, a queue=path:policy listing otherwise.
func (mq *MultiQueue) Name() string {
	if len(mq.qs) == 1 {
		return mq.qs[0].Name()
	}
	parts := make([]string, len(mq.qs))
	for i, c := range mq.qs {
		parts[i] = mq.leafPaths[i] + ":" + c.Name()
	}
	return "queues[" + strings.Join(parts, ",") + "]"
}

// Leaf returns leaf i's Composite (diagnostics and tests).
func (mq *MultiQueue) Leaf(i int) *Composite { return mq.qs[i] }

// LeafPaths returns the leaf queue paths in routing-index order.
func (mq *MultiQueue) LeafPaths() []string { return mq.leafPaths }

// Reset implements sim.Policy: fresh tree, counters and leaf policies.
func (mq *MultiQueue) Reset(env sim.Env) {
	mq.tree = fairshare.NewTree(mq.fsCfg, mq.epoch)
	mq.guarantee = make(map[int]float64)
	mq.capFrac = make(map[int]float64)
	mq.maxNodes = make(map[int]int)
	mq.running = make(map[int]int)
	mq.clamped = false
	for _, qc := range mq.cfgs {
		n := mq.tree.NodeFor(qc.Path)
		if qc.Guarantee != 0 {
			mq.guarantee[n] = qc.Guarantee
		}
		if qc.Cap != 0 && qc.Cap != 1 {
			mq.capFrac[n] = qc.Cap
			mq.maxNodes[n] = int(qc.Cap * float64(env.SystemSize()))
			mq.clamped = true
		}
	}
	mq.chains = mq.chains[:0]
	mq.leafRunning = mq.leafRunning[:0]
	for _, path := range mq.leafPaths {
		leaf := mq.tree.NodeFor(path)
		var chain []int
		for n := leaf; n >= 0; n = mq.tree.Parent(n) {
			chain = append(chain, n)
		}
		for i, k := 0, len(chain)-1; i < k; i, k = i+1, k-1 {
			chain[i], chain[k] = chain[k], chain[i]
		}
		mq.chains = append(mq.chains, chain)
		mq.leafRunning = append(mq.leafRunning, fairshare.Usage{User: leaf})
	}
	mq.envs = make([]queueEnv, len(mq.qs))
	for i := range mq.envs {
		mq.envs[i] = queueEnv{mq: mq, leaf: i}
	}
	// Settle the pre-trace span [epoch, 0) on an empty tree, like the
	// simulator's tracker.
	if err := mq.tree.Accrue(env.Now(), nil); err != nil {
		panic(fmt.Sprintf("sched: multiqueue: tree accrual: %v", err))
	}
	for i, c := range mq.qs {
		c.Reset(mq.env(env, i))
	}
}

// env returns leaf i's wrapped environment, rebound to the current base.
func (mq *MultiQueue) env(base sim.Env, i int) sim.Env {
	mq.envs[i].Env = base
	return &mq.envs[i]
}

// settle advances the usage tree to the event instant at the current
// running levels, before any of the event's starts or releases.
func (mq *MultiQueue) settle(env sim.Env) {
	if err := mq.tree.Accrue(env.Now(), mq.leafRunning); err != nil {
		panic(fmt.Sprintf("sched: multiqueue: tree accrual: %v", err))
	}
}

// leafFor routes a job to its leaf index.
func (mq *MultiQueue) leafFor(j *job.Job) int {
	i := mq.route(j)
	if i < 0 || i >= len(mq.qs) {
		panic(fmt.Sprintf("sched: multiqueue: route(%d) = %d out of range [0, %d)", j.ID, i, len(mq.qs)))
	}
	return i
}

// Arrive implements sim.Policy: the owning leaf queues and schedules.
// Other leaves are not woken — an arrival frees no capacity, so their
// scheduling state cannot have improved (and the flat single-queue event
// sequence is preserved exactly).
func (mq *MultiQueue) Arrive(env sim.Env, j *job.Job) {
	mq.settle(env)
	i := mq.leafFor(j)
	mq.qs[i].Arrive(mq.env(env, i), j)
}

// Complete implements sim.Policy: quota release and the owning leaf's
// completion pass first, then every other leaf gets a scheduling pass in
// hierarchical fair order — the released capacity is contended for by the
// least-served subtree first.
func (mq *MultiQueue) Complete(env sim.Env, j *job.Job) {
	mq.settle(env)
	i := mq.leafFor(j)
	mq.leafRunning[i].Nodes -= j.Nodes
	if mq.clamped {
		for _, n := range mq.chains[i] {
			if _, ok := mq.maxNodes[n]; ok {
				mq.running[n] -= j.Nodes
			}
		}
	}
	mq.qs[i].Complete(mq.env(env, i), j)
	if len(mq.qs) > 1 {
		for _, k := range mq.fairOrder() {
			if k != i {
				mq.qs[k].Wake(mq.env(env, k))
			}
		}
	}
}

// Wake implements sim.Policy: every leaf reschedules in fair order (the
// leaf whose timer fired is among them; extra passes on the others are
// no-ops when nothing changed).
func (mq *MultiQueue) Wake(env sim.Env) {
	mq.settle(env)
	if len(mq.qs) == 1 {
		mq.qs[0].Wake(mq.env(env, 0))
		return
	}
	for _, k := range mq.fairOrder() {
		mq.qs[k].Wake(mq.env(env, k))
	}
}

// NextWake implements sim.Policy: the earliest leaf timer.
func (mq *MultiQueue) NextWake(now int64) (int64, bool) {
	best, ok := int64(0), false
	for _, c := range mq.qs {
		if t, o := c.NextWake(now); o && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// Queued implements sim.Policy: leaf queues concatenated in path order.
func (mq *MultiQueue) Queued() []*job.Job {
	if len(mq.qs) == 1 {
		return mq.qs[0].Queued()
	}
	var out []*job.Job
	for _, c := range mq.qs {
		out = append(out, c.Queued()...)
	}
	return out
}

// fairOrder sorts leaf indices by hierarchical fair share: walking the
// two leaves' ancestor chains from the root, the first level where they
// diverge compares the sibling subtrees' usage/guarantee ratios; ties
// fall back to path order. Stable and deterministic for equal usage.
func (mq *MultiQueue) fairOrder() []int {
	mq.order = mq.order[:0]
	for i := range mq.qs {
		mq.order = append(mq.order, i)
	}
	sort.SliceStable(mq.order, func(x, y int) bool { return mq.leafLess(mq.order[x], mq.order[y]) })
	return mq.order
}

func (mq *MultiQueue) leafLess(a, b int) bool {
	ca, cb := mq.chains[a], mq.chains[b]
	for l := 0; l < len(ca) && l < len(cb); l++ {
		if ca[l] == cb[l] {
			continue
		}
		ra := mq.tree.Usage(ca[l]) / mq.guaranteeOf(ca[l])
		rb := mq.tree.Usage(cb[l]) / mq.guaranteeOf(cb[l])
		if ra != rb {
			return ra < rb
		}
		break
	}
	return mq.leafPaths[a] < mq.leafPaths[b]
}

func (mq *MultiQueue) guaranteeOf(node int) float64 {
	if g, ok := mq.guarantee[node]; ok {
		return g
	}
	return 1
}

// queueEnv is a leaf queue's view of the simulator: identical to the base
// environment except that free capacity is clamped by every quota on the
// leaf's ancestor chain, and starts maintain the quota and accrual
// counters. With no quotas on the chain FreeNodes passes through
// untouched, so an unclamped leaf's policy sees exactly the flat
// environment.
type queueEnv struct {
	sim.Env
	mq   *MultiQueue
	leaf int
}

// FreeNodes implements sim.Env with the quota chain applied.
func (e *queueEnv) FreeNodes() int {
	free := e.Env.FreeNodes()
	mq := e.mq
	if !mq.clamped {
		return free
	}
	for _, n := range mq.chains[e.leaf] {
		if m, ok := mq.maxNodes[n]; ok {
			if r := m - mq.running[n]; r < free {
				free = r
			}
		}
	}
	if free < 0 {
		free = 0
	}
	return free
}

// Start implements sim.Env, charging the quota chain and the leaf's
// accrual stream on success.
func (e *queueEnv) Start(j *job.Job) error {
	if err := e.Env.Start(j); err != nil {
		return err
	}
	mq := e.mq
	mq.leafRunning[e.leaf].Nodes += j.Nodes
	if mq.clamped {
		for _, n := range mq.chains[e.leaf] {
			if _, ok := mq.maxNodes[n]; ok {
				mq.running[n] += j.Nodes
			}
		}
	}
	return nil
}
