package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// headTracker records, for every job, the earliest aggressive reservation
// computed for it while it was the blocked queue head.
type headTracker struct {
	sim.BaseObserver
	pol      *Composite
	earliest map[job.ID]int64
}

func (h *headTracker) snapshot(env sim.Env) {
	q := h.pol.Queued()
	if len(q) == 0 {
		return
	}
	head := q[0]
	if head.Nodes <= env.FreeNodes() {
		return // not blocked
	}
	at, _ := reservation(env, head.Nodes)
	if prev, ok := h.earliest[head.ID]; !ok || at < prev {
		h.earliest[head.ID] = at
	}
}

func (h *headTracker) JobArrived(env sim.Env, _ *job.Job, _ []*job.Job) { h.snapshot(env) }
func (h *headTracker) JobStarted(env sim.Env, _ *job.Job)               { h.snapshot(env) }
func (h *headTracker) JobCompleted(env sim.Env, _ *job.Job, _ int64)    { h.snapshot(env) }

// TestEASYHeadNeverMissesItsReservation: with perfect estimates, a blocked
// head starts no later than the earliest reservation it was ever promised —
// backfilled jobs are exactly those that cannot delay it.
func TestEASYHeadNeverMissesItsReservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		n := rng.Intn(25) + 5
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(500) + 1
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(4) + 1,
				Submit:   rng.Int63n(1500),
				Runtime:  runtime,
				Estimate: runtime, // perfect estimates
				Nodes:    rng.Intn(size) + 1,
			}
		}
		pol := MustParse("easy")
		tracker := &headTracker{pol: pol, earliest: map[job.ID]int64{}}
		res, err := sim.New(sim.Config{SystemSize: size, Validate: true}, pol, tracker).Run(jobs)
		if err != nil {
			return false
		}
		for _, r := range res.Records {
			if promised, ok := tracker.earliest[r.Job.ID]; ok && r.Start > promised {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEASYFairshareOrderPrefersLightUsers(t *testing.T) {
	day := int64(86400)
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 2 * day, Estimate: 2 * day, Nodes: 8}, // usage for user 1
		{ID: 2, User: 1, Submit: 100, Runtime: 1000, Estimate: 1000, Nodes: 8},
		{ID: 3, User: 2, Submit: 200, Runtime: 1000, Estimate: 1000, Nodes: 8},
	}
	starts := runPolicy(t, MustParse("easy.fairshare"), 8, jobs)
	if !(starts[3] < starts[2]) {
		t.Fatalf("fairshare EASY should run the light user first: job3=%d job2=%d",
			starts[3], starts[2])
	}
}

func TestEASYDrainsQueueCompletely(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 8
		n := rng.Intn(40) + 1
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(300) + 1
			est := runtime + rng.Int63n(600)
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(6) + 1,
				Submit:   rng.Int63n(1000),
				Runtime:  runtime,
				Estimate: est,
				Nodes:    rng.Intn(size) + 1,
			}
		}
		res, err := sim.New(sim.Config{SystemSize: size, Validate: true}, MustParse("easy")).Run(jobs)
		if err != nil {
			return false
		}
		return len(res.Records) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEASYWithStarvationEscalation: easy.starve24 behaves like EASY until a
// job has waited past the threshold, then the starved job owns the
// reservation set.
func TestEASYWithStarvationEscalation(t *testing.T) {
	day := int64(24 * 3600)
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 10 * day, Estimate: 10 * day, Nodes: 5},
		{ID: 2, User: 2, Submit: 10, Runtime: 10 * day, Estimate: 10 * day, Nodes: 6}, // starves
		{ID: 3, User: 3, Submit: 20, Runtime: 10 * day, Estimate: 10 * day, Nodes: 3},
		{ID: 4, User: 4, Submit: day + 100, Runtime: 10 * day, Estimate: 10 * day, Nodes: 3},
	}
	starts := runPolicy(t, MustParse("easy.starve24"), 8, jobs)
	if starts[4] < 10*day {
		t.Fatalf("job 4 started at %d, delaying the starved head", starts[4])
	}
}
