package sched

import (
	"math/rand"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/sim"
	"fairsched/internal/workload"
)

// mustParseNoCache builds a policy with the conservative engine's
// revalidation cache disabled — the from-scratch reference path.
func mustParseNoCache(t testing.TB, spec string) *Composite {
	t.Helper()
	pol := MustParse(spec)
	eng, ok := pol.engine.(*conservativeEngine)
	if !ok {
		t.Fatalf("%s has no conservative engine", spec)
	}
	eng.noCache = true
	return pol
}

// runRecords executes one policy over a workload and returns the full
// records plus the event count.
func runRecords(t testing.TB, pol *Composite, cfg sim.Config, jobs []*job.Job) *sim.Result {
	t.Helper()
	res, err := sim.New(cfg, pol).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertSameSchedule fails unless both results describe the identical
// schedule: same records (submit, start, complete, flags) in the same
// order and the same event count.
func assertSameSchedule(t *testing.T, name string, got, want *sim.Result) {
	t.Helper()
	if got.Events != want.Events {
		t.Errorf("%s: events %d != reference %d", name, got.Events, want.Events)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("%s: %d records != reference %d", name, len(got.Records), len(want.Records))
	}
	for i, g := range got.Records {
		w := want.Records[i]
		if g.Job.ID != w.Job.ID || g.Submit != w.Submit || g.Start != w.Start ||
			g.Complete != w.Complete || g.Killed != w.Killed || g.Finished != w.Finished {
			t.Fatalf("%s: record %d diverged:\n  cached:    %+v (job %d)\n  reference: %+v (job %d)",
				name, i, *g, g.Job.ID, *w, w.Job.ID)
		}
	}
}

// TestConservativeCacheMatchesFromScratch: the revalidation cache is a pure
// optimization — for both disciplines the produced schedule must be
// identical, event for event, to the from-scratch rebuild on calm and
// contended workloads, with perfect estimates, overestimates and
// underestimates (overrun backoff, the cache's full-rebuild fallback), and
// with max-runtime splitting and kill policies in play.
func TestConservativeCacheMatchesFromScratch(t *testing.T) {
	h := int64(3600)
	type tc struct {
		name  string
		cfg   sim.Config
		scale float64
	}
	cases := []tc{
		{"calm", sim.Config{SystemSize: 500, Validate: true}, 0.02},
		{"contended", sim.Config{SystemSize: 100, Validate: true}, 0.05},
		{"split-upfront", sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitUpfront, Validate: true}, 0.04},
		{"split-chained", sim.Config{SystemSize: 100, MaxRuntime: 24 * h, Split: sim.SplitChained, Validate: true}, 0.04},
		{"kill-always", sim.Config{SystemSize: 100, Kill: sim.KillAlways, Validate: true}, 0.04},
		{"kill-when-needed", sim.Config{SystemSize: 100, Kill: sim.KillWhenNeeded, Validate: true}, 0.04},
	}
	for _, spec := range []string{"cons.nomax", "consdyn.nomax", "cons.sjf", "consdyn.lxf"} {
		for _, c := range cases {
			t.Run(spec+"/"+c.name, func(t *testing.T) {
				jobs, err := workload.Generate(workload.Config{Seed: 11, Scale: c.scale, SystemSize: c.cfg.SystemSize})
				if err != nil {
					t.Fatal(err)
				}
				cached := runRecords(t, MustParse(spec), c.cfg, jobs)
				ref := runRecords(t, mustParseNoCache(t, spec), c.cfg, jobs)
				assertSameSchedule(t, spec+"/"+c.name, cached, ref)
			})
		}
	}
}

// TestConsdynPartialRebuildHoleHeavy targets the dynamic engine's
// hole-aware partial rebuild (partialRebuild): workloads dominated by large
// overestimates, so nearly every completion is early and opens a hole, and
// short jobs that can actually reach the released windows. Every released
// interval must produce exactly the schedule the from-scratch replay
// produces — including the verbatim prefix the partial rebuild skips.
func TestConsdynPartialRebuildHoleHeavy(t *testing.T) {
	for seed := int64(100); seed < 160; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const size = 24
		n := rng.Intn(60) + 10
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(300) + 1
			// Overestimate almost always (holes), occasionally exactly.
			est := runtime * (rng.Int63n(10) + 1)
			if rng.Intn(10) == 0 {
				est = runtime
			}
			nodes := rng.Intn(size/2) + 1
			if rng.Intn(5) == 0 {
				nodes = size/2 + rng.Intn(size/2) + 1 // wide: forces far reservations
			}
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(6) + 1,
				Submit:   rng.Int63n(600),
				Runtime:  runtime,
				Estimate: est,
				Nodes:    nodes,
			}
		}
		for _, spec := range []string{"consdyn.nomax", "consdyn.lxf", "consdyn.sjf"} {
			cfg := sim.Config{SystemSize: size, Validate: true}
			cached := runRecords(t, MustParse(spec), cfg, jobs)
			ref := runRecords(t, mustParseNoCache(t, spec), cfg, jobs)
			assertSameSchedule(t, spec, cached, ref)
			if t.Failed() {
				t.Fatalf("seed %d diverged", seed)
			}
		}
	}
}

// TestConservativeCacheMatchesRandomized sweeps random small workloads with
// mixed estimate quality — heavy on underestimates, so the overrun-backoff
// fallback and the same-instant completion batches are exercised — through
// cached and reference engines.
func TestConservativeCacheMatchesRandomized(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		n := rng.Intn(40) + 5
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(500) + 1
			est := runtime
			switch rng.Intn(3) {
			case 0:
				est = runtime * (rng.Int63n(8) + 1)
			case 1:
				est = runtime/2 + 1
			}
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(4) + 1,
				Submit:   rng.Int63n(1000),
				Runtime:  runtime,
				Estimate: est,
				Nodes:    rng.Intn(size) + 1,
			}
		}
		for _, spec := range []string{"cons.nomax", "consdyn.nomax"} {
			cfg := sim.Config{SystemSize: size, Validate: true}
			cached := runRecords(t, MustParse(spec), cfg, jobs)
			ref := runRecords(t, mustParseNoCache(t, spec), cfg, jobs)
			for i := range cached.Records {
				g, w := cached.Records[i], ref.Records[i]
				if g.Job.ID != w.Job.ID || g.Start != w.Start || g.Complete != w.Complete {
					t.Fatalf("seed %d %s record %d: cached start=%d complete=%d, reference start=%d complete=%d (job %d vs %d)",
						seed, spec, i, g.Start, g.Complete, w.Start, w.Complete, g.Job.ID, w.Job.ID)
				}
			}
			if cached.Events != ref.Events {
				t.Fatalf("seed %d %s: events %d != %d", seed, spec, cached.Events, ref.Events)
			}
		}
	}
}
