package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// depthSpec builds a depth-n backfilling spec over the given order.
func depthSpec(depth int, order string) *Composite {
	return MustNew(Spec{Order: order, Backfill: BackfillDepth, Depth: depth})
}

func TestDepthOneFCFSBehavesLikeEASY(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},
		{ID: 3, User: 3, Submit: 20, Runtime: 30, Estimate: 30, Nodes: 2},
	}
	easy := runPolicy(t, MustParse("easy"), 8, jobs)
	depth1 := runPolicy(t, depthSpec(1, "fcfs"), 8, jobs)
	for id := range easy {
		if easy[id] != depth1[id] {
			t.Fatalf("job %d: easy starts at %d, depth1 at %d", id, easy[id], depth1[id])
		}
	}
}

func TestDepthTwoProtectsSecondJob(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 5},
		// Head: 4 nodes, reserved at 100 (4 spare then). Second: 7 nodes,
		// reserved at 150 (1 spare then).
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 4},
		{ID: 3, User: 3, Submit: 15, Runtime: 50, Estimate: 50, Nodes: 7},
		// A long 3-node job fits the free nodes and the head's shadow
		// (4 spare at t=100) but violates job 3's reservation (1 spare at
		// t=150): depth-1 starts it immediately, depth-2 denies it until
		// job 3 has actually run.
		{ID: 4, User: 4, Submit: 20, Runtime: 1000, Estimate: 1000, Nodes: 3},
	}
	easy := runPolicy(t, depthSpec(1, "fcfs"), 8, jobs)
	depth2 := runPolicy(t, depthSpec(2, "fcfs"), 8, jobs)
	if easy[4] != 20 {
		t.Fatalf("depth-1 should backfill job 4 at 20 (only the head is protected), got %d", easy[4])
	}
	if depth2[3] != 150 {
		t.Fatalf("job 3's reservation violated under depth-2: started at %d, want 150", depth2[3])
	}
	if depth2[4] != 200 {
		t.Fatalf("depth-2 must hold job 4 until job 3 runs; started at %d, want 200", depth2[4])
	}
}

func TestDepthReservedJobsStartOnTimeWithPerfectEstimates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		n := rng.Intn(25) + 5
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(400) + 1
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(5) + 1,
				Submit:   rng.Int63n(1500),
				Runtime:  runtime,
				Estimate: runtime,
				Nodes:    rng.Intn(size) + 1,
			}
		}
		for _, depth := range []int{1, 2, 4} {
			res, err := sim.New(sim.Config{SystemSize: size, Validate: true},
				depthSpec(depth, "fcfs")).Run(jobs)
			if err != nil {
				return false
			}
			for _, r := range res.Records {
				if !r.Finished {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthFairshareOrder(t *testing.T) {
	day := int64(86400)
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 2 * day, Estimate: 2 * day, Nodes: 8}, // usage wall
		{ID: 2, User: 1, Submit: 100, Runtime: 1000, Estimate: 1000, Nodes: 8},
		{ID: 3, User: 2, Submit: 200, Runtime: 1000, Estimate: 1000, Nodes: 8},
	}
	starts := runPolicy(t, MustParse("depth2"), 8, jobs)
	if !(starts[3] < starts[2]) {
		t.Fatalf("fairshare depth policy should run the light user first: %d vs %d",
			starts[3], starts[2])
	}
}

func TestDepthNames(t *testing.T) {
	if got := MustParse("depth4").Name(); got != "depth4" {
		t.Fatalf("name = %q", got)
	}
	if got := depthSpec(4, "fairshare").Name(); got != "order=fairshare+bf=depth+depth=4" {
		t.Fatalf("canonical name = %q", got)
	}
	if got := MustParse("depth8.fcfs").Spec().Order; got != "fcfs" {
		t.Fatalf("depth8.fcfs order = %q", got)
	}
}

func TestDepthReservationsAccessor(t *testing.T) {
	pol := depthSpec(2, "fcfs")
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 1000, Estimate: 1000, Nodes: 8},
		{ID: 2, User: 2, Submit: 10, Runtime: 100, Estimate: 100, Nodes: 8},
		{ID: 3, User: 3, Submit: 20, Runtime: 100, Estimate: 100, Nodes: 8},
	}
	probe := &depthReservationProbe{pol: pol}
	if _, err := sim.New(sim.Config{SystemSize: 8, Validate: true}, pol, probe).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if !probe.sawReservations {
		t.Fatal("depth reservations never observed mid-run")
	}
}

type depthReservationProbe struct {
	sim.BaseObserver
	pol             *Composite
	sawReservations bool
}

func (p *depthReservationProbe) JobArrived(env sim.Env, _ *job.Job, _ []*job.Job) {
	if len(p.pol.Reservations(env)) > 0 {
		p.sawReservations = true
	}
}

func TestDepthDeeperIsNeverLessProtective(t *testing.T) {
	// With accurate estimates, increasing depth can only delay backfilled
	// jobs (more reservations to respect); reserved jobs never start later
	// than under a shallower depth... this global claim is not exactly
	// monotone in theory, so assert the weaker, always-true property: all
	// jobs complete and no start precedes its submission.
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 300, Estimate: 300, Nodes: 10},
		{ID: 2, User: 2, Submit: 5, Runtime: 200, Estimate: 200, Nodes: 10},
		{ID: 3, User: 3, Submit: 10, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 4, User: 4, Submit: 15, Runtime: 500, Estimate: 500, Nodes: 4},
		{ID: 5, User: 5, Submit: 20, Runtime: 50, Estimate: 50, Nodes: 2},
	}
	for depth := 1; depth <= 5; depth++ {
		starts := runPolicy(t, depthSpec(depth, "fcfs"), 16, jobs)
		for id, s := range starts {
			var submit int64
			for _, j := range jobs {
				if j.ID == id {
					submit = j.Submit
				}
			}
			if s < submit {
				t.Fatalf("depth %d: job %d started before submission", depth, id)
			}
		}
	}
}
