package sched

import (
	"fmt"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// NoGuarantee is the baseline CPlant scheduler (paper §2.1) with the §5.2
// knobs:
//
//   - the main queue is processed in fairshare priority order at every
//     scheduling event; any job that fits in the free nodes starts
//     (no-guarantee backfilling — no internal reservations);
//   - a job queued longer than StarvationWait moves to the FCFS starvation
//     queue, unless its user is classified heavy by Heavy;
//   - the starvation queue's head holds an aggressive reservation; all other
//     jobs may start only if they do not delay it.
type NoGuarantee struct {
	// StarvationWait is the queueing time after which a job becomes
	// eligible for the starvation queue (24h on CPlant; §5.5 also uses 72h).
	StarvationWait int64
	// Heavy bars heavy users' jobs from the starvation queue (§5.2);
	// fairshare.Never admits everyone (the *.all policies).
	Heavy fairshare.HeavyClassifier
	// ReserveDepth is the number of starvation-queue heads holding
	// reservations. CPlant reserved only the head (1, the default); larger
	// depths are an extension that strengthens the starvation guarantee at
	// a utilization cost (see the ablation benches).
	ReserveDepth int
	// Label overrides Name (the paper's cplant24.nomax.all style names).
	Label string

	main    []*job.Job
	starved []*job.Job
}

// NewNoGuarantee returns the baseline CPlant policy: 24h starvation wait,
// all users admitted to the starvation queue.
func NewNoGuarantee() *NoGuarantee {
	return &NoGuarantee{StarvationWait: 24 * 3600, Heavy: fairshare.Never{}}
}

// Name implements sim.Policy.
func (p *NoGuarantee) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("cplant%d.%s", p.StarvationWait/3600, p.Heavy.Name())
}

// Reset implements sim.Policy.
func (p *NoGuarantee) Reset(sim.Env) {
	p.main, p.starved = nil, nil
	if p.Heavy == nil {
		p.Heavy = fairshare.Never{}
	}
	if p.StarvationWait <= 0 {
		p.StarvationWait = 24 * 3600
	}
	if p.ReserveDepth < 1 {
		p.ReserveDepth = 1
	}
}

// Arrive implements sim.Policy.
func (p *NoGuarantee) Arrive(env sim.Env, j *job.Job) {
	p.main = append(p.main, j)
	p.schedule(env)
}

// Complete implements sim.Policy.
func (p *NoGuarantee) Complete(env sim.Env, _ *job.Job) { p.schedule(env) }

// Wake implements sim.Policy.
func (p *NoGuarantee) Wake(env sim.Env) { p.schedule(env) }

// NextWake implements sim.Policy: the next starvation-promotion instant.
func (p *NoGuarantee) NextWake(now int64) (int64, bool) {
	var t int64
	have := false
	for _, j := range p.main {
		e := j.Submit + p.StarvationWait
		if e > now && (!have || e < t) {
			t, have = e, true
		}
	}
	return t, have
}

// StarvedLen reports the current starvation-queue length (diagnostics).
func (p *NoGuarantee) StarvedLen() int { return len(p.starved) }

// Queued implements sim.Policy: starvation queue first, then the main queue.
func (p *NoGuarantee) Queued() []*job.Job {
	out := make([]*job.Job, 0, len(p.starved)+len(p.main))
	out = append(out, p.starved...)
	out = append(out, p.main...)
	return out
}

// liveUsers returns the distinct users with queued or running jobs, for the
// heavy classifier.
func (p *NoGuarantee) liveUsers(env sim.Env) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(u int) {
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	for _, r := range env.Running() {
		add(r.Job.User)
	}
	for _, j := range p.starved {
		add(j.User)
	}
	for _, j := range p.main {
		add(j.User)
	}
	return out
}

// promote moves starvation-eligible jobs from the main queue to the FCFS
// starvation queue. Heavy users' jobs stay in the main queue and are
// re-evaluated at later events ("temporarily restricted").
func (p *NoGuarantee) promote(env sim.Env) {
	now := env.Now()
	var live []int
	kept := p.main[:0]
	for _, j := range p.main {
		if now-j.Submit < p.StarvationWait {
			kept = append(kept, j)
			continue
		}
		if _, isNever := p.Heavy.(fairshare.Never); !isNever {
			if live == nil {
				live = p.liveUsers(env)
			}
			if p.Heavy.IsHeavy(env.Fairshare(), j.User, live) {
				kept = append(kept, j)
				continue
			}
		}
		p.starved = append(p.starved, j)
	}
	p.main = kept
	sortFCFS(p.starved)
}

func (p *NoGuarantee) schedule(env sim.Env) {
	p.promote(env)
	// Drain starvation-queue heads that fit right now.
	for len(p.starved) > 0 && p.starved[0].Nodes <= env.FreeNodes() {
		if err := env.Start(p.starved[0]); err != nil {
			panic(err)
		}
		p.starved = p.starved[1:]
	}
	sortFairshare(env, p.main)
	if len(p.starved) == 0 {
		// No reservations at all: start everything that fits, in fairshare
		// priority order (no-guarantee backfilling).
		kept := p.main[:0]
		for _, c := range p.main {
			if c.Nodes <= env.FreeNodes() {
				if err := env.Start(c); err != nil {
					panic(err)
				}
				continue
			}
			kept = append(kept, c)
		}
		p.main = kept
		return
	}
	// The first ReserveDepth starvation-queue jobs hold reservations built
	// left to right on the running jobs' estimated completions (CPlant
	// reserved only the head); everything else (rest of the starvation
	// queue FCFS, then the main queue in fairshare order) may start only
	// where it does not delay any reservation.
	depth := p.ReserveDepth
	if depth < 1 {
		depth = 1
	}
	if depth > len(p.starved) {
		depth = len(p.starved)
	}
	if depth == 1 {
		// The production fast path: a single reservation needs no profile.
		head := p.starved[0]
		resAt, shadow := aggressiveReservation(env, head.Nodes)
		backfill := func(q []*job.Job) []*job.Job {
			kept := q[:0]
			for _, c := range q {
				if canBackfill(env, c, resAt, shadow) {
					if env.Now()+c.Estimate > resAt {
						shadow -= c.Nodes
					}
					if err := env.Start(c); err != nil {
						panic(err)
					}
					continue
				}
				kept = append(kept, c)
			}
			return kept
		}
		rest := backfill(p.starved[1:])
		p.starved = append(p.starved[:1], rest...)
		p.main = backfill(p.main)
		return
	}
	prof := baseProfile(env)
	now := env.Now()
	for _, r := range p.starved[:depth] {
		s, ok := prof.EarliestFit(now, r.Estimate, r.Nodes)
		if !ok {
			panic(fmt.Sprintf("sched: starvation reservation impossible for %v", r))
		}
		if err := prof.Occupy(s, s+r.Estimate, r.Nodes); err != nil {
			panic(fmt.Sprintf("sched: starvation reserve: %v", err))
		}
	}
	backfill := func(q []*job.Job) []*job.Job {
		kept := q[:0]
		for _, c := range q {
			if c.Nodes <= env.FreeNodes() && fitsNow(prof, now, c) {
				if err := prof.Occupy(now, now+c.Estimate, c.Nodes); err != nil {
					panic(fmt.Sprintf("sched: starvation backfill: %v", err))
				}
				if err := env.Start(c); err != nil {
					panic(err)
				}
				continue
			}
			kept = append(kept, c)
		}
		return kept
	}
	rest := backfill(p.starved[depth:])
	p.starved = append(p.starved[:depth], rest...)
	p.main = backfill(p.main)
}
