package sched

import (
	"strconv"
	"strings"
)

// Builtin is a registered named policy spec with its listing description.
type Builtin struct {
	Spec
	Description string
}

const (
	hours24 = 24 * hourSeconds
	hours72 = 72 * hourSeconds
)

// builtins is the named-policy registry, in listing order: the paper's nine
// configurations first, then the reference baselines, then the composed
// extensions opened up by the component grammar (size-based and width-based
// orders, starvation guards over them, reservation-depth ablations). Every
// entry is a point in the same (order × backfill × starvation) space; the
// name is shorthand for the chain Spec.Canonical renders.
var builtins = []Builtin{
	// The paper's nine configurations (§5.5), baseline first.
	{Spec{Key: "cplant24.nomax.all", Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: hours24, Heavy: HeavyAll},
		"baseline CPlant: no-guarantee backfilling, 24h starvation queue, everyone admitted"},
	{Spec{Key: "cplant24.nomax.fair", Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: hours24, Heavy: HeavyNonheavy},
		"baseline + heavy users barred from the starvation queue (§5.2)"},
	{Spec{Key: "cplant72.nomax.all", Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: hours72, Heavy: HeavyAll},
		"baseline with a 72h starvation-entry delay (§5.2)"},
	{Spec{Key: "cplant24.72max.all", Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: hours24, Heavy: HeavyAll, MaxRuntime: hours72},
		"baseline + 72h maximum-runtime limit (§5.1)"},
	{Spec{Key: "cplant72.72max.fair", Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: hours72, Heavy: HeavyNonheavy, MaxRuntime: hours72},
		"all three minor changes combined (§5.2)"},
	{Spec{Key: "cons.nomax", Order: "fairshare", Backfill: BackfillConservative},
		"conservative backfilling over the fairshare queue (§5.3)"},
	{Spec{Key: "consdyn.nomax", Order: "fairshare", Backfill: BackfillConservativeDynamic},
		"conservative backfilling with dynamic reservations (§5.4)"},
	{Spec{Key: "cons.72max", Order: "fairshare", Backfill: BackfillConservative, MaxRuntime: hours72},
		"conservative backfilling + 72h maximum-runtime limit"},
	{Spec{Key: "consdyn.72max", Order: "fairshare", Backfill: BackfillConservativeDynamic, MaxRuntime: hours72},
		"dynamic-reservation conservative + 72h maximum-runtime limit"},

	// Reference baselines.
	{Spec{Key: "fcfs", Order: "fcfs", Backfill: BackfillNone},
		"strict first-come-first-serve, no backfilling (Figure 1)"},
	{Spec{Key: "easy", Order: "fcfs", Backfill: BackfillEASY},
		"EASY aggressive backfilling over an FCFS queue (Figure 2)"},
	{Spec{Key: "easy.fairshare", Order: "fairshare", Backfill: BackfillEASY},
		"EASY aggressive backfilling over the fairshare queue"},
	{Spec{Key: "list.fairshare", Order: "fairshare", Backfill: BackfillNone},
		"no-backfill fairshare list scheduler (the hybrid-FST reference discipline, §4.1)"},
	{Spec{Key: "noguarantee", Order: "fairshare", Backfill: BackfillNoGuarantee},
		"pure no-guarantee backfilling, no starvation queue (CPlant minus its safety valve)"},

	// Size-based orders (Dell'Amico et al., "On Fair Size-Based Scheduling";
	// Berg et al., heSRPT) across the backfill disciplines.
	{Spec{Key: "list.sjf", Order: "sjf", Backfill: BackfillNone},
		"shortest-job-first list scheduling, no backfilling"},
	{Spec{Key: "list.lxf", Order: "lxf", Backfill: BackfillNone},
		"largest-expansion-factor-first list scheduling, no backfilling"},
	{Spec{Key: "easy.sjf", Order: "sjf", Backfill: BackfillEASY},
		"EASY backfilling over a shortest-job-first queue"},
	{Spec{Key: "easy.lxf", Order: "lxf", Backfill: BackfillEASY},
		"EASY backfilling over a largest-expansion-factor queue"},
	{Spec{Key: "easy.widest", Order: "widest", Backfill: BackfillEASY},
		"EASY backfilling, widest jobs first"},
	{Spec{Key: "easy.narrowest", Order: "narrowest", Backfill: BackfillEASY},
		"EASY backfilling, narrowest jobs first"},
	{Spec{Key: "cons.fcfs", Order: "fcfs", Backfill: BackfillConservative},
		"classic conservative backfilling over an FCFS queue"},
	{Spec{Key: "cons.sjf", Order: "sjf", Backfill: BackfillConservative},
		"conservative backfilling over a shortest-job-first queue"},
	{Spec{Key: "cons.lxf", Order: "lxf", Backfill: BackfillConservative},
		"conservative backfilling over a largest-expansion-factor queue"},
	{Spec{Key: "consdyn.sjf", Order: "sjf", Backfill: BackfillConservativeDynamic},
		"dynamic-reservation conservative over a shortest-job-first queue"},
	{Spec{Key: "consdyn.lxf", Order: "lxf", Backfill: BackfillConservativeDynamic},
		"dynamic-reservation conservative over a largest-expansion-factor queue"},

	// Heavy-classifier ablations: the *.fair admission rule with the
	// alternative classifiers (quantile and absolute-budget) addressable
	// from the grammar, not just via Composite.SetHeavyClassifier.
	{Spec{Key: "cplant24.nomax.q75", Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: hours24, Heavy: "q75"},
		"baseline with users above the 75th usage quantile barred from the starvation queue"},
	{Spec{Key: "cplant24.nomax.abs280h", Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: hours24, Heavy: "abs280h"},
		"baseline with users above 280h of decayed processor-seconds barred from the starvation queue"},

	// Starvation guards over size-based orders: the anti-starvation safety
	// valve the fairness literature asks for when favoring short jobs.
	{Spec{Key: "cplant24.sjf", Order: "sjf", Backfill: BackfillNoGuarantee, Wait: hours24, Heavy: HeavyAll},
		"no-guarantee backfilling over SJF with the 24h starvation queue"},
	{Spec{Key: "cplant24.lxf", Order: "lxf", Backfill: BackfillNoGuarantee, Wait: hours24, Heavy: HeavyAll},
		"no-guarantee backfilling over LXF with the 24h starvation queue"},
	{Spec{Key: "easy.starve24", Order: "fcfs", Backfill: BackfillEASY, Wait: hours24, Heavy: HeavyAll},
		"EASY backfilling with a 24h starvation queue escalation"},

	// Reservation-depth ablations: the spectrum between aggressive and
	// conservative backfilling.
	{Spec{Key: "depth2", Order: "fairshare", Backfill: BackfillDepth, Depth: 2},
		"depth-2 backfilling: the first 2 fairshare-queue heads hold reservations"},
	{Spec{Key: "depth4", Order: "fairshare", Backfill: BackfillDepth, Depth: 4},
		"depth-4 backfilling over the fairshare queue"},
	{Spec{Key: "depth8", Order: "fairshare", Backfill: BackfillDepth, Depth: 8},
		"depth-8 backfilling over the fairshare queue"},
	{Spec{Key: "depth8.fcfs", Order: "fcfs", Backfill: BackfillDepth, Depth: 8},
		"depth-8 backfilling over an FCFS queue"},
	{Spec{Key: "cplant24.depth2", Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: hours24, Heavy: HeavyAll, Depth: 2},
		"baseline CPlant with the first 2 starvation-queue heads reserved"},

	// Preemptive and deadline-aware policies: checkpoint preemption
	// (preempt=) and the SLO-deadline order (order=edf) open the
	// SRPT/heSRPT line (Berg et al.) against the paper's non-preemptive
	// disciplines, with the SLO attainment tables as the scoreboard.
	{Spec{Key: "easy.preempt", Order: "fcfs", Backfill: BackfillEASY, PreemptTrigger: PreemptReserve, PreemptVictim: VictimLowPri},
		"EASY backfilling that checkpoints the lowest-priority running job when the head would wait"},
	{Spec{Key: "srpt", Order: "sjf", Backfill: BackfillEASY, PreemptTrigger: PreemptReserve, PreemptVictim: VictimLowPri},
		"SRPT-style: shortest-estimate-first with checkpoint preemption (remainders carry shrunken estimates, so preempted work re-sorts by remaining size)"},
	{Spec{Key: "edf", Order: "edf", Backfill: BackfillEASY},
		"earliest-SLO-deadline-first (submit + wait target, breach-risk users promoted) with EASY backfilling"},
	{Spec{Key: "edf.preempt", Order: "edf", Backfill: BackfillEASY, PreemptTrigger: PreemptDeadline, PreemptVictim: VictimLowPri},
		"EDF over SLO deadlines that checkpoints low-priority running jobs once a deadline is missed"},
}

// Builtins returns the named-policy registry in listing order. The returned
// slice is shared; callers must not mutate it.
func Builtins() []Builtin { return builtins }

// Names lists the registered policy names in listing order.
func Names() []string {
	out := make([]string, len(builtins))
	for i, b := range builtins {
		out[i] = b.Key
	}
	return out
}

// Lookup resolves a registered policy name. Besides the registry it accepts
// any "depth<N>" (N >= 1): depth-N backfilling over the fairshare queue.
func Lookup(name string) (Spec, bool) {
	for _, b := range builtins {
		if b.Key == name {
			return b.Spec.normalized(), true
		}
	}
	if rest, ok := strings.CutPrefix(name, "depth"); ok {
		if n, err := strconv.Atoi(rest); err == nil && n >= 1 {
			return Spec{Key: name, Order: "fairshare", Backfill: BackfillDepth, Depth: n}.normalized(), true
		}
	}
	return Spec{}, false
}
