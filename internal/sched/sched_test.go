package sched

import (
	"testing"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// runPolicy executes a policy over a workload on a small validated system
// and returns start times by job id.
func runPolicy(t *testing.T, pol sim.Policy, size int, jobs []*job.Job) map[job.ID]int64 {
	t.Helper()
	res, err := sim.New(sim.Config{SystemSize: size, Validate: true}, pol).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	starts := make(map[job.ID]int64, len(res.Records))
	for _, r := range res.Records {
		starts[r.Job.ID] = r.Start
	}
	return starts
}

// Figure 1: strict FCFS — jobB cannot start even though nodes are free,
// because jobA (ahead of it) does not fit.
func TestFigure1FCFSBlocks(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6}, // running
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},  // jobA: blocked
		{ID: 3, User: 3, Submit: 20, Runtime: 30, Estimate: 30, Nodes: 2},  // jobB: would fit
	}
	starts := runPolicy(t, NewFCFS(), 8, jobs)
	if starts[3] < starts[2] {
		t.Fatalf("strict FCFS must not let jobB (start %d) pass jobA (start %d)", starts[3], starts[2])
	}
	if starts[2] != 100 {
		t.Fatalf("jobA should start when the running job completes, got %d", starts[2])
	}
}

// Figure 2: backfilling — jobB leaps forward into the hole because it does
// not delay jobA's reservation.
func TestFigure2BackfillStarts(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},
		{ID: 3, User: 3, Submit: 20, Runtime: 30, Estimate: 30, Nodes: 2},
	}
	starts := runPolicy(t, NewEASY(OrderFCFS), 8, jobs)
	if starts[3] != 20 {
		t.Fatalf("jobB should backfill immediately at 20, got %d", starts[3])
	}
	if starts[2] != 100 {
		t.Fatalf("jobA must still start at its reservation, got %d", starts[2])
	}
}

func TestEASYDeniesDelayingBackfill(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},
		// Would run past jobA's reservation (t=100) and does not fit the
		// shadow (8-6=2 free at the reservation): denied.
		{ID: 3, User: 3, Submit: 20, Runtime: 300, Estimate: 300, Nodes: 3},
	}
	starts := runPolicy(t, NewEASY(OrderFCFS), 8, jobs)
	if starts[3] < 100 {
		t.Fatalf("backfill would delay the head reservation; started at %d", starts[3])
	}
	if starts[2] != 100 {
		t.Fatalf("head delayed to %d", starts[2])
	}
}

func TestEASYShadowBackfill(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},
		// Runs past the reservation but fits the 2-node shadow: allowed.
		{ID: 3, User: 3, Submit: 20, Runtime: 300, Estimate: 300, Nodes: 2},
	}
	starts := runPolicy(t, NewEASY(OrderFCFS), 8, jobs)
	if starts[3] != 20 {
		t.Fatalf("shadow backfill denied; started at %d", starts[3])
	}
}

func TestListFairshareRunsInPriorityOrder(t *testing.T) {
	// User 1 burns usage first; then both users queue jobs behind a wall.
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 1000, Estimate: 1000, Nodes: 8}, // wall + usage for user 1
		{ID: 2, User: 1, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 4},
		{ID: 3, User: 2, Submit: 20, Runtime: 50, Estimate: 50, Nodes: 4},
	}
	starts := runPolicy(t, NewListFairshare(), 8, jobs)
	if !(starts[3] <= starts[2]) {
		t.Fatalf("user 2 (no usage) should start no later: job3=%d job2=%d", starts[3], starts[2])
	}
}

func TestListFairshareDoesNotBackfill(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},
		{ID: 3, User: 3, Submit: 20, Runtime: 30, Estimate: 30, Nodes: 2},
	}
	starts := runPolicy(t, NewListFairshare(), 8, jobs)
	// Job 3 has the same (zero) usage as job 2 but arrived later; the list
	// scheduler may not let it jump the blocked head.
	if starts[3] < 100 {
		t.Fatalf("no-backfill list scheduler backfilled: job3 at %d", starts[3])
	}
}

func TestAggressiveReservationMath(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 3},
		{ID: 2, User: 2, Submit: 0, Runtime: 200, Estimate: 200, Nodes: 3},
		// Head needs 7: free=2, +3 at t=100, +3 at t=200 -> reservation 200,
		// shadow = 8-7 = 1.
		{ID: 3, User: 3, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 7},
		// 1-node job runs past 200 but fits the shadow.
		{ID: 4, User: 4, Submit: 20, Runtime: 1000, Estimate: 1000, Nodes: 1},
		// 2-node long job would eat the head's nodes: denied until the head starts.
		{ID: 5, User: 5, Submit: 30, Runtime: 1000, Estimate: 1000, Nodes: 2},
	}
	starts := runPolicy(t, NewEASY(OrderFCFS), 8, jobs)
	if starts[3] != 200 {
		t.Fatalf("head reservation should be met at 200, got %d", starts[3])
	}
	if starts[4] != 20 {
		t.Fatalf("shadow-fitting job delayed to %d", starts[4])
	}
	if starts[5] < 200 {
		t.Fatalf("delaying job started at %d before the head", starts[5])
	}
}

func TestQueueOrderString(t *testing.T) {
	if OrderFCFS.String() != "fcfs" || OrderFairshare.String() != "fairshare" {
		t.Fatal("queue order names wrong")
	}
}

func TestPolicyNames(t *testing.T) {
	if NewFCFS().Name() != "fcfs" {
		t.Error("fcfs name")
	}
	if NewListFairshare().Name() != "list.fairshare" {
		t.Error("list name")
	}
	if NewEASY(OrderFairshare).Name() != "easy.fairshare" {
		t.Error("easy name")
	}
	ng := NewNoGuarantee()
	ng.Reset(nil)
	if ng.Name() == "" {
		t.Error("noguarantee name empty")
	}
	if NewConservative(false).Name() != "cons" || NewConservative(true).Name() != "consdyn" {
		t.Error("conservative names")
	}
}

var _ = fairshare.Never{} // keep the import for the label test below
