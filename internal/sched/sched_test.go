package sched

import (
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// runPolicy executes a policy over a workload on a small validated system
// and returns start times by job id.
func runPolicy(t *testing.T, pol sim.Policy, size int, jobs []*job.Job) map[job.ID]int64 {
	t.Helper()
	res, err := sim.New(sim.Config{SystemSize: size, Validate: true}, pol).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	starts := make(map[job.ID]int64, len(res.Records))
	for _, r := range res.Records {
		starts[r.Job.ID] = r.Start
	}
	return starts
}

// Figure 1: strict FCFS — jobB cannot start even though nodes are free,
// because jobA (ahead of it) does not fit.
func TestFigure1FCFSBlocks(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6}, // running
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},  // jobA: blocked
		{ID: 3, User: 3, Submit: 20, Runtime: 30, Estimate: 30, Nodes: 2},  // jobB: would fit
	}
	starts := runPolicy(t, MustParse("fcfs"), 8, jobs)
	if starts[3] < starts[2] {
		t.Fatalf("strict FCFS must not let jobB (start %d) pass jobA (start %d)", starts[3], starts[2])
	}
	if starts[2] != 100 {
		t.Fatalf("jobA should start when the running job completes, got %d", starts[2])
	}
}

// Figure 2: backfilling — jobB leaps forward into the hole because it does
// not delay jobA's reservation.
func TestFigure2BackfillStarts(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},
		{ID: 3, User: 3, Submit: 20, Runtime: 30, Estimate: 30, Nodes: 2},
	}
	starts := runPolicy(t, MustParse("easy"), 8, jobs)
	if starts[3] != 20 {
		t.Fatalf("jobB should backfill immediately at 20, got %d", starts[3])
	}
	if starts[2] != 100 {
		t.Fatalf("jobA must still start at its reservation, got %d", starts[2])
	}
}

func TestEASYDeniesDelayingBackfill(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},
		// Would run past jobA's reservation (t=100) and does not fit the
		// shadow (8-6=2 free at the reservation): denied.
		{ID: 3, User: 3, Submit: 20, Runtime: 300, Estimate: 300, Nodes: 3},
	}
	starts := runPolicy(t, MustParse("easy"), 8, jobs)
	if starts[3] < 100 {
		t.Fatalf("backfill would delay the head reservation; started at %d", starts[3])
	}
	if starts[2] != 100 {
		t.Fatalf("head delayed to %d", starts[2])
	}
}

func TestEASYShadowBackfill(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},
		// Runs past the reservation but fits the 2-node shadow: allowed.
		{ID: 3, User: 3, Submit: 20, Runtime: 300, Estimate: 300, Nodes: 2},
	}
	starts := runPolicy(t, MustParse("easy"), 8, jobs)
	if starts[3] != 20 {
		t.Fatalf("shadow backfill denied; started at %d", starts[3])
	}
}

func TestListFairshareRunsInPriorityOrder(t *testing.T) {
	// User 1 burns usage first; then both users queue jobs behind a wall.
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 1000, Estimate: 1000, Nodes: 8}, // wall + usage for user 1
		{ID: 2, User: 1, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 4},
		{ID: 3, User: 2, Submit: 20, Runtime: 50, Estimate: 50, Nodes: 4},
	}
	starts := runPolicy(t, MustParse("list.fairshare"), 8, jobs)
	if !(starts[3] <= starts[2]) {
		t.Fatalf("user 2 (no usage) should start no later: job3=%d job2=%d", starts[3], starts[2])
	}
}

func TestListFairshareDoesNotBackfill(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 6},
		{ID: 3, User: 3, Submit: 20, Runtime: 30, Estimate: 30, Nodes: 2},
	}
	starts := runPolicy(t, MustParse("list.fairshare"), 8, jobs)
	// Job 3 has the same (zero) usage as job 2 but arrived later; the list
	// scheduler may not let it jump the blocked head.
	if starts[3] < 100 {
		t.Fatalf("no-backfill list scheduler backfilled: job3 at %d", starts[3])
	}
}

func TestAggressiveReservationMath(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 3},
		{ID: 2, User: 2, Submit: 0, Runtime: 200, Estimate: 200, Nodes: 3},
		// Head needs 7: free=2, +3 at t=100, +3 at t=200 -> reservation 200,
		// shadow = 8-7 = 1.
		{ID: 3, User: 3, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 7},
		// 1-node job runs past 200 but fits the shadow.
		{ID: 4, User: 4, Submit: 20, Runtime: 1000, Estimate: 1000, Nodes: 1},
		// 2-node long job would eat the head's nodes: denied until the head starts.
		{ID: 5, User: 5, Submit: 30, Runtime: 1000, Estimate: 1000, Nodes: 2},
	}
	starts := runPolicy(t, MustParse("easy"), 8, jobs)
	if starts[3] != 200 {
		t.Fatalf("head reservation should be met at 200, got %d", starts[3])
	}
	if starts[4] != 20 {
		t.Fatalf("shadow-fitting job delayed to %d", starts[4])
	}
	if starts[5] < 200 {
		t.Fatalf("delaying job started at %d before the head", starts[5])
	}
}

func TestPolicyNames(t *testing.T) {
	for _, tc := range []struct{ spec, want string }{
		{"fcfs", "fcfs"},
		{"list.fairshare", "list.fairshare"},
		{"easy.fairshare", "easy.fairshare"},
		{"cplant24.nomax.all", "cplant24.nomax.all"},
		{"cons.nomax", "cons.nomax"},
		{"consdyn.nomax", "consdyn.nomax"},
		{"order=fairshare+bf=noguarantee+starve=24h.all",
			"order=fairshare+bf=noguarantee+starve=24h.all"},
	} {
		if got := MustParse(tc.spec).Name(); got != tc.want {
			t.Errorf("Name(%q) = %q, want %q", tc.spec, got, tc.want)
		}
	}
}

// TestRemoveClearsVacatedSlot pins the queue-splice hygiene contract every
// in-place splice in this package follows: the vacated tail slot must not
// keep the removed job pointer alive in the backing array.
func TestRemoveClearsVacatedSlot(t *testing.T) {
	a, b, c := &job.Job{ID: 1}, &job.Job{ID: 2}, &job.Job{ID: 3}
	q := []*job.Job{a, b, c}
	q, ok := remove(q, 2)
	if !ok || len(q) != 2 || q[0] != a || q[1] != c {
		t.Fatalf("remove(2) = %v, %v", q, ok)
	}
	if tail := q[:3][2]; tail != nil {
		t.Fatalf("vacated slot still holds job %v", tail.ID)
	}
	if q, ok = remove(q, 99); ok || len(q) != 2 {
		t.Fatalf("remove of absent id = %v, %v", q, ok)
	}
	q2, head := popHead(q)
	if head != a || len(q2) != 1 || q2[0] != c {
		t.Fatalf("popHead = %v, %v", q2, head)
	}
	if tail := q2[:2][1]; tail != nil {
		t.Fatalf("popHead left job %v in the vacated slot", tail.ID)
	}
}

// TestSharedReservationMatchesFirstPrinciples cross-checks the shared-
// profile reservation against a direct release-time derivation on a live
// environment mid-run.
func TestSharedReservationMatchesFirstPrinciples(t *testing.T) {
	probe := &reservationProbe{}
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 3},
		{ID: 2, User: 2, Submit: 0, Runtime: 200, Estimate: 200, Nodes: 3},
		{ID: 3, User: 3, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 7},
	}
	if _, err := sim.New(sim.Config{SystemSize: 8, Validate: true}, MustParse("easy"), probe).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if !probe.checked {
		t.Fatal("probe never saw a blocked-head state")
	}
}

type reservationProbe struct {
	sim.BaseObserver
	checked bool
}

func (p *reservationProbe) JobArrived(env sim.Env, j *job.Job, _ []*job.Job) {
	if j.Nodes <= env.FreeNodes() {
		return
	}
	at, shadow := reservation(env, j.Nodes)
	// First-principles: walk running completions in time order.
	type rel struct {
		t int64
		n int
	}
	free := env.FreeNodes()
	var rels []rel
	for _, r := range env.Running() {
		rels = append(rels, rel{r.EstimatedCompletion(env.Now()), r.Job.Nodes})
	}
	for i := range rels {
		for k := i + 1; k < len(rels); k++ {
			if rels[k].t < rels[i].t {
				rels[i], rels[k] = rels[k], rels[i]
			}
		}
	}
	cum, wantAt := free, env.Now()
	for i, r := range rels {
		cum += r.n
		if i+1 < len(rels) && rels[i+1].t == r.t {
			continue
		}
		if cum >= j.Nodes {
			wantAt = r.t
			break
		}
	}
	if at != wantAt || shadow != cum-j.Nodes {
		panic("shared-profile reservation diverges from first principles")
	}
	p.checked = true
}
