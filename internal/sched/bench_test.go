package sched

import (
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/sim"
	"fairsched/internal/workload"
)

// benchWorkload generates the contended benchmark trace: the full-scale
// arrival process squeezed onto a quarter-size machine, so queues stay deep
// and every backfill/reservation path runs hot.
func benchWorkload(b *testing.B) []*job.Job {
	b.Helper()
	jobs, err := workload.Generate(workload.Config{Seed: 42, Scale: 0.1, SystemSize: 250})
	if err != nil {
		b.Fatal(err)
	}
	return jobs
}

// benchPolicyEvents measures the per-event scheduling cost of one composed
// policy: ns/event over a full simulation run (the shared-profile path —
// every reservation and backfill check reads the per-event availability
// profile instead of re-deriving release times).
func benchPolicyEvents(b *testing.B, spec string) {
	benchPolicyEventsWith(b, func() *Composite { return MustParse(spec) })
}

// benchPolicyEventsRef runs a conservative policy with the revalidation
// cache disabled — the from-scratch reference path — so the cache's win is
// measurable inside one binary.
func benchPolicyEventsRef(b *testing.B, spec string) {
	benchPolicyEventsWith(b, func() *Composite {
		pol := MustParse(spec)
		pol.engine.(*conservativeEngine).noCache = true
		return pol
	})
}

func benchPolicyEventsWith(b *testing.B, mk func() *Composite) {
	jobs := benchWorkload(b)
	b.ReportAllocs()
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.New(sim.Config{SystemSize: 250}, mk()).Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
		b.ReportMetric(float64(events), "events/run")
	}
}

func BenchmarkEventCPlantBaseline(b *testing.B) { benchPolicyEvents(b, "cplant24.nomax.all") }
func BenchmarkEventCPlantDepth2(b *testing.B)   { benchPolicyEvents(b, "cplant24.depth2") }
func BenchmarkEventEASY(b *testing.B)           { benchPolicyEvents(b, "easy") }
func BenchmarkEventConservative(b *testing.B)   { benchPolicyEvents(b, "cons.nomax") }
func BenchmarkEventConsDynamic(b *testing.B)    { benchPolicyEvents(b, "consdyn.nomax") }

// The *Ref variants run the same disciplines with the revalidation cache
// disabled (the from-scratch reference): the pair quantifies the cache.
func BenchmarkEventConservativeRef(b *testing.B) { benchPolicyEventsRef(b, "cons.nomax") }
func BenchmarkEventConsDynamicRef(b *testing.B)  { benchPolicyEventsRef(b, "consdyn.nomax") }
func BenchmarkEventDepth8(b *testing.B)          { benchPolicyEvents(b, "depth8") }
func BenchmarkEventListFairshare(b *testing.B)   { benchPolicyEvents(b, "list.fairshare") }
func BenchmarkEventSJFEasy(b *testing.B)         { benchPolicyEvents(b, "easy.sjf") }
