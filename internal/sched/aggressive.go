package sched

import (
	"fmt"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// aggressiveEngine is the aggressive backfill family — the disciplines
// whose reservations (if any) are rebuilt from the running jobs at every
// scheduling event:
//
//   - mode noguarantee: any main-queue job that fits starts, in queue
//     order, with no internal reservations (CPlant §2.1);
//   - mode easy: only the blocked main-queue head holds a reservation
//     (Lifka's EASY, Figure 2 semantics);
//   - mode depth: the first depth main-queue heads hold reservations (the
//     spectrum between aggressive and conservative backfilling).
//
// The optional starvation component composes with noguarantee and easy: a
// job queued longer than the threshold moves to an FCFS starvation queue
// whose first reserve-depth heads hold reservations; while starved jobs
// exist they own the reservation set and every other job (starvation-queue
// tail first, then the main queue in queue order) may start only where it
// delays none of them.
type aggressiveEngine struct {
	comp   *Composite
	order  Order
	mode   string // BackfillNoGuarantee, BackfillEASY or BackfillDepth
	depth  int    // reserved queue heads in mode depth
	starve *starvation

	main    []*job.Job
	starved []*job.Job
	// qBuf is the reused queued() buffer (callers must not retain it).
	qBuf []*job.Job
}

func (e *aggressiveEngine) reset() { e.main, e.starved = nil, nil }

func (e *aggressiveEngine) arrive(env sim.Env, j *job.Job) {
	e.main = append(e.main, j)
	e.schedule(env)
}

func (e *aggressiveEngine) complete(env sim.Env, _ *job.Job) { e.schedule(env) }

// nextWake is the next starvation-promotion instant.
func (e *aggressiveEngine) nextWake(now int64) (int64, bool) {
	if e.starve == nil {
		return 0, false
	}
	return e.starve.nextPromotion(now, e.main)
}

// queued returns the starvation queue first, then the main queue, in a
// reused buffer (sim.Policy.Queued callers must not retain the slice).
func (e *aggressiveEngine) queued() []*job.Job {
	if e.starve == nil {
		return e.main
	}
	e.qBuf = append(append(e.qBuf[:0], e.starved...), e.main...)
	return e.qBuf
}

func (e *aggressiveEngine) schedule(env sim.Env) {
	if e.starve != nil {
		e.main, e.starved = e.starve.promote(env, e.main, e.starved)
		// Drain starvation-queue heads that fit right now.
		for len(e.starved) > 0 && e.starved[0].Nodes <= env.FreeNodes() {
			var head *job.Job
			e.starved, head = popHead(e.starved)
			if err := env.Start(head); err != nil {
				panic(err)
			}
		}
	}
	sortQueue(env, e.order, e.main)
	if len(e.starved) == 0 {
		switch e.mode {
		case BackfillNoGuarantee:
			// No reservations at all: start everything that fits, in queue
			// order (no-guarantee backfilling).
			e.main = startAllFitting(env, e.main)
		case BackfillEASY:
			e.easyPass(env)
		default: // BackfillDepth
			e.depthPass(env)
		}
		return
	}
	e.starvedPass(env)
}

// startAllFitting starts every job that fits the free nodes, in queue
// order, and returns the jobs kept queued.
func startAllFitting(env sim.Env, q []*job.Job) []*job.Job {
	kept := q[:0]
	for _, c := range q {
		if c.Nodes <= env.FreeNodes() {
			if err := env.Start(c); err != nil {
				panic(err)
			}
			continue
		}
		kept = append(kept, c)
	}
	clear(q[len(kept):]) // drop started jobs' pointers from the vacated tail
	return kept
}

// easyPass runs aggressive backfilling on the main queue: start heads while
// they fit, give the blocked head the only reservation, backfill the rest
// against it.
func (e *aggressiveEngine) easyPass(env sim.Env) {
	for len(e.main) > 0 && e.main[0].Nodes <= env.FreeNodes() {
		var head *job.Job
		e.main, head = popHead(e.main)
		if err := env.Start(head); err != nil {
			panic(err)
		}
	}
	if len(e.main) == 0 {
		return
	}
	resAt, shadow := reservation(env, e.main[0].Nodes)
	rest := e.main[1:]
	kept := rest[:0]
	for _, c := range rest {
		if canBackfill(env, c, resAt, shadow) {
			if env.Now()+c.Estimate > resAt {
				shadow -= c.Nodes
			}
			if err := env.Start(c); err != nil {
				panic(err)
			}
			continue
		}
		kept = append(kept, c)
	}
	clear(rest[len(kept):])
	e.main = e.main[:1+len(kept)]
}

// depthPass reserves the first depth main-queue heads on the shared
// availability profile and backfills the rest into the remaining holes.
func (e *aggressiveEngine) depthPass(env sim.Env) {
	now := env.Now()
	for len(e.main) > 0 && e.main[0].Nodes <= env.FreeNodes() {
		var head *job.Job
		e.main, head = popHead(e.main)
		if err := env.Start(head); err != nil {
			panic(err)
		}
	}
	if len(e.main) == 0 {
		return
	}
	prof := e.comp.scratchFrom(env)
	depth := e.depth
	if depth > len(e.main) {
		depth = len(e.main)
	}
	for _, r := range e.main[:depth] {
		s, ok := prof.EarliestFit(now, r.Estimate, r.Nodes)
		if !ok {
			panic(fmt.Sprintf("sched: depth reservation impossible for %v", r))
		}
		if err := prof.Occupy(s, s+r.Estimate, r.Nodes); err != nil {
			panic(fmt.Sprintf("sched: depth reserve: %v", err))
		}
	}
	// Backfill the rest: a candidate may start now only if its rectangle
	// fits the reserved profile starting immediately.
	kept := e.main[:depth]
	for _, c := range e.main[depth:] {
		if c.Nodes <= env.FreeNodes() && fitsNow(prof, now, c) {
			if err := prof.Occupy(now, now+c.Estimate, c.Nodes); err != nil {
				panic(fmt.Sprintf("sched: depth backfill: %v", err))
			}
			if err := env.Start(c); err != nil {
				panic(err)
			}
			continue
		}
		kept = append(kept, c)
	}
	clear(e.main[len(kept):])
	e.main = kept
}

// starvedPass schedules while starved jobs exist: the first reserve-depth
// starvation-queue jobs hold reservations (CPlant reserved only the head);
// everything else (rest of the starvation queue FCFS, then the main queue
// in queue order) may start only where it delays no reservation.
func (e *aggressiveEngine) starvedPass(env sim.Env) {
	depth := e.starve.depth
	if depth < 1 {
		depth = 1
	}
	if depth > len(e.starved) {
		depth = len(e.starved)
	}
	if depth == 1 {
		// The production fast path: a single reservation needs no mutable
		// profile copy — the shared availability profile answers it directly.
		resAt, shadow := reservation(env, e.starved[0].Nodes)
		backfill := func(q []*job.Job) []*job.Job {
			kept := q[:0]
			for _, c := range q {
				if canBackfill(env, c, resAt, shadow) {
					if env.Now()+c.Estimate > resAt {
						shadow -= c.Nodes
					}
					if err := env.Start(c); err != nil {
						panic(err)
					}
					continue
				}
				kept = append(kept, c)
			}
			clear(q[len(kept):])
			return kept
		}
		rest := backfill(e.starved[1:])
		e.starved = e.starved[:1+len(rest)]
		e.main = backfill(e.main)
		return
	}
	prof := e.comp.scratchFrom(env)
	now := env.Now()
	for _, r := range e.starved[:depth] {
		s, ok := prof.EarliestFit(now, r.Estimate, r.Nodes)
		if !ok {
			panic(fmt.Sprintf("sched: starvation reservation impossible for %v", r))
		}
		if err := prof.Occupy(s, s+r.Estimate, r.Nodes); err != nil {
			panic(fmt.Sprintf("sched: starvation reserve: %v", err))
		}
	}
	backfill := func(q []*job.Job) []*job.Job {
		kept := q[:0]
		for _, c := range q {
			if c.Nodes <= env.FreeNodes() && fitsNow(prof, now, c) {
				if err := prof.Occupy(now, now+c.Estimate, c.Nodes); err != nil {
					panic(fmt.Sprintf("sched: starvation backfill: %v", err))
				}
				if err := env.Start(c); err != nil {
					panic(err)
				}
				continue
			}
			kept = append(kept, c)
		}
		clear(q[len(kept):])
		return kept
	}
	rest := backfill(e.starved[depth:])
	e.starved = e.starved[:depth+len(rest)]
	e.main = backfill(e.main)
}

// depthReservations computes the reservation starts a fresh depth-mode
// scheduling pass would place (tests and diagnostics). It works on its own
// profile copy, NOT the composite's scratch: observers may call it from
// inside a scheduling pass (env.Start fires JobStarted synchronously while
// the engine still holds reservations in the scratch profile), and
// clobbering the scratch mid-pass would corrupt the pass.
func (e *aggressiveEngine) depthReservations(env sim.Env) map[job.ID]int64 {
	now := env.Now()
	prof := env.Availability().Clone()
	q := append([]*job.Job(nil), e.main...)
	sortQueue(env, e.order, q)
	depth := e.depth
	if depth > len(q) {
		depth = len(q)
	}
	out := make(map[job.ID]int64, depth)
	for _, r := range q[:depth] {
		s, ok := prof.EarliestFit(now, r.Estimate, r.Nodes)
		if !ok {
			continue
		}
		if err := prof.Occupy(s, s+r.Estimate, r.Nodes); err != nil {
			continue
		}
		out[r.ID] = s
	}
	return out
}
