package sched

import (
	"fmt"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/profile"
	"fairsched/internal/sim"
)

// engine is the backfill-discipline component: it owns the queues and
// reacts to scheduling events by starting jobs through the environment.
// Engines are assembled (with their Order and starvation components) by New
// and driven only through a Composite.
type engine interface {
	reset()
	arrive(env sim.Env, j *job.Job)
	// complete reacts to j's completion. Engines that cache state across
	// events (the conservative revalidation cache) need the job identity to
	// reconcile incrementally; the aggressive family just reschedules.
	complete(env sim.Env, j *job.Job)
	schedule(env sim.Env)
	nextWake(now int64) (int64, bool)
	queued() []*job.Job
}

// Composite is the generic composed scheduling policy: an Order, a backfill
// engine and an optional starvation component, assembled from a Spec. Every
// policy the paper studies — and every other point in the (order × backfill
// × starvation) design space — is a Composite; there are no other policy
// implementations.
type Composite struct {
	spec   Spec
	engine engine

	// scratch is the reusable mutable copy of the environment's shared
	// availability profile: engines that place reservations copy the
	// per-event base profile into it instead of rebuilding the running
	// jobs' release timeline from scratch.
	scratch profile.Profile
}

// New assembles the runnable policy for a spec.
func New(spec Spec) (*Composite, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("sched: policy %q: %w", spec.String(), err)
	}
	norm := spec.normalized()
	if norm.Key == "" {
		norm.Key = norm.Canonical()
	}
	ord, err := OrderByName(norm.Order)
	if err != nil {
		return nil, fmt.Errorf("sched: policy %q: %w", spec.String(), err)
	}
	c := &Composite{spec: norm}
	switch norm.Backfill {
	case BackfillNone:
		c.engine = &listEngine{order: ord}
	case BackfillConservative, BackfillConservativeDynamic:
		c.engine = &conservativeEngine{
			order:   ord,
			dynamic: norm.Backfill == BackfillConservativeDynamic,
		}
	case BackfillNoGuarantee, BackfillEASY, BackfillDepth:
		c.engine = &aggressiveEngine{
			comp:   c,
			order:  ord,
			mode:   norm.Backfill,
			depth:  norm.Depth,
			starve: newStarvation(norm),
		}
	default:
		return nil, fmt.Errorf("sched: policy %q: unknown backfill %q", spec.String(), norm.Backfill)
	}
	return c, nil
}

// MustNew is New, panicking on an invalid spec (for registry-sourced specs,
// which are valid by construction).
func MustNew(spec Spec) *Composite {
	c, err := New(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// MustParse builds the policy for a registered name or spec chain,
// panicking on a bad spec (tests and examples).
func MustParse(spec string) *Composite {
	s, err := ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	return MustNew(s)
}

// Spec returns the spec the policy was assembled from (normalized).
func (c *Composite) Spec() Spec { return c.spec }

// Name implements sim.Policy.
func (c *Composite) Name() string { return c.spec.Key }

// Reset implements sim.Policy.
func (c *Composite) Reset(sim.Env) { c.engine.reset() }

// Arrive implements sim.Policy.
func (c *Composite) Arrive(env sim.Env, j *job.Job) { c.engine.arrive(env, j) }

// Complete implements sim.Policy.
func (c *Composite) Complete(env sim.Env, j *job.Job) { c.engine.complete(env, j) }

// Wake implements sim.Policy.
func (c *Composite) Wake(env sim.Env) { c.engine.schedule(env) }

// NextWake implements sim.Policy.
func (c *Composite) NextWake(now int64) (int64, bool) { return c.engine.nextWake(now) }

// Queued implements sim.Policy.
func (c *Composite) Queued() []*job.Job { return c.engine.queued() }

// scratchFrom copies the environment's shared per-event availability
// profile into the composite's reusable scratch profile and returns it.
// The copy is mutable (engines occupy reservations into it); the shared
// base stays pristine for the other components of the same pass.
func (c *Composite) scratchFrom(env sim.Env) *profile.Profile {
	c.scratch.CopyFrom(env.Availability())
	return &c.scratch
}

// SetHeavyClassifier overrides the starvation component's heavy-user
// classifier, for ablations exploring classifiers the spec grammar does not
// name (e.g. fairshare.AboveQuantile). It panics if the policy has no
// starvation component.
func (c *Composite) SetHeavyClassifier(h fairshare.HeavyClassifier) {
	a, ok := c.engine.(*aggressiveEngine)
	if !ok || a.starve == nil {
		panic(fmt.Sprintf("sched: policy %s has no starvation component", c.Name()))
	}
	a.starve.heavy = h
}

// StarvedLen reports the current starvation-queue length (diagnostics; 0
// for policies without a starvation component).
func (c *Composite) StarvedLen() int {
	if a, ok := c.engine.(*aggressiveEngine); ok {
		return len(a.starved)
	}
	return 0
}

// Reservations exposes the current reservation table (job id -> start) for
// tests and diagnostics. Conservative engines report their standing
// reservations; depth engines compute the reservations a fresh scheduling
// pass would place; other engines hold none.
func (c *Composite) Reservations(env sim.Env) map[job.ID]int64 {
	switch e := c.engine.(type) {
	case *conservativeEngine:
		return e.reservations()
	case *aggressiveEngine:
		if e.mode == BackfillDepth {
			return e.depthReservations(env)
		}
	}
	return nil
}
