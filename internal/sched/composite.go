package sched

import (
	"fmt"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/profile"
	"fairsched/internal/sim"
)

// engine is the backfill-discipline component: it owns the queues and
// reacts to scheduling events by starting jobs through the environment.
// Engines are assembled (with their Order and starvation components) by New
// and driven only through a Composite.
type engine interface {
	reset()
	arrive(env sim.Env, j *job.Job)
	// complete reacts to j's completion. Engines that cache state across
	// events (the conservative revalidation cache) need the job identity to
	// reconcile incrementally; the aggressive family just reschedules.
	complete(env sim.Env, j *job.Job)
	schedule(env sim.Env)
	nextWake(now int64) (int64, bool)
	queued() []*job.Job
}

// Composite is the generic composed scheduling policy: an Order, a backfill
// engine and an optional starvation component, assembled from a Spec. Every
// policy the paper studies — and every other point in the (order × backfill
// × starvation) design space — is a Composite; there are no other policy
// implementations.
type Composite struct {
	spec   Spec
	engine engine
	order  Order

	// slo carries the run's SLO signals (deadlines, breach risk) for the
	// edf order and the deadline preemption trigger; SetSLOContext fills it
	// in. Zero when the run has no SLO assignment.
	slo sloContext

	// scratch is the reusable mutable copy of the environment's shared
	// availability profile: engines that place reservations copy the
	// per-event base profile into it instead of rebuilding the running
	// jobs' release timeline from scratch.
	scratch profile.Profile

	// victimBuf is the reused victim-candidate buffer of the preemption
	// pass (see preempt.go).
	victimBuf []victim
}

// New assembles the runnable policy for a spec.
func New(spec Spec) (*Composite, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("sched: policy %q: %w", spec.String(), err)
	}
	norm := spec.normalized()
	if norm.Key == "" {
		norm.Key = norm.Canonical()
	}
	ord, err := OrderByName(norm.Order)
	if err != nil {
		return nil, fmt.Errorf("sched: policy %q: %w", spec.String(), err)
	}
	c := &Composite{spec: norm, order: ord}
	if e, ok := ord.(*edfOrder); ok {
		e.ctx = &c.slo
	}
	switch norm.Backfill {
	case BackfillNone:
		c.engine = &listEngine{order: ord}
	case BackfillConservative, BackfillConservativeDynamic:
		c.engine = &conservativeEngine{
			order:   ord,
			dynamic: norm.Backfill == BackfillConservativeDynamic,
		}
	case BackfillNoGuarantee, BackfillEASY, BackfillDepth:
		c.engine = &aggressiveEngine{
			comp:   c,
			order:  ord,
			mode:   norm.Backfill,
			depth:  norm.Depth,
			starve: newStarvation(norm),
		}
	default:
		return nil, fmt.Errorf("sched: policy %q: unknown backfill %q", spec.String(), norm.Backfill)
	}
	return c, nil
}

// MustNew is New, panicking on an invalid spec (for registry-sourced specs,
// which are valid by construction).
func MustNew(spec Spec) *Composite {
	c, err := New(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// MustParse builds the policy for a registered name or spec chain,
// panicking on a bad spec (tests and examples).
func MustParse(spec string) *Composite {
	s, err := ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	return MustNew(s)
}

// Spec returns the spec the policy was assembled from (normalized).
func (c *Composite) Spec() Spec { return c.spec }

// SetSLOContext attaches the run's per-user SLO signals: the deadline
// source (slo.Assignment) feeding the edf order and the deadline preemption
// trigger, and the breach-risk signal (fairness.SLOObserver) promoting
// users about to breach. Either may be nil; with no deadlines the edf order
// degrades to FCFS and the deadline trigger never fires. Call before the
// run starts (core.Execute does).
func (c *Composite) SetSLOContext(deadlines DeadlineSource, risk BreachRisk) {
	c.slo.deadlines = deadlines
	c.slo.risk = risk
}

// Name implements sim.Policy.
func (c *Composite) Name() string { return c.spec.Key }

// Reset implements sim.Policy.
func (c *Composite) Reset(env sim.Env) {
	if c.spec.PreemptTrigger != "" {
		if _, ok := env.(sim.Preempter); !ok {
			panic(fmt.Sprintf("sched: policy %s needs a preempt-capable environment (sim.Config.Preemptable)", c.Name()))
		}
	}
	c.engine.reset()
}

// Arrive implements sim.Policy.
func (c *Composite) Arrive(env sim.Env, j *job.Job) {
	c.engine.arrive(env, j)
	c.preemptPass(env)
}

// Complete implements sim.Policy.
func (c *Composite) Complete(env sim.Env, j *job.Job) {
	c.engine.complete(env, j)
	c.preemptPass(env)
}

// Wake implements sim.Policy.
func (c *Composite) Wake(env sim.Env) {
	c.engine.schedule(env)
	c.preemptPass(env)
}

// NextWake implements sim.Policy. Deadline-triggered preemption adds the
// earliest future SLO deadline among queued jobs to the engine's own wake
// schedule: deadlines pass between events, and the trigger can only act
// inside one.
func (c *Composite) NextWake(now int64) (int64, bool) {
	at, ok := c.engine.nextWake(now)
	if c.spec.PreemptTrigger == PreemptDeadline && c.slo.deadlines != nil {
		for _, j := range c.engine.queued() {
			if d, dok := c.deadlineOf(j); dok && d > now && (!ok || d < at) {
				at, ok = d, true
			}
		}
	}
	return at, ok
}

// Queued implements sim.Policy.
func (c *Composite) Queued() []*job.Job { return c.engine.queued() }

// scratchFrom copies the environment's shared per-event availability
// profile into the composite's reusable scratch profile and returns it.
// The copy is mutable (engines occupy reservations into it); the shared
// base stays pristine for the other components of the same pass.
func (c *Composite) scratchFrom(env sim.Env) *profile.Profile {
	c.scratch.CopyFrom(env.Availability())
	return &c.scratch
}

// SetHeavyClassifier overrides the starvation component's heavy-user
// classifier, for ablations exploring classifiers the spec grammar does not
// name (e.g. fairshare.AboveQuantile). It panics if the policy has no
// starvation component.
func (c *Composite) SetHeavyClassifier(h fairshare.HeavyClassifier) {
	a, ok := c.engine.(*aggressiveEngine)
	if !ok || a.starve == nil {
		panic(fmt.Sprintf("sched: policy %s has no starvation component", c.Name()))
	}
	a.starve.heavy = h
}

// StarvedLen reports the current starvation-queue length (diagnostics; 0
// for policies without a starvation component).
func (c *Composite) StarvedLen() int {
	if a, ok := c.engine.(*aggressiveEngine); ok {
		return len(a.starved)
	}
	return 0
}

// Reservations exposes the current reservation table (job id -> start) for
// tests and diagnostics. Conservative engines report their standing
// reservations; depth engines compute the reservations a fresh scheduling
// pass would place; other engines hold none.
func (c *Composite) Reservations(env sim.Env) map[job.ID]int64 {
	switch e := c.engine.(type) {
	case *conservativeEngine:
		return e.reservations()
	case *aggressiveEngine:
		if e.mode == BackfillDepth {
			return e.depthReservations(env)
		}
	}
	return nil
}
