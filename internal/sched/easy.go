package sched

import (
	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// QueueOrder selects the priority order of a policy's main queue.
type QueueOrder int

const (
	// OrderFCFS sorts by submission time.
	OrderFCFS QueueOrder = iota
	// OrderFairshare sorts by the Sandia decaying-usage priority.
	OrderFairshare
)

func (o QueueOrder) String() string {
	if o == OrderFairshare {
		return "fairshare"
	}
	return "fcfs"
}

// EASY is aggressive backfilling (Figure 2 semantics; Lifka's EASY): only
// the job at the head of the queue holds a reservation; any other job may
// leap forward as long as it does not delay that head. Provided as a
// reference baseline (the paper's CPlant starvation queue head behaves this
// way).
type EASY struct {
	order QueueOrder
	queue []*job.Job
}

// NewEASY returns an EASY policy with the given queue order.
func NewEASY(order QueueOrder) *EASY { return &EASY{order: order} }

// Name implements sim.Policy.
func (p *EASY) Name() string { return "easy." + p.order.String() }

// Reset implements sim.Policy.
func (p *EASY) Reset(sim.Env) { p.queue = nil }

// Arrive implements sim.Policy.
func (p *EASY) Arrive(env sim.Env, j *job.Job) {
	p.queue = append(p.queue, j)
	p.schedule(env)
}

// Complete implements sim.Policy.
func (p *EASY) Complete(env sim.Env, _ *job.Job) { p.schedule(env) }

// Wake implements sim.Policy.
func (p *EASY) Wake(env sim.Env) { p.schedule(env) }

// NextWake implements sim.Policy.
func (p *EASY) NextWake(int64) (int64, bool) { return 0, false }

// Queued implements sim.Policy.
func (p *EASY) Queued() []*job.Job { return p.queue }

func (p *EASY) sortQueue(env sim.Env) {
	if p.order == OrderFairshare {
		sortFairshare(env, p.queue)
		return
	}
	sortFCFS(p.queue)
}

func (p *EASY) schedule(env sim.Env) {
	p.sortQueue(env)
	// Start heads while they fit.
	for len(p.queue) > 0 && p.queue[0].Nodes <= env.FreeNodes() {
		if err := env.Start(p.queue[0]); err != nil {
			panic(err)
		}
		p.queue = p.queue[1:]
	}
	if len(p.queue) == 0 {
		return
	}
	// The blocked head gets the reservation; backfill the rest against it.
	head := p.queue[0]
	resAt, shadow := aggressiveReservation(env, head.Nodes)
	rest := p.queue[1:]
	kept := rest[:0]
	for _, c := range rest {
		if canBackfill(env, c, resAt, shadow) {
			if env.Now()+c.Estimate > resAt {
				shadow -= c.Nodes
			}
			if err := env.Start(c); err != nil {
				panic(err)
			}
			continue
		}
		kept = append(kept, c)
	}
	p.queue = append(p.queue[:1], kept...)
}
