package sched

import (
	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// FCFS is the strict first-come-first-serve policy of Figure 1: jobs start
// in arrival order only; a blocked head blocks everything behind it, even
// when enough nodes are idle. "Fair" but poor utilization, as the paper's
// introduction illustrates.
type FCFS struct {
	queue []*job.Job
}

// NewFCFS returns a strict FCFS policy.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements sim.Policy.
func (p *FCFS) Name() string { return "fcfs" }

// Reset implements sim.Policy.
func (p *FCFS) Reset(sim.Env) { p.queue = nil }

// Arrive implements sim.Policy.
func (p *FCFS) Arrive(env sim.Env, j *job.Job) {
	p.queue = append(p.queue, j)
	p.schedule(env)
}

// Complete implements sim.Policy.
func (p *FCFS) Complete(env sim.Env, _ *job.Job) { p.schedule(env) }

// Wake implements sim.Policy.
func (p *FCFS) Wake(env sim.Env) { p.schedule(env) }

// NextWake implements sim.Policy.
func (p *FCFS) NextWake(int64) (int64, bool) { return 0, false }

// Queued implements sim.Policy.
func (p *FCFS) Queued() []*job.Job { return p.queue }

func (p *FCFS) schedule(env sim.Env) {
	for len(p.queue) > 0 && p.queue[0].Nodes <= env.FreeNodes() {
		head := p.queue[0]
		if err := env.Start(head); err != nil {
			panic(err) // capacity was checked; a failure is a policy bug
		}
		p.queue = p.queue[1:]
	}
}

// ListFairshare is the no-backfill list scheduler with the fairshare queue
// order: the reference discipline of the hybrid FST metric (paper §4.1). At
// each event the queue is sorted by fairshare priority and heads are started
// while they fit; the first blocked head blocks the rest (no backfilling).
type ListFairshare struct {
	queue []*job.Job
}

// NewListFairshare returns the FST reference policy.
func NewListFairshare() *ListFairshare { return &ListFairshare{} }

// Name implements sim.Policy.
func (p *ListFairshare) Name() string { return "list.fairshare" }

// Reset implements sim.Policy.
func (p *ListFairshare) Reset(sim.Env) { p.queue = nil }

// Arrive implements sim.Policy.
func (p *ListFairshare) Arrive(env sim.Env, j *job.Job) {
	p.queue = append(p.queue, j)
	p.schedule(env)
}

// Complete implements sim.Policy.
func (p *ListFairshare) Complete(env sim.Env, _ *job.Job) { p.schedule(env) }

// Wake implements sim.Policy.
func (p *ListFairshare) Wake(env sim.Env) { p.schedule(env) }

// NextWake implements sim.Policy.
func (p *ListFairshare) NextWake(int64) (int64, bool) { return 0, false }

// Queued implements sim.Policy.
func (p *ListFairshare) Queued() []*job.Job { return p.queue }

func (p *ListFairshare) schedule(env sim.Env) {
	sortFairshare(env, p.queue)
	for len(p.queue) > 0 && p.queue[0].Nodes <= env.FreeNodes() {
		head := p.queue[0]
		if err := env.Start(head); err != nil {
			panic(err)
		}
		p.queue = p.queue[1:]
	}
}
