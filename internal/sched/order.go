package sched

import (
	"fmt"
	"sort"
	"strings"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// Order is the queue-ordering component of a composed policy: a strict weak
// ordering over queued jobs, evaluated against the live environment (the
// fairshare order reads decayed usage, the expansion-factor order reads the
// clock). Orders are stateless; all state lives in the environment.
type Order interface {
	// Name is the grammar token ("fairshare", "fcfs", "sjf", ...).
	Name() string
	// Less reports whether a schedules before b. It must be a strict weak
	// ordering and deterministic: implementations tie-break on submission
	// time then job id so equal-priority jobs keep a stable order.
	Less(env sim.Env, a, b *job.Job) bool
}

// sortQueue stable-sorts q into the order's priority order.
func sortQueue(env sim.Env, o Order, q []*job.Job) {
	sort.SliceStable(q, func(i, k int) bool { return o.Less(env, q[i], q[k]) })
}

// arrivalLess is the shared FCFS tie-break: submission time then job id.
func arrivalLess(a, b *job.Job) bool {
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

// fcfsOrder schedules in arrival order (Figure 1 semantics).
type fcfsOrder struct{}

func (fcfsOrder) Name() string                       { return "fcfs" }
func (fcfsOrder) Less(_ sim.Env, a, b *job.Job) bool { return arrivalLess(a, b) }

// fairshareOrder is the Sandia decaying-usage priority: lowest decayed usage
// first (paper §2.1), ties FCFS.
type fairshareOrder struct{}

func (fairshareOrder) Name() string { return "fairshare" }
func (fairshareOrder) Less(env sim.Env, a, b *job.Job) bool {
	return env.Fairshare().Less(a, b)
}

// sjfOrder is shortest-job-first by the user's wall-clock estimate — the
// size-based ordering whose fairness trade-offs Dell'Amico et al. ("On Fair
// Size-Based Scheduling") study. Ties FCFS.
type sjfOrder struct{}

func (sjfOrder) Name() string { return "sjf" }
func (sjfOrder) Less(_ sim.Env, a, b *job.Job) bool {
	if a.Estimate != b.Estimate {
		return a.Estimate < b.Estimate
	}
	return arrivalLess(a, b)
}

// lxfOrder is largest-expansion-factor first: (wait + estimate)/estimate,
// descending — the slowdown-driven ordering of the heSRPT line of work
// (Berg et al.). A job's factor grows as it waits, so starvation
// self-corrects. Ties FCFS.
type lxfOrder struct{}

func (lxfOrder) Name() string { return "lxf" }
func (lxfOrder) Less(env sim.Env, a, b *job.Job) bool {
	now := env.Now()
	// Compare (wait_a+est_a)/est_a > (wait_b+est_b)/est_b without division:
	// cross-multiply by the (positive) estimates.
	ea, eb := a.Estimate, b.Estimate
	if ea < 1 {
		ea = 1
	}
	if eb < 1 {
		eb = 1
	}
	xa := (now - a.Submit + ea) * eb
	xb := (now - b.Submit + eb) * ea
	if xa != xb {
		return xa > xb
	}
	return arrivalLess(a, b)
}

// widestOrder schedules the widest jobs (most nodes) first; narrowest the
// opposite. Width-based orders probe the packing/fairness trade-off the
// paper's per-width breakdowns (Figures 16-19) measure. Ties FCFS.
type widestOrder struct{}

func (widestOrder) Name() string { return "widest" }
func (widestOrder) Less(_ sim.Env, a, b *job.Job) bool {
	if a.Nodes != b.Nodes {
		return a.Nodes > b.Nodes
	}
	return arrivalLess(a, b)
}

type narrowestOrder struct{}

func (narrowestOrder) Name() string { return "narrowest" }
func (narrowestOrder) Less(_ sim.Env, a, b *job.Job) bool {
	if a.Nodes != b.Nodes {
		return a.Nodes < b.Nodes
	}
	return arrivalLess(a, b)
}

// DeadlineSource supplies per-user SLO wait targets: a user's deadline for
// a queued job is submit + target. slo.Assignment implements it; the
// interface is redeclared here so sched stays import-cycle-free below the
// SLO subsystem.
type DeadlineSource interface {
	// WaitTarget returns the user's maximum acceptable queuing delay in
	// seconds; ok is false when the user carries no wait target.
	WaitTarget(user int) (int64, bool)
}

// BreachRisk flags users whose SLO is at risk: the deadline-aware order
// promotes their queued jobs ahead of everything else.
// fairness.SLOObserver implements it over the online attainment tracker.
type BreachRisk interface {
	// UserAtRisk reports whether the user has already breached (or is
	// flagged as about to breach) an SLO target this run.
	UserAtRisk(user int) bool
}

// sloContext carries the per-run SLO signals a deadline-aware Composite
// reads: set by Composite.SetSLOContext, zero when the run has no SLO
// assignment (the edf order then degrades to FCFS and the deadline
// preemption trigger never fires).
type sloContext struct {
	deadlines DeadlineSource
	risk      BreachRisk
}

// edfOrder is earliest-deadline-first over the per-user SLO wait targets:
// jobs of users the breach-risk signal flags sort first (ties by deadline),
// then targeted jobs by deadline (submit + wait target), then untargeted
// jobs in arrival order. Unlike the other orders it is stateful — it reads
// the run's SLO context — so every Composite gets a fresh instance wired to
// its own context instead of a shared singleton.
type edfOrder struct {
	ctx *sloContext
}

func (*edfOrder) Name() string { return "edf" }

// deadline returns the job's deadline under the attached SLO context.
func (o *edfOrder) deadline(j *job.Job) (int64, bool) {
	if o.ctx == nil || o.ctx.deadlines == nil {
		return 0, false
	}
	w, ok := o.ctx.deadlines.WaitTarget(j.User)
	if !ok || w <= 0 {
		return 0, false
	}
	return j.Submit + w, true
}

func (o *edfOrder) Less(_ sim.Env, a, b *job.Job) bool {
	if o.ctx != nil && o.ctx.risk != nil {
		ra, rb := o.ctx.risk.UserAtRisk(a.User), o.ctx.risk.UserAtRisk(b.User)
		if ra != rb {
			return ra
		}
	}
	da, oka := o.deadline(a)
	db, okb := o.deadline(b)
	if oka != okb {
		return oka // targeted jobs ahead of untargeted ones
	}
	if oka && da != db {
		return da < db
	}
	return arrivalLess(a, b)
}

// orders is the Order registry, in listing order. The edf entry is a
// context-free prototype for listing and validation; OrderByName returns a
// fresh instance so each Composite can attach its own SLO context.
var orders = []Order{
	fairshareOrder{},
	fcfsOrder{},
	sjfOrder{},
	lxfOrder{},
	widestOrder{},
	narrowestOrder{},
	&edfOrder{},
}

// OrderNames lists the registered queue orders in listing order.
func OrderNames() []string {
	out := make([]string, len(orders))
	for i, o := range orders {
		out[i] = o.Name()
	}
	return out
}

// OrderByName resolves a queue order by its grammar token. The stateless
// orders are shared singletons; "edf" returns a fresh instance (it carries
// a per-run SLO context the Composite attaches).
func OrderByName(name string) (Order, error) {
	if name == "edf" {
		return &edfOrder{}, nil
	}
	for _, o := range orders {
		if o.Name() == name {
			return o, nil
		}
	}
	return nil, fmt.Errorf("unknown order %q (want %s)", name, strings.Join(OrderNames(), ", "))
}
