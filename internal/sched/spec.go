package sched

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Backfill discipline tokens: the `bf=` axis of the spec grammar. Each
// names a backfilling discipline for the main queue; the starvation axis
// (`starve=`) composes with the aggressive family only.
const (
	// BackfillNone is pure list scheduling: queue heads start while they
	// fit; the first blocked head blocks everything behind it.
	BackfillNone = "none"
	// BackfillNoGuarantee starts every queued job that fits, in queue
	// order, with no reservations at all (CPlant's main-queue discipline).
	BackfillNoGuarantee = "noguarantee"
	// BackfillEASY gives only the blocked queue head a reservation
	// (aggressive backfilling, Lifka's EASY).
	BackfillEASY = "easy"
	// BackfillDepth gives the first `depth` queue heads reservations (the
	// spectrum between aggressive and conservative backfilling).
	BackfillDepth = "depth"
	// BackfillConservative gives every job a reservation from arrival on,
	// kept until a strictly better one is found (paper §5.3).
	BackfillConservative = "conservative"
	// BackfillConservativeDynamic rebuilds all reservations from scratch in
	// queue priority order at every scheduling event (paper §5.4).
	BackfillConservativeDynamic = "consdyn"
)

// Heavy classifier tokens: the optional second component of `starve=`. In
// addition to the named constants, two parameterized token families are
// accepted: "q<1..99>" bars users whose decayed usage sits above that
// quantile of the live users (fairshare.AboveQuantile), and
// "abs<proc-seconds>" bars users above an absolute decayed processor-second
// budget (fairshare.AboveAbsolute; the value takes the duration suffixes,
// so abs280h == abs1008000).
const (
	// HeavyAll admits every user's jobs to the starvation queue
	// (fairshare.Never — the paper's "*.all" policies).
	HeavyAll = "all"
	// HeavyNonheavy bars users whose decayed usage exceeds the mean over
	// live users (fairshare.AboveMean — the paper's "*.fair" policies).
	HeavyNonheavy = "nonheavy"
)

// normalizeHeavy validates a heavy-classifier token and returns its
// canonical spelling ("q07" -> "q7", "abs86400" -> "abs24h"), so canonical
// chains are stable identifiers regardless of how the value was written.
func normalizeHeavy(tok string) (string, error) {
	switch tok {
	case HeavyAll, HeavyNonheavy:
		return tok, nil
	}
	if rest, ok := strings.CutPrefix(tok, "q"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 || n > 99 {
			return "", fmt.Errorf("heavy quantile %q: want q1..q99", tok)
		}
		return fmt.Sprintf("q%d", n), nil
	}
	if rest, ok := strings.CutPrefix(tok, "abs"); ok {
		sec, err := parseDur(rest)
		if err != nil {
			return "", fmt.Errorf("heavy absolute threshold %q: %v", tok, err)
		}
		if sec <= 0 {
			return "", fmt.Errorf("heavy absolute threshold %q must be positive", tok)
		}
		return "abs" + fmtDur(sec), nil
	}
	return "", fmt.Errorf("unknown heavy classifier %q (want %s, %s, q<1..99> or abs<proc-seconds>)",
		tok, HeavyAll, HeavyNonheavy)
}

// backfills lists the valid backfill tokens in listing order.
var backfills = []string{
	BackfillNone, BackfillNoGuarantee, BackfillEASY,
	BackfillDepth, BackfillConservative, BackfillConservativeDynamic,
}

// Preemption trigger tokens: the first component of `preempt=<trigger>.<victim>`.
const (
	// PreemptReserve checkpoints running jobs when the blocked queue head —
	// the job the backfill discipline is holding a reservation for — would
	// otherwise wait for nodes.
	PreemptReserve = "reserve"
	// PreemptDeadline checkpoints running jobs when a queued job of an
	// SLO-targeted user is already past its deadline (submit + wait
	// target). Requires an SLO assignment to act on; without one the
	// trigger never fires.
	PreemptDeadline = "deadline"
)

// Preemption victim tokens: the second component of `preempt=`, selecting
// which running jobs are checkpointed first (default lowpri).
const (
	// VictimLowPri checkpoints the running job that sorts last under the
	// queue order (the lowest-priority work on the machine).
	VictimLowPri = "lowpri"
	// VictimNewest checkpoints the most recently started running job (the
	// least sunk service; ties broken toward the higher job id).
	VictimNewest = "newest"
)

var preemptTriggers = []string{PreemptReserve, PreemptDeadline}
var preemptVictims = []string{VictimLowPri, VictimNewest}

// componentErr tags a cross-component validation error with the grammar key
// of the offending component, so ParseSpec can report the byte position of
// that component in the chain.
type componentErr struct {
	key string
	err error
}

func (e *componentErr) Error() string { return e.err.Error() }
func (e *componentErr) Unwrap() error { return e.err }

// Spec is one point in the policy design space: pure data naming the
// composed components. Specs are comparable, serializable and cheap to
// copy; New assembles the runnable policy.
//
// The zero value of each field means "default": order=fairshare,
// bf=noguarantee, no starvation queue, depth 1, no maximum runtime.
type Spec struct {
	// Key is the display name: the registered name ("cplant24.nomax.all")
	// or, for ad-hoc chains, the canonical chain. Reports key on it.
	Key string
	// Order is the queue-order token (see OrderNames).
	Order string
	// Backfill is the backfill-discipline token (see the Backfill constants).
	Backfill string
	// Wait is the starvation-queue entry threshold in seconds; 0 disables
	// the starvation queue entirely.
	Wait int64
	// Heavy is the heavy-user classifier token barring users from the
	// starvation queue (meaningful only with Wait > 0).
	Heavy string
	// Depth is the reservation depth: the number of starvation-queue heads
	// holding reservations (with Wait > 0), or the number of reserved queue
	// heads (with Backfill == BackfillDepth).
	Depth int
	// MaxRuntime, when positive, is the paper's maximum-runtime limit: the
	// simulator caps estimates to it and splits longer jobs into
	// checkpoint/restart segments. Recorded here so a Spec fully names a
	// configuration; the simulator, not the policy, enforces it.
	MaxRuntime int64
	// PreemptTrigger, when non-empty, enables checkpoint preemption: the
	// policy may terminate running jobs and resubmit their remainders as
	// chained segments (see the Preempt* trigger constants). Compatible
	// with the bf=none/easy/depth disciplines only — conservative promises
	// and the starvation queue's reservation set would be broken by
	// preemption, and noguarantee has no blocked-head reservation to
	// protect.
	PreemptTrigger string
	// PreemptVictim selects which running jobs are checkpointed first
	// (meaningful only with PreemptTrigger; default lowpri).
	PreemptVictim string
}

// normalized returns the spec with defaults filled in.
func (s Spec) normalized() Spec {
	if s.Order == "" {
		s.Order = "fairshare"
	}
	if s.Backfill == "" {
		s.Backfill = BackfillNoGuarantee
	}
	if s.Wait > 0 && s.Heavy == "" {
		s.Heavy = HeavyAll
	}
	if s.Depth == 0 && (s.Wait > 0 || s.Backfill == BackfillDepth) {
		s.Depth = 1
	}
	if s.PreemptTrigger != "" && s.PreemptVictim == "" {
		s.PreemptVictim = VictimLowPri
	}
	return s
}

// Validate checks the spec's components and their compatibility. New calls
// it; callers constructing Specs directly can call it for early errors.
func (s Spec) Validate() error {
	s = s.normalized()
	if _, err := OrderByName(s.Order); err != nil {
		return err
	}
	valid := false
	for _, b := range backfills {
		if s.Backfill == b {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("unknown backfill %q (want %s)", s.Backfill, strings.Join(backfills, ", "))
	}
	if s.Wait < 0 {
		return fmt.Errorf("starvation wait %d is negative", s.Wait)
	}
	if s.Wait > 0 {
		switch s.Backfill {
		case BackfillNoGuarantee, BackfillEASY:
		default:
			return fmt.Errorf("starve is incompatible with bf=%s (reservations already bound waits; want bf=noguarantee or bf=easy)", s.Backfill)
		}
		if _, err := normalizeHeavy(s.Heavy); err != nil {
			return err
		}
	} else {
		if s.Heavy != "" {
			return fmt.Errorf("heavy classifier %q without starve", s.Heavy)
		}
		if s.Depth != 0 && s.Backfill != BackfillDepth {
			return fmt.Errorf("depth=%d needs starve or bf=depth", s.Depth)
		}
	}
	if s.Depth < 0 || (s.Depth < 1 && s.Backfill == BackfillDepth) {
		return fmt.Errorf("depth %d out of range (want >= 1)", s.Depth)
	}
	if s.Wait > 0 && s.Depth < 1 {
		return fmt.Errorf("depth %d out of range (want >= 1)", s.Depth)
	}
	if s.MaxRuntime < 0 {
		return fmt.Errorf("max runtime %d is negative", s.MaxRuntime)
	}
	if s.PreemptTrigger != "" {
		if !containsToken(preemptTriggers, s.PreemptTrigger) {
			return &componentErr{"preempt", fmt.Errorf("unknown preempt trigger %q (want %s)",
				s.PreemptTrigger, strings.Join(preemptTriggers, ", "))}
		}
		if !containsToken(preemptVictims, s.PreemptVictim) {
			return &componentErr{"preempt", fmt.Errorf("unknown preempt victim %q (want %s)",
				s.PreemptVictim, strings.Join(preemptVictims, ", "))}
		}
		switch s.Backfill {
		case BackfillNone, BackfillEASY, BackfillDepth:
		case BackfillConservative, BackfillConservativeDynamic:
			return &componentErr{"preempt", fmt.Errorf(
				"preempt is incompatible with bf=%s (conservative start-time promises would be broken by checkpointing running jobs; want bf=none, easy or depth)", s.Backfill)}
		default:
			return &componentErr{"preempt", fmt.Errorf(
				"preempt is incompatible with bf=%s (no blocked-head reservation to protect; want bf=none, easy or depth)", s.Backfill)}
		}
		if s.Wait > 0 {
			return &componentErr{"preempt", errors.New(
				"preempt is incompatible with starve (the starvation queue owns the reservation set preemption would override)")}
		}
		if s.MaxRuntime > 0 {
			return &componentErr{"preempt", errors.New(
				"preempt is incompatible with max (maximum-runtime splitting and preemption both extend checkpoint chains; their segment numbering conflicts)")}
		}
	} else if s.PreemptVictim != "" {
		return &componentErr{"preempt", fmt.Errorf("preempt victim %q without a preempt trigger", s.PreemptVictim)}
	}
	if s.Order == "edf" {
		switch s.Backfill {
		case BackfillConservative, BackfillConservativeDynamic:
			return &componentErr{"order", fmt.Errorf(
				"order=edf is incompatible with bf=%s (the conservative revalidation cache assumes priorities change only with the clock and usage; deadline-risk promotion reorders on observer state it cannot see)", s.Backfill)}
		}
	}
	return nil
}

// containsToken reports whether tok is one of the listed grammar tokens.
func containsToken(list []string, tok string) bool {
	for _, t := range list {
		if t == tok {
			return true
		}
	}
	return false
}

// Canonical renders the normalized spec as its full grammar chain:
// "order=fairshare+bf=noguarantee+starve=24h.all". Parsing the canonical
// form yields an identical spec (the round-trip property FuzzParseSpec
// checks), so the canonical chain is a stable cross-tool policy identifier.
func (s Spec) Canonical() string {
	s = s.normalized()
	var b strings.Builder
	b.WriteString("order=")
	b.WriteString(s.Order)
	b.WriteString("+bf=")
	b.WriteString(s.Backfill)
	if s.Wait > 0 {
		b.WriteString("+starve=")
		b.WriteString(fmtDur(s.Wait))
		b.WriteString(".")
		b.WriteString(s.Heavy)
	}
	if s.Backfill == BackfillDepth || (s.Wait > 0 && s.Depth > 1) {
		fmt.Fprintf(&b, "+depth=%d", s.Depth)
	}
	if s.MaxRuntime > 0 {
		b.WriteString("+max=")
		b.WriteString(fmtDur(s.MaxRuntime))
	}
	if s.PreemptTrigger != "" {
		b.WriteString("+preempt=")
		b.WriteString(s.PreemptTrigger)
		b.WriteString(".")
		b.WriteString(s.PreemptVictim)
	}
	return b.String()
}

// String returns the display name: Key when set, the canonical chain
// otherwise.
func (s Spec) String() string {
	if s.Key != "" {
		return s.Key
	}
	return s.Canonical()
}

// ParseSpec resolves a policy spec: a registered name (see Builtins; any
// "depth<N>" also resolves), or an ad-hoc chain of key=value components
// joined with "+", mirroring scenario.Parse:
//
//	order=fairshare|fcfs|sjf|lxf|widest|narrowest|edf
//	                                                queue order (default fairshare; edf:
//	                                                earliest submit+SLO-wait-target first,
//	                                                breach-risk users promoted)
//	bf=none|noguarantee|easy|depth|conservative|consdyn
//	                                                backfill discipline (default noguarantee)
//	starve=24h[.all|.nonheavy|.q75|.abs280h]        starvation-queue threshold + admission
//	                                                (q<N>: above the N-th usage quantile;
//	                                                abs<S>: above S decayed proc-seconds)
//	depth=2                                         reservation depth (with starve or bf=depth)
//	max=72h                                         maximum-runtime limit (simulator-enforced)
//	preempt=reserve|deadline[.lowpri|.newest]       checkpoint preemption: trigger (blocked
//	                                                reservation / missed SLO deadline) and
//	                                                victim rule (default lowpri)
//
// Example: "order=fairshare+bf=easy+starve=24h.nonheavy+depth=2". Parse
// errors name the byte position of the offending component; component
// combinations the composition rules reject (preempt= over conservative
// backfilling, order=edf over the revalidation cache, ...) are positional
// errors too.
func ParseSpec(spec string) (Spec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Spec{}, fmt.Errorf("sched: empty policy spec")
	}
	if s, ok := Lookup(spec); ok {
		return s, nil
	}
	if !strings.Contains(spec, "=") {
		return Spec{}, fmt.Errorf("sched: unknown policy %q (want a registered name — see -list-policies — or an order=/bf=/starve=/depth=/max= chain)", spec)
	}
	var s Spec
	seen := map[string]int{} // key -> position of first use, for duplicate errors
	pos := 0
	for _, part := range strings.Split(spec, "+") {
		if err := parseComponent(part, pos, seen, &s); err != nil {
			return Spec{}, fmt.Errorf("sched: policy spec %q: %w", spec, err)
		}
		pos += len(part) + 1 // the '+' separator
	}
	if err := s.Validate(); err != nil {
		// Cross-component errors carry the offending component's grammar
		// key; point at where that component appears in the chain.
		var ce *componentErr
		if errors.As(err, &ce) {
			if p, ok := seen[ce.key]; ok {
				return Spec{}, fmt.Errorf("sched: policy spec %q: position %d: %w", spec, p, ce.err)
			}
		}
		return Spec{}, fmt.Errorf("sched: policy spec %q: %w", spec, err)
	}
	s = s.normalized()
	s.Key = s.Canonical()
	return s, nil
}

// parseComponent parses one key=value component at byte position pos of the
// full spec, accumulating into s.
func parseComponent(part string, pos int, seen map[string]int, s *Spec) error {
	trimmed := strings.TrimSpace(part)
	pos += strings.Index(part, trimmed) // account for leading spaces
	key, val, ok := strings.Cut(trimmed, "=")
	if !ok {
		return fmt.Errorf("position %d: component %q is not key=value (want order=, bf=, starve=, depth= or max=)", pos, trimmed)
	}
	if prev, dup := seen[key]; dup {
		return fmt.Errorf("position %d: duplicate %s= (first at position %d)", pos, key, prev)
	}
	seen[key] = pos
	valPos := pos + len(key) + 1
	switch key {
	case "order":
		if _, err := OrderByName(val); err != nil {
			return fmt.Errorf("position %d: %w", valPos, err)
		}
		s.Order = val
	case "bf":
		for _, b := range backfills {
			if val == b {
				s.Backfill = val
				return nil
			}
		}
		return fmt.Errorf("position %d: unknown backfill %q (want %s)", valPos, val, strings.Join(backfills, ", "))
	case "starve":
		dur, heavy, _ := strings.Cut(val, ".")
		w, err := parseDur(dur)
		if err != nil {
			return fmt.Errorf("position %d: starve wait: %w", valPos, err)
		}
		if w <= 0 {
			return fmt.Errorf("position %d: starve wait %q must be positive", valPos, dur)
		}
		if heavy == "" {
			heavy = HeavyAll
		}
		norm, err := normalizeHeavy(heavy)
		if err != nil {
			return fmt.Errorf("position %d: %w", valPos+len(dur)+1, err)
		}
		s.Wait, s.Heavy = w, norm
	case "depth":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("position %d: depth %q: want an integer >= 1", valPos, val)
		}
		s.Depth = n
	case "max":
		m, err := parseDur(val)
		if err != nil {
			return fmt.Errorf("position %d: max runtime: %w", valPos, err)
		}
		if m <= 0 {
			return fmt.Errorf("position %d: max runtime %q must be positive", valPos, val)
		}
		s.MaxRuntime = m
	case "preempt":
		trigger, victim, hasVictim := strings.Cut(val, ".")
		if !containsToken(preemptTriggers, trigger) {
			return fmt.Errorf("position %d: unknown preempt trigger %q (want %s)",
				valPos, trigger, strings.Join(preemptTriggers, ", "))
		}
		if !hasVictim {
			victim = VictimLowPri
		}
		if !containsToken(preemptVictims, victim) {
			return fmt.Errorf("position %d: unknown preempt victim %q (want %s)",
				valPos+len(trigger)+1, victim, strings.Join(preemptVictims, ", "))
		}
		s.PreemptTrigger, s.PreemptVictim = trigger, victim
	default:
		return fmt.Errorf("position %d: unknown component %q (want order, bf, starve, depth, max or preempt)", pos, key)
	}
	return nil
}

const (
	hourSeconds = 3600
	daySeconds  = 24 * hourSeconds
	weekSeconds = 7 * daySeconds
)

// parseDur parses a duration with optional unit suffix s/m/h/d/w; a bare
// number is seconds (the scenario grammar's convention).
func parseDur(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty duration")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 's':
		s = s[:len(s)-1]
	case 'm':
		mult, s = 60, s[:len(s)-1]
	case 'h':
		mult, s = hourSeconds, s[:len(s)-1]
	case 'd':
		mult, s = daySeconds, s[:len(s)-1]
	case 'w':
		mult, s = weekSeconds, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q (want e.g. 90, 15m, 24h, 3d)", s)
	}
	return n * mult, nil
}

// fmtDur renders seconds compactly, preferring hours — the paper's
// vocabulary ("24h", "72h") — over days/weeks so canonical chains read like
// the policy names they expand.
func fmtDur(sec int64) string {
	switch {
	case sec != 0 && sec%hourSeconds == 0:
		return fmt.Sprintf("%dh", sec/hourSeconds)
	case sec != 0 && sec%60 == 0:
		return fmt.Sprintf("%dm", sec/60)
	default:
		return fmt.Sprintf("%ds", sec)
	}
}
