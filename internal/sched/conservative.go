package sched

import (
	"fmt"
	"sort"

	"fairsched/internal/job"
	"fairsched/internal/profile"
	"fairsched/internal/sim"
)

// Conservative implements conservative backfilling with the fairshare queue
// order (paper §5.3) and, with Dynamic set, dynamic reservations (§5.4).
//
// Static (Dynamic=false): every job holds a reservation from arrival on. At
// each scheduling event the schedule is re-validated preserving the current
// reservation order (a reservation never moves later except when a running
// job overruns its estimate), and then every job, in fairshare priority
// order, attempts to improve its reservation into any hole opened by early
// completions ("jobs do not relinquish their current reservations unless
// better reservations are found"). The first reservation therefore upper
// bounds a job's wait and no starvation queue is needed.
//
// Dynamic (Dynamic=true): at each scheduling event all reservations are
// discarded and the schedule is rebuilt from scratch in fairshare priority
// order. Reservations are no longer wait-time upper bounds, removing the
// "FCFS feel", but "fair" jobs still cannot starve because low-usage users
// rise in the rebuild order.
type Conservative struct {
	// Dynamic selects dynamic reservations (§5.4).
	Dynamic bool
	// Label overrides Name (the paper's cons.nomax style names).
	Label string

	queue []*resJob
}

type resJob struct {
	job *job.Job
	// res is the reserved start time; hasRes is false for a job that has
	// not been placed yet (a fresh arrival mid-event).
	res    int64
	hasRes bool
}

// maxImprovementPasses bounds the static-conservative compression loop; in
// practice two or three passes reach the fixpoint.
const maxImprovementPasses = 8

// NewConservative returns a conservative backfilling policy.
func NewConservative(dynamic bool) *Conservative {
	return &Conservative{Dynamic: dynamic}
}

// Name implements sim.Policy.
func (p *Conservative) Name() string {
	if p.Label != "" {
		return p.Label
	}
	if p.Dynamic {
		return "consdyn"
	}
	return "cons"
}

// Reset implements sim.Policy.
func (p *Conservative) Reset(sim.Env) { p.queue = nil }

// Arrive implements sim.Policy.
func (p *Conservative) Arrive(env sim.Env, j *job.Job) {
	p.queue = append(p.queue, &resJob{job: j})
	p.schedule(env)
}

// Complete implements sim.Policy.
func (p *Conservative) Complete(env sim.Env, _ *job.Job) { p.schedule(env) }

// Wake implements sim.Policy.
func (p *Conservative) Wake(env sim.Env) { p.schedule(env) }

// NextWake implements sim.Policy. Reservations are start instants the
// simulator would otherwise not visit (no arrival or completion need fall on
// them), so the policy asks to be woken at its earliest reservation.
func (p *Conservative) NextWake(now int64) (int64, bool) {
	var t int64
	have := false
	for _, q := range p.queue {
		if q.hasRes && q.res > now && (!have || q.res < t) {
			t, have = q.res, true
		}
	}
	return t, have
}

// Queued implements sim.Policy.
func (p *Conservative) Queued() []*job.Job {
	out := make([]*job.Job, 0, len(p.queue))
	for _, q := range p.queue {
		out = append(out, q.job)
	}
	return out
}

// Reservations exposes the current reservation table (job id -> start) for
// tests and diagnostics.
func (p *Conservative) Reservations() map[job.ID]int64 {
	out := make(map[job.ID]int64, len(p.queue))
	for _, q := range p.queue {
		if q.hasRes {
			out[q.job.ID] = q.res
		}
	}
	return out
}

// baseProfile builds the free-capacity timeline implied by the running jobs
// (estimated completions, clamped for overruns).
func baseProfile(env sim.Env) *profile.Profile {
	now := env.Now()
	prof := profile.New(now, env.SystemSize(), env.SystemSize())
	for _, r := range env.Running() {
		if err := prof.Occupy(now, r.EstimatedCompletion(now), r.Job.Nodes); err != nil {
			panic(fmt.Sprintf("sched: running occupancy: %v", err))
		}
	}
	return prof
}

func (p *Conservative) schedule(env sim.Env) {
	now := env.Now()
	prof := baseProfile(env)

	if p.Dynamic {
		// Discard everything; rebuild in fairshare priority order.
		p.sortByFairshare(env)
	} else {
		// Re-validate preserving reservation order (unreserved arrivals
		// last), so existing reservations only move later under estimate
		// overruns; then improve in fairshare order below.
		sort.SliceStable(p.queue, func(i, k int) bool {
			qi, qk := p.queue[i], p.queue[k]
			if qi.hasRes != qk.hasRes {
				return qi.hasRes
			}
			if qi.hasRes && qi.res != qk.res {
				return qi.res < qk.res
			}
			return env.Fairshare().Less(qi.job, qk.job)
		})
	}
	for _, q := range p.queue {
		after := now
		if !p.Dynamic && q.hasRes && q.res > now {
			// Static re-validation does not improve reservations (that is
			// the fairshare pass's privilege below); it only pushes them
			// later when a running job's overrun makes the slot infeasible.
			after = q.res
		}
		s, ok := prof.EarliestFit(after, q.job.Estimate, q.job.Nodes)
		if !ok {
			panic(fmt.Sprintf("sched: no fit for %v on %d nodes", q.job, env.SystemSize()))
		}
		if err := prof.Occupy(s, s+q.job.Estimate, q.job.Nodes); err != nil {
			panic(fmt.Sprintf("sched: reserve: %v", err))
		}
		q.res, q.hasRes = s, true
	}

	if !p.Dynamic {
		// Improvement passes: in fairshare priority order, each job may
		// move its reservation strictly earlier into holes left by others.
		// One pass under-compresses — a wide job's window only opens after
		// the jobs reserved behind it have themselves moved forward — so
		// the pass repeats until no reservation improves (bounded; each
		// pass strictly reduces total reserved start time).
		improved := append([]*resJob(nil), p.queue...)
		sort.SliceStable(improved, func(i, k int) bool {
			return env.Fairshare().Less(improved[i].job, improved[k].job)
		})
		for pass := 0; pass < maxImprovementPasses; pass++ {
			changed := false
			for _, q := range improved {
				est := q.job.Estimate
				if err := prof.Release(q.res, q.res+est, q.job.Nodes); err != nil {
					panic(fmt.Sprintf("sched: release: %v", err))
				}
				s, ok := prof.EarliestFit(now, est, q.job.Nodes)
				if !ok || s > q.res {
					s = q.res // keep the existing reservation
				}
				if err := prof.Occupy(s, s+est, q.job.Nodes); err != nil {
					panic(fmt.Sprintf("sched: re-reserve: %v", err))
				}
				if s < q.res {
					changed = true
				}
				q.res = s
			}
			if !changed {
				break
			}
		}
	}

	// Start every job whose reservation has come due. Capacity is
	// guaranteed by the profile; start in reservation order.
	sort.SliceStable(p.queue, func(i, k int) bool {
		if p.queue[i].res != p.queue[k].res {
			return p.queue[i].res < p.queue[k].res
		}
		return env.Fairshare().Less(p.queue[i].job, p.queue[k].job)
	})
	kept := p.queue[:0]
	for _, q := range p.queue {
		if q.res <= now {
			if err := env.Start(q.job); err != nil {
				panic(fmt.Sprintf("sched: start reserved job: %v", err))
			}
			continue
		}
		kept = append(kept, q)
	}
	p.queue = kept
}

func (p *Conservative) sortByFairshare(env sim.Env) {
	sort.SliceStable(p.queue, func(i, k int) bool {
		return env.Fairshare().Less(p.queue[i].job, p.queue[k].job)
	})
}
