package sched

import (
	"fmt"
	"sort"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// conservativeEngine implements conservative backfilling generically over
// the queue order: bf=conservative (paper §5.3 with order=fairshare) and,
// with dynamic set, bf=consdyn (§5.4).
//
// Static (dynamic=false): every job holds a reservation from arrival on. At
// each scheduling event the schedule is re-validated preserving the current
// reservation order (a reservation never moves later except when a running
// job overruns its estimate), and then every job, in queue priority order,
// attempts to improve its reservation into any hole opened by early
// completions ("jobs do not relinquish their current reservations unless
// better reservations are found"). The first reservation therefore upper
// bounds a job's wait and no starvation queue is needed.
//
// Dynamic (dynamic=true): at each scheduling event all reservations are
// discarded and the schedule is rebuilt from scratch in queue priority
// order. Reservations are no longer wait-time upper bounds, removing the
// "FCFS feel", but "fair" jobs still cannot starve under usage-decaying
// orders because low-usage users rise in the rebuild order.
type conservativeEngine struct {
	comp    *Composite
	order   Order
	dynamic bool

	queue []*reservedJob
}

// reservedJob is a queued job with its current reservation.
type reservedJob struct {
	job *job.Job
	// res is the reserved start time; hasRes is false for a job that has
	// not been placed yet (a fresh arrival mid-event).
	res    int64
	hasRes bool
}

// improvementPasses bounds the static-conservative compression loop; in
// practice two or three passes reach the fixpoint.
const improvementPasses = 8

func (e *conservativeEngine) reset() { e.queue = nil }

func (e *conservativeEngine) arrive(env sim.Env, j *job.Job) {
	e.queue = append(e.queue, &reservedJob{job: j})
	e.schedule(env)
}

// nextWake implements the engine hook. Reservations are start instants the
// simulator would otherwise not visit (no arrival or completion need fall
// on them), so the engine asks to be woken at its earliest reservation.
func (e *conservativeEngine) nextWake(now int64) (int64, bool) {
	var t int64
	have := false
	for _, q := range e.queue {
		if q.hasRes && q.res > now && (!have || q.res < t) {
			t, have = q.res, true
		}
	}
	return t, have
}

func (e *conservativeEngine) queued() []*job.Job {
	out := make([]*job.Job, 0, len(e.queue))
	for _, q := range e.queue {
		out = append(out, q.job)
	}
	return out
}

// reservations exposes the current reservation table (job id -> start).
func (e *conservativeEngine) reservations() map[job.ID]int64 {
	out := make(map[job.ID]int64, len(e.queue))
	for _, q := range e.queue {
		if q.hasRes {
			out[q.job.ID] = q.res
		}
	}
	return out
}

func (e *conservativeEngine) schedule(env sim.Env) {
	now := env.Now()
	prof := e.comp.scratchFrom(env)

	if e.dynamic {
		// Discard everything; rebuild in queue priority order.
		sort.SliceStable(e.queue, func(i, k int) bool {
			return e.order.Less(env, e.queue[i].job, e.queue[k].job)
		})
	} else {
		// Re-validate preserving reservation order (unreserved arrivals
		// last), so existing reservations only move later under estimate
		// overruns; then improve in queue priority order below.
		sort.SliceStable(e.queue, func(i, k int) bool {
			qi, qk := e.queue[i], e.queue[k]
			if qi.hasRes != qk.hasRes {
				return qi.hasRes
			}
			if qi.hasRes && qi.res != qk.res {
				return qi.res < qk.res
			}
			return e.order.Less(env, qi.job, qk.job)
		})
	}
	for _, q := range e.queue {
		after := now
		if !e.dynamic && q.hasRes && q.res > now {
			// Static re-validation does not improve reservations (that is
			// the priority pass's privilege below); it only pushes them
			// later when a running job's overrun makes the slot infeasible.
			after = q.res
		}
		s, ok := prof.EarliestFit(after, q.job.Estimate, q.job.Nodes)
		if !ok {
			panic(fmt.Sprintf("sched: no fit for %v on %d nodes", q.job, env.SystemSize()))
		}
		if err := prof.Occupy(s, s+q.job.Estimate, q.job.Nodes); err != nil {
			panic(fmt.Sprintf("sched: reserve: %v", err))
		}
		q.res, q.hasRes = s, true
	}

	if !e.dynamic {
		// Improvement passes: in queue priority order, each job may move
		// its reservation strictly earlier into holes left by others. One
		// pass under-compresses — a wide job's window only opens after the
		// jobs reserved behind it have themselves moved forward — so the
		// pass repeats until no reservation improves (bounded; each pass
		// strictly reduces total reserved start time).
		improved := append([]*reservedJob(nil), e.queue...)
		sort.SliceStable(improved, func(i, k int) bool {
			return e.order.Less(env, improved[i].job, improved[k].job)
		})
		for pass := 0; pass < improvementPasses; pass++ {
			changed := false
			for _, q := range improved {
				est := q.job.Estimate
				if err := prof.Release(q.res, q.res+est, q.job.Nodes); err != nil {
					panic(fmt.Sprintf("sched: release: %v", err))
				}
				s, ok := prof.EarliestFit(now, est, q.job.Nodes)
				if !ok || s > q.res {
					s = q.res // keep the existing reservation
				}
				if err := prof.Occupy(s, s+est, q.job.Nodes); err != nil {
					panic(fmt.Sprintf("sched: re-reserve: %v", err))
				}
				if s < q.res {
					changed = true
				}
				q.res = s
			}
			if !changed {
				break
			}
		}
	}

	// Start every job whose reservation has come due. Capacity is
	// guaranteed by the profile; start in reservation order.
	sort.SliceStable(e.queue, func(i, k int) bool {
		if e.queue[i].res != e.queue[k].res {
			return e.queue[i].res < e.queue[k].res
		}
		return e.order.Less(env, e.queue[i].job, e.queue[k].job)
	})
	kept := e.queue[:0]
	for _, q := range e.queue {
		if q.res <= now {
			if err := env.Start(q.job); err != nil {
				panic(fmt.Sprintf("sched: start reserved job: %v", err))
			}
			continue
		}
		kept = append(kept, q)
	}
	clear(e.queue[len(kept):]) // drop started jobs' pointers from the tail
	e.queue = kept
}
