package sched

import (
	"fmt"
	"sort"

	"fairsched/internal/job"
	"fairsched/internal/profile"
	"fairsched/internal/sim"
)

// conservativeEngine implements conservative backfilling generically over
// the queue order: bf=conservative (paper §5.3 with order=fairshare) and,
// with dynamic set, bf=consdyn (§5.4).
//
// Static (dynamic=false): every job holds a reservation from arrival on. At
// each scheduling event the schedule is re-validated preserving the current
// reservation order (a reservation never moves later except when a running
// job overruns its estimate), and then every job, in queue priority order,
// attempts to improve its reservation into any hole opened by early
// completions ("jobs do not relinquish their current reservations unless
// better reservations are found"). The first reservation therefore upper
// bounds a job's wait and no starvation queue is needed.
//
// Dynamic (dynamic=true): at each scheduling event all reservations are
// discarded and the schedule is rebuilt from scratch in queue priority
// order. Reservations are no longer wait-time upper bounds, removing the
// "FCFS feel", but "fair" jobs still cannot starve under usage-decaying
// orders because low-usage users rise in the rebuild order.
//
// Both variants run on a revalidation cache: the occupied profile (running
// jobs' promised release times plus every standing reservation) persists
// across events instead of being rebuilt by re-occupying every queued job
// per event. Each event classifies what actually changed — nothing, a new
// arrival, an early-completion hole, or an estimate-overrun backoff — and
// does only the matching work; the from-scratch rebuild survives as the
// fallback for the overrun case (and as the noCache reference the
// differential tests compare against). The cache is an optimization with a
// proof obligation: reservations must be byte-identical to the from-scratch
// schedule at every event (DESIGN.md §10).
type conservativeEngine struct {
	order   Order
	dynamic bool

	queue []*reservedJob

	// Revalidation cache state.
	//
	// prof is the standing occupied profile; cacheOK marks it valid (false
	// initially, after reset, and when noCache forces the reference path).
	prof    profile.Profile
	cacheOK bool
	// holes records unconsumed capacity growth (early completions) — the
	// static engine must run its improvement passes, the dynamic engine
	// must replay its placement against the grown profile. Also set when an
	// improvement loop hit its pass bound without reaching the fixpoint, so
	// the next event resumes it exactly where the from-scratch schedule
	// would.
	holes bool
	// holeEnd (dynamic only) is the upper edge of the released capacity:
	// the max promised release time over the holes opened since the last
	// placement. Every hole lies within [now, holeEnd), which bounds the
	// partial rebuild's probe window.
	holeEnd int64
	// snaps tracks the running set the profile was built against, sorted by
	// promised release time (ec). snaps[0].ec <= now detects estimate-
	// overrun backoff: a running job's promised release changes exactly when
	// the clock crosses it, which invalidates reservations and forces the
	// from-scratch fallback.
	snaps []runSnap
	// lastOrder (dynamic only) is the queue in the priority order of the
	// last placement; the longest unchanged reserved prefix keeps its
	// reservations, everything after it is re-placed.
	lastOrder []job.ID

	// Reused scratch buffers.
	impBuf []*reservedJob // improvement / placement order
	dueBuf []*reservedJob // due-reservation starts
	qBuf   []*job.Job     // queued() result

	// noCache forces the from-scratch path on every event: the reference
	// behaviour the differential tests compare the cache against.
	noCache bool
}

// runSnap is one running job's contribution to the cached profile: nodes
// held until the promised release time ec (estimate-based, overruns backed
// off, exactly sim.RunningJob.EstimatedCompletion at snapshot time).
type runSnap struct {
	id    job.ID
	nodes int
	ec    int64
}

// reservedJob is a queued job with its current reservation.
type reservedJob struct {
	job *job.Job
	// res is the reserved start time; hasRes is false for a job that has
	// not been placed yet (a fresh arrival mid-event).
	res    int64
	hasRes bool
}

// improvementPasses bounds the static-conservative compression loop; in
// practice two or three passes reach the fixpoint. (If a pass budget is
// ever exhausted mid-compression the cache records it in holes, so the next
// event resumes the loop like the from-scratch schedule would.)
const improvementPasses = 8

func (e *conservativeEngine) reset() {
	e.queue = nil
	e.cacheOK = false
	e.holes = false
	e.holeEnd = 0
	e.snaps = e.snaps[:0]
	e.lastOrder = e.lastOrder[:0]
}

func (e *conservativeEngine) arrive(env sim.Env, j *job.Job) {
	e.queue = append(e.queue, &reservedJob{job: j})
	e.schedule(env)
}

// complete handles a job completion: release the completed job's promised
// occupancy tail from the cached profile (the early-completion hole) before
// the scheduling pass reads it. Same-instant completion batches are
// reconciled in schedule (the simulator releases the whole batch before the
// first policy callback).
func (e *conservativeEngine) complete(env sim.Env, j *job.Job) {
	e.dropSnap(env.Now(), j.ID)
	e.schedule(env)
}

// dropSnap removes id's snapshot and releases its remaining promised
// occupancy from the cached profile.
func (e *conservativeEngine) dropSnap(now int64, id job.ID) {
	for i, s := range e.snaps {
		if s.id != id {
			continue
		}
		if e.cacheOK && s.ec > now {
			if err := e.prof.Release(now, s.ec, s.nodes); err != nil {
				panic(fmt.Sprintf("sched: conservative cache release: %v", err))
			}
			e.holes = true
			if s.ec > e.holeEnd {
				e.holeEnd = s.ec
			}
		}
		copy(e.snaps[i:], e.snaps[i+1:])
		e.snaps = e.snaps[:len(e.snaps)-1]
		return
	}
}

// nextWake implements the engine hook. Reservations are start instants the
// simulator would otherwise not visit (no arrival or completion need fall
// on them), so the engine asks to be woken at its earliest reservation.
func (e *conservativeEngine) nextWake(now int64) (int64, bool) {
	var t int64
	have := false
	for _, q := range e.queue {
		if q.hasRes && q.res > now && (!have || q.res < t) {
			t, have = q.res, true
		}
	}
	return t, have
}

// queued returns the queue in a reused buffer (sim.Policy.Queued callers
// must not retain the slice).
func (e *conservativeEngine) queued() []*job.Job {
	e.qBuf = e.qBuf[:0]
	for _, q := range e.queue {
		e.qBuf = append(e.qBuf, q.job)
	}
	return e.qBuf
}

// reservations exposes the current reservation table (job id -> start).
func (e *conservativeEngine) reservations() map[job.ID]int64 {
	out := make(map[job.ID]int64, len(e.queue))
	for _, q := range e.queue {
		if q.hasRes {
			out[q.job.ID] = q.res
		}
	}
	return out
}

func (e *conservativeEngine) schedule(env sim.Env) {
	now := env.Now()

	// Classify the event against the cached profile.
	dirty := !e.cacheOK || e.noCache
	if !dirty {
		if len(e.snaps) != len(env.Running()) {
			// A same-instant completion batch: the simulator released every
			// member before the first policy callback, so tails of the
			// not-yet-delivered completions must come out of the profile
			// now — the from-scratch schedule would already see them gone.
			e.reconcileRemovals(env)
		}
		if len(e.snaps) > 0 && e.snaps[0].ec <= now {
			// A running job crossed its promised release time without
			// completing: its estimate backs off, shrinking future capacity
			// under standing reservations. Re-placement of just the
			// infeasible jobs would cascade (a moved reservation can
			// displace feasible ones), so this is the full-rebuild case.
			dirty = true
		}
	}

	if dirty {
		e.rebuild(env, true)
	} else {
		e.prof.TrimBefore(now)
		e.revalidate(env)
	}

	// Start every job whose reservation has come due. Capacity is
	// guaranteed by the profile; start in reservation order (queue-priority
	// tie-break). The common case — nothing due — costs one scan.
	due := e.dueBuf[:0]
	kept := e.queue[:0]
	for _, q := range e.queue {
		if q.res <= now {
			due = append(due, q)
			continue
		}
		kept = append(kept, q)
	}
	if len(due) > 0 {
		sort.SliceStable(due, func(i, k int) bool {
			if due[i].res != due[k].res {
				return due[i].res < due[k].res
			}
			return e.order.Less(env, due[i].job, due[k].job)
		})
		for _, q := range due {
			if err := env.Start(q.job); err != nil {
				panic(fmt.Sprintf("sched: start reserved job: %v", err))
			}
			// The reservation rectangle [res, res+est) stays in the cached
			// profile: it is exactly the started job's promised running
			// occupancy [now, now+estimate).
			i := sort.Search(len(e.snaps), func(i int) bool { return e.snaps[i].ec >= now+q.job.Estimate })
			e.snaps = append(e.snaps, runSnap{})
			copy(e.snaps[i+1:], e.snaps[i:])
			e.snaps[i] = runSnap{id: q.job.ID, nodes: q.job.Nodes, ec: now + q.job.Estimate}
		}
		if e.dynamic {
			e.pruneLastOrder(due)
		}
	}
	e.dueBuf = due
	clear(e.queue[len(kept):]) // drop started jobs' pointers from the tail
	e.queue = kept
}

// reconcileRemovals drops every snapshot whose job has left the running set
// (releasing its promised tail). Only reached on same-instant completion
// batches, so the quadratic membership scan stays off the hot path.
func (e *conservativeEngine) reconcileRemovals(env sim.Env) {
	running := env.Running()
	now := env.Now()
	for i := 0; i < len(e.snaps); {
		alive := false
		for _, r := range running {
			if r.Job.ID == e.snaps[i].id {
				alive = true
				break
			}
		}
		if alive {
			i++
			continue
		}
		e.dropSnap(now, e.snaps[i].id)
	}
}

// pruneLastOrder removes started jobs from the dynamic engine's remembered
// priority order, preserving the relative order of the rest.
func (e *conservativeEngine) pruneLastOrder(started []*reservedJob) {
	kept := e.lastOrder[:0]
outer:
	for _, id := range e.lastOrder {
		for _, q := range started {
			if q.job.ID == id {
				continue outer
			}
		}
		kept = append(kept, id)
	}
	e.lastOrder = kept
}

// rebuild is the from-scratch schedule — the pre-cache behaviour and the
// fallback for estimate-overrun backoff: copy the environment's shared
// availability profile, re-place every queued job (static: preserving
// reservation order; dynamic: in queue priority order), then compress
// (static only). With refreshSnaps it re-snapshots the running set the
// profile now encodes; callers whose snapshot is already reconciled (the
// dynamic holes path) skip that.
func (e *conservativeEngine) rebuild(env sim.Env, refreshSnaps bool) {
	now := env.Now()
	e.prof.CopyFrom(env.Availability())

	if e.dynamic {
		// Discard everything; rebuild in queue priority order.
		sort.SliceStable(e.queue, func(i, k int) bool {
			return e.order.Less(env, e.queue[i].job, e.queue[k].job)
		})
	} else {
		// Re-validate preserving reservation order (unreserved arrivals
		// last), so existing reservations only move later under estimate
		// overruns; then improve in queue priority order below.
		sort.SliceStable(e.queue, func(i, k int) bool {
			qi, qk := e.queue[i], e.queue[k]
			if qi.hasRes != qk.hasRes {
				return qi.hasRes
			}
			if qi.hasRes && qi.res != qk.res {
				return qi.res < qk.res
			}
			return e.order.Less(env, qi.job, qk.job)
		})
	}
	for _, q := range e.queue {
		after := now
		if !e.dynamic && q.hasRes && q.res > now {
			// Static re-validation does not improve reservations (that is
			// the priority pass's privilege below); it only pushes them
			// later when a running job's overrun makes the slot infeasible.
			after = q.res
		}
		e.place(env, q, after)
	}

	e.holes = false
	e.holeEnd = 0
	if !e.dynamic {
		e.improve(env)
	} else {
		e.lastOrder = e.lastOrder[:0]
		for _, q := range e.queue {
			e.lastOrder = append(e.lastOrder, q.job.ID)
		}
	}

	if refreshSnaps {
		// Snapshot the running set encoded in the rebuilt profile, sorted
		// by promised release time (insertion into the reused buffer; the
		// running set is small and mostly start-ordered).
		e.snaps = e.snaps[:0]
		for _, r := range env.Running() {
			ec := r.EstimatedCompletion(now)
			i := sort.Search(len(e.snaps), func(i int) bool { return e.snaps[i].ec >= ec })
			e.snaps = append(e.snaps, runSnap{})
			copy(e.snaps[i+1:], e.snaps[i:])
			e.snaps[i] = runSnap{id: r.Job.ID, nodes: r.Job.Nodes, ec: ec}
		}
	}
	e.cacheOK = true
}

// revalidate is the cached-profile event path: the running set is unchanged
// (up to early-completion holes already released into the profile), so every
// standing reservation re-fits exactly where it is and only the actual
// changes are processed — fresh arrivals are placed into the standing
// profile, and capacity growth triggers the static improvement passes or
// the dynamic re-placement of the changed priority suffix.
func (e *conservativeEngine) revalidate(env sim.Env) {
	if e.dynamic {
		e.revalidateDynamic(env)
		return
	}
	// Place fresh arrivals (queue-priority order among themselves, matching
	// the from-scratch revalidation sort, which puts unreserved jobs last).
	fresh := e.impBuf[:0]
	for _, q := range e.queue {
		if !q.hasRes {
			fresh = append(fresh, q)
		}
	}
	if len(fresh) > 1 {
		sort.SliceStable(fresh, func(i, k int) bool {
			return e.order.Less(env, fresh[i].job, fresh[k].job)
		})
	}
	for _, q := range fresh {
		e.place(env, q, env.Now())
	}
	e.impBuf = fresh
	if e.holes {
		// Early completions grew capacity: reservations are all still
		// feasible in place, but the priority pass may now compress them
		// into the holes.
		e.holes = false
		e.holeEnd = 0
		e.improve(env)
	}
}

// revalidateDynamic re-places the suffix of the priority order that changed
// since the last placement: the longest prefix with unchanged membership
// and order keeps its reservations (placing it again would replay the
// identical profile operations), everything after it is released and
// re-placed in the new order.
func (e *conservativeEngine) revalidateDynamic(env sim.Env) {
	now := env.Now()
	if e.holes {
		// Capacity grew: reservations may move earlier, which is a replay of
		// the whole priority-order placement by definition — but the hole is
		// confined to [now, holeEnd), so the replay's prefix is provably
		// verbatim until the first job that can actually reach the window.
		e.partialRebuild(env)
		return
	}
	// Fast path: starts only remove entries, so e.queue is still in the last
	// placement's priority order. If every entry is placed and adjacent
	// pairs are still ordered under the current (usage-dependent) order —
	// Less is a strict total order, so pairwise order implies sortedness —
	// the discipline's rebuild would replay identical placements: skip it.
	intact := true
	for i, q := range e.queue {
		if !q.hasRes || (i > 0 && !e.order.Less(env, e.queue[i-1].job, q.job)) {
			intact = false
			break
		}
	}
	if intact {
		return
	}
	sort.SliceStable(e.queue, func(i, k int) bool {
		return e.order.Less(env, e.queue[i].job, e.queue[k].job)
	})
	k := 0
	for k < len(e.queue) && k < len(e.lastOrder) &&
		e.queue[k].hasRes && e.queue[k].job.ID == e.lastOrder[k] {
		k++
	}
	for _, q := range e.queue[k:] {
		if !q.hasRes {
			continue
		}
		if err := e.prof.Release(q.res, q.res+q.job.Estimate, q.job.Nodes); err != nil {
			panic(fmt.Sprintf("sched: conservative cache release reservation: %v", err))
		}
	}
	for _, q := range e.queue[k:] {
		e.place(env, q, now)
	}
	e.lastOrder = e.lastOrder[:0]
	for _, q := range e.queue {
		e.lastOrder = append(e.lastOrder, q.job.ID)
	}
}

// partialRebuild is the dynamic engine's early-completion-hole path: the
// from-scratch replay (rebuild) re-places every queued job in priority
// order, but the released capacity is confined to [now, holeEnd), so for
// the prefix of the priority order that is unchanged since the last
// placement the replay is a verbatim re-occupation — until the first job
// whose earliest fit can land inside the hole window.
//
// Why the probe is exact: the last placement left each prefix job at the
// earliest fit of its turn, and the post-hole profile differs from that
// steady state only on [now, holeEnd). A prefix job's replayed fit can
// therefore only move earlier, and any start s in [holeEnd, res) would have
// been a fit before the hole too — contradicting res being earliest — so
// an improvement exists iff one starts inside [now, min(res, holeEnd)),
// which is exactly what EarliestFitBefore probes (the fitted rectangle may
// still extend past holeEnd; only the start is bounded). Jobs at or past
// the first improvement, order changes, and fresh arrivals are re-placed
// with the full search, identical to the from-scratch replay from that
// point on. The snapshot is already reconciled (complete dropped the
// finished jobs, the clock crossed no promised release), so it carries
// over — matching rebuild(env, false) semantics.
func (e *conservativeEngine) partialRebuild(env sim.Env) {
	now := env.Now()
	sort.SliceStable(e.queue, func(i, k int) bool {
		return e.order.Less(env, e.queue[i].job, e.queue[k].job)
	})
	stable := 0
	for stable < len(e.queue) && stable < len(e.lastOrder) &&
		e.queue[stable].hasRes && e.queue[stable].job.ID == e.lastOrder[stable] {
		stable++
	}
	e.prof.CopyFrom(env.Availability())
	cut := stable
	for i := 0; i < stable; i++ {
		q := e.queue[i]
		est := q.job.Estimate
		limit := q.res
		if e.holeEnd < limit {
			limit = e.holeEnd
		}
		if _, ok := e.prof.EarliestFitBefore(now, limit, est, q.job.Nodes); ok {
			cut = i // first job that reaches the hole: replay live from here
			break
		}
		// No start in the window: the replay keeps this reservation verbatim.
		if err := e.prof.Occupy(q.res, q.res+est, q.job.Nodes); err != nil {
			panic(fmt.Sprintf("sched: partial rebuild re-occupy: %v", err))
		}
	}
	for _, q := range e.queue[cut:] {
		e.place(env, q, now)
	}
	e.lastOrder = e.lastOrder[:0]
	for _, q := range e.queue {
		e.lastOrder = append(e.lastOrder, q.job.ID)
	}
	e.holes = false
	e.holeEnd = 0
}

// place reserves q at the earliest fit of its rectangle no earlier than
// `after` and occupies it in the cached profile.
func (e *conservativeEngine) place(env sim.Env, q *reservedJob, after int64) {
	s, ok := e.prof.EarliestFit(after, q.job.Estimate, q.job.Nodes)
	if !ok {
		panic(fmt.Sprintf("sched: no fit for %v on %d nodes", q.job, env.SystemSize()))
	}
	if err := e.prof.Occupy(s, s+q.job.Estimate, q.job.Nodes); err != nil {
		panic(fmt.Sprintf("sched: reserve: %v", err))
	}
	q.res, q.hasRes = s, true
}

// improve runs the static engine's compression loop: in queue priority
// order, each job may move its reservation strictly earlier into holes left
// by others. One pass under-compresses — a wide job's window only opens
// after the jobs reserved behind it have themselves moved forward — so the
// pass repeats until no reservation improves (bounded; each pass strictly
// reduces total reserved start time). An exhausted pass budget is recorded
// in holes so the next event resumes the loop.
func (e *conservativeEngine) improve(env sim.Env) {
	now := env.Now()
	improved := append(e.impBuf[:0], e.queue...)
	sort.SliceStable(improved, func(i, k int) bool {
		return e.order.Less(env, improved[i].job, improved[k].job)
	})
	e.impBuf = improved
	for pass := 0; pass < improvementPasses; pass++ {
		changed := false
		for _, q := range improved {
			est := q.job.Estimate
			if err := e.prof.Release(q.res, q.res+est, q.job.Nodes); err != nil {
				panic(fmt.Sprintf("sched: release: %v", err))
			}
			s, ok := e.prof.EarliestFit(now, est, q.job.Nodes)
			if !ok || s > q.res {
				s = q.res // keep the existing reservation
			}
			if err := e.prof.Occupy(s, s+est, q.job.Nodes); err != nil {
				panic(fmt.Sprintf("sched: re-reserve: %v", err))
			}
			if s < q.res {
				changed = true
			}
			q.res = s
		}
		if !changed {
			return
		}
	}
	// Pass budget exhausted before the fixpoint: the from-scratch schedule
	// would restart the loop at the next event, so the cache must too.
	e.holes = true
}
