package sched

import (
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

func TestNoGuaranteeStartsAnythingThatFits(t *testing.T) {
	// No reservations: the narrow later job starts immediately even though
	// a wide job is blocked ahead of it (no starvation queue yet).
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 6},
		{ID: 2, User: 2, Submit: 10, Runtime: 500, Estimate: 500, Nodes: 6},
		{ID: 3, User: 3, Submit: 20, Runtime: 400, Estimate: 400, Nodes: 2},
	}
	starts := runPolicy(t, MustParse("cplant24.nomax.all"), 8, jobs)
	if starts[3] != 20 {
		t.Fatalf("no-guarantee backfilling should start job 3 at 20, got %d", starts[3])
	}
}

func TestNoGuaranteeFairshareOrder(t *testing.T) {
	// Two jobs fit one slot; the lower-usage user's job starts first.
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 1000, Estimate: 1000, Nodes: 8}, // user 1 builds usage
		{ID: 2, User: 1, Submit: 10, Runtime: 100, Estimate: 100, Nodes: 8},
		{ID: 3, User: 2, Submit: 20, Runtime: 100, Estimate: 100, Nodes: 8},
	}
	starts := runPolicy(t, MustParse("cplant24.nomax.all"), 8, jobs)
	if !(starts[3] < starts[2]) {
		t.Fatalf("fairshare order violated: user2 job at %d, user1 job at %d", starts[3], starts[2])
	}
}

func TestStarvationPromotionGivesReservation(t *testing.T) {
	// A wide job starves behind a stream of narrow jobs; after 24h it
	// enters the starvation queue, gets a reservation, and the stream can
	// no longer pass it.
	day := int64(24 * 3600)
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 10 * day, Estimate: 10 * day, Nodes: 5},
		{ID: 2, User: 2, Submit: 10, Runtime: 10 * day, Estimate: 10 * day, Nodes: 6}, // starves
		// A stream of narrow long jobs that would keep starting without the
		// starvation queue (3 free nodes).
		{ID: 3, User: 3, Submit: 20, Runtime: 10 * day, Estimate: 10 * day, Nodes: 3},
		{ID: 4, User: 4, Submit: day + 100, Runtime: 10 * day, Estimate: 10 * day, Nodes: 3},
	}
	starts := runPolicy(t, MustParse("cplant24.nomax.all"), 8, jobs)
	// Job 4 arrives after job 2 was promoted (24h). Starting job 4 (3 nodes,
	// est 10d) would delay job 2's reservation at 10d: it must wait.
	if starts[4] < 10*day {
		t.Fatalf("job 4 started at %d, delaying the starved head", starts[4])
	}
}

func TestHeavyUserBarredFromStarvationQueue(t *testing.T) {
	day := int64(24 * 3600)
	mk := func(spec string) map[job.ID]int64 {
		jobs := []*job.Job{
			// User 1 builds heavy usage on half the machine; user 9 keeps a
			// small job running so the mean usage stays low.
			{ID: 1, User: 1, Submit: 0, Runtime: 5 * day, Estimate: 5 * day, Nodes: 7},
			{ID: 2, User: 9, Submit: 0, Runtime: 5 * day, Estimate: 5 * day, Nodes: 1},
			// User 1's second job wants the whole machine and waits > 24h.
			{ID: 3, User: 1, Submit: 10, Runtime: day, Estimate: day, Nodes: 8},
		}
		return runPolicy(t, MustParse(spec), 8, jobs)
	}
	admitted := mk("cplant24.nomax.all")
	barred := mk("cplant24.nomax.fair")
	// With everyone admitted the wide job starts when jobs 1+2 end (5d);
	// the classifier cannot make it later on this tiny workload, but the
	// policy paths differ: ensure both complete and the barred run is not
	// earlier than the admitted run.
	if barred[3] < admitted[3] {
		t.Fatalf("barring a heavy user must not start their job earlier (%d vs %d)", barred[3], admitted[3])
	}
}

func TestNoGuaranteeNextWake(t *testing.T) {
	pol := MustParse("cplant24.nomax.all")
	pol.Reset(nil)
	eng := pol.engine.(*aggressiveEngine)
	eng.main = []*job.Job{
		{ID: 1, Submit: 100},
		{ID: 2, Submit: 500},
	}
	next, ok := pol.NextWake(0)
	if !ok || next != 100+24*3600 {
		t.Fatalf("NextWake = %d,%v", next, ok)
	}
	// Once past both promotion instants there is nothing to wake for.
	if _, ok := pol.NextWake(600 + 24*3600); ok {
		t.Fatal("stale wake requested")
	}
}

func TestNoGuaranteeQueuedOrdersStarvedFirst(t *testing.T) {
	pol := MustParse("cplant24.nomax.all")
	pol.Reset(nil)
	eng := pol.engine.(*aggressiveEngine)
	eng.main = []*job.Job{{ID: 1}}
	eng.starved = []*job.Job{{ID: 2}}
	q := pol.Queued()
	if len(q) != 2 || q[0].ID != 2 || q[1].ID != 1 {
		t.Fatalf("Queued() = %v", q)
	}
	if pol.StarvedLen() != 1 {
		t.Fatal("StarvedLen wrong")
	}
}

func TestPureNoGuaranteeHasNoStarvationWake(t *testing.T) {
	pol := MustParse("noguarantee")
	pol.Reset(nil)
	eng := pol.engine.(*aggressiveEngine)
	eng.main = []*job.Job{{ID: 1, Submit: 100}}
	if _, ok := pol.NextWake(0); ok {
		t.Fatal("starvation-free policy requested a promotion wake")
	}
	var _ sim.Policy = pol
}
