// Package sched implements the scheduling policies the paper studies as a
// composable design space instead of a fixed menu. A policy is a point in
//
//	Order × Backfill × Starvation
//
// where Order ranks the main queue (fairshare, fcfs, sjf, lxf, widest,
// narrowest), Backfill is the discipline deciding which queued jobs may
// start (none, noguarantee, easy, depth, conservative, consdyn) and
// Starvation optionally promotes long-waiting jobs to a reserved FCFS
// queue (wait threshold, heavy-user classifier, reservation depth). The
// generic Composite policy assembles the components; a Spec names a point
// in the space, parsed from the `order=…+bf=…+starve=…` grammar or looked
// up in the named registry (see Builtins).
//
// The paper's nine configurations are registry entries: the baseline
// CPlant scheduler (§2.1) is order=fairshare+bf=noguarantee+starve=24h.all,
// the §5.2 "minor change" variants adjust the starvation axis, and the
// §5.3/§5.4 conservative policies swap the backfill axis. The reference
// baselines (strict FCFS of Figure 1, EASY of Figure 2, the no-backfill
// fairshare list scheduler defining the hybrid FST) and the size-based
// orderings of the related fairness literature (SJF, LXF) are further
// points in the same space.
//
// Maximum-runtime limits (§5.1) are a workload transformation implemented
// in the simulator; Spec.MaxRuntime records them so a spec fully names a
// configuration, and they compose with every policy here.
//
// All components of one scheduling pass share the environment's per-event
// availability profile (sim.Env.Availability) instead of re-deriving the
// running jobs' release times independently; see DESIGN.md §9.
package sched

import (
	"sort"

	"fairsched/internal/job"
	"fairsched/internal/profile"
	"fairsched/internal/sim"
)

// remove deletes the job with the given id from a queue slice, preserving
// order, and reports whether it was present. The vacated tail slot is
// cleared so the popped job pointer does not linger in the backing array.
func remove(q []*job.Job, id job.ID) ([]*job.Job, bool) {
	for i, j := range q {
		if j.ID == id {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			return q[:len(q)-1], true
		}
	}
	return q, false
}

// popHead removes and returns the queue's head, clearing the vacated slot
// so the backing array does not pin the started job.
func popHead(q []*job.Job) ([]*job.Job, *job.Job) {
	head := q[0]
	copy(q, q[1:])
	q[len(q)-1] = nil
	return q[:len(q)-1], head
}

// sortFCFS orders jobs by submission time then id (the starvation queue's
// discipline).
func sortFCFS(q []*job.Job) {
	sort.SliceStable(q, func(i, k int) bool { return arrivalLess(q[i], q[k]) })
}

// reservation computes the earliest time a job needing `nodes` nodes could
// start given only the running jobs' estimated completions (no queued-job
// reservations) — the reservation EASY backfilling and the starvation-queue
// head use. It reads the environment's shared availability profile rather
// than re-deriving release times from the running set. It returns the
// reservation time and the "shadow" capacity: the nodes left over at that
// time after the job is placed, which bounds what backfilled jobs running
// past the reservation may consume.
func reservation(env sim.Env, nodes int) (at int64, shadow int) {
	prof := env.Availability()
	// The availability profile only ever gains capacity over time (running
	// jobs release nodes; nothing is reserved in it), so the earliest
	// single-instant fit is the earliest fit, period.
	s, ok := prof.EarliestFit(env.Now(), 1, nodes)
	if !ok {
		// Unreachable for valid jobs: all running jobs complete eventually
		// and nodes <= system size.
		return env.Now(), env.SystemSize() - nodes
	}
	return s, prof.FreeAt(s) - nodes
}

// canBackfill reports whether candidate c may start now without delaying a
// reservation at resAt with the given shadow capacity: either c completes
// (by its estimate) before the reservation, or it fits into the shadow
// nodes.
func canBackfill(env sim.Env, c *job.Job, resAt int64, shadow int) bool {
	if c.Nodes > env.FreeNodes() {
		return false
	}
	if env.Now()+c.Estimate <= resAt {
		return true
	}
	return c.Nodes <= shadow
}

// fitsNow reports whether a job starting immediately fits the profile for
// its whole estimated duration.
func fitsNow(prof *profile.Profile, now int64, c *job.Job) bool {
	s, ok := prof.EarliestFit(now, c.Estimate, c.Nodes)
	return ok && s == now
}
