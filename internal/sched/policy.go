// Package sched implements the scheduling policies the paper studies:
//
//   - the baseline CPlant scheduler: no-guarantee backfilling over a
//     fairshare-ordered queue plus an FCFS starvation queue whose head holds
//     an aggressive reservation (paper §2.1);
//   - the paper's "minor change" variants: longer starvation-entry delay and
//     heavy-user exclusion (§5.2);
//   - conservative backfilling with the fairshare queue order (§5.3) and its
//     dynamic-reservation variant (§5.4);
//   - reference baselines: strict FCFS (Figure 1 semantics), EASY aggressive
//     backfilling (Figure 2 semantics), and the no-backfill fairshare list
//     scheduler that defines the hybrid FST.
//
// Maximum-runtime limits (§5.1) are a workload transformation implemented in
// the simulator, composable with any policy here.
package sched

import (
	"sort"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// remove deletes the job with the given id from a queue slice, preserving
// order, and reports whether it was present.
func remove(q []*job.Job, id job.ID) ([]*job.Job, bool) {
	for i, j := range q {
		if j.ID == id {
			return append(q[:i], q[i+1:]...), true
		}
	}
	return q, false
}

// sortFairshare orders jobs by the fairshare priority (lowest decayed usage
// first; ties FCFS then by id).
func sortFairshare(env sim.Env, q []*job.Job) {
	env.Fairshare().SortJobs(q)
}

// sortFCFS orders jobs by submission time then id.
func sortFCFS(q []*job.Job) {
	sort.SliceStable(q, func(i, k int) bool {
		if q[i].Submit != q[k].Submit {
			return q[i].Submit < q[k].Submit
		}
		return q[i].ID < q[k].ID
	})
}

// aggressiveReservation computes the earliest time a job needing `nodes`
// nodes could start, given only the running jobs' estimated completions (no
// queued-job reservations) — the reservation EASY backfilling and the
// starvation-queue head use. It returns the reservation time and the
// "shadow" capacity: the nodes left over at that time after the job is
// placed, which bounds what backfilled jobs running past the reservation may
// consume.
func aggressiveReservation(env sim.Env, nodes int) (at int64, shadow int) {
	free := env.FreeNodes()
	now := env.Now()
	if nodes <= free {
		return now, free - nodes
	}
	type release struct {
		t int64
		n int
	}
	running := env.Running()
	rel := make([]release, 0, len(running))
	for _, r := range running {
		rel = append(rel, release{t: r.EstimatedCompletion(now), n: r.Job.Nodes})
	}
	sort.Slice(rel, func(i, k int) bool {
		if rel[i].t != rel[k].t {
			return rel[i].t < rel[k].t
		}
		return rel[i].n < rel[k].n
	})
	cum := free
	for i, r := range rel {
		cum += r.n
		// Absorb simultaneous releases before testing.
		if i+1 < len(rel) && rel[i+1].t == r.t {
			continue
		}
		if cum >= nodes {
			return r.t, cum - nodes
		}
	}
	// Unreachable for valid jobs: all running jobs complete eventually and
	// nodes <= system size.
	return now, env.SystemSize() - nodes
}

// canBackfill reports whether candidate c may start now without delaying a
// reservation at resAt with the given shadow capacity: either c completes
// (by its estimate) before the reservation, or it fits into the shadow
// nodes.
func canBackfill(env sim.Env, c *job.Job, resAt int64, shadow int) bool {
	if c.Nodes > env.FreeNodes() {
		return false
	}
	if env.Now()+c.Estimate <= resAt {
		return true
	}
	return c.Nodes <= shadow
}
