package sched

import (
	"fmt"
	"sort"

	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// Checkpoint preemption: the fourth orthogonal policy component
// (`preempt=<trigger>.<victim>`). After every regular scheduling pass the
// Composite checks the trigger — a blocked reservation head (reserve) or a
// queued job already past its SLO deadline (deadline) — and, when it fires,
// checkpoints just enough strictly-lower-priority running jobs to start the
// beneficiary, then reruns the engine's pass over the freed nodes. The
// simulator resubmits each victim's remainder as a chained segment
// (sim.Preempter), so the fairness engine and the chained SLO judgment
// price the restart as part of one logical job.
//
// Three guards keep the pass sane and terminating:
//
//   - victims must sort strictly AFTER the beneficiary under the queue
//     order (no preempting work the order ranks at least as high — the
//     anti-thrash rule: a job can never be preempted for a beneficiary
//     that would lose to it in the queue);
//   - the victim set is computed up front and preempted only when it frees
//     enough nodes in total — no partial preemption that kills jobs without
//     starting anything;
//   - each round preempts at least one job and the policy queue only
//     shrinks within a pass (remainders re-enter via the event list, not
//     the queue), so rounds are bounded by the queue length at entry.

// victim pairs a preemption candidate with its start time (victim-rule
// sort key).
type victim struct {
	job   *job.Job
	start int64
}

// preemptPass runs preemption rounds until the trigger no longer fires.
// It is a no-op for non-preemptive specs.
func (c *Composite) preemptPass(env sim.Env) {
	if c.spec.PreemptTrigger == "" {
		return
	}
	p, ok := env.(sim.Preempter)
	if !ok {
		// Reset checked this; an env change mid-run is a harness bug.
		panic(fmt.Sprintf("sched: policy %s: environment lost preemption capability", c.Name()))
	}
	// Each successful round starts at least the freed-for beneficiary and
	// never grows the queue, so the queue length at entry bounds the rounds.
	bound := len(c.engine.queued())
	for i := 0; i < bound; i++ {
		if !c.preemptOnce(env, p) {
			return
		}
		c.engine.schedule(env)
	}
}

// preemptOnce selects a beneficiary per the trigger, assembles a sufficient
// victim set per the victim rule, and checkpoints it. It reports whether a
// preemption happened (the caller then reruns the engine pass).
func (c *Composite) preemptOnce(env sim.Env, p sim.Preempter) bool {
	ben := c.beneficiary(env)
	if ben == nil || ben.Nodes <= env.FreeNodes() {
		// Nothing blocked on nodes. (A job blocked only by a reservation
		// constraint while nodes are free is not a preemption case: freeing
		// more nodes would not unblock it.)
		return false
	}
	need := ben.Nodes - env.FreeNodes()
	cands := c.victimBuf[:0]
	for _, r := range env.Running() {
		// Only strictly-lower-priority work is preemptable for ben, and
		// only jobs the simulator can actually checkpoint (>= 1s realized
		// and >= 1s remaining service).
		if !c.order.Less(env, ben, r.Job) || !p.CanPreempt(r.Job) {
			continue
		}
		cands = append(cands, victim{job: r.Job, start: r.Start})
	}
	c.victimBuf = cands
	total := 0
	for _, v := range cands {
		total += v.job.Nodes
	}
	if total < need {
		return false // insufficient even preempting every candidate
	}
	switch c.spec.PreemptVictim {
	case VictimNewest:
		// Most recently started first: least sunk service is thrown away.
		sort.SliceStable(cands, func(i, k int) bool {
			if cands[i].start != cands[k].start {
				return cands[i].start > cands[k].start
			}
			return cands[i].job.ID > cands[k].job.ID
		})
	default: // VictimLowPri
		// Worst under the queue order first: the running set's lowest
		// priority work is checkpointed before anything better.
		sort.SliceStable(cands, func(i, k int) bool {
			return c.order.Less(env, cands[k].job, cands[i].job)
		})
	}
	freed := 0
	for _, v := range cands {
		if err := p.Preempt(v.job); err != nil {
			// CanPreempt vetted every candidate within this same event.
			panic(fmt.Sprintf("sched: policy %s: preempt %d: %v", c.Name(), v.job.ID, err))
		}
		freed += v.job.Nodes
		if freed >= need {
			return true
		}
	}
	return true
}

// beneficiary returns the queued job the trigger wants to start, or nil
// when the trigger does not fire.
func (c *Composite) beneficiary(env sim.Env) *job.Job {
	q := c.engine.queued()
	var ben *job.Job
	switch c.spec.PreemptTrigger {
	case PreemptReserve:
		// The blocked head: the highest-priority queued job (the one the
		// engine's reservation is protecting).
		for _, cand := range q {
			if ben == nil || c.order.Less(env, cand, ben) {
				ben = cand
			}
		}
	case PreemptDeadline:
		// The highest-priority queued job already past its SLO deadline.
		// Without a deadline source the trigger never fires.
		now := env.Now()
		for _, cand := range q {
			d, ok := c.deadlineOf(cand)
			if !ok || now < d {
				continue
			}
			if ben == nil || c.order.Less(env, cand, ben) {
				ben = cand
			}
		}
	}
	return ben
}

// deadlineOf returns a queued job's SLO deadline (submit + the user's wait
// target) under the attached SLO context.
func (c *Composite) deadlineOf(j *job.Job) (int64, bool) {
	if c.slo.deadlines == nil {
		return 0, false
	}
	w, ok := c.slo.deadlines.WaitTarget(j.User)
	if !ok || w <= 0 {
		return 0, false
	}
	return j.Submit + w, true
}
