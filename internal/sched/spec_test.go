package sched

import (
	"strings"
	"testing"

	"fairsched/internal/fairshare"
)

func TestParseSpecRegisteredNames(t *testing.T) {
	s, err := ParseSpec("cplant24.nomax.all")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Key: "cplant24.nomax.all", Order: "fairshare",
		Backfill: BackfillNoGuarantee, Wait: 24 * 3600, Heavy: HeavyAll, Depth: 1,
	}
	if s != want {
		t.Fatalf("spec = %+v, want %+v", s, want)
	}
	if s.Canonical() != "order=fairshare+bf=noguarantee+starve=24h.all" {
		t.Fatalf("canonical = %q", s.Canonical())
	}
}

func TestParseSpecChains(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"order=fairshare+bf=easy+starve=24h.nonheavy+depth=2",
			Spec{Order: "fairshare", Backfill: BackfillEASY, Wait: 24 * 3600, Heavy: HeavyNonheavy, Depth: 2}},
		{"bf=none+order=sjf",
			Spec{Order: "sjf", Backfill: BackfillNone}},
		{"starve=72h",
			Spec{Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: 72 * 3600, Heavy: HeavyAll, Depth: 1}},
		{"order=lxf+bf=consdyn+max=72h",
			Spec{Order: "lxf", Backfill: BackfillConservativeDynamic, MaxRuntime: 72 * 3600}},
		{"bf=depth+depth=3",
			Spec{Order: "fairshare", Backfill: BackfillDepth, Depth: 3}},
		{"order=fcfs+bf=easy+preempt=reserve", // victim defaults to lowpri
			Spec{Order: "fcfs", Backfill: BackfillEASY, PreemptTrigger: PreemptReserve, PreemptVictim: VictimLowPri}},
		{"order=edf+bf=easy+preempt=deadline.newest",
			Spec{Order: "edf", Backfill: BackfillEASY, PreemptTrigger: PreemptDeadline, PreemptVictim: VictimNewest}},
		{"preempt=reserve+bf=easy", // component order is free
			Spec{Order: "fairshare", Backfill: BackfillEASY, PreemptTrigger: PreemptReserve, PreemptVictim: VictimLowPri}},
		{"order=fcfs+bf=depth+depth=2+preempt=reserve",
			Spec{Order: "fcfs", Backfill: BackfillDepth, Depth: 2, PreemptTrigger: PreemptReserve, PreemptVictim: VictimLowPri}},
		{"order=edf+bf=none",
			Spec{Order: "edf", Backfill: BackfillNone}},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		want := tc.want.normalized()
		want.Key = want.Canonical()
		if got != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, want)
		}
	}
}

func TestParseSpecErrorsCarryPosition(t *testing.T) {
	cases := []struct {
		in      string
		wantPos string // substring naming the expected position
		wantMsg string
	}{
		{"order=bogus+bf=easy", "position 6", "unknown order"},
		{"order=fairshare+bf=bogus", "position 19", "unknown backfill"},
		{"order=fairshare+frobnicate=1", "position 16", "unknown component"},
		{"order=fairshare+starve=24h.sometimes", "position 27", "unknown heavy classifier"},
		{"order=fairshare+depth=x", "position 22", "depth"},
		{"bf=easy+bf=none", "position 8", "duplicate bf="},
		{"order=fairshare+starve=0h", "position 23", "must be positive"},
		{"order=fairshare+bf", "position 16", "not key=value"},
		{"preempt=bogus.lowpri", "position 8", "unknown preempt trigger"},
		{"preempt=reserve.bogus", "position 16", "unknown preempt victim"},
		{"order=sjf+bf=conservative+preempt=reserve", "position 26", "preempt is incompatible with bf=conservative"},
		{"order=sjf+bf=consdyn+preempt=deadline", "position 21", "preempt is incompatible with bf=consdyn"},
		{"preempt=deadline.newest+bf=noguarantee", "position 0", "no blocked-head reservation"},
		{"order=fcfs+bf=easy+starve=24h+preempt=reserve", "position 30", "preempt is incompatible with starve"},
		{"order=fcfs+bf=easy+preempt=reserve+max=72h", "position 19", "preempt is incompatible with max"},
		{"order=edf+bf=conservative", "position 0", "order=edf is incompatible with bf=conservative"},
		{"order=edf+bf=consdyn", "position 0", "order=edf is incompatible with bf=consdyn"},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.in)
		if err == nil {
			t.Errorf("ParseSpec(%q): accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantPos) || !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("ParseSpec(%q) error %q: want position %q and message %q",
				tc.in, err, tc.wantPos, tc.wantMsg)
		}
	}
}

func TestParseSpecUnknownNameFailsLoudly(t *testing.T) {
	_, err := ParseSpec("nonsense")
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("err = %v", err)
	}
	if _, err := ParseSpec(""); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestSpecValidationRejectsIncompatibleCombos(t *testing.T) {
	bad := []Spec{
		{Backfill: BackfillConservative, Wait: 3600, Heavy: HeavyAll}, // starve × cons
		{Backfill: BackfillNone, Wait: 3600, Heavy: HeavyAll},         // starve × none
		{Backfill: BackfillDepth, Depth: 2, Wait: 3600, Heavy: HeavyAll},
		{Backfill: BackfillEASY, Depth: 2},     // depth without starve or bf=depth
		{Backfill: BackfillEASY, Heavy: "all"}, // heavy without starve
		{Order: "alphabetical"},
		{Backfill: "optimistic"},
		{Wait: -1},
		{MaxRuntime: -5},
		{Backfill: BackfillEASY, PreemptTrigger: "sometimes"}, // unknown trigger
		{Backfill: BackfillEASY, PreemptTrigger: PreemptReserve, PreemptVictim: "oldest"},     // unknown victim
		{Backfill: BackfillEASY, PreemptVictim: VictimLowPri},                                 // victim without trigger
		{Backfill: BackfillConservative, PreemptTrigger: PreemptReserve},                      // preempt × cons
		{Backfill: BackfillNoGuarantee, PreemptTrigger: PreemptReserve},                       // preempt × noguarantee
		{Backfill: BackfillEASY, PreemptTrigger: PreemptReserve, Wait: 3600, Heavy: HeavyAll}, // preempt × starve
		{Backfill: BackfillEASY, PreemptTrigger: PreemptReserve, MaxRuntime: 3600},            // preempt × max
		{Order: "edf", Backfill: BackfillConservative},                                        // edf × cons cache
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, s)
		}
		if _, err := New(s); err == nil {
			t.Errorf("case %d: New accepted %+v", i, s)
		}
	}
}

func TestParseSpecHeavyClassifierTokens(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"starve=24h.q75",
			Spec{Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: 24 * 3600, Heavy: "q75", Depth: 1}},
		{"starve=24h.q07", // leading zero normalizes, keeping canonical stable
			Spec{Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: 24 * 3600, Heavy: "q7", Depth: 1}},
		{"order=sjf+bf=easy+starve=72h.abs280h",
			Spec{Order: "sjf", Backfill: BackfillEASY, Wait: 72 * 3600, Heavy: "abs280h", Depth: 1}},
		{"starve=24h.abs1008000", // 280h in raw seconds: same classifier, same canonical
			Spec{Order: "fairshare", Backfill: BackfillNoGuarantee, Wait: 24 * 3600, Heavy: "abs280h", Depth: 1}},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		want := tc.want.normalized()
		want.Key = want.Canonical()
		if got != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, want)
		}
		if MustNew(got) == nil {
			t.Errorf("ParseSpec(%q): nil policy", tc.in)
		}
	}
	for _, bad := range []string{
		"starve=24h.q0", "starve=24h.q100", "starve=24h.qqq",
		"starve=24h.abs0", "starve=24h.abs-3", "starve=24h.abs",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): accepted", bad)
		}
	}
}

// TestHeavyClassifierResolution pins the grammar token -> classifier
// mapping the starvation component is assembled with.
func TestHeavyClassifierResolution(t *testing.T) {
	if _, ok := heavyClassifier("all").(fairshare.Never); !ok {
		t.Error("all should resolve to Never")
	}
	if _, ok := heavyClassifier("nonheavy").(fairshare.AboveMean); !ok {
		t.Error("nonheavy should resolve to AboveMean")
	}
	q, ok := heavyClassifier("q75").(fairshare.AboveQuantile)
	if !ok || q.Q != 0.75 {
		t.Errorf("q75 resolved to %#v", heavyClassifier("q75"))
	}
	a, ok := heavyClassifier("abs280h").(fairshare.AboveAbsolute)
	if !ok || a.ProcSeconds != 280*3600 {
		t.Errorf("abs280h resolved to %#v", heavyClassifier("abs280h"))
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	// Every builtin's canonical chain re-parses to the same components.
	for _, b := range Builtins() {
		c := b.Spec.Canonical()
		got, err := ParseSpec(c)
		if err != nil {
			t.Errorf("%s: canonical %q does not parse: %v", b.Key, c, err)
			continue
		}
		if got.Canonical() != c {
			t.Errorf("%s: canonical not stable: %q -> %q", b.Key, c, got.Canonical())
		}
		want := b.Spec.normalized()
		want.Key = c
		if got != want {
			t.Errorf("%s: round trip changed spec: %+v -> %+v", b.Key, want, got)
		}
	}
}

func TestSpecStringPrefersKey(t *testing.T) {
	s, _ := ParseSpec("fcfs")
	if s.String() != "fcfs" {
		t.Fatalf("String = %q", s.String())
	}
	anon := Spec{Order: "sjf", Backfill: BackfillEASY}
	if anon.String() != "order=sjf+bf=easy" {
		t.Fatalf("anonymous String = %q", anon.String())
	}
}

func TestParseDurUnits(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{{"90", 90}, {"90s", 90}, {"15m", 900}, {"24h", 86400}, {"3d", 3 * 86400}, {"2w", 14 * 86400}} {
		got, err := parseDur(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseDur(%q) = %d,%v want %d", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "x", "1.5h", "h"} {
		if _, err := parseDur(bad); err == nil {
			t.Errorf("parseDur(%q) accepted", bad)
		}
	}
}
