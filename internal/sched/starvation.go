package sched

import (
	"fmt"
	"strconv"
	"strings"

	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// starvation is the starvation-promotion component (paper §2.1, §5.2): a
// job queued longer than wait moves from the main queue to an FCFS
// starvation queue — unless its user is classified heavy — and the first
// depth starvation-queue heads hold reservations every other job must
// respect.
type starvation struct {
	wait  int64
	heavy fairshare.HeavyClassifier
	depth int
}

// newStarvation builds the component from the spec's starvation axis;
// returns nil when the spec disables starvation.
func newStarvation(s Spec) *starvation {
	if s.Wait <= 0 {
		return nil
	}
	st := &starvation{wait: s.Wait, depth: s.Depth}
	if st.depth < 1 {
		st.depth = 1
	}
	st.heavy = heavyClassifier(s.Heavy)
	return st
}

// heavyClassifier resolves a (validated) heavy token to its classifier:
// all -> Never, nonheavy -> AboveMean, q<N> -> AboveQuantile(N/100),
// abs<S> -> AboveAbsolute(S proc-seconds).
func heavyClassifier(tok string) fairshare.HeavyClassifier {
	switch {
	case tok == HeavyNonheavy:
		return fairshare.AboveMean{}
	case strings.HasPrefix(tok, "q"):
		n, err := strconv.Atoi(tok[1:])
		if err != nil || n < 1 || n > 99 {
			panic(fmt.Sprintf("sched: unvalidated heavy quantile %q", tok))
		}
		return fairshare.AboveQuantile{Q: float64(n) / 100}
	case strings.HasPrefix(tok, "abs"):
		sec, err := parseDur(tok[3:])
		if err != nil || sec <= 0 {
			panic(fmt.Sprintf("sched: unvalidated heavy threshold %q", tok))
		}
		return fairshare.AboveAbsolute{ProcSeconds: float64(sec)}
	default:
		return fairshare.Never{}
	}
}

// nextPromotion returns the earliest starvation-promotion instant strictly
// after now among the main-queue jobs.
func (st *starvation) nextPromotion(now int64, main []*job.Job) (int64, bool) {
	var t int64
	have := false
	for _, j := range main {
		e := j.Submit + st.wait
		if e > now && (!have || e < t) {
			t, have = e, true
		}
	}
	return t, have
}

// promote moves starvation-eligible jobs from main to the FCFS starvation
// queue and returns the two updated queues. Heavy users' jobs stay in the
// main queue and are re-evaluated at later events ("temporarily
// restricted").
func (st *starvation) promote(env sim.Env, main, starved []*job.Job) (m, s []*job.Job) {
	now := env.Now()
	var live []int
	kept := main[:0]
	for _, j := range main {
		if now-j.Submit < st.wait {
			kept = append(kept, j)
			continue
		}
		if _, isNever := st.heavy.(fairshare.Never); !isNever {
			if live == nil {
				live = liveUsers(env, main, starved)
			}
			if st.heavy.IsHeavy(env.Fairshare(), j.User, live) {
				kept = append(kept, j)
				continue
			}
		}
		starved = append(starved, j)
	}
	clear(main[len(kept):]) // drop moved jobs' pointers from the vacated tail
	sortFCFS(starved)
	return kept, starved
}

// liveUsers returns the distinct users with queued or running jobs, for the
// heavy classifier.
func liveUsers(env sim.Env, main, starved []*job.Job) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(u int) {
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	for _, r := range env.Running() {
		add(r.Job.User)
	}
	for _, j := range starved {
		add(j.User)
	}
	for _, j := range main {
		add(j.User)
	}
	return out
}
