package sched

import "testing"

// FuzzParseSpec asserts the parse/canonical round trip: any input the
// parser accepts must render a canonical chain that re-parses to the
// identical spec (and builds a runnable policy). Run continuously in CI as
// a smoke step; `go test -fuzz FuzzParseSpec ./internal/sched` digs deeper.
func FuzzParseSpec(f *testing.F) {
	for _, b := range Builtins() {
		f.Add(b.Key)
		f.Add(b.Spec.Canonical())
	}
	f.Add("order=fairshare+bf=easy+starve=24h.nonheavy+depth=2")
	f.Add("starve=90s+depth=7")
	f.Add("bf=depth+depth=100+max=1w")
	f.Add("depth999")
	f.Add(" order=sjf + bf=none ")
	f.Add("starve=24h.q75")
	f.Add("starve=24h.q07")
	f.Add("order=sjf+bf=easy+starve=72h.abs280h")
	f.Add("starve=24h.abs1008000")
	f.Add("starve=24h.abs100001")
	f.Add("starve=24h.q100")
	f.Add("starve=24h.abs0")
	f.Add("order=fcfs+bf=easy+preempt=reserve")
	f.Add("order=edf+bf=easy+preempt=deadline.newest")
	f.Add("preempt=reserve.lowpri+bf=depth+depth=3")
	f.Add("preempt=deadline")
	f.Add("preempt=reserve.")
	f.Add("preempt=.newest")
	f.Add("order=edf+bf=conservative")
	f.Add("order=edf")
	f.Add("srpt")
	f.Add("edf.preempt")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) returned invalid spec %+v: %v", in, s, err)
		}
		c := s.Canonical()
		s2, err := ParseSpec(c)
		if err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", c, in, err)
		}
		if s2.Canonical() != c {
			t.Fatalf("canonical unstable: %q -> %q", c, s2.Canonical())
		}
		// Components must survive the round trip (keys may differ: a
		// registered name keeps its name, the chain takes the canonical).
		a, b := s, s2
		a.Key, b.Key = "", ""
		if a != b {
			t.Fatalf("round trip changed components: %+v -> %+v", a, b)
		}
		if pol := MustNew(s); pol == nil {
			t.Fatal("nil policy")
		}
	})
}
