package sched

import (
	"fairsched/internal/job"
	"fairsched/internal/sim"
)

// listEngine is the bf=none discipline: pure list scheduling. At each
// scheduling event the queue is sorted by the order and heads are started
// while they fit; the first blocked head blocks the rest (no backfilling).
// Over an FCFS queue this is the strict scheduler of Figure 1 ("fair" but
// poor utilization); over the fairshare queue it is the reference
// discipline of the hybrid FST metric (paper §4.1).
type listEngine struct {
	order Order
	queue []*job.Job
}

func (e *listEngine) reset() { e.queue = nil }

func (e *listEngine) arrive(env sim.Env, j *job.Job) {
	e.queue = append(e.queue, j)
	e.schedule(env)
}

func (e *listEngine) complete(env sim.Env, _ *job.Job) { e.schedule(env) }

func (e *listEngine) nextWake(int64) (int64, bool) { return 0, false }

func (e *listEngine) queued() []*job.Job { return e.queue }

func (e *listEngine) schedule(env sim.Env) {
	sortQueue(env, e.order, e.queue)
	for len(e.queue) > 0 && e.queue[0].Nodes <= env.FreeNodes() {
		var head *job.Job
		e.queue, head = popHead(e.queue)
		if err := env.Start(head); err != nil {
			panic(err) // capacity was checked; a failure is a policy bug
		}
	}
}
