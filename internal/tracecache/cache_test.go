package tracecache

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/swf"
)

// testJobs builds a deterministic workload with repeated and negative user
// ids (the dedup and sign paths of the user table).
func testJobs(n int) []*job.Job {
	rng := rand.New(rand.NewSource(7))
	jobs := make([]*job.Job, n)
	for i := range jobs {
		jobs[i] = &job.Job{
			ID:       job.ID(i + 1),
			User:     []int{3, 14, -1, 159, 3}[rng.Intn(5)],
			Group:    rng.Intn(4) - 1,
			Submit:   int64(i * 60),
			Runtime:  int64(1 + rng.Intn(7200)),
			Estimate: int64(1 + rng.Intn(14400)),
			Nodes:    1 + rng.Intn(64),
		}
	}
	return jobs
}

func testMeta() Meta {
	m := Meta{
		Fingerprint:   OptionsFingerprint(swf.ConvertOptions{}),
		SystemSize:    1010,
		UnixStartTime: 878606400,
	}
	for i := range m.SourceSHA256 {
		m.SourceSHA256[i] = byte(i * 3)
	}
	return m
}

func assertJobsEqual(t *testing.T, got, want []*job.Job) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("job count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if *got[i] != *want[i] {
			t.Fatalf("job %d: got %+v, want %+v", i, *got[i], *want[i])
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100} {
		jobs, meta := testJobs(n), testMeta()
		buf, err := Encode(jobs, meta)
		if err != nil {
			t.Fatalf("Encode(%d jobs): %v", n, err)
		}
		got, gotMeta, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%d jobs): %v", n, err)
		}
		if gotMeta != meta {
			t.Fatalf("meta: got %+v, want %+v", gotMeta, meta)
		}
		assertJobsEqual(t, got, jobs)
	}
}

// TestDecodeRejectsEveryByteFlip is the corruption gate: flipping any
// single byte of a valid image must produce an error (the header CRC covers
// the header, the body CRC the body, and a flip inside either CRC field
// breaks its own comparison) — never a silent mis-decode.
func TestDecodeRejectsEveryByteFlip(t *testing.T) {
	buf, err := Encode(testJobs(17), testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		mut := bytes.Clone(buf)
		mut[i] ^= 0x40
		if _, _, err := Decode(mut); err == nil {
			t.Fatalf("byte %d flipped: Decode accepted corrupted image", i)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	buf, err := Encode(testJobs(9), testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, headerSize - 1, headerSize, len(buf) - 1} {
		_, _, err := Decode(buf[:cut])
		if err == nil {
			t.Fatalf("truncated to %d bytes: Decode accepted", cut)
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("truncated to %d bytes: error %v is not a *FormatError", cut, err)
		}
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	buf, err := Encode(testJobs(3), testMeta())
	if err != nil {
		t.Fatal(err)
	}
	// Patch the version and re-seal the header CRC so only the version gate
	// can object.
	buf[8] = 2
	reseal := crcOf(buf[:92])
	buf[92], buf[93], buf[94], buf[95] = byte(reseal), byte(reseal>>8), byte(reseal>>16), byte(reseal>>24)
	_, _, err = Decode(buf)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestFormatErrorOffsets(t *testing.T) {
	_, _, err := Decode([]byte("not a cache"))
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FormatError, got %v", err)
	}
	if fe.Offset != 11 {
		t.Fatalf("truncation offset: got %d, want 11", fe.Offset)
	}
}

// writeTestSWF emits a small SWF trace and returns its path.
func writeTestSWF(t *testing.T, dir string) string {
	t.Helper()
	var b strings.Builder
	tr := swf.FromJobs(testJobs(40), swf.Header{Version: 2, MaxNodes: 128, UnixStartTime: 878606400})
	if err := swf.Write(&b, tr); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "test.swf")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEnsureBuildsThenReuses(t *testing.T) {
	dir := t.TempDir()
	swfPath := writeTestSWF(t, dir)
	cacheDir := filepath.Join(dir, "cache")

	streamed, _, hit, err := Ensure("", swfPath, swf.ConvertOptions{}, [32]byte{})
	if err != nil || hit {
		t.Fatalf("streamed Ensure: hit=%v err=%v", hit, err)
	}

	cold, coldMeta, hit, err := Ensure(cacheDir, swfPath, swf.ConvertOptions{}, [32]byte{})
	if err != nil {
		t.Fatalf("cold Ensure: %v", err)
	}
	if hit {
		t.Fatal("cold Ensure reported a cache hit")
	}
	assertJobsEqual(t, cold, streamed)

	warm, warmMeta, hit, err := Ensure(cacheDir, swfPath, swf.ConvertOptions{}, [32]byte{})
	if err != nil {
		t.Fatalf("warm Ensure: %v", err)
	}
	if !hit {
		t.Fatal("warm Ensure missed the cache")
	}
	if warmMeta != coldMeta {
		t.Fatalf("meta drift: cold %+v, warm %+v", coldMeta, warmMeta)
	}
	assertJobsEqual(t, warm, streamed)

	// Checksum pin: the real sum passes, a wrong pin fails loudly.
	if _, _, _, err := Ensure(cacheDir, swfPath, swf.ConvertOptions{}, coldMeta.SourceSHA256); err != nil {
		t.Fatalf("pinned Ensure with matching sum: %v", err)
	}
	var bad [32]byte
	bad[0] = 0xff
	if _, _, _, err := Ensure(cacheDir, swfPath, swf.ConvertOptions{}, bad); err == nil {
		t.Fatal("pinned Ensure with wrong sum succeeded")
	}
}

func TestEnsureRebuildsOnSourceChange(t *testing.T) {
	dir := t.TempDir()
	swfPath := writeTestSWF(t, dir)
	cacheDir := filepath.Join(dir, "cache")
	if _, _, _, err := Ensure(cacheDir, swfPath, swf.ConvertOptions{}, [32]byte{}); err != nil {
		t.Fatal(err)
	}

	// Append one record: the cache's stored checksum no longer matches the
	// file, so a pinned Ensure against the new sum must rebuild, not reuse.
	f, err := os.OpenFile(swfPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "999 5000 0 100 4 -1 -1 4 200 -1 1 42 1 -1 -1 -1 -1 -1")
	f.Close()

	fresh, meta, err := BuildFromSWF(swfPath, swf.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, hit, err := Ensure(cacheDir, swfPath, swf.ConvertOptions{}, meta.SourceSHA256)
	if err != nil {
		t.Fatalf("Ensure after source change: %v", err)
	}
	if hit {
		t.Fatal("Ensure reused a cache whose source bytes changed")
	}
	assertJobsEqual(t, got, fresh)

	// And the rebuilt cache now serves warm.
	_, _, hit, err = Ensure(cacheDir, swfPath, swf.ConvertOptions{}, meta.SourceSHA256)
	if err != nil || !hit {
		t.Fatalf("rebuilt cache not reused: hit=%v err=%v", hit, err)
	}
}

func TestEnsureRejectsDifferentOptions(t *testing.T) {
	dir := t.TempDir()
	swfPath := writeTestSWF(t, dir)
	cacheDir := filepath.Join(dir, "cache")
	if _, _, _, err := Ensure(cacheDir, swfPath, swf.ConvertOptions{}, [32]byte{}); err != nil {
		t.Fatal(err)
	}
	_, _, hit, err := Ensure(cacheDir, swfPath, swf.ConvertOptions{KeepCancelled: true}, [32]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("Ensure reused a cache built under different ConvertOptions")
	}
	// One cache file per trace: the rebuild overwrote the old-options image,
	// so the new options now serve warm (and the old ones would go cold).
	_, _, hit, err = Ensure(cacheDir, swfPath, swf.ConvertOptions{KeepCancelled: true}, [32]byte{})
	if err != nil || !hit {
		t.Fatalf("rebuilt cache not reused: hit=%v err=%v", hit, err)
	}
}

func TestEnsureRecoversFromCorruptCache(t *testing.T) {
	dir := t.TempDir()
	swfPath := writeTestSWF(t, dir)
	cacheDir := filepath.Join(dir, "cache")
	streamed, _, _, err := Ensure(cacheDir, swfPath, swf.ConvertOptions{}, [32]byte{})
	if err != nil {
		t.Fatal(err)
	}
	cp := CachePath(cacheDir, swfPath)
	data, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(cp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, hit, err := Ensure(cacheDir, swfPath, swf.ConvertOptions{}, [32]byte{})
	if err != nil {
		t.Fatalf("Ensure over corrupt cache: %v", err)
	}
	if hit {
		t.Fatal("Ensure trusted a corrupt cache")
	}
	assertJobsEqual(t, got, streamed)
}

// TestWarmLoadAllocations is the acceptance bar: a warm cache load must
// allocate at least 5× fewer times than the streaming SWF parse of the same
// trace (ISSUE 8). The measured ratio on the 40-job test trace is ~10–100×;
// real traces (tens of thousands of jobs, one alloc per line and per field
// slice when streaming) widen it further.
func TestWarmLoadAllocations(t *testing.T) {
	dir := t.TempDir()
	swfPath := writeTestSWF(t, dir)
	cp := filepath.Join(dir, "cache", "test.fstc")
	jobs, meta, err := BuildFromSWF(swfPath, swf.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(cp, jobs, meta); err != nil {
		t.Fatal(err)
	}

	streamAllocs := testing.AllocsPerRun(20, func() {
		if _, _, err := BuildFromSWF(swfPath, swf.ConvertOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	warmAllocs := testing.AllocsPerRun(20, func() {
		if _, _, err := ReadFile(cp); err != nil {
			t.Fatal(err)
		}
	})
	if warmAllocs*5 > streamAllocs {
		t.Fatalf("warm load allocates %.0f, streaming %.0f: want >= 5x reduction", warmAllocs, streamAllocs)
	}
	t.Logf("allocations: streaming %.0f, warm %.0f (%.1fx fewer)",
		streamAllocs, warmAllocs, streamAllocs/warmAllocs)
}

// crcOf re-seals a header region for test patching.
func crcOf(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}
