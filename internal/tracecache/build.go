package tracecache

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"fairsched/internal/job"
	"fairsched/internal/swf"
)

// BuildFromSWF streams an SWF file through swf.Scanner/Convert — the exact
// pipeline scenario.TraceFileWith runs — and returns the converted jobs
// (trace order) plus the Meta identifying this build: the SHA-256 of the
// raw bytes (hashed while scanning, one pass) and the options fingerprint.
func BuildFromSWF(path string, opts swf.ConvertOptions) ([]*job.Job, Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("tracecache: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	sc := swf.NewScanner(io.TeeReader(f, h))
	var jobs []*job.Job
	for sc.Scan() {
		if j, ok := swf.Convert(sc.Record(), opts); ok {
			jobs = append(jobs, j)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, Meta{}, fmt.Errorf("tracecache: %s: %w", path, err)
	}
	swf.SortJobs(jobs)
	hdr := sc.Header()
	size := hdr.MaxNodes
	if size <= 0 {
		size = hdr.MaxProcs
	}
	meta := Meta{
		Fingerprint:   OptionsFingerprint(opts),
		SystemSize:    size,
		UnixStartTime: hdr.UnixStartTime,
	}
	h.Sum(meta.SourceSHA256[:0])
	return jobs, meta, nil
}

// WriteFile encodes jobs+meta and writes the image atomically (temp file in
// the same directory, then rename), so a concurrent or crashed writer never
// leaves a torn cache — readers see either the old file or the new one.
func WriteFile(path string, jobs []*job.Job, meta Meta) error {
	buf, err := Encode(jobs, meta)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("tracecache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tracecache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tracecache: %w", err)
	}
	return nil
}

// ReadFile loads and decodes a cache file.
func ReadFile(path string) ([]*job.Job, Meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("tracecache: %w", err)
	}
	jobs, meta, err := Decode(data)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("%s: %w", path, err)
	}
	return jobs, meta, nil
}

// Stats counts cache outcomes across a process, so campaign drivers can
// report (and CI can assert) that the second run reused every cache file.
// Counters are atomic: Ensure is called from parallel campaign workers.
type Stats struct {
	Built  atomic.Int64 // caches (re)built from SWF
	Reused atomic.Int64 // caches loaded warm
}

func (s *Stats) String() string {
	return fmt.Sprintf("tracecache: %d built, %d reused", s.Built.Load(), s.Reused.Load())
}

// DefaultStats tallies every Ensure call in the process.
var DefaultStats Stats

// CachePath maps a trace file to its cache file inside cacheDir. The name
// keys on the trace's base name plus a short hash of its absolute path, so
// distinct traces sharing a base name get distinct cache files.
func CachePath(cacheDir, tracePath string) string {
	abs, err := filepath.Abs(tracePath)
	if err != nil {
		abs = tracePath
	}
	sum := sha256.Sum256([]byte(abs))
	return filepath.Join(cacheDir, fmt.Sprintf("%s-%x.fstc", filepath.Base(tracePath), sum[:6]))
}

// Ensure returns the converted jobs for an SWF trace, loading the binary
// cache when a valid one exists and (re)building it otherwise. A cache is
// valid when its header decodes, its version matches, its options
// fingerprint matches opts, and its source checksum matches expectedSum
// (pass a zero sum to skip the pin — the cache is then trusted on
// fingerprint alone, the right default when no manifest checksum is
// declared). Stale or corrupt caches are rebuilt in place, never trusted.
// hit reports whether the load was served warm from cache.
//
// cacheDir == "" disables caching entirely: the trace is streamed and
// nothing is written, which is the reference path cache-equivalence tests
// diff against.
func Ensure(cacheDir, tracePath string, opts swf.ConvertOptions, expectedSum [32]byte) (jobs []*job.Job, meta Meta, hit bool, err error) {
	if cacheDir == "" {
		jobs, meta, err = BuildFromSWF(tracePath, opts)
		return jobs, meta, false, err
	}
	cp := CachePath(cacheDir, tracePath)
	if data, rerr := os.ReadFile(cp); rerr == nil {
		if jobs, meta, derr := Decode(data); derr == nil &&
			meta.Fingerprint == OptionsFingerprint(opts) &&
			(expectedSum == [32]byte{} || meta.SourceSHA256 == expectedSum) {
			DefaultStats.Reused.Add(1)
			return jobs, meta, true, nil
		}
		// Invalid for this request (corrupt, old version, different options,
		// or different source bytes): fall through and rebuild over it.
	}
	jobs, meta, err = BuildFromSWF(tracePath, opts)
	if err != nil {
		return nil, Meta{}, false, err
	}
	if expectedSum != [32]byte{} && meta.SourceSHA256 != expectedSum {
		return nil, Meta{}, false, fmt.Errorf("tracecache: %s: checksum mismatch: file is sha256:%x, manifest pins sha256:%x",
			tracePath, meta.SourceSHA256, expectedSum)
	}
	if err := WriteFile(cp, jobs, meta); err != nil {
		return nil, Meta{}, false, err
	}
	DefaultStats.Built.Add(1)
	return jobs, meta, false, nil
}
