package tracecache

import (
	"bytes"
	"strings"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/swf"
)

// FuzzTraceCacheRoundTrip drives arbitrary bytes through the same pipeline
// the campaign uses — SWF text → Scanner/Convert → cache encode → decode —
// and requires job-for-job agreement, then flips one byte of the encoded
// image and requires rejection. Decode also runs directly on the raw fuzz
// bytes: a hostile cache file may error, but must never panic or
// mis-decode.
func FuzzTraceCacheRoundTrip(f *testing.F) {
	f.Add([]byte("; MaxNodes: 64\n1 0 0 100 4 -1 -1 4 200 -1 1 7 1 -1 -1 -1 -1 -1\n"), uint32(3))
	f.Add([]byte("1 10 0 50 2 -1 -1 -1 -1 -1 5 9 2 -1 -1 -1 -1 -1\n2 5 0 1 1 -1 -1 1 1 -1 1 -3 1 -1 -1 -1 -1 -1\n"), uint32(90))
	f.Add([]byte("garbage\n"), uint32(0))
	valid, _ := Encode([]*job.Job{{ID: 1, User: 4, Runtime: 9, Estimate: 9, Nodes: 2}}, Meta{})
	f.Add(valid, uint32(17))
	f.Fuzz(func(t *testing.T, data []byte, flip uint32) {
		// A hostile cache image must never panic the decoder.
		if jobs, _, err := Decode(data); err == nil {
			// Decodable fuzz input: it must re-encode to a self-consistent
			// image (same jobs back).
			if reenc, err := Encode(jobs, Meta{}); err == nil {
				again, _, err := Decode(reenc)
				if err != nil {
					t.Fatalf("re-encode of decoded image fails to decode: %v", err)
				}
				if len(again) != len(jobs) {
					t.Fatalf("re-encode changed job count: %d != %d", len(again), len(jobs))
				}
			}
		}

		// Treat the input as SWF text and round-trip the converted jobs.
		sc := swf.NewScanner(bytes.NewReader(data))
		var jobs []*job.Job
		for sc.Scan() {
			if j, ok := swf.Convert(sc.Record(), swf.ConvertOptions{}); ok {
				jobs = append(jobs, j)
			}
		}
		if sc.Err() != nil {
			return // malformed SWF: nothing to cache
		}
		swf.SortJobs(jobs)
		meta := testMeta()
		enc, err := Encode(jobs, meta)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		dec, decMeta, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode of fresh encode: %v", err)
		}
		if decMeta != meta {
			t.Fatalf("meta round-trip: got %+v, want %+v", decMeta, meta)
		}
		if len(dec) != len(jobs) {
			t.Fatalf("job count: got %d, want %d", len(dec), len(jobs))
		}
		for i := range jobs {
			if *dec[i] != *jobs[i] {
				t.Fatalf("job %d: got %+v, want %+v", i, *dec[i], *jobs[i])
			}
		}

		// Corruption gate: any single-byte flip is rejected, and truncation
		// at any point is rejected (never mis-decoded).
		mut := bytes.Clone(enc)
		pos := int(flip) % len(mut)
		mut[pos] ^= 1 << (flip % 8)
		if _, _, err := Decode(mut); err == nil {
			t.Fatalf("flip at %d accepted", pos)
		}
		if _, _, err := Decode(enc[:pos]); err == nil {
			t.Fatalf("truncation to %d accepted", pos)
		} else if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("truncation error lacks position: %v", err)
		}
	})
}
