package tracecache

import (
	"errors"
	"strings"
	"testing"
)

const sampleManifest = `
# Parallel Workloads Archive slice used by the cross-trace campaigns.
[trace.KTH-SP2]
path = "traces/kth-sp2.swf"
url = "https://example.org/kth"          # provenance only
sha256 = "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08"
max-nodes = 100
epoch = 843264000

[trace.SDSC-Par]
path = traces/sdsc-par.swf
unix-start-time = 788914800
keep-cancelled = true

[trace.CTC-SP2]
path = "traces/ctc # not a comment.swf"
`

func TestParseManifest(t *testing.T) {
	m, err := ParseManifest(strings.NewReader(sampleManifest), "/data/traces.toml")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Names(); strings.Join(got, ",") != "KTH-SP2,SDSC-Par,CTC-SP2" {
		t.Fatalf("names: %v", got)
	}
	kth, ok := m.Entry("KTH-SP2")
	if !ok {
		t.Fatal("KTH-SP2 missing")
	}
	if kth.Path != "traces/kth-sp2.swf" || kth.URL != "https://example.org/kth" ||
		kth.MaxNodes != 100 || kth.Epoch != 843264000 || kth.KeepCancelled {
		t.Fatalf("KTH entry: %+v", kth)
	}
	if kth.SHA256[0] != 0x9f || kth.SHA256[31] != 0x08 {
		t.Fatalf("KTH sha256: %x", kth.SHA256)
	}
	if got := m.ResolvePath(kth); got != "/data/traces/kth-sp2.swf" {
		t.Fatalf("ResolvePath: %q", got)
	}
	sdsc, _ := m.Entry("SDSC-Par")
	if sdsc.UnixStartTime != 788914800 || !sdsc.KeepCancelled || sdsc.SHA256 != [32]byte{} {
		t.Fatalf("SDSC entry: %+v", sdsc)
	}
	ctc, _ := m.Entry("CTC-SP2")
	if ctc.Path != "traces/ctc # not a comment.swf" {
		t.Fatalf("quoted # was treated as a comment: %q", ctc.Path)
	}
}

func TestManifestSelect(t *testing.T) {
	m, err := ParseManifest(strings.NewReader(sampleManifest), "")
	if err != nil {
		t.Fatal(err)
	}
	all, err := m.Select(nil)
	if err != nil || len(all) != 3 {
		t.Fatalf("Select(nil): %d entries, err %v", len(all), err)
	}
	some, err := m.Select([]string{"CTC-SP2", "KTH-SP2"})
	if err != nil || len(some) != 2 || some[0].Name != "CTC-SP2" || some[1].Name != "KTH-SP2" {
		t.Fatalf("Select order: %+v, err %v", some, err)
	}
	if _, err := m.Select([]string{"nope"}); err == nil || !strings.Contains(err.Error(), "have CTC-SP2") {
		t.Fatalf("unknown select: %v", err)
	}
}

func TestParseManifestErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
		line           int
	}{
		{"key before section", `path = "x"`, "before any", 1},
		{"bad section", "[traces.X]\npath = \"x\"", "want [trace.NAME]", 1},
		{"unterminated section", "[trace.X\npath = \"x\"", "unterminated", 1},
		{"duplicate", "[trace.X]\npath = \"a\"\n[trace.X]\npath = \"b\"", "duplicate", 3},
		{"unknown key", "[trace.X]\nfoo = 1", "unknown key", 2},
		{"bad sha", "[trace.X]\nsha256 = \"zz\"", "64 hex digits", 2},
		{"bad bool", "[trace.X]\nkeep-cancelled = yes", "true or false", 2},
		{"bad int", "[trace.X]\nmax-nodes = many", "positive integer", 2},
		{"no equals", "[trace.X]\npath \"x\"", "key = value", 2},
		{"unterminated quote", "[trace.X]\npath = \"x", "unterminated quoted", 2},
		{"missing path", "[trace.X]\nepoch = 5", "missing path", 1},
		{"missing path points at its section", "[trace.A]\npath = \"a\"\n\n[trace.B]\nepoch = 5", `trace "B": missing path`, 4},
		{"url without path", "[trace.X]\nurl = \"https://example.org/t.swf\"", "url fetch not yet supported; provide path", 1},
		{"empty", "# nothing\n", "no [trace.NAME]", 0},
	}
	for _, tc := range cases {
		_, err := ParseManifest(strings.NewReader(tc.in), "t.toml")
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		var me *ManifestError
		if !errors.As(err, &me) {
			t.Errorf("%s: %v is not a *ManifestError", tc.name, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) || me.Line != tc.line {
			t.Errorf("%s: got line %d %q, want line %d containing %q",
				tc.name, me.Line, err, tc.line, tc.want)
		}
	}
}
