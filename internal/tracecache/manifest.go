package tracecache

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ManifestEntry declares one trace in a trace-set manifest: where its SWF
// file lives, how to verify and convert it, and the header overrides to
// apply when the file's own directives are absent or wrong.
type ManifestEntry struct {
	// Name is the campaign-facing trace name (the [trace.NAME] section).
	Name string
	// Path is the SWF file location, resolved relative to the manifest file.
	Path string
	// URL records provenance (where the trace was downloaded from). It is
	// documentation only — the loader never fetches.
	URL string
	// SHA256 pins the source bytes; zero means unpinned.
	SHA256 [32]byte
	// MaxNodes overrides the trace-declared system size when > 0.
	MaxNodes int
	// UnixStartTime overrides the trace-declared wall-clock origin when > 0.
	UnixStartTime int64
	// Epoch is the default fairshare epoch for campaigns over this trace
	// (0 = derive from the trace start time as usual).
	Epoch int64
	// KeepCancelled selects swf.ConvertOptions{KeepCancelled: true}.
	KeepCancelled bool
}

// Manifest is an ordered trace set: the campaign trace axis in file order.
type Manifest struct {
	// Path is the manifest file location ("" when parsed from a reader);
	// entry paths are resolved against its directory.
	Path    string
	Entries []ManifestEntry
}

// Entry returns the named entry.
func (m *Manifest) Entry(name string) (ManifestEntry, bool) {
	for _, e := range m.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return ManifestEntry{}, false
}

// ManifestError reports a malformed manifest with its line number.
type ManifestError struct {
	Path string
	Line int
	Err  error
}

func (e *ManifestError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("manifest: line %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("%s:%d: %v", e.Path, e.Line, e.Err)
}
func (e *ManifestError) Unwrap() error { return e.Err }

// ParseManifest reads a traces.toml-style manifest. The grammar is a small
// TOML subset, one section per trace:
//
//	[trace.KTH-SP2]
//	path = "traces/KTH-SP2-1996-2.1-cln.swf"   # relative to the manifest
//	url = "https://www.cs.huji.ac.il/labs/parallel/workload/l_kth_sp2/"
//	sha256 = "9f86d081884c7d65..."              # pins the source bytes
//	max-nodes = 100                             # header override
//	unix-start-time = 843314415                 # header override
//	epoch = 843264000                           # default fairshare epoch
//	keep-cancelled = true                       # conversion option
//
// Strings may be quoted or bare; `#` starts a comment; every error carries
// the offending line number. Entry names keep file order (the campaign
// trace axis) and must be unique.
func ParseManifest(r io.Reader, path string) (*Manifest, error) {
	m := &Manifest{Path: path}
	fail := func(line int, format string, args ...any) error {
		return &ManifestError{Path: path, Line: line, Err: fmt.Errorf(format, args...)}
	}
	var cur *ManifestEntry
	var sectionLines []int // Entries[i]'s [trace.NAME] line, for positional errors
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 && !insideQuotes(text, i) {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "[") {
			if !strings.HasSuffix(text, "]") {
				return nil, fail(line, "unterminated section header %q", text)
			}
			name, ok := strings.CutPrefix(strings.TrimSpace(text[1:len(text)-1]), "trace.")
			if !ok || name == "" {
				return nil, fail(line, "section %q: want [trace.NAME]", text)
			}
			if seen[name] {
				return nil, fail(line, "duplicate trace %q", name)
			}
			seen[name] = true
			sectionLines = append(sectionLines, line)
			m.Entries = append(m.Entries, ManifestEntry{Name: name})
			cur = &m.Entries[len(m.Entries)-1]
			continue
		}
		key, val, ok := strings.Cut(text, "=")
		if !ok {
			return nil, fail(line, "expected key = value, got %q", text)
		}
		if cur == nil {
			return nil, fail(line, "key %q before any [trace.NAME] section", strings.TrimSpace(key))
		}
		key = strings.TrimSpace(key)
		val, err := unquote(strings.TrimSpace(val))
		if err != nil {
			return nil, fail(line, "key %q: %v", key, err)
		}
		switch key {
		case "path":
			cur.Path = val
		case "url":
			cur.URL = val
		case "sha256":
			b, err := hex.DecodeString(val)
			if err != nil || len(b) != 32 {
				return nil, fail(line, "sha256 %q: want 64 hex digits", val)
			}
			copy(cur.SHA256[:], b)
		case "max-nodes":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return nil, fail(line, "max-nodes %q: want positive integer", val)
			}
			cur.MaxNodes = n
		case "unix-start-time":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return nil, fail(line, "unix-start-time %q: want positive integer", val)
			}
			cur.UnixStartTime = n
		case "epoch":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return nil, fail(line, "epoch %q: want positive integer", val)
			}
			cur.Epoch = n
		case "keep-cancelled":
			switch val {
			case "true":
				cur.KeepCancelled = true
			case "false":
				cur.KeepCancelled = false
			default:
				return nil, fail(line, "keep-cancelled %q: want true or false", val)
			}
		default:
			return nil, fail(line, "unknown key %q", key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fail(line+1, "%v", err)
	}
	for i, e := range m.Entries {
		if e.Path == "" {
			// An entry with only a url is a natural mistake — the url key is
			// provenance documentation, not a fetch instruction. Point at the
			// entry's section line either way.
			if e.URL != "" {
				return nil, fail(sectionLines[i], "trace %q: url fetch not yet supported; provide path", e.Name)
			}
			return nil, fail(sectionLines[i], "trace %q: missing path", e.Name)
		}
	}
	if len(m.Entries) == 0 {
		return nil, fail(0, "no [trace.NAME] sections")
	}
	return m, nil
}

// LoadManifest parses the manifest file at path.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	defer f.Close()
	return ParseManifest(f, path)
}

// ResolvePath returns an entry's SWF path resolved against the manifest's
// directory (entries with absolute paths pass through).
func (m *Manifest) ResolvePath(e ManifestEntry) string {
	if filepath.IsAbs(e.Path) || m.Path == "" {
		return e.Path
	}
	return filepath.Join(filepath.Dir(m.Path), e.Path)
}

// Names returns the entry names in manifest order.
func (m *Manifest) Names() []string {
	names := make([]string, len(m.Entries))
	for i, e := range m.Entries {
		names[i] = e.Name
	}
	return names
}

// Select returns the entries for the requested names, in request order; an
// empty request selects every entry in manifest order. Unknown names list
// the available ones.
func (m *Manifest) Select(names []string) ([]ManifestEntry, error) {
	if len(names) == 0 {
		return m.Entries, nil
	}
	out := make([]ManifestEntry, 0, len(names))
	for _, n := range names {
		e, ok := m.Entry(n)
		if !ok {
			avail := m.Names()
			sort.Strings(avail)
			return nil, fmt.Errorf("manifest: no trace %q (have %s)", n, strings.Join(avail, ", "))
		}
		out = append(out, e)
	}
	return out, nil
}

// insideQuotes reports whether byte position i of line falls inside a
// double-quoted string, so '#' inside a quoted value does not start a
// comment.
func insideQuotes(line string, i int) bool {
	in := false
	for _, c := range []byte(line[:i]) {
		if c == '"' {
			in = !in
		}
	}
	return in
}

// unquote strips optional double quotes from a value. Bare values must not
// contain quotes; quoted values take everything between the quotes verbatim
// (no escapes — trace paths and URLs never need them).
func unquote(s string) (string, error) {
	if strings.HasPrefix(s, "\"") {
		if len(s) < 2 || !strings.HasSuffix(s, "\"") {
			return "", fmt.Errorf("unterminated quoted value %s", s)
		}
		inner := s[1 : len(s)-1]
		if strings.Contains(inner, "\"") {
			return "", fmt.Errorf("stray quote in value %s", s)
		}
		return inner, nil
	}
	if strings.Contains(s, "\"") {
		return "", fmt.Errorf("stray quote in value %s", s)
	}
	if s == "" {
		return "", fmt.Errorf("empty value")
	}
	return s, nil
}
