// Package tracecache is the binary workload cache behind archive-scale
// campaigns: a compact, mmap-friendly columnar encoding of converted jobs
// that is written once from the streaming SWF scanner and thereafter loaded
// with near-zero allocation, so repeated campaign sweeps skip SWF text
// parsing entirely.
//
// # Format (version 1, all integers little-endian)
//
//	offset  size  field
//	     0     8  magic "FSTRCCH1"
//	     8     4  format version (1)
//	    12     4  reserved flags (0)
//	    16     8  ConvertOptions fingerprint
//	    24    32  SHA-256 of the source SWF bytes
//	    56     8  system size (trace MaxNodes, falling back to MaxProcs)
//	    64     8  trace UnixStartTime
//	    72     8  job count N
//	    80     4  user count U
//	    84     4  user-table blob length B
//	    88     4  CRC-32C of the body
//	    92     4  CRC-32C of the header bytes [0,92)
//	    96     -  body
//
// The body is fixed-width columns, each N entries — id, submit, runtime,
// estimate (int64), nodes, group (int32), user (uint32 index into the user
// table) — followed by the user table: U+1 uint32 offsets into a B-byte
// string blob. Users are stored as strings (today the decimal SWF user id)
// so the format survives traces or manifests that name users; the column
// itself stays a fixed-width index.
//
// Corrupted or truncated files are rejected with positional errors, never
// mis-decoded: the header CRC gates the header, the body CRC gates
// everything after it, and every count is bounds-checked against the actual
// byte length before any column is touched (DESIGN.md §14).
package tracecache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"

	"fairsched/internal/job"
	"fairsched/internal/swf"
)

// Version is the cache format version this package writes. Readers reject
// every other version: the format may only evolve by bumping it.
const Version = 1

var magic = [8]byte{'F', 'S', 'T', 'R', 'C', 'C', 'H', '1'}

const (
	headerSize = 96
	// bytesPerJob is the fixed per-job body cost: 4 int64 columns + 2 int32
	// columns + 1 uint32 column.
	bytesPerJob = 4*8 + 2*4 + 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta is the cache header's trace-level payload: the identity of the
// source bytes and conversion options the jobs were produced from, plus the
// trace directives a campaign needs to configure the simulator.
type Meta struct {
	// SourceSHA256 is the checksum of the raw SWF file the cache encodes.
	SourceSHA256 [32]byte
	// Fingerprint identifies the swf.ConvertOptions used (OptionsFingerprint);
	// a cache built under different conversion rules never matches.
	Fingerprint uint64
	// SystemSize is the trace-declared node count (MaxNodes, falling back to
	// MaxProcs; 0 when the header declares neither).
	SystemSize int
	// UnixStartTime is the trace's wall-clock origin (0 when unknown).
	UnixStartTime int64
}

// OptionsFingerprint hashes the conversion options into the header
// fingerprint. It is intentionally structural (one bit per option), so the
// fingerprint of given options is stable across releases; any new
// ConvertOptions field must be folded in here to invalidate stale caches.
func OptionsFingerprint(opts swf.ConvertOptions) uint64 {
	var fp uint64 = 0xf51c_0000_0000_0001 // version-1 conversion semantics
	if opts.KeepCancelled {
		fp |= 1 << 8
	}
	return fp
}

// FormatError reports a malformed cache file with the byte offset of the
// first problem.
type FormatError struct {
	Offset int64
	Err    error
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("tracecache: offset %d: %v", e.Offset, e.Err)
}
func (e *FormatError) Unwrap() error { return e.Err }

func errAt(off int64, format string, args ...any) error {
	return &FormatError{Offset: off, Err: fmt.Errorf(format, args...)}
}

// Encode serializes jobs and meta into a fresh cache image. Jobs must be in
// trace order (swf.SortJobs); Decode returns them in exactly this order, so
// the cached and streamed load paths are byte-identical downstream.
func Encode(jobs []*job.Job, meta Meta) ([]byte, error) {
	// User table: first-appearance order, one decimal string per distinct id.
	userIdx := make(map[int]uint32)
	var users []string
	var blobLen int
	col := make([]uint32, len(jobs))
	for i, j := range jobs {
		if j == nil {
			return nil, fmt.Errorf("tracecache: job %d is nil", i)
		}
		idx, ok := userIdx[j.User]
		if !ok {
			s := strconv.Itoa(j.User)
			idx = uint32(len(users))
			userIdx[j.User] = idx
			users = append(users, s)
			blobLen += len(s)
		}
		col[i] = idx
	}
	if len(users) > 1<<31 || blobLen > 1<<31 {
		return nil, fmt.Errorf("tracecache: user table too large (%d users, %d bytes)", len(users), blobLen)
	}

	bodyLen := len(jobs)*bytesPerJob + (len(users)+1)*4 + blobLen
	buf := make([]byte, headerSize+bodyLen)
	le := binary.LittleEndian

	body := buf[headerSize:]
	off := 0
	put64 := func(get func(*job.Job) int64) {
		for _, j := range jobs {
			le.PutUint64(body[off:], uint64(get(j)))
			off += 8
		}
	}
	put32 := func(get func(*job.Job) int32) {
		for _, j := range jobs {
			le.PutUint32(body[off:], uint32(get(j)))
			off += 4
		}
	}
	put64(func(j *job.Job) int64 { return int64(j.ID) })
	put64(func(j *job.Job) int64 { return j.Submit })
	put64(func(j *job.Job) int64 { return j.Runtime })
	put64(func(j *job.Job) int64 { return j.Estimate })
	put32(func(j *job.Job) int32 { return int32(j.Nodes) })
	put32(func(j *job.Job) int32 { return int32(j.Group) })
	for _, idx := range col {
		le.PutUint32(body[off:], idx)
		off += 4
	}
	var strOff uint32
	for _, s := range users {
		le.PutUint32(body[off:], strOff)
		off += 4
		strOff += uint32(len(s))
	}
	le.PutUint32(body[off:], strOff)
	off += 4
	for _, s := range users {
		off += copy(body[off:], s)
	}

	copy(buf[0:8], magic[:])
	le.PutUint32(buf[8:], Version)
	le.PutUint32(buf[12:], 0)
	le.PutUint64(buf[16:], meta.Fingerprint)
	copy(buf[24:56], meta.SourceSHA256[:])
	le.PutUint64(buf[56:], uint64(meta.SystemSize))
	le.PutUint64(buf[64:], uint64(meta.UnixStartTime))
	le.PutUint64(buf[72:], uint64(len(jobs)))
	le.PutUint32(buf[80:], uint32(len(users)))
	le.PutUint32(buf[84:], uint32(blobLen))
	le.PutUint32(buf[88:], crc32.Checksum(body, castagnoli))
	le.PutUint32(buf[92:], crc32.Checksum(buf[:92], castagnoli))
	return buf, nil
}

// DecodeMeta reads and verifies only the header (CRC-gated), without
// touching the body. Cache-validity probes use it to reject a stale or
// foreign cache before decoding columns.
func DecodeMeta(data []byte) (Meta, error) {
	if len(data) < headerSize {
		return Meta{}, errAt(int64(len(data)), "file truncated: %d bytes, header needs %d", len(data), headerSize)
	}
	if [8]byte(data[0:8]) != magic {
		return Meta{}, errAt(0, "bad magic %q (want %q)", data[0:8], magic[:])
	}
	le := binary.LittleEndian
	if got := crc32.Checksum(data[:92], castagnoli); got != le.Uint32(data[92:]) {
		return Meta{}, errAt(92, "header checksum mismatch (got %08x, stored %08x)", got, le.Uint32(data[92:]))
	}
	if v := le.Uint32(data[8:]); v != Version {
		return Meta{}, errAt(8, "unsupported format version %d (want %d)", v, Version)
	}
	var m Meta
	m.Fingerprint = le.Uint64(data[16:])
	copy(m.SourceSHA256[:], data[24:56])
	m.SystemSize = int(int64(le.Uint64(data[56:])))
	m.UnixStartTime = int64(le.Uint64(data[64:]))
	return m, nil
}

// Decode deserializes a cache image back into jobs (trace order) and its
// meta. The whole load allocates one backing array of job values, one
// pointer slice and the small user table — no per-record parsing — which is
// what makes cache-warm campaign sweeps cheap. Corruption anywhere is
// rejected with a positional error: the header and body CRCs cover every
// byte, and all counts are bounds-checked before use, so a hostile or
// truncated file can error but never mis-decode or panic.
func Decode(data []byte) ([]*job.Job, Meta, error) {
	meta, err := DecodeMeta(data)
	if err != nil {
		return nil, Meta{}, err
	}
	le := binary.LittleEndian
	n := le.Uint64(data[72:])
	users := uint64(le.Uint32(data[80:]))
	blobLen := uint64(le.Uint32(data[84:]))

	bodyLen := uint64(len(data) - headerSize)
	want := n*bytesPerJob + (users+1)*4 + blobLen
	// n is attacker-controlled until the body CRC is checked; the
	// multiplication cannot overflow because n is rejected first unless it
	// is consistent with the actual byte length.
	if n > bodyLen/bytesPerJob || want != bodyLen {
		return nil, Meta{}, errAt(72, "job count %d / user count %d inconsistent with body length %d", n, users, bodyLen)
	}
	body := data[headerSize:]
	if got := crc32.Checksum(body, castagnoli); got != le.Uint32(data[88:]) {
		return nil, Meta{}, errAt(88, "body checksum mismatch (got %08x, stored %08x)", got, le.Uint32(data[88:]))
	}

	// User table: offsets must be monotone and end exactly at the blob end.
	offTab := body[n*bytesPerJob : n*bytesPerJob+(users+1)*4]
	blob := body[n*bytesPerJob+(users+1)*4:]
	userIDs := make([]int, users)
	prev := uint32(0)
	for u := uint64(0); u < users; u++ {
		lo, hi := le.Uint32(offTab[u*4:]), le.Uint32(offTab[u*4+4:])
		if lo != prev || hi < lo || uint64(hi) > blobLen {
			return nil, Meta{}, errAt(int64(headerSize+n*bytesPerJob+u*4), "user table offsets not monotone")
		}
		prev = hi
		id, err := strconv.Atoi(string(blob[lo:hi]))
		if err != nil {
			return nil, Meta{}, errAt(int64(headerSize+n*bytesPerJob+(users+1)*4+uint64(lo)), "user %d: %q is not an integer id", u, blob[lo:hi])
		}
		userIDs[u] = id
	}
	if uint64(prev) != blobLen {
		return nil, Meta{}, errAt(int64(uint64(len(data))-blobLen), "user blob length %d, offsets cover %d", blobLen, prev)
	}

	backing := make([]job.Job, n)
	jobs := make([]*job.Job, n)
	ids := body[0:]
	submits := body[n*8:]
	runtimes := body[n*16:]
	estimates := body[n*24:]
	nodes := body[n*32:]
	groups := body[n*36:]
	userCol := body[n*40:]
	for i := uint64(0); i < n; i++ {
		u := le.Uint32(userCol[i*4:])
		if uint64(u) >= users {
			return nil, Meta{}, errAt(int64(headerSize+n*40+i*4), "job %d: user index %d out of range (%d users)", i, u, users)
		}
		j := &backing[i]
		j.ID = job.ID(le.Uint64(ids[i*8:]))
		j.Submit = int64(le.Uint64(submits[i*8:]))
		j.Runtime = int64(le.Uint64(runtimes[i*8:]))
		j.Estimate = int64(le.Uint64(estimates[i*8:]))
		j.Nodes = int(int32(le.Uint32(nodes[i*4:])))
		j.Group = int(int32(le.Uint32(groups[i*4:])))
		j.User = userIDs[u]
		jobs[i] = j
	}
	return jobs, meta, nil
}

// sha256Sum is a tiny named helper so build.go reads naturally.
func sha256Sum(data []byte) [32]byte { return sha256.Sum256(data) }
