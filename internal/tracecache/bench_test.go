package tracecache

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/swf"
)

// benchTrace writes a benchmark-scale SWF trace (benchJobs jobs, a realistic
// few-hundred-user population) and returns its path. Shared by the cold and
// warm load benchmarks so the two headline numbers measure the same bytes.
const benchJobs = 20000

func benchTrace(b *testing.B) string {
	b.Helper()
	dir := b.TempDir()
	rng := rand.New(rand.NewSource(42))
	jobs := make([]*job.Job, benchJobs)
	for i := range jobs {
		jobs[i] = &job.Job{
			ID:       job.ID(i + 1),
			User:     rng.Intn(640),
			Group:    rng.Intn(16),
			Submit:   int64(i * 30),
			Runtime:  int64(1 + rng.Intn(86400)),
			Estimate: int64(1 + rng.Intn(129600)),
			Nodes:    1 + rng.Intn(256),
		}
	}
	var sb strings.Builder
	tr := swf.FromJobs(jobs, swf.Header{Version: 2, MaxNodes: 1024, UnixStartTime: 878606400})
	if err := swf.Write(&sb, tr); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "bench.swf")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkCacheColdLoad measures the cache-cold path: stream-parse the SWF
// text, convert, and write the cache image. jobs/sec here is the price paid
// once per (trace, options) pair.
func BenchmarkCacheColdLoad(b *testing.B) {
	path := benchTrace(b)
	cacheDir := filepath.Join(b.TempDir(), "cache")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs, meta, err := BuildFromSWF(path, swf.ConvertOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := WriteFile(CachePath(cacheDir, path), jobs, meta); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchJobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkCacheWarmLoad measures the steady state every repeated campaign
// run sees: one file read plus the columnar decode. The jobs/sec ratio to
// BenchmarkCacheColdLoad is the headline speedup published in
// docs/PERFORMANCE.md.
func BenchmarkCacheWarmLoad(b *testing.B) {
	path := benchTrace(b)
	cacheDir := filepath.Join(b.TempDir(), "cache")
	if _, _, _, err := Ensure(cacheDir, path, swf.ConvertOptions{}, [32]byte{}); err != nil {
		b.Fatal(err)
	}
	cp := CachePath(cacheDir, path)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadFile(cp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchJobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}
