package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"fairsched/internal/job"
	"fairsched/internal/topology"
)

// PlaceClass is one band of a QueueTag or PartitionTag: a usage quantile,
// the default band, or a single explicitly-named user, routed to Dest (a
// queue path or partition name). The band semantics mirror SLOClass:
// quantile bands rank users by total processor-seconds ascending, the
// default band catches everyone above the bands, user overrides win last.
type PlaceClass struct {
	// Quantile, when in 1..100, covers the users whose processor-second
	// rank percentile is at or below it and above every smaller band.
	Quantile int
	// IsUser marks an explicit per-user override for User.
	IsUser bool
	// User is the overridden user id (meaningful only with IsUser).
	User int
	// Default catches every user no quantile band covers.
	Default bool
	// Dest is where the band's users route: a queue path for QueueTag, a
	// partition name for PartitionTag.
	Dest string
}

// name renders the class name used in the canonical transform name.
func (c PlaceClass) name() string {
	switch {
	case c.Quantile > 0:
		return fmt.Sprintf("p%d", c.Quantile)
	case c.Default:
		return "default"
	default:
		return fmt.Sprintf("user%d", c.User)
	}
}

// QueueTag deterministically routes the workload's users to queue-tree
// leaves (see package topology). Like SLOTag it is an identity transform
// on the jobs — the routing is a placement contract, contributed through
// the PlacementProvider interface and derived from the pipeline's final
// transformed workload, so usage quantiles reflect every other rewrite.
// With a topology configured the tagged queue decides the user's partition
// and scheduler; without one, queue tags still group per-queue report rows
// on the flat machine.
type QueueTag struct {
	Classes []PlaceClass
}

// Name implements Transform: the canonical queue= token (quantile bands
// ascending, then default, then user overrides ascending).
func (t QueueTag) Name() string { return "queue=" + canonicalPlaceValue(t.Classes) }

// Apply implements Transform: the workload passes through untouched.
func (t QueueTag) Apply(jobs []*job.Job, _ *rand.Rand) ([]*job.Job, error) {
	if err := validatePlaceClasses("queue", t.Classes, topology.ValidPath); err != nil {
		return nil, err
	}
	return jobs, nil
}

// ContributePlacement implements PlacementProvider.
func (t QueueTag) ContributePlacement(jobs []*job.Job, b *topology.PlacementBuilder) error {
	if err := validatePlaceClasses("queue", t.Classes, topology.ValidPath); err != nil {
		return err
	}
	forEachPlacedUser(t.Classes, jobs, b.SetQueue)
	return nil
}

// PartitionTag deterministically routes the workload's users to named
// partitions directly (the partition's first queue schedules them); a
// QueueTag in the same pipeline wins for users it covers, since queue tags
// imply a partition through the topology.
type PartitionTag struct {
	Classes []PlaceClass
}

// Name implements Transform: the canonical partition= token.
func (t PartitionTag) Name() string { return "partition=" + canonicalPlaceValue(t.Classes) }

// Apply implements Transform: the workload passes through untouched.
func (t PartitionTag) Apply(jobs []*job.Job, _ *rand.Rand) ([]*job.Job, error) {
	if err := validatePlaceClasses("partition", t.Classes, topology.ValidName); err != nil {
		return nil, err
	}
	return jobs, nil
}

// ContributePlacement implements PlacementProvider.
func (t PartitionTag) ContributePlacement(jobs []*job.Job, b *topology.PlacementBuilder) error {
	if err := validatePlaceClasses("partition", t.Classes, topology.ValidName); err != nil {
		return err
	}
	forEachPlacedUser(t.Classes, jobs, b.SetPartition)
	return nil
}

// orderedPlaceClasses returns classes in canonical order: quantile bands
// ascending, then the default band, then user overrides ascending.
func orderedPlaceClasses(classes []PlaceClass) []PlaceClass {
	out := append([]PlaceClass(nil), classes...)
	rank := func(c PlaceClass) (int, int) {
		switch {
		case c.Quantile > 0:
			return 0, c.Quantile
		case c.Default:
			return 1, 0
		default:
			return 2, c.User
		}
	}
	sort.SliceStable(out, func(i, k int) bool {
		gi, ki := rank(out[i])
		gk, kk := rank(out[k])
		if gi != gk {
			return gi < gk
		}
		return ki < kk
	})
	return out
}

func canonicalPlaceValue(classes []PlaceClass) string {
	ordered := orderedPlaceClasses(classes)
	parts := make([]string, len(ordered))
	for i, c := range ordered {
		parts[i] = c.name() + ":" + c.Dest
	}
	return strings.Join(parts, ",")
}

// validatePlaceClasses reports the first structural problem with a tag.
func validatePlaceClasses(kind string, classes []PlaceClass, validDest func(string) bool) error {
	if len(classes) == 0 {
		return fmt.Errorf("%s tag with no classes", kind)
	}
	seenDefault := false
	seenQ := make(map[int]bool)
	seenUser := make(map[int]bool)
	for _, c := range classes {
		switch {
		case c.Quantile < 0 || c.Quantile > 100:
			return fmt.Errorf("%s quantile p%d out of range (want 1..100)", kind, c.Quantile)
		case c.Quantile > 0:
			if c.Default || c.IsUser {
				return fmt.Errorf("%s band p%d also marked default or user", kind, c.Quantile)
			}
			if seenQ[c.Quantile] {
				return fmt.Errorf("%s band p%d declared twice", kind, c.Quantile)
			}
			seenQ[c.Quantile] = true
		case c.Default:
			if c.IsUser {
				return fmt.Errorf("%s default band also marked as a user override", kind)
			}
			if seenDefault {
				return fmt.Errorf("%s default band declared twice", kind)
			}
			seenDefault = true
		case c.IsUser:
			if c.User < 0 {
				return fmt.Errorf("%s user override with negative id %d", kind, c.User)
			}
			if seenUser[c.User] {
				return fmt.Errorf("%s user%d override declared twice", kind, c.User)
			}
			seenUser[c.User] = true
		default:
			return fmt.Errorf("%s class is neither a quantile band, default nor a user override (set Quantile, Default or IsUser)", kind)
		}
		if !validDest(c.Dest) {
			return fmt.Errorf("%s class %s: bad destination %q (want '/'-joined segments of letters, digits, '_' or '-')",
				kind, c.name(), c.Dest)
		}
	}
	return nil
}

// forEachPlacedUser applies the band semantics over the workload's users
// and calls set(user, dest) for every routed user, overrides last.
func forEachPlacedUser(classes []PlaceClass, jobs []*job.Job, set func(user int, dest string)) {
	ordered := orderedPlaceClasses(classes)
	usage := userProcSeconds(jobs)
	users := usersByUsage(usage, true)
	var quantiles []PlaceClass
	var def *PlaceClass
	for i, c := range ordered {
		if c.Quantile > 0 {
			quantiles = append(quantiles, c) // already ascending
		}
		if c.Default {
			def = &ordered[i]
		}
	}
	n := len(users)
	for rank, u := range users {
		pct := 100 * (rank + 1) / n
		tagged := false
		for _, c := range quantiles {
			if pct <= c.Quantile {
				set(u, c.Dest)
				tagged = true
				break
			}
		}
		if !tagged && def != nil {
			set(u, def.Dest)
		}
	}
	for _, c := range ordered {
		if c.IsUser {
			if _, present := usage[c.User]; present {
				set(c.User, c.Dest)
			}
		}
	}
}

// parsePlacement parses a queue= or partition= value: comma-separated
// class:destination entries.
//
//	queue=p50:org/light,default:org/heavy    lightest half to one leaf,
//	                                         everyone else to another
//	queue=user7:org/vip                      explicit per-user override
//	partition=p50:small,default:big          route users to partitions
func parsePlacement(kind, val string) (Transform, error) {
	if strings.TrimSpace(val) == "" {
		return nil, fmt.Errorf("%s=: empty spec (want e.g. p50:org/a,default:org/b)", kind)
	}
	var classes []PlaceClass
	for _, part := range strings.Split(val, ",") {
		part = strings.TrimSpace(part)
		name, dest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("%s entry %q: want class:destination", kind, part)
		}
		var c PlaceClass
		switch {
		case name == "default":
			c.Default = true
		case strings.HasPrefix(name, "user"):
			id, err := strconv.Atoi(name[len("user"):])
			if err != nil || id < 0 {
				return nil, fmt.Errorf("%s entry %q: bad user id", kind, part)
			}
			c.IsUser = true
			c.User = id
		case strings.HasPrefix(name, "p"):
			q, err := strconv.Atoi(name[1:])
			if err != nil || q < 1 || q > 100 {
				return nil, fmt.Errorf("%s entry %q: want p1..p100", kind, part)
			}
			c.Quantile = q
		default:
			return nil, fmt.Errorf("%s entry %q: class must be p<1..100>, default or user<id>", kind, part)
		}
		c.Dest = strings.TrimSpace(dest)
		classes = append(classes, c)
	}
	valid := topology.ValidPath
	if kind == "partition" {
		valid = topology.ValidName
	}
	if err := validatePlaceClasses(kind, classes, valid); err != nil {
		return nil, fmt.Errorf("%s=%s: %w", kind, val, err)
	}
	if kind == "partition" {
		return PartitionTag{Classes: classes}, nil
	}
	return QueueTag{Classes: classes}, nil
}
