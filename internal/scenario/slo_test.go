package scenario

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/slo"
)

// sloJobs builds a workload with a clear usage ladder: user 1 lightest,
// user 4 heaviest.
func sloJobs() []*job.Job {
	return []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 1},    // 100
		{ID: 2, User: 2, Submit: 10, Runtime: 100, Estimate: 100, Nodes: 10},  // 1000
		{ID: 3, User: 3, Submit: 20, Runtime: 1000, Estimate: 1000, Nodes: 1}, // 1000+100
		{ID: 4, User: 3, Submit: 30, Runtime: 100, Estimate: 100, Nodes: 1},
		{ID: 5, User: 4, Submit: 40, Runtime: 1000, Estimate: 1000, Nodes: 64}, // 64000
	}
}

func mustParseSLO(t *testing.T, val string) SLOTag {
	t.Helper()
	tr, err := parseSLO(val)
	if err != nil {
		t.Fatalf("parseSLO(%q): %v", val, err)
	}
	return tr.(SLOTag)
}

func assignFor(t *testing.T, spec string, jobs []*job.Job) *slo.Assignment {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Apply(jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := s.SLOAssignment(out)
	if err != nil {
		t.Fatal(err)
	}
	return asg
}

func TestSLOQuantileBands(t *testing.T) {
	// 4 users, percentiles 25/50/75/100 in usage order 1,2,3,4.
	asg := assignFor(t, "slo=p50:2h,p90:24h,default:96h", sloJobs())
	if asg.NumUsers() != 4 {
		t.Fatalf("tagged %d users, want 4", asg.NumUsers())
	}
	wantClass := map[int]string{1: "p50", 2: "p50", 3: "p90", 4: "default"}
	wantWait := map[string]int64{"p50": 2 * 3600, "p90": 24 * 3600, "default": 96 * 3600}
	for u, cls := range wantClass {
		ut, ok := asg.Lookup(u)
		if !ok || ut.Class != cls || ut.Target.Wait != wantWait[cls] {
			t.Errorf("user %d = %+v (ok=%v), want class %s", u, ut, ok, cls)
		}
	}
}

func TestSLONoDefaultLeavesHeavyUntagged(t *testing.T) {
	asg := assignFor(t, "slo=p50:2h", sloJobs())
	if asg.NumUsers() != 2 {
		t.Fatalf("tagged %d users, want 2", asg.NumUsers())
	}
	if _, ok := asg.Lookup(4); ok {
		t.Fatal("heaviest user tagged without a default band")
	}
}

func TestSLOUserOverrideWins(t *testing.T) {
	asg := assignFor(t, "slo=p50:2h,default:96h,user1:30m", sloJobs())
	ut, ok := asg.Lookup(1)
	if !ok || ut.Class != "user1" || ut.Target.Wait != 1800 {
		t.Fatalf("override lost: %+v", ut)
	}
	// Override for a user absent from the workload is skipped.
	asg2 := assignFor(t, "slo=default:96h,user999:30m", sloJobs())
	if _, ok := asg2.Lookup(999); ok {
		t.Fatal("absent user tagged")
	}
}

func TestSLOMergedTargetsAndBestEffort(t *testing.T) {
	asg := assignFor(t, "slo=p50:2h,p50:6x,default:none", sloJobs())
	ut, _ := asg.Lookup(1)
	if ut.Target.Wait != 7200 || ut.Target.Slowdown != 6 {
		t.Fatalf("merged band wrong: %+v", ut.Target)
	}
	// default:none tags nobody trackable: users 3 and 4 drop out.
	if asg.NumUsers() != 2 {
		t.Fatalf("tagged %d users, want 2 (best-effort default)", asg.NumUsers())
	}
}

func TestSLOAppliesAfterOtherTransforms(t *testing.T) {
	// The user filter reshapes the population; quantiles are computed on
	// the surviving users.
	asg := assignFor(t, "users=top2+slo=p50:2h,default:96h", sloJobs())
	if asg.NumUsers() != 2 {
		t.Fatalf("tagged %d users, want 2 after top2 filter", asg.NumUsers())
	}
	// Survivors are users 3 (lighter) and 4 (heavier): 3 -> p50, 4 -> default.
	if ut, _ := asg.Lookup(3); ut.Class != "p50" {
		t.Fatalf("user 3 class %q, want p50", ut.Class)
	}
	if ut, _ := asg.Lookup(4); ut.Class != "default" {
		t.Fatalf("user 4 class %q, want default", ut.Class)
	}
}

func TestSLOIdentityOnJobs(t *testing.T) {
	s, err := Parse("slo=p50:2h")
	if err != nil {
		t.Fatal(err)
	}
	in := sloJobs()
	out, err := s.Apply(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("slo transform changed the workload: %d -> %d jobs", len(in), len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("slo transform rewrote a job")
		}
	}
}

func TestSLONoProviderNoAssignment(t *testing.T) {
	s, err := Parse("load=1.5")
	if err != nil {
		t.Fatal(err)
	}
	asg, err := s.SLOAssignment(sloJobs())
	if err != nil || asg != nil {
		t.Fatalf("assignment without provider: %v, %v", asg, err)
	}
}

// Round-trip Canonical() coverage for every token form the slo grammar
// accepts: Name() must re-parse to a transform with the identical Name().
func TestSLOCanonicalRoundTrip(t *testing.T) {
	cases := []struct{ in, canonical string }{
		{"p50:2h,p90:24h", "slo=p50:2h,p90:1d"}, // exact day multiples canonicalize to d
		{"p90:24h,p50:2h", "slo=p50:2h,p90:1d"}, // bands sort ascending
		{"default:96h,p50:2h", "slo=p50:2h,default:4d"},
		{"p50:7200", "slo=p50:2h"},             // durations canonicalize
		{"p50:90", "slo=p50:90s"},              // bare seconds gain the unit
		{"p50:8x", "slo=p50:8x"},               // slowdown target
		{"p50:2.5x", "slo=p50:2.5x"},           // fractional slowdown
		{"p50:1000000x", "slo=p50:1000000x"},   // no exponent form ('+' would split the chain)
		{"p50:2h,p50:6x", "slo=p50:2h,p50:6x"}, // merged band: wait first
		{"p50:6x,p50:2h", "slo=p50:2h,p50:6x"},
		{"user7:30m,user3:1h", "slo=user3:1h,user7:30m"}, // users sort by id
		{"default:none,p50:2h", "slo=p50:2h,default:none"},
		{"user12:none", "slo=user12:none"},
		{"p100:1w", "slo=p100:1w"},
		{"p50:2h,p90:24h,default:96h,user7:30m,user7:6x",
			"slo=p50:2h,p90:1d,default:4d,user7:30m,user7:6x"},
	}
	for _, c := range cases {
		tr := mustParseSLO(t, c.in)
		if got := tr.Name(); got != c.canonical {
			t.Errorf("Name(%q) = %q, want %q", c.in, got, c.canonical)
			continue
		}
		re, err := ParseTransform(tr.Name())
		if err != nil {
			t.Errorf("canonical %q does not re-parse: %v", tr.Name(), err)
			continue
		}
		if re.Name() != tr.Name() {
			t.Errorf("canonical unstable: %q -> %q", tr.Name(), re.Name())
		}
	}
}

func TestSLOParseRejections(t *testing.T) {
	bad := []string{
		"",                // empty
		"p50",             // no target
		"p0:2h",           // quantile out of range
		"p101:2h",         // quantile out of range
		"px:2h",           // not a number
		"user-3:2h",       // negative user
		"gold:2h",         // unknown class form
		"p50:0.5x",        // slowdown below 1
		"p50:NaNx",        // non-finite slowdown
		"p50:Infx",        // non-finite slowdown
		"p50:+Infx",       // non-finite slowdown
		"p50:-2h",         // negative duration
		"p50:2h,p50:3h",   // duplicate wait target for one band
		"p50:4x,p50:5x",   // duplicate slowdown target
		"p50:none,p50:2h", // best-effort then a target
		"p50:2h,p50:none", // target then best-effort
		"default:2h,default:3h",
		"user5:1h,user5:2h",
		"p50:none,p50:none", // duplicate best-effort declaration
	}
	for _, in := range bad {
		if tr, err := parseSLO(in); err == nil {
			t.Errorf("parseSLO(%q) accepted: %v", in, tr.Name())
		}
	}
}

// A zero-value SLOClass (no discriminator set) must be rejected, not
// silently treated as a user-0 override.
func TestSLOZeroValueClassRejected(t *testing.T) {
	tag := SLOTag{Classes: []SLOClass{{Target: slo.Target{Wait: 3600}}}}
	if _, err := tag.Apply(sloJobs(), nil); err == nil {
		t.Fatal("zero-value class accepted by Apply")
	}
	if err := tag.ContributeSLO(sloJobs(), slo.NewBuilder()); err == nil {
		t.Fatal("zero-value class accepted by ContributeSLO")
	}
	// An explicit user-0 override stays expressible.
	asg := assignFor(t, "slo=default:96h,user0:30m", append(sloJobs(),
		&job.Job{ID: 9, User: 0, Submit: 0, Runtime: 10, Estimate: 10, Nodes: 1}))
	if ut, ok := asg.Lookup(0); !ok || ut.Class != "user0" || ut.Target.Wait != 1800 {
		t.Fatalf("user0 override lost: %+v (ok=%v)", ut, ok)
	}
}

func TestBuiltinSLOTiered(t *testing.T) {
	s, ok := Get("slo-tiered")
	if !ok {
		t.Fatal("slo-tiered not registered")
	}
	if !strings.Contains(s.Transforms[0].Name(), "slo=p50:2h,p90:1d,default:4d") {
		t.Fatalf("slo-tiered canonical = %q", s.Transforms[0].Name())
	}
	asg, err := s.SLOAssignment(sloJobs())
	if err != nil || asg == nil || asg.NumUsers() != 4 {
		t.Fatalf("slo-tiered assignment: %+v, %v", asg, err)
	}
}

// Assignments must be identical however the campaign parallelizes: pure
// function of (scenario, workload).
func TestSLOAssignmentDeterministic(t *testing.T) {
	a := assignFor(t, "slo-tiered", sloJobs())
	b := assignFor(t, "slo-tiered", sloJobs())
	ua, ub := a.Users(), b.Users()
	if len(ua) != len(ub) {
		t.Fatal("user count differs")
	}
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("user %d differs: %+v vs %+v", i, ua[i], ub[i])
		}
	}
}

// referenceQuantileAssign is the pre-selection band assignment: full sort of
// the users by (usage asc, id asc), percentile 100*k/n per 1-based rank k,
// smallest covering band wins. The selection-based ContributeSLO must
// reproduce its membership exactly.
func referenceQuantileAssign(usage map[int]int64, quantiles []int, hasDefault bool) map[int]string {
	users := usersByUsage(usage, true)
	n := len(users)
	out := make(map[int]string, n)
	for rank, u := range users {
		pct := 100 * (rank + 1) / n
		tagged := false
		for _, q := range quantiles {
			if pct <= q {
				out[u] = fmt.Sprintf("p%d", q)
				tagged = true
				break
			}
		}
		if !tagged && hasDefault {
			out[u] = "default"
		}
	}
	return out
}

// TestSLOSelectionMatchesSort pins the O(n) quickselect band assignment
// bit-identical to the full-sort reference over random populations: 30
// seeds x three contention shapes (mirroring the policy differential
// suites), random band sets, usage maps with deliberate ties.
func TestSLOSelectionMatchesSort(t *testing.T) {
	shapes := []struct {
		name  string
		users int
		tie   int64 // usage values are multiples of tie (ties across users)
	}{
		{"calm", 40, 1},
		{"contended", 500, 50}, // heavy ties: rank order falls to the id
		{"split", 2000, 1000},  // few distinct usage levels
	}
	bandSets := [][]int{{50}, {25, 75}, {10, 50, 90}, {1, 99}, {100}}
	for _, sh := range shapes {
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed*977 + int64(sh.users)))
			usage := make(map[int]int64, sh.users)
			for u := 0; u < sh.users; u++ {
				// Sparse, shuffled ids; values quantized to force ties.
				id := u*3 + rng.Intn(3)
				usage[id] = (1 + rng.Int63n(100)) * sh.tie
			}
			quantiles := bandSets[int(seed)%len(bandSets)]
			hasDefault := seed%2 == 0

			var tag SLOTag
			for _, q := range quantiles {
				tag.Classes = append(tag.Classes, SLOClass{Quantile: q, Target: slo.Target{Wait: 3600 * int64(q)}})
			}
			if hasDefault {
				tag.Classes = append(tag.Classes, SLOClass{Default: true, Target: slo.Target{Wait: 999 * 3600}})
			}
			var jobs []*job.Job
			id := job.ID(1)
			for u, ps := range usage {
				jobs = append(jobs, &job.Job{ID: id, User: u, Runtime: ps, Estimate: ps, Nodes: 1})
				id++
			}
			b := slo.NewBuilder()
			if err := tag.ContributeSLO(jobs, b); err != nil {
				t.Fatalf("%s seed %d: %v", sh.name, seed, err)
			}
			asg := b.Build()
			want := referenceQuantileAssign(usage, quantiles, hasDefault)
			got := make(map[int]string, len(want))
			if asg != nil {
				for _, ut := range asg.Users() {
					got[ut.User] = ut.Class
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s seed %d: tagged %d users, reference tagged %d", sh.name, seed, len(got), len(want))
			}
			for u, cls := range want {
				if got[u] != cls {
					t.Fatalf("%s seed %d: user %d in %q, reference says %q", sh.name, seed, u, got[u], cls)
				}
			}
		}
	}
}

func TestQuantileBoundary(t *testing.T) {
	// Pin the closed form against the percentile definition it encodes.
	for n := 0; n <= 137; n++ {
		for _, q := range []int{1, 10, 25, 50, 90, 99, 100} {
			want := 0
			for k := 1; k <= n; k++ {
				if 100*k/n <= q {
					want = k
				}
			}
			if got := quantileBoundary(q, n); got != want {
				t.Fatalf("quantileBoundary(%d, %d) = %d, want %d", q, n, got, want)
			}
		}
	}
}
