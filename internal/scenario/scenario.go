// Package scenario turns one trace into many workloads: composable,
// deterministic transformations (load scaling, time-window slicing, user
// filtering, burst injection, estimate perturbation) that a campaign sweeps
// alongside policies and seeds. The paper evaluates its nine policies on a
// single CPlant trace; the standard methodology in the related work —
// Dell'Amico et al. validating fairness claims across multiple archive
// traces, Berg et al. stressing policies across load regimes — demands a
// matrix of workload variants, and this package is that matrix's workload
// axis.
//
// A Scenario is a named pipeline of Transforms. Applying one is pure: the
// input jobs are never mutated (they may be shared read-only across sweep
// workers), every randomized choice draws from a rand.Rand seeded from the
// campaign seed, and the same (jobs, seed) always yields the same output.
package scenario

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"fairsched/internal/job"
	"fairsched/internal/slo"
	"fairsched/internal/topology"
)

// Transform is one deterministic workload rewrite. Implementations must not
// mutate the jobs they receive — a changed job must be a fresh Clone — and
// must draw all randomness from rng so a scenario replays identically under
// the same seed.
type Transform interface {
	// Name renders the transform with its parameters (e.g. "load=1.50"),
	// used in reports and error messages.
	Name() string
	// Apply rewrites the workload. The returned slice must be sorted by
	// submit time (then job id) and safe for the caller to retain.
	Apply(jobs []*job.Job, rng *rand.Rand) ([]*job.Job, error)
}

// Scenario is a named pipeline of transforms applied in order.
type Scenario struct {
	Name        string
	Description string
	Transforms  []Transform
}

// Baseline is the identity scenario: the trace as ingested.
func Baseline() Scenario {
	return Scenario{Name: "baseline", Description: "the trace as ingested, untransformed"}
}

// Apply runs the pipeline over jobs, deterministically under seed. The
// input slice and its jobs are never mutated; for an empty pipeline the
// input slice itself is returned.
func (s Scenario) Apply(jobs []*job.Job, seed int64) ([]*job.Job, error) {
	// Each scenario gets its own stream so "perturb" under scenario A and
	// scenario B draw unrelated sequences even at equal seeds.
	h := fnv.New64a()
	h.Write([]byte(s.Name))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	out := jobs
	for _, tr := range s.Transforms {
		var err error
		out, err = tr.Apply(out, rng)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %s: %w", s.Name, tr.Name(), err)
		}
	}
	return out, nil
}

// OriginShifter is implemented by transforms that move the workload's time
// origin (Window rebases submit times to its start). Campaigns add the
// total shift to a trace's UnixStartTime so wall-clock-aligned fairshare
// decay boundaries stay aligned after slicing.
type OriginShifter interface {
	// OriginShift returns how many seconds of original trace time the
	// transform's output origin sits after its input origin.
	OriginShift() int64
}

// OriginShift sums the origin shifts of the pipeline's transforms. Shifts
// downstream of a LoadScale are reported in the scaled timebase —
// wall-clock alignment under time rescaling is inherently approximate.
func (s Scenario) OriginShift() int64 {
	var total int64
	for _, tr := range s.Transforms {
		if os, ok := tr.(OriginShifter); ok {
			total += os.OriginShift()
		}
	}
	return total
}

// SLOProvider is implemented by transforms that contribute per-user SLO
// targets (SLOTag). Providers see the pipeline's final transformed
// workload — not their positional intermediate — so usage quantiles
// reflect every rewrite in the pipeline; only the relative order of
// multiple providers matters (later ones override earlier tags).
type SLOProvider interface {
	// ContributeSLO registers classes and tags users into b.
	ContributeSLO(jobs []*job.Job, b *slo.Builder) error
}

// SLOAssignment derives the scenario's per-user SLO assignment from the
// transformed workload (the output of Apply). It returns (nil, nil) when
// the pipeline has no SLO-providing transform, and is pure — safe to call
// concurrently from campaign workers sharing the scenario value.
func (s Scenario) SLOAssignment(jobs []*job.Job) (*slo.Assignment, error) {
	var b *slo.Builder
	for _, tr := range s.Transforms {
		p, ok := tr.(SLOProvider)
		if !ok {
			continue
		}
		if b == nil {
			b = slo.NewBuilder()
		}
		if err := p.ContributeSLO(jobs, b); err != nil {
			return nil, fmt.Errorf("scenario %s: %s: %w", s.Name, tr.Name(), err)
		}
	}
	if b == nil {
		return nil, nil
	}
	return b.Build(), nil
}

// PlacementProvider is implemented by transforms that route users to queue
// tree leaves or partitions (QueueTag, PartitionTag). Like SLOProvider,
// providers see the pipeline's final transformed workload, and later
// providers override earlier tags for the same user.
type PlacementProvider interface {
	// ContributePlacement tags users into b.
	ContributePlacement(jobs []*job.Job, b *topology.PlacementBuilder) error
}

// Placement derives the scenario's user placement from the transformed
// workload (the output of Apply). It returns (nil, nil) when the pipeline
// has no placement-providing transform, and is pure — safe to call
// concurrently from campaign workers sharing the scenario value.
func (s Scenario) Placement(jobs []*job.Job) (*topology.Placement, error) {
	var b *topology.PlacementBuilder
	for _, tr := range s.Transforms {
		p, ok := tr.(PlacementProvider)
		if !ok {
			continue
		}
		if b == nil {
			b = &topology.PlacementBuilder{}
		}
		if err := p.ContributePlacement(jobs, b); err != nil {
			return nil, fmt.Errorf("scenario %s: %s: %w", s.Name, tr.Name(), err)
		}
	}
	if b == nil {
		return nil, nil
	}
	return b.Build(), nil
}

// With returns a copy of the scenario with extra transforms appended (used
// by the CLI's -window flag to slice every scenario of a campaign).
func (s Scenario) With(extra ...Transform) Scenario {
	if len(extra) == 0 {
		return s
	}
	c := s
	c.Transforms = append(append([]Transform(nil), s.Transforms...), extra...)
	for _, tr := range extra {
		c.Name += "+" + tr.Name()
	}
	return c
}
