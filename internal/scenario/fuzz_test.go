package scenario

import (
	"strings"
	"testing"
)

// FuzzParseScenario asserts the scenario grammar's parse/render round
// trip: any transform chain the parser accepts must render transform names
// that re-parse, and the re-parse must be stable (idempotent — a second
// render is byte-identical to the first). Lossless round-tripping is
// pinned separately per token family (TestSLOCanonicalRoundTrip for slo=;
// burst= intentionally renders only its defining parameters). Run in CI as
// a smoke step; `go test -fuzz FuzzParseScenario ./internal/scenario` digs
// deeper.
func FuzzParseScenario(f *testing.F) {
	for _, name := range Names() {
		f.Add(name)
	}
	f.Add("load=1.5+perturb=3")
	f.Add("window=1d..8d")
	f.Add("window=90..")
	f.Add("users=top8")
	f.Add("users=3.7.11")
	f.Add("burst=at:7d.jobs:200.nodes:8.runtime:1h.spread:1h.est:2h.user:42")
	f.Add("slo=p50:2h,p90:24h")
	f.Add("slo=p50:2h,p90:1d,default:4d,user7:30m,user7:6x")
	f.Add("slo=p50:8x")
	f.Add("slo=p50:2.5x")
	f.Add("slo=p50:1000000x")
	f.Add("slo=p50:NaNx")
	f.Add("slo=p50:Infx")
	f.Add("slo=default:none")
	f.Add("slo=user12:none")
	f.Add("slo=p100:1w,p1:1s")
	f.Add("load=1.5+slo=p50:2h+window=0..4w")
	f.Add("users=top4+slo=p50:2h,default:96h")
	f.Add("pop=")
	f.Add("pop=users:100k,jobs:25k")
	f.Add("pop=users:1m,cohorts:8,churn:0.5,zipf:1.7")
	f.Add("pop=weeks:2,alpha:1.05,diurnal:1,weekly:0,maxnodes:128")
	f.Add("pop=users:0")
	f.Add("pop=zipf:NaN")
	f.Add("pop=users:100k+load=1.5")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		for _, tr := range s.Transforms {
			name := tr.Name()
			re, err := ParseTransform(name)
			if err != nil {
				t.Fatalf("transform name %q (from %q) does not re-parse: %v", name, in, err)
			}
			if re.Name() != name {
				t.Fatalf("transform render unstable: %q -> %q (from %q)", name, re.Name(), in)
			}
		}
		// The rejoined chain must itself parse (chains compose).
		if len(s.Transforms) > 0 {
			parts := make([]string, len(s.Transforms))
			for i, tr := range s.Transforms {
				parts[i] = tr.Name()
			}
			if _, err := Parse(strings.Join(parts, "+")); err != nil {
				t.Fatalf("rejoined chain of %q does not parse: %v", in, err)
			}
		}
	})
}

// FuzzParsePop asserts the pop= axis's stronger contract: the canonical
// Name is fully explicit, so for any accepted value the render is LOSSLESS —
// re-parsing it reproduces the identical Pop, and every accepted Pop passes
// the range validation that keeps it generatable.
func FuzzParsePop(f *testing.F) {
	f.Add("")
	f.Add("users:100k,jobs:25k")
	f.Add("users:1m,cohorts:8,churn:0.5,zipf:1.7,alpha:1.1")
	f.Add("weeks:2,diurnal:1,weekly:0,maxnodes:128")
	f.Add("users:8000001")
	f.Add("churn:-1")
	f.Add("zipf:NaN")
	f.Add("alpha:Inf")
	f.Add("users:1k,users:2k") // last key wins
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParsePop(in)
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		name := p.Name()
		val, ok := strings.CutPrefix(name, "pop=")
		if !ok {
			t.Fatalf("Pop name %q (from %q) lost its pop= prefix", name, in)
		}
		re, err := ParsePop(val)
		if err != nil {
			t.Fatalf("canonical value %q (from %q) does not re-parse: %v", val, in, err)
		}
		if re != p {
			t.Fatalf("lossy render: %q parsed %+v, re-parsed %+v", in, p, re)
		}
		if tr, err := ParseTransform(name); err != nil {
			t.Fatalf("name %q does not parse as a transform: %v", name, err)
		} else if tr.Name() != name {
			t.Fatalf("transform render unstable: %q -> %q", name, tr.Name())
		}
	})
}
