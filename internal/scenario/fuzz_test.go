package scenario

import (
	"strings"
	"testing"
)

// FuzzParseScenario asserts the scenario grammar's parse/render round
// trip: any transform chain the parser accepts must render transform names
// that re-parse, and the re-parse must be stable (idempotent — a second
// render is byte-identical to the first). Lossless round-tripping is
// pinned separately per token family (TestSLOCanonicalRoundTrip for slo=;
// burst= intentionally renders only its defining parameters). Run in CI as
// a smoke step; `go test -fuzz FuzzParseScenario ./internal/scenario` digs
// deeper.
func FuzzParseScenario(f *testing.F) {
	for _, name := range Names() {
		f.Add(name)
	}
	f.Add("load=1.5+perturb=3")
	f.Add("window=1d..8d")
	f.Add("window=90..")
	f.Add("users=top8")
	f.Add("users=3.7.11")
	f.Add("burst=at:7d.jobs:200.nodes:8.runtime:1h.spread:1h.est:2h.user:42")
	f.Add("slo=p50:2h,p90:24h")
	f.Add("slo=p50:2h,p90:1d,default:4d,user7:30m,user7:6x")
	f.Add("slo=p50:8x")
	f.Add("slo=p50:2.5x")
	f.Add("slo=p50:1000000x")
	f.Add("slo=p50:NaNx")
	f.Add("slo=p50:Infx")
	f.Add("slo=default:none")
	f.Add("slo=user12:none")
	f.Add("slo=p100:1w,p1:1s")
	f.Add("load=1.5+slo=p50:2h+window=0..4w")
	f.Add("users=top4+slo=p50:2h,default:96h")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		for _, tr := range s.Transforms {
			name := tr.Name()
			re, err := ParseTransform(name)
			if err != nil {
				t.Fatalf("transform name %q (from %q) does not re-parse: %v", name, in, err)
			}
			if re.Name() != name {
				t.Fatalf("transform render unstable: %q -> %q (from %q)", name, re.Name(), in)
			}
		}
		// The rejoined chain must itself parse (chains compose).
		if len(s.Transforms) > 0 {
			parts := make([]string, len(s.Transforms))
			for i, tr := range s.Transforms {
				parts[i] = tr.Name()
			}
			if _, err := Parse(strings.Join(parts, "+")); err != nil {
				t.Fatalf("rejoined chain of %q does not parse: %v", in, err)
			}
		}
	})
}
