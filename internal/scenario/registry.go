package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"fairsched/internal/slo"
)

// Builtins are the named scenarios every campaign can reference directly;
// Parse also accepts ad-hoc transform chains (see its grammar).
func Builtins() []Scenario {
	return []Scenario{
		Baseline(),
		{
			Name:        "load-scaled",
			Description: "arrivals compressed 1.2x (20% higher offered load)",
			Transforms:  []Transform{LoadScale{Factor: 1.2}},
		},
		{
			Name:        "load-relaxed",
			Description: "arrivals dilated to 80% of the original offered load",
			Transforms:  []Transform{LoadScale{Factor: 0.8}},
		},
		{
			Name:        "window-sliced",
			Description: "first four weeks of the trace only",
			Transforms:  []Transform{Window{Start: 0, End: 4 * weekSeconds}},
		},
		{
			Name:        "estimate-perturbed",
			Description: "wall-clock limits redrawn from the f-model with f=3",
			Transforms:  []Transform{PerturbEstimates{F: 3}},
		},
		{
			Name:        "heavy-users",
			Description: "only the eight heaviest users by processor-seconds",
			Transforms:  []Transform{UserFilter{Top: 8}},
		},
		{
			Name:        "burst",
			Description: "200 8-node 1-hour jobs from a new user burst in over hour one of day 7",
			Transforms: []Transform{BurstInject{
				At: 7 * daySeconds, Count: 200, Nodes: 8,
				Runtime: 3600, Spread: 3600, User: -1,
			}},
		},
		{
			Name:        "population-100k",
			Description: "generated population: 100k users in 4 cohorts, 25k jobs over 4 weeks",
			Transforms:  []Transform{sizedPop(100_000, 25_000)},
		},
		{
			Name:        "population-1m",
			Description: "generated population: 1m users in 4 cohorts, 50k jobs over 4 weeks",
			Transforms:  []Transform{sizedPop(1_000_000, 50_000)},
		},
		{
			Name:        "slo-tiered",
			Description: "per-user wait SLOs: lightest half 2h, next 40% 24h, heaviest 10% 96h",
			Transforms: []Transform{SLOTag{Classes: []SLOClass{
				{Quantile: 50, Target: slo.Target{Wait: 2 * 3600}},
				{Quantile: 90, Target: slo.Target{Wait: 24 * 3600}},
				{Default: true, Target: slo.Target{Wait: 96 * 3600}},
			}}},
		},
	}
}

// sizedPop is the default population scaled to a user/job budget.
func sizedPop(users, jobs int) Pop {
	p := DefaultPop()
	p.Users, p.Jobs = users, jobs
	return p
}

// Get resolves a builtin scenario by name.
func Get(name string) (Scenario, bool) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Names lists the builtin scenario names in registry order.
func Names() []string {
	bs := Builtins()
	out := make([]string, len(bs))
	for i, s := range bs {
		out[i] = s.Name
	}
	return out
}

// Parse resolves a scenario spec: a builtin name, or an ad-hoc chain of
// transforms joined with "+". Each transform is key=value:
//
//	load=1.5                           arrival compression (offered-load multiplier)
//	window=1d..8d                      time slice (units s, m, h, d, w; open end allowed)
//	users=top8  |  users=3.7.11        user subset (top-K by proc-seconds, or ids joined with .)
//	burst=at:7d.jobs:200.nodes:8.runtime:1h[.spread:1h][.est:2h][.user:42]
//	perturb=3                          f-model estimate accuracy
//	slo=p50:2h,p90:24h,default:96h     per-user SLO targets (quantile bands by
//	                                   proc-seconds, default band, user<id>:
//	                                   overrides; duration = wait target,
//	                                   <f>x = slowdown target, none = best effort)
//	queue=p50:org/a,default:org/b      route users to queue-tree leaves (same
//	                                   band grammar; destinations are queue paths)
//	partition=p50:fast,default:slow    route users to partitions directly
//	pop=users:100k,cohorts:8,churn:0.5 replace the workload with a generated
//	                                   population (keys users, jobs, cohorts,
//	                                   weeks, churn, zipf, alpha, diurnal,
//	                                   weekly, maxnodes; counts take k/m
//	                                   suffixes; omitted keys default)
//
// Example: "load=1.5+perturb=3" compresses arrivals and degrades estimates.
func Parse(spec string) (Scenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Scenario{}, fmt.Errorf("scenario: empty spec")
	}
	if s, ok := Get(spec); ok {
		return s, nil
	}
	s := Scenario{Name: spec, Description: "ad-hoc: " + spec}
	for _, part := range strings.Split(spec, "+") {
		tr, err := parseTransform(strings.TrimSpace(part))
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario %q: %w", spec, err)
		}
		s.Transforms = append(s.Transforms, tr)
	}
	return s, nil
}

// ParseTransform parses one key=value transform spec (the -window CLI flag
// feeds bare window bounds through this).
func ParseTransform(part string) (Transform, error) { return parseTransform(part) }

func parseTransform(part string) (Transform, error) {
	key, val, ok := strings.Cut(part, "=")
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (builtins: %s; or a key=value transform chain)",
			part, strings.Join(Names(), ", "))
	}
	key = strings.TrimSpace(key)
	val = strings.TrimSpace(val)
	switch key {
	case "load":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("load=%q: want a positive factor", val)
		}
		return LoadScale{Factor: f}, nil
	case "window":
		from, to, ok := strings.Cut(val, "..")
		if !ok {
			return nil, fmt.Errorf("window=%q: want START..END (END may be empty)", val)
		}
		w := Window{}
		var err error
		if w.Start, err = parseDur(from); err != nil {
			return nil, fmt.Errorf("window start: %w", err)
		}
		if strings.TrimSpace(to) != "" {
			if w.End, err = parseDur(to); err != nil {
				return nil, fmt.Errorf("window end: %w", err)
			}
		}
		return w, nil
	case "users":
		if rest, ok := strings.CutPrefix(val, "top"); ok {
			n, err := strconv.Atoi(rest)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("users=%q: want topK with K >= 1", val)
			}
			return UserFilter{Top: n}, nil
		}
		var ids []int
		for _, p := range strings.Split(val, ".") {
			id, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("users=%q: bad id %q", val, p)
			}
			ids = append(ids, id)
		}
		return UserFilter{Users: ids}, nil
	case "burst":
		return parseBurst(val)
	case "perturb":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("perturb=%q: want an f-model factor >= 0", val)
		}
		return PerturbEstimates{F: f}, nil
	case "slo":
		return parseSLO(val)
	case "queue", "partition":
		return parsePlacement(key, val)
	case "pop":
		return ParsePop(val)
	}
	return nil, fmt.Errorf("unknown transform %q (want load, window, users, burst, perturb, slo, queue, partition or pop)", key)
}

func parseBurst(val string) (Transform, error) {
	b := BurstInject{User: -1}
	for _, p := range strings.Split(val, ".") {
		k, v, ok := strings.Cut(p, ":")
		if !ok {
			return nil, fmt.Errorf("burst param %q: want key:value", p)
		}
		var err error
		switch k {
		case "at":
			b.At, err = parseDur(v)
		case "jobs":
			b.Count, err = strconv.Atoi(v)
		case "nodes":
			b.Nodes, err = strconv.Atoi(v)
		case "runtime":
			b.Runtime, err = parseDur(v)
		case "est":
			b.Estimate, err = parseDur(v)
		case "spread":
			b.Spread, err = parseDur(v)
		case "user":
			b.User, err = strconv.Atoi(v)
		default:
			return nil, fmt.Errorf("burst param %q unknown (want at, jobs, nodes, runtime, est, spread, user)", k)
		}
		if err != nil {
			return nil, fmt.Errorf("burst param %q: %w", p, err)
		}
	}
	return b, nil
}

const (
	daySeconds  = 24 * 3600
	weekSeconds = 7 * daySeconds
)

// parseDur parses a duration with optional unit suffix s/m/h/d/w; a bare
// number is seconds. Durations with a "." would collide with the spec
// grammar's list separator, so only integers are accepted.
func parseDur(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty duration")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 's':
		s = s[:len(s)-1]
	case 'm':
		mult, s = 60, s[:len(s)-1]
	case 'h':
		mult, s = 3600, s[:len(s)-1]
	case 'd':
		mult, s = daySeconds, s[:len(s)-1]
	case 'w':
		mult, s = weekSeconds, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q (want e.g. 90, 15m, 2h, 7d, 4w)", s)
	}
	return n * mult, nil
}

// fmtDur renders seconds compactly for transform names (exact multiples of
// a unit use the unit; everything else stays in seconds).
func fmtDur(sec int64) string {
	switch {
	case sec != 0 && sec%weekSeconds == 0:
		return fmt.Sprintf("%dw", sec/weekSeconds)
	case sec != 0 && sec%daySeconds == 0:
		return fmt.Sprintf("%dd", sec/daySeconds)
	case sec != 0 && sec%3600 == 0:
		return fmt.Sprintf("%dh", sec/3600)
	case sec != 0 && sec%60 == 0:
		return fmt.Sprintf("%dm", sec/60)
	default:
		return fmt.Sprintf("%ds", sec)
	}
}
