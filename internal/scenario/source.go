package scenario

import (
	"fmt"
	"os"
	"path/filepath"

	"fairsched/internal/job"
	"fairsched/internal/swf"
	"fairsched/internal/workload"
)

// Workload is a loaded, untransformed workload plus the trace metadata a
// campaign needs to configure the simulator around it.
type Workload struct {
	Jobs []*job.Job
	// SystemSize is the trace-declared node count (0 when unknown).
	SystemSize int
	// UnixStartTime is the trace's wall-clock origin (0 when unknown); it
	// aligns fairshare decay boundaries to real days.
	UnixStartTime int64
}

// Source names one workload a campaign can load on demand. Load is called
// once per campaign cell, on the worker executing that cell, so a campaign
// holds at most one loaded workload per worker at a time — never the whole
// trace set.
type Source struct {
	Name string
	// Load materializes the workload. seed is the cell's seed: synthetic
	// sources generate with it, trace-backed sources ignore it.
	Load func(seed int64) (*Workload, error)
}

// TraceFile is a Source streaming an SWF file through swf.Scanner with the
// default conversion options: the file is read record by record (constant
// memory beyond the converted jobs themselves) on every Load.
func TraceFile(path string) Source {
	return TraceFileWith(path, swf.ConvertOptions{})
}

// TraceFileWith is TraceFile with explicit conversion options.
func TraceFileWith(path string, opts swf.ConvertOptions) Source {
	return Source{
		Name: filepath.Base(path),
		Load: func(int64) (*Workload, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			defer f.Close()
			sc := swf.NewScanner(f)
			var jobs []*job.Job
			for sc.Scan() {
				if j, ok := swf.Convert(sc.Record(), opts); ok {
					jobs = append(jobs, j)
				}
			}
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("scenario: %s: %w", path, err)
			}
			swf.SortJobs(jobs)
			h := sc.Header()
			size := h.MaxNodes
			if size <= 0 {
				size = h.MaxProcs
			}
			return &Workload{Jobs: jobs, SystemSize: size, UnixStartTime: h.UnixStartTime}, nil
		},
	}
}

// Synthetic is a Source generating the calibrated CPlant/Ross workload; the
// campaign seed overrides cfg.Seed, so the seed axis varies the trace
// itself, not just the scenario draws.
func Synthetic(cfg workload.Config) Source {
	return Source{
		Name: "synthetic",
		Load: func(seed int64) (*Workload, error) {
			c := cfg
			c.Seed = seed
			jobs, err := workload.Generate(c)
			if err != nil {
				return nil, err
			}
			return &Workload{Jobs: jobs, SystemSize: c.SystemSize}, nil
		},
	}
}

// Jobs is a Source over an in-memory workload (tests, library callers). The
// slice is shared, not copied; scenarios never mutate it.
func Jobs(name string, jobs []*job.Job, systemSize int) Source {
	return Source{
		Name: name,
		Load: func(int64) (*Workload, error) {
			return &Workload{Jobs: jobs, SystemSize: systemSize}, nil
		},
	}
}
