package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"fairsched/internal/job"
	"fairsched/internal/swf"
	"fairsched/internal/tracecache"
	"fairsched/internal/workload"
)

// Workload is a loaded, untransformed workload plus the trace metadata a
// campaign needs to configure the simulator around it.
type Workload struct {
	Jobs []*job.Job
	// SystemSize is the trace-declared node count (0 when unknown).
	SystemSize int
	// UnixStartTime is the trace's wall-clock origin (0 when unknown); it
	// aligns fairshare decay boundaries to real days.
	UnixStartTime int64
	// FairshareEpoch is the trace-declared default fairshare epoch (0 when
	// the trace does not declare one); manifest entries set it, and a
	// campaign uses it when the study leaves the epoch unset.
	FairshareEpoch int64
}

// Source names one workload a campaign can load on demand. Load is called
// once per campaign cell, on the worker executing that cell, so a campaign
// holds at most one loaded workload per worker at a time — never the whole
// trace set.
type Source struct {
	Name string
	// Load materializes the workload. seed is the cell's seed: synthetic
	// sources generate with it, trace-backed sources ignore it.
	Load func(seed int64) (*Workload, error)
}

// TraceFile is a Source streaming an SWF file through swf.Scanner with the
// default conversion options: the file is read record by record (constant
// memory beyond the converted jobs themselves) on every Load.
func TraceFile(path string) Source {
	return TraceFileWith(path, swf.ConvertOptions{})
}

// TraceFileWith is TraceFile with explicit conversion options.
func TraceFileWith(path string, opts swf.ConvertOptions) Source {
	return Source{
		Name: filepath.Base(path),
		Load: func(int64) (*Workload, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			defer f.Close()
			sc := swf.NewScanner(f)
			var jobs []*job.Job
			for sc.Scan() {
				if j, ok := swf.Convert(sc.Record(), opts); ok {
					jobs = append(jobs, j)
				}
			}
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("scenario: %s: %w", path, err)
			}
			swf.SortJobs(jobs)
			h := sc.Header()
			size := h.MaxNodes
			if size <= 0 {
				size = h.MaxProcs
			}
			return &Workload{Jobs: jobs, SystemSize: size, UnixStartTime: h.UnixStartTime}, nil
		},
	}
}

// ManifestSource is a Source for one manifest entry, loading through the
// binary trace cache. Unlike TraceFile, which re-streams the SWF text on
// every Load, a ManifestSource materializes the trace once per process and
// shares the job slice across every (scenario × seed × policy) cell that
// touches it — safe because scenarios never mutate input jobs. cacheDir ""
// streams without writing a cache (the reference path cache-equivalence
// tests diff against); otherwise a valid cache is loaded warm and a missing
// or stale one is rebuilt.
func ManifestSource(m *tracecache.Manifest, e tracecache.ManifestEntry, cacheDir string) Source {
	var once sync.Once
	var wl *Workload
	var lerr error
	path := m.ResolvePath(e)
	opts := swf.ConvertOptions{KeepCancelled: e.KeepCancelled}
	return Source{
		Name: e.Name,
		Load: func(int64) (*Workload, error) {
			once.Do(func() {
				jobs, meta, _, err := tracecache.Ensure(cacheDir, path, opts, e.SHA256)
				if err != nil {
					lerr = fmt.Errorf("scenario: trace %s: %w", e.Name, err)
					return
				}
				size := meta.SystemSize
				if e.MaxNodes > 0 {
					size = e.MaxNodes
				}
				start := meta.UnixStartTime
				if e.UnixStartTime > 0 {
					start = e.UnixStartTime
				}
				wl = &Workload{
					Jobs:           jobs,
					SystemSize:     size,
					UnixStartTime:  start,
					FairshareEpoch: e.Epoch,
				}
			})
			return wl, lerr
		},
	}
}

// ManifestSources returns one memoized ManifestSource per entry, in entry
// order — the campaign trace axis for a manifest-driven sweep.
func ManifestSources(m *tracecache.Manifest, entries []tracecache.ManifestEntry, cacheDir string) []Source {
	srcs := make([]Source, len(entries))
	for i, e := range entries {
		srcs[i] = ManifestSource(m, e, cacheDir)
	}
	return srcs
}

// Synthetic is a Source generating the calibrated CPlant/Ross workload; the
// campaign seed overrides cfg.Seed, so the seed axis varies the trace
// itself, not just the scenario draws.
func Synthetic(cfg workload.Config) Source {
	return Source{
		Name: "synthetic",
		Load: func(seed int64) (*Workload, error) {
			c := cfg
			c.Seed = seed
			jobs, err := workload.Generate(c)
			if err != nil {
				return nil, err
			}
			return &Workload{Jobs: jobs, SystemSize: c.SystemSize}, nil
		},
	}
}

// Population is a Source generating a population-scale workload; as with
// Synthetic, the campaign seed overrides cfg.Seed. The declared system size
// is the config's (defaulted) SystemSize.
func Population(cfg workload.PopConfig) Source {
	return Source{
		Name: "population",
		Load: func(seed int64) (*Workload, error) {
			c := cfg
			c.Seed = seed
			jobs, err := workload.GeneratePopulation(c)
			if err != nil {
				return nil, err
			}
			size := c.SystemSize
			if size <= 0 {
				size = 1000 // PopConfig default
			}
			return &Workload{Jobs: jobs, SystemSize: size}, nil
		},
	}
}

// Jobs is a Source over an in-memory workload (tests, library callers). The
// slice is shared, not copied; scenarios never mutate it.
func Jobs(name string, jobs []*job.Job, systemSize int) Source {
	return Source{
		Name: name,
		Load: func(int64) (*Workload, error) {
			return &Workload{Jobs: jobs, SystemSize: systemSize}, nil
		},
	}
}
