package scenario

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"fairsched/internal/job"
	"fairsched/internal/workload"
)

// Pop generates a population-scale workload (workload.GeneratePopulation),
// replacing whatever jobs entered the chain — it is a generator in transform
// clothing, so `pop=...` slots into the same scenario grammar, campaign
// axes and fuzz coverage as every other axis. The draw is seeded from the
// scenario RNG, so the campaign seed axis varies the population itself,
// exactly like the Synthetic source.
//
// Fields mirror the aggregate knobs of workload.PopConfig (explicit cohort
// mixes stay a library-level feature; the grammar exposes the derived-cohort
// form).
type Pop struct {
	Users   int
	Jobs    int
	Cohorts int
	Weeks   int
	Churn   float64
	Zipf    float64
	Alpha   float64
	Diurnal float64
	Weekly  float64
	// MaxNodes caps job widths and is the generated workload's declared
	// system size (a campaign's explicit -nodes still overrides downstream).
	MaxNodes int
}

// DefaultPop is the grammar's base point: every parse starts here and
// overrides only the keys present, so `pop=` alone is a valid 10^4-user
// population.
func DefaultPop() Pop {
	return Pop{
		Users: 10_000, Jobs: 20_000, Cohorts: 4, Weeks: 4,
		Churn: 0.25, Zipf: 1.3, Alpha: 1.1, Diurnal: 0.6, Weekly: 0.5,
		MaxNodes: 64,
	}
}

// Name renders every field in fixed order, so two Pops are equal iff their
// names are equal and a re-parse of the name is the identity (the fuzz
// stability property).
func (t Pop) Name() string {
	return "pop=" + strings.Join([]string{
		"users:" + fmtCount(t.Users),
		"jobs:" + fmtCount(t.Jobs),
		"cohorts:" + strconv.Itoa(t.Cohorts),
		"weeks:" + strconv.Itoa(t.Weeks),
		"churn:" + fmtF(t.Churn),
		"zipf:" + fmtF(t.Zipf),
		"alpha:" + fmtF(t.Alpha),
		"diurnal:" + fmtF(t.Diurnal),
		"weekly:" + fmtF(t.Weekly),
		"maxnodes:" + strconv.Itoa(t.MaxNodes),
	}, ",")
}

// Config materializes the transform as a workload.PopConfig drawing with
// seed (cmd/workloadgen's -pop mode builds its configs through this too).
// The generated workload's declared system size is MaxNodes, so widths fill
// it; a campaign's own system size still governs the simulation.
func (t Pop) Config(seed int64) workload.PopConfig {
	return workload.PopConfig{
		Seed:       seed,
		SystemSize: t.MaxNodes,
		Weeks:      t.Weeks,
		Users:      t.Users,
		Jobs:       t.Jobs,
		NumCohorts: t.Cohorts,
		Churn:      t.Churn,
		Zipf:       t.Zipf,
		Alpha:      t.Alpha,
		Diurnal:    t.Diurnal,
		Weekly:     t.Weekly,
		MaxNodes:   t.MaxNodes,
	}
}

// Apply generates the population, discarding the incoming jobs. The output
// is already sorted by (submit, id) — StreamPopulation emits in submit
// order and numbers ids in emission order.
func (t Pop) Apply(jobs []*job.Job, rng *rand.Rand) ([]*job.Job, error) {
	return workload.GeneratePopulation(t.Config(rng.Int63()))
}

// validate bounds every field so a parsed Pop is always generatable; checks
// are written in accept-form so NaN fails them.
func (t Pop) validate() error {
	if !(t.Users >= 1 && t.Users <= workload.MaxPopUsers) {
		return fmt.Errorf("users %d out of range [1, %d]", t.Users, workload.MaxPopUsers)
	}
	if !(t.Jobs >= 1 && t.Jobs <= workload.MaxPopJobs) {
		return fmt.Errorf("jobs %d out of range [1, %d]", t.Jobs, workload.MaxPopJobs)
	}
	if !(t.Cohorts >= 1 && t.Cohorts <= workload.MaxPopCohorts) {
		return fmt.Errorf("cohorts %d out of range [1, %d]", t.Cohorts, workload.MaxPopCohorts)
	}
	if !(t.Weeks >= 1 && t.Weeks <= workload.MaxPopWeeks) {
		return fmt.Errorf("weeks %d out of range [1, %d]", t.Weeks, workload.MaxPopWeeks)
	}
	if !(t.Churn >= 0 && t.Churn <= 52) {
		return fmt.Errorf("churn %v out of range [0, 52]", t.Churn)
	}
	if !(t.Zipf > 1 && t.Zipf <= 8) {
		return fmt.Errorf("zipf %v out of range (1, 8]", t.Zipf)
	}
	if !(t.Alpha > 0.05 && t.Alpha <= 8) {
		return fmt.Errorf("alpha %v out of range (0.05, 8]", t.Alpha)
	}
	if !(t.Diurnal >= 0 && t.Diurnal <= 1) {
		return fmt.Errorf("diurnal %v out of range [0, 1]", t.Diurnal)
	}
	if !(t.Weekly >= 0 && t.Weekly <= 1) {
		return fmt.Errorf("weekly %v out of range [0, 1]", t.Weekly)
	}
	if !(t.MaxNodes >= 1 && t.MaxNodes <= 1<<20) {
		return fmt.Errorf("maxnodes %d out of range [1, %d]", t.MaxNodes, 1<<20)
	}
	return nil
}

// ParsePop parses the value of a pop= spec: comma-separated key:value
// overrides on DefaultPop (empty value = all defaults). Counts accept k/m
// suffixes (users:100k, users:1m).
func ParsePop(val string) (Pop, error) {
	t := DefaultPop()
	if strings.TrimSpace(val) != "" {
		for _, p := range strings.Split(val, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(p), ":")
			if !ok {
				return Pop{}, fmt.Errorf("pop param %q: want key:value", p)
			}
			var err error
			switch k {
			case "users":
				t.Users, err = parseCount(v)
			case "jobs":
				t.Jobs, err = parseCount(v)
			case "cohorts":
				t.Cohorts, err = strconv.Atoi(v)
			case "weeks":
				t.Weeks, err = strconv.Atoi(v)
			case "churn":
				t.Churn, err = strconv.ParseFloat(v, 64)
			case "zipf":
				t.Zipf, err = strconv.ParseFloat(v, 64)
			case "alpha":
				t.Alpha, err = strconv.ParseFloat(v, 64)
			case "diurnal":
				t.Diurnal, err = strconv.ParseFloat(v, 64)
			case "weekly":
				t.Weekly, err = strconv.ParseFloat(v, 64)
			case "maxnodes":
				t.MaxNodes, err = strconv.Atoi(v)
			default:
				return Pop{}, fmt.Errorf("pop param %q unknown (want users, jobs, cohorts, weeks, churn, zipf, alpha, diurnal, weekly, maxnodes)", k)
			}
			if err != nil {
				return Pop{}, fmt.Errorf("pop param %q: %w", p, err)
			}
		}
	}
	if err := t.validate(); err != nil {
		return Pop{}, fmt.Errorf("pop=%q: %w", val, err)
	}
	return t, nil
}

// parseCount parses a non-negative integer with an optional k (10^3) or m
// (10^6) suffix.
func parseCount(s string) (int, error) {
	s = strings.TrimSpace(s)
	mult := 1
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'k':
			mult, s = 1_000, s[:n-1]
		case 'm':
			mult, s = 1_000_000, s[:n-1]
		}
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad count %q (want e.g. 5000, 100k, 1m)", s)
	}
	return n * mult, nil
}

// fmtCount renders a count with the largest exact suffix, inverse of
// parseCount on canonical output.
func fmtCount(n int) string {
	switch {
	case n != 0 && n%1_000_000 == 0:
		return strconv.Itoa(n/1_000_000) + "m"
	case n != 0 && n%1_000 == 0:
		return strconv.Itoa(n/1_000) + "k"
	default:
		return strconv.Itoa(n)
	}
}

// fmtF renders a float canonically for transform names. 'f' (never 'g'):
// an exponent's '+' would re-split the transform chain.
func fmtF(f float64) string { return strconv.FormatFloat(f, 'f', -1, 64) }
