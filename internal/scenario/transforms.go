package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"fairsched/internal/job"
	"fairsched/internal/swf"
)

// LoadScale rescales offered load by compressing (Factor > 1) or dilating
// (Factor < 1) arrival times: every submit time is divided by Factor, so
// the same work arrives over a shorter or longer horizon. This is the
// standard load knob of the scheduling literature (runtimes untouched, so
// per-job metrics stay comparable across load points).
type LoadScale struct {
	Factor float64
}

// Name implements Transform.
func (t LoadScale) Name() string { return fmt.Sprintf("load=%.2f", t.Factor) }

// Apply implements Transform.
func (t LoadScale) Apply(jobs []*job.Job, _ *rand.Rand) ([]*job.Job, error) {
	if t.Factor <= 0 || math.IsNaN(t.Factor) || math.IsInf(t.Factor, 0) {
		return nil, fmt.Errorf("load factor %v out of range (want > 0)", t.Factor)
	}
	out := make([]*job.Job, len(jobs))
	for i, j := range jobs {
		c := j.Clone()
		c.Submit = int64(math.Round(float64(j.Submit) / t.Factor))
		out[i] = c
	}
	// Division by a positive factor is monotone, so order is preserved up
	// to rounding ties; restore strict trace order.
	swf.SortJobs(out)
	return out, nil
}

// Window keeps only the jobs submitted in [Start, End) and rebases their
// submit times to the window start, slicing one load regime (a bursty week,
// a quiet month) out of a long trace. End <= 0 means "to the end of the
// trace".
type Window struct {
	Start, End int64
}

// Name implements Transform.
func (t Window) Name() string {
	if t.End <= 0 {
		return fmt.Sprintf("window=%s..", fmtDur(t.Start))
	}
	return fmt.Sprintf("window=%s..%s", fmtDur(t.Start), fmtDur(t.End))
}

// OriginShift implements OriginShifter: the output's t=0 is Start seconds
// into the input's timebase.
func (t Window) OriginShift() int64 { return t.Start }

// Apply implements Transform.
func (t Window) Apply(jobs []*job.Job, _ *rand.Rand) ([]*job.Job, error) {
	if t.Start < 0 {
		return nil, fmt.Errorf("window start %d negative", t.Start)
	}
	if t.End > 0 && t.End <= t.Start {
		return nil, fmt.Errorf("window [%d, %d) empty", t.Start, t.End)
	}
	var out []*job.Job
	for _, j := range jobs {
		if j.Submit < t.Start || (t.End > 0 && j.Submit >= t.End) {
			continue
		}
		c := j.Clone()
		c.Submit -= t.Start
		out = append(out, c)
	}
	return out, nil
}

// UserFilter keeps a subset of the user population: either the Top heaviest
// users by total processor-seconds, or an explicit id list. Isolating heavy
// or light users is how fairness pathologies (starvation of light users
// behind heavy ones) are localized.
type UserFilter struct {
	// Top, when positive, keeps the Top users with the largest total
	// processor-seconds (ties broken toward the lower user id).
	Top int
	// Users, when Top is zero, is the explicit id list to keep.
	Users []int
}

// Name implements Transform.
func (t UserFilter) Name() string {
	if t.Top > 0 {
		return fmt.Sprintf("users=top%d", t.Top)
	}
	parts := make([]string, len(t.Users))
	for i, u := range t.Users {
		parts[i] = fmt.Sprint(u)
	}
	return "users=" + strings.Join(parts, ".")
}

// Apply implements Transform.
func (t UserFilter) Apply(jobs []*job.Job, _ *rand.Rand) ([]*job.Job, error) {
	keep := make(map[int]bool)
	switch {
	case t.Top > 0:
		users := usersByUsage(userProcSeconds(jobs), false)
		if len(users) > t.Top {
			users = users[:t.Top]
		}
		for _, u := range users {
			keep[u] = true
		}
	case len(t.Users) > 0:
		for _, u := range t.Users {
			keep[u] = true
		}
	default:
		return nil, fmt.Errorf("user filter selects nobody (want top>0 or an id list)")
	}
	var out []*job.Job
	for _, j := range jobs {
		if keep[j.User] {
			out = append(out, j)
		}
	}
	return out, nil
}

// userProcSeconds aggregates each user's total processor-seconds — the
// heaviness measure shared by UserFilter's top-K and SLOTag's quantile
// bands.
func userProcSeconds(jobs []*job.Job) map[int]int64 {
	usage := make(map[int]int64)
	for _, j := range jobs {
		usage[j.User] += j.ProcSeconds()
	}
	return usage
}

// usersByUsage returns the user ids ordered by total processor-seconds,
// ascending (lightest first) or descending, with ties always broken
// toward the lower id.
func usersByUsage(usage map[int]int64, ascending bool) []int {
	users := make([]int, 0, len(usage))
	for u := range usage {
		users = append(users, u)
	}
	sort.Slice(users, func(i, k int) bool {
		ui, uk := usage[users[i]], usage[users[k]]
		if ui != uk {
			if ascending {
				return ui < uk
			}
			return ui > uk
		}
		return users[i] < users[k]
	})
	return users
}

// BurstInject adds a synthetic arrival burst — Count jobs of Nodes × Runtime
// from one (by default new) user, spread uniformly over [At, At+Spread) —
// on top of the trace. A controlled burst is the classic probe for
// starvation-queue and reservation behaviour under sudden contention.
type BurstInject struct {
	At      int64 // burst start (seconds into the trace)
	Count   int   // number of injected jobs
	Nodes   int   // width of each injected job
	Runtime int64 // runtime of each injected job
	// Estimate defaults to Runtime when <= 0.
	Estimate int64
	// Spread is the arrival span; 0 submits the whole burst at At.
	Spread int64
	// User is the submitting user id; negative (the default built by the
	// spec parser) allocates a fresh id above every existing user.
	User int
}

// Name implements Transform.
func (t BurstInject) Name() string {
	return fmt.Sprintf("burst=at:%s.jobs:%d.nodes:%d.runtime:%s",
		fmtDur(t.At), t.Count, t.Nodes, fmtDur(t.Runtime))
}

// Apply implements Transform.
func (t BurstInject) Apply(jobs []*job.Job, rng *rand.Rand) ([]*job.Job, error) {
	switch {
	case t.Count <= 0:
		return nil, fmt.Errorf("burst of %d jobs", t.Count)
	case t.Nodes <= 0:
		return nil, fmt.Errorf("burst width %d", t.Nodes)
	case t.Runtime <= 0:
		return nil, fmt.Errorf("burst runtime %d", t.Runtime)
	case t.At < 0 || t.Spread < 0:
		return nil, fmt.Errorf("burst at %d spread %d (want >= 0)", t.At, t.Spread)
	}
	nextID := job.ID(1)
	maxUser := -1
	for _, j := range jobs {
		if j.ID >= nextID {
			nextID = j.ID + 1
		}
		if j.User > maxUser {
			maxUser = j.User
		}
	}
	user := t.User
	if user < 0 {
		user = maxUser + 1
	}
	est := t.Estimate
	if est <= 0 {
		est = t.Runtime
	}
	out := make([]*job.Job, 0, len(jobs)+t.Count)
	out = append(out, jobs...)
	for i := 0; i < t.Count; i++ {
		submit := t.At
		if t.Spread > 0 {
			submit += rng.Int63n(t.Spread)
		}
		out = append(out, &job.Job{
			ID:       nextID,
			User:     user,
			Submit:   submit,
			Runtime:  t.Runtime,
			Estimate: est,
			Nodes:    t.Nodes,
		})
		nextID++
	}
	swf.SortJobs(out)
	return out, nil
}

// PerturbEstimates replaces every wall-clock limit with a draw from the
// f-model (Tsafrir et al., "Modeling User Runtime Estimates"): estimate =
// runtime × (1 + f·u) with u uniform in [0, 1). F = 0 yields perfect
// estimates; larger F degrades accuracy. Overruns disappear (estimates
// never understate), so the transform isolates the effect of estimate
// quality from the effect of kills.
type PerturbEstimates struct {
	F float64
}

// Name implements Transform.
func (t PerturbEstimates) Name() string { return fmt.Sprintf("perturb=%.2f", t.F) }

// Apply implements Transform.
func (t PerturbEstimates) Apply(jobs []*job.Job, rng *rand.Rand) ([]*job.Job, error) {
	if t.F < 0 || math.IsNaN(t.F) || math.IsInf(t.F, 0) {
		return nil, fmt.Errorf("perturbation factor %v out of range (want >= 0)", t.F)
	}
	out := make([]*job.Job, len(jobs))
	for i, j := range jobs {
		c := j.Clone()
		c.Estimate = int64(math.Ceil(float64(j.Runtime) * (1 + t.F*rng.Float64())))
		if c.Estimate < 1 {
			c.Estimate = 1
		}
		out[i] = c
	}
	return out, nil
}
