package scenario

import (
	"reflect"
	"strings"
	"testing"

	"fairsched/internal/job"
)

func testJobs() []*job.Job {
	return []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 600, Estimate: 900, Nodes: 16},
		{ID: 2, User: 2, Submit: 1000, Runtime: 3600, Estimate: 7200, Nodes: 32},
		{ID: 3, User: 1, Submit: 2000, Runtime: 60, Estimate: 60, Nodes: 4},
		{ID: 4, User: 3, Submit: 3000, Runtime: 7200, Estimate: 7200, Nodes: 64},
	}
}

func snapshot(jobs []*job.Job) []job.Job {
	out := make([]job.Job, len(jobs))
	for i, j := range jobs {
		out[i] = *j
	}
	return out
}

// Every transform must leave the input jobs untouched: they are shared
// read-only across campaign workers.
func TestTransformsDoNotMutateInput(t *testing.T) {
	for _, s := range Builtins() {
		in := testJobs()
		before := snapshot(in)
		if _, err := s.Apply(in, 7); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !reflect.DeepEqual(before, snapshot(in)) {
			t.Errorf("%s mutated its input", s.Name)
		}
	}
}

func TestApplyDeterministicUnderSeed(t *testing.T) {
	for _, s := range Builtins() {
		a, err := s.Apply(testJobs(), 42)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		b, err := s.Apply(testJobs(), 42)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !reflect.DeepEqual(snapshot(a), snapshot(b)) {
			t.Errorf("%s not deterministic under a fixed seed", s.Name)
		}
	}
}

func TestLoadScaleCompressesArrivals(t *testing.T) {
	out, err := (LoadScale{Factor: 2}).Apply(testJobs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Submit != 500 || out[3].Submit != 1500 {
		t.Errorf("submits = %d, %d; want 500, 1500", out[1].Submit, out[3].Submit)
	}
	if out[1].Runtime != 3600 {
		t.Error("runtime must not change under load scaling")
	}
	if _, err := (LoadScale{}).Apply(testJobs(), nil); err == nil {
		t.Error("zero factor accepted")
	}
}

func TestWindowSlicesAndRebases(t *testing.T) {
	out, err := (Window{Start: 1000, End: 3000}).Apply(testJobs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].ID != 2 || out[1].ID != 3 {
		t.Fatalf("window kept %v", out)
	}
	if out[0].Submit != 0 || out[1].Submit != 1000 {
		t.Errorf("submits not rebased: %d, %d", out[0].Submit, out[1].Submit)
	}
}

func TestUserFilterTopByProcSeconds(t *testing.T) {
	// User 3: 7200*64; user 2: 3600*32; user 1: 600*16 + 60*4.
	out, err := (UserFilter{Top: 2}).Apply(testJobs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range out {
		if j.User == 1 {
			t.Errorf("lightest user kept: %v", j)
		}
	}
	if len(out) != 2 {
		t.Fatalf("kept %d jobs, want 2", len(out))
	}
}

func TestBurstInjectFreshIDsAndUser(t *testing.T) {
	s := Scenario{Name: "b", Transforms: []Transform{
		BurstInject{At: 500, Count: 10, Nodes: 8, Runtime: 60, Spread: 100, User: -1},
	}}
	out, err := s.Apply(testJobs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 14 {
		t.Fatalf("got %d jobs, want 14", len(out))
	}
	if err := job.ValidateAll(out, 1000); err != nil {
		t.Fatalf("injected workload invalid: %v", err)
	}
	for _, j := range out {
		if j.ID > 4 {
			if j.User != 4 {
				t.Errorf("injected job user = %d, want fresh id 4", j.User)
			}
			if j.Submit < 500 || j.Submit >= 600 {
				t.Errorf("injected submit %d outside [500, 600)", j.Submit)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		if out[i].Submit < out[i-1].Submit {
			t.Fatal("burst output not sorted by submit")
		}
	}
}

func TestPerturbEstimatesFModel(t *testing.T) {
	s := Scenario{Name: "p", Transforms: []Transform{PerturbEstimates{F: 3}}}
	out, err := s.Apply(testJobs(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range out {
		if j.Estimate < j.Runtime {
			t.Errorf("job %d: estimate %d below runtime %d", i, j.Estimate, j.Runtime)
		}
		if j.Estimate > 4*j.Runtime+1 {
			t.Errorf("job %d: estimate %d above (1+f)*runtime", i, j.Estimate)
		}
	}
	// f=0 must produce perfect estimates.
	perfect, err := Scenario{Name: "p0", Transforms: []Transform{PerturbEstimates{}}}.Apply(testJobs(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range perfect {
		if j.Estimate != j.Runtime {
			t.Errorf("f=0 estimate %d != runtime %d", j.Estimate, j.Runtime)
		}
	}
}

func TestParseBuiltinsAndChains(t *testing.T) {
	for _, name := range Names() {
		if _, err := Parse(name); err != nil {
			t.Errorf("builtin %s does not parse: %v", name, err)
		}
	}
	s, err := Parse("load=1.5+window=1d..8d+perturb=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Transforms) != 3 {
		t.Fatalf("chain parsed to %d transforms", len(s.Transforms))
	}
	if _, ok := s.Transforms[1].(Window); !ok {
		t.Fatalf("middle transform = %T, want Window", s.Transforms[1])
	}
	w := s.Transforms[1].(Window)
	if w.Start != 86400 || w.End != 8*86400 {
		t.Errorf("window bounds = %d..%d", w.Start, w.End)
	}
	if _, err := Parse("bogus"); err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Errorf("unknown scenario error should list builtins, got %v", err)
	}
	if _, err := Parse("burst=at:7d.jobs:50.nodes:8.runtime:1h.spread:30m"); err != nil {
		t.Errorf("burst spec rejected: %v", err)
	}
}

func TestSourceJobsAndSyntheticSeed(t *testing.T) {
	src := Jobs("lit", testJobs(), 128)
	wl, err := src.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	if wl.SystemSize != 128 || len(wl.Jobs) != 4 {
		t.Fatalf("literal source wrong: %+v", wl)
	}
}

func TestWithAppendsTransforms(t *testing.T) {
	base := Baseline()
	sliced := base.With(Window{Start: 0, End: 3600})
	if len(base.Transforms) != 0 {
		t.Fatal("With mutated the receiver")
	}
	if len(sliced.Transforms) != 1 || !strings.Contains(sliced.Name, "window=") {
		t.Fatalf("With result wrong: %+v", sliced)
	}
}
