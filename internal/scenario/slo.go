package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"fairsched/internal/job"
	"fairsched/internal/slo"
)

// SLOClass is one band of an SLOTag: a usage quantile, the default band,
// or a single explicitly-named user. Exactly one of Quantile (> 0),
// Default and IsUser must be set; the zero value is invalid (rejected by
// validation), so a forgotten discriminator errors instead of silently
// tagging user 0.
type SLOClass struct {
	// Quantile, when in 1..100, makes this a quantile band: it covers the
	// users whose total processor-second rank percentile is at or below it
	// and above every smaller band (so "p50" is the lightest half, a
	// following "p90" the next 40%).
	Quantile int
	// IsUser marks an explicit per-user override for User; it wins over
	// any band the user would otherwise fall into.
	IsUser bool
	// User is the overridden user id (meaningful only with IsUser; ids
	// start at 0 in some traces, hence the explicit flag).
	User int
	// Default, when set, catches every user no quantile band covers.
	Default bool
	// Target is the band's objective; a zero target makes the band
	// explicitly best-effort (tracked nowhere).
	Target slo.Target
}

// name renders the class name used in assignments and reports.
func (c SLOClass) name() string {
	switch {
	case c.Quantile > 0:
		return fmt.Sprintf("p%d", c.Quantile)
	case c.Default:
		return "default"
	default:
		return fmt.Sprintf("user%d", c.User)
	}
}

// SLOTag deterministically tags the workload's users with SLO targets. It
// is an identity transform on the jobs themselves — the SLO assignment is
// a measurement contract, not a workload rewrite — and contributes the
// assignment through the SLOProvider interface, derived from the final
// transformed workload of its pipeline (usage quantiles therefore reflect
// whatever load scaling, slicing or filtering the other transforms did).
//
// Quantile bands rank users by total processor-seconds ascending (ties
// toward the lower user id); user k of n (1-based, as in DESIGN.md §11)
// has percentile 100*k/n (integer division), and belongs to the smallest
// band covering it. Users
// above every band fall to the default band when present, else stay
// untagged. Explicit user overrides apply last, in spec order.
type SLOTag struct {
	Classes []SLOClass
}

// Name implements Transform: the canonical slo= token (quantile bands
// ascending, then default, then user overrides ascending; a band with both
// a wait and a slowdown target renders as two entries, wait first).
func (t SLOTag) Name() string { return "slo=" + t.canonicalValue() }

func (t SLOTag) canonicalValue() string {
	ordered := t.orderedClasses()
	var parts []string
	for _, c := range ordered {
		if c.Target.Wait > 0 {
			parts = append(parts, fmt.Sprintf("%s:%s", c.name(), fmtDur(c.Target.Wait)))
		}
		if c.Target.Slowdown > 0 {
			// 'f' (never 'g'): an exponent form like 1e+06 would re-split
			// on the chain grammar's '+' separator.
			parts = append(parts, fmt.Sprintf("%s:%sx", c.name(),
				strconv.FormatFloat(c.Target.Slowdown, 'f', -1, 64)))
		}
		if c.Target.IsZero() {
			parts = append(parts, c.name()+":none")
		}
	}
	return strings.Join(parts, ",")
}

// orderedClasses returns the classes in canonical order: quantile bands
// ascending, then the default band, then user overrides ascending.
func (t SLOTag) orderedClasses() []SLOClass {
	out := append([]SLOClass(nil), t.Classes...)
	rank := func(c SLOClass) (int, int) {
		switch {
		case c.Quantile > 0:
			return 0, c.Quantile
		case c.Default:
			return 1, 0
		default: // user override
			return 2, c.User
		}
	}
	sort.SliceStable(out, func(i, k int) bool {
		gi, ki := rank(out[i])
		gk, kk := rank(out[k])
		if gi != gk {
			return gi < gk
		}
		return ki < kk
	})
	return out
}

// validate reports the first structural problem with the tag.
func (t SLOTag) validate() error {
	if len(t.Classes) == 0 {
		return fmt.Errorf("slo tag with no classes")
	}
	seenDefault := false
	seenQ := make(map[int]bool)
	seenUser := make(map[int]bool)
	for _, c := range t.Classes {
		switch {
		case c.Quantile < 0 || c.Quantile > 100:
			return fmt.Errorf("slo quantile p%d out of range (want 1..100)", c.Quantile)
		case c.Quantile > 0:
			if c.Default || c.IsUser {
				return fmt.Errorf("slo band p%d also marked default or user", c.Quantile)
			}
			if seenQ[c.Quantile] {
				return fmt.Errorf("slo band p%d declared twice", c.Quantile)
			}
			seenQ[c.Quantile] = true
		case c.Default:
			if c.IsUser {
				return fmt.Errorf("slo default band also marked as a user override")
			}
			if seenDefault {
				return fmt.Errorf("slo default band declared twice")
			}
			seenDefault = true
		case c.IsUser:
			if c.User < 0 {
				return fmt.Errorf("slo user override with negative id %d", c.User)
			}
			if seenUser[c.User] {
				return fmt.Errorf("slo user%d override declared twice", c.User)
			}
			seenUser[c.User] = true
		default:
			return fmt.Errorf("slo class is neither a quantile band, default nor a user override (set Quantile, Default or IsUser)")
		}
		if c.Target.Wait < 0 {
			return fmt.Errorf("slo class %s: negative wait target", c.name())
		}
		if math.IsNaN(c.Target.Slowdown) || math.IsInf(c.Target.Slowdown, 0) {
			return fmt.Errorf("slo class %s: slowdown target must be finite", c.name())
		}
		if c.Target.Slowdown < 0 || (c.Target.Slowdown > 0 && c.Target.Slowdown < 1) {
			return fmt.Errorf("slo class %s: slowdown target %v below 1 (a slowdown is never < 1)",
				c.name(), c.Target.Slowdown)
		}
	}
	return nil
}

// Apply implements Transform: the workload passes through untouched (the
// tag's effect is the SLO assignment, contributed via ContributeSLO).
func (t SLOTag) Apply(jobs []*job.Job, _ *rand.Rand) ([]*job.Job, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	return jobs, nil
}

// ContributeSLO implements SLOProvider: registers the tag's classes and
// assigns every user of the (transformed) workload to its band.
func (t SLOTag) ContributeSLO(jobs []*job.Job, b *slo.Builder) error {
	if err := t.validate(); err != nil {
		return err
	}
	ordered := t.orderedClasses()
	for _, c := range ordered {
		b.AddClass(c.name(), c.Target)
	}
	// Rank users by total processor-seconds ascending (the same heaviness
	// measure UserFilter's top-K uses; ties toward the lower id in both).
	usage := userProcSeconds(jobs)
	var quantiles []SLOClass
	var hasDefault bool
	for _, c := range ordered {
		if c.Quantile > 0 {
			quantiles = append(quantiles, c) // already ascending
		}
		if c.Default {
			hasDefault = true
		}
	}
	// Band membership needs only the partition of the rank order at each
	// band boundary, never the full order: user k of n (1-based) has
	// percentile 100*k/n, so band q covers exactly the quantileBoundary(q, n)
	// lightest users not claimed by a smaller band. Successive quickselects
	// at the boundary ranks therefore give membership identical to the full
	// sort — the (usage, id) order is strict, so "the k lightest users" is a
	// unique set — at O(n) instead of O(n log n), which matters when bands
	// tag a population-scale user set (DESIGN.md §15). Builder.Build sorts
	// its tagged users, so the within-band tag order is free.
	users := make([]int, 0, len(usage))
	for u := range usage {
		users = append(users, u)
	}
	n := len(users)
	less := func(a, b int) bool {
		if usage[a] != usage[b] {
			return usage[a] < usage[b]
		}
		return a < b
	}
	lo := 0
	for _, c := range quantiles {
		k := quantileBoundary(c.Quantile, n)
		if k < lo {
			k = lo // boundaries are monotone in q; defensive
		}
		if k > lo && k < n {
			selectSmallest(users[lo:], k-lo, less)
		}
		for _, u := range users[lo:k] {
			b.Tag(u, c.name())
		}
		lo = k
	}
	if hasDefault {
		for _, u := range users[lo:] {
			b.Tag(u, "default")
		}
	}
	// Explicit overrides win; users absent from the workload are skipped
	// (the assignment describes this workload's population).
	for _, c := range ordered {
		if c.IsUser {
			if _, present := usage[c.User]; present {
				b.Tag(c.User, c.name())
			}
		}
	}
	return nil
}

// quantileBoundary returns how many of n ranked users fall at or below
// quantile q: the largest 1-based rank k with 100*k/n <= q under integer
// division — 100k/n <= q ⟺ 100k < (q+1)n ⟺ k <= ((q+1)n − 1)/100 —
// capped at n.
func quantileBoundary(q, n int) int {
	k := ((q+1)*n - 1) / 100
	if k > n {
		k = n
	}
	return k
}

// selectSmallest partially orders s so s[:k] holds the k smallest elements
// under less (within-segment order unspecified): iterative quickselect with
// a median-of-three pivot, expected O(len(s)). less must be a strict total
// order; 0 < k < len(s).
func selectSmallest(s []int, k int, less func(a, b int) bool) {
	lo, hi := 0, len(s)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if less(s[mid], s[lo]) {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if less(s[hi], s[lo]) {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if less(s[hi], s[mid]) {
			s[hi], s[mid] = s[mid], s[hi]
		}
		s[mid], s[hi] = s[hi], s[mid]
		pivot := s[hi]
		i := lo
		for j := lo; j < hi; j++ {
			if less(s[j], pivot) {
				s[i], s[j] = s[j], s[i]
				i++
			}
		}
		s[i], s[hi] = s[hi], s[i]
		switch {
		case i == k:
			return
		case i < k:
			lo = i + 1
		default:
			hi = i - 1
		}
	}
}

// parseSLO parses the slo= value: comma-separated class:target entries.
//
//	slo=p50:2h,p90:24h            lightest half 2h wait, next 40% 24h
//	slo=p50:2h,default:96h        everyone above p50 gets 96h
//	slo=p90:8x                    slowdown target (suffix x) for the
//	                              lightest 90%
//	slo=p50:2h,p50:6x             the same band may carry both kinds
//	slo=user7:30m                 explicit per-user override (wins)
//	slo=p50:2h,default:none       explicitly best-effort band
func parseSLO(val string) (Transform, error) {
	if strings.TrimSpace(val) == "" {
		return nil, fmt.Errorf("slo=: empty spec (want e.g. p50:2h,p90:24h)")
	}
	type key struct {
		q, user int
		def     bool
		isUser  bool
	}
	idx := make(map[key]int)
	var t SLOTag
	for _, part := range strings.Split(val, ",") {
		part = strings.TrimSpace(part)
		name, target, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("slo entry %q: want class:target", part)
		}
		var c SLOClass
		switch {
		case name == "default":
			c.Default = true
		case strings.HasPrefix(name, "user"):
			id, err := strconv.Atoi(name[len("user"):])
			if err != nil || id < 0 {
				return nil, fmt.Errorf("slo entry %q: bad user id", part)
			}
			c.IsUser = true
			c.User = id
		case strings.HasPrefix(name, "p"):
			q, err := strconv.Atoi(name[1:])
			if err != nil || q < 1 || q > 100 {
				return nil, fmt.Errorf("slo entry %q: want p1..p100", part)
			}
			c.Quantile = q
		default:
			return nil, fmt.Errorf("slo entry %q: class must be p<1..100>, default or user<id>", part)
		}
		k := key{q: c.Quantile, user: c.User, def: c.Default, isUser: c.IsUser}
		switch {
		case target == "none":
			// Explicit best-effort: a zero target. Combining none with a
			// real target — or repeating it — for the same band is
			// contradictory, like any other duplicate declaration.
			if i, seen := idx[k]; seen {
				if t.Classes[i].Target.IsZero() {
					return nil, fmt.Errorf("slo entry %q: band declared best-effort twice", part)
				}
				return nil, fmt.Errorf("slo entry %q: band already has a target", part)
			}
		case strings.HasSuffix(target, "x"):
			f, err := strconv.ParseFloat(target[:len(target)-1], 64)
			if err != nil || f < 1 || math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("slo entry %q: want a finite slowdown multiple >= 1 (e.g. 8x)", part)
			}
			c.Target.Slowdown = f
		default:
			d, err := parseDur(target)
			if err != nil {
				return nil, fmt.Errorf("slo entry %q: %w", part, err)
			}
			if d < 1 {
				return nil, fmt.Errorf("slo entry %q: wait target must be positive", part)
			}
			c.Target.Wait = d
		}
		if i, seen := idx[k]; seen {
			prev := &t.Classes[i]
			if prev.Target.IsZero() && !c.Target.IsZero() {
				return nil, fmt.Errorf("slo entry %q: band already declared best-effort", part)
			}
			if (c.Target.Wait > 0 && prev.Target.Wait > 0) ||
				(c.Target.Slowdown > 0 && prev.Target.Slowdown > 0) {
				return nil, fmt.Errorf("slo entry %q: duplicate target kind for this band", part)
			}
			if c.Target.Wait > 0 {
				prev.Target.Wait = c.Target.Wait
			}
			if c.Target.Slowdown > 0 {
				prev.Target.Slowdown = c.Target.Slowdown
			}
			continue
		}
		idx[k] = len(t.Classes)
		t.Classes = append(t.Classes, c)
	}
	if err := t.validate(); err != nil {
		return nil, fmt.Errorf("slo=%s: %w", val, err)
	}
	return t, nil
}
