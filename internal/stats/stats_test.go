package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanSumMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almost(Mean(xs), 2.5) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almost(Sum(xs), 10) {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if !almost(Median(xs), 2.5) {
		t.Errorf("Median = %v", Median(xs))
	}
	if !almost(Median([]float64{1, 2, 9}), 2) {
		t.Errorf("odd median = %v", Median([]float64{1, 2, 9}))
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty aggregates should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {10, 14},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); !almost(got, tc.want) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(xs, -5); got != 10 {
		t.Errorf("clamped low percentile = %v", got)
	}
	if got := Percentile(xs, 150); got != 50 {
		t.Errorf("clamped high percentile = %v", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if StdDev(nil) != 0 {
		t.Error("empty stddev should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max should be 0")
	}
}

func TestPearsonR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := PearsonR(xs, ys); !almost(got, 1) {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := PearsonR(xs, neg); !almost(got, -1) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	flat := []float64{5, 5, 5, 5, 5}
	if got := PearsonR(xs, flat); got != 0 {
		t.Errorf("zero variance should give 0, got %v", got)
	}
	if PearsonR([]float64{1}, []float64{2}) != 0 {
		t.Error("single point should give 0")
	}
}

func TestJainFairnessIndex(t *testing.T) {
	if got := JainFairnessIndex([]float64{5, 5, 5}); !almost(got, 1) {
		t.Errorf("equal allocation index = %v, want 1", got)
	}
	// One user hogging everything among n users gives 1/n.
	if got := JainFairnessIndex([]float64{1, 0, 0, 0}); !almost(got, 0.25) {
		t.Errorf("single hog index = %v, want 0.25", got)
	}
	if JainFairnessIndex(nil) != 1 {
		t.Error("empty index should be 1")
	}
	if JainFairnessIndex([]float64{0, 0}) != 1 {
		t.Error("all-zero index should be 1")
	}
}

func TestLogBins(t *testing.T) {
	edges := LogBins(1, 1000, 3)
	if len(edges) != 4 {
		t.Fatalf("got %d edges, want 4", len(edges))
	}
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(edges[i]-want[i]) > 1e-6*want[i] {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
	if LogBins(0, 10, 3) != nil || LogBins(10, 5, 3) != nil || LogBins(1, 10, 0) != nil {
		t.Error("invalid inputs should return nil")
	}
}

func TestBinIndex(t *testing.T) {
	edges := []float64{1, 10, 100, 1000}
	cases := []struct {
		x    float64
		want int
	}{
		{0.5, 0}, {1, 0}, {5, 0}, {10, 0}, {11, 1}, {99, 1}, {500, 2}, {1000, 2}, {5000, 2},
	}
	for _, tc := range cases {
		if got := BinIndex(edges, tc.x); got != tc.want {
			t.Errorf("BinIndex(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if BinIndex([]float64{1}, 5) != -1 {
		t.Error("single edge should be invalid")
	}
}

func TestGroupMedians(t *testing.T) {
	edges := []float64{0, 10, 20}
	xs := []float64{1, 2, 15, 16, 17}
	ys := []float64{100, 200, 1, 2, 3}
	med := GroupMedians(edges, xs, ys)
	if len(med) != 2 {
		t.Fatalf("got %d bins", len(med))
	}
	if !almost(med[0], 150) {
		t.Errorf("bin 0 median = %v", med[0])
	}
	if !almost(med[1], 2) {
		t.Errorf("bin 1 median = %v", med[1])
	}
	empty := GroupMedians([]float64{0, 1, 2}, []float64{0.5}, []float64{9})
	if !math.IsNaN(empty[1]) {
		t.Errorf("empty bin should be NaN, got %v", empty[1])
	}
}

func TestQuickProperties(t *testing.T) {
	percentileWithinRange := func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pp := math.Mod(math.Abs(p), 100)
		v := Percentile(xs, pp)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(percentileWithinRange, nil); err != nil {
		t.Error(err)
	}
	jainInUnitRange := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Keep magnitudes where x*x cannot overflow.
				xs = append(xs, math.Mod(math.Abs(x), 1e100))
			}
		}
		j := JainFairnessIndex(xs)
		return j > 0 && j <= 1+1e-9
	}
	if err := quick.Check(jainInUnitRange, nil); err != nil {
		t.Error(err)
	}
}
