// Package stats provides the small numeric helpers used by the metrics and
// experiment packages: means, percentiles, correlation and histogram
// binning. Everything works on float64 slices and is deterministic.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the total of the slice.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. Empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest value, 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// PearsonR returns the Pearson correlation coefficient of the paired
// samples, or 0 when undefined (fewer than 2 points or zero variance).
func PearsonR(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs[:n]), Mean(ys[:n])
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// JainFairnessIndex computes Jain, Chiu and Hawe's fairness index
// (sum x)^2 / (n * sum x^2), one of the classic metrics the paper's Section
// 4 reviews. Returns 1 for an empty slice (perfectly fair vacuously).
func JainFairnessIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var s, ss float64
	for _, x := range xs {
		s += x
		ss += x * x
	}
	if ss == 0 {
		return 1
	}
	return s * s / (float64(len(xs)) * ss)
}

// LogBins builds n logarithmically spaced bin edges covering [lo, hi].
// lo must be > 0 and hi > lo; the returned slice has n+1 edges.
func LogBins(lo, hi float64, n int) []float64 {
	if n < 1 || lo <= 0 || hi <= lo {
		return nil
	}
	edges := make([]float64, n+1)
	ratio := math.Pow(hi/lo, 1/float64(n))
	edges[0] = lo
	for i := 1; i <= n; i++ {
		edges[i] = edges[i-1] * ratio
	}
	edges[n] = hi
	return edges
}

// BinIndex returns the bin (0..len(edges)-2) containing x, clamping values
// outside the edge range to the first/last bin. Returns -1 when edges has
// fewer than 2 entries.
func BinIndex(edges []float64, x float64) int {
	if len(edges) < 2 {
		return -1
	}
	if x <= edges[0] {
		return 0
	}
	if x >= edges[len(edges)-1] {
		return len(edges) - 2
	}
	i := sort.SearchFloat64s(edges, x)
	// SearchFloat64s returns the first edge >= x; the bin is the one before.
	if i > 0 {
		i--
	}
	if i > len(edges)-2 {
		i = len(edges) - 2
	}
	return i
}

// GroupMedians bins xs by BinIndex over edges and returns per-bin medians of
// the paired ys values (NaN for empty bins).
func GroupMedians(edges, xs, ys []float64) []float64 {
	nb := len(edges) - 1
	if nb < 1 {
		return nil
	}
	groups := make([][]float64, nb)
	for i := range xs {
		b := BinIndex(edges, xs[i])
		if b >= 0 {
			groups[b] = append(groups[b], ys[i])
		}
	}
	out := make([]float64, nb)
	for i, g := range groups {
		if len(g) == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = Median(g)
	}
	return out
}
