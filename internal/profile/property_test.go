package profile

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickOccupyReleaseInvariants drives a random sequence of feasible
// occupations and verifies structural invariants plus exact restoration
// after releasing everything in reverse.
func TestQuickOccupyReleaseInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 64
		p := New(0, size, size)
		type iv struct {
			from, to int64
			n        int
		}
		var placed []iv
		for i := 0; i < 40; i++ {
			from := rng.Int63n(1000)
			to := from + 1 + rng.Int63n(200)
			n := rng.Intn(size) + 1
			if err := p.Occupy(from, to, n); err != nil {
				continue // infeasible; profile must be unchanged
			}
			placed = append(placed, iv{from, to, n})
			if p.CheckInvariants() != nil {
				return false
			}
		}
		for i := len(placed) - 1; i >= 0; i-- {
			if err := p.Release(placed[i].from, placed[i].to, placed[i].n); err != nil {
				return false
			}
		}
		times, free := p.Breakpoints()
		return len(times) == 1 && free[0] == size && p.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEarliestFitIsFeasibleAndMinimal verifies that the returned start
// really has capacity for the whole window, and that starting one second
// earlier would not (scanning from `after`).
func TestQuickEarliestFitIsFeasibleAndMinimal(t *testing.T) {
	feasible := func(p *Profile, s, dur int64, nodes int) bool {
		for t := s; t < s+dur; t++ {
			if p.FreeAt(t) < nodes {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		p := New(0, size, size)
		for i := 0; i < 12; i++ {
			from := rng.Int63n(60)
			to := from + 1 + rng.Int63n(30)
			n := rng.Intn(size) + 1
			_ = p.Occupy(from, to, n) // infeasible ones are skipped internally
		}
		after := rng.Int63n(40)
		dur := rng.Int63n(20) + 1
		nodes := rng.Intn(size) + 1
		s, ok := p.EarliestFit(after, dur, nodes)
		if !ok {
			return false // full capacity returns eventually; must fit
		}
		if s < after {
			return false
		}
		if !feasible(p, s, dur, nodes) {
			return false
		}
		// Minimality: every candidate start in [after, s) must fail.
		for c := after; c < s; c++ {
			if feasible(p, c, dur, nodes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOccupyAtEarliestFitSucceeds confirms the find-then-reserve pair
// used by every reservation-based scheduler never fails.
func TestQuickOccupyAtEarliestFitSucceeds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 32
		p := New(0, size, size)
		for i := 0; i < 30; i++ {
			dur := rng.Int63n(50) + 1
			nodes := rng.Intn(size) + 1
			after := rng.Int63n(100)
			s, ok := p.EarliestFit(after, dur, nodes)
			if !ok {
				return false
			}
			if err := p.Occupy(s, s+dur, nodes); err != nil {
				return false
			}
		}
		return p.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEarliestFitBeforeAgrees pins EarliestFitBefore to its spec: it
// returns exactly EarliestFit's answer when that answer starts below the
// limit, and no fit otherwise.
func TestQuickEarliestFitBeforeAgrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 32
		p := New(0, size, size)
		for i := 0; i < 25; i++ {
			from := rng.Int63n(500)
			_ = p.Occupy(from, from+1+rng.Int63n(100), rng.Intn(size)+1)
		}
		for i := 0; i < 50; i++ {
			after := rng.Int63n(600)
			limit := after + rng.Int63n(200) - 20 // sometimes <= after
			dur := rng.Int63n(150) + 1
			nodes := rng.Intn(size) + 1
			s, ok := p.EarliestFit(after, dur, nodes)
			bs, bok := p.EarliestFitBefore(after, limit, dur, nodes)
			if ok && s < limit {
				if !bok || bs != s {
					return false
				}
			} else if bok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
