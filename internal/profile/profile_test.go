package profile

import (
	"testing"
)

func TestNewFullCapacity(t *testing.T) {
	p := New(0, 100, 100)
	if p.FreeAt(0) != 100 || p.FreeAt(1<<40) != 100 {
		t.Fatal("fresh profile should be full everywhere")
	}
	if p.SteadyFree() != 100 {
		t.Fatal("steady capacity wrong")
	}
}

func TestOccupyAndFreeAt(t *testing.T) {
	p := New(0, 100, 100)
	if err := p.Occupy(10, 20, 30); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    int64
		want int
	}{
		{0, 100}, {9, 100}, {10, 70}, {15, 70}, {19, 70}, {20, 100}, {100, 100},
	}
	for _, tc := range cases {
		if got := p.FreeAt(tc.t); got != tc.want {
			t.Errorf("FreeAt(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOccupyOverlapping(t *testing.T) {
	p := New(0, 10, 10)
	if err := p.Occupy(0, 10, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Occupy(5, 15, 4); err != nil {
		t.Fatal(err)
	}
	if got := p.FreeAt(7); got != 2 {
		t.Fatalf("FreeAt(7) = %d, want 2", got)
	}
	if got := p.FreeAt(12); got != 6 {
		t.Fatalf("FreeAt(12) = %d, want 6", got)
	}
}

func TestOccupyRejectsOverflow(t *testing.T) {
	p := New(0, 10, 10)
	if err := p.Occupy(0, 10, 8); err != nil {
		t.Fatal(err)
	}
	if err := p.Occupy(5, 6, 3); err == nil {
		t.Fatal("overcommit accepted")
	}
	// The failed occupy must not have modified anything.
	if got := p.FreeAt(5); got != 2 {
		t.Fatalf("failed occupy mutated profile: FreeAt(5) = %d", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOccupyRejectsBadIntervals(t *testing.T) {
	p := New(100, 10, 10)
	if err := p.Occupy(50, 60, 1); err == nil {
		t.Error("interval before origin accepted")
	}
	if err := p.Occupy(200, 200, 1); err == nil {
		t.Error("empty interval accepted")
	}
	if err := p.Occupy(300, 200, 1); err == nil {
		t.Error("inverted interval accepted")
	}
}

func TestReleaseRestores(t *testing.T) {
	p := New(0, 10, 10)
	if err := p.Occupy(10, 20, 6); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(10, 20, 6); err != nil {
		t.Fatal(err)
	}
	times, free := p.Breakpoints()
	if len(times) != 1 || free[0] != 10 {
		t.Fatalf("release did not coalesce back: times=%v free=%v", times, free)
	}
}

func TestReleaseRejectsExceedingSize(t *testing.T) {
	p := New(0, 10, 10)
	if err := p.Release(5, 10, 1); err == nil {
		t.Fatal("release beyond system size accepted")
	}
}

func TestEarliestFitImmediate(t *testing.T) {
	p := New(0, 10, 10)
	s, ok := p.EarliestFit(0, 100, 10)
	if !ok || s != 0 {
		t.Fatalf("EarliestFit = %d,%v want 0,true", s, ok)
	}
}

func TestEarliestFitAfterRelease(t *testing.T) {
	p := New(0, 10, 10)
	if err := p.Occupy(0, 50, 8); err != nil {
		t.Fatal(err)
	}
	// 5 nodes for 10s: only 2 free until t=50.
	s, ok := p.EarliestFit(0, 10, 5)
	if !ok || s != 50 {
		t.Fatalf("EarliestFit = %d,%v want 50,true", s, ok)
	}
}

func TestEarliestFitUsesHole(t *testing.T) {
	p := New(0, 10, 10)
	if err := p.Occupy(0, 10, 8); err != nil {
		t.Fatal(err)
	}
	if err := p.Occupy(30, 60, 8); err != nil {
		t.Fatal(err)
	}
	// A 5-node 20s job fits exactly in the [10,30) hole.
	s, ok := p.EarliestFit(0, 20, 5)
	if !ok || s != 10 {
		t.Fatalf("EarliestFit = %d,%v want 10,true", s, ok)
	}
	// A 5-node 25s job does not fit the hole; it must wait until t=60.
	s, ok = p.EarliestFit(0, 25, 5)
	if !ok || s != 60 {
		t.Fatalf("EarliestFit = %d,%v want 60,true", s, ok)
	}
}

func TestEarliestFitRespectsAfter(t *testing.T) {
	p := New(0, 10, 10)
	s, ok := p.EarliestFit(25, 5, 3)
	if !ok || s != 25 {
		t.Fatalf("EarliestFit = %d,%v want 25,true", s, ok)
	}
}

func TestEarliestFitTooWide(t *testing.T) {
	p := New(0, 10, 10)
	if _, ok := p.EarliestFit(0, 5, 11); ok {
		t.Fatal("fit wider than the system accepted")
	}
}

func TestEarliestFitZeroDuration(t *testing.T) {
	p := New(0, 10, 10)
	s, ok := p.EarliestFit(5, 0, 3)
	if !ok || s != 5 {
		t.Fatalf("zero duration fit = %d,%v", s, ok)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := New(0, 10, 10)
	if err := p.Occupy(0, 10, 5); err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	if err := q.Occupy(0, 10, 5); err != nil {
		t.Fatal(err)
	}
	if p.FreeAt(5) != 5 {
		t.Fatal("clone mutation leaked into original")
	}
	if q.FreeAt(5) != 0 {
		t.Fatal("clone did not record its own occupation")
	}
}

func TestCoalesceMergesAdjacentEqualCapacity(t *testing.T) {
	p := New(0, 10, 10)
	if err := p.Occupy(10, 20, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Occupy(20, 30, 3); err != nil {
		t.Fatal(err)
	}
	times, _ := p.Breakpoints()
	// Expect breakpoints at 0, 10, 30 only (20 coalesced away).
	if len(times) != 3 {
		t.Fatalf("breakpoints = %v, want 3 entries", times)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResetReusesBackingArray(t *testing.T) {
	p := New(0, 10, 10)
	if err := p.Occupy(5, 20, 4); err != nil {
		t.Fatal(err)
	}
	p.Reset(100, 8, 16)
	if p.Size() != 16 || p.Origin() != 100 {
		t.Fatalf("reset profile: size=%d origin=%d", p.Size(), p.Origin())
	}
	if got := p.FreeAt(100); got != 8 {
		t.Fatalf("free at origin = %d, want 8", got)
	}
	if got := p.SteadyFree(); got != 16 {
		t.Fatalf("steady free = %d, want 16 (capacity returns to size)", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reset to full capacity drops the horizon breakpoint.
	p.Reset(0, 12, 12)
	if times, _ := p.Breakpoints(); len(times) != 1 {
		t.Fatalf("full-capacity reset kept %d breakpoints", len(times))
	}
}

func TestTrimBeforeShedsDeadHistory(t *testing.T) {
	p := New(0, 100, 100)
	// Lay down enough disjoint past rectangles to exceed the compaction
	// slack, then trim at a later instant.
	for i := int64(0); i < 50; i++ {
		if err := p.Occupy(i*10, i*10+5, int(i%7)+1); err != nil {
			t.Fatal(err)
		}
	}
	trimAt := int64(497)
	wantAt := map[int64]int{trimAt: p.FreeAt(trimAt), 1000: p.FreeAt(1000), 505: p.FreeAt(505)}
	before := len(p.bps)
	p.TrimBefore(trimAt)
	if len(p.bps) >= before {
		t.Fatalf("trim kept %d of %d breakpoints", len(p.bps), before)
	}
	if p.Origin() != trimAt {
		t.Fatalf("origin = %d, want %d", p.Origin(), trimAt)
	}
	for at, want := range wantAt {
		if got := p.FreeAt(at); got != want {
			t.Fatalf("FreeAt(%d) = %d after trim, want %d", at, got, want)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Mutations at and after the new origin still work.
	if err := p.Occupy(trimAt, trimAt+10, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTrimBeforeSmallHistoryIsNoOp(t *testing.T) {
	p := New(0, 10, 10)
	if err := p.Occupy(5, 15, 3); err != nil {
		t.Fatal(err)
	}
	before := append([]breakpoint(nil), p.bps...)
	p.TrimBefore(100) // only a couple of dead breakpoints: below the slack
	if len(p.bps) != len(before) {
		t.Fatalf("no-op trim changed the timeline: %v -> %v", before, p.bps)
	}
}

func TestCopyFromMatchesClone(t *testing.T) {
	src := New(0, 32, 32)
	for _, iv := range []struct {
		from, to int64
		n        int
	}{{0, 100, 8}, {50, 200, 4}, {150, 400, 16}} {
		if err := src.Occupy(iv.from, iv.to, iv.n); err != nil {
			t.Fatal(err)
		}
	}
	dst := New(0, 1, 1) // arbitrary prior state; CopyFrom must replace it
	dst.CopyFrom(src)
	st, sf := src.Breakpoints()
	dt, df := dst.Breakpoints()
	if len(st) != len(dt) {
		t.Fatalf("breakpoint counts differ: %d vs %d", len(st), len(dt))
	}
	for i := range st {
		if st[i] != dt[i] || sf[i] != df[i] {
			t.Fatalf("breakpoint %d differs: (%d,%d) vs (%d,%d)", i, st[i], sf[i], dt[i], df[i])
		}
	}
	// The copy is independent: mutating it leaves the source untouched.
	if err := dst.Occupy(0, 50, 20); err != nil {
		t.Fatal(err)
	}
	if src.FreeAt(0) != 24 {
		t.Fatalf("source mutated through copy: free at 0 = %d", src.FreeAt(0))
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEarliestFitBefore(t *testing.T) {
	p := New(0, 10, 10)
	// Occupy [0,100) fully except a 4-node hole on [20,40).
	if err := p.Occupy(0, 100, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(20, 40, 4); err != nil {
		t.Fatal(err)
	}

	// A 4x10 rectangle fits at 20; the bound at 40 admits it, a bound at 20
	// excludes it.
	if s, ok := p.EarliestFitBefore(0, 40, 10, 4); !ok || s != 20 {
		t.Fatalf("got (%d,%v), want (20,true)", s, ok)
	}
	if _, ok := p.EarliestFitBefore(0, 20, 10, 4); ok {
		t.Fatal("limit 20 must exclude the start at 20")
	}
	// The fitted rectangle may extend past the limit: a 4x30 job starting at
	// 20 runs to 50, beyond limit 21 — still admitted (only the start is
	// bounded) if capacity holds, which it does not here (hole ends at 40).
	if _, ok := p.EarliestFitBefore(0, 21, 30, 4); ok {
		t.Fatal("4x30 does not fit at 20 (hole ends at 40)")
	}
	if s, ok := p.EarliestFitBefore(0, 21, 20, 4); !ok || s != 20 {
		t.Fatalf("4x20 spanning past the limit: got (%d,%v), want (20,true)", s, ok)
	}
	// Too wide for the hole: the first fit is at 100, past any bound below.
	if _, ok := p.EarliestFitBefore(0, 99, 10, 5); ok {
		t.Fatal("5 nodes never free before 100")
	}
	// Degenerate bounds.
	if _, ok := p.EarliestFitBefore(50, 50, 1, 1); ok {
		t.Fatal("empty window [50,50) admitted a fit")
	}
	if _, ok := p.EarliestFitBefore(0, 5, 1, 11); ok {
		t.Fatal("wider than the system admitted a fit")
	}
}
