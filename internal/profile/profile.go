// Package profile implements the capacity-over-time timeline ("2D chart" in
// the paper's terminology) that backs every reservation-based scheduler:
// conservative backfilling, dynamic-reservation conservative backfilling and
// the aggressive head-of-queue reservation of the starvation queue.
//
// A Profile tracks the number of free nodes as a step function of time via a
// sorted slice of breakpoints. Occupying an interval subtracts capacity;
// releasing adds it back. EarliestFit finds the first start time at which a
// job's rectangle fits entirely, which is exactly the "hole" search of
// backfilling.
package profile

import (
	"fmt"
	"sort"
)

// Horizon is the pseudo-infinite end of time for open-ended queries. All
// simulation times are far below it.
const Horizon = int64(1) << 60

type breakpoint struct {
	t    int64 // free applies on [t, next.t)
	free int
}

// Profile is a free-capacity step function over [origin, +inf). The zero
// value is not usable; construct with New.
type Profile struct {
	size int // system size; free capacity beyond the last breakpoint
	bps  []breakpoint
}

// New creates a profile with `free` nodes available from origin onwards out
// of a system of `size` nodes. Typically free == size and running jobs are
// then added with Occupy.
func New(origin int64, free, size int) *Profile {
	if free > size {
		free = size
	}
	p := &Profile{size: size}
	p.bps = append(p.bps, breakpoint{t: origin, free: free})
	if free != size {
		// Unless told otherwise, capacity returns to full at the horizon;
		// callers model running jobs explicitly instead of relying on this.
		p.bps = append(p.bps, breakpoint{t: Horizon, free: size})
	}
	return p
}

// Reset reinitializes the profile in place to `free` nodes available from
// origin onwards out of `size`, reusing the breakpoint backing array. It is
// the allocation-free equivalent of New for hot paths that rebuild a profile
// every scheduling event.
func (p *Profile) Reset(origin int64, free, size int) {
	if free > size {
		free = size
	}
	p.size = size
	p.bps = append(p.bps[:0], breakpoint{t: origin, free: free})
	if free != size {
		p.bps = append(p.bps, breakpoint{t: Horizon, free: size})
	}
}

// CopyFrom makes p a deep copy of src, reusing p's breakpoint backing array.
// The allocation-free equivalent of src.Clone() for reused scratch profiles.
func (p *Profile) CopyFrom(src *Profile) {
	p.size = src.size
	p.bps = append(p.bps[:0], src.bps...)
}

// TrimBefore advances the profile's origin to t, dropping the breakpoints
// strictly before the segment containing t. Capacity at every time >= t is
// unchanged; only queries at or after the new origin remain meaningful. A
// long-lived profile (the conservative engine's revalidation cache) calls
// this to shed dead history, which would otherwise grow every structural
// mutation's insertion cost without bound. Times before the current origin
// are a no-op, and the compaction only runs once enough dead breakpoints
// accumulate to pay for the copy.
func (p *Profile) TrimBefore(t int64) {
	const deadSlack = 32
	i := sort.Search(len(p.bps), func(i int) bool { return p.bps[i].t > t })
	// The segment containing t starts at i-1; everything before it is dead.
	if i-1 < deadSlack {
		return
	}
	kept := copy(p.bps, p.bps[i-1:])
	p.bps = p.bps[:kept]
	if p.bps[0].t < t {
		p.bps[0].t = t
	}
}

// Size returns the system size.
func (p *Profile) Size() int { return p.size }

// Origin returns the first breakpoint time.
func (p *Profile) Origin() int64 { return p.bps[0].t }

// Clone returns a deep copy.
func (p *Profile) Clone() *Profile {
	q := &Profile{size: p.size}
	q.bps = append([]breakpoint(nil), p.bps...)
	return q
}

// FreeAt returns the free capacity at time t. Times before the origin report
// the origin's capacity.
func (p *Profile) FreeAt(t int64) int {
	i := sort.Search(len(p.bps), func(i int) bool { return p.bps[i].t > t })
	if i == 0 {
		return p.bps[0].free
	}
	return p.bps[i-1].free
}

// ensureBreak makes sure a breakpoint exists exactly at t and returns its
// index. t must be >= origin.
func (p *Profile) ensureBreak(t int64) int {
	i := sort.Search(len(p.bps), func(i int) bool { return p.bps[i].t >= t })
	if i < len(p.bps) && p.bps[i].t == t {
		return i
	}
	// Insert a breakpoint carrying the capacity of the segment containing t.
	var free int
	if i == 0 {
		free = p.bps[0].free
	} else {
		free = p.bps[i-1].free
	}
	p.bps = append(p.bps, breakpoint{})
	copy(p.bps[i+1:], p.bps[i:])
	p.bps[i] = breakpoint{t: t, free: free}
	return i
}

// Occupy subtracts nodes of capacity on [from, to). It returns an error if
// the interval is empty/inverted, starts before the origin, or would drive
// capacity negative anywhere (callers reserve only into verified holes).
func (p *Profile) Occupy(from, to int64, nodes int) error {
	return p.adjust(from, to, -nodes)
}

// Release adds nodes of capacity back on [from, to); the inverse of Occupy.
// Capacity may not exceed the system size anywhere.
func (p *Profile) Release(from, to int64, nodes int) error {
	return p.adjust(from, to, +nodes)
}

func (p *Profile) adjust(from, to int64, delta int) error {
	if to <= from {
		return fmt.Errorf("profile: empty interval [%d,%d)", from, to)
	}
	if from < p.Origin() {
		return fmt.Errorf("profile: interval start %d before origin %d", from, p.Origin())
	}
	if delta == 0 {
		return nil
	}
	i := p.ensureBreak(from)
	j := p.ensureBreak(to)
	for k := i; k < j; k++ {
		nf := p.bps[k].free + delta
		if nf < 0 || nf > p.size {
			at := p.bps[k].t
			// Drop the breakpoints ensureBreak may have inserted: they are
			// redundant (equal capacities) and the profile must be
			// structurally unchanged after a rejected adjustment.
			p.coalesce()
			if nf < 0 {
				return fmt.Errorf("profile: capacity would go negative (%d) at t=%d", nf, at)
			}
			return fmt.Errorf("profile: capacity %d would exceed size %d at t=%d", nf, p.size, at)
		}
	}
	for k := i; k < j; k++ {
		p.bps[k].free += delta
	}
	p.coalesce()
	return nil
}

// coalesce merges adjacent breakpoints with equal capacity.
func (p *Profile) coalesce() {
	out := p.bps[:1]
	for _, bp := range p.bps[1:] {
		if bp.free == out[len(out)-1].free {
			continue
		}
		out = append(out, bp)
	}
	p.bps = out
}

// EarliestFit returns the earliest time s >= after at which `nodes` nodes
// are continuously free for `dur` seconds. It always succeeds because
// capacity returns to a steady level after the final breakpoint; if that
// steady level is below nodes, ok is false.
func (p *Profile) EarliestFit(after, dur int64, nodes int) (s int64, ok bool) {
	if nodes <= 0 || dur <= 0 {
		return after, nodes <= p.size
	}
	if nodes > p.size {
		return 0, false
	}
	if after < p.Origin() {
		after = p.Origin()
	}
	// Candidate start s; scan forward, restarting s at the first breakpoint
	// that violates the capacity requirement within [s, s+dur).
	i := sort.Search(len(p.bps), func(i int) bool { return p.bps[i].t > after })
	if i > 0 {
		i--
	}
	s = after
	if p.bps[i].t > s {
		s = p.bps[i].t
	}
	for {
		// Check capacity over [s, s+dur).
		end := s + dur
		k := i
		// Advance k to the segment containing s.
		for k+1 < len(p.bps) && p.bps[k+1].t <= s {
			k++
		}
		violated := false
		for {
			if p.bps[k].free < nodes {
				// Restart after this segment.
				if k+1 >= len(p.bps) {
					return 0, false // steady tail lacks capacity
				}
				s = p.bps[k+1].t
				i = k + 1
				violated = true
				break
			}
			if k+1 >= len(p.bps) || p.bps[k+1].t >= end {
				break // window fully checked
			}
			k++
		}
		if !violated {
			return s, true
		}
	}
}

// EarliestFitBefore is EarliestFit restricted to candidate starts strictly
// below limit: it returns the earliest s in [after, limit) at which the
// rectangle fits (the fit itself may extend past limit), or ok=false when
// no such start exists. Bounding the start lets the conservative engine's
// hole-aware partial rebuild probe just the released window [now, holeEnd)
// instead of scanning to a job's standing reservation, without ever walking
// breakpoints past the window.
func (p *Profile) EarliestFitBefore(after, limit, dur int64, nodes int) (s int64, ok bool) {
	if after >= limit {
		return 0, false
	}
	if nodes <= 0 || dur <= 0 {
		return after, nodes <= p.size
	}
	if nodes > p.size {
		return 0, false
	}
	if after < p.Origin() {
		after = p.Origin()
		if after >= limit {
			return 0, false
		}
	}
	i := sort.Search(len(p.bps), func(i int) bool { return p.bps[i].t > after })
	if i > 0 {
		i--
	}
	s = after
	if p.bps[i].t > s {
		s = p.bps[i].t
	}
	for s < limit {
		end := s + dur
		k := i
		for k+1 < len(p.bps) && p.bps[k+1].t <= s {
			k++
		}
		violated := false
		for {
			if p.bps[k].free < nodes {
				if k+1 >= len(p.bps) {
					return 0, false // steady tail lacks capacity
				}
				s = p.bps[k+1].t
				i = k + 1
				violated = true
				break
			}
			if k+1 >= len(p.bps) || p.bps[k+1].t >= end {
				break // window fully checked
			}
			k++
		}
		if !violated {
			return s, true
		}
	}
	return 0, false
}

// SteadyFree returns the capacity after the last breakpoint.
func (p *Profile) SteadyFree() int { return p.bps[len(p.bps)-1].free }

// Breakpoints returns a copy of the timeline as (time, free) pairs, for
// tests and diagnostics.
func (p *Profile) Breakpoints() (times []int64, free []int) {
	for _, bp := range p.bps {
		times = append(times, bp.t)
		free = append(free, bp.free)
	}
	return
}

// CheckInvariants verifies structural invariants (sorted strictly increasing
// times, capacities within [0,size], coalesced); tests call it after
// mutation sequences.
func (p *Profile) CheckInvariants() error {
	if len(p.bps) == 0 {
		return fmt.Errorf("profile: no breakpoints")
	}
	for i, bp := range p.bps {
		if bp.free < 0 || bp.free > p.size {
			return fmt.Errorf("profile: capacity %d out of range at index %d", bp.free, i)
		}
		if i > 0 {
			if bp.t <= p.bps[i-1].t {
				return fmt.Errorf("profile: non-increasing time at index %d", i)
			}
			if bp.free == p.bps[i-1].free {
				return fmt.Errorf("profile: uncoalesced equal capacities at index %d", i)
			}
		}
	}
	return nil
}
