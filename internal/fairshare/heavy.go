package fairshare

import "sort"

// HeavyClassifier decides whether a user counts as "heavy"/"unfair" for the
// purpose of barring them from the starvation queue (paper §5.2). The paper
// does not pin down the rule, so three classifiers are provided; AboveMean
// is the default used by the *.fair policies.
type HeavyClassifier interface {
	// IsHeavy reports whether user is heavy given the tracker state and the
	// set of users who currently have live (queued or running) work.
	IsHeavy(t *Tracker, user int, liveUsers []int) bool
	Name() string
}

// AboveMean marks a user heavy when their decayed usage exceeds Factor
// times the mean decayed usage over live users. Factor <= 0 means 1.0.
type AboveMean struct{ Factor float64 }

// Name implements HeavyClassifier.
func (a AboveMean) Name() string { return "above-mean" }

// IsHeavy implements HeavyClassifier.
func (a AboveMean) IsHeavy(t *Tracker, user int, liveUsers []int) bool {
	f := a.Factor
	if f <= 0 {
		f = 1.0
	}
	if len(liveUsers) == 0 {
		return false
	}
	var sum float64
	for _, u := range liveUsers {
		sum += t.Usage(u)
	}
	mean := sum / float64(len(liveUsers))
	if mean <= 0 {
		return false
	}
	return t.Usage(user) > f*mean
}

// AboveQuantile marks a user heavy when their decayed usage is above the
// q-th quantile (0..1) of live users' usages. Defaults to the 0.75
// quantile when Q is outside (0,1).
type AboveQuantile struct{ Q float64 }

// Name implements HeavyClassifier.
func (a AboveQuantile) Name() string { return "above-quantile" }

// IsHeavy implements HeavyClassifier.
func (a AboveQuantile) IsHeavy(t *Tracker, user int, liveUsers []int) bool {
	q := a.Q
	if q <= 0 || q >= 1 {
		q = 0.75
	}
	if len(liveUsers) == 0 {
		return false
	}
	us := make([]float64, 0, len(liveUsers))
	for _, u := range liveUsers {
		us = append(us, t.Usage(u))
	}
	sort.Float64s(us)
	idx := int(q * float64(len(us)-1))
	threshold := us[idx]
	if threshold <= 0 {
		return false
	}
	return t.Usage(user) > threshold
}

// AboveAbsolute marks a user heavy when their decayed usage exceeds a fixed
// processor-second threshold.
type AboveAbsolute struct{ ProcSeconds float64 }

// Name implements HeavyClassifier.
func (a AboveAbsolute) Name() string { return "above-absolute" }

// IsHeavy implements HeavyClassifier.
func (a AboveAbsolute) IsHeavy(t *Tracker, user int, _ []int) bool {
	return t.Usage(user) > a.ProcSeconds
}

// Never marks no one heavy (the *.all policies).
type Never struct{}

// Name implements HeavyClassifier.
func (Never) Name() string { return "never" }

// IsHeavy implements HeavyClassifier.
func (Never) IsHeavy(*Tracker, int, []int) bool { return false }
