// Package fairshare implements the Sandia "fairshare" queuing priority: a
// per-user historical sum of processor-seconds that decays on a regular
// basis (every 24 hours on CPlant). Users with lower decayed usage get
// higher queue priority, so users who have not recently used the machine run
// first.
package fairshare

import (
	"fmt"
	"sort"

	"fairsched/internal/job"
	"fairsched/internal/userdex"
)

// Config parameterizes the tracker. The paper fixes the decay interval at 24
// hours; the decay factor is not published, so it is configurable (default
// 0.5, the conventional half-life-per-day fairshare).
type Config struct {
	DecayFactor   float64 // usage multiplier applied every interval, in (0,1]
	DecayInterval int64   // seconds between decays; 0 means 24h
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{DecayFactor: 0.5, DecayInterval: 24 * 3600}
}

func (c Config) withDefaults() Config {
	if c.DecayInterval <= 0 {
		c.DecayInterval = 24 * 3600
	}
	if c.DecayFactor <= 0 || c.DecayFactor > 1 {
		c.DecayFactor = 0.5
	}
	return c
}

// EpochFor converts a trace's wall-clock origin into the trace-relative
// fairshare epoch: decay fires at fixed wall-clock instants (Unix times
// k·interval — midnight UTC for the 24h default), so a trace starting at
// unixStart sees its first boundary interval-(unixStart mod interval)
// seconds in, not interval seconds in. The returned epoch lies in
// (-interval, 0]; feed it to NewTracker (or sim.Config.FairshareEpoch) so
// boundaries land where the real scheduler's did. A zero or negative
// unixStart (origin unknown) yields 0, the seed behaviour.
func EpochFor(unixStart, interval int64) int64 {
	if interval <= 0 {
		interval = 24 * 3600
	}
	if unixStart <= 0 {
		return 0
	}
	return -(unixStart % interval)
}

// Usage is one running job's contribution stream: Nodes processor-seconds
// accrue per second of wall time for user User.
type Usage struct {
	User  int
	Nodes int
}

// Tracker accumulates decayed processor-seconds per user. The simulator
// calls Accrue for every interval between events with the set of running
// jobs during that interval; Accrue splits the interval at decay boundaries
// so usage earned before a boundary decays at it.
//
// Decay is applied lazily: a boundary crossing only bumps a generation
// counter, and each user's value is settled to the current generation on
// first read or charge (the per-boundary multiplications are replayed one
// at a time, so the floating-point results are bit-identical to an eager
// sweep — the measurement plane's equivalence bar, DESIGN.md §10). This
// removes the full-map decay sweep from the event loop's profile.
type Tracker struct {
	cfg   Config
	epoch int64 // decay boundaries are epoch + k*interval
	now   int64 // accrual frontier
	// usage is the per-user ledger on the paged user index: at population
	// scale (10^5..10^6 users) the dense pages replace a hash probe per
	// settle/charge with two array indexes, and iteration comes out in
	// ascending user order for free (DESIGN.md §15).
	usage userdex.Map[decayedUsage]
	gen   int64 // decay generation: boundaries crossed so far
	// perUser, touched and aggBuf are Accrue's reused aggregation scratch
	// (per-interval node counts): Accrue runs once per simulation event, and
	// allocating them anew each time dominated its profile. touched lists
	// the users present in perUser (first-appearance order), so resetting
	// the scratch is O(users running), never a page sweep.
	perUser userdex.Map[int]
	touched []int
	aggBuf  []Usage
}

// decayedUsage is one user's processor-seconds, settled up to decay
// generation gen.
type decayedUsage struct {
	v   float64
	gen int64
}

// NewTracker creates a tracker whose decay boundaries align to epoch.
func NewTracker(cfg Config, epoch int64) *Tracker {
	return &Tracker{
		cfg:   cfg.withDefaults(),
		epoch: epoch,
		now:   epoch,
	}
}

// Now returns the accrual frontier (the time up to which usage is settled).
func (t *Tracker) Now() int64 { return t.now }

// Usage returns user's decayed processor-seconds as of the accrual frontier.
func (t *Tracker) Usage(user int) float64 {
	v, _ := t.settled(user)
	return v
}

// settledValue replays e's pending per-boundary decays without touching the
// ledger. ok is false when the value vanishes — exactly when the eager sweep
// would have dropped it (the first boundary pushing it under the threshold).
func (t *Tracker) settledValue(e decayedUsage) (float64, bool) {
	v := e.v
	for g := e.gen; g < t.gen; g++ {
		v *= t.cfg.DecayFactor
		if v < 1e-9 {
			return 0, false
		}
	}
	return v, true
}

// settled returns user's usage settled to the current decay generation,
// replaying any pending per-boundary decays and writing the result back
// (vanishing entries are dropped to keep the index small).
func (t *Tracker) settled(user int) (float64, bool) {
	e, ok := t.usage.Get(user)
	if !ok {
		return 0, false
	}
	if e.gen == t.gen {
		return e.v, true
	}
	v, ok := t.settledValue(e)
	if !ok {
		t.usage.Delete(user)
		return 0, false
	}
	t.usage.Set(user, decayedUsage{v: v, gen: t.gen})
	return v, true
}

// charge settles user to the current generation and adds procSeconds.
func (t *Tracker) charge(user int, procSeconds float64) {
	v, _ := t.settled(user)
	t.usage.Set(user, decayedUsage{v: v + procSeconds, gen: t.gen})
}

// Users returns the ids of all users with recorded usage, sorted.
func (t *Tracker) Users() []int {
	keys := make([]int, 0, t.usage.Len())
	t.usage.Range(func(u int, _ decayedUsage) bool {
		keys = append(keys, u)
		return true
	})
	out := keys[:0]
	for _, u := range keys {
		if _, ok := t.settled(u); ok {
			out = append(out, u)
		}
	}
	sort.Ints(out)
	return out
}

// Accrue advances the frontier from its current position to now, charging
// each stream Nodes proc-seconds per second and applying the decay factor at
// every interval boundary crossed. It is an error to move time backwards.
// Streams may repeat a user; the counts are aggregated into a reused scratch
// map first (callers that already hold aggregated counts should use
// AccrueAggregated and skip that work).
func (t *Tracker) Accrue(now int64, running []Usage) error {
	var perUser []Usage
	if len(running) > 0 {
		for _, u := range running {
			if n, ok := t.perUser.Get(u.User); ok {
				t.perUser.Set(u.User, n+u.Nodes)
			} else {
				t.perUser.Set(u.User, u.Nodes)
				t.touched = append(t.touched, u.User)
			}
		}
		perUser = t.aggBuf[:0]
		for _, user := range t.touched {
			n, _ := t.perUser.Get(user)
			perUser = append(perUser, Usage{User: user, Nodes: n})
			t.perUser.Delete(user)
		}
		t.aggBuf = perUser
		t.touched = t.touched[:0]
	}
	return t.AccrueAggregated(now, perUser)
}

// AccrueAggregated is Accrue for pre-aggregated streams: each user appears
// at most once. The simulator maintains the aggregation incrementally across
// events (one update per start/completion), so the per-event rebuild of the
// per-user counts — which dominated Accrue's profile on deep runs —
// disappears from the hot path. Charging is per-user independent, so the
// slice order does not affect the resulting usage values.
func (t *Tracker) AccrueAggregated(now int64, perUser []Usage) error {
	if now < t.now {
		return fmt.Errorf("fairshare: time moved backwards: %d < %d", now, t.now)
	}
	for t.now < now {
		next := t.nextBoundary(t.now)
		end := now
		atBoundary := false
		if next <= now {
			end = next
			atBoundary = true
		}
		dt := float64(end - t.now)
		if dt > 0 {
			for _, u := range perUser {
				if u.Nodes != 0 {
					t.charge(u.User, float64(u.Nodes)*dt)
				}
			}
		}
		t.now = end
		if atBoundary {
			t.decay()
		}
	}
	return nil
}

// nextBoundary returns the first decay boundary strictly after ts.
func (t *Tracker) nextBoundary(ts int64) int64 {
	k := (ts - t.epoch) / t.cfg.DecayInterval
	b := t.epoch + k*t.cfg.DecayInterval
	for b <= ts {
		b += t.cfg.DecayInterval
	}
	return b
}

// decay crosses one boundary: O(1) — the per-user multiplications are
// replayed lazily by settled.
func (t *Tracker) decay() { t.gen++ }

// NextBoundaryAfter exposes the next decay boundary strictly after ts, so
// the simulator can schedule re-evaluation wake-ups at decay instants.
func (t *Tracker) NextBoundaryAfter(ts int64) int64 { return t.nextBoundary(ts) }

// Charge adds raw (undecayed) processor-seconds to a user immediately. Used
// by tests and by warm-start scenarios.
func (t *Tracker) Charge(user int, procSeconds float64) {
	if procSeconds != 0 {
		t.charge(user, procSeconds)
	}
}

// Less is the fairshare queue order: lower decayed usage first, then earlier
// submission, then lower job id. It is a strict weak ordering for distinct
// jobs.
func (t *Tracker) Less(a, b *job.Job) bool {
	ua, _ := t.settled(a.User)
	ub, _ := t.settled(b.User)
	if ua != ub {
		return ua < ub
	}
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

// SortJobs sorts jobs into fairshare priority order (stable, deterministic).
func (t *Tracker) SortJobs(jobs []*job.Job) {
	sort.SliceStable(jobs, func(i, k int) bool { return t.Less(jobs[i], jobs[k]) })
}

// Snapshot returns a copy of the per-user usage map (for metric engines that
// must not observe later mutation).
func (t *Tracker) Snapshot() map[int]float64 {
	out := make(map[int]float64, t.usage.Len())
	for _, e := range t.AppendSnapshot(nil) {
		out[e.User] = e.Usage
	}
	return out
}

// UserUsage is one user's settled decayed usage, as rendered by
// AppendSnapshot.
type UserUsage struct {
	User  int
	Usage float64
}

// AppendSnapshot appends every user's settled usage to buf (reusing its
// capacity) in ascending user order and returns it: the reuse-buffer form
// of Snapshot for render paths that snapshot per cell. The replay is
// read-only — the ledger is not settled in place — so with enough capacity
// a call allocates nothing, whatever the population size.
func (t *Tracker) AppendSnapshot(buf []UserUsage) []UserUsage {
	buf = buf[:0]
	t.usage.Range(func(u int, e decayedUsage) bool {
		if v, ok := t.settledValue(e); ok {
			buf = append(buf, UserUsage{User: u, Usage: v})
		}
		return true
	})
	return buf
}
