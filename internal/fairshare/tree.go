package fairshare

import "strings"

// Tree tracks decayed processor-second usage per queue-tree node, rolled
// up the tree: a leaf's running work accrues to the leaf and every
// ancestor, so sibling subtrees can be compared by usage at any level.
// It reuses the per-user Tracker (same lazy decay, same bit-identical
// boundary replay) keyed by interned node ids.
type Tree struct {
	t      *Tracker
	paths  []string       // node id -> path
	idx    map[string]int // path -> node id
	parent []int          // node id -> parent id, -1 at top level
	buf    []Usage        // Accrue's ancestor-expansion scratch
}

// NewTree creates a tree whose decay boundaries align to epoch, exactly
// as NewTracker does for users.
func NewTree(cfg Config, epoch int64) *Tree {
	return &Tree{t: NewTracker(cfg, epoch), idx: make(map[string]int)}
}

// NodeFor interns a queue path (and its ancestors) and returns its node
// id. Ids are dense and stable for the life of the tree.
func (tr *Tree) NodeFor(path string) int {
	if id, ok := tr.idx[path]; ok {
		return id
	}
	parent := -1
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		parent = tr.NodeFor(path[:i])
	}
	id := len(tr.paths)
	tr.paths = append(tr.paths, path)
	tr.parent = append(tr.parent, parent)
	tr.idx[path] = id
	return id
}

// Parent returns the node's parent id, -1 for top-level nodes.
func (tr *Tree) Parent(node int) int { return tr.parent[node] }

// Path returns the node's queue path.
func (tr *Tree) Path(node int) string { return tr.paths[node] }

// Accrue advances the tree's frontier to now, charging each leaf stream's
// processor-seconds to the leaf node and every ancestor (the roll-up
// invariant: a node's usage is the sum of its subtree's accruals, decayed
// identically). Streams use Usage with User holding a node id.
func (tr *Tree) Accrue(now int64, leaves []Usage) error {
	tr.buf = tr.buf[:0]
	for _, u := range leaves {
		if u.Nodes == 0 {
			continue
		}
		for n := u.User; n >= 0; n = tr.parent[n] {
			tr.buf = append(tr.buf, Usage{User: n, Nodes: u.Nodes})
		}
	}
	return tr.t.Accrue(now, tr.buf)
}

// Usage returns the node's decayed processor-seconds as of the frontier.
func (tr *Tree) Usage(node int) float64 { return tr.t.Usage(node) }

// Now returns the accrual frontier.
func (tr *Tree) Now() int64 { return tr.t.Now() }
