package fairshare

import (
	"math/rand"
	"testing"
)

// refTracker is the pre-userdex reference implementation: the identical
// lazy-decay ledger on a plain Go map. The paged-index Tracker is a pure
// layout change, so every observable value must match it bit for bit
// (DESIGN.md §10, §15).
type refTracker struct {
	cfg   Config
	epoch int64
	now   int64
	usage map[int]decayedUsage
	gen   int64
}

func newRefTracker(cfg Config, epoch int64) *refTracker {
	return &refTracker{cfg: cfg.withDefaults(), epoch: epoch, now: epoch, usage: make(map[int]decayedUsage)}
}

func (t *refTracker) settled(user int) (float64, bool) {
	e, ok := t.usage[user]
	if !ok {
		return 0, false
	}
	v := e.v
	for g := e.gen; g < t.gen; g++ {
		v *= t.cfg.DecayFactor
		if v < 1e-9 {
			delete(t.usage, user)
			return 0, false
		}
	}
	t.usage[user] = decayedUsage{v: v, gen: t.gen}
	return v, true
}

func (t *refTracker) charge(user int, procSeconds float64) {
	v, _ := t.settled(user)
	t.usage[user] = decayedUsage{v: v + procSeconds, gen: t.gen}
}

func (t *refTracker) accrue(now int64, running []Usage) {
	perUser := make(map[int]int)
	for _, u := range running {
		perUser[u.User] += u.Nodes
	}
	for t.now < now {
		k := (t.now - t.epoch) / t.cfg.DecayInterval
		next := t.epoch + k*t.cfg.DecayInterval
		for next <= t.now {
			next += t.cfg.DecayInterval
		}
		end := now
		atBoundary := false
		if next <= now {
			end = next
			atBoundary = true
		}
		dt := float64(end - t.now)
		if dt > 0 {
			for user, n := range perUser {
				if n != 0 {
					t.charge(user, float64(n)*dt)
				}
			}
		}
		t.now = end
		if atBoundary {
			t.gen++
		}
	}
}

func (t *refTracker) snapshot() map[int]float64 {
	out := make(map[int]float64, len(t.usage))
	for u := range t.usage {
		if v, ok := t.settled(u); ok {
			out[u] = v
		}
	}
	return out
}

// TestTrackerMatchesMapReference drives the paged-index Tracker and the
// map-based reference through identical random op sequences — 30 seeds
// across three contention shapes, mirroring the scheduler cache suite —
// and requires bit-identical usage at every read and snapshot. "split"
// exercises the sparse fallback with user ids beyond the dense range.
func TestTrackerMatchesMapReference(t *testing.T) {
	shapes := []struct {
		name     string
		users    int
		sparseID bool // mix in ids outside the dense page range
		maxStep  int64
	}{
		{"calm", 8, false, 4 * 3600},
		{"contended", 300, false, 30 * 60},
		{"split", 50, true, 12 * 3600},
	}
	for _, sh := range shapes {
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed*131 + int64(sh.users)))
			cfg := Config{DecayFactor: 0.5, DecayInterval: 24 * 3600}
			if seed%3 == 1 {
				cfg = Config{DecayFactor: 0.9, DecayInterval: 3600}
			}
			epoch := int64(0)
			if seed%2 == 1 {
				epoch = -rng.Int63n(cfg.DecayInterval)
			}
			tr := NewTracker(cfg, epoch)
			ref := newRefTracker(cfg, epoch)
			userID := func() int {
				u := rng.Intn(sh.users)
				if sh.sparseID && u%5 == 0 {
					return 1<<27 + u // beyond DenseCap: sparse fallback
				}
				return u * 37
			}
			now := epoch
			for op := 0; op < 150; op++ {
				switch rng.Intn(5) {
				case 0: // direct charge
					u := userID()
					ps := float64(rng.Intn(100000)) / 3
					tr.Charge(u, ps)
					ref.charge(u, ps)
				case 1, 2: // accrue with repeated-user streams
					var running []Usage
					for i := rng.Intn(12); i > 0; i-- {
						running = append(running, Usage{User: userID(), Nodes: rng.Intn(64) + 1})
					}
					now += rng.Int63n(sh.maxStep) + 1
					if err := tr.Accrue(now, running); err != nil {
						t.Fatal(err)
					}
					ref.accrue(now, running)
				case 3: // point read
					u := userID()
					if got, want := tr.Usage(u), func() float64 { v, _ := ref.settled(u); return v }(); got != want {
						t.Fatalf("%s seed %d op %d: Usage(%d) = %v, reference %v", sh.name, seed, op, u, got, want)
					}
				case 4: // full snapshot
					got, want := tr.Snapshot(), ref.snapshot()
					if len(got) != len(want) {
						t.Fatalf("%s seed %d op %d: snapshot has %d users, reference %d", sh.name, seed, op, len(got), len(want))
					}
					for u, v := range want {
						if got[u] != v {
							t.Fatalf("%s seed %d op %d: snapshot[%d] = %v, reference %v", sh.name, seed, op, u, got[u], v)
						}
					}
				}
			}
			// Final settle-everything comparison, including the Users list.
			got, want := tr.Snapshot(), ref.snapshot()
			if len(got) != len(want) {
				t.Fatalf("%s seed %d: final snapshot %d users, reference %d", sh.name, seed, len(got), len(want))
			}
			for u, v := range want {
				if got[u] != v {
					t.Fatalf("%s seed %d: final snapshot[%d] = %v, reference %v", sh.name, seed, u, got[u], v)
				}
			}
			users := tr.Users()
			if len(users) != len(want) {
				t.Fatalf("%s seed %d: Users() has %d entries, snapshot %d", sh.name, seed, len(users), len(want))
			}
			for _, u := range users {
				if _, ok := want[u]; !ok {
					t.Fatalf("%s seed %d: Users() lists %d, absent from reference", sh.name, seed, u)
				}
			}
		}
	}
}

// benchTracker charges n users once: the Snapshot benchmarks' fixture.
func benchTracker(n int) *Tracker {
	tr := NewTracker(DefaultConfig(), 0)
	for u := 0; u < n; u++ {
		tr.Charge(u, float64(u%977)+1)
	}
	return tr
}

func BenchmarkSnapshotMap(b *testing.B) {
	tr := benchTracker(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Snapshot()
	}
}

func BenchmarkAppendSnapshot(b *testing.B) {
	tr := benchTracker(100_000)
	buf := tr.AppendSnapshot(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.AppendSnapshot(buf)
	}
}
