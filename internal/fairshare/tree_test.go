package fairshare

import "testing"

func TestTreeRollUp(t *testing.T) {
	tr := NewTree(Config{DecayFactor: 0.5, DecayInterval: 100}, 0)
	a := tr.NodeFor("org/a")
	b := tr.NodeFor("org/b")
	org := tr.NodeFor("org")
	if tr.Parent(a) != org || tr.Parent(b) != org || tr.Parent(org) != -1 {
		t.Fatal("parent links wrong")
	}
	if tr.Path(a) != "org/a" || tr.Path(org) != "org" {
		t.Fatal("paths wrong")
	}
	// 10 seconds at 4 nodes on a, 2 nodes on b: org accrues the sum.
	if err := tr.Accrue(10, []Usage{{User: a, Nodes: 4}, {User: b, Nodes: 2}}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Usage(a); got != 40 {
		t.Fatalf("a usage = %v, want 40", got)
	}
	if got := tr.Usage(b); got != 20 {
		t.Fatalf("b usage = %v, want 20", got)
	}
	if got := tr.Usage(org); got != 60 {
		t.Fatalf("org usage = %v, want 60", got)
	}
}

// A node's usage decays identically to its leaves' (the lazy boundary
// replay applies per node, so the roll-up invariant survives decay).
func TestTreeDecayMatchesTracker(t *testing.T) {
	cfg := Config{DecayFactor: 0.5, DecayInterval: 100}
	tr := NewTree(cfg, 0)
	ref := NewTracker(cfg, 0)
	leaf := tr.NodeFor("org/a")
	for _, step := range []int64{50, 150, 275, 400} {
		if err := tr.Accrue(step, []Usage{{User: leaf, Nodes: 3}}); err != nil {
			t.Fatal(err)
		}
		if err := ref.Accrue(step, []Usage{{User: 1, Nodes: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := tr.Usage(leaf), ref.Usage(1); got != want {
		t.Fatalf("leaf usage %v != tracker usage %v", got, want)
	}
	org := tr.NodeFor("org")
	if got, want := tr.Usage(org), ref.Usage(1); got != want {
		t.Fatalf("single-leaf inner node usage %v != leaf usage %v", got, want)
	}
}

// Interning a deep path creates every ancestor exactly once.
func TestTreeNodeForInternsAncestors(t *testing.T) {
	tr := NewTree(DefaultConfig(), 0)
	deep := tr.NodeFor("a/b/c")
	if n := len(tr.paths); n != 3 {
		t.Fatalf("interned %d nodes, want 3", n)
	}
	again := tr.NodeFor("a/b/c")
	if deep != again || len(tr.paths) != 3 {
		t.Fatal("re-interning changed ids")
	}
	if tr.Path(tr.Parent(deep)) != "a/b" {
		t.Fatal("ancestor chain wrong")
	}
}
