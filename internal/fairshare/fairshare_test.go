package fairshare

import (
	"math"
	"testing"
	"testing/quick"

	"fairsched/internal/job"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestAccrueChargesProcSeconds(t *testing.T) {
	tr := NewTracker(Config{DecayFactor: 0.5, DecayInterval: 86400}, 0)
	if err := tr.Accrue(100, []Usage{{User: 1, Nodes: 10}}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Usage(1); !almost(got, 1000) {
		t.Fatalf("usage = %v, want 1000", got)
	}
	if got := tr.Usage(2); got != 0 {
		t.Fatalf("untouched user has usage %v", got)
	}
}

func TestAccrueMergesStreamsOfSameUser(t *testing.T) {
	tr := NewTracker(DefaultConfig(), 0)
	if err := tr.Accrue(10, []Usage{{User: 1, Nodes: 4}, {User: 1, Nodes: 6}}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Usage(1); !almost(got, 100) {
		t.Fatalf("usage = %v, want 100", got)
	}
}

func TestDecayAtBoundary(t *testing.T) {
	tr := NewTracker(Config{DecayFactor: 0.5, DecayInterval: 100}, 0)
	if err := tr.Accrue(100, []Usage{{User: 1, Nodes: 1}}); err != nil {
		t.Fatal(err)
	}
	// At t=100 the boundary fires: 100 proc-sec decay to 50.
	if got := tr.Usage(1); !almost(got, 50) {
		t.Fatalf("usage after boundary = %v, want 50", got)
	}
}

func TestAccrueSplitsAtBoundaries(t *testing.T) {
	tr := NewTracker(Config{DecayFactor: 0.5, DecayInterval: 100}, 0)
	// 250 seconds at 1 node crosses two boundaries:
	// [0,100): 100, decays to 50; [100,200): +100 -> 150, decays to 75;
	// [200,250): +50 -> 125.
	if err := tr.Accrue(250, []Usage{{User: 1, Nodes: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Usage(1); !almost(got, 125) {
		t.Fatalf("usage = %v, want 125", got)
	}
}

func TestAccrueIdleStillDecays(t *testing.T) {
	tr := NewTracker(Config{DecayFactor: 0.5, DecayInterval: 100}, 0)
	tr.Charge(1, 1000)
	if err := tr.Accrue(200, nil); err != nil {
		t.Fatal(err)
	}
	if got := tr.Usage(1); !almost(got, 250) {
		t.Fatalf("usage = %v, want 250 after two decays", got)
	}
}

func TestAccrueRejectsTimeReversal(t *testing.T) {
	tr := NewTracker(DefaultConfig(), 0)
	if err := tr.Accrue(100, nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Accrue(50, nil); err == nil {
		t.Fatal("time reversal accepted")
	}
}

func TestVanishingUsageIsDropped(t *testing.T) {
	tr := NewTracker(Config{DecayFactor: 0.5, DecayInterval: 1}, 0)
	tr.Charge(1, 1e-6)
	if err := tr.Accrue(100, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Users()); got != 0 {
		t.Fatalf("vanishing user retained: %d users", got)
	}
}

// TestLazyDecayBitIdenticalToEager: the lazy generation counter must
// reproduce an eager per-boundary sweep bit for bit — the settled replay
// multiplies once per boundary in the same order, never as a single
// factor^k power.
func TestLazyDecayBitIdenticalToEager(t *testing.T) {
	cfg := Config{DecayFactor: 0.75, DecayInterval: 100}
	tr := NewTracker(cfg, 0)
	// Eager shadow: apply the same charges and per-boundary multiplies.
	eager := map[int]float64{}
	charge := func(user int, v float64) { eager[user] += v }
	decayAll := func(n int) {
		for i := 0; i < n; i++ {
			for u := range eager {
				eager[u] *= cfg.DecayFactor
			}
		}
	}
	tr.Charge(1, 1234.5)
	tr.Charge(2, 17.25)
	charge(1, 1234.5)
	charge(2, 17.25)
	if err := tr.Accrue(350, []Usage{{User: 1, Nodes: 3}}); err != nil {
		t.Fatal(err)
	}
	// Eager replay of Accrue(350): [0,100) +300 for user 1, decay, twice
	// more, then [300,350) +150.
	charge(1, 300)
	decayAll(1)
	charge(1, 300)
	decayAll(1)
	charge(1, 300)
	decayAll(1)
	charge(1, 150)
	for _, u := range []int{1, 2} {
		if got := tr.Usage(u); got != eager[u] {
			t.Fatalf("user %d: lazy %v != eager %v (must be bit-identical)", u, got, eager[u])
		}
	}
	// Reads in any order settle consistently: re-reads are stable.
	if tr.Usage(2) != tr.Usage(2) {
		t.Fatal("settled value not stable")
	}
}

// TestAccrueAggregatedMatchesAccrue: the pre-aggregated entry point must
// charge exactly like Accrue over the equivalent duplicated streams.
func TestAccrueAggregatedMatchesAccrue(t *testing.T) {
	a := NewTracker(Config{DecayFactor: 0.5, DecayInterval: 100}, 0)
	b := NewTracker(Config{DecayFactor: 0.5, DecayInterval: 100}, 0)
	if err := a.Accrue(250, []Usage{{User: 1, Nodes: 2}, {User: 2, Nodes: 1}, {User: 1, Nodes: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AccrueAggregated(250, []Usage{{User: 1, Nodes: 5}, {User: 2, Nodes: 1}}); err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{1, 2} {
		if a.Usage(u) != b.Usage(u) {
			t.Fatalf("user %d: Accrue %v != AccrueAggregated %v", u, a.Usage(u), b.Usage(u))
		}
	}
	if err := b.AccrueAggregated(100, nil); err == nil {
		t.Fatal("time reversal accepted")
	}
}

func TestNextBoundaryAfter(t *testing.T) {
	tr := NewTracker(Config{DecayFactor: 0.5, DecayInterval: 100}, 50)
	cases := []struct{ ts, want int64 }{
		{50, 150}, {149, 150}, {150, 250}, {151, 250},
	}
	for _, tc := range cases {
		if got := tr.NextBoundaryAfter(tc.ts); got != tc.want {
			t.Errorf("NextBoundaryAfter(%d) = %d, want %d", tc.ts, got, tc.want)
		}
	}
}

func TestLessOrdersByUsageThenSubmitThenID(t *testing.T) {
	tr := NewTracker(DefaultConfig(), 0)
	tr.Charge(1, 100)
	tr.Charge(2, 50)
	a := &job.Job{ID: 1, User: 1, Submit: 0}
	b := &job.Job{ID: 2, User: 2, Submit: 100}
	if !tr.Less(b, a) {
		t.Error("lower usage should rank first despite later submit")
	}
	c := &job.Job{ID: 3, User: 2, Submit: 50}
	if !tr.Less(c, b) {
		t.Error("same usage: earlier submit should rank first")
	}
	d := &job.Job{ID: 4, User: 2, Submit: 50}
	if !tr.Less(c, d) || tr.Less(d, c) {
		t.Error("same usage and submit: lower id should rank first")
	}
}

func TestSortJobsIsDeterministic(t *testing.T) {
	tr := NewTracker(DefaultConfig(), 0)
	tr.Charge(1, 10)
	tr.Charge(2, 20)
	tr.Charge(3, 5)
	jobs := []*job.Job{
		{ID: 1, User: 1, Submit: 0},
		{ID: 2, User: 2, Submit: 0},
		{ID: 3, User: 3, Submit: 0},
		{ID: 4, User: 1, Submit: 5},
	}
	tr.SortJobs(jobs)
	wantIDs := []job.ID{3, 1, 4, 2}
	for i, w := range wantIDs {
		if jobs[i].ID != w {
			t.Fatalf("order %v, want %v at %d", jobs[i].ID, w, i)
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	tr := NewTracker(DefaultConfig(), 0)
	tr.Charge(7, 42)
	snap := tr.Snapshot()
	snap[7] = 999
	if got := tr.Usage(7); !almost(got, 42) {
		t.Fatalf("snapshot mutation leaked: %v", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	tr := NewTracker(Config{}, 0)
	tr.Charge(1, 100)
	if err := tr.Accrue(24*3600, nil); err != nil {
		t.Fatal(err)
	}
	if got := tr.Usage(1); !almost(got, 50) {
		t.Fatalf("default decay after 24h = %v, want 50", got)
	}
}

func TestQuickUsageNonNegativeAndMonotoneDecay(t *testing.T) {
	f := func(charges []uint16, steps uint8) bool {
		tr := NewTracker(Config{DecayFactor: 0.5, DecayInterval: 10}, 0)
		for i, c := range charges {
			tr.Charge(i%5, float64(c))
		}
		now := int64(0)
		for s := 0; s < int(steps%20); s++ {
			now += 7
			if err := tr.Accrue(now, []Usage{{User: 1, Nodes: 2}}); err != nil {
				return false
			}
			for _, u := range tr.Users() {
				if tr.Usage(u) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
