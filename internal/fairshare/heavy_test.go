package fairshare

import "testing"

func trackerWithUsage(usages map[int]float64) *Tracker {
	tr := NewTracker(DefaultConfig(), 0)
	for u, v := range usages {
		tr.Charge(u, v)
	}
	return tr
}

func TestAboveMean(t *testing.T) {
	tr := trackerWithUsage(map[int]float64{1: 100, 2: 50, 3: 0})
	live := []int{1, 2, 3}
	c := AboveMean{}
	if !c.IsHeavy(tr, 1, live) {
		t.Error("user 1 (100 vs mean 50) should be heavy")
	}
	if c.IsHeavy(tr, 2, live) {
		t.Error("user 2 (50 = mean) should not be heavy")
	}
	if c.IsHeavy(tr, 3, live) {
		t.Error("user 3 (0) should not be heavy")
	}
}

func TestAboveMeanFactor(t *testing.T) {
	tr := trackerWithUsage(map[int]float64{1: 100, 2: 50, 3: 0})
	live := []int{1, 2, 3}
	c := AboveMean{Factor: 3}
	if c.IsHeavy(tr, 1, live) {
		t.Error("factor 3 raises the bar to 150; user 1 at 100 is not heavy")
	}
}

func TestAboveMeanEdgeCases(t *testing.T) {
	tr := trackerWithUsage(nil)
	c := AboveMean{}
	if c.IsHeavy(tr, 1, nil) {
		t.Error("no live users: no one is heavy")
	}
	if c.IsHeavy(tr, 1, []int{1, 2}) {
		t.Error("zero mean: no one is heavy")
	}
}

func TestAboveQuantile(t *testing.T) {
	tr := trackerWithUsage(map[int]float64{1: 10, 2: 20, 3: 30, 4: 40, 5: 1000})
	live := []int{1, 2, 3, 4, 5}
	c := AboveQuantile{Q: 0.75}
	if !c.IsHeavy(tr, 5, live) {
		t.Error("top user should be heavy at q=0.75")
	}
	if c.IsHeavy(tr, 1, live) {
		t.Error("bottom user should not be heavy")
	}
	// Default quantile when Q invalid.
	d := AboveQuantile{}
	if !d.IsHeavy(tr, 5, live) {
		t.Error("default quantile should still flag the top user")
	}
}

func TestAboveAbsolute(t *testing.T) {
	tr := trackerWithUsage(map[int]float64{1: 100})
	c := AboveAbsolute{ProcSeconds: 50}
	if !c.IsHeavy(tr, 1, nil) {
		t.Error("usage 100 > 50 should be heavy")
	}
	if c.IsHeavy(tr, 2, nil) {
		t.Error("unknown user should not be heavy")
	}
}

func TestNever(t *testing.T) {
	tr := trackerWithUsage(map[int]float64{1: 1e12})
	if (Never{}).IsHeavy(tr, 1, []int{1}) {
		t.Error("Never classified someone as heavy")
	}
}

func TestClassifierNames(t *testing.T) {
	names := map[string]HeavyClassifier{
		"above-mean":     AboveMean{},
		"above-quantile": AboveQuantile{},
		"above-absolute": AboveAbsolute{},
		"never":          Never{},
	}
	for want, c := range names {
		if c.Name() != want {
			t.Errorf("Name() = %q, want %q", c.Name(), want)
		}
	}
}
