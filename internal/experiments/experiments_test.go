package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fairsched/internal/core"
	"fairsched/internal/job"
	"fairsched/internal/workload"
)

// smallResults runs the full nine-policy sweep on a quarter-scale workload
// once per test binary.
var smallResultsCache *Results

func smallResults(t *testing.T) *Results {
	t.Helper()
	if smallResultsCache != nil {
		return smallResultsCache
	}
	res, err := Run(Config{
		Workload: workload.Config{Seed: 42, Scale: 0.15, SystemSize: 150},
		Study:    core.StudyConfig{SystemSize: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	smallResultsCache = res
	return res
}

func TestRunProducesAllPolicies(t *testing.T) {
	res := smallResults(t)
	if len(res.AllKeys) != 9 || len(res.MinorKeys) != 5 {
		t.Fatalf("keys: %d all, %d minor", len(res.AllKeys), len(res.MinorKeys))
	}
	for _, k := range res.AllKeys {
		s, ok := res.ByKey[k]
		if !ok || s == nil {
			t.Fatalf("missing summary for %s", k)
		}
		if s.Jobs == 0 {
			t.Fatalf("%s scheduled no jobs", k)
		}
		if s.LossOfCapacity < 0 || s.LossOfCapacity > 1 {
			t.Fatalf("%s LOC out of range: %v", k, s.LossOfCapacity)
		}
		if s.Utilization <= 0 || s.Utilization > 1 {
			t.Fatalf("%s utilization out of range: %v", k, s.Utilization)
		}
	}
	if res.Baseline() == nil {
		t.Fatal("baseline missing")
	}
}

func TestEvaluationFiguresStructure(t *testing.T) {
	res := smallResults(t)
	figs := res.EvaluationFigures()
	if len(figs) != 12 {
		t.Fatalf("got %d figures, want 12 (figures 8-19)", len(figs))
	}
	wantIDs := []string{"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19"}
	for i, f := range figs {
		if f.ID != wantIDs[i] {
			t.Errorf("figure %d id = %s, want %s", i, f.ID, wantIDs[i])
		}
		if len(f.Labels) == 0 || len(f.Series) == 0 {
			t.Errorf("%s: empty labels or series", f.ID)
		}
		for _, s := range f.Series {
			if len(s.Values) != len(f.Labels) {
				t.Errorf("%s series %q: %d values for %d labels",
					f.ID, s.Name, len(s.Values), len(f.Labels))
			}
		}
	}
}

func TestBarFiguresCoverPolicies(t *testing.T) {
	res := smallResults(t)
	f8 := res.Figure8()
	if len(f8.Labels) != 5 {
		t.Fatalf("fig8 has %d bars, want 5 minor policies", len(f8.Labels))
	}
	f14 := res.Figure14()
	if len(f14.Labels) != 9 {
		t.Fatalf("fig14 has %d bars, want 9 policies", len(f14.Labels))
	}
	for i, k := range res.AllKeys {
		if f14.Labels[i] != k {
			t.Fatalf("fig14 label %d = %s, want %s", i, f14.Labels[i], k)
		}
	}
}

func TestWidthFiguresUseCategoryLabels(t *testing.T) {
	res := smallResults(t)
	f10 := res.Figure10()
	if len(f10.Labels) != job.NumWidthCategories {
		t.Fatalf("fig10 labels = %d", len(f10.Labels))
	}
	if f10.Labels[0] != "1" || f10.Labels[10] != "513+" {
		t.Fatalf("fig10 labels wrong: %v", f10.Labels)
	}
	if len(f10.Series) != 5 {
		t.Fatalf("fig10 series = %d", len(f10.Series))
	}
	f16 := res.Figure16()
	if len(f16.Series) != 5 { // baseline + 4 conservative
		t.Fatalf("fig16 series = %d", len(f16.Series))
	}
}

func TestFigure3Series(t *testing.T) {
	res := smallResults(t)
	f3 := res.Figure3()
	if len(f3.Series) != 2 {
		t.Fatalf("fig3 series = %d", len(f3.Series))
	}
	if f3.Series[0].Name != "Offered Load" || f3.Series[1].Name != "Actual Utilization" {
		t.Fatalf("fig3 series names: %v, %v", f3.Series[0].Name, f3.Series[1].Name)
	}
	if len(f3.Labels) < 30 {
		t.Fatalf("fig3 covers %d weeks", len(f3.Labels))
	}
}

func TestCharacterizeMatchesWorkloadTables(t *testing.T) {
	jobs, err := workload.Generate(workload.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	c := Characterize(jobs)
	if c.Jobs != workload.Table1Total() {
		t.Fatalf("characterized %d jobs", c.Jobs)
	}
	if c.Table1 != job.CountGrid(jobs) {
		t.Fatal("table 1 grid mismatch")
	}
	if c.StandardAllocFraction < 0.5 {
		t.Errorf("standard allocations only %.2f; Figure 4 shows they dominate", c.StandardAllocFraction)
	}
	if c.OverestimatedFraction < 0.7 {
		t.Errorf("overestimated fraction %.2f too low", c.OverestimatedFraction)
	}
	if c.OverRuntimeLogCorr >= 0 {
		t.Errorf("Figure 6 correlation should be negative, got %.3f", c.OverRuntimeLogCorr)
	}
	// Figure 7: overestimation roughly unrelated to width.
	if abs := mathAbs(c.OverNodesLogCorr); abs > 0.4 {
		t.Errorf("Figure 7 correlation |r|=%.3f should be weak", abs)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestIsStandardAlloc(t *testing.T) {
	for _, n := range []int{1, 2, 4, 64, 1024, 9, 25, 49, 144, 1089} {
		if !isStandardAlloc(n) {
			t.Errorf("%d should be standard", n)
		}
	}
	for _, n := range []int{3, 5, 7, 11, 60, 127} {
		if isStandardAlloc(n) {
			t.Errorf("%d should not be standard", n)
		}
	}
}

func TestRenderFigureBar(t *testing.T) {
	var buf bytes.Buffer
	RenderFigure(&buf, Figure{
		ID: "fig9", Title: "test", Unit: "seconds",
		Labels: []string{"a", "b"},
		Series: []Series{{Name: "seconds", Values: []float64{10, 20}}},
	})
	out := buf.String()
	if !strings.Contains(out, "FIG9") || !strings.Contains(out, "#") {
		t.Fatalf("bar render missing pieces: %q", out)
	}
}

func TestRenderFigureSeriesTable(t *testing.T) {
	var buf bytes.Buffer
	RenderFigure(&buf, Figure{
		ID: "fig10", Title: "test", Unit: "s",
		Labels: []string{"1", "2"},
		Series: []Series{
			{Name: "pol1", Values: []float64{1, 2}},
			{Name: "pol2", Values: []float64{3, 4}},
		},
	})
	out := buf.String()
	if !strings.Contains(out, "pol1") || !strings.Contains(out, "pol2") {
		t.Fatalf("series render missing names: %q", out)
	}
}

func TestRenderTables(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf, workload.Table1Counts)
	if !strings.Contains(buf.String(), "TABLE 1") || !strings.Contains(buf.String(), "513+") {
		t.Fatal("table 1 render incomplete")
	}
	buf.Reset()
	RenderTable2(&buf, workload.Table2ProcHours)
	if !strings.Contains(buf.String(), "TABLE 2") {
		t.Fatal("table 2 render incomplete")
	}
}

func TestCheckClaimsRuns(t *testing.T) {
	res := smallResults(t)
	var buf bytes.Buffer
	pass := CheckClaims(&buf, res)
	if pass < 0 || pass > len(PaperHypotheses()) {
		t.Fatalf("pass count %d out of range", pass)
	}
	// On the small workload not every claim need hold; the checker itself
	// must evaluate all of them.
	if got := strings.Count(buf.String(), "\n"); got != len(PaperHypotheses()) {
		t.Fatalf("rendered %d claim lines, want %d", got, len(PaperHypotheses()))
	}
}

func TestWriteReportContainsEverything(t *testing.T) {
	res := smallResults(t)
	var buf bytes.Buffer
	WriteReport(&buf, res, 0)
	out := buf.String()
	for _, want := range []string{"TABLE 1", "TABLE 2", "FIG3", "FIG8", "FIG19",
		"PAPER VS MEASURED", "PAPER CLAIMS", "claims reproduced"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestPaperValuesHaveMeasurableCounterparts(t *testing.T) {
	res := smallResults(t)
	for _, pv := range PaperValues() {
		if _, ok := MeasuredFor(res, pv); !ok {
			t.Errorf("paper value %v has no measured counterpart", pv)
		}
	}
}
