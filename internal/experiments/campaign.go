package experiments

import (
	"fmt"
	"io"

	"fairsched/internal/slo"
	"fairsched/internal/sweep"
)

// RenderCampaign writes a (trace × scenario × seed × policy) campaign as
// one aligned table per cell, in matrix order. The rendering is a pure
// function of the summaries, so a campaign report is byte-identical at
// every -parallel setting. Failed cells (nil slots, see Campaign.Run) are
// marked and skipped.
func RenderCampaign(w io.Writer, cells []*sweep.CellSummary) {
	total, failed := len(cells), 0
	for _, c := range cells {
		if c == nil {
			failed++
		}
	}
	fmt.Fprintf(w, "CAMPAIGN — %d cells", total)
	if failed > 0 {
		fmt.Fprintf(w, " (%d failed)", failed)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
	// The policy column widens to the longest name in the campaign (ad-hoc
	// component chains run long) so every cell's table stays aligned.
	polW := 22
	for _, c := range cells {
		if c == nil {
			continue
		}
		for _, p := range c.Policies {
			if len(p) > polW {
				polW = len(p)
			}
		}
	}
	for i, c := range cells {
		if c == nil {
			fmt.Fprintf(w, "cell %d: FAILED (see errors)\n\n", i+1)
			continue
		}
		fmt.Fprintf(w, "%s × %s (seed %d) — %d jobs on %d nodes\n",
			c.Source, c.Scenario, c.Seed, c.Jobs, c.SystemSize)
		fmt.Fprintf(w, "  %-*s %12s %12s %8s %9s %12s\n",
			polW, "policy", "avgwait(h)", "avgTAT(h)", "util", "%unfair", "avgmiss(h)")
		for k, s := range c.Summaries {
			fmt.Fprintf(w, "  %-*s %12.2f %12.2f %8.3f %9.1f %12.2f\n",
				polW, c.Policies[k], s.AvgWait/3600, s.AvgTurnaround/3600,
				s.Utilization, s.PercentUnfair, s.AvgMissTime/3600)
		}
		renderCellSLO(w, c, polW)
		renderCellQueues(w, c, polW)
		renderCellPartitions(w, c, polW)
		fmt.Fprintln(w)
	}
	// Multi-trace campaigns close with the robustness scoreboard;
	// single-trace reports are byte-identical to before.
	renderRobustness(w, cells)
}

// renderCellQueues writes a cell's per-queue table (one row per policy ×
// queue-tree leaf) when any policy's summary carries queue rows — i.e. the
// scenario tagged users into queues, on a flat machine or a topology.
// Untagged cells render nothing, keeping legacy reports byte-identical.
func renderCellQueues(w io.Writer, c *sweep.CellSummary, polW int) {
	qW := len("queue")
	any := false
	for _, s := range c.Summaries {
		for _, q := range s.Queues {
			any = true
			if len(q.Path) > qW {
				qW = len(q.Path)
			}
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "  per-queue — jobs routed to each queue-tree leaf (slo columns blank without an assignment)\n")
	fmt.Fprintf(w, "  %-*s %-*s %7s %6s %12s %12s %8s %8s\n",
		polW, "policy", qW, "queue", "jobs", "users", "avgwait(h)", "avgTAT(h)", "slojobs", "attain%")
	for k, s := range c.Summaries {
		for _, q := range s.Queues {
			fmt.Fprintf(w, "  %-*s %-*s %7d %6d %12.2f %12.2f %8d %8.1f\n",
				polW, c.Policies[k], qW, q.Path, q.Jobs, q.Users,
				q.AvgWait/3600, q.AvgTurnaround/3600, q.SLOJobs, q.AttainPct())
		}
	}
}

// renderCellPartitions writes a cell's per-partition table (one row per
// policy × machine partition) when the cell ran on a multi-partition
// topology. Single-partition and flat cells render nothing.
func renderCellPartitions(w io.Writer, c *sweep.CellSummary, polW int) {
	pW := len("partition")
	any := false
	for _, s := range c.Summaries {
		for _, p := range s.Partitions {
			any = true
			if len(p.Name) > pW {
				pW = len(p.Name)
			}
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "  per-partition — each partition runs its own event loop over its own nodes\n")
	fmt.Fprintf(w, "  %-*s %-*s %7s %7s %12s %12s %8s\n",
		polW, "policy", pW, "partition", "nodes", "jobs", "avgwait(h)", "avgTAT(h)", "util")
	for k, s := range c.Summaries {
		for _, p := range s.Partitions {
			fmt.Fprintf(w, "  %-*s %-*s %7d %7d %12.2f %12.2f %8.3f\n",
				polW, c.Policies[k], pW, p.Name, p.Nodes, p.Jobs,
				p.AvgWait/3600, p.AvgTurnaround/3600, p.Utilization)
		}
	}
}

// renderCellSLO writes a cell's per-user-class SLO attainment table (one
// row per policy × class plus a per-policy total), when the cell's
// scenario tagged users. Like the rest of the report it is a pure function
// of the summaries: byte-identical at every parallelism and in both task
// granularities.
func renderCellSLO(w io.Writer, c *sweep.CellSummary, polW int) {
	if c.SLOs == nil {
		return
	}
	classW := len("class")
	for _, s := range c.SLOs {
		if s == nil {
			continue
		}
		for _, cl := range s.Classes {
			if len(cl.Class) > classW {
				classW = len(cl.Class)
			}
		}
	}
	fmt.Fprintf(w, "  SLO attainment — per user class (unfair: fair start met the target; infeas: it did not;\n")
	fmt.Fprintf(w, "  p95brch/worst are wait-breach excess — slowbr counts slowdown-target misses separately)\n")
	fmt.Fprintf(w, "  %-*s %-*s %6s %7s %8s %8s %7s %7s %7s %11s %9s\n",
		polW, "policy", classW, "class", "users", "jobs", "attain%", "breached",
		"unfair", "infeas", "slowbr", "p95brch(h)", "worst(h)")
	for k, s := range c.SLOs {
		if s == nil {
			continue
		}
		rows := append(append([]slo.ClassStats(nil), s.Classes...), s.Total)
		for _, cl := range rows {
			fmt.Fprintf(w, "  %-*s %-*s %6d %7d %8.1f %8d %7d %7d %7d %11.2f %9.2f\n",
				polW, c.Policies[k], classW, cl.Class, cl.Users, cl.Jobs,
				cl.AttainPct(), cl.Breached(), cl.UnfairWait, cl.InfeasibleWait,
				cl.SlowBreaches, float64(cl.BreachP95)/3600, float64(cl.WorstWaitBreach)/3600)
		}
	}
	renderCellOffenders(w, c, polW, classW)
}

// renderCellOffenders writes each policy's worst-offender rows — the
// top-MaxOffenders most-breached users of the run, worst first: the users
// the class-aggregated attainment rows average away. Summaries carry the
// bounded list precomputed (slo.Summary.Offenders), so the renderer is as
// order-independent as the rest of the report.
func renderCellOffenders(w io.Writer, c *sweep.CellSummary, polW, classW int) {
	any := false
	for _, s := range c.SLOs {
		if s != nil && len(s.Offenders) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "  worst offenders — top %d most-breached users per policy (totbrch: summed excess wait)\n", slo.MaxOffenders)
	fmt.Fprintf(w, "  %-*s %-*s %6s %7s %8s %11s %9s %9s\n",
		polW, "policy", classW, "class", "user", "jobs", "breached",
		"totbrch(h)", "worst(h)", "worstjob")
	for k, s := range c.SLOs {
		if s == nil {
			continue
		}
		for _, u := range s.Offenders {
			fmt.Fprintf(w, "  %-*s %-*s %6d %7d %8d %11.2f %9.2f %9d\n",
				polW, c.Policies[k], classW, u.Class, u.User, u.Jobs, u.Breached(),
				float64(u.TotalWaitBreach)/3600, float64(u.WorstWaitBreach)/3600,
				u.WorstWaitJob)
		}
	}
}
