package experiments

import (
	"fmt"
	"io"

	"fairsched/internal/sweep"
)

// RenderCampaign writes a (trace × scenario × seed × policy) campaign as
// one aligned table per cell, in matrix order. The rendering is a pure
// function of the summaries, so a campaign report is byte-identical at
// every -parallel setting. Failed cells (nil slots, see Campaign.Run) are
// marked and skipped.
func RenderCampaign(w io.Writer, cells []*sweep.CellSummary) {
	total, failed := len(cells), 0
	for _, c := range cells {
		if c == nil {
			failed++
		}
	}
	fmt.Fprintf(w, "CAMPAIGN — %d cells", total)
	if failed > 0 {
		fmt.Fprintf(w, " (%d failed)", failed)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
	// The policy column widens to the longest name in the campaign (ad-hoc
	// component chains run long) so every cell's table stays aligned.
	polW := 22
	for _, c := range cells {
		if c == nil {
			continue
		}
		for _, p := range c.Policies {
			if len(p) > polW {
				polW = len(p)
			}
		}
	}
	for i, c := range cells {
		if c == nil {
			fmt.Fprintf(w, "cell %d: FAILED (see errors)\n\n", i+1)
			continue
		}
		fmt.Fprintf(w, "%s × %s (seed %d) — %d jobs on %d nodes\n",
			c.Source, c.Scenario, c.Seed, c.Jobs, c.SystemSize)
		fmt.Fprintf(w, "  %-*s %12s %12s %8s %9s %12s\n",
			polW, "policy", "avgwait(h)", "avgTAT(h)", "util", "%unfair", "avgmiss(h)")
		for k, s := range c.Summaries {
			fmt.Fprintf(w, "  %-*s %12.2f %12.2f %8.3f %9.1f %12.2f\n",
				polW, c.Policies[k], s.AvgWait/3600, s.AvgTurnaround/3600,
				s.Utilization, s.PercentUnfair, s.AvgMissTime/3600)
		}
		fmt.Fprintln(w)
	}
}
