package experiments

import (
	"fmt"
	"io"

	"fairsched/internal/hypothesis"
)

// The paper's Results-section claims as hypothesis specs. Each claim is
// written in the claim grammar itself (internal/hypothesis), so the harness
// that checks them is the same one any ad-hoc `-spec` claim goes through;
// the prose statements ride along for the reports. The per-claim semantics
// are the exact comparisons the original closures made — the migration is
// pinned by TestPaperHypothesesMatchLegacyClaims, which re-states the old
// closures and demands identical verdicts seed by seed.
//
// Tiers grade robustness (see hypothesis.Spec): tier 1 claims hold
// unanimously over seeds 42–51 and gate CI; tier 2 claims
// (fig8-72h-entry-reduces-unfair, fig8-72max-reduces-unfair-load) hold on
// the reference seed and 9/10 seeds; tier 3 (fig16-cons-helps-wide) is the
// known-fragile wide-category claim recorded in EXPERIMENTS.md.
var paperClaims = []struct{ spec, statement string }{
	{
		"claim fig8-fair-reduces-unfair: cplant24.nomax.fair < cplant24.nomax.all on unfair_pct seeds 42..51",
		"Barring heavy users from the starvation queue reduces the percent of unfair jobs",
	},
	{
		"claim fig8-72h-entry-reduces-unfair: cplant72.nomax.all < cplant24.nomax.all on unfair_pct tier 2 seeds 42..51",
		"Raising the starvation-queue entry delay to 72h reduces the percent of unfair jobs",
	},
	{
		"claim fig8-all-three-lowest: cplant72.72max.fair < cplant24.nomax.all" +
			" and cplant72.72max.fair < cplant24.nomax.fair" +
			" and cplant72.72max.fair < cplant72.nomax.all" +
			" and cplant72.72max.fair < cplant24.72max.all on unfair_pct seeds 42..51",
		"All three minor changes together give the fewest unfair jobs among the minor policies",
	},
	{
		"claim fig8-72max-reduces-unfair-load: cplant24.72max.all < cplant24.nomax.all on unfair_load_pct tier 2 seeds 42..51",
		"72h maximum runtimes reduce unfairly treated work (load-weighted; see EXPERIMENTS.md for the job-count deviation)",
	},
	{
		"claim fig9-72max-reduces-miss: cplant24.72max.all < cplant24.nomax.all on avg_miss seeds 42..51",
		"Introducing 72h maximum runtimes reduces the average miss time",
	},
	{
		"claim fig10-wide-misses-dominate: cplant24.nomax.all#avg_miss_w8 > cplant24.nomax.all#avg_miss_w4" +
			" and cplant24.nomax.all#avg_miss_w9 > cplant24.nomax.all#avg_miss_w4" +
			" and cplant24.nomax.all#avg_miss_w10 > cplant24.nomax.all#avg_miss_w4 seeds 42..51",
		"Baseline misses concentrate in the wide categories (129+ nodes)",
	},
	{
		"claim fig11-72max-improves-tat: cplant24.72max.all < cplant24.nomax.all on avg_tat seeds 42..51",
		"Maximum runtimes improve the average turnaround time",
	},
	{
		"claim fig12-72max-helps-wide-tat: cplant24.72max.all#avg_tat_w8 < cplant24.nomax.all#avg_tat_w8" +
			" and cplant24.72max.all#avg_tat_w9 < cplant24.nomax.all#avg_tat_w9" +
			" and cplant24.72max.all#avg_tat_w10 < cplant24.nomax.all#avg_tat_w10 require 2 seeds 42..51",
		"Maximum runtimes allow better progress (turnaround) for wide jobs",
	},
	{
		"claim fig13-72max-improves-loc: cplant24.72max.all < cplant24.nomax.all on loc seeds 42..51",
		"Maximum runtimes improve (lower) the loss of capacity",
	},
	{
		"claim fig14-consdyn-fewest-unfair: consdyn.nomax <= cplant24.nomax.all" +
			" and consdyn.nomax <= cplant24.nomax.fair" +
			" and consdyn.nomax <= cplant72.nomax.all" +
			" and consdyn.nomax <= cplant24.72max.all" +
			" and consdyn.nomax <= cplant72.72max.fair" +
			" and consdyn.nomax <= cons.nomax" +
			" and consdyn.nomax <= cons.72max" +
			" and consdyn.nomax <= consdyn.72max on unfair_pct seeds 42..51",
		"The conservative dynamic policy has the fewest unfair jobs of all nine policies",
	},
	{
		"claim fig15-cons-nomax-high-miss: cons.nomax > cplant24.nomax.all" +
			" and consdyn.nomax > cplant24.nomax.all on avg_miss seeds 42..51",
		"Without 72h limits the conservative policies have a higher average miss time than the current policy",
	},
	{
		"claim fig15-consdyn-outlier: consdyn.nomax > cplant24.nomax.all*1.5 on avg_miss seeds 42..51",
		"The dynamic conservative policy's misses are the most severe (the 67,881 s outlier bar)",
	},
	{
		"claim fig15-cons72max-improves-miss: cons.72max < cplant24.nomax.all on avg_miss seeds 42..51",
		"Conservative backfilling with 72h limits improves the average miss time over the baseline",
	},
	{
		"claim fig16-cons-helps-wide: cons.nomax#avg_miss_w8 < cplant24.nomax.all#avg_miss_w8" +
			" and cons.nomax#avg_miss_w9 < cplant24.nomax.all#avg_miss_w9" +
			" and cons.nomax#avg_miss_w10 < cplant24.nomax.all#avg_miss_w10 require 2 tier 3 seeds 42..51",
		"Conservative backfilling reduces the unfairness (miss time) of wide jobs",
	},
	{
		"claim fig17-cons72max-competitive-tat: cons.72max < cons.nomax on avg_tat seeds 42..51",
		"The conservative schedule with 72h limits has a superior turnaround time to the plain conservative schedule",
	},
	{
		"claim fig19-72max-lowers-loc: cons.72max < cons.nomax" +
			" and consdyn.72max < consdyn.nomax on loc seeds 42..51",
		"72h limits lower the loss of capacity of the conservative schedules",
	},
}

// PaperHypotheses returns the paper's claims as hypothesis specs, paper
// order. The specs parse from the grammar at first use; a claim that stops
// parsing (a renamed policy, a dropped metric key) panics loudly rather
// than silently vanishing from the checklist.
func PaperHypotheses() []hypothesis.Spec {
	out := make([]hypothesis.Spec, len(paperClaims))
	for i, c := range paperClaims {
		s, err := hypothesis.Parse(c.spec)
		if err != nil {
			panic(fmt.Sprintf("experiments: paper claim %d: %v", i, err))
		}
		s.Statement = c.statement
		out[i] = s
	}
	return out
}

func init() {
	for _, s := range PaperHypotheses() {
		hypothesis.Register(s)
	}
}

// resultsResolver adapts one full nine-policy sweep (a *Results) to the
// hypothesis evaluator. Paper claims address only baseline-scenario cells;
// anything else is a spec bug and errors out (the seed counts as failed).
func resultsResolver(r *Results) hypothesis.Resolver {
	return func(cfg hypothesis.Config, metric string) (float64, error) {
		if cfg.Scenario != "baseline" {
			return 0, fmt.Errorf("experiments: claim addresses scenario %q but the sweep ran baseline only", cfg.Scenario)
		}
		s, ok := r.ByKey[cfg.Policy]
		if !ok {
			return 0, fmt.Errorf("experiments: policy %q is not part of the nine-policy sweep", cfg.Policy)
		}
		// The sweep path carries no SLO plane, so only aggregate summary
		// keys resolve here.
		return s.ValueByKey(metric)
	}
}

// CheckClaims evaluates every paper claim against one sweep's results and
// writes a pass/fail report. It returns the number of passing claims.
func CheckClaims(w io.Writer, r *Results) int {
	resolve := resultsResolver(r)
	pass := 0
	for _, s := range PaperHypotheses() {
		res := hypothesis.EvaluateSeed(s, hypothesis.DefaultSeed, resolve)
		status := "FAIL"
		if res.Pass {
			status = "ok"
			pass++
		}
		fmt.Fprintf(w, "  [%-4s] %-30s %s\n", status, s.ID, s.Statement)
	}
	return pass
}
