package experiments

import (
	"fmt"

	"fairsched/internal/hypothesis"
)

// populationClaims exercise the population-scale generative workload layer
// end to end: the population-100k builtin scenario replaces the incoming
// trace with a generated 100k-user, 25k-job campaign cell, so evaluating
// the claim walks the full path — streaming cohort generation, the dense
// per-user fairshare/SLO hot paths at population scale, and the metric
// plane. Registered alongside the paper claims (cmd/hypotheses runs them)
// but NOT part of PaperHypotheses — the paper's case study is a ~640-user
// trace; these pin the test-bed's million-user ambition into CI. Tier 3: a
// flipped seed reports but never gates.
var populationClaims = []struct{ spec, statement string }{
	{
		// The 100k-user population is underloaded at the default 1000-node
		// system (util ~30%), so arrivals are compressed 3x to develop real
		// queues; margins are then wide on every seed (bsld ~2-5x vs ~6-32x).
		"claim population-backfill-bsld: " +
			"easy@pop=users:100k,jobs:25k+load=3#avg_bsld <= fcfs@pop=users:100k,jobs:25k+load=3#avg_bsld" +
			" tier 3 seeds 42..44",
		"On a generated 100k-user population with arrivals compressed 3x, EASY backfill keeps average bounded slowdown at or below plain FCFS",
	},
}

// PopulationHypotheses returns the population-scale demonstration claims.
func PopulationHypotheses() []hypothesis.Spec {
	out := make([]hypothesis.Spec, len(populationClaims))
	for i, c := range populationClaims {
		s, err := hypothesis.Parse(c.spec)
		if err != nil {
			panic(fmt.Sprintf("experiments: population claim %d: %v", i, err))
		}
		s.Statement = c.statement
		out[i] = s
	}
	return out
}

func init() {
	for _, s := range PopulationHypotheses() {
		hypothesis.Register(s)
	}
}
