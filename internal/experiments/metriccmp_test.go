package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fairsched/internal/core"
	"fairsched/internal/workload"
)

func TestCompareMetricsWithoutSabin(t *testing.T) {
	jobs, err := workload.Generate(workload.Config{Seed: 2, Scale: 0.05, SystemSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	specs := []core.Spec{}
	for _, key := range []string{"cplant24.nomax.all", "consdyn.nomax"} {
		s, err := core.SpecByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	rows, err := CompareMetrics(core.StudyConfig{SystemSize: 100}, specs, jobs, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SabinComputed {
			t.Errorf("%s: sabin computed without being requested", r.Policy)
		}
		if r.HybridPercentUnfair < 0 || r.HybridPercentUnfair > 100 {
			t.Errorf("%s: hybrid percent out of range: %v", r.Policy, r.HybridPercentUnfair)
		}
		if r.ConsPAvgMiss < 0 {
			t.Errorf("%s: negative CONS-P miss", r.Policy)
		}
	}
}

func TestCompareMetricsWithSabin(t *testing.T) {
	// Tiny workload: Sabin re-simulates per job.
	jobs, err := workload.Generate(workload.Config{Seed: 2, Scale: 0.01, SystemSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := core.SpecByKey("easy")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CompareMetrics(core.StudyConfig{SystemSize: 100}, []core.Spec{spec}, jobs, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].SabinComputed {
		t.Fatal("sabin not computed")
	}
	// The Sabin FST can never precede a job's start by construction for
	// the last-arriving job; aggregate sanity only here.
	if rows[0].SabinPercentUnfair < 0 || rows[0].SabinPercentUnfair > 100 {
		t.Fatalf("sabin percent out of range: %v", rows[0].SabinPercentUnfair)
	}
}

func TestRenderMetricComparison(t *testing.T) {
	var buf bytes.Buffer
	RenderMetricComparison(&buf, []MetricRow{
		{Policy: "cplant24.nomax.all", HybridPercentUnfair: 7, HybridAvgMiss: 9000,
			ConsPPercentUnfair: 40, ConsPAvgMiss: 50000},
		{Policy: "easy", SabinComputed: true, SabinPercentUnfair: 3, SabinAvgMiss: 100},
	})
	out := buf.String()
	if !strings.Contains(out, "METRIC COMPARISON") || !strings.Contains(out, "cplant24.nomax.all") {
		t.Fatalf("render incomplete: %q", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatal("missing Sabin placeholder")
	}
}
