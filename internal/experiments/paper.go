package experiments

import (
	"fmt"
	"io"
	"time"

	"fairsched/internal/hypothesis"
)

// PaperValue records a number reported (or read off a figure) in the paper
// for side-by-side comparison with the measured value. Most of the paper's
// figure values are eyeballed from bar charts; the single exact number in
// the text is the 67,881 s miss-time outlier of Figure 15.
type PaperValue struct {
	Artifact string // figure/table id
	Metric   string
	Policy   string
	Paper    float64 // approximate paper value (NaN when only a direction is given)
	Exact    bool    // true when the paper prints the number
}

// PaperValues returns the values reported in (or read off) the paper's
// evaluation figures, for the side-by-side record in EXPERIMENTS.md. All
// bar-chart readings are approximate (marked Exact=false).
func PaperValues() []PaperValue {
	v := []PaperValue{
		{Artifact: "fig15", Metric: "avg miss time (s)", Policy: "consdyn.nomax", Paper: 67881, Exact: true},
	}
	type row struct {
		policy            string
		unfair, miss, tat float64
		loc               float64
	}
	// Eyeballed from Figures 8/9/11/13 and 14/15/17/19.
	rows := []row{
		{"cplant24.nomax.all", 9.5, 11000, 95000, 12.5},
		{"cplant24.nomax.fair", 8.2, 11400, 93000, 13.0},
		{"cplant72.nomax.all", 8.8, 10700, 97000, 12.6},
		{"cplant24.72max.all", 7.2, 2100, 87000, 10.4},
		{"cplant72.72max.fair", 4.2, 2400, 71000, 10.8},
		{"cons.nomax", 8.5, 11500, 105000, 12.8},
		{"consdyn.nomax", 3.5, 67881, 110000, 13.5},
		{"cons.72max", 5.5, 5500, 90000, 10.9},
		{"consdyn.72max", 4.5, 10500, 160000, 12.2},
	}
	for _, r := range rows {
		v = append(v,
			PaperValue{Artifact: "fig8/14", Metric: "% unfair jobs", Policy: r.policy, Paper: r.unfair},
			PaperValue{Artifact: "fig9/15", Metric: "avg miss time (s)", Policy: r.policy, Paper: r.miss},
			PaperValue{Artifact: "fig11/17", Metric: "avg turnaround (s)", Policy: r.policy, Paper: r.tat},
			PaperValue{Artifact: "fig13/19", Metric: "loss of capacity (%)", Policy: r.policy, Paper: r.loc},
		)
	}
	return v
}

// MeasuredFor looks up the measured counterpart of a paper value.
func MeasuredFor(r *Results, pv PaperValue) (float64, bool) {
	s, ok := r.ByKey[pv.Policy]
	if !ok {
		return 0, false
	}
	switch pv.Metric {
	case "% unfair jobs":
		return s.PercentUnfair, true
	case "avg miss time (s)":
		return s.AvgMissTime, true
	case "avg turnaround (s)":
		return s.AvgTurnaround, true
	case "loss of capacity (%)":
		return 100 * s.LossOfCapacity, true
	}
	return 0, false
}

// WriteMarkdownReport renders the paper-vs-measured table and the claim
// checklist as GitHub Markdown — the exact tables EXPERIMENTS.md embeds, so
// the doc can be refreshed with `go run ./cmd/experiments -markdown`. The
// checklist rows come from the hypothesis specs (PaperHypotheses) evaluated
// against this sweep; the seed-tally view lives in `cmd/hypotheses
// -markdown`.
func WriteMarkdownReport(w io.Writer, r *Results) {
	fmt.Fprintln(w, "### Paper vs measured")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Artifact | Metric | Policy | Paper | Measured |")
	fmt.Fprintln(w, "|---|---|---|---:|---:|")
	for _, pv := range PaperValues() {
		m, ok := MeasuredFor(r, pv)
		if !ok {
			continue
		}
		note := "~"
		if pv.Exact {
			note = "="
		}
		fmt.Fprintf(w, "| %s | %s | `%s` | %s%.0f | %.0f |\n",
			pv.Artifact, pv.Metric, pv.Policy, note, pv.Paper, m)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "### Claim checklist")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Status | Tier | Claim | Statement |")
	fmt.Fprintln(w, "|---|---|---|---|")
	resolve := resultsResolver(r)
	pass, total := 0, 0
	for _, s := range PaperHypotheses() {
		total++
		status := "✗"
		if hypothesis.EvaluateSeed(s, hypothesis.DefaultSeed, resolve).Pass {
			status = "✓"
			pass++
		}
		fmt.Fprintf(w, "| %s | %d | `%s` | %s |\n", status, s.EffectiveTier(), s.ID, s.Statement)
	}
	fmt.Fprintf(w, "\n%d/%d claims reproduced.\n", pass, total)
}

// WriteReport renders the complete experiment sweep: characterization,
// every figure, the load-weighted companion, and the claim checklist.
func WriteReport(w io.Writer, r *Results, elapsed time.Duration) {
	c := Characterize(r.Jobs)
	RenderTable1(w, c.Table1)
	RenderTable2(w, c.Table2)
	RenderCharacterization(w, c)
	RenderFigure(w, r.Figure3())
	for _, f := range r.EvaluationFigures() {
		RenderFigure(w, f)
	}
	RenderFigure(w, r.UnfairLoadFigure())
	fmt.Fprintln(w, "PAPER VS MEASURED")
	fmt.Fprintf(w, "  %-10s %-22s %-22s %12s %12s\n", "artifact", "metric", "policy", "paper", "measured")
	for _, pv := range PaperValues() {
		m, ok := MeasuredFor(r, pv)
		if !ok {
			continue
		}
		note := "~"
		if pv.Exact {
			note = "="
		}
		fmt.Fprintf(w, "  %-10s %-22s %-22s %s%11.0f %12.0f\n",
			pv.Artifact, pv.Metric, pv.Policy, note, pv.Paper, m)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "PAPER CLAIMS")
	pass := CheckClaims(w, r)
	fmt.Fprintf(w, "  %d/%d claims reproduced", pass, len(PaperHypotheses()))
	if elapsed > 0 {
		fmt.Fprintf(w, " (sweep took %v)", elapsed.Round(time.Millisecond))
	}
	fmt.Fprintln(w)
}
