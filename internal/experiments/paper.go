package experiments

import (
	"fmt"
	"io"
	"time"
)

// PaperValue records a number reported (or read off a figure) in the paper
// for side-by-side comparison with the measured value. Most of the paper's
// figure values are eyeballed from bar charts; the single exact number in
// the text is the 67,881 s miss-time outlier of Figure 15.
type PaperValue struct {
	Artifact string // figure/table id
	Metric   string
	Policy   string
	Paper    float64 // approximate paper value (NaN when only a direction is given)
	Exact    bool    // true when the paper prints the number
}

// PaperValues returns the values reported in (or read off) the paper's
// evaluation figures, for the side-by-side record in EXPERIMENTS.md. All
// bar-chart readings are approximate (marked Exact=false).
func PaperValues() []PaperValue {
	v := []PaperValue{
		{Artifact: "fig15", Metric: "avg miss time (s)", Policy: "consdyn.nomax", Paper: 67881, Exact: true},
	}
	type row struct {
		policy            string
		unfair, miss, tat float64
		loc               float64
	}
	// Eyeballed from Figures 8/9/11/13 and 14/15/17/19.
	rows := []row{
		{"cplant24.nomax.all", 9.5, 11000, 95000, 12.5},
		{"cplant24.nomax.fair", 8.2, 11400, 93000, 13.0},
		{"cplant72.nomax.all", 8.8, 10700, 97000, 12.6},
		{"cplant24.72max.all", 7.2, 2100, 87000, 10.4},
		{"cplant72.72max.fair", 4.2, 2400, 71000, 10.8},
		{"cons.nomax", 8.5, 11500, 105000, 12.8},
		{"consdyn.nomax", 3.5, 67881, 110000, 13.5},
		{"cons.72max", 5.5, 5500, 90000, 10.9},
		{"consdyn.72max", 4.5, 10500, 160000, 12.2},
	}
	for _, r := range rows {
		v = append(v,
			PaperValue{Artifact: "fig8/14", Metric: "% unfair jobs", Policy: r.policy, Paper: r.unfair},
			PaperValue{Artifact: "fig9/15", Metric: "avg miss time (s)", Policy: r.policy, Paper: r.miss},
			PaperValue{Artifact: "fig11/17", Metric: "avg turnaround (s)", Policy: r.policy, Paper: r.tat},
			PaperValue{Artifact: "fig13/19", Metric: "loss of capacity (%)", Policy: r.policy, Paper: r.loc},
		)
	}
	return v
}

// MeasuredFor looks up the measured counterpart of a paper value.
func MeasuredFor(r *Results, pv PaperValue) (float64, bool) {
	s, ok := r.ByKey[pv.Policy]
	if !ok {
		return 0, false
	}
	switch pv.Metric {
	case "% unfair jobs":
		return s.PercentUnfair, true
	case "avg miss time (s)":
		return s.AvgMissTime, true
	case "avg turnaround (s)":
		return s.AvgTurnaround, true
	case "loss of capacity (%)":
		return 100 * s.LossOfCapacity, true
	}
	return 0, false
}

// Claim is one qualitative statement from the paper's Results section that
// the reproduction must check.
type Claim struct {
	ID        string
	Artifact  string
	Statement string
	Check     func(r *Results) bool
}

// Claims returns the paper's Results-section statements as executable
// checks over a full nine-policy sweep.
func Claims() []Claim {
	base := "cplant24.nomax.all"
	lower := func(metric func(r *Results, key string) float64, key string) func(*Results) bool {
		return func(r *Results) bool { return metric(r, key) < metric(r, base) }
	}
	unfair := func(r *Results, key string) float64 { return r.ByKey[key].PercentUnfair }
	unfairLoad := func(r *Results, key string) float64 { return r.ByKey[key].PercentUnfairLoad }
	miss := func(r *Results, key string) float64 { return r.ByKey[key].AvgMissTime }
	tat := func(r *Results, key string) float64 { return r.ByKey[key].AvgTurnaround }
	loc := func(r *Results, key string) float64 { return r.ByKey[key].LossOfCapacity }

	return []Claim{
		{
			ID: "fig8-fair-reduces-unfair", Artifact: "fig8",
			Statement: "Barring heavy users from the starvation queue reduces the percent of unfair jobs",
			Check:     lower(unfair, "cplant24.nomax.fair"),
		},
		{
			ID: "fig8-72h-entry-reduces-unfair", Artifact: "fig8",
			Statement: "Raising the starvation-queue entry delay to 72h reduces the percent of unfair jobs",
			Check:     lower(unfair, "cplant72.nomax.all"),
		},
		{
			ID: "fig8-all-three-lowest", Artifact: "fig8",
			Statement: "All three minor changes together give the fewest unfair jobs among the minor policies",
			Check: func(r *Results) bool {
				v := unfair(r, "cplant72.72max.fair")
				for _, k := range r.MinorKeys {
					if k != "cplant72.72max.fair" && unfair(r, k) <= v {
						return false
					}
				}
				return true
			},
		},
		{
			ID: "fig8-72max-reduces-unfair-load", Artifact: "fig8",
			Statement: "72h maximum runtimes reduce unfairly treated work (load-weighted; see EXPERIMENTS.md for the job-count deviation)",
			Check:     lower(unfairLoad, "cplant24.72max.all"),
		},
		{
			ID: "fig9-72max-reduces-miss", Artifact: "fig9",
			Statement: "Introducing 72h maximum runtimes reduces the average miss time",
			Check:     lower(miss, "cplant24.72max.all"),
		},
		{
			ID: "fig10-wide-misses-dominate", Artifact: "fig10",
			Statement: "Baseline misses concentrate in the wide categories (129+ nodes)",
			Check: func(r *Results) bool {
				m := r.ByKey[base].AvgMissByWidth
				return m[8] > m[4] && m[9] > m[4] && m[10] > m[4]
			},
		},
		{
			ID: "fig11-72max-improves-tat", Artifact: "fig11",
			Statement: "Maximum runtimes improve the average turnaround time",
			Check:     lower(tat, "cplant24.72max.all"),
		},
		{
			ID: "fig12-72max-helps-wide-tat", Artifact: "fig12",
			Statement: "Maximum runtimes allow better progress (turnaround) for wide jobs",
			Check: func(r *Results) bool {
				b := r.ByKey[base].AvgTATByWidth
				m := r.ByKey["cplant24.72max.all"].AvgTATByWidth
				improved := 0
				for _, w := range []int{8, 9, 10} {
					if m[w] < b[w] {
						improved++
					}
				}
				return improved >= 2
			},
		},
		{
			ID: "fig13-72max-improves-loc", Artifact: "fig13",
			Statement: "Maximum runtimes improve (lower) the loss of capacity",
			Check:     lower(loc, "cplant24.72max.all"),
		},
		{
			ID: "fig14-consdyn-fewest-unfair", Artifact: "fig14",
			Statement: "The conservative dynamic policy has the fewest unfair jobs of all nine policies",
			Check: func(r *Results) bool {
				v := unfair(r, "consdyn.nomax")
				for _, k := range r.AllKeys {
					if k != "consdyn.nomax" && unfair(r, k) < v {
						return false
					}
				}
				return true
			},
		},
		{
			ID: "fig15-cons-nomax-high-miss", Artifact: "fig15",
			Statement: "Without 72h limits the conservative policies have a higher average miss time than the current policy",
			Check: func(r *Results) bool {
				return miss(r, "cons.nomax") > miss(r, base) && miss(r, "consdyn.nomax") > miss(r, base)
			},
		},
		{
			ID: "fig15-consdyn-outlier", Artifact: "fig15",
			Statement: "The dynamic conservative policy's misses are the most severe (the 67,881 s outlier bar)",
			Check: func(r *Results) bool {
				v := miss(r, "consdyn.nomax")
				return v > 1.5*miss(r, base)
			},
		},
		{
			ID: "fig15-cons72max-improves-miss", Artifact: "fig15",
			Statement: "Conservative backfilling with 72h limits improves the average miss time over the baseline",
			Check:     lower(miss, "cons.72max"),
		},
		{
			ID: "fig16-cons-helps-wide", Artifact: "fig16",
			Statement: "Conservative backfilling reduces the unfairness (miss time) of wide jobs",
			Check: func(r *Results) bool {
				b := r.ByKey[base].AvgMissByWidth
				c := r.ByKey["cons.nomax"].AvgMissByWidth
				improved := 0
				for _, w := range []int{8, 9, 10} {
					if c[w] < b[w] {
						improved++
					}
				}
				return improved >= 2
			},
		},
		{
			ID: "fig17-cons72max-competitive-tat", Artifact: "fig17",
			Statement: "The conservative schedule with 72h limits has a superior turnaround time to the plain conservative schedule",
			Check: func(r *Results) bool {
				return tat(r, "cons.72max") < tat(r, "cons.nomax")
			},
		},
		{
			ID: "fig19-72max-lowers-loc", Artifact: "fig19",
			Statement: "72h limits lower the loss of capacity of the conservative schedules",
			Check: func(r *Results) bool {
				return loc(r, "cons.72max") < loc(r, "cons.nomax") &&
					loc(r, "consdyn.72max") < loc(r, "consdyn.nomax")
			},
		},
	}
}

// CheckClaims evaluates every claim and writes a pass/fail report.
// It returns the number of passing claims.
func CheckClaims(w io.Writer, r *Results) int {
	pass := 0
	for _, c := range Claims() {
		ok := c.Check(r)
		status := "FAIL"
		if ok {
			status = "ok"
			pass++
		}
		fmt.Fprintf(w, "  [%-4s] %-30s %s\n", status, c.ID, c.Statement)
	}
	return pass
}

// WriteMarkdownReport renders the paper-vs-measured table and the claim
// checklist as GitHub Markdown — the exact tables EXPERIMENTS.md embeds, so
// the doc can be refreshed with `go run ./cmd/experiments -markdown`.
func WriteMarkdownReport(w io.Writer, r *Results) {
	fmt.Fprintln(w, "### Paper vs measured")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Artifact | Metric | Policy | Paper | Measured |")
	fmt.Fprintln(w, "|---|---|---|---:|---:|")
	for _, pv := range PaperValues() {
		m, ok := MeasuredFor(r, pv)
		if !ok {
			continue
		}
		note := "~"
		if pv.Exact {
			note = "="
		}
		fmt.Fprintf(w, "| %s | %s | `%s` | %s%.0f | %.0f |\n",
			pv.Artifact, pv.Metric, pv.Policy, note, pv.Paper, m)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "### Claim checklist")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Status | Claim | Artifact | Statement |")
	fmt.Fprintln(w, "|---|---|---|---|")
	pass, total := 0, 0
	for _, c := range Claims() {
		total++
		status := "✗"
		if c.Check(r) {
			status = "✓"
			pass++
		}
		fmt.Fprintf(w, "| %s | `%s` | %s | %s |\n", status, c.ID, c.Artifact, c.Statement)
	}
	fmt.Fprintf(w, "\n%d/%d claims reproduced.\n", pass, total)
}

// WriteReport renders the complete experiment sweep: characterization,
// every figure, the load-weighted companion, and the claim checklist.
func WriteReport(w io.Writer, r *Results, elapsed time.Duration) {
	c := Characterize(r.Jobs)
	RenderTable1(w, c.Table1)
	RenderTable2(w, c.Table2)
	RenderCharacterization(w, c)
	RenderFigure(w, r.Figure3())
	for _, f := range r.EvaluationFigures() {
		RenderFigure(w, f)
	}
	RenderFigure(w, r.UnfairLoadFigure())
	fmt.Fprintln(w, "PAPER VS MEASURED")
	fmt.Fprintf(w, "  %-10s %-22s %-22s %12s %12s\n", "artifact", "metric", "policy", "paper", "measured")
	for _, pv := range PaperValues() {
		m, ok := MeasuredFor(r, pv)
		if !ok {
			continue
		}
		note := "~"
		if pv.Exact {
			note = "="
		}
		fmt.Fprintf(w, "  %-10s %-22s %-22s %s%11.0f %12.0f\n",
			pv.Artifact, pv.Metric, pv.Policy, note, pv.Paper, m)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "PAPER CLAIMS")
	pass := CheckClaims(w, r)
	fmt.Fprintf(w, "  %d/%d claims reproduced", pass, len(Claims()))
	if elapsed > 0 {
		fmt.Fprintf(w, " (sweep took %v)", elapsed.Round(time.Millisecond))
	}
	fmt.Fprintln(w)
}
