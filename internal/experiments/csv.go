package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"fairsched/internal/job"
)

// CSV export: every figure and table as a comma-separated file, so the
// series can be re-plotted with any tool. One file per artifact, named
// after its id (fig8.csv, table1.csv, ...).

// WriteFigureCSV writes one figure: the first column holds the labels, one
// column per series follows.
func WriteFigureCSV(w io.Writer, f Figure) error {
	cw := csv.NewWriter(w)
	header := []string{"label"}
	for _, s := range f.Series {
		name := s.Name
		if name == "" {
			name = f.Unit
		}
		header = append(header, name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, label := range f.Labels {
		row := []string{label}
		for _, s := range f.Series {
			v := math.NaN()
			if i < len(s.Values) {
				v = s.Values[i]
			}
			if math.IsNaN(v) {
				row = append(row, "")
			} else {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable1CSV writes the job-count grid.
func WriteTable1CSV(w io.Writer, grid [job.NumWidthCategories][job.NumLengthCategories]int) error {
	cw := csv.NewWriter(w)
	header := append([]string{"nodes"}, job.LengthLabels[:]...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range grid {
		out := []string{job.WidthLabels[i]}
		for _, c := range row {
			out = append(out, strconv.Itoa(c))
		}
		if err := cw.Write(out); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV writes the processor-hour grid.
func WriteTable2CSV(w io.Writer, grid [job.NumWidthCategories][job.NumLengthCategories]float64) error {
	cw := csv.NewWriter(w)
	header := append([]string{"nodes"}, job.LengthLabels[:]...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range grid {
		out := []string{job.WidthLabels[i]}
		for _, c := range row {
			out = append(out, strconv.FormatFloat(c, 'f', 1, 64))
		}
		if err := cw.Write(out); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportCSV writes every artifact of a sweep into dir (created if needed):
// table1.csv, table2.csv, fig3.csv and fig8.csv through fig19.csv, plus the
// load-weighted companion figL.csv.
func ExportCSV(dir string, r *Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		return nil
	}
	c := Characterize(r.Jobs)
	if err := write("table1.csv", func(w io.Writer) error { return WriteTable1CSV(w, c.Table1) }); err != nil {
		return err
	}
	if err := write("table2.csv", func(w io.Writer) error { return WriteTable2CSV(w, c.Table2) }); err != nil {
		return err
	}
	figures := append([]Figure{r.Figure3()}, r.EvaluationFigures()...)
	figures = append(figures, r.UnfairLoadFigure())
	for _, fig := range figures {
		fig := fig
		if err := write(fig.ID+".csv", func(w io.Writer) error { return WriteFigureCSV(w, fig) }); err != nil {
			return err
		}
	}
	return nil
}
