package experiments

import (
	"bytes"
	"sort"
	"testing"

	"fairsched/internal/core"
	"fairsched/internal/scenario"
	"fairsched/internal/sched"
	"fairsched/internal/sweep"
	"fairsched/internal/workload"
)

// legacyExpansions pins, independently of the registry source, the exact
// component chain each pre-composable policy name must expand to — the
// chains proven schedule-identical to the deleted legacy schedulers before
// their deletion. Editing a builtin's components in registry.go breaks
// this table, not silently the paper's numbers (the equivalence guarantee
// DESIGN.md §9 documents).
var legacyExpansions = map[string]string{
	"cplant24.nomax.all":  "order=fairshare+bf=noguarantee+starve=24h.all",
	"cplant24.nomax.fair": "order=fairshare+bf=noguarantee+starve=24h.nonheavy",
	"cplant72.nomax.all":  "order=fairshare+bf=noguarantee+starve=72h.all",
	"cplant24.72max.all":  "order=fairshare+bf=noguarantee+starve=24h.all+max=72h",
	"cplant72.72max.fair": "order=fairshare+bf=noguarantee+starve=72h.nonheavy+max=72h",
	"cons.nomax":          "order=fairshare+bf=conservative",
	"consdyn.nomax":       "order=fairshare+bf=consdyn",
	"cons.72max":          "order=fairshare+bf=conservative+max=72h",
	"consdyn.72max":       "order=fairshare+bf=consdyn+max=72h",
	"fcfs":                "order=fcfs+bf=none",
	"easy":                "order=fcfs+bf=easy",
	"list.fairshare":      "order=fairshare+bf=none",
	"depth8":              "order=fairshare+bf=depth+depth=8",
}

// legacyPolicyNames lists the pinned names in deterministic order.
func legacyPolicyNames() []string {
	names := make([]string, 0, len(legacyExpansions))
	for n := range legacyExpansions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// campaignReport renders a four-cell campaign (2 scenarios × 2 seeds — a
// real multi-cell grid, so -parallel 8 genuinely races cell completions)
// for one spec at the given parallelism.
func campaignReport(t *testing.T, spec core.Spec, parallel int) []byte {
	t.Helper()
	cells, err := sweep.Campaign{
		Sources: []scenario.Source{
			scenario.Synthetic(workload.Config{Scale: 0.03, SystemSize: 150}),
		},
		Scenarios: []scenario.Scenario{scenario.Baseline(), mustScenario(t, "load=1.4")},
		Seeds:     []int64{42, 43},
		Specs:     []core.Spec{spec},
		Study:     core.StudyConfig{SystemSize: 150},
		Parallel:  parallel,
	}.Run()
	if err != nil {
		t.Fatalf("%s: %v", spec.String(), err)
	}
	var buf bytes.Buffer
	RenderCampaign(&buf, cells)
	return buf.Bytes()
}

func mustScenario(t *testing.T, spec string) scenario.Scenario {
	t.Helper()
	s, err := scenario.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestComposedPolicyCampaignDeterminism: for every legacy paper policy
// name, the composed spec yields a byte-identical campaign report at
// -parallel 1 and -parallel 8.
func TestComposedPolicyCampaignDeterminism(t *testing.T) {
	for _, name := range legacyPolicyNames() {
		spec, err := core.SpecByKey(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		serial := campaignReport(t, spec, 1)
		parallel := campaignReport(t, spec, 8)
		if !bytes.Equal(serial, parallel) {
			t.Errorf("%s: campaign report differs between -parallel 1 and 8", name)
		}
	}
}

// TestNamedSpecMatchesPinnedExpansion: each legacy name resolves to
// exactly its pinned component chain, and the chain spelled out explicitly
// (parsed from this file's table, not from the registry) renders a
// byte-identical report once the display label is held fixed.
func TestNamedSpecMatchesPinnedExpansion(t *testing.T) {
	for _, name := range legacyPolicyNames() {
		pinned := legacyExpansions[name]
		named, err := core.SpecByKey(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := named.Canonical(); got != pinned {
			t.Errorf("%s: registry expands to %q, pinned equivalence chain is %q", name, got, pinned)
			continue
		}
		chain, err := sched.ParseSpec(pinned)
		if err != nil {
			t.Fatalf("%s: pinned chain %q: %v", name, pinned, err)
		}
		chain.Key = named.Key // hold the display label fixed
		a := campaignReport(t, named, 1)
		b := campaignReport(t, chain, 1)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: named spec and pinned chain %q render different reports", name, pinned)
		}
	}
}
