package experiments

import (
	"math"

	"fairsched/internal/job"
	"fairsched/internal/stats"
)

// Characterization holds the workload-description artifacts of the paper's
// Section 2.2: Tables 1-2 and the data behind Figures 4-7.
type Characterization struct {
	Jobs           int
	TotalProcHours float64

	// Table 1 / Table 2 grids of the characterized trace.
	Table1 [job.NumWidthCategories][job.NumLengthCategories]int
	Table2 [job.NumWidthCategories][job.NumLengthCategories]float64

	// Figure 4: runtime vs nodes. StandardAllocFraction is the share of
	// jobs on power-of-two or perfect-square node counts; LogCorrelation is
	// Pearson's r between log(runtime) and log(nodes).
	StandardAllocFraction float64
	RuntimeNodesLogCorr   float64

	// Figure 5: user estimates vs runtimes.
	OverestimatedFraction  float64 // estimate > runtime
	UnderestimatedFraction float64 // estimate < runtime (jobs that overran)
	MedianOverestimation   float64 // median estimate/runtime factor

	// Figure 6: median overestimation factor per log-spaced runtime bin.
	RuntimeBinEdges    []float64
	OverByRuntimeBin   []float64
	OverRuntimeLogCorr float64 // r between log(runtime) and log(factor)

	// Figure 7: median overestimation factor per log-spaced node bin.
	NodeBinEdges     []float64
	OverByNodeBin    []float64
	OverNodesLogCorr float64 // r between log(nodes) and log(factor)
}

// Characterize computes the Section 2.2 artifacts for a workload.
func Characterize(jobs []*job.Job) *Characterization {
	c := &Characterization{Jobs: len(jobs)}
	c.Table1 = job.CountGrid(jobs)
	c.Table2 = job.ProcHourGrid(jobs)

	var logRun, logNodes, logOver []float64
	var over, under int
	var factors []float64
	standard := 0
	for _, j := range jobs {
		c.TotalProcHours += float64(j.ProcSeconds()) / 3600
		if isStandardAlloc(j.Nodes) {
			standard++
		}
		f := j.OverestimationFactor()
		factors = append(factors, f)
		logRun = append(logRun, math.Log(float64(j.Runtime)))
		logNodes = append(logNodes, math.Log(float64(j.Nodes)))
		logOver = append(logOver, math.Log(f))
		switch {
		case j.Estimate > j.Runtime:
			over++
		case j.Estimate < j.Runtime:
			under++
		}
	}
	if len(jobs) > 0 {
		n := float64(len(jobs))
		c.StandardAllocFraction = float64(standard) / n
		c.OverestimatedFraction = float64(over) / n
		c.UnderestimatedFraction = float64(under) / n
		c.MedianOverestimation = stats.Median(factors)
		c.RuntimeNodesLogCorr = stats.PearsonR(logRun, logNodes)
		c.OverRuntimeLogCorr = stats.PearsonR(logRun, logOver)
		c.OverNodesLogCorr = stats.PearsonR(logNodes, logOver)

		runtimes := make([]float64, len(jobs))
		nodes := make([]float64, len(jobs))
		for i, j := range jobs {
			runtimes[i] = float64(j.Runtime)
			nodes[i] = float64(j.Nodes)
		}
		c.RuntimeBinEdges = stats.LogBins(1, stats.Max(runtimes), 12)
		c.OverByRuntimeBin = stats.GroupMedians(c.RuntimeBinEdges, runtimes, factors)
		c.NodeBinEdges = stats.LogBins(1, stats.Max(nodes), 10)
		c.OverByNodeBin = stats.GroupMedians(c.NodeBinEdges, nodes, factors)
	}
	return c
}

// isStandardAlloc reports whether n is a power of two or a perfect square —
// the "standard" node allocations of Figure 4.
func isStandardAlloc(n int) bool {
	if n > 0 && n&(n-1) == 0 {
		return true
	}
	r := int(math.Sqrt(float64(n)))
	for _, k := range []int{r - 1, r, r + 1} {
		if k > 0 && k*k == n {
			return true
		}
	}
	return false
}
