package experiments

import (
	"fmt"
	"io"

	"fairsched/internal/workload"
)

// Seed-sweep robustness: the paper is a single-trace case study, so every
// bar chart carries trace-level variance. SeedSweep re-generates the
// synthetic workload under several seeds, re-runs the nine policies and
// tallies how often each Results-section claim holds — the evidence behind
// EXPERIMENTS.md's "robust across seeds" statements.

// ClaimTally is one claim's pass count across a sweep.
type ClaimTally struct {
	ID        string
	Statement string
	Passed    int
	Total     int
}

// SeedSweep runs the full study once per seed and tallies the claims.
// The workload config's Seed field is overridden per run.
func SeedSweep(cfg Config, seeds []int64) ([]ClaimTally, error) {
	claims := Claims()
	tally := make([]ClaimTally, len(claims))
	for i, c := range claims {
		tally[i] = ClaimTally{ID: c.ID, Statement: c.Statement}
	}
	for _, seed := range seeds {
		wl := cfg.Workload
		wl.Seed = seed
		if wl.SystemSize <= 0 {
			wl.SystemSize = cfg.Study.SystemSize
		}
		jobs, err := workload.Generate(wl)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		res, err := RunOn(cfg.Study, jobs)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		for i, c := range claims {
			tally[i].Total++
			if c.Check(res) {
				tally[i].Passed++
			}
		}
	}
	return tally, nil
}

// RenderSeedSweep writes the tally as a table, most robust claims first
// order preserved (paper order).
func RenderSeedSweep(w io.Writer, tally []ClaimTally, seeds []int64) {
	fmt.Fprintf(w, "SEED SWEEP — claim robustness across %d synthetic traces %v\n", len(seeds), seeds)
	pass := 0
	for _, t := range tally {
		marker := " "
		if t.Passed == t.Total {
			marker = "*"
			pass++
		}
		fmt.Fprintf(w, "  %s %d/%d %-32s %s\n", marker, t.Passed, t.Total, t.ID, t.Statement)
	}
	fmt.Fprintf(w, "  %d/%d claims hold under every seed (* = unanimous)\n", pass, len(tally))
}

// HoldsUnanimously reports whether the claim with the given id passed under
// every seed of the sweep.
func HoldsUnanimously(tally []ClaimTally, id string) bool {
	for _, t := range tally {
		if t.ID == id {
			return t.Total > 0 && t.Passed == t.Total
		}
	}
	return false
}
