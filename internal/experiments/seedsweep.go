package experiments

import (
	"fmt"
	"io"

	"fairsched/internal/hypothesis"
	"fairsched/internal/sweep"
)

// Seed-sweep robustness: the paper is a single-trace case study, so every
// bar chart carries trace-level variance. SeedSweep re-generates the
// synthetic workload under several seeds, re-runs the nine policies and
// tallies how often each Results-section claim holds — the evidence behind
// EXPERIMENTS.md's "robust across seeds" statements.

// ClaimTally is one claim's pass count across a sweep.
type ClaimTally struct {
	ID        string
	Statement string
	Passed    int
	Total     int
}

// SeedSweep runs the full study once per seed and tallies the claims. The
// workload config's Seed field is overridden per run. Seeds are fanned out
// on cfg.Parallel workers, one whole seed (trace generation plus all nine
// policies, serially) per task, and each seed is tallied as it completes —
// in completion order, which is fine because the tally is commutative
// per-claim counting. The resulting tally is independent of the
// parallelism; the per-seed unit keeps a long campaign's memory bounded by
// the worker count instead of the seed count.
//
// A failing seed does not void the sweep: its runs are dropped from the
// tally (Total counts only fully simulated seeds) and the aggregated error
// is returned alongside the surviving tally, so a long campaign keeps its
// results even when one trace diverges.
func SeedSweep(cfg Config, seeds []int64) ([]ClaimTally, error) {
	claims := PaperHypotheses()
	tally := make([]ClaimTally, len(claims))
	for i, c := range claims {
		tally[i] = ClaimTally{ID: c.ID, Statement: c.Statement}
	}
	err := sweep.Matrix{
		Workload: cfg.Workload,
		Study:    cfg.Study,
		Seeds:    seeds,
		Parallel: cfg.Parallel,
	}.RunEach(func(sr sweep.SeedRuns) {
		resolve := resultsResolver(assemble(sr.Jobs, sr.Runs))
		for i, c := range claims {
			tally[i].Total++
			if hypothesis.EvaluateSeed(c, sr.Seed, resolve).Pass {
				tally[i].Passed++
			}
		}
	})
	if err != nil {
		return tally, fmt.Errorf("experiments: %w", err)
	}
	return tally, nil
}

// RenderSeedSweep writes the tally as a table, most robust claims first
// order preserved (paper order). A claim is only unanimous over seeds that
// actually completed — a sweep where every seed failed tallies nothing and
// must not render as maximal robustness.
func RenderSeedSweep(w io.Writer, tally []ClaimTally, seeds []int64) {
	fmt.Fprintf(w, "SEED SWEEP — claim robustness across %d synthetic traces %v\n", len(seeds), seeds)
	simulated := 0
	if len(tally) > 0 {
		simulated = tally[0].Total
	}
	if simulated < len(seeds) {
		fmt.Fprintf(w, "  (%d of %d seeds completed; failed seeds are excluded from the tally)\n", simulated, len(seeds))
	}
	pass := 0
	for _, t := range tally {
		marker := " "
		if t.Total > 0 && t.Passed == t.Total {
			marker = "*"
			pass++
		}
		fmt.Fprintf(w, "  %s %d/%d %-32s %s\n", marker, t.Passed, t.Total, t.ID, t.Statement)
	}
	fmt.Fprintf(w, "  %d/%d claims hold under every seed (* = unanimous)\n", pass, len(tally))
}

// HoldsUnanimously reports whether the claim with the given id passed under
// every seed of the sweep.
func HoldsUnanimously(tally []ClaimTally, id string) bool {
	for _, t := range tally {
		if t.ID == id {
			return t.Total > 0 && t.Passed == t.Total
		}
	}
	return false
}
