package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fairsched/internal/core"
	"fairsched/internal/workload"
)

// TestSeedSweepKeepsTallyOnFailure checks a sweep whose runs fail still
// returns the (empty-total) tally alongside the aggregated error instead of
// discarding everything.
func TestSeedSweepKeepsTallyOnFailure(t *testing.T) {
	tally, err := SeedSweep(Config{
		Workload: workload.Config{Scale: 0.02, SystemSize: 100},
		Study:    core.StudyConfig{SystemSize: 2}, // every run fails validation
		Parallel: 4,
	}, []int64{1, 2})
	if err == nil {
		t.Fatal("expected error")
	}
	if tally == nil {
		t.Fatal("tally discarded despite per-run error capture")
	}
	for _, c := range tally {
		if c.Total != 0 || c.Passed != 0 {
			t.Fatalf("claim %s tallied %d/%d from failed seeds", c.ID, c.Passed, c.Total)
		}
	}
	// Rendering an all-failed sweep must not report unanimous robustness.
	var buf bytes.Buffer
	RenderSeedSweep(&buf, tally, []int64{1, 2})
	out := buf.String()
	if strings.Contains(out, "* 0/0") {
		t.Fatalf("0/0 claims rendered as unanimous:\n%s", out)
	}
	if !strings.Contains(out, "0 of 2 seeds completed") {
		t.Fatalf("incomplete sweep not flagged in header:\n%s", out)
	}
	if !strings.Contains(out, "0/16 claims hold") {
		t.Fatalf("summary line claims robustness from nothing:\n%s", out)
	}
}

func TestSeedSweepTallies(t *testing.T) {
	cfg := Config{
		Workload: workload.Config{Scale: 0.1, SystemSize: 100},
		Study:    core.StudyConfig{SystemSize: 100},
	}
	seeds := []int64{1, 2}
	tally, err := SeedSweep(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tally) != len(PaperHypotheses()) {
		t.Fatalf("tally covers %d claims, want %d", len(tally), len(PaperHypotheses()))
	}
	for _, c := range tally {
		if c.Total != len(seeds) {
			t.Errorf("%s evaluated %d times, want %d", c.ID, c.Total, len(seeds))
		}
		if c.Passed < 0 || c.Passed > c.Total {
			t.Errorf("%s pass count %d out of range", c.ID, c.Passed)
		}
	}
}

func TestRenderSeedSweep(t *testing.T) {
	tally := []ClaimTally{
		{ID: "a", Statement: "always holds", Passed: 3, Total: 3},
		{ID: "b", Statement: "sometimes holds", Passed: 1, Total: 3},
	}
	var buf bytes.Buffer
	RenderSeedSweep(&buf, tally, []int64{1, 2, 3})
	out := buf.String()
	if !strings.Contains(out, "* 3/3 a") {
		t.Fatalf("unanimous claim not starred: %q", out)
	}
	if !strings.Contains(out, "1/3 b") {
		t.Fatalf("partial claim missing: %q", out)
	}
	if !strings.Contains(out, "1/2 claims hold under every seed") {
		t.Fatalf("summary line wrong: %q", out)
	}
}

func TestHoldsUnanimously(t *testing.T) {
	tally := []ClaimTally{
		{ID: "a", Passed: 2, Total: 2},
		{ID: "b", Passed: 1, Total: 2},
	}
	if !HoldsUnanimously(tally, "a") {
		t.Error("a should be unanimous")
	}
	if HoldsUnanimously(tally, "b") || HoldsUnanimously(tally, "missing") {
		t.Error("b/missing should not be unanimous")
	}
}
