package experiments

import (
	"fmt"
	"io"
	"sort"

	"fairsched/internal/sched"
)

// sortedBuiltins returns the policy registry sorted by name — listings are
// lookup tables, so they render in a deterministic order a reader can scan,
// independent of registration order.
func sortedBuiltins() []sched.Builtin {
	bs := append([]sched.Builtin(nil), sched.Builtins()...)
	sort.Slice(bs, func(i, k int) bool { return bs[i].Key < bs[k].Key })
	return bs
}

// ListPolicies writes the named-policy registry — every builtin spec with
// its component expansion and description, sorted by name — followed by the
// spec grammar, symmetric with the -list-scenarios listing.
func ListPolicies(w io.Writer) {
	fmt.Fprintln(w, "Built-in policies (name, expansion, description):")
	keyW, expW := 0, 0
	builtins := sortedBuiltins()
	for _, b := range builtins {
		if len(b.Key) > keyW {
			keyW = len(b.Key)
		}
		if c := b.Spec.Canonical(); len(c) > expW {
			expW = len(c)
		}
	}
	for _, b := range builtins {
		fmt.Fprintf(w, "  %-*s  %-*s  %s\n", keyW, b.Key, expW, b.Spec.Canonical(), b.Description)
	}
	fmt.Fprintln(w, "\nAny \"depth<N>\" (N >= 1) is depth-N backfilling over the fairshare queue.")
	fmt.Fprintln(w, "\nAd-hoc chains join components with '+':")
	fmt.Fprintln(w, "  order=fairshare|fcfs|sjf|lxf|widest|narrowest   queue order (default fairshare)")
	fmt.Fprintln(w, "  bf=none|noguarantee|easy|depth|conservative|consdyn")
	fmt.Fprintln(w, "                                                  backfill discipline (default noguarantee)")
	fmt.Fprintln(w, "  starve=24h[.all|.nonheavy|.q75|.abs280h]        starvation queue: wait threshold + admission")
	fmt.Fprintln(w, "                                                  (q<N>: heavy above the N-th usage quantile;")
	fmt.Fprintln(w, "                                                  abs<S>: heavy above S decayed proc-seconds)")
	fmt.Fprintln(w, "  depth=2                                         reservation depth (with starve or bf=depth)")
	fmt.Fprintln(w, "  max=72h                                         maximum-runtime limit (simulator-enforced)")
	fmt.Fprintln(w, "\nExample: -policy 'order=fairshare+bf=easy+starve=24h.nonheavy+depth=2'")
}

// PolicyTableMarkdown writes the registry as the Markdown table embedded in
// README.md (regenerate with `experiments -list-policies -markdown`).
func PolicyTableMarkdown(w io.Writer) {
	fmt.Fprintln(w, "| Name | Components | Description |")
	fmt.Fprintln(w, "|------|------------|-------------|")
	for _, b := range sortedBuiltins() {
		fmt.Fprintf(w, "| `%s` | `%s` | %s |\n", b.Key, b.Spec.Canonical(), b.Description)
	}
}
