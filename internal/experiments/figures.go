package experiments

import (
	"fmt"

	"fairsched/internal/job"
	"fairsched/internal/metrics"
)

// Figure is the data behind one of the paper's evaluation figures: a set of
// series over shared x labels. Bar figures (one value per policy) carry one
// series whose labels are the policy names; category figures carry one
// series per policy over the 11 width labels; Figure 3 carries two weekly
// series.
type Figure struct {
	ID     string
	Title  string
	Unit   string
	Labels []string
	Series []Series
}

// Series is one named sequence of values aligned with the figure's labels.
type Series struct {
	Name   string
	Values []float64
}

// widthLabels returns the 11 category labels as a slice.
func widthLabels() []string {
	return append([]string(nil), job.WidthLabels[:]...)
}

// barFigure builds a one-value-per-policy figure.
func (r *Results) barFigure(id, title, unit string, keys []string, value func(*metrics.Summary) float64) Figure {
	f := Figure{ID: id, Title: title, Unit: unit}
	s := Series{Name: unit}
	for _, k := range keys {
		f.Labels = append(f.Labels, k)
		s.Values = append(s.Values, value(r.ByKey[k]))
	}
	f.Series = []Series{s}
	return f
}

// widthFigure builds a per-width-category figure with one series per policy.
func (r *Results) widthFigure(id, title, unit string, keys []string, values func(*metrics.Summary) [job.NumWidthCategories]float64) Figure {
	f := Figure{ID: id, Title: title, Unit: unit, Labels: widthLabels()}
	for _, k := range keys {
		v := values(r.ByKey[k])
		f.Series = append(f.Series, Series{Name: k, Values: v[:]})
	}
	return f
}

// Figure3 is the weekly offered load and actual utilization of the baseline
// run, as percentages of weekly capacity.
func (r *Results) Figure3() Figure {
	base := r.Baseline()
	f := Figure{
		ID:    "fig3",
		Title: "Offered load and actual utilization of the CPlant/Ross workload",
		Unit:  "% of weekly capacity",
	}
	offered := Series{Name: "Offered Load"}
	util := Series{Name: "Actual Utilization"}
	for w := range base.WeeklyOfferedLoad {
		f.Labels = append(f.Labels, fmt.Sprintf("Week %d", w))
		offered.Values = append(offered.Values, 100*base.WeeklyOfferedLoad[w])
		u := 0.0
		if w < len(base.WeeklyUtilization) {
			u = 100 * base.WeeklyUtilization[w]
		}
		util.Values = append(util.Values, u)
	}
	f.Series = []Series{offered, util}
	return f
}

// Figure8 is the percent of unfair jobs for the minor-change policies.
func (r *Results) Figure8() Figure {
	return r.barFigure("fig8", "Percentage of jobs that missed the fair start time (minor changes)",
		"% unfair jobs", r.MinorKeys, func(s *metrics.Summary) float64 { return s.PercentUnfair })
}

// Figure9 is the average miss time for the minor-change policies.
func (r *Results) Figure9() Figure {
	return r.barFigure("fig9", "Average fair start miss time (minor changes)",
		"seconds", r.MinorKeys, func(s *metrics.Summary) float64 { return s.AvgMissTime })
}

// Figure10 is the average miss time by width category, minor changes.
func (r *Results) Figure10() Figure {
	return r.widthFigure("fig10", "Average fair start miss time by width (minor changes)",
		"seconds", r.MinorKeys, func(s *metrics.Summary) [job.NumWidthCategories]float64 { return s.AvgMissByWidth })
}

// Figure11 is the average turnaround time for the minor-change policies.
func (r *Results) Figure11() Figure {
	return r.barFigure("fig11", "Average turnaround time (minor changes)",
		"seconds", r.MinorKeys, func(s *metrics.Summary) float64 { return s.AvgTurnaround })
}

// Figure12 is the average turnaround time by width, minor changes.
func (r *Results) Figure12() Figure {
	return r.widthFigure("fig12", "Average turnaround time by width (minor changes)",
		"seconds", r.MinorKeys, func(s *metrics.Summary) [job.NumWidthCategories]float64 { return s.AvgTATByWidth })
}

// Figure13 is the loss of capacity for the minor-change policies.
func (r *Results) Figure13() Figure {
	return r.barFigure("fig13", "Loss of capacity (minor changes)",
		"% of capacity", r.MinorKeys, func(s *metrics.Summary) float64 { return 100 * s.LossOfCapacity })
}

// Figure14 is the percent of unfair jobs for all nine policies.
func (r *Results) Figure14() Figure {
	return r.barFigure("fig14", "Percentage of jobs that missed the fair start time (all policies)",
		"% unfair jobs", r.AllKeys, func(s *metrics.Summary) float64 { return s.PercentUnfair })
}

// Figure15 is the average miss time for all nine policies.
func (r *Results) Figure15() Figure {
	return r.barFigure("fig15", "Average fair start miss time (all policies)",
		"seconds", r.AllKeys, func(s *metrics.Summary) float64 { return s.AvgMissTime })
}

// conservativeComparisonKeys are the baseline plus the conservative
// configurations, the series of Figures 16 and 18.
func (r *Results) conservativeComparisonKeys() []string {
	return []string{"cplant24.nomax.all", "cons.nomax", "consdyn.nomax", "cons.72max", "consdyn.72max"}
}

// Figure16 is the average miss time by width for the conservative set.
func (r *Results) Figure16() Figure {
	return r.widthFigure("fig16", "Average miss time by width (conservative backfilling)",
		"seconds", r.conservativeComparisonKeys(),
		func(s *metrics.Summary) [job.NumWidthCategories]float64 { return s.AvgMissByWidth })
}

// Figure17 is the average turnaround time for all nine policies.
func (r *Results) Figure17() Figure {
	return r.barFigure("fig17", "Average turnaround time (all policies)",
		"seconds", r.AllKeys, func(s *metrics.Summary) float64 { return s.AvgTurnaround })
}

// Figure18 is the average turnaround time by width for the conservative set.
func (r *Results) Figure18() Figure {
	return r.widthFigure("fig18", "Average turnaround time by width (conservative backfilling)",
		"seconds", r.conservativeComparisonKeys(),
		func(s *metrics.Summary) [job.NumWidthCategories]float64 { return s.AvgTATByWidth })
}

// Figure19 is the loss of capacity for all nine policies.
func (r *Results) Figure19() Figure {
	return r.barFigure("fig19", "Loss of capacity (all policies)",
		"% of capacity", r.AllKeys, func(s *metrics.Summary) float64 { return 100 * s.LossOfCapacity })
}

// UnfairLoadFigure is the §4 load-weighted companion of Figures 8/14: the
// percentage of offered processor-seconds belonging to jobs that missed
// their FST. Not a paper figure, but recorded because the job-count and
// load-weighted variants can rank policies differently (see EXPERIMENTS.md).
func (r *Results) UnfairLoadFigure() Figure {
	return r.barFigure("figL", "Percentage of load that missed the fair start time (all policies)",
		"% unfair load", r.AllKeys, func(s *metrics.Summary) float64 { return s.PercentUnfairLoad })
}

// EvaluationFigures returns Figures 8-19 in paper order.
func (r *Results) EvaluationFigures() []Figure {
	return []Figure{
		r.Figure8(), r.Figure9(), r.Figure10(), r.Figure11(), r.Figure12(), r.Figure13(),
		r.Figure14(), r.Figure15(), r.Figure16(), r.Figure17(), r.Figure18(), r.Figure19(),
	}
}
