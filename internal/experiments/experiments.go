// Package experiments regenerates every table and figure of the paper's
// evaluation: the workload characterization (Tables 1-2, Figures 3-7), the
// "minor changes" study (Figures 8-13) and the full nine-policy study
// (Figures 14-19), plus the qualitative claim checklist recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"fairsched/internal/core"
	"fairsched/internal/job"
	"fairsched/internal/metrics"
	"fairsched/internal/workload"
)

// Config parameterizes a full experiment sweep.
type Config struct {
	// Workload generates the trace (zero value: the calibrated full-scale
	// synthetic CPlant/Ross trace).
	Workload workload.Config
	// Study configures the runs (zero value: calibrated defaults).
	Study core.StudyConfig
}

// Results holds everything the figures are built from.
type Results struct {
	Jobs      []*job.Job
	ByKey     map[string]*metrics.Summary
	Runs      []*core.Run
	MinorKeys []string
	AllKeys   []string
}

// Run executes all nine policies over one generated workload.
func Run(cfg Config) (*Results, error) {
	if cfg.Workload.SystemSize <= 0 {
		cfg.Workload.SystemSize = cfg.Study.SystemSize
	}
	jobs, err := workload.Generate(cfg.Workload)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return RunOn(cfg.Study, jobs)
}

// RunOn executes all nine policies over a supplied workload.
func RunOn(study core.StudyConfig, jobs []*job.Job) (*Results, error) {
	specs := core.AllSpecs()
	runs, err := core.ExecuteAll(study, specs, jobs)
	if err != nil {
		return nil, err
	}
	res := &Results{
		Jobs:  jobs,
		ByKey: make(map[string]*metrics.Summary, len(runs)),
		Runs:  runs,
	}
	for _, r := range runs {
		res.ByKey[r.Spec.Key] = r.Summary
	}
	for _, s := range core.MinorSpecs() {
		res.MinorKeys = append(res.MinorKeys, s.Key)
	}
	for _, s := range specs {
		res.AllKeys = append(res.AllKeys, s.Key)
	}
	return res, nil
}

// Baseline returns the baseline policy's summary.
func (r *Results) Baseline() *metrics.Summary { return r.ByKey["cplant24.nomax.all"] }
