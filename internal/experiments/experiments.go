// Package experiments regenerates every table and figure of the paper's
// evaluation: the workload characterization (Tables 1-2, Figures 3-7), the
// "minor changes" study (Figures 8-13) and the full nine-policy study
// (Figures 14-19), plus the qualitative claim checklist recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"fairsched/internal/core"
	"fairsched/internal/job"
	"fairsched/internal/metrics"
	"fairsched/internal/sweep"
	"fairsched/internal/workload"
)

// Config parameterizes a full experiment sweep.
type Config struct {
	// Workload generates the trace (zero value: the calibrated full-scale
	// synthetic CPlant/Ross trace).
	Workload workload.Config
	// Study configures the runs (zero value: calibrated defaults).
	Study core.StudyConfig
	// Parallel bounds the sweep engine's worker pool: 1 runs policies
	// serially, 0 (and negatives) use one worker per CPU. Results are
	// identical at every setting; only wall-clock time changes.
	Parallel int
}

// Results holds everything the figures are built from.
type Results struct {
	Jobs      []*job.Job
	ByKey     map[string]*metrics.Summary
	Runs      []*core.Run
	MinorKeys []string
	AllKeys   []string
}

// Run executes all nine policies over one generated workload, fanned out on
// cfg.Parallel workers.
func Run(cfg Config) (*Results, error) {
	if cfg.Workload.SystemSize <= 0 {
		cfg.Workload.SystemSize = cfg.Study.SystemSize
	}
	jobs, err := workload.Generate(cfg.Workload)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return RunOnParallel(cfg.Study, jobs, cfg.Parallel)
}

// RunOn executes all nine policies serially over a supplied workload.
func RunOn(study core.StudyConfig, jobs []*job.Job) (*Results, error) {
	return RunOnParallel(study, jobs, 1)
}

// RunOnParallel executes all nine policies over a supplied workload on at
// most parallel workers (<= 0: one per CPU). The resulting summaries are
// identical to a serial run.
func RunOnParallel(study core.StudyConfig, jobs []*job.Job, parallel int) (*Results, error) {
	runs, err := sweep.Runs(study, core.AllSpecs(), jobs, parallel)
	if err != nil {
		return nil, err
	}
	return assemble(jobs, runs), nil
}

// assemble builds a Results from one full policy sweep's runs (spec order).
func assemble(jobs []*job.Job, runs []*core.Run) *Results {
	res := &Results{
		Jobs:  jobs,
		ByKey: make(map[string]*metrics.Summary, len(runs)),
		Runs:  runs,
	}
	for _, r := range runs {
		res.ByKey[r.Spec.Key] = r.Summary
		res.AllKeys = append(res.AllKeys, r.Spec.Key)
	}
	for _, s := range core.MinorSpecs() {
		res.MinorKeys = append(res.MinorKeys, s.Key)
	}
	return res
}

// Baseline returns the baseline policy's summary.
func (r *Results) Baseline() *metrics.Summary { return r.ByKey["cplant24.nomax.all"] }
