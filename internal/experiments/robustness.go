package experiments

import (
	"fmt"
	"io"
	"sort"

	"fairsched/internal/sweep"
)

// Cross-trace robustness: a policy that wins on one machine's trace and
// collapses on another is not deployable. When a campaign spans several
// traces, the report closes with a scoreboard that aggregates each
// policy's median bounded slowdown per trace into ranks, then across
// traces into a mean rank and pairwise win/loss record — the deployability
// ordering, as opposed to any single trace's podium.

// policyRobustness is one policy's aggregated cross-trace standing.
type policyRobustness struct {
	Policy string
	// MedBSLD[t] is the policy's median bounded slowdown on trace t (mean
	// over the trace's scenario × seed cells).
	MedBSLD []float64
	// Rank[t] is the policy's 1-based rank on trace t (1 = lowest slowdown).
	Rank []int
	// MeanRank is the average of Rank over traces — the headline.
	MeanRank float64
	// Wins / Losses count pairwise trace-level victories: policy A beats B
	// on trace t when A's median slowdown is strictly lower there. Each
	// (opponent, trace) pair contributes one win, one loss, or (on ties)
	// neither.
	Wins, Losses int
}

// robustnessTable aggregates completed campaign cells into the per-policy
// cross-trace standings. It returns nil unless the cells span at least two
// distinct sources with at least one shared policy — single-trace
// campaigns keep their report exactly as before. Failed (nil) cells drop
// their trace from the aggregation only if no surviving cell covers it.
func robustnessTable(cells []*sweep.CellSummary) []policyRobustness {
	// Collect traces (first-appearance order) and policies (cell spec
	// order) over the surviving cells.
	var traces []string
	traceIdx := map[string]int{}
	var policies []string
	polIdx := map[string]int{}
	for _, c := range cells {
		if c == nil {
			continue
		}
		if _, ok := traceIdx[c.Source]; !ok {
			traceIdx[c.Source] = len(traces)
			traces = append(traces, c.Source)
		}
		for _, p := range c.Policies {
			if _, ok := polIdx[p]; !ok {
				polIdx[p] = len(policies)
				policies = append(policies, p)
			}
		}
	}
	if len(traces) < 2 || len(policies) == 0 {
		return nil
	}
	// Mean of median_bsld per (policy, trace) over that trace's cells.
	sum := make([][]float64, len(policies))
	cnt := make([][]int, len(policies))
	for i := range sum {
		sum[i] = make([]float64, len(traces))
		cnt[i] = make([]int, len(traces))
	}
	for _, c := range cells {
		if c == nil {
			continue
		}
		t := traceIdx[c.Source]
		for k, p := range c.Policies {
			i := polIdx[p]
			sum[i][t] += c.Summaries[k].MedianBoundedSlowdown
			cnt[i][t]++
		}
	}
	// Only rank policies measured on every trace (a partial failure must
	// not hand a policy a default win on the traces it skipped).
	out := make([]policyRobustness, 0, len(policies))
	for i, p := range policies {
		r := policyRobustness{Policy: p, MedBSLD: make([]float64, len(traces)), Rank: make([]int, len(traces))}
		complete := true
		for t := range traces {
			if cnt[i][t] == 0 {
				complete = false
				break
			}
			r.MedBSLD[t] = sum[i][t] / float64(cnt[i][t])
		}
		if complete {
			out = append(out, r)
		}
	}
	if len(out) < 2 {
		return nil
	}
	// Per-trace ranks (ties share the lower rank) and pairwise win/loss.
	for t := range traces {
		for i := range out {
			rank := 1
			for k := range out {
				if out[k].MedBSLD[t] < out[i].MedBSLD[t] {
					rank++
				}
			}
			out[i].Rank[t] = rank
		}
		for i := range out {
			for k := range out {
				if out[i].MedBSLD[t] < out[k].MedBSLD[t] {
					out[i].Wins++
				} else if out[i].MedBSLD[t] > out[k].MedBSLD[t] {
					out[i].Losses++
				}
			}
		}
	}
	for i := range out {
		total := 0
		for _, rk := range out[i].Rank {
			total += rk
		}
		out[i].MeanRank = float64(total) / float64(len(traces))
	}
	// Deployability order: mean rank, then win surplus, then name (total,
	// deterministic at every parallelism).
	sort.SliceStable(out, func(i, k int) bool {
		a, b := &out[i], &out[k]
		if a.MeanRank != b.MeanRank {
			return a.MeanRank < b.MeanRank
		}
		if a.Wins-a.Losses != b.Wins-b.Losses {
			return a.Wins-a.Losses > b.Wins-b.Losses
		}
		return a.Policy < b.Policy
	})
	return out
}

// renderRobustness writes the cross-trace scoreboard. Silent (and the
// report byte-identical to before) unless the campaign spans 2+ traces.
func renderRobustness(w io.Writer, cells []*sweep.CellSummary) {
	table := robustnessTable(cells)
	if table == nil {
		return
	}
	var traces []string
	seen := map[string]bool{}
	for _, c := range cells {
		if c != nil && !seen[c.Source] {
			seen[c.Source] = true
			traces = append(traces, c.Source)
		}
	}
	polW := len("policy")
	for _, r := range table {
		if len(r.Policy) > polW {
			polW = len(r.Policy)
		}
	}
	fmt.Fprintf(w, "CROSS-TRACE ROBUSTNESS — %d policies over %d traces, ranked by mean per-trace\n", len(table), len(traces))
	fmt.Fprintf(w, "median bounded-slowdown rank; win/loss counts pairwise per-trace victories\n\n")
	fmt.Fprintf(w, "  %-*s %9s %6s %6s", polW, "policy", "meanrank", "wins", "losses")
	for _, tr := range traces {
		width := len(tr)
		if width < 8 {
			width = 8
		}
		fmt.Fprintf(w, " %*s", width, tr)
	}
	fmt.Fprintln(w)
	for _, r := range table {
		fmt.Fprintf(w, "  %-*s %9.2f %6d %6d", polW, r.Policy, r.MeanRank, r.Wins, r.Losses)
		for t, tr := range traces {
			width := len(tr)
			if width < 8 {
				width = 8
			}
			fmt.Fprintf(w, " %*s", width, fmt.Sprintf("%.2f/#%d", r.MedBSLD[t], r.Rank[t]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
