package experiments

import (
	"testing"

	"fairsched/internal/hypothesis"
	"fairsched/internal/workload"
)

// The legacy claim checker (the closure table that lived in paper.go until
// the hypothesis migration), re-stated verbatim as the reference semantics.
// The migration contract: for every claim and every seed, the hypothesis
// spec's verdict equals the legacy closure's — so deleting the closures
// changed no verdict, ever.
func legacyChecks() map[string]func(r *Results) bool {
	base := "cplant24.nomax.all"
	lower := func(metric func(r *Results, key string) float64, key string) func(*Results) bool {
		return func(r *Results) bool { return metric(r, key) < metric(r, base) }
	}
	unfair := func(r *Results, key string) float64 { return r.ByKey[key].PercentUnfair }
	unfairLoad := func(r *Results, key string) float64 { return r.ByKey[key].PercentUnfairLoad }
	miss := func(r *Results, key string) float64 { return r.ByKey[key].AvgMissTime }
	tat := func(r *Results, key string) float64 { return r.ByKey[key].AvgTurnaround }
	loc := func(r *Results, key string) float64 { return r.ByKey[key].LossOfCapacity }

	return map[string]func(r *Results) bool{
		"fig8-fair-reduces-unfair":      lower(unfair, "cplant24.nomax.fair"),
		"fig8-72h-entry-reduces-unfair": lower(unfair, "cplant72.nomax.all"),
		"fig8-all-three-lowest": func(r *Results) bool {
			v := unfair(r, "cplant72.72max.fair")
			for _, k := range r.MinorKeys {
				if k != "cplant72.72max.fair" && unfair(r, k) <= v {
					return false
				}
			}
			return true
		},
		"fig8-72max-reduces-unfair-load": lower(unfairLoad, "cplant24.72max.all"),
		"fig9-72max-reduces-miss":        lower(miss, "cplant24.72max.all"),
		"fig10-wide-misses-dominate": func(r *Results) bool {
			m := r.ByKey[base].AvgMissByWidth
			return m[8] > m[4] && m[9] > m[4] && m[10] > m[4]
		},
		"fig11-72max-improves-tat": lower(tat, "cplant24.72max.all"),
		"fig12-72max-helps-wide-tat": func(r *Results) bool {
			b := r.ByKey[base].AvgTATByWidth
			m := r.ByKey["cplant24.72max.all"].AvgTATByWidth
			improved := 0
			for _, w := range []int{8, 9, 10} {
				if m[w] < b[w] {
					improved++
				}
			}
			return improved >= 2
		},
		"fig13-72max-improves-loc": lower(loc, "cplant24.72max.all"),
		"fig14-consdyn-fewest-unfair": func(r *Results) bool {
			v := unfair(r, "consdyn.nomax")
			for _, k := range r.AllKeys {
				if k != "consdyn.nomax" && unfair(r, k) < v {
					return false
				}
			}
			return true
		},
		"fig15-cons-nomax-high-miss": func(r *Results) bool {
			return miss(r, "cons.nomax") > miss(r, base) && miss(r, "consdyn.nomax") > miss(r, base)
		},
		"fig15-consdyn-outlier": func(r *Results) bool {
			v := miss(r, "consdyn.nomax")
			return v > 1.5*miss(r, base)
		},
		"fig15-cons72max-improves-miss": lower(miss, "cons.72max"),
		"fig16-cons-helps-wide": func(r *Results) bool {
			b := r.ByKey[base].AvgMissByWidth
			c := r.ByKey["cons.nomax"].AvgMissByWidth
			improved := 0
			for _, w := range []int{8, 9, 10} {
				if c[w] < b[w] {
					improved++
				}
			}
			return improved >= 2
		},
		"fig17-cons72max-competitive-tat": func(r *Results) bool {
			return tat(r, "cons.72max") < tat(r, "cons.nomax")
		},
		"fig19-72max-lowers-loc": func(r *Results) bool {
			return loc(r, "cons.72max") < loc(r, "cons.nomax") &&
				loc(r, "consdyn.72max") < loc(r, "consdyn.nomax")
		},
	}
}

// TestPaperHypothesesMatchLegacyClaims runs a reduced-scale nine-policy
// study under each of the reproduction's ten seeds (42–51) and demands that
// every hypothesis spec returns exactly the verdict the legacy closure
// would have — the differential pin that allowed deleting the closure
// table. The reduced scale exercises both verdict polarities: some claims
// flip per seed at this size, which is exactly what makes the comparison
// meaningful.
func TestPaperHypothesesMatchLegacyClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("ten reduced-scale sweeps")
	}
	legacy := legacyChecks()
	specs := PaperHypotheses()
	if len(specs) != len(legacy) {
		t.Fatalf("spec count %d != legacy count %d", len(specs), len(legacy))
	}
	for seed := int64(42); seed <= 51; seed++ {
		res, err := Run(Config{
			Workload: workload.Config{Seed: seed, Scale: 0.15, SystemSize: 150},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		resolve := resultsResolver(res)
		for _, s := range specs {
			check, ok := legacy[s.ID]
			if !ok {
				t.Fatalf("claim %s has no legacy counterpart", s.ID)
			}
			want := check(res)
			got := hypothesis.EvaluateSeed(s, seed, resolve)
			if got.Err != nil {
				t.Fatalf("seed %d claim %s: %v", seed, s.ID, got.Err)
			}
			if got.Pass != want {
				t.Errorf("seed %d claim %s: hypothesis %v, legacy %v\n  spec: %s",
					seed, s.ID, got.Pass, want, s.Canonical())
			}
		}
	}
}
