package experiments

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairsched/internal/workload"
)

func TestWriteFigureCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFigureCSV(&buf, Figure{
		ID: "fig9", Unit: "seconds",
		Labels: []string{"a", "b"},
		Series: []Series{{Name: "seconds", Values: []float64{10.5, 20}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][0] != "label" || rows[0][1] != "seconds" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][0] != "a" || rows[1][1] != "10.5" {
		t.Fatalf("row 1 = %v", rows[1])
	}
}

func TestWriteFigureCSVMultiSeriesWithGaps(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFigureCSV(&buf, Figure{
		ID:     "fig10",
		Labels: []string{"1", "2", "3"},
		Series: []Series{
			{Name: "p1", Values: []float64{1, 2, 3}},
			{Name: "p2", Values: []float64{4}}, // short series -> empty cells
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := csv.NewReader(&buf).ReadAll()
	if rows[2][2] != "" {
		t.Fatalf("missing value should be empty, got %q", rows[2][2])
	}
}

func TestWriteTableCSVs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable1CSV(&buf, workload.Table1Counts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "513+") {
		t.Fatal("table1 csv missing width label")
	}
	buf.Reset()
	if err := WriteTable2CSV(&buf, workload.Table2ProcHours); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // header + 11 width categories
		t.Fatalf("table2 csv has %d rows", len(rows))
	}
}

func TestExportCSVWritesEveryArtifact(t *testing.T) {
	res := smallResults(t)
	dir := t.TempDir()
	if err := ExportCSV(dir, res); err != nil {
		t.Fatal(err)
	}
	want := []string{"table1.csv", "table2.csv", "fig3.csv", "fig8.csv",
		"fig13.csv", "fig19.csv", "figL.csv"}
	for _, name := range want {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// table1, table2, fig3, fig8..fig19 (12), figL = 16 files.
	if len(entries) != 16 {
		t.Errorf("exported %d files, want 16", len(entries))
	}
}
