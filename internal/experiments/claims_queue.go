package experiments

import (
	"fmt"

	"fairsched/internal/hypothesis"
)

// queueClaims are demonstration claims over the per-queue metric plane
// (metrics keys "queue.<path>.<field>"): the scenario's queue= transform
// routes users into queue-tree leaves, the slo= transform gives every user
// the same wait target, and the claim compares attainment between the
// leaves. They are registered alongside the paper claims (cmd/hypotheses
// runs them) but are NOT part of PaperHypotheses — the paper has no queue
// tree; these exercise the partition/queue subsystem end to end.
var queueClaims = []struct{ spec, statement string }{
	{
		// Holds unanimously over seeds 42–51 at full scale (light ≈ 36–41%
		// vs heavy ≈ 34–38%); at reduced scales the load is too light for
		// waits to develop and the margin closes, so reduced-scale smoke
		// runs may flip individual seeds (as with the other scale-fragile
		// claims, the CI determinism smoke tolerates the gate).
		"claim queue-fairshare-favors-light: " +
			"cplant24.nomax.all@load=1.5+slo=default:30m+queue=p50:light,default:heavy#queue.light.attain_pct" +
			" >= cplant24.nomax.all@load=1.5+slo=default:30m+queue=p50:light,default:heavy#queue.heavy.attain_pct" +
			" seeds 42..51",
		"With arrivals compressed 1.5x and one 30m wait target for everyone, the lightest half of the users (queue \"light\") attain at least the heavy half's rate under fairshare ordering",
	},
}

// QueueHypotheses returns the per-queue demonstration claims.
func QueueHypotheses() []hypothesis.Spec {
	out := make([]hypothesis.Spec, len(queueClaims))
	for i, c := range queueClaims {
		s, err := hypothesis.Parse(c.spec)
		if err != nil {
			panic(fmt.Sprintf("experiments: queue claim %d: %v", i, err))
		}
		s.Statement = c.statement
		out[i] = s
	}
	return out
}

func init() {
	for _, s := range QueueHypotheses() {
		hypothesis.Register(s)
	}
}
