package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"fairsched/internal/job"
)

// RenderFigure writes a figure as an aligned text table with horizontal
// bars (bar figures) or a plain series table (multi-series figures).
func RenderFigure(w io.Writer, f Figure) {
	fmt.Fprintf(w, "%s — %s (%s)\n", strings.ToUpper(f.ID), f.Title, f.Unit)
	if len(f.Series) == 1 {
		renderBars(w, f.Labels, f.Series[0].Values)
		fmt.Fprintln(w)
		return
	}
	renderSeriesTable(w, f)
	fmt.Fprintln(w)
}

func renderBars(w io.Writer, labels []string, values []float64) {
	maxVal := 0.0
	width := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > width {
			width = len(labels[i])
		}
	}
	const barWidth = 48
	for i, v := range values {
		n := 0
		if maxVal > 0 {
			n = int(math.Round(v / maxVal * barWidth))
		}
		fmt.Fprintf(w, "  %-*s %12.2f  %s\n", width, labels[i], v, strings.Repeat("#", n))
	}
}

func renderSeriesTable(w io.Writer, f Figure) {
	nameWidth := 0
	for _, s := range f.Series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}
	fmt.Fprintf(w, "  %-*s", nameWidth, "")
	for _, l := range f.Labels {
		fmt.Fprintf(w, " %10s", l)
	}
	fmt.Fprintln(w)
	for _, s := range f.Series {
		fmt.Fprintf(w, "  %-*s", nameWidth, s.Name)
		for i := range f.Labels {
			v := math.NaN()
			if i < len(s.Values) {
				v = s.Values[i]
			}
			if math.IsNaN(v) {
				fmt.Fprintf(w, " %10s", "-")
			} else {
				fmt.Fprintf(w, " %10.1f", v)
			}
		}
		fmt.Fprintln(w)
	}
}

// RenderTable1 writes the job-count grid in the paper's Table 1 layout.
func RenderTable1(w io.Writer, grid [job.NumWidthCategories][job.NumLengthCategories]int) {
	fmt.Fprintln(w, "TABLE 1 — Number of jobs in each length/width category")
	fmt.Fprintf(w, "  %-14s", "")
	for _, l := range job.LengthLabels {
		fmt.Fprintf(w, " %10s", l)
	}
	fmt.Fprintln(w)
	for i, row := range grid {
		fmt.Fprintf(w, "  %-14s", job.WidthLabels[i]+" nodes")
		for _, c := range row {
			fmt.Fprintf(w, " %10d", c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// RenderTable2 writes the processor-hour grid in the paper's Table 2 layout.
func RenderTable2(w io.Writer, grid [job.NumWidthCategories][job.NumLengthCategories]float64) {
	fmt.Fprintln(w, "TABLE 2 — Processor-hours in each length/width category")
	fmt.Fprintf(w, "  %-14s", "")
	for _, l := range job.LengthLabels {
		fmt.Fprintf(w, " %10s", l)
	}
	fmt.Fprintln(w)
	for i, row := range grid {
		fmt.Fprintf(w, "  %-14s", job.WidthLabels[i]+" nodes")
		for _, c := range row {
			fmt.Fprintf(w, " %10.0f", c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// RenderCharacterization writes the Figures 4-7 summaries.
func RenderCharacterization(w io.Writer, c *Characterization) {
	fmt.Fprintf(w, "WORKLOAD — %d jobs, %.0f processor-hours\n", c.Jobs, c.TotalProcHours)
	fmt.Fprintf(w, "FIG4 — runtime vs nodes: standard allocations %.1f%%, log-log correlation r=%.3f\n",
		100*c.StandardAllocFraction, c.RuntimeNodesLogCorr)
	fmt.Fprintf(w, "FIG5 — estimates: %.1f%% overestimated, %.1f%% overran their limit, median factor %.1fx\n",
		100*c.OverestimatedFraction, 100*c.UnderestimatedFraction, c.MedianOverestimation)
	fmt.Fprintf(w, "FIG6 — median overestimation by runtime (r=%.3f, falling with runtime):\n", c.OverRuntimeLogCorr)
	renderBinRow(w, c.RuntimeBinEdges, c.OverByRuntimeBin, "s")
	fmt.Fprintf(w, "FIG7 — median overestimation by nodes (r=%.3f, unrelated to width):\n", c.OverNodesLogCorr)
	renderBinRow(w, c.NodeBinEdges, c.OverByNodeBin, "")
	fmt.Fprintln(w)
}

func renderBinRow(w io.Writer, edges, medians []float64, unit string) {
	for i, m := range medians {
		if math.IsNaN(m) {
			continue
		}
		fmt.Fprintf(w, "    %9.0f-%.0f%s: %6.1fx\n", edges[i], edges[i+1], unit, m)
	}
}
