package experiments

import (
	"fmt"
	"io"

	"fairsched/internal/core"
	"fairsched/internal/fairness"
	"fairsched/internal/job"
	"fairsched/internal/sweep"
)

// Metric comparison (paper §4): the same schedules judged by the three FST
// metrics the paper discusses. The hybrid metric is the paper's
// contribution; CONS-P shares its FSTs across schedules but leaks packing
// performance into the judgment; the Sabin metric is exact about
// later-arrival impact but depends on the scheduler under test (and costs
// one re-simulation per job, so it is optional here).

// MetricRow is one policy's unfairness under each metric.
type MetricRow struct {
	Policy string

	HybridPercentUnfair float64
	HybridAvgMiss       float64

	ConsPPercentUnfair float64
	ConsPAvgMiss       float64

	// Sabin values are NaN-free only when CompareMetrics ran with
	// withSabin=true.
	SabinPercentUnfair float64
	SabinAvgMiss       float64
	SabinComputed      bool
}

// CompareMetrics runs each spec over the workload and measures its
// schedule with the hybrid FST, the CONS-P FST and (optionally, expensive)
// the Sabin no-later-arrivals FST. The per-spec measurements fan out on at
// most parallel workers (<= 0: one per CPU); rows come back in spec order.
// A failing spec does not discard the others: its row is returned
// zero-valued (Policy == "") alongside the aggregated error — on a non-nil
// error, skip rows with an empty Policy before rendering.
func CompareMetrics(cfg core.StudyConfig, specs []core.Spec, jobs []*job.Job, withSabin bool, parallel int) ([]MetricRow, error) {
	if cfg.SystemSize <= 0 {
		cfg.SystemSize = 1000
	}
	consP, err := fairness.ConsP(jobs, cfg.SystemSize)
	if err != nil {
		return nil, err
	}
	return sweep.Map(parallel, specs,
		func(s core.Spec) string { return s.Key },
		func(_ int, spec core.Spec) (MetricRow, error) {
			run, err := core.Execute(cfg, spec, jobs)
			if err != nil {
				return MetricRow{}, err
			}
			row := MetricRow{Policy: spec.Key}

			hybrid := fairness.Measure(run.Result.Records, run.FST)
			row.HybridPercentUnfair = hybrid.PercentUnfair()
			row.HybridAvgMiss = hybrid.AvgMissTime()

			cp := fairness.Measure(run.Result.Records, consP)
			row.ConsPPercentUnfair = cp.PercentUnfair()
			row.ConsPAvgMiss = cp.AvgMissTime()

			if withSabin {
				sabin, err := fairness.Sabin(core.Starts(cfg, spec), jobs)
				if err != nil {
					return MetricRow{}, err
				}
				sb := fairness.Measure(run.Result.Records, sabin)
				row.SabinPercentUnfair = sb.PercentUnfair()
				row.SabinAvgMiss = sb.AvgMissTime()
				row.SabinComputed = true
			}
			return row, nil
		})
}

// RenderMetricComparison writes the comparison as an aligned table.
func RenderMetricComparison(w io.Writer, rows []MetricRow) {
	fmt.Fprintln(w, "METRIC COMPARISON — the same schedules under the §4 fairness metrics")
	fmt.Fprintf(w, "  %-22s %16s %16s %16s\n", "policy",
		"hybrid (§4.1)", "CONS-P", "Sabin")
	for _, r := range rows {
		sabin := "-"
		if r.SabinComputed {
			sabin = fmt.Sprintf("%5.2f%% %6.0fs", r.SabinPercentUnfair, r.SabinAvgMiss)
		}
		fmt.Fprintf(w, "  %-22s %6.2f%% %6.0fs %6.2f%% %6.0fs %16s\n",
			r.Policy,
			r.HybridPercentUnfair, r.HybridAvgMiss,
			r.ConsPPercentUnfair, r.ConsPAvgMiss,
			sabin)
	}
	fmt.Fprintln(w)
}
