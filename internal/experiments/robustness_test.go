package experiments

import (
	"strings"
	"testing"

	"fairsched/internal/metrics"
	"fairsched/internal/sweep"
)

func robCell(source string, seed int64, policies []string, bslds []float64) *sweep.CellSummary {
	c := &sweep.CellSummary{Source: source, Scenario: "baseline", Seed: seed,
		Policies: policies, Summaries: make([]*metrics.Summary, len(policies))}
	for i, b := range bslds {
		c.Summaries[i] = &metrics.Summary{MedianBoundedSlowdown: b}
	}
	return c
}

func TestRobustnessTable(t *testing.T) {
	pols := []string{"fcfs", "fair"}
	cells := []*sweep.CellSummary{
		// fair wins trace A (both seeds), fcfs wins trace B.
		robCell("A", 0, pols, []float64{4, 2}),
		robCell("A", 1, pols, []float64{6, 2}),
		robCell("B", 0, pols, []float64{1, 3}),
	}
	table := robustnessTable(cells)
	if len(table) != 2 {
		t.Fatalf("want 2 policies, got %d", len(table))
	}
	// Both end at mean rank 1.5 with 1 win, 1 loss; the name breaks the tie.
	for _, r := range table {
		if r.MeanRank != 1.5 || r.Wins != 1 || r.Losses != 1 {
			t.Fatalf("%s: meanrank %.2f wins %d losses %d, want 1.50/1/1", r.Policy, r.MeanRank, r.Wins, r.Losses)
		}
	}
	if table[0].Policy != "fair" || table[1].Policy != "fcfs" {
		t.Fatalf("tie-break order: %s, %s", table[0].Policy, table[1].Policy)
	}
	// fcfs on trace A: mean of 4 and 6 = 5, rank 2.
	if fcfs := table[1]; fcfs.MedBSLD[0] != 5 || fcfs.Rank[0] != 2 || fcfs.Rank[1] != 1 {
		t.Fatalf("fcfs per-trace: %+v", fcfs)
	}
}

func TestRobustnessSkipsSingleTrace(t *testing.T) {
	cells := []*sweep.CellSummary{
		robCell("A", 0, []string{"fcfs", "fair"}, []float64{4, 2}),
		robCell("A", 1, []string{"fcfs", "fair"}, []float64{6, 2}),
	}
	if table := robustnessTable(cells); table != nil {
		t.Fatalf("single-trace campaign produced a robustness table: %+v", table)
	}
	var b strings.Builder
	RenderCampaign(&b, cells)
	if strings.Contains(b.String(), "ROBUSTNESS") {
		t.Fatal("single-trace report grew a robustness section")
	}
}

func TestRobustnessDropsIncompletePolicies(t *testing.T) {
	cells := []*sweep.CellSummary{
		robCell("A", 0, []string{"fcfs", "fair", "sjf"}, []float64{4, 2, 1}),
		robCell("B", 0, []string{"fcfs", "fair"}, []float64{1, 3}),
	}
	table := robustnessTable(cells)
	for _, r := range table {
		if r.Policy == "sjf" {
			t.Fatal("sjf was ranked despite missing trace B")
		}
	}
	if len(table) != 2 {
		t.Fatalf("want 2 ranked policies, got %d", len(table))
	}
}

func TestRenderRobustnessSection(t *testing.T) {
	pols := []string{"fcfs", "fair"}
	cells := []*sweep.CellSummary{
		robCell("A", 0, pols, []float64{4, 2}),
		robCell("B", 0, pols, []float64{5, 3}),
		nil, // failed cells must not break the scoreboard
	}
	var b strings.Builder
	RenderCampaign(&b, cells)
	out := b.String()
	if !strings.Contains(out, "CROSS-TRACE ROBUSTNESS — 2 policies over 2 traces") {
		t.Fatalf("missing robustness header:\n%s", out)
	}
	// fair sweeps both traces: mean rank 1, two wins.
	if !strings.Contains(out, "fair") || !strings.Contains(out, "2.00/#1") {
		t.Fatalf("missing fair's winning row:\n%s", out)
	}
}
