package experiments

import (
	"fmt"

	"fairsched/internal/hypothesis"
)

// preemptClaims evaluate the checkpoint-preemption extension (the preempt=
// scheduler component) against plain EASY backfilling. The scenario gives
// every user one 30-minute wait target with arrivals compressed 1.5x, so
// both the slowdown plane and the SLO attainment plane are live. Registered
// alongside the paper claims (cmd/hypotheses runs them) but NOT part of
// PaperHypotheses — the paper's schedulers never preempt; these pin the
// extension's measured behavior, positive and negative. Tier 3: recorded,
// never gating.
//
// The negative results are registered deliberately. Checkpointing the
// lowest-priority running job without also reordering the queue
// (easy.preempt) pays the restart tax — every preempted remainder re-queues
// behind the same FCFS order that caused the wait — and measures WORSE than
// plain EASY on every seed (avg_bsld ~4100-5200 vs ~2700-4100). Likewise
// deadline-triggered preemption under a uniform target (edf.preempt)
// thrashes: with everyone's deadline equally near, each breach-triggered
// checkpoint creates the next breacher, and attainment collapses to
// ~15-19% vs EASY's ~30-37%. Preemption only pays when the order sends the
// freed nodes somewhere better — which is exactly what srpt shows.
var preemptClaims = []struct{ spec, statement string }{
	{
		// Holds 10/10 at full scale with ~30-60x margins (avg_bsld
		// ~50-143 vs ~2700-4100): preempting the lowest-priority running
		// job whenever the shortest-work head would otherwise wait
		// converts EASY into SRPT, and short jobs stop queueing.
		"claim preempt-srpt-bsld: " +
			"srpt@load=1.5+slo=default:30m#avg_bsld < easy@load=1.5+slo=default:30m#avg_bsld" +
			" tier 3 seeds 42..51",
		"With arrivals compressed 1.5x, SRPT-style checkpoint preemption (sjf order, reserve-triggered, lowest-priority victim) beats plain EASY backfilling on average bounded slowdown",
	},
	{
		// Holds 10/10 at full scale: ~97% attainment vs EASY's ~30-37%
		// under the same uniform 30m wait target.
		"claim preempt-srpt-attainment: " +
			"srpt@load=1.5+slo=default:30m#slo.all.attain_pct >= easy@load=1.5+slo=default:30m#slo.all.attain_pct" +
			" tier 3 seeds 42..51",
		"Under a uniform 30-minute wait target at 1.5x load, SRPT-style checkpoint preemption attains at least plain EASY's rate (measured ~97% vs ~34%)",
	},
	{
		// Refutes 0/10 at full scale — the honest negative result: the
		// restart tax without a better order is a pure loss.
		"claim preempt-easy-restart-tax: " +
			"easy.preempt@load=1.5+slo=default:30m#avg_bsld < easy@load=1.5+slo=default:30m#avg_bsld" +
			" tier 3 seeds 42..51",
		"Checkpoint preemption grafted onto unchanged FCFS+EASY (easy.preempt) improves average bounded slowdown over plain EASY — REFUTED on every seed: preempted remainders re-queue behind the same order that starved them, so the restart tax is a pure loss",
	},
	{
		// Confirms 10/10 at full scale: deadline-triggered preemption
		// under a uniform target LOWERS attainment (~15-19% vs ~30-37%).
		"claim preempt-edf-uniform-thrash: " +
			"edf.preempt@load=1.5+slo=default:30m#slo.all.attain_pct <= easy@load=1.5+slo=default:30m#slo.all.attain_pct" +
			" tier 3 seeds 42..51",
		"Under a uniform wait target, deadline-triggered preemption (edf.preempt) attains at most plain EASY's rate: with every deadline equally near, each breach-triggered checkpoint just creates the next breacher",
	},
}

// PreemptHypotheses returns the checkpoint-preemption demonstration claims.
func PreemptHypotheses() []hypothesis.Spec {
	out := make([]hypothesis.Spec, len(preemptClaims))
	for i, c := range preemptClaims {
		s, err := hypothesis.Parse(c.spec)
		if err != nil {
			panic(fmt.Sprintf("experiments: preempt claim %d: %v", i, err))
		}
		s.Statement = c.statement
		out[i] = s
	}
	return out
}

func init() {
	for _, s := range PreemptHypotheses() {
		hypothesis.Register(s)
	}
}
