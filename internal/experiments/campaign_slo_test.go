package experiments_test

import (
	"bytes"
	"testing"

	"fairsched/internal/core"
	"fairsched/internal/experiments"
	"fairsched/internal/job"
	"fairsched/internal/scenario"
	"fairsched/internal/sweep"
	"fairsched/internal/workload"
)

func mustSpecsSLO(t *testing.T, keys ...string) []core.Spec {
	t.Helper()
	out := make([]core.Spec, 0, len(keys))
	for _, k := range keys {
		s, err := core.SpecByKey(k)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func mustScenarioSLO(t *testing.T, spec string) scenario.Scenario {
	t.Helper()
	s, err := scenario.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// goldenSLOJobs is a tiny hand-checkable workload on a 4-node machine:
// usage ranking ascending is user 3 (200), user 1 (400), user 4 (600),
// user 2 (800), so slo=p50:1m tags users 3 and 1 and default:2m the rest.
// Under fcfs: job 1 waits 0 (attained), job 2 waits 100 (within 2m), job 3
// waits 290 (p50 breach of 230s), job 4 waits 340 (default breach of
// 220s).
func goldenSLOJobs() []*job.Job {
	return []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 100, Estimate: 100, Nodes: 4},
		{ID: 2, User: 2, Submit: 0, Runtime: 200, Estimate: 200, Nodes: 4},
		{ID: 3, User: 3, Submit: 10, Runtime: 50, Estimate: 50, Nodes: 4},
		{ID: 4, User: 4, Submit: 10, Runtime: 300, Estimate: 300, Nodes: 2},
	}
}

// TestRenderCampaignSLOGolden pins the SLO attainment table byte-for-byte
// on a workload small enough to verify by hand.
func TestRenderCampaignSLOGolden(t *testing.T) {
	c := sweep.Campaign{
		Sources:   []scenario.Source{scenario.Jobs("golden", goldenSLOJobs(), 4)},
		Scenarios: []scenario.Scenario{mustScenarioSLO(t, "slo=p50:1m,default:2m,default:1.5x")},
		Specs:     mustSpecsSLO(t, "fcfs"),
		Study:     core.StudyConfig{SystemSize: 4},
		Parallel:  1,
	}
	cells, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	experiments.RenderCampaign(&buf, cells)
	// Hand check: fcfs on 4 nodes runs 1 (wait 0), 2 (wait 100s), 3 (wait
	// 290s), 4 (wait 340s). p50 = users {3, 1}: job 3 breaches its 60s
	// wait target by 230s (histogram bin edge 239s = 0.07h); default =
	// users {4, 2} with wait 2m + slowdown 1.5x: job 4 breaches the wait
	// target by 220s (bin edge 223s = 0.06h) AND its slowdown
	// (340+300)/300 = 2.13 > 1.5 (slowbr 1); job 2 is within both (wait
	// 100s, slowdown (100+200)/200 = 1.5 exactly). Both wait breaches are
	// infeasible: the fair reference schedule starts those jobs no
	// earlier. Utilization = 2000 proc-sec / (650s makespan × 4 nodes). The
	// offender rows rank user 3 (230s excess) above user 4 (220s): equal
	// breach counts fall through to total wait-breach excess.
	const want = `CAMPAIGN — 1 cells

golden × slo=p50:1m,default:2m,default:1.5x (seed 0) — 4 jobs on 4 nodes
  policy                   avgwait(h)    avgTAT(h)     util   %unfair   avgmiss(h)
  fcfs                           0.05         0.10    0.769       0.0         0.00
  SLO attainment — per user class (unfair: fair start met the target; infeas: it did not;
  p95brch/worst are wait-breach excess — slowbr counts slowdown-target misses separately)
  policy                 class    users    jobs  attain% breached  unfair  infeas  slowbr  p95brch(h)  worst(h)
  fcfs                   p50          2       2     50.0        1       0       1       0        0.07      0.06
  fcfs                   default      2       2     50.0        1       0       1       1        0.06      0.06
  fcfs                   (all)        4       4     50.0        2       0       2       1        0.07      0.06
  worst offenders — top 3 most-breached users per policy (totbrch: summed excess wait)
  policy                 class     user    jobs breached  totbrch(h)  worst(h)  worstjob
  fcfs                   p50          3       1        1        0.06      0.06         3
  fcfs                   default      4       1        1        0.06      0.06         4

`
	if got := buf.String(); got != want {
		t.Fatalf("SLO campaign report diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func sloCampaign(parallel int, policyParallel bool) sweep.Campaign {
	return sweep.Campaign{
		Sources: []scenario.Source{
			scenario.Synthetic(workload.Config{Scale: 0.02, SystemSize: 100}),
		},
		Scenarios: []scenario.Scenario{
			scenario.Baseline(),
			mustBuiltin("slo-tiered"),
			mustBuiltinParse("load=1.3+slo=p50:30m,p90:4h,default:24h"),
			mustBuiltinParse("slo=p50:1h,p50:8x,user3:15m"),
		},
		Seeds:          []int64{42, 43},
		Specs:          nil, // default nine: exercises the full registry
		Study:          core.StudyConfig{SystemSize: 100},
		Parallel:       parallel,
		PolicyParallel: policyParallel,
	}
}

func mustBuiltin(name string) scenario.Scenario {
	s, ok := scenario.Get(name)
	if !ok {
		panic("missing builtin " + name)
	}
	return s
}

func mustBuiltinParse(spec string) scenario.Scenario {
	s, err := scenario.Parse(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// TestCampaignSLODeterministicAcrossParallelism: the SLO tables, like the
// rest of the campaign report, must be byte-identical at every worker
// count and in both task-granularity modes.
func TestCampaignSLODeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full nine-policy SLO campaign")
	}
	render := func(parallel int, policyParallel bool) string {
		cells, err := sloCampaign(parallel, policyParallel).Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		experiments.RenderCampaign(&buf, cells)
		return buf.String()
	}
	serial := render(1, false)
	if !bytes.Contains([]byte(serial), []byte("SLO attainment")) {
		t.Fatal("campaign report carries no SLO table")
	}
	if parallel := render(8, false); parallel != serial {
		t.Fatal("cell-mode SLO report differs between -parallel 1 and 8")
	}
	if pp := render(8, true); pp != serial {
		t.Fatal("policy-parallel SLO report differs from cell mode")
	}
}

// The baseline scenario (no SLO transform) must keep rendering exactly as
// before — no empty SLO table, no nil-slice surprises.
func TestRenderCampaignWithoutSLOUnchanged(t *testing.T) {
	c := sweep.Campaign{
		Sources:   []scenario.Source{scenario.Jobs("plain", goldenSLOJobs(), 4)},
		Scenarios: []scenario.Scenario{scenario.Baseline()},
		Specs:     mustSpecsSLO(t, "fcfs"),
		Study:     core.StudyConfig{SystemSize: 4},
		Parallel:  1,
	}
	cells, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].SLOs != nil {
		t.Fatal("baseline cell grew an SLO summary")
	}
	var buf bytes.Buffer
	experiments.RenderCampaign(&buf, cells)
	if bytes.Contains(buf.Bytes(), []byte("SLO")) {
		t.Fatalf("baseline report mentions SLO:\n%s", buf.String())
	}
}
