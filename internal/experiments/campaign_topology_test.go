package experiments_test

import (
	"bytes"
	"testing"

	"fairsched/internal/core"
	"fairsched/internal/experiments"
	"fairsched/internal/scenario"
	"fairsched/internal/sweep"
	"fairsched/internal/topology"
	"fairsched/internal/workload"
)

// topoCampaign is a two-partition campaign whose scenario routes the
// lighter half of the users to fast/org/a and the rest to slow/org/b, with
// an SLO assignment so the per-queue attainment columns are live.
func topoCampaign(t *testing.T, parallel, partitionParallel int, policyParallel bool) sweep.Campaign {
	t.Helper()
	topo, err := topology.Parse("part=fast:100,part=slow:100," +
		"queue=org/a:part=fast:guar=2,queue=org/b:part=slow")
	if err != nil {
		t.Fatal(err)
	}
	return sweep.Campaign{
		Sources: []scenario.Source{
			scenario.Synthetic(workload.Config{Scale: 0.02, SystemSize: 100}),
		},
		Scenarios: []scenario.Scenario{
			mustBuiltinParse("queue=p50:org/a,default:org/b+slo=p50:30m,default:4h"),
		},
		Seeds: []int64{42, 43},
		Specs: mustSpecsSLO(t, "cplant24.nomax.all", "easy"),
		Study: core.StudyConfig{
			SystemSize: 100, Topology: topo, PartitionParallel: partitionParallel,
		},
		Parallel:       parallel,
		PolicyParallel: policyParallel,
	}
}

// TestCampaignTopologyDeterministicAcrossParallelism: a multi-partition
// campaign report must be byte-identical at every per-partition
// parallelism width, every worker count and in both task granularities.
func TestCampaignTopologyDeterministicAcrossParallelism(t *testing.T) {
	render := func(parallel, partitionParallel int, policyParallel bool) string {
		cells, err := topoCampaign(t, parallel, partitionParallel, policyParallel).Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		experiments.RenderCampaign(&buf, cells)
		return buf.String()
	}
	serial := render(1, 1, false)
	for _, probe := range []string{"per-queue", "per-partition", "org/a", "org/b", "SLO attainment"} {
		if !bytes.Contains([]byte(serial), []byte(probe)) {
			t.Fatalf("topology campaign report misses %q:\n%s", probe, serial)
		}
	}
	if got := render(1, 8, false); got != serial {
		t.Fatal("report differs between -partition-parallel 1 and 8")
	}
	if got := render(8, 4, false); got != serial {
		t.Fatal("report differs between -parallel 1 and 8 (partition-parallel 4)")
	}
	if got := render(8, 8, true); got != serial {
		t.Fatal("policy-parallel topology report differs from serial")
	}
}

// TestCampaignFlatQueueRows: queue tags WITHOUT a topology still group
// per-queue report rows — the flat machine ran one scheduler, but delay
// and attainment read out per tagged queue.
func TestCampaignFlatQueueRows(t *testing.T) {
	c := sweep.Campaign{
		Sources: []scenario.Source{
			scenario.Synthetic(workload.Config{Scale: 0.02, SystemSize: 100}),
		},
		Scenarios: []scenario.Scenario{
			mustBuiltinParse("queue=p50:light,default:heavy"),
		},
		Seeds:    []int64{42},
		Specs:    mustSpecsSLO(t, "fcfs"),
		Study:    core.StudyConfig{SystemSize: 100},
		Parallel: 1,
	}
	cells, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := cells[0].Summaries[0]
	if len(s.Queues) != 2 || s.Queues[0].Path != "heavy" || s.Queues[1].Path != "light" {
		t.Fatalf("flat queue rows = %+v, want heavy+light", s.Queues)
	}
	if len(s.Partitions) != 0 {
		t.Fatalf("flat run grew partition rows: %+v", s.Partitions)
	}
	if s.Queues[0].Jobs+s.Queues[1].Jobs != s.Jobs {
		t.Errorf("queue rows cover %d jobs, run has %d",
			s.Queues[0].Jobs+s.Queues[1].Jobs, s.Jobs)
	}
	var buf bytes.Buffer
	experiments.RenderCampaign(&buf, cells)
	if !bytes.Contains(buf.Bytes(), []byte("per-queue")) {
		t.Fatalf("report misses the per-queue table:\n%s", buf.String())
	}
	if bytes.Contains(buf.Bytes(), []byte("per-partition")) {
		t.Fatalf("flat report grew a per-partition table:\n%s", buf.String())
	}
}
