// Package core is the case study itself: it names the paper's nine
// scheduling configurations (§5.5), wires a policy, the hybrid-FST fairness
// engine and the metrics collector into one simulation, and produces the
// per-policy Summary that every figure in the evaluation reads from.
//
// Policies are composed from orthogonal components (package sched): a Spec
// is pure data naming a point in the (order × backfill × starvation) design
// space, resolved from the named registry or the spec grammar; the paper's
// nine configurations are registry entries whose composed implementations
// reproduce the original one-off schedulers byte-for-byte (DESIGN.md §9).
package core

import (
	"fmt"

	"fairsched/internal/fairness"
	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/metrics"
	"fairsched/internal/sched"
	"fairsched/internal/sim"
	"fairsched/internal/slo"
	"fairsched/internal/topology"
)

// Spec is one named scheduling configuration: an alias of sched.Spec, so
// the study, the sweeps and the campaigns all address policies through the
// same component grammar and registry.
type Spec = sched.Spec

// MinorSpecs are the five policies of the "minor changes" comparison
// (Figures 8-13), baseline first.
func MinorSpecs() []Spec {
	return specsByKey(
		"cplant24.nomax.all",
		"cplant24.nomax.fair",
		"cplant72.nomax.all",
		"cplant24.72max.all",
		"cplant72.72max.fair",
	)
}

// ConservativeSpecs are the four conservative configurations (§5.5 items
// 5-8).
func ConservativeSpecs() []Spec {
	return specsByKey("cons.nomax", "consdyn.nomax", "cons.72max", "consdyn.72max")
}

// AllSpecs are all nine policies of Figures 14-19, baseline first.
func AllSpecs() []Spec {
	return append(MinorSpecs(), ConservativeSpecs()...)
}

func specsByKey(keys ...string) []Spec {
	out := make([]Spec, 0, len(keys))
	for _, k := range keys {
		s, ok := sched.Lookup(k)
		if !ok {
			panic(fmt.Sprintf("core: registry lost policy %q", k))
		}
		out = append(out, s)
	}
	return out
}

// SpecByKey resolves a policy: a registered name from the sched registry
// (the paper's "cplant24.nomax.all" style names, the reference baselines,
// any "depth<N>") or an ad-hoc component chain such as
// "order=fairshare+bf=easy+starve=24h.nonheavy" (see sched.ParseSpec).
func SpecByKey(key string) (Spec, error) {
	return sched.ParseSpec(key)
}

// SpecKeys lists every registered policy name. Ad-hoc component chains and
// "depth<n>" names (n >= 1) also resolve through SpecByKey; the list shows
// the registry entries.
func SpecKeys() []string {
	return sched.Names()
}

// StudyConfig parameterizes a run.
type StudyConfig struct {
	// SystemSize is the cluster size (default 1000, matching the
	// calibrated synthetic workload).
	SystemSize int
	// Fairshare configures the priority tracker (default: decay 0.5/24h).
	Fairshare fairshare.Config
	// FairshareEpoch aligns decay boundaries to the trace's wall clock
	// (fairshare.EpochFor(header.UnixStartTime, interval) for an SWF
	// trace); 0 aligns them to the trace origin.
	FairshareEpoch int64
	// Kill selects wall-clock-limit behaviour (default KillNever).
	Kill sim.KillPolicy
	// Split selects how max-runtime segments are submitted (default
	// SplitUpfront).
	Split sim.SplitMode
	// Validate enables simulator invariant checks.
	Validate bool
	// SkipFST disables the hybrid-FST engine (faster, no fairness metrics).
	SkipFST bool
	// Equality additionally runs the resource-equality observer.
	Equality bool
	// SLO, when non-nil, attaches the online per-user SLO observer over
	// this assignment (campaigns derive it from the cell's scenario via
	// Scenario.SLOAssignment). The assignment is read-only and may be
	// shared across concurrent runs.
	SLO *slo.Assignment
	// Topology, when non-nil, partitions the machine into named groups —
	// each with its own event loop — and hangs a hierarchical queue tree
	// over them (see package topology). A nil Topology is the flat
	// pre-partition machine; a single-partition single-root-queue topology
	// reproduces it byte-identically (the flat-equivalence suite pins
	// this). The topology is read-only and may be shared across runs.
	Topology *topology.Topology
	// Placement routes users to queues/partitions (campaigns derive it
	// from the cell's scenario via Scenario.Placement). With a nil
	// Topology, queue tags still group per-queue report rows; partition
	// tags are ignored. Read-only, shareable.
	Placement *topology.Placement
	// PartitionParallel bounds how many partition event loops run
	// concurrently within one Execute (default 1, serial). Results are
	// byte-identical at every width.
	PartitionParallel int
}

// Run is the outcome of one policy over one workload.
type Run struct {
	Spec     Spec
	Result   *sim.Result
	Summary  *metrics.Summary
	FST      map[job.ID]int64
	Equality *fairness.Equality
	// SLO is the per-user-class attainment report (nil unless
	// StudyConfig.SLO supplied an assignment).
	SLO *slo.Summary
}

// Execute runs one spec over the workload and assembles the summary. With
// a Topology configured, the run shards into per-partition event loops and
// merges (see executeTopology); otherwise the flat single-loop path runs.
func Execute(cfg StudyConfig, spec Spec, workload []*job.Job) (*Run, error) {
	if cfg.SystemSize <= 0 {
		cfg.SystemSize = 1000
	}
	if cfg.Topology != nil {
		return executeTopology(cfg, spec, workload)
	}
	pol, err := sched.New(spec)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	simCfg := sim.Config{
		SystemSize:     cfg.SystemSize,
		Fairshare:      cfg.Fairshare,
		FairshareEpoch: cfg.FairshareEpoch,
		MaxRuntime:     spec.MaxRuntime,
		Split:          cfg.Split,
		Kill:           cfg.Kill,
		Validate:       cfg.Validate,
		// Only preemptive specs pay the preemption path (per-job workload
		// clones, remainder requeues); everything else runs the byte-stable
		// classic path.
		Preemptable: spec.PreemptTrigger != "",
	}
	if simCfg.Preemptable && simCfg.MaxRuntime > 0 {
		// Preemption and max-runtime splitting both drive the chain
		// machinery and do not compose (see sim.Run); surface the conflict
		// here with the policy name attached rather than mid-run.
		return nil, fmt.Errorf("core: %s: checkpoint preemption does not compose with max-runtime splitting", spec.String())
	}
	col := metrics.NewCollector(cfg.SystemSize)
	observers := []sim.Observer{col}
	var fst *fairness.HybridFST
	if !cfg.SkipFST {
		fst = fairness.NewHybridFST()
		observers = append(observers, fst)
	}
	var eq *fairness.Equality
	if cfg.Equality {
		eq = fairness.NewEquality(cfg.SystemSize)
		observers = append(observers, eq)
	}
	var sloObs *fairness.SLOObserver
	if cfg.SLO.NumUsers() > 0 {
		// The observer reads the engine's fair start times (recorded at
		// arrival) to split breaches into policy-caused and infeasible;
		// with SkipFST it still tracks attainment, unclassified.
		sloObs = fairness.NewSLOObserver(cfg.SLO, fst)
		if cfg.Split == sim.SplitChained || simCfg.Preemptable {
			// Chained splits — and preemption, which resubmits a victim's
			// remainder as a chained segment — model one logical job as a
			// checkpoint chain: judge its slowdown once, at the last
			// segment's completion, against the original submit
			// (DESIGN.md §11, §16).
			sloObs.SetChained(true)
		}
		observers = append(observers, sloObs)
		// Deadline-aware components (order=edf, preempt=deadline.*) read
		// the run's SLO signals: the assignment supplies per-user
		// deadlines, the online observer the breach-risk promotion. With
		// no assignment the context stays unset — the edf order degrades
		// to FCFS and the deadline trigger never fires.
		pol.SetSLOContext(cfg.SLO, sloObs)
	}
	s := sim.New(simCfg, pol, observers...)
	res, err := s.Run(workload)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", spec.String(), err)
	}
	run := &Run{Spec: spec, Result: res, Equality: eq}
	if fst != nil {
		run.FST = fst.Table()
	}
	if sloObs != nil {
		run.SLO = sloObs.Summary()
	}
	run.Summary = metrics.Summarize(res, run.FST, col)
	run.Summary.Policy = spec.String()
	if paths := cfg.Placement.QueuePaths(); len(paths) > 0 {
		// Queue tags without a topology still group report rows: the flat
		// machine ran one scheduler, but attainment and delay can be read
		// out per tagged queue (the per-queue metric keys resolve against
		// these rows).
		var perUser []slo.UserStats
		if sloObs != nil {
			perUser = sloObs.PerUser()
		}
		run.Summary.Queues = queueSummaries(paths, func(user int) (string, bool) {
			return cfg.Placement.Queue(user)
		}, res.Records, perUser)
	}
	return run, nil
}

// ExecuteAll runs a list of specs sequentially and returns the runs keyed in
// input order.
func ExecuteAll(cfg StudyConfig, specs []Spec, workload []*job.Job) ([]*Run, error) {
	runs := make([]*Run, 0, len(specs))
	for _, spec := range specs {
		r, err := Execute(cfg, spec, workload)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// Starts is a fairness.StartsFunc over this study configuration and spec:
// it re-runs the policy on an arbitrary workload and reports start times.
// It feeds the Sabin no-later-arrivals FST.
func Starts(cfg StudyConfig, spec Spec) func(workload []*job.Job) (map[job.ID]int64, error) {
	return func(workload []*job.Job) (map[job.ID]int64, error) {
		runCfg := cfg
		runCfg.SkipFST = true
		runCfg.Equality = false
		runCfg.SLO = nil
		r, err := Execute(runCfg, spec, workload)
		if err != nil {
			return nil, err
		}
		starts := make(map[job.ID]int64, len(r.Result.Records))
		for _, rec := range r.Result.Records {
			starts[rec.Job.ID] = rec.Start
		}
		return starts, nil
	}
}
