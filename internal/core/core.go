// Package core is the case study itself: it names the paper's nine
// scheduling configurations (§5.5), wires a policy, the hybrid-FST fairness
// engine and the metrics collector into one simulation, and produces the
// per-policy Summary that every figure in the evaluation reads from.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fairsched/internal/fairness"
	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/metrics"
	"fairsched/internal/sched"
	"fairsched/internal/sim"
)

// PolicyKind selects the scheduler family.
type PolicyKind int

const (
	// KindCPlant is the baseline no-guarantee backfilling scheduler with
	// the fairshare queue and the starvation queue (§2.1).
	KindCPlant PolicyKind = iota
	// KindConservative is conservative backfilling with the fairshare
	// queue order (§5.3).
	KindConservative
	// KindConservativeDynamic adds dynamic reservations (§5.4).
	KindConservativeDynamic
	// KindFCFS is strict first-come-first-serve (Figure 1; baseline).
	KindFCFS
	// KindEASY is aggressive backfilling over an FCFS queue (Figure 2;
	// baseline).
	KindEASY
	// KindListFairshare is the no-backfill fairshare list scheduler (the
	// FST reference discipline; validation baseline).
	KindListFairshare
	// KindDepth is depth-n backfilling: the first Depth queued jobs hold
	// reservations (the paper's "variations between conservative and
	// aggressive backfilling"; extension baseline).
	KindDepth
)

// Spec is one named scheduling configuration.
type Spec struct {
	// Key is the paper's name, e.g. "cplant24.nomax.all".
	Key  string
	Kind PolicyKind
	// StarvationWait applies to KindCPlant (seconds).
	StarvationWait int64
	// FairOnly bars heavy users from the starvation queue (the ".fair"
	// suffix).
	FairOnly bool
	// MaxRuntime, when positive, splits long jobs (the ".72max" middle
	// token); applied in the simulator, so it composes with every kind.
	MaxRuntime int64
	// Depth applies to KindDepth: the number of reserved queue heads.
	Depth int
}

// NewPolicy instantiates the scheduler for this spec.
func (s Spec) NewPolicy() sim.Policy {
	switch s.Kind {
	case KindCPlant:
		p := sched.NewNoGuarantee()
		p.Label = s.Key
		if s.StarvationWait > 0 {
			p.StarvationWait = s.StarvationWait
		}
		if s.FairOnly {
			p.Heavy = fairshare.AboveMean{}
		}
		return p
	case KindConservative, KindConservativeDynamic:
		p := sched.NewConservative(s.Kind == KindConservativeDynamic)
		p.Label = s.Key
		return p
	case KindFCFS:
		return sched.NewFCFS()
	case KindEASY:
		return sched.NewEASY(sched.OrderFCFS)
	case KindListFairshare:
		return sched.NewListFairshare()
	case KindDepth:
		d := sched.NewDepthBackfill(s.Depth, sched.OrderFairshare)
		if s.Key != "" {
			d.Label = s.Key
		}
		return d
	default:
		panic(fmt.Sprintf("core: unknown policy kind %d", s.Kind))
	}
}

const (
	hours24 = 24 * 3600
	hours72 = 72 * 3600
)

// MinorSpecs are the five policies of the "minor changes" comparison
// (Figures 8-13), baseline first.
func MinorSpecs() []Spec {
	return []Spec{
		{Key: "cplant24.nomax.all", Kind: KindCPlant, StarvationWait: hours24},
		{Key: "cplant24.nomax.fair", Kind: KindCPlant, StarvationWait: hours24, FairOnly: true},
		{Key: "cplant72.nomax.all", Kind: KindCPlant, StarvationWait: hours72},
		{Key: "cplant24.72max.all", Kind: KindCPlant, StarvationWait: hours24, MaxRuntime: hours72},
		{Key: "cplant72.72max.fair", Kind: KindCPlant, StarvationWait: hours72, FairOnly: true, MaxRuntime: hours72},
	}
}

// ConservativeSpecs are the four conservative configurations (§5.5 items
// 5-8).
func ConservativeSpecs() []Spec {
	return []Spec{
		{Key: "cons.nomax", Kind: KindConservative},
		{Key: "consdyn.nomax", Kind: KindConservativeDynamic},
		{Key: "cons.72max", Kind: KindConservative, MaxRuntime: hours72},
		{Key: "consdyn.72max", Kind: KindConservativeDynamic, MaxRuntime: hours72},
	}
}

// AllSpecs are all nine policies of Figures 14-19, baseline first.
func AllSpecs() []Spec {
	return append(MinorSpecs(), ConservativeSpecs()...)
}

// SpecByKey looks a spec up by its paper name (also accepts the extra
// baselines "fcfs", "easy" and "list.fairshare").
func SpecByKey(key string) (Spec, error) {
	for _, s := range AllSpecs() {
		if s.Key == key {
			return s, nil
		}
	}
	switch key {
	case "fcfs":
		return Spec{Key: key, Kind: KindFCFS}, nil
	case "easy":
		return Spec{Key: key, Kind: KindEASY}, nil
	case "list.fairshare":
		return Spec{Key: key, Kind: KindListFairshare}, nil
	}
	if depth, ok := parseDepthKey(key); ok {
		return Spec{Key: key, Kind: KindDepth, Depth: depth}, nil
	}
	return Spec{}, fmt.Errorf("core: unknown policy %q (want one of %v)", key, SpecKeys())
}

// parseDepthKey recognizes "depth<N>" names (depth-n backfilling over the
// fairshare queue, N >= 1).
func parseDepthKey(key string) (int, bool) {
	const prefix = "depth"
	if !strings.HasPrefix(key, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(key[len(prefix):])
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// SpecKeys lists every recognized policy name. Any "depth<n>" name (n >= 1,
// e.g. "depth8") also resolves to depth-n backfilling over the fairshare
// queue; the list shows depth8 as the representative.
func SpecKeys() []string {
	var keys []string
	for _, s := range AllSpecs() {
		keys = append(keys, s.Key)
	}
	keys = append(keys, "fcfs", "easy", "list.fairshare", "depth8")
	sort.Strings(keys)
	return keys
}

// StudyConfig parameterizes a run.
type StudyConfig struct {
	// SystemSize is the cluster size (default 1000, matching the
	// calibrated synthetic workload).
	SystemSize int
	// Fairshare configures the priority tracker (default: decay 0.5/24h).
	Fairshare fairshare.Config
	// FairshareEpoch aligns decay boundaries to the trace's wall clock
	// (fairshare.EpochFor(header.UnixStartTime, interval) for an SWF
	// trace); 0 aligns them to the trace origin.
	FairshareEpoch int64
	// Kill selects wall-clock-limit behaviour (default KillNever).
	Kill sim.KillPolicy
	// Split selects how max-runtime segments are submitted (default
	// SplitUpfront).
	Split sim.SplitMode
	// Validate enables simulator invariant checks.
	Validate bool
	// SkipFST disables the hybrid-FST engine (faster, no fairness metrics).
	SkipFST bool
	// Equality additionally runs the resource-equality observer.
	Equality bool
}

// Run is the outcome of one policy over one workload.
type Run struct {
	Spec     Spec
	Result   *sim.Result
	Summary  *metrics.Summary
	FST      map[job.ID]int64
	Equality *fairness.Equality
}

// Execute runs one spec over the workload and assembles the summary.
func Execute(cfg StudyConfig, spec Spec, workload []*job.Job) (*Run, error) {
	if cfg.SystemSize <= 0 {
		cfg.SystemSize = 1000
	}
	simCfg := sim.Config{
		SystemSize:     cfg.SystemSize,
		Fairshare:      cfg.Fairshare,
		FairshareEpoch: cfg.FairshareEpoch,
		MaxRuntime:     spec.MaxRuntime,
		Split:          cfg.Split,
		Kill:           cfg.Kill,
		Validate:       cfg.Validate,
	}
	col := metrics.NewCollector(cfg.SystemSize)
	observers := []sim.Observer{col}
	var fst *fairness.HybridFST
	if !cfg.SkipFST {
		fst = fairness.NewHybridFST()
		observers = append(observers, fst)
	}
	var eq *fairness.Equality
	if cfg.Equality {
		eq = fairness.NewEquality(cfg.SystemSize)
		observers = append(observers, eq)
	}
	s := sim.New(simCfg, spec.NewPolicy(), observers...)
	res, err := s.Run(workload)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", spec.Key, err)
	}
	run := &Run{Spec: spec, Result: res, Equality: eq}
	if fst != nil {
		run.FST = fst.Table()
	}
	run.Summary = metrics.Summarize(res, run.FST, col)
	run.Summary.Policy = spec.Key
	return run, nil
}

// ExecuteAll runs a list of specs sequentially and returns the runs keyed in
// input order.
func ExecuteAll(cfg StudyConfig, specs []Spec, workload []*job.Job) ([]*Run, error) {
	runs := make([]*Run, 0, len(specs))
	for _, spec := range specs {
		r, err := Execute(cfg, spec, workload)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// Starts is a fairness.StartsFunc over this study configuration and spec:
// it re-runs the policy on an arbitrary workload and reports start times.
// It feeds the Sabin no-later-arrivals FST.
func Starts(cfg StudyConfig, spec Spec) func(workload []*job.Job) (map[job.ID]int64, error) {
	return func(workload []*job.Job) (map[job.ID]int64, error) {
		runCfg := cfg
		runCfg.SkipFST = true
		runCfg.Equality = false
		r, err := Execute(runCfg, spec, workload)
		if err != nil {
			return nil, err
		}
		starts := make(map[job.ID]int64, len(r.Result.Records))
		for _, rec := range r.Result.Records {
			starts[rec.Job.ID] = rec.Start
		}
		return starts, nil
	}
}
