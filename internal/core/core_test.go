package core

import (
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/workload"
)

func tinyWorkload() []*job.Job {
	return []*job.Job{
		{ID: 1, User: 1, Submit: 0, Runtime: 3600, Estimate: 7200, Nodes: 64},
		{ID: 2, User: 2, Submit: 10, Runtime: 1800, Estimate: 1800, Nodes: 32},
		{ID: 3, User: 1, Submit: 20, Runtime: 600, Estimate: 3600, Nodes: 100},
		{ID: 4, User: 3, Submit: 5000, Runtime: 90000, Estimate: 100000, Nodes: 90},
		{ID: 5, User: 2, Submit: 6000, Runtime: 300000, Estimate: 400000, Nodes: 128},
	}
}

func TestExecuteAllSpecsOnTinyWorkload(t *testing.T) {
	cfg := StudyConfig{SystemSize: 128, Validate: true, Equality: true}
	for _, spec := range AllSpecs() {
		run, err := Execute(cfg, spec, tinyWorkload())
		if err != nil {
			t.Fatalf("%s: %v", spec.Key, err)
		}
		if run.Summary.Jobs < len(tinyWorkload()) {
			t.Errorf("%s: %d records, want >= %d", spec.Key, run.Summary.Jobs, len(tinyWorkload()))
		}
		for _, rec := range run.Result.Records {
			if !rec.Finished {
				t.Errorf("%s: job %d unfinished", spec.Key, rec.Job.ID)
			}
			if rec.Start < rec.Submit {
				t.Errorf("%s: job %d started before submit", spec.Key, rec.Job.ID)
			}
		}
		if run.Summary.LossOfCapacity < 0 || run.Summary.LossOfCapacity > 1 {
			t.Errorf("%s: LOC %f out of range", spec.Key, run.Summary.LossOfCapacity)
		}
	}
}

func TestExecuteGeneratedWorkloadSmoke(t *testing.T) {
	jobs, err := workload.Generate(workload.Config{Seed: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("generated %d jobs", len(jobs))
	cfg := StudyConfig{Validate: true}
	for _, key := range []string{"cplant24.nomax.all", "cons.72max", "consdyn.nomax"} {
		spec, err := SpecByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		run, err := Execute(cfg, spec, jobs)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		s := run.Summary
		t.Logf("%s: jobs=%d unfair=%.2f%% miss=%.0fs tat=%.0fs loc=%.4f util=%.3f",
			key, s.Jobs, s.PercentUnfair, s.AvgMissTime, s.AvgTurnaround, s.LossOfCapacity, s.Utilization)
		if s.Utilization <= 0 || s.Utilization > 1 {
			t.Errorf("%s: utilization %f out of range", key, s.Utilization)
		}
	}
}
