package core

import (
	"fmt"
	"sort"

	"fairsched/internal/fairness"
	"fairsched/internal/job"
	"fairsched/internal/metrics"
	"fairsched/internal/sched"
	"fairsched/internal/sim"
	"fairsched/internal/slo"
	"fairsched/internal/topology"
)

// executeTopology is Execute's partitioned path: one independent event loop
// per partition, each running a MultiQueue over that partition's slice of
// the queue tree, merged afterwards into one Run. Determinism contract:
// every partition is a fully deterministic simulation over a disjoint
// workload slice and a disjoint split-segment id range, and the merge
// (record sort, collector/tracker folds) happens in fixed declaration
// order, so the result is byte-identical at every PartitionParallel width —
// and, for a single-partition single-root-queue topology, byte-identical
// to the flat path.
func executeTopology(cfg StudyConfig, spec Spec, workload []*job.Job) (*Run, error) {
	if cfg.Equality {
		return nil, fmt.Errorf("core: the resource-equality observer is not supported with a topology (it models one flat machine)")
	}
	if spec.PreemptTrigger != "" {
		return nil, fmt.Errorf("core: %s: checkpoint preemption is not supported with a topology (partition loops have no requeue path)", spec.String())
	}
	if spec.Order == "edf" {
		return nil, fmt.Errorf("core: %s: order=edf is not supported with a topology (partition loops carry no per-run SLO context)", spec.String())
	}
	topo := cfg.Topology
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	parts := topo.EffectivePartitions(cfg.SystemSize)
	partIdx := make(map[string]int, len(parts))
	totalNodes := 0
	for i, p := range parts {
		partIdx[p.Name] = i
		totalNodes += p.Nodes
	}

	// Per-partition queue configs. A partition with no declared queues gets
	// one implicit root queue running the cell's policy (path "", no report
	// row) — the flat machine, per partition. Declared leaves without a
	// policy inherit the cell's spec.
	inherited := spec
	leavesByPart := make([][]topology.QueueNode, len(parts))
	cfgsByPart := make([][]sched.QueueConfig, len(parts))
	leafIdx := make(map[string]int, len(topo.Queues))  // leaf path -> index in its partition
	leafPart := make(map[string]int, len(topo.Queues)) // leaf path -> partition index
	for i, p := range parts {
		leavesByPart[i] = topo.LeavesFor(p.Name)
		if len(leavesByPart[i]) == 0 {
			cfgsByPart[i] = []sched.QueueConfig{{Path: "", Spec: &inherited}}
			continue
		}
		k := 0
		for _, q := range topo.Queues {
			if topo.PartitionOf(q) != p.Name {
				continue
			}
			qc := sched.QueueConfig{Path: q.Path, Guarantee: q.Guarantee, Cap: q.Cap}
			if k < len(leavesByPart[i]) && leavesByPart[i][k].Path == q.Path {
				// This declared node is a leaf: it carries a scheduler.
				qc.Spec = q.Policy
				if qc.Spec == nil {
					qc.Spec = &inherited
				}
				leafIdx[q.Path] = k
				leafPart[q.Path] = i
				k++
			}
			cfgsByPart[i] = append(cfgsByPart[i], qc)
		}
	}

	// Route users: a queue tag names a declared leaf (implying its
	// partition); a bare partition tag lands on the partition's first leaf
	// (or implicit root); untagged users land on the default partition's
	// first leaf. Routing is per user, so checkpoint chains never span
	// partitions.
	type place struct{ part, leaf int }
	placeOf := make(map[int]place)
	queueOf := make(map[int]string) // user -> report queue path ("" = implicit root)
	resolve := func(user int) (place, error) {
		if pl, ok := placeOf[user]; ok {
			return pl, nil
		}
		pl := place{}
		if qpath, ok := cfg.Placement.Queue(user); ok {
			li, declared := leafIdx[qpath]
			if !declared {
				return pl, fmt.Errorf("core: user %d is tagged with queue %q, which is not a declared leaf of the topology", user, qpath)
			}
			pl = place{part: leafPart[qpath], leaf: li}
		} else if pname, ok := cfg.Placement.PartitionTag(user); ok {
			pi, declared := partIdx[pname]
			if !declared {
				return pl, fmt.Errorf("core: user %d is tagged with partition %q, which the topology does not declare", user, pname)
			}
			pl = place{part: pi}
		}
		placeOf[user] = pl
		if ls := leavesByPart[pl.part]; len(ls) > 0 {
			queueOf[user] = ls[pl.leaf].Path
		} else {
			queueOf[user] = ""
		}
		return pl, nil
	}
	workloads := make([][]*job.Job, len(parts))
	routes := make([]map[int]int, len(parts)) // user -> leaf index, per partition
	var globalMaxID job.ID
	for _, j := range workload {
		if j.ID > globalMaxID {
			globalMaxID = j.ID
		}
		pl, err := resolve(j.User)
		if err != nil {
			return nil, err
		}
		workloads[pl.part] = append(workloads[pl.part], j)
		if routes[pl.part] == nil {
			routes[pl.part] = make(map[int]int)
		}
		routes[pl.part][j.User] = pl.leaf
	}

	// Carve disjoint contiguous split-segment id ranges, so merged records
	// and FST tables cannot collide across partitions (and each loop's
	// dense record index stays dense).
	firstSeg := make([]job.ID, len(parts))
	next := globalMaxID + 1
	for i := range parts {
		firstSeg[i] = next
		next += job.ID(sim.SegmentIDBudget(workloads[i], spec.MaxRuntime))
	}

	runs := make([]sim.PartitionRun, len(parts))
	cols := make([]*metrics.Collector, len(parts))
	fsts := make([]*fairness.HybridFST, len(parts))
	sloObss := make([]*fairness.SLOObserver, len(parts))
	for i, p := range parts {
		route := routes[i]
		pol, err := sched.NewMultiQueue(cfgsByPart[i], func(j *job.Job) int { return route[j.User] }, cfg.Fairshare, cfg.FairshareEpoch)
		if err != nil {
			return nil, fmt.Errorf("core: partition %s: %w", p.Name, err)
		}
		cols[i] = metrics.NewCollector(p.Nodes)
		observers := []sim.Observer{cols[i]}
		if !cfg.SkipFST {
			fsts[i] = fairness.NewHybridFST()
			observers = append(observers, fsts[i])
		}
		if cfg.SLO.NumUsers() > 0 {
			sloObss[i] = fairness.NewSLOObserver(cfg.SLO, fsts[i])
			if cfg.Split == sim.SplitChained {
				sloObss[i].SetChained(true)
			}
			observers = append(observers, sloObss[i])
		}
		runs[i] = sim.PartitionRun{
			Name: p.Name,
			Config: sim.Config{
				SystemSize:     p.Nodes,
				Fairshare:      cfg.Fairshare,
				FairshareEpoch: cfg.FairshareEpoch,
				MaxRuntime:     spec.MaxRuntime,
				Split:          cfg.Split,
				Kill:           cfg.Kill,
				Validate:       cfg.Validate,
				FirstSegmentID: firstSeg[i],
			},
			Policy:    pol,
			Observers: observers,
			Workload:  workloads[i],
		}
	}
	results, err := sim.RunPartitions(cfg.PartitionParallel, runs)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", spec.String(), err)
	}

	merged := mergeResults(spec, totalNodes, results)
	run := &Run{Spec: spec, Result: merged}
	if !cfg.SkipFST {
		run.FST = make(map[job.ID]int64)
		for _, f := range fsts {
			for id, t := range f.Table() {
				run.FST[id] = t
			}
		}
	}
	col := metrics.NewCollector(totalNodes)
	for _, c := range cols {
		col.Merge(c)
	}
	var perUser []slo.UserStats
	if cfg.SLO.NumUsers() > 0 {
		tr := slo.NewTracker(cfg.SLO)
		for _, o := range sloObss {
			tr.Merge(o.Tracker())
		}
		run.SLO = tr.Summary()
		perUser = tr.PerUser()
	}
	run.Summary = metrics.Summarize(merged, run.FST, col)
	run.Summary.Policy = spec.String()

	// Per-queue rows for every declared leaf (path order); partitions with
	// only the implicit root contribute no row. Per-partition rows only
	// when the machine is actually split.
	if leaves := topo.Leaves(); len(leaves) > 0 {
		paths := make([]string, len(leaves))
		for i, q := range leaves {
			paths[i] = q.Path
		}
		run.Summary.Queues = queueSummaries(paths, func(user int) (string, bool) {
			q, ok := queueOf[user]
			return q, ok && q != ""
		}, merged.Records, perUser)
	}
	if len(parts) > 1 {
		run.Summary.Partitions = partitionSummaries(parts, results, merged.Makespan)
	}
	return run, nil
}

// mergeResults folds the per-partition results into one: records re-sorted
// on the global (submit, id) order, spans and event counts combined.
func mergeResults(spec Spec, totalNodes int, results []*sim.Result) *sim.Result {
	merged := &sim.Result{Policy: spec.String(), SystemSize: totalNodes}
	if len(results) == 1 {
		merged.Policy = results[0].Policy
	}
	sawSpan := false
	for _, r := range results {
		merged.Records = append(merged.Records, r.Records...)
		merged.Events += r.Events
		if len(r.Records) == 0 {
			continue
		}
		if !sawSpan {
			merged.FirstStart, merged.LastCompletion, sawSpan = r.FirstStart, r.LastCompletion, true
			continue
		}
		if r.FirstStart < merged.FirstStart {
			merged.FirstStart = r.FirstStart
		}
		if r.LastCompletion > merged.LastCompletion {
			merged.LastCompletion = r.LastCompletion
		}
	}
	sort.Slice(merged.Records, func(i, k int) bool {
		a, b := merged.Records[i], merged.Records[k]
		if a.Job.Submit != b.Job.Submit {
			return a.Job.Submit < b.Job.Submit
		}
		return a.Job.ID < b.Job.ID
	})
	if sawSpan {
		merged.Makespan = merged.LastCompletion - merged.FirstStart
	}
	return merged
}

// queueSummaries groups records into per-queue report rows. queueOf maps a
// user to its queue path; unmapped users contribute to no row. perUser may
// be nil (no SLO assignment).
func queueSummaries(paths []string, queueOf func(user int) (string, bool), records []*sim.Record, perUser []slo.UserStats) []metrics.QueueSummary {
	rows := make([]metrics.QueueSummary, len(paths))
	idx := make(map[string]int, len(paths))
	for i, p := range paths {
		rows[i].Path = p
		idx[p] = i
	}
	users := make(map[int]int, 64) // user -> row index (and distinct-user count)
	sumWait := make([]float64, len(paths))
	sumTAT := make([]float64, len(paths))
	for _, r := range records {
		q, ok := queueOf(r.Job.User)
		if !ok {
			continue
		}
		i, declared := idx[q]
		if !declared {
			continue
		}
		if _, seen := users[r.Job.User]; !seen {
			users[r.Job.User] = i
			rows[i].Users++
		}
		rows[i].Jobs++
		sumWait[i] += float64(r.Wait())
		sumTAT[i] += float64(r.Turnaround())
	}
	for i := range rows {
		if rows[i].Jobs > 0 {
			n := float64(rows[i].Jobs)
			rows[i].AvgWait = sumWait[i] / n
			rows[i].AvgTurnaround = sumTAT[i] / n
		}
	}
	for _, u := range perUser {
		q, ok := queueOf(u.User)
		if !ok {
			continue
		}
		if i, declared := idx[q]; declared {
			rows[i].SLOJobs += u.Jobs
			rows[i].SLOAttained += u.Attained
		}
	}
	return rows
}

// partitionSummaries builds the per-partition report rows. Utilization is
// partition-local work over the merged makespan, so every row shares the
// run's time denominator.
func partitionSummaries(parts []topology.Partition, results []*sim.Result, makespan int64) []metrics.PartitionSummary {
	rows := make([]metrics.PartitionSummary, len(parts))
	for i, p := range parts {
		r := results[i]
		row := metrics.PartitionSummary{Name: p.Name, Nodes: p.Nodes, Jobs: len(r.Records)}
		var sumWait, sumTAT, usedProcSec float64
		for _, rec := range r.Records {
			sumWait += float64(rec.Wait())
			sumTAT += float64(rec.Turnaround())
			usedProcSec += float64(rec.Job.Nodes) * float64(rec.Complete-rec.Start)
		}
		if row.Jobs > 0 {
			n := float64(row.Jobs)
			row.AvgWait = sumWait / n
			row.AvgTurnaround = sumTAT / n
		}
		if makespan > 0 && p.Nodes > 0 {
			row.Utilization = usedProcSec / (float64(makespan) * float64(p.Nodes))
		}
		rows[i] = row
	}
	return rows
}
