package core

import (
	"strings"
	"testing"

	"fairsched/internal/fairness"
	"fairsched/internal/job"
	"fairsched/internal/sched"
)

func TestSpecKeysNamedLikeThePaper(t *testing.T) {
	want := map[string]bool{
		"cplant24.nomax.all": true, "cplant24.nomax.fair": true,
		"cplant72.nomax.all": true, "cplant24.72max.all": true,
		"cplant72.72max.fair": true, "cons.nomax": true,
		"consdyn.nomax": true, "cons.72max": true, "consdyn.72max": true,
	}
	got := map[string]bool{}
	for _, s := range AllSpecs() {
		got[s.Key] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing policy %s", k)
		}
	}
	if len(AllSpecs()) != 9 {
		t.Errorf("AllSpecs has %d entries", len(AllSpecs()))
	}
}

func TestSpecByKey(t *testing.T) {
	s, err := SpecByKey("cons.72max")
	if err != nil {
		t.Fatal(err)
	}
	if s.Backfill != sched.BackfillConservative || s.MaxRuntime != 72*3600 {
		t.Fatalf("cons.72max spec wrong: %+v", s)
	}
	if _, err := SpecByKey("nonsense"); err == nil {
		t.Fatal("unknown key accepted")
	}
	for _, extra := range []string{"fcfs", "easy", "list.fairshare"} {
		if _, err := SpecByKey(extra); err != nil {
			t.Errorf("extra baseline %s missing: %v", extra, err)
		}
	}
}

func TestSpecByKeyAcceptsComponentChains(t *testing.T) {
	s, err := SpecByKey("order=sjf+bf=easy+max=72h")
	if err != nil {
		t.Fatal(err)
	}
	if s.Order != "sjf" || s.Backfill != sched.BackfillEASY || s.MaxRuntime != 72*3600 {
		t.Fatalf("chain spec wrong: %+v", s)
	}
	_, err = SpecByKey("order=sjf+bf=teleport")
	if err == nil || !strings.Contains(err.Error(), "position") {
		t.Fatalf("bad chain error lacks parse position: %v", err)
	}
}

func TestEverySpecBuildsAPolicy(t *testing.T) {
	for _, key := range SpecKeys() {
		spec, err := SpecByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := sched.New(spec)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if pol.Name() != key {
			t.Errorf("%s built policy named %q", key, pol.Name())
		}
		if spec.PreemptTrigger != "" {
			// Preemptive policies must refuse an environment that cannot
			// checkpoint (sim.Config.Preemptable unset).
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: Reset accepted a preempt-incapable environment", key)
					}
				}()
				pol.Reset(nil)
			}()
			continue
		}
		pol.Reset(nil)
	}
}

func TestSpecPropertiesMatchNames(t *testing.T) {
	for _, s := range AllSpecs() {
		has72max := s.MaxRuntime == 72*3600
		if has72max != strings.Contains(s.Key, "72max") {
			t.Errorf("%s: MaxRuntime inconsistent with name", s.Key)
		}
		isFair := s.Heavy == sched.HeavyNonheavy
		if isFair != strings.HasSuffix(s.Key, ".fair") {
			t.Errorf("%s: heavy classifier inconsistent with name", s.Key)
		}
		if strings.HasPrefix(s.Key, "cplant") {
			wait72 := s.Wait == 72*3600
			if wait72 != strings.Contains(s.Key, "cplant72") {
				t.Errorf("%s: starvation wait inconsistent with name", s.Key)
			}
		}
	}
}

func TestStartsFeedsSabin(t *testing.T) {
	jobs := tinyWorkload()
	spec, err := SpecByKey("cplant24.nomax.all")
	if err != nil {
		t.Fatal(err)
	}
	cfg := StudyConfig{SystemSize: 128}
	fst, err := fairness.Sabin(Starts(cfg, spec), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fst) != len(jobs) {
		t.Fatalf("sabin fst covers %d of %d jobs", len(fst), len(jobs))
	}
	// The last-arriving job's Sabin FST equals its start in the full run
	// (no later arrivals exist to truncate away).
	full, err := Execute(cfg, spec, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var last *job.Job
	for _, j := range jobs {
		if last == nil || j.Submit > last.Submit {
			last = j
		}
	}
	var lastStart int64 = -1
	for _, r := range full.Result.Records {
		if r.Job.ID == last.ID {
			lastStart = r.Start
		}
	}
	if fst[last.ID] != lastStart {
		t.Fatalf("sabin fst for the last job = %d, actual start %d", fst[last.ID], lastStart)
	}
}

func TestExecuteAllPreservesOrder(t *testing.T) {
	runs, err := ExecuteAll(StudyConfig{SystemSize: 128}, MinorSpecs(), tinyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range MinorSpecs() {
		if runs[i].Spec.Key != s.Key {
			t.Fatalf("run %d is %s, want %s", i, runs[i].Spec.Key, s.Key)
		}
	}
}

func TestExecuteSkipFST(t *testing.T) {
	spec, _ := SpecByKey("cplant24.nomax.all")
	run, err := Execute(StudyConfig{SystemSize: 128, SkipFST: true}, spec, tinyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if run.FST != nil {
		t.Fatal("FST computed despite SkipFST")
	}
	if run.Summary.PercentUnfair != 0 {
		t.Fatal("fairness metrics nonzero without FST")
	}
}

func TestDepthSpecResolution(t *testing.T) {
	s, err := SpecByKey("depth4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Backfill != sched.BackfillDepth || s.Depth != 4 {
		t.Fatalf("depth4 spec wrong: %+v", s)
	}
	pol, err := sched.New(s)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "depth4" {
		t.Fatalf("policy name = %q", pol.Name())
	}
	for _, bad := range []string{"depth0", "depth", "depthx", "depth-3"} {
		if _, err := SpecByKey(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestExecuteDepthPolicy(t *testing.T) {
	spec, err := SpecByKey("depth2")
	if err != nil {
		t.Fatal(err)
	}
	run, err := Execute(StudyConfig{SystemSize: 128, Validate: true}, spec, tinyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if run.Summary.Jobs != len(tinyWorkload()) {
		t.Fatalf("jobs = %d", run.Summary.Jobs)
	}
}

func TestExecuteRejectsInvalidSpec(t *testing.T) {
	bad := Spec{Order: "fairshare", Backfill: "optimistic"}
	if _, err := Execute(StudyConfig{SystemSize: 128}, bad, tinyWorkload()); err == nil {
		t.Fatal("invalid spec executed")
	}
}

func TestExecuteWithEquality(t *testing.T) {
	spec, _ := SpecByKey("easy")
	run, err := Execute(StudyConfig{SystemSize: 128, Equality: true}, spec, tinyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if run.Equality == nil {
		t.Fatal("equality observer missing")
	}
	if run.Equality.AveragePerJob() < 0 {
		t.Fatal("negative equality deficit")
	}
}
