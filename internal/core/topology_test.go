package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"fairsched/internal/job"
	"fairsched/internal/sim"
	"fairsched/internal/slo"
	"fairsched/internal/topology"
	"fairsched/internal/workload"
)

// sloFor tags every third user with a wait target and every fifth with a
// wait+slowdown target, so the merged-tracker path is exercised.
func sloFor(jobs []*job.Job) *slo.Assignment {
	b := slo.NewBuilder()
	b.AddClass("tight", slo.Target{Wait: 3600})
	b.AddClass("both", slo.Target{Wait: 24 * 3600, Slowdown: 8})
	seen := map[int]bool{}
	for _, j := range jobs {
		if seen[j.User] {
			continue
		}
		seen[j.User] = true
		switch j.User % 5 {
		case 0, 3:
			b.Tag(j.User, "tight")
		case 1:
			b.Tag(j.User, "both")
		}
	}
	return b.Build()
}

// assertRunsEqual demands two runs describe the identical outcome: same
// records (field for field, in order), event counts, FST tables, SLO
// summaries and metric summaries. Summary equality is reflect.DeepEqual
// over every float, so any report rendered from the two runs is
// byte-identical.
func assertRunsEqual(t *testing.T, name string, got, want *Run) {
	t.Helper()
	if got.Result.Events != want.Result.Events {
		t.Errorf("%s: events %d != %d", name, got.Result.Events, want.Result.Events)
	}
	if len(got.Result.Records) != len(want.Result.Records) {
		t.Fatalf("%s: %d records != %d", name, len(got.Result.Records), len(want.Result.Records))
	}
	for i, g := range got.Result.Records {
		w := want.Result.Records[i]
		if g.Job.ID != w.Job.ID || g.Submit != w.Submit || g.Start != w.Start ||
			g.Complete != w.Complete || g.Killed != w.Killed || g.Finished != w.Finished {
			t.Fatalf("%s: record %d diverged:\n  got:  %+v (job %d)\n  want: %+v (job %d)",
				name, i, *g, g.Job.ID, *w, w.Job.ID)
		}
	}
	if got.Result.FirstStart != want.Result.FirstStart ||
		got.Result.LastCompletion != want.Result.LastCompletion ||
		got.Result.Makespan != want.Result.Makespan {
		t.Errorf("%s: span diverged: got [%d, %d] makespan %d, want [%d, %d] makespan %d", name,
			got.Result.FirstStart, got.Result.LastCompletion, got.Result.Makespan,
			want.Result.FirstStart, want.Result.LastCompletion, want.Result.Makespan)
	}
	if !reflect.DeepEqual(got.FST, want.FST) {
		t.Errorf("%s: FST tables diverged (%d vs %d entries)", name, len(got.FST), len(want.FST))
	}
	if !reflect.DeepEqual(got.SLO, want.SLO) {
		t.Errorf("%s: SLO summaries diverged:\n  got:  %+v\n  want: %+v", name, got.SLO, want.SLO)
	}
	if !reflect.DeepEqual(got.Summary, want.Summary) {
		t.Errorf("%s: summaries diverged:\n  got:  %+v\n  want: %+v", name, got.Summary, want.Summary)
	}
}

// TestTopologyFlatEquivalence: a single-partition, single-root-queue
// topology must reproduce the flat run byte-identically — same records,
// events, FST, SLO and summary — on every workload shape, with and without
// an SLO assignment. This is the refactor's equivalence bar.
func TestTopologyFlatEquivalence(t *testing.T) {
	h := int64(3600)
	cases := []struct {
		name  string
		cfg   StudyConfig
		scale float64
	}{
		{"calm", StudyConfig{SystemSize: 500, Validate: true}, 0.02},
		{"contended", StudyConfig{SystemSize: 100, Validate: true}, 0.05},
		{"split-upfront", StudyConfig{SystemSize: 100, Split: sim.SplitUpfront, Validate: true}, 0.04},
		{"split-chained", StudyConfig{SystemSize: 100, Split: sim.SplitChained, Validate: true}, 0.04},
		{"kill-always", StudyConfig{SystemSize: 100, Kill: sim.KillAlways, Validate: true}, 0.04},
	}
	_ = h
	topos := map[string]func(size int) *topology.Topology{
		"implicit": func(int) *topology.Topology { return &topology.Topology{} },
		"named":    func(int) *topology.Topology { return topology.MustParse("part=main") },
	}
	for _, key := range []string{"cplant24.nomax.all", "cons.72max", "easy"} {
		spec, err := SpecByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cases {
			for tname, mk := range topos {
				t.Run(key+"/"+c.name+"/"+tname, func(t *testing.T) {
					jobs, err := workload.Generate(workload.Config{Seed: 11, Scale: c.scale, SystemSize: c.cfg.SystemSize})
					if err != nil {
						t.Fatal(err)
					}
					cfg := c.cfg
					cfg.SLO = sloFor(jobs)
					flat, err := Execute(cfg, spec, jobs)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Topology = mk(cfg.SystemSize)
					part, err := Execute(cfg, spec, jobs)
					if err != nil {
						t.Fatal(err)
					}
					assertRunsEqual(t, key+"/"+c.name, part, flat)
				})
			}
		}
	}
}

// TestTopologyFlatEquivalenceRandomized sweeps 30 random small workloads
// with mixed estimate quality through flat and single-partition topology
// runs (mirroring the conservative cache's randomized differential).
func TestTopologyFlatEquivalenceRandomized(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const size = 16
		n := rng.Intn(40) + 5
		jobs := make([]*job.Job, n)
		for i := range jobs {
			runtime := rng.Int63n(500) + 1
			est := runtime
			switch rng.Intn(3) {
			case 0:
				est = runtime * (rng.Int63n(8) + 1)
			case 1:
				est = runtime/2 + 1
			}
			jobs[i] = &job.Job{
				ID:       job.ID(i + 1),
				User:     rng.Intn(4) + 1,
				Submit:   rng.Int63n(1000),
				Runtime:  runtime,
				Estimate: est,
				Nodes:    rng.Intn(size) + 1,
			}
		}
		for _, key := range []string{"cplant24.nomax.all", "cons.nomax"} {
			spec, err := SpecByKey(key)
			if err != nil {
				t.Fatal(err)
			}
			cfg := StudyConfig{SystemSize: size, Validate: true}
			flat, err := Execute(cfg, spec, jobs)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Topology = &topology.Topology{}
			part, err := Execute(cfg, spec, jobs)
			if err != nil {
				t.Fatal(err)
			}
			assertRunsEqual(t, key, part, flat)
		}
	}
}

// twoPartitionSetup builds a 2-partition, 3-leaf topology and a placement
// routing users across it: users ≡0 (mod 3) to fast/a, ≡1 to fast/b, the
// rest to the slow partition's leaf.
func twoPartitionSetup(t *testing.T, jobs []*job.Job) (*topology.Topology, *topology.Placement) {
	t.Helper()
	topo, err := topology.Parse("part=fast:60,part=slow:40," +
		"queue=org/a:part=fast:guar=2,queue=org/b:part=fast," +
		"queue=org/c:part=slow:sjf")
	if err != nil {
		t.Fatal(err)
	}
	var b topology.PlacementBuilder
	seen := map[int]bool{}
	for _, j := range jobs {
		if seen[j.User] {
			continue
		}
		seen[j.User] = true
		switch j.User % 3 {
		case 0:
			b.SetQueue(j.User, "org/a")
		case 1:
			b.SetQueue(j.User, "org/b")
		default:
			b.SetQueue(j.User, "org/c")
		}
	}
	return topo, b.Build()
}

// TestPartitionParallelDeterminism: a multi-partition run must be
// byte-identical at every PartitionParallel width — each partition is a
// deterministic event loop over a disjoint workload, and the merge happens
// in declaration order regardless of completion order.
func TestPartitionParallelDeterminism(t *testing.T) {
	jobs, err := workload.Generate(workload.Config{Seed: 7, Scale: 0.05, SystemSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Partitions are smaller than the whole machine: cap each job's width
	// at the smallest partition so every routing is feasible.
	for _, j := range jobs {
		if j.Nodes > 40 {
			j.Nodes = 40
		}
	}
	topo, place := twoPartitionSetup(t, jobs)
	spec, err := SpecByKey("cplant24.72max.all")
	if err != nil {
		t.Fatal(err)
	}
	base := StudyConfig{
		SystemSize: 100, Validate: true, Topology: topo, Placement: place,
		SLO: sloFor(jobs), Split: sim.SplitChained,
	}
	var ref *Run
	for _, par := range []int{1, 2, 8} {
		cfg := base
		cfg.PartitionParallel = par
		run, err := Execute(cfg, spec, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if par == 1 {
			ref = run
			continue
		}
		assertRunsEqual(t, "partition-parallel", run, ref)
	}
	if len(ref.Summary.Queues) != 3 {
		t.Fatalf("%d queue rows, want 3", len(ref.Summary.Queues))
	}
	if len(ref.Summary.Partitions) != 2 {
		t.Fatalf("%d partition rows, want 2", len(ref.Summary.Partitions))
	}
	total := 0
	for _, q := range ref.Summary.Queues {
		total += q.Jobs
	}
	if total != len(ref.Result.Records) {
		t.Errorf("queue rows cover %d jobs, run has %d records", total, len(ref.Result.Records))
	}
}

// TestTopologyRejects: routing and configuration errors must surface as
// errors, not silent misroutes.
func TestTopologyRejects(t *testing.T) {
	jobs := tinyWorkload()
	spec, err := SpecByKey("cplant24.nomax.all")
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.MustParse("part=main,queue=a,queue=b:sjf")

	var bq topology.PlacementBuilder
	bq.SetQueue(1, "nope")
	if _, err := Execute(StudyConfig{SystemSize: 128, Topology: topo, Placement: bq.Build()}, spec, jobs); err == nil ||
		!strings.Contains(err.Error(), "not a declared leaf") {
		t.Errorf("undeclared queue tag: err = %v", err)
	}

	var bp topology.PlacementBuilder
	bp.SetPartition(1, "ghost")
	if _, err := Execute(StudyConfig{SystemSize: 128, Topology: topo, Placement: bp.Build()}, spec, jobs); err == nil ||
		!strings.Contains(err.Error(), "does not declare") {
		t.Errorf("undeclared partition tag: err = %v", err)
	}

	if _, err := Execute(StudyConfig{SystemSize: 128, Topology: topo, Equality: true}, spec, jobs); err == nil ||
		!strings.Contains(err.Error(), "equality") {
		t.Errorf("equality+topology: err = %v", err)
	}
}
