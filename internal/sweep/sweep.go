// Package sweep is the concurrent experiment engine: a bounded worker pool
// that fans (policy × seed) simulation runs out across cores while keeping
// results in deterministic input order and capturing every per-run error.
//
// The simulator itself is strictly sequential (a discrete-event loop), but a
// study is embarrassingly parallel across runs: each (policy, workload)
// pair owns its simulator, policy instance, fairshare tracker and observers,
// and only reads the shared job slice. Package sweep exploits exactly that
// boundary and nothing finer, so a parallel sweep is byte-identical to a
// serial one — same summaries, same report — just faster.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"fairsched/internal/core"
	"fairsched/internal/job"
	"fairsched/internal/workload"
)

// Workers resolves a parallelism request: n > 0 is taken as given, anything
// else (0, negative) means "one worker per available CPU".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// RunError records the failure of one task in a sweep, keyed by the task's
// input index and a human label (the policy key, the seed, ...).
type RunError struct {
	Index int
	Label string
	Err   error
}

// Error implements error.
func (e *RunError) Error() string {
	if e.Label != "" {
		return fmt.Sprintf("run %d (%s): %v", e.Index, e.Label, e.Err)
	}
	return fmt.Sprintf("run %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// Errors aggregates every failed run of a sweep, in input order. Unlike a
// fail-fast pool, the sweep engine finishes every task and reports the full
// casualty list: a 500-seed overnight sweep should not discard 499 results
// because seed 17 hit a pathological trace.
type Errors struct {
	Runs []*RunError
}

// Error implements error.
func (e *Errors) Error() string {
	switch len(e.Runs) {
	case 0:
		return "sweep: no errors"
	case 1:
		return "sweep: " + e.Runs[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d runs failed:", len(e.Runs))
	for _, r := range e.Runs {
		b.WriteString("\n\t")
		b.WriteString(r.Error())
	}
	return b.String()
}

// Unwrap exposes the per-run errors to errors.Is/As.
func (e *Errors) Unwrap() []error {
	errs := make([]error, len(e.Runs))
	for i, r := range e.Runs {
		errs[i] = r
	}
	return errs
}

// Map runs fn over every item on at most parallel workers and returns the
// results in input order (results[i] corresponds to items[i], regardless of
// completion order). Every item is attempted; if any fail, Map returns a
// non-nil *Errors alongside the partial results (failed slots hold the zero
// R). label names an item in error messages; nil is allowed.
//
// parallel <= 0 means one worker per CPU. With parallel == 1 the items run
// on a single worker in input order — exactly the serial loop.
func Map[T, R any](parallel int, items []T, label func(T) string, fn func(int, T) (R, error)) ([]R, error) {
	n := len(items)
	results := make([]R, n)
	errs := make([]*RunError, n)
	workers := Workers(parallel)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, item := range items {
			runOne(i, item, results, errs, label, fn)
		}
	} else {
		indices := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range indices {
					runOne(i, items[i], results, errs, label, fn)
				}
			}()
		}
		for i := 0; i < n; i++ {
			indices <- i
		}
		close(indices)
		wg.Wait()
	}
	var failed []*RunError
	for _, e := range errs {
		if e != nil {
			failed = append(failed, e)
		}
	}
	if len(failed) > 0 {
		return results, &Errors{Runs: failed}
	}
	return results, nil
}

// runOne executes one task, converting a panic in fn (or label) into a
// captured error so a single diverging run cannot take down the whole sweep.
func runOne[T, R any](i int, item T, results []R, errs []*RunError, label func(T) string, fn func(int, T) (R, error)) {
	name := ""
	defer func() {
		if p := recover(); p != nil {
			errs[i] = &RunError{Index: i, Label: name, Err: fmt.Errorf("panic: %v", p)}
		}
	}()
	if label != nil {
		name = label(item)
	}
	r, err := fn(i, item)
	if err != nil {
		errs[i] = &RunError{Index: i, Label: name, Err: err}
		return
	}
	results[i] = r
}

// Runs executes every spec over the shared workload on at most parallel
// workers — the concurrent counterpart of core.ExecuteAll. Results come back
// in spec order; the workload slice is shared read-only across workers (the
// simulator never mutates submitted jobs).
func Runs(cfg core.StudyConfig, specs []core.Spec, jobs []*job.Job, parallel int) ([]*core.Run, error) {
	return Map(parallel, specs,
		func(s core.Spec) string { return s.Key },
		func(_ int, s core.Spec) (*core.Run, error) {
			return core.Execute(cfg, s, jobs)
		})
}

// SeedRuns is the outcome of the full policy set over one seed's workload.
type SeedRuns struct {
	Seed int64
	Jobs []*job.Job
	Runs []*core.Run
}

// Matrix parameterizes a full (seed × policy) sweep.
type Matrix struct {
	// Workload is the generator configuration; its Seed field is overridden
	// by each entry of Seeds.
	Workload workload.Config
	// Study configures every run.
	Study core.StudyConfig
	// Specs are the policies; zero length means core.AllSpecs().
	Specs []core.Spec
	// Seeds are the workload seeds, one generated trace each.
	Seeds []int64
	// Parallel bounds the worker pool (<= 0: one worker per CPU).
	Parallel int
}

// Complete reports whether every run of this seed finished (a failed cell
// leaves a nil entry in Runs).
func (s SeedRuns) Complete() bool {
	if len(s.Runs) == 0 {
		return false
	}
	for _, r := range s.Runs {
		if r == nil {
			return false
		}
	}
	return true
}

// Run fans the whole (seed × policy) grid out as one flat task list — the
// pool stays saturated across seed boundaries instead of draining at the
// end of each seed — and reassembles the results grouped by seed, in seed
// order, with runs in spec order.
//
// Like Map, a failed cell never discards the others: on error the returned
// groups still carry every successful run (failed cells are nil — see
// SeedRuns.Complete) alongside the aggregated *Errors.
func (m Matrix) Run() ([]SeedRuns, error) {
	specs := m.Specs
	if len(specs) == 0 {
		specs = core.AllSpecs()
	}
	var failed []*RunError
	// Generate each seed's trace first (itself fanned out): every policy of
	// a seed shares one read-only job slice.
	traces, err := Map(m.Parallel, m.Seeds,
		func(s int64) string { return fmt.Sprintf("seed %d", s) },
		func(_ int, s int64) ([]*job.Job, error) {
			wl := m.Workload
			wl.Seed = s
			if wl.SystemSize <= 0 {
				wl.SystemSize = m.Study.SystemSize
			}
			return workload.Generate(wl)
		})
	var genErrs *Errors
	if err != nil {
		if !errors.As(err, &genErrs) {
			return nil, err
		}
		failed = append(failed, genErrs.Runs...)
	}
	type cell struct {
		seed int
		spec core.Spec
	}
	grid := make([]cell, 0, len(m.Seeds)*len(specs))
	for si := range m.Seeds {
		if traces[si] == nil {
			continue // trace generation failed; already recorded
		}
		for _, sp := range specs {
			grid = append(grid, cell{seed: si, spec: sp})
		}
	}
	runs, err := Map(m.Parallel, grid,
		func(c cell) string { return fmt.Sprintf("seed %d × %s", m.Seeds[c.seed], c.spec.Key) },
		func(_ int, c cell) (*core.Run, error) {
			return core.Execute(m.Study, c.spec, traces[c.seed])
		})
	var runErrs *Errors
	if err != nil {
		if !errors.As(err, &runErrs) {
			return nil, err
		}
		failed = append(failed, runErrs.Runs...)
	}
	out := make([]SeedRuns, len(m.Seeds))
	next := 0
	for si, seed := range m.Seeds {
		sr := SeedRuns{Seed: seed, Jobs: traces[si]}
		if traces[si] != nil {
			sr.Runs = runs[next : next+len(specs)]
			next += len(specs)
		}
		out[si] = sr
	}
	if len(failed) > 0 {
		return out, &Errors{Runs: failed}
	}
	return out, nil
}

// RunEach is the streaming counterpart of Run for long campaigns: it hands
// each seed's completed group to the callback as soon as that seed finishes
// and releases it afterwards, so peak memory is bounded by the worker count
// rather than the seed count (Run retains the whole grid — 500 full-scale
// seeds hold every trace and every run's records live at once).
//
// The unit of parallelism is the seed (trace generation plus all of its
// policy runs as one task), so the pool saturates whenever there are at
// least as many seeds as workers. Callbacks are serialized (no locking
// needed inside each) but arrive in completion order, not seed order —
// aggregate commutatively or collect and sort. A failing run fails its
// whole seed: the callback is not invoked for it, the casualty is recorded
// in the aggregated *Errors, and the other seeds proceed.
func (m Matrix) RunEach(each func(SeedRuns)) error {
	specs := m.Specs
	if len(specs) == 0 {
		specs = core.AllSpecs()
	}
	var mu sync.Mutex
	_, err := Map(m.Parallel, m.Seeds,
		func(s int64) string { return fmt.Sprintf("seed %d", s) },
		func(_ int, seed int64) (struct{}, error) {
			wl := m.Workload
			wl.Seed = seed
			if wl.SystemSize <= 0 {
				wl.SystemSize = m.Study.SystemSize
			}
			jobs, err := workload.Generate(wl)
			if err != nil {
				return struct{}{}, err
			}
			runs := make([]*core.Run, len(specs))
			for k, sp := range specs {
				r, err := core.Execute(m.Study, sp, jobs)
				if err != nil {
					return struct{}{}, fmt.Errorf("%s: %w", sp.Key, err)
				}
				runs[k] = r
			}
			mu.Lock()
			defer mu.Unlock()
			each(SeedRuns{Seed: seed, Jobs: jobs, Runs: runs})
			return struct{}{}, nil
		})
	return err
}
