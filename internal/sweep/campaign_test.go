package sweep_test

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"fairsched/internal/core"
	"fairsched/internal/experiments"
	"fairsched/internal/scenario"
	"fairsched/internal/sweep"
	"fairsched/internal/workload"
)

func testCampaign(parallel int) sweep.Campaign {
	return sweep.Campaign{
		Sources: []scenario.Source{
			scenario.Synthetic(workload.Config{Scale: 0.02, SystemSize: 100}),
		},
		Scenarios: []scenario.Scenario{
			scenario.Baseline(),
			mustScenario("load=1.3"),
			mustScenario("window=0..4w"),
			mustScenario("perturb=3"),
		},
		Seeds:    []int64{42, 43},
		Specs:    mustSpecs("fcfs", "easy"),
		Study:    core.StudyConfig{SystemSize: 100},
		Parallel: parallel,
	}
}

func mustSpecs(keys ...string) []core.Spec {
	out := make([]core.Spec, 0, len(keys))
	for _, k := range keys {
		s, err := core.SpecByKey(k)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

func mustScenario(spec string) scenario.Scenario {
	s, err := scenario.Parse(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// The whole point of the campaign engine: the rendered report is
// byte-identical at every parallelism.
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	var serial, parallel bytes.Buffer
	cells, err := testCampaign(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	experiments.RenderCampaign(&serial, cells)
	cells, err = testCampaign(8).Run()
	if err != nil {
		t.Fatal(err)
	}
	experiments.RenderCampaign(&parallel, cells)
	if serial.String() != parallel.String() {
		t.Error("campaign report differs between -parallel 1 and 8")
	}
	if serial.Len() == 0 {
		t.Fatal("empty campaign report")
	}
}

// Policy-parallel mode must render the byte-identical report: same cells,
// same summaries, at every worker count.
func TestCampaignPolicyParallelDeterministic(t *testing.T) {
	var want bytes.Buffer
	cells, err := testCampaign(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	experiments.RenderCampaign(&want, cells)
	for _, parallel := range []int{1, 8} {
		c := testCampaign(parallel)
		c.PolicyParallel = true
		cells, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		experiments.RenderCampaign(&got, cells)
		if got.String() != want.String() {
			t.Errorf("policy-parallel report at -parallel %d differs from cell-unit report", parallel)
		}
	}
}

// A failing cell in policy-parallel mode leaves a nil summary slot (every
// policy task of the cell reports the load failure) without disturbing the
// surviving cells.
func TestCampaignPolicyParallelFailureIsolation(t *testing.T) {
	c := testCampaign(4)
	c.PolicyParallel = true
	c.Scenarios = append(c.Scenarios, scenario.Scenario{
		Name:       "broken",
		Transforms: []scenario.Transform{scenario.UserFilter{}},
	})
	cells, err := c.Run()
	var errs *sweep.Errors
	if !errors.As(err, &errs) {
		t.Fatalf("want *sweep.Errors, got %v", err)
	}
	if len(cells) != 5*2 {
		t.Fatalf("got %d cells, want 10", len(cells))
	}
	for i, cell := range cells {
		broken := i >= 8 // broken scenario is last: 2 seeds at the tail
		if broken && cell != nil {
			t.Errorf("cell %d should have failed", i)
		}
		if !broken && cell == nil {
			t.Errorf("cell %d should have survived", i)
		}
	}
}

func TestCampaignMatrixShapeAndOrder(t *testing.T) {
	c := testCampaign(4)
	cells, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1*4*2 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	// Matrix order: scenarios outer, seeds inner.
	want := 0
	for _, scen := range c.Scenarios {
		for _, seed := range c.Seeds {
			cell := cells[want]
			if cell.Scenario != scen.Name || cell.Seed != seed {
				t.Fatalf("cell %d = %s/%d, want %s/%d", want, cell.Scenario, cell.Seed, scen.Name, seed)
			}
			if cell.Jobs == 0 {
				t.Fatalf("cell %d ran over an empty workload", want)
			}
			if len(cell.Summaries) != 2 || cell.Policies[0] != "fcfs" {
				t.Fatalf("cell %d policies wrong: %v", want, cell.Policies)
			}
			want++
		}
	}
	// The seed axis must actually vary the workload (synthetic source
	// regenerates per seed).
	if cells[0].Jobs == cells[1].Jobs &&
		cells[0].Summaries[0].AvgWait == cells[1].Summaries[0].AvgWait {
		t.Error("seeds 42 and 43 produced identical cells")
	}
}

// RunEach must hand over every cell exactly once and keep the other cells
// alive when one fails.
func TestCampaignRunEachAndFailureIsolation(t *testing.T) {
	c := testCampaign(4)
	// A scenario whose transform always fails: user filter selecting nobody.
	c.Scenarios = append(c.Scenarios, scenario.Scenario{
		Name:       "broken",
		Transforms: []scenario.Transform{scenario.UserFilter{}},
	})
	var got []string
	err := c.RunEach(func(cell sweep.Cell) {
		got = append(got, fmt.Sprintf("%s/%d", cell.Scenario, cell.Seed))
		if len(cell.Runs) != 2 || cell.Runs[0] == nil {
			t.Errorf("cell %s/%d has bad runs", cell.Scenario, cell.Seed)
		}
	})
	var errs *sweep.Errors
	if !errors.As(err, &errs) {
		t.Fatalf("want *sweep.Errors, got %v", err)
	}
	if len(errs.Runs) != 2 {
		t.Fatalf("want 2 failed cells (broken × 2 seeds), got %v", errs)
	}
	sort.Strings(got)
	if len(got) != 8 {
		t.Fatalf("callback fired %d times, want 8: %v", len(got), got)
	}
	for _, g := range got {
		if g == "broken/42" || g == "broken/43" {
			t.Fatalf("failed cell reached the callback: %v", got)
		}
	}
}

// A window-sliced cell must shift the fairshare epoch by its origin shift:
// slicing 12h off a midnight-started trace moves the first decay boundary
// to 12h into the slice, not 24h.
func TestCampaignWindowShiftsEpoch(t *testing.T) {
	jobs, err := workload.Generate(workload.Config{Seed: 3, Scale: 0.01, SystemSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	src := scenario.Source{
		Name: "origin",
		Load: func(int64) (*scenario.Workload, error) {
			return &scenario.Workload{Jobs: jobs, SystemSize: 100, UnixStartTime: 5 * 86400}, nil
		},
	}
	c := sweep.Campaign{
		Sources: []scenario.Source{src},
		Scenarios: []scenario.Scenario{
			scenario.Baseline().With(scenario.Window{Start: 12 * 3600}),
		},
		Specs:    mustSpecs("fcfs"),
		Study:    core.StudyConfig{SystemSize: 100},
		Parallel: 1,
	}
	var cells []sweep.Cell
	if err := c.RunEach(func(cell sweep.Cell) { cells = append(cells, cell) }); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells", len(cells))
	}
	// UnixStartTime 5d is boundary-aligned; a 12h window start means the
	// slice origin sits mid-interval: epoch -(12h % 24h) = -43200.
	if cells[0].Epoch != -43200 {
		t.Fatalf("epoch = %d, want -43200", cells[0].Epoch)
	}
}

// Campaign defaults: empty scenario/seed/spec lists fall back to baseline,
// seed 0 and the full nine-policy set.
func TestCampaignDefaults(t *testing.T) {
	c := sweep.Campaign{
		Sources: []scenario.Source{
			scenario.Synthetic(workload.Config{Scale: 0.01, SystemSize: 100}),
		},
		Study:    core.StudyConfig{SystemSize: 100},
		Parallel: 1,
	}
	cells, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	if cells[0].Scenario != "baseline" || cells[0].Seed != 0 {
		t.Fatalf("defaults wrong: %+v", cells[0])
	}
	if len(cells[0].Summaries) != len(core.AllSpecs()) {
		t.Fatalf("got %d policies, want all %d", len(cells[0].Summaries), len(core.AllSpecs()))
	}
}
