package sweep_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"fairsched/internal/core"
	"fairsched/internal/experiments"
	"fairsched/internal/job"
	"fairsched/internal/sweep"
	"fairsched/internal/workload"
)

func testJobs(t *testing.T) []*job.Job {
	t.Helper()
	jobs, err := workload.Generate(workload.Config{Seed: 7, Scale: 0.05, SystemSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestMapPreservesInputOrder checks that results land at their input index
// no matter which worker finishes first.
func TestMapPreservesInputOrder(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	got, err := sweep.Map(8, items, nil, func(_ int, v int) (int, error) {
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapSerialEqualsParallel checks the bounded pool produces the same
// result vector at every worker count.
func TestMapSerialEqualsParallel(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd"}
	fn := func(i int, s string) (string, error) { return fmt.Sprintf("%d:%s", i, s), nil }
	serial, err := sweep.Map(1, items, nil, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		parallel, err := sweep.Map(workers, items, nil, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Fatalf("workers=%d: result[%d] = %q, want %q", workers, i, parallel[i], serial[i])
			}
		}
	}
}

// TestMapRunsEverythingAndAggregatesErrors checks per-run error capture:
// failures neither stop the sweep nor lose their index/label, and the
// surviving slots still hold results.
func TestMapRunsEverythingAndAggregatesErrors(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	results, err := sweep.Map(4, []int{0, 1, 2, 3, 4, 5},
		func(v int) string { return fmt.Sprintf("item-%d", v) },
		func(_ int, v int) (int, error) {
			ran.Add(1)
			if v%2 == 1 {
				return 0, boom
			}
			return v + 100, nil
		})
	if ran.Load() != 6 {
		t.Fatalf("ran %d tasks, want all 6", ran.Load())
	}
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	var agg *sweep.Errors
	if !errors.As(err, &agg) {
		t.Fatalf("error type %T, want *sweep.Errors", err)
	}
	if len(agg.Runs) != 3 {
		t.Fatalf("captured %d run errors, want 3", len(agg.Runs))
	}
	for i, want := range []int{1, 3, 5} {
		re := agg.Runs[i]
		if re.Index != want || re.Label != fmt.Sprintf("item-%d", want) {
			t.Fatalf("run error %d = {%d %q}, want index %d", i, re.Index, re.Label, want)
		}
	}
	if !errors.Is(err, boom) {
		t.Fatal("errors.Is cannot reach the underlying error")
	}
	for _, i := range []int{0, 2, 4} {
		if results[i] != i+100 {
			t.Fatalf("surviving result[%d] = %d, want %d", i, results[i], i+100)
		}
	}
}

// TestMapCapturesPanics checks a panicking run is reported as that run's
// error instead of crashing the pool.
func TestMapCapturesPanics(t *testing.T) {
	_, err := sweep.Map(2, []int{0, 1}, nil, func(_ int, v int) (int, error) {
		if v == 1 {
			panic("pathological trace")
		}
		return v, nil
	})
	if err == nil || !strings.Contains(err.Error(), "pathological trace") {
		t.Fatalf("panic not captured: %v", err)
	}
}

// TestMapCapturesLabelPanics checks a panic inside the label function is
// captured like any other per-run failure.
func TestMapCapturesLabelPanics(t *testing.T) {
	results, err := sweep.Map(2, []int{0, 1},
		func(v int) string {
			if v == 1 {
				panic("bad label")
			}
			return "ok"
		},
		func(_ int, v int) (int, error) { return v + 10, nil })
	if err == nil || !strings.Contains(err.Error(), "bad label") {
		t.Fatalf("label panic not captured: %v", err)
	}
	if results[0] != 10 {
		t.Fatalf("surviving result lost: %v", results)
	}
}

// TestMatrixKeepsPartialResultsOnFailure checks a failing grid still comes
// back: every group is returned (runs nil where the cell failed) alongside
// the aggregated error, so callers can salvage complete seeds.
func TestMatrixKeepsPartialResultsOnFailure(t *testing.T) {
	seeds := []int64{1, 2}
	specs := core.MinorSpecs()[:2]
	grid, err := sweep.Matrix{
		Workload: workload.Config{Scale: 0.02, SystemSize: 100},
		// Undersized study system: every Execute fails validation.
		Study:    core.StudyConfig{SystemSize: 2},
		Specs:    specs,
		Seeds:    seeds,
		Parallel: 4,
	}.Run()
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	var agg *sweep.Errors
	if !errors.As(err, &agg) {
		t.Fatalf("error type %T, want *sweep.Errors", err)
	}
	if len(agg.Runs) != len(seeds)*len(specs) {
		t.Fatalf("captured %d run errors, want %d", len(agg.Runs), len(seeds)*len(specs))
	}
	if grid == nil {
		t.Fatal("grid discarded despite per-run error capture")
	}
	for i, sr := range grid {
		if sr.Seed != seeds[i] {
			t.Fatalf("group %d is seed %d, want %d", i, sr.Seed, seeds[i])
		}
		if sr.Jobs == nil {
			t.Fatalf("seed %d lost its generated trace", sr.Seed)
		}
		if sr.Complete() {
			t.Fatalf("seed %d reports complete with failed runs", sr.Seed)
		}
	}
}

// TestRunsMatchesExecuteAll checks the concurrent policy sweep returns the
// exact runs of the serial core.ExecuteAll, in spec order.
func TestRunsMatchesExecuteAll(t *testing.T) {
	jobs := testJobs(t)
	cfg := core.StudyConfig{SystemSize: 100}
	specs := core.AllSpecs()
	want, err := core.ExecuteAll(cfg, specs, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sweep.Runs(cfg, specs, jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d runs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Spec.Key != want[i].Spec.Key {
			t.Fatalf("run %d is %s, want %s", i, got[i].Spec.Key, want[i].Spec.Key)
		}
		if !reflect.DeepEqual(got[i].Summary, want[i].Summary) {
			t.Fatalf("%s: parallel summary diverges from serial:\n got %+v\nwant %+v",
				want[i].Spec.Key, got[i].Summary, want[i].Summary)
		}
	}
}

// TestRunsPropagatesSimulationErrors checks a failing run surfaces with its
// policy key attached.
func TestRunsPropagatesSimulationErrors(t *testing.T) {
	jobs := testJobs(t)
	// Undersized system: workload validation fails inside every run.
	_, err := sweep.Runs(core.StudyConfig{SystemSize: 1}, core.AllSpecs(), jobs, 4)
	if err == nil {
		t.Fatal("expected error from undersized system")
	}
	if !strings.Contains(err.Error(), "cplant24.nomax.all") {
		t.Fatalf("error does not name the failing policy: %v", err)
	}
}

// TestSweepDeterminism is the acceptance check: the same seed set produces
// byte-identical experiment reports at -parallel 1 and -parallel 8.
func TestSweepDeterminism(t *testing.T) {
	jobs := testJobs(t)
	cfg := core.StudyConfig{SystemSize: 100}
	serial, err := experiments.RunOnParallel(cfg, jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiments.RunOnParallel(cfg, jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	experiments.WriteReport(&a, serial, 0)
	experiments.WriteReport(&b, parallel, 0)
	if a.Len() == 0 {
		t.Fatal("empty report")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("parallel report diverges from serial report:\n--- serial ---\n%s\n--- parallel ---\n%s",
			a.String(), b.String())
	}
}

// TestMatrixRunEachStreams checks the streaming fan-out delivers every
// seed's complete group exactly once, serialized, with runs in spec order.
func TestMatrixRunEachStreams(t *testing.T) {
	seeds := []int64{3, 5, 9, 11}
	specs := core.MinorSpecs()[:2]
	seen := make(map[int64]int)
	inCallback := false
	err := sweep.Matrix{
		Workload: workload.Config{Scale: 0.02, SystemSize: 100},
		Study:    core.StudyConfig{SystemSize: 100},
		Specs:    specs,
		Seeds:    seeds,
		Parallel: 4,
	}.RunEach(func(sr sweep.SeedRuns) {
		if inCallback {
			t.Error("callbacks overlap")
		}
		inCallback = true
		defer func() { inCallback = false }()
		seen[sr.Seed]++
		if !sr.Complete() {
			t.Errorf("seed %d delivered incomplete", sr.Seed)
		}
		for k, run := range sr.Runs {
			if run.Spec.Key != specs[k].Key {
				t.Errorf("seed %d run %d is %s, want %s", sr.Seed, k, run.Spec.Key, specs[k].Key)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seeds {
		if seen[s] != 1 {
			t.Fatalf("seed %d delivered %d times", s, seen[s])
		}
	}
}

// TestMatrixRunEachSkipsFailingSeeds checks a failing seed is recorded in
// the aggregated error and never delivered, while the others stream.
func TestMatrixRunEachSkipsFailingSeeds(t *testing.T) {
	delivered := 0
	err := sweep.Matrix{
		Workload: workload.Config{Scale: 0.02, SystemSize: 100},
		Study:    core.StudyConfig{SystemSize: 2}, // every run fails validation
		Specs:    core.MinorSpecs()[:1],
		Seeds:    []int64{1, 2},
		Parallel: 2,
	}.RunEach(func(sweep.SeedRuns) { delivered++ })
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	var agg *sweep.Errors
	if !errors.As(err, &agg) || len(agg.Runs) != 2 {
		t.Fatalf("want 2 captured seed failures, got %v", err)
	}
	if !strings.Contains(err.Error(), "cplant24.nomax.all") {
		t.Fatalf("failing policy not named: %v", err)
	}
	if delivered != 0 {
		t.Fatalf("%d failed seeds delivered", delivered)
	}
}

// TestMatrixGroupsBySeed checks the (seed × policy) fan-out reassembles
// deterministically: seeds in input order, runs in spec order, every cell
// simulated over its own seed's trace.
func TestMatrixGroupsBySeed(t *testing.T) {
	seeds := []int64{3, 5, 9}
	specs := core.MinorSpecs()[:2]
	grid, err := sweep.Matrix{
		Workload: workload.Config{Scale: 0.02, SystemSize: 100},
		Study:    core.StudyConfig{SystemSize: 100},
		Specs:    specs,
		Seeds:    seeds,
		Parallel: 8,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(seeds) {
		t.Fatalf("got %d seed groups, want %d", len(grid), len(seeds))
	}
	for i, sr := range grid {
		if sr.Seed != seeds[i] {
			t.Fatalf("group %d is seed %d, want %d", i, sr.Seed, seeds[i])
		}
		if len(sr.Runs) != len(specs) {
			t.Fatalf("seed %d has %d runs, want %d", sr.Seed, len(sr.Runs), len(specs))
		}
		for k, run := range sr.Runs {
			if run.Spec.Key != specs[k].Key {
				t.Fatalf("seed %d run %d is %s, want %s", sr.Seed, k, run.Spec.Key, specs[k].Key)
			}
			if len(run.Result.Records) != len(sr.Jobs) {
				t.Fatalf("seed %d × %s: %d records for %d jobs",
					sr.Seed, run.Spec.Key, len(run.Result.Records), len(sr.Jobs))
			}
		}
	}
	// Distinct seeds must generate distinct traces (guards against a
	// worker accidentally sharing one generated workload).
	if grid[0].Jobs[0].Submit == grid[1].Jobs[0].Submit && len(grid[0].Jobs) == len(grid[1].Jobs) {
		same := true
		for i := range grid[0].Jobs {
			if grid[0].Jobs[i].Submit != grid[1].Jobs[i].Submit {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seed 3 and seed 5 generated identical traces")
		}
	}
}
