package sweep

import (
	"fmt"
	"sync"

	"fairsched/internal/core"
	"fairsched/internal/fairshare"
	"fairsched/internal/job"
	"fairsched/internal/metrics"
	"fairsched/internal/scenario"
	"fairsched/internal/slo"
)

// Campaign is the full evaluation matrix: (trace × scenario × seed ×
// policy). Each (trace, scenario, seed) triple is one cell; the cell's
// worker streams the trace in (scenario sources load lazily, SWF files via
// the streaming scanner), applies the scenario's transforms under the
// cell's seed, runs every policy, and releases the workload before taking
// the next cell — so peak memory is one loaded workload per worker, not
// the whole matrix, and the raw SWF text/records never materialize (each
// worker holds just its cell's converted job slice).
type Campaign struct {
	// Sources are the workloads (trace files, synthetic generators).
	Sources []scenario.Source
	// Scenarios are the workload variants; zero length means baseline only.
	Scenarios []scenario.Scenario
	// Seeds drive scenario randomness (and synthetic generation); zero
	// length means the single seed 0.
	Seeds []int64
	// Specs are the policies; zero length means core.AllSpecs().
	Specs []core.Spec
	// Study configures every run. SystemSize <= 0 defers to each trace's
	// declared size; FairshareEpoch 0 defers to each trace's Unix start
	// time.
	Study core.StudyConfig
	// Parallel bounds the worker pool (<= 0: one worker per CPU).
	Parallel int
	// PolicyParallel promotes the policy axis into the parallel grid: Run
	// fans out (trace × scenario × seed × policy) tasks instead of whole
	// cells, so a wide-registry sweep over few cells still saturates the
	// pool. A cell's workload is loaded once (by whichever of its policy
	// tasks runs first) and shared read-only, then released when the cell's
	// last policy finishes — peak memory grows to at most one workload
	// share per in-flight cell, bounded by the worker count plus one. The
	// summaries, and any report rendered from them, stay byte-identical to
	// the cell-unit mode at every parallelism. RunEach keeps the cell as
	// its unit regardless (its callback contract is a whole cell).
	PolicyParallel bool
}

// Cell is one completed (trace × scenario × seed) of the matrix with full
// run detail. It is only ever alive inside a RunEach callback; retaining
// Jobs or Runs from there forfeits the campaign's memory bound.
type Cell struct {
	Source   string
	Scenario string
	Seed     int64
	// SystemSize and Epoch are the resolved per-cell simulator settings.
	SystemSize int
	Epoch      int64
	Jobs       []*job.Job
	Runs       []*core.Run // spec order
}

// CellSummary is the memory-light record of a finished cell: identity plus
// per-policy summaries, with the workload and per-job records dropped.
type CellSummary struct {
	Source     string
	Scenario   string
	Seed       int64
	SystemSize int
	Jobs       int
	Policies   []string           // spec order
	Summaries  []*metrics.Summary // spec order
	// SLOs are the per-policy SLO attainment reports, spec order; nil when
	// the cell's scenario tags no users (the summaries are per-class, so a
	// cell stays memory-light even over a large user population).
	SLOs []*slo.Summary
}

// cells enumerates the matrix in deterministic input order: sources
// outermost, then scenarios, then seeds.
func (c Campaign) cells() (srcs []scenario.Source, scens []scenario.Scenario, seeds []int64, specs []core.Spec, grid [][3]int) {
	srcs = c.Sources
	scens = c.Scenarios
	if len(scens) == 0 {
		scens = []scenario.Scenario{scenario.Baseline()}
	}
	seeds = c.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	specs = c.Specs
	if len(specs) == 0 {
		specs = core.AllSpecs()
	}
	for si := range srcs {
		for ci := range scens {
			for di := range seeds {
				grid = append(grid, [3]int{si, ci, di})
			}
		}
	}
	return srcs, scens, seeds, specs, grid
}

// RunEach executes the matrix, handing each completed cell to the callback
// and releasing it afterwards. Callbacks are serialized (no locking needed
// inside) but arrive in completion order, not matrix order — aggregate
// commutatively, or use Run for deterministic ordering. A failing load,
// transform or policy run fails its whole cell: the callback is not invoked
// for it, the casualty is recorded in the aggregated *Errors, and the other
// cells proceed.
func (c Campaign) RunEach(each func(Cell)) error {
	srcs, scens, seeds, specs, grid := c.cells()
	var mu sync.Mutex
	_, err := Map(c.Parallel, grid,
		func(g [3]int) string {
			return fmt.Sprintf("%s × %s × seed %d", srcs[g[0]].Name, scens[g[1]].Name, seeds[g[2]])
		},
		func(_ int, g [3]int) (struct{}, error) {
			src, scen, seed := srcs[g[0]], scens[g[1]], seeds[g[2]]
			cell, err := c.runCell(src, scen, seed, specs)
			if err != nil {
				return struct{}{}, err
			}
			mu.Lock()
			defer mu.Unlock()
			each(*cell)
			return struct{}{}, nil
		})
	return err
}

// Run executes the matrix and returns one CellSummary per cell in matrix
// order (sources, then scenarios, then seeds) regardless of Parallel — the
// summaries, and any report rendered from them, are byte-identical at every
// parallelism and in both task-granularity modes (see PolicyParallel).
// Failed cells leave nil slots alongside the aggregated *Errors, like the
// other sweep entry points.
func (c Campaign) Run() ([]*CellSummary, error) {
	if c.PolicyParallel {
		return c.runPolicyParallel()
	}
	srcs, scens, seeds, specs, grid := c.cells()
	return Map(c.Parallel, grid,
		func(g [3]int) string {
			return fmt.Sprintf("%s × %s × seed %d", srcs[g[0]].Name, scens[g[1]].Name, seeds[g[2]])
		},
		func(_ int, g [3]int) (*CellSummary, error) {
			cell, err := c.runCell(srcs[g[0]], scens[g[1]], seeds[g[2]], specs)
			if err != nil {
				return nil, err
			}
			sum := &CellSummary{
				Source:     cell.Source,
				Scenario:   cell.Scenario,
				Seed:       cell.Seed,
				SystemSize: cell.SystemSize,
				Jobs:       len(cell.Jobs),
				Policies:   make([]string, len(cell.Runs)),
				Summaries:  make([]*metrics.Summary, len(cell.Runs)),
			}
			for i, r := range cell.Runs {
				sum.Policies[i] = r.Spec.Key
				sum.Summaries[i] = r.Summary
				if r.SLO != nil {
					if sum.SLOs == nil {
						sum.SLOs = make([]*slo.Summary, len(cell.Runs))
					}
					sum.SLOs[i] = r.SLO
				}
			}
			return sum, nil
		})
}

// runPolicyParallel is Run with the policy axis in the parallel grid: one
// task per (cell, policy). Each cell's workload is loaded exactly once (by
// the cell's first task to run, under a sync.Once) and shared read-only by
// its sibling tasks — the simulator never mutates submitted jobs — then
// dropped when the cell's last policy run finishes.
func (c Campaign) runPolicyParallel() ([]*CellSummary, error) {
	srcs, scens, seeds, specs, grid := c.cells()
	type cellState struct {
		once      sync.Once
		mu        sync.Mutex
		jobs      []*job.Job
		jobCount  int
		study     core.StudyConfig
		err       error
		remaining int
	}
	states := make([]*cellState, len(grid))
	for i := range states {
		states[i] = &cellState{remaining: len(specs)}
	}
	type task struct{ cell, spec int }
	tasks := make([]task, 0, len(grid)*len(specs))
	for ci := range grid {
		for pi := range specs {
			tasks = append(tasks, task{cell: ci, spec: pi})
		}
	}
	runs, err := Map(c.Parallel, tasks,
		func(t task) string {
			g := grid[t.cell]
			return fmt.Sprintf("%s × %s × seed %d × %s",
				srcs[g[0]].Name, scens[g[1]].Name, seeds[g[2]], specs[t.spec].Key)
		},
		func(_ int, t task) (*core.Run, error) {
			g, st := grid[t.cell], states[t.cell]
			st.once.Do(func() {
				st.jobs, st.study, st.err = c.loadCell(srcs[g[0]], scens[g[1]], seeds[g[2]])
				st.jobCount = len(st.jobs)
			})
			st.mu.Lock()
			jobs, loadErr := st.jobs, st.err
			st.mu.Unlock()
			var r *core.Run
			var runErr error
			if loadErr != nil {
				runErr = loadErr
			} else {
				r, runErr = core.Execute(st.study, specs[t.spec], jobs)
			}
			st.mu.Lock()
			st.remaining--
			if st.remaining == 0 {
				st.jobs = nil // cell finished: release the workload share
			}
			st.mu.Unlock()
			return r, runErr
		})
	out := make([]*CellSummary, len(grid))
	for ci, g := range grid {
		cellRuns := runs[ci*len(specs) : (ci+1)*len(specs)]
		sum := &CellSummary{
			Source:     srcs[g[0]].Name,
			Scenario:   scens[g[1]].Name,
			Seed:       seeds[g[2]],
			SystemSize: states[ci].study.SystemSize,
			Jobs:       states[ci].jobCount,
			Policies:   make([]string, len(cellRuns)),
			Summaries:  make([]*metrics.Summary, len(cellRuns)),
		}
		complete := true
		for i, r := range cellRuns {
			if r == nil {
				complete = false
				break
			}
			sum.Policies[i] = r.Spec.Key
			sum.Summaries[i] = r.Summary
			if r.SLO != nil {
				if sum.SLOs == nil {
					sum.SLOs = make([]*slo.Summary, len(cellRuns))
				}
				sum.SLOs[i] = r.SLO
			}
		}
		if complete {
			out[ci] = sum // any failed policy fails its whole cell, as in cell mode
		}
	}
	return out, err
}

// loadCell loads and transforms one cell's workload and resolves the
// simulator settings every policy run of the cell shares.
func (c Campaign) loadCell(src scenario.Source, scen scenario.Scenario, seed int64) ([]*job.Job, core.StudyConfig, error) {
	study := c.Study
	wl, err := src.Load(seed)
	if err != nil {
		return nil, study, err
	}
	jobs, err := scen.Apply(wl.Jobs, seed)
	if err != nil {
		return nil, study, err
	}
	// The scenario may tag users with SLO targets; the assignment is
	// derived from the transformed workload (so quantile bands reflect the
	// cell's actual population) and shared read-only by every policy run
	// of the cell.
	asg, err := scen.SLOAssignment(jobs)
	if err != nil {
		return nil, study, err
	}
	study.SLO = asg
	// Likewise for user placement: queue/partition tags route users on the
	// study's topology (or group per-queue report rows on a flat machine).
	placement, err := scen.Placement(jobs)
	if err != nil {
		return nil, study, err
	}
	study.Placement = placement
	if study.SystemSize <= 0 {
		study.SystemSize = wl.SystemSize
	}
	if study.SystemSize <= 0 {
		// No declared size anywhere: the simulator default, widened to fit
		// the workload's widest job.
		study.SystemSize = 1000
		if w := job.MaxNodes(jobs); w > study.SystemSize {
			study.SystemSize = w
		}
	}
	if study.FairshareEpoch == 0 && wl.FairshareEpoch != 0 {
		// Manifest-declared default epoch: a study-level setting still wins.
		study.FairshareEpoch = wl.FairshareEpoch
	}
	if study.FairshareEpoch == 0 && wl.UnixStartTime > 0 {
		// The scenario may have moved the time origin (window slicing);
		// align decay boundaries to the wall clock at the shifted origin.
		study.FairshareEpoch = fairshare.EpochFor(
			wl.UnixStartTime+scen.OriginShift(), study.Fairshare.DecayInterval)
	}
	return jobs, study, nil
}

// runCell loads, transforms and simulates one cell. Policies run serially
// within the cell (the cell is the unit of parallelism), sharing the
// transformed workload read-only.
func (c Campaign) runCell(src scenario.Source, scen scenario.Scenario, seed int64, specs []core.Spec) (*Cell, error) {
	jobs, study, err := c.loadCell(src, scen, seed)
	if err != nil {
		return nil, err
	}
	cell := &Cell{
		Source:     src.Name,
		Scenario:   scen.Name,
		Seed:       seed,
		SystemSize: study.SystemSize,
		Epoch:      study.FairshareEpoch,
		Jobs:       jobs,
		Runs:       make([]*core.Run, len(specs)),
	}
	for i, sp := range specs {
		r, err := core.Execute(study, sp, jobs)
		if err != nil {
			return nil, err // core.Execute already names the spec
		}
		cell.Runs[i] = r
	}
	return cell, nil
}
