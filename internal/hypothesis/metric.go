package hypothesis

import (
	"fmt"
	"strings"

	"fairsched/internal/metrics"
	"fairsched/internal/slo"
)

// SLOPrefix routes a metric key to the per-user SLO plane: a key
// "slo.<class>.<field>" reads slo.Summary.ValueByKey("<class>.<field>")
// (class "all" is the cross-class total) instead of metrics.Summary.
const SLOPrefix = "slo."

// validMetricKey reports whether key resolves against a campaign cell:
// either a metrics key (metrics.ValidKey) or an SLO key. SLO class names
// are scenario-defined, so only the field part is checked statically.
func validMetricKey(key string) error {
	if rest, ok := strings.CutPrefix(key, SLOPrefix); ok {
		class, field, found := strings.Cut(rest, ".")
		if !found || class == "" || field == "" {
			return fmt.Errorf("hypothesis: SLO metric key %q: want slo.<class>.<field> (class \"all\" for the total)", key)
		}
		for _, f := range slo.FieldKeys() {
			if f == field {
				return nil
			}
		}
		return fmt.Errorf("hypothesis: SLO metric key %q: unknown field %q (known: %s)", key, field, strings.Join(slo.FieldKeys(), ", "))
	}
	if !metrics.ValidKey(key) {
		return fmt.Errorf("hypothesis: unknown metric key %q (known: %s)", key, strings.Join(metrics.Keys(), ", "))
	}
	return nil
}

// resolveMetric reads a metric key out of one campaign cell's summaries.
// The SLO summary is nil when the cell's scenario tags no users.
func resolveMetric(sum *metrics.Summary, slos *slo.Summary, key string) (float64, error) {
	if rest, ok := strings.CutPrefix(key, SLOPrefix); ok {
		if slos == nil {
			return 0, fmt.Errorf("hypothesis: metric %q needs SLO data but the scenario declares no SLO classes", key)
		}
		return slos.ValueByKey(rest)
	}
	if sum == nil {
		return 0, fmt.Errorf("hypothesis: no summary for metric %q", key)
	}
	return sum.ValueByKey(key)
}
