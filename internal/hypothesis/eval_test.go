package hypothesis

import (
	"fmt"
	"strings"
	"testing"
)

// tableResolver backs a Resolver with per-seed (policy, scenario, metric)
// values.
type tableResolver map[int64]map[string]float64

func (tr tableResolver) at(seed int64) Resolver {
	return func(cfg Config, metric string) (float64, error) {
		v, ok := tr[seed][cfg.String()+"#"+metric]
		if !ok {
			return 0, fmt.Errorf("no value for %s#%s at seed %d", cfg, metric, seed)
		}
		return v, nil
	}
}

func mustParse(t *testing.T, in string) Spec {
	t.Helper()
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEvaluateDominance(t *testing.T) {
	s := mustParse(t, "claim dom: fcfs < easy on avg_wait seeds 1..3")
	tr := tableResolver{
		1: {"fcfs#avg_wait": 1, "easy#avg_wait": 2},
		2: {"fcfs#avg_wait": 3, "easy#avg_wait": 2},
		3: {"fcfs#avg_wait": 2, "easy#avg_wait": 2}, // tie: strict < fails
	}
	o := Evaluate(s, tr.at)
	if got := o.Status(); got != StatusSupported {
		t.Errorf("status = %v, want SUPPORTED (passes ref seed 1, fails 2 and 3)", got)
	}
	if o.Passed() != 1 || o.Results[1].Pass || o.Results[2].Pass {
		t.Errorf("per-seed = %+v", o.Results)
	}
	if r := o.Results[0]; r.Terms[0].Left != 1 || r.Terms[0].Right != 2 {
		t.Errorf("evidence values = %+v", r.Terms[0])
	}
}

func TestEvaluateStatuses(t *testing.T) {
	s := mustParse(t, "claim st: fcfs < easy on avg_wait seeds 1..2")
	conf := tableResolver{
		1: {"fcfs#avg_wait": 1, "easy#avg_wait": 2},
		2: {"fcfs#avg_wait": 1, "easy#avg_wait": 2},
	}
	if got := func() Status { o := Evaluate(s, conf.at); return o.Status() }(); got != StatusConfirmed {
		t.Errorf("unanimous status = %v", got)
	}
	refut := tableResolver{
		1: {"fcfs#avg_wait": 5, "easy#avg_wait": 2},
		2: {"fcfs#avg_wait": 1, "easy#avg_wait": 2},
	}
	if got := func() Status { o := Evaluate(s, refut.at); return o.Status() }(); got != StatusRefuted {
		t.Errorf("reference-fail status = %v", got)
	}
}

func TestEvaluateQuorumAndFactor(t *testing.T) {
	// 2-of-3 quorum with a 1.5x factor on the right side.
	s := mustParse(t, "claim q: fcfs#avg_wait > easy#avg_wait*1.5 "+
		"and fcfs#avg_tat > easy#avg_tat and fcfs#util > easy#util on avg_wait require 2 seeds 7")
	tr := tableResolver{7: {
		"fcfs#avg_wait": 16, "easy#avg_wait": 10, // 16 > 15: pass
		"fcfs#avg_tat": 5, "easy#avg_tat": 9, // fail
		"fcfs#util": 0.9, "easy#util": 0.8, // pass
	}}
	o := Evaluate(s, tr.at)
	r := o.Results[0]
	if !r.Pass || r.Held != 2 {
		t.Errorf("quorum result = %+v", r)
	}
	if r.Terms[0].Right != 15 {
		t.Errorf("factor not applied: right = %v, want 15", r.Terms[0].Right)
	}
}

func TestEvaluateApproxAndConst(t *testing.T) {
	s := mustParse(t, "claim eq: fcfs ~10% easy and fcfs = 4 on jobs seeds 1")
	tr := tableResolver{1: {"fcfs#jobs": 4, "easy#jobs": 4.2}}
	o := Evaluate(s, tr.at)
	if !o.Results[0].Pass {
		t.Errorf("result = %+v", o.Results[0])
	}
	// 4 vs 5 is a 20% gap: outside tolerance.
	tr[1]["easy#jobs"] = 5
	if Evaluate(s, tr.at).Results[0].Pass {
		t.Error("20%% gap passed a 10%% tolerance")
	}
}

func TestEvaluateResolverError(t *testing.T) {
	s := mustParse(t, "claim e: fcfs < easy on avg_wait seeds 1..2")
	tr := tableResolver{1: {"fcfs#avg_wait": 1, "easy#avg_wait": 2}} // seed 2 missing
	o := Evaluate(s, tr.at)
	if o.Results[1].Err == nil || o.Results[1].Pass {
		t.Errorf("missing-cell seed = %+v", o.Results[1])
	}
	if got := o.Status(); got != StatusSupported {
		t.Errorf("status = %v (errors count as failed seeds)", got)
	}
}

func TestRenderFindingsEvidence(t *testing.T) {
	s := mustParse(t, "claim ev: fcfs < easy on avg_wait seeds 1..2")
	tr := tableResolver{
		1: {"fcfs#avg_wait": 1.5, "easy#avg_wait": 2},
		2: {"fcfs#avg_wait": 3, "easy#avg_wait": 2},
	}
	e := &Evaluation{Source: "table", Outcomes: []Outcome{Evaluate(s, tr.at)}, Cells: 2, Policies: 2}
	var b strings.Builder
	RenderFindings(&b, e)
	out := b.String()
	for _, want := range []string{
		"FINDINGS — 1 hypotheses on table",
		"## ev — SUPPORTED (tier 1, 1/2 seeds)",
		"claim ev: fcfs < easy on avg_wait seeds 1..2",
		"1.5 < 2",
		"3 < 2 [FAIL]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FINDINGS missing %q:\n%s", want, out)
		}
	}
}
